// Quickstart: predict and measure multicast latency on a Quarc NoC.
//
// Builds a 16-node Quarc network carrying 5% multicast traffic to a random
// destination set, evaluates the paper's analytical model (Eq. 3-16), runs
// the flit-level simulator on the identical workload, and prints both.
//
//   $ ./examples/quickstart
#include <iostream>

#include "quarc/model/performance_model.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/traffic/pattern.hpp"

int main() {
  using namespace quarc;

  // 1. The network: 16 nodes, all-port routers, split cross links.
  QuarcTopology topo(16);
  std::cout << "topology: " << topo.name() << "  (diameter " << topo.diameter() << " hops, "
            << topo.num_channels() << " channels)\n";

  // 2. The workload: Poisson sources at 0.004 messages/cycle/node, 32-flit
  //    messages, 5% of them multicast to a fixed random destination set.
  Rng rng(2009);
  Workload load;
  load.message_rate = 0.004;
  load.multicast_fraction = 0.05;
  load.message_length = 32;
  load.pattern = RingRelativePattern::random(topo.num_nodes(), 5, rng);
  std::cout << "workload: " << load.describe() << "\n\n";

  // 3. The analytical model (instant).
  const ModelResult model = PerformanceModel(topo, load).evaluate();
  std::cout << "analytical model (" << to_string(model.status) << ", "
            << model.solver_iterations << " iterations)\n"
            << "  avg unicast latency   : " << model.avg_unicast_latency << " cycles\n"
            << "  avg multicast latency : " << model.avg_multicast_latency << " cycles\n"
            << "  bottleneck utilisation: " << model.max_utilization << " ("
            << topo.channel(model.bottleneck).label << ")\n\n";

  // 4. The flit-level simulator on the same workload.
  sim::SimConfig config;
  config.workload = load;
  config.warmup_cycles = 5000;
  config.measure_cycles = 50000;
  config.seed = 1;
  const sim::SimResult sim = sim::Simulator(topo, config).run();
  std::cout << "simulation (" << sim.cycles_run << " cycles, " << sim.messages_generated
            << " messages)\n"
            << "  avg unicast latency   : " << sim.unicast_latency.to_string() << "\n"
            << "  avg multicast latency : " << sim.multicast_latency.to_string() << "\n\n";

  const double err = (model.avg_multicast_latency - sim.multicast_latency.mean) /
                     sim.multicast_latency.mean;
  std::cout << "model vs simulation multicast error: " << err * 100.0 << "%\n";
  return 0;
}
