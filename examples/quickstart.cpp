// Quickstart: predict and measure multicast latency on a Quarc NoC.
//
// One Scenario describes the whole experiment — a 16-node Quarc network
// carrying 5% multicast traffic to a fixed random destination set — and
// runs both the paper's analytical model (Eq. 3-16) and the flit-level
// simulator on the identical workload.
//
//   $ ./example_quickstart
#include <iostream>

#include "quarc/api/scenario.hpp"

int main() {
  using namespace quarc;

  // The experiment, end to end: topology and pattern resolve through the
  // api registries, everything else is a workload/evaluation knob.
  api::Scenario scenario;
  scenario.topology("quarc:16")
      .pattern("random:5")
      .rate(0.004)          // messages/cycle/node (Poisson)
      .alpha(0.05)          // 5% of messages are multicasts
      .message_length(32)   // flits
      .seed(2009)
      .warmup(5000)
      .measure(50000);
  std::cout << "scenario: " << scenario.describe() << "\n\n";

  // The analytical model (instant).
  const api::ResultRow model = scenario.run_model().rows.front();
  std::cout << "analytical model (" << model.model_status << ", " << model.solver_iterations
            << " iterations)\n"
            << "  avg unicast latency   : " << model.model_unicast_latency << " cycles\n"
            << "  avg multicast latency : " << model.model_multicast_latency << " cycles\n"
            << "  bottleneck utilisation: " << model.model_max_utilization << "\n\n";

  // The flit-level simulator on the same workload.
  const api::ResultRow sim = scenario.run_sim().rows.front();
  std::cout << "simulation (" << sim.sim_cycles << " cycles, " << sim.sim_messages_generated
            << " messages)\n"
            << "  avg unicast latency   : " << sim.sim_unicast_latency << " +-"
            << sim.sim_unicast_ci95 << " cycles\n"
            << "  avg multicast latency : " << sim.sim_multicast_latency << " +-"
            << sim.sim_multicast_ci95 << " cycles\n\n";

  const double err =
      (model.model_multicast_latency - sim.sim_multicast_latency) / sim.sim_multicast_latency;
  std::cout << "model vs simulation multicast error: " << err * 100.0 << "%\n";
  return 0;
}
