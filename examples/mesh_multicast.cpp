// Scenario: porting the model beyond Quarc — dual-path multicast on a
// multi-port 2D mesh (the paper's stated future work).
//
// Shows the anatomy of a Hamiltonian dual-path multicast (the two
// asynchronous port streams with their absorb-and-forward stops), then
// validates the m = 2 instance of the Eq. 12 model against simulation.
//
// Also demonstrates the Scenario escape hatches: the registry builds the
// topology, a dynamic_cast recovers the concrete MeshTopology for its
// labeling, and an ExplicitPattern object (no registry spec exists for
// snake-offset sets) is handed to the builder directly.
#include <iostream>

#include "quarc/api/registry.hpp"
#include "quarc/api/scenario.hpp"
#include "quarc/topo/mesh.hpp"

int main() {
  using namespace quarc;

  auto topo = api::make_topology("mesh-ham:4x4");
  const auto& mesh = dynamic_cast<const MeshTopology&>(*topo);
  const auto& lab = mesh.labeling();

  // Anatomy: multicast from the snake midpoint to four targets.
  const NodeId source = lab.node_at(6);
  const std::vector<NodeId> targets = {lab.node_at(1), lab.node_at(4), lab.node_at(11),
                                       lab.node_at(14)};
  std::cout << "mesh 4x4, Hamiltonian labeling (node ids by snake position):\n";
  for (int y = mesh.height() - 1; y >= 0; --y) {
    std::cout << "  ";
    for (int x = 0; x < mesh.width(); ++x) {
      std::cout << lab.label_of(mesh.node_id(x, y)) << "\t";
    }
    std::cout << "\n";
  }
  std::cout << "\nmulticast from node " << source << " (label 6) to labels {1, 4, 11, 14}:\n";
  for (const MulticastStream& st : mesh.multicast_streams(source, targets)) {
    std::cout << "  port " << (st.port == MeshTopology::kHigh ? "HIGH" : "LOW ") << ": "
              << st.hops() << " hops, stops at nodes";
    for (const auto& stop : st.stops) {
      std::cout << " " << stop.node << "(label " << lab.label_of(stop.node) << ", hop "
                << stop.hop << ")";
    }
    std::cout << "\n";
  }

  // Every node invalidates the same relative snake offsets, clipped.
  std::vector<std::vector<NodeId>> dests(static_cast<std::size_t>(mesh.num_nodes()));
  for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
    std::vector<NodeId> v;
    for (int off : {-5, 3, 7}) {
      const int l = lab.label_of(s) + off;
      if (l >= 0 && l < mesh.num_nodes()) v.push_back(lab.node_at(l));
    }
    dests[static_cast<std::size_t>(s)] = v;
  }
  auto pattern = std::make_shared<ExplicitPattern>(dests, "snake-offsets{-5,3,7}");

  // Model vs simulation at two load points through one Scenario.
  api::Scenario scenario;
  scenario.topology(std::move(topo))
      .pattern(pattern)
      .alpha(0.10)
      .message_length(32)
      .warmup(4000)
      .measure(40000);

  std::cout << "\nmodel vs simulation (alpha=10%, M=32):\n";
  for (double rate : {0.0005, 0.001}) {
    scenario.rate(rate);
    const api::ResultRow model = scenario.run_model().rows.front();
    const api::ResultRow sim = scenario.run_sim().rows.front();
    std::cout << "  rate " << rate << ": model " << model.model_multicast_latency << "  sim "
              << sim.sim_multicast_latency << " +-" << sim.sim_multicast_ci95 << "\n";
  }
  std::cout << "\nThe same max-of-exponentials machinery (Eq. 12) predicts the mesh's\n"
               "two-stream multicast; no Quarc-specific assumptions are involved.\n";
  return 0;
}
