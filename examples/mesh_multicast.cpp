// Scenario: porting the model beyond Quarc — dual-path multicast on a
// multi-port 2D mesh (the paper's stated future work).
//
// Shows the anatomy of a Hamiltonian dual-path multicast (the two
// asynchronous port streams with their absorb-and-forward stops), then
// validates the m = 2 instance of the Eq. 12 model against simulation.
#include <iostream>

#include "quarc/model/performance_model.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/topo/mesh.hpp"
#include "quarc/traffic/pattern.hpp"

int main() {
  using namespace quarc;

  MeshTopology mesh(4, 4, MeshRouting::Hamiltonian);
  const auto& lab = mesh.labeling();

  // Anatomy: multicast from the snake midpoint to four targets.
  const NodeId source = lab.node_at(6);
  const std::vector<NodeId> targets = {lab.node_at(1), lab.node_at(4), lab.node_at(11),
                                       lab.node_at(14)};
  std::cout << "mesh 4x4, Hamiltonian labeling (node ids by snake position):\n";
  for (int y = mesh.height() - 1; y >= 0; --y) {
    std::cout << "  ";
    for (int x = 0; x < mesh.width(); ++x) {
      std::cout << lab.label_of(mesh.node_id(x, y)) << "\t";
    }
    std::cout << "\n";
  }
  std::cout << "\nmulticast from node " << source << " (label 6) to labels {1, 4, 11, 14}:\n";
  for (const MulticastStream& st : mesh.multicast_streams(source, targets)) {
    std::cout << "  port " << (st.port == MeshTopology::kHigh ? "HIGH" : "LOW ") << ": "
              << st.hops() << " hops, stops at nodes";
    for (const auto& stop : st.stops) {
      std::cout << " " << stop.node << "(label " << lab.label_of(stop.node) << ", hop "
                << stop.hop << ")";
    }
    std::cout << "\n";
  }

  // Model vs simulation at two load points.
  std::vector<std::vector<NodeId>> dests(static_cast<std::size_t>(mesh.num_nodes()));
  for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
    // Every node invalidates the same relative snake offsets, clipped.
    std::vector<NodeId> v;
    for (int off : {-5, 3, 7}) {
      const int l = lab.label_of(s) + off;
      if (l >= 0 && l < mesh.num_nodes()) v.push_back(lab.node_at(l));
    }
    dests[static_cast<std::size_t>(s)] = v;
  }
  auto pattern = std::make_shared<ExplicitPattern>(dests, "snake-offsets{-5,3,7}");

  std::cout << "\nmodel vs simulation (alpha=10%, M=32):\n";
  for (double rate : {0.0005, 0.001}) {
    Workload w;
    w.message_rate = rate;
    w.multicast_fraction = 0.10;
    w.message_length = 32;
    w.pattern = pattern;
    const auto model = PerformanceModel(mesh, w).evaluate();

    sim::SimConfig c;
    c.workload = w;
    c.warmup_cycles = 4000;
    c.measure_cycles = 40000;
    const auto sim = sim::Simulator(mesh, c).run();
    std::cout << "  rate " << rate << ": model " << model.avg_multicast_latency << "  sim "
              << sim.multicast_latency.to_string() << "\n";
  }
  std::cout << "\nThe same max-of-exponentials machinery (Eq. 12) predicts the mesh's\n"
               "two-stream multicast; no Quarc-specific assumptions are involved.\n";
  return 0;
}
