// Scenario: invalidation multicast in a directory coherence protocol.
//
// A chip multiprocessor keeps directories at each node; a write to a line
// shared by k cores multicasts invalidations to the sharers — a multicast
// whose destination set is *localized* (sharers cluster near the home node
// in many workloads) or *scattered* (random sharing). This is precisely
// the Fig. 6 vs Fig. 7 distinction. The example contrasts the two sharing
// patterns at identical load and shows why localized sharing is cheaper:
// a single injection port serves the whole invalidation fan-out.
//
// The two sharing patterns are just registry specs; the localized one uses
// fractional bounds ("localized:0.01:0.25:6" = the home node's left rim)
// so the same spec scales to any core count.
#include <iostream>
#include <sstream>

#include "quarc/api/scenario.hpp"
#include "quarc/util/table.hpp"

int main() {
  using namespace quarc;

  const int nodes = 64;
  const int inval_flits = 20;   // short invalidation packets (> diameter 16)
  const double alpha = 0.10;    // invalidations are 10% of NoC traffic
  const int sharers = 6;

  const std::pair<std::string, std::string> patterns[] = {
      {"scattered", "random:" + std::to_string(sharers)},
      {"clustered", "localized:0.01:0.25:" + std::to_string(sharers)},
  };

  Table table({"sharing pattern", "rate", "model inval latency", "sim inval latency",
               "sim unicast latency"},
              2);

  for (double rate : {0.0005, 0.001}) {
    for (const auto& [name, spec] : patterns) {
      api::Scenario scenario;
      scenario.topology("quarc:" + std::to_string(nodes))
          .pattern(spec)
          .rate(rate)
          .alpha(alpha)
          .message_length(inval_flits)
          .pattern_seed(7)
          .seed(5)
          .warmup(4000)
          .measure(40000);

      const api::ResultRow model = scenario.run_model().rows.front();
      const api::ResultRow sim = scenario.run_sim().rows.front();

      std::ostringstream rate_str;
      rate_str << rate;
      table.add_row({name, rate_str.str(), model.model_multicast_latency,
                     sim.sim_multicast_latency, sim.sim_unicast_latency});
    }
  }
  table.print_titled("invalidation multicast: scattered vs clustered sharers (N=64, 6 sharers)");

  std::cout << "\nReading: scattered sharers span up to four quadrants, so the\n"
               "invalidation completes when the *slowest* of four asynchronous\n"
               "streams delivers (the paper's max-of-exponentials); clustered\n"
               "sharers ride one stream and finish with the farthest sharer.\n"
               "Use the model to bound directory invalidation round-trips before\n"
               "fixing the protocol's timeout budgets.\n";
  return 0;
}
