// Scenario: invalidation multicast in a directory coherence protocol.
//
// A chip multiprocessor keeps directories at each node; a write to a line
// shared by k cores multicasts invalidations to the sharers — a multicast
// whose destination set is *localized* (sharers cluster near the home node
// in many workloads) or *scattered* (random sharing). This is precisely
// the Fig. 6 vs Fig. 7 distinction. The example contrasts the two sharing
// patterns at identical load and shows why localized sharing is cheaper:
// a single injection port serves the whole invalidation fan-out.
#include <iostream>
#include <sstream>

#include "quarc/model/performance_model.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/traffic/pattern.hpp"
#include "quarc/util/table.hpp"

int main() {
  using namespace quarc;

  const int nodes = 64;
  const int inval_flits = 20;   // short invalidation packets (> diameter 16)
  const double alpha = 0.10;    // invalidations are 10% of NoC traffic
  const int sharers = 6;

  QuarcTopology topo(nodes);
  Rng rng(7);
  auto scattered = RingRelativePattern::random(nodes, sharers, rng);
  // Sharers clustered on the left rim of the home node.
  auto clustered = RingRelativePattern::localized(nodes, 1, nodes / 4, sharers, rng);

  Table table({"sharing pattern", "rate", "model inval latency", "sim inval latency",
               "sim unicast latency"},
              2);

  for (double rate : {0.0005, 0.001}) {
    for (const auto& [name, pattern] :
         {std::pair<std::string, std::shared_ptr<const MulticastPattern>>{"scattered", scattered},
          {"clustered", clustered}}) {
      Workload w;
      w.message_rate = rate;
      w.multicast_fraction = alpha;
      w.message_length = inval_flits;
      w.pattern = pattern;

      const auto model = PerformanceModel(topo, w).evaluate();

      sim::SimConfig c;
      c.workload = w;
      c.warmup_cycles = 4000;
      c.measure_cycles = 40000;
      c.seed = 5;
      const auto sim = sim::Simulator(topo, c).run();

      std::ostringstream rate_str;
      rate_str << rate;
      table.add_row({name, rate_str.str(), model.avg_multicast_latency,
                     sim.multicast_latency.mean, sim.unicast_latency.mean});
    }
  }
  table.print_titled("invalidation multicast: scattered vs clustered sharers (N=64, 6 sharers)");

  std::cout << "\nReading: scattered sharers span up to four quadrants, so the\n"
               "invalidation completes when the *slowest* of four asynchronous\n"
               "streams delivers (the paper's max-of-exponentials); clustered\n"
               "sharers ride one stream and finish with the farthest sharer.\n"
               "Use the model to bound directory invalidation round-trips before\n"
               "fixing the protocol's timeout budgets.\n";
  return 0;
}
