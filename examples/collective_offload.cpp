// Scenario: sizing an SoC barrier/broadcast fabric.
//
// A multiprocessor SoC runs iterative data-parallel kernels: each
// iteration ends with a controller node broadcasting updated parameters to
// all cores (the "global data movement and global control" workloads the
// paper's introduction motivates). The architect must choose between a
// Spidergon-style one-port fabric and the Quarc all-port fabric, and wants
// the broadcast completion time at several utilisation points *before*
// committing to RTL.
//
// This example answers that with the analytical model alone (instant), and
// spot-checks the preferred design point with the simulator.
#include <cmath>
#include <iostream>

#include "quarc/model/performance_model.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/topo/spidergon.hpp"
#include "quarc/traffic/pattern.hpp"
#include "quarc/util/table.hpp"

int main() {
  using namespace quarc;

  const int cores = 32;
  const int param_flits = 64;   // parameter block: 64 flits
  const double alpha = 0.02;    // 2% of traffic is the broadcast control plane

  auto pattern = RingRelativePattern::broadcast(cores);
  QuarcTopology quarc(cores);
  SpidergonTopology spidergon(cores);

  Table table({"rate (msg/cyc/node)", "Quarc bcast (model)", "Spidergon bcast (model)",
               "Quarc unicast", "Spidergon unicast"},
              1);
  for (double rate : {0.0005, 0.001, 0.0015, 0.002}) {
    Workload w;
    w.message_rate = rate;
    w.multicast_fraction = alpha;
    w.message_length = param_flits;
    w.pattern = pattern;
    const auto q = PerformanceModel(quarc, w).evaluate();
    const auto s = PerformanceModel(spidergon, w).evaluate();
    auto cell = [](double v) -> Cell {
      if (!std::isfinite(v)) return std::string("saturated");
      return v;
    };
    table.add_row({rate, cell(q.avg_multicast_latency), cell(s.avg_multicast_latency),
                   cell(q.avg_unicast_latency), cell(s.avg_unicast_latency)});
  }
  table.print_titled("design-space: broadcast completion latency, 32 cores, 64-flit parameters");

  // Spot-check the chosen design point in simulation.
  Workload chosen;
  chosen.message_rate = 0.001;
  chosen.multicast_fraction = alpha;
  chosen.message_length = param_flits;
  chosen.pattern = pattern;

  sim::SimConfig c;
  c.workload = chosen;
  c.warmup_cycles = 5000;
  c.measure_cycles = 60000;
  const auto sim_q = sim::Simulator(quarc, c).run();
  const auto sim_s = sim::Simulator(spidergon, c).run();
  std::cout << "\nspot-check at rate 0.001 (simulator):\n"
            << "  Quarc broadcast     : " << sim_q.multicast_latency.to_string() << " cycles\n"
            << "  Spidergon broadcast : " << sim_s.multicast_latency.to_string() << " cycles\n"
            << "  -> all-port true broadcast completes "
            << sim_s.multicast_latency.mean / sim_q.multicast_latency.mean
            << "x faster; budget the barrier at ~"
            << static_cast<int>(sim_q.multicast_latency.max) << " cycles worst-case observed.\n";
  return 0;
}
