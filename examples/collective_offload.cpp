// Scenario: sizing an SoC barrier/broadcast fabric.
//
// A multiprocessor SoC runs iterative data-parallel kernels: each
// iteration ends with a controller node broadcasting updated parameters to
// all cores (the "global data movement and global control" workloads the
// paper's introduction motivates). The architect must choose between a
// Spidergon-style one-port fabric and the Quarc all-port fabric, and wants
// the broadcast completion time at several utilisation points *before*
// committing to RTL.
//
// This example answers that with the analytical model alone (instant), and
// spot-checks the preferred design point with the simulator.
#include <cmath>
#include <iostream>

#include "quarc/api/scenario.hpp"
#include "quarc/util/table.hpp"

int main() {
  using namespace quarc;

  const int cores = 32;
  const int param_flits = 64;   // parameter block: 64 flits
  const double alpha = 0.02;    // 2% of traffic is the broadcast control plane

  auto scenario_for = [&](const std::string& family) {
    api::Scenario s;
    s.topology(family + ":" + std::to_string(cores))
        .pattern("broadcast")
        .alpha(alpha)
        .message_length(param_flits)
        .warmup(5000)
        .measure(60000);
    return s;
  };
  api::Scenario quarc = scenario_for("quarc");
  api::Scenario spidergon = scenario_for("spidergon");

  Table table({"rate (msg/cyc/node)", "Quarc bcast (model)", "Spidergon bcast (model)",
               "Quarc unicast", "Spidergon unicast"},
              1);
  for (double rate : {0.0005, 0.001, 0.0015, 0.002}) {
    const api::ResultRow q = quarc.rate(rate).run_model().rows.front();
    const api::ResultRow s = spidergon.rate(rate).run_model().rows.front();
    auto cell = [](double v) -> Cell {
      if (!std::isfinite(v)) return std::string("saturated");
      return v;
    };
    table.add_row({rate, cell(q.model_multicast_latency), cell(s.model_multicast_latency),
                   cell(q.model_unicast_latency), cell(s.model_unicast_latency)});
  }
  table.print_titled("design-space: broadcast completion latency, 32 cores, 64-flit parameters");

  // Spot-check the chosen design point in simulation (raw results: the
  // observed worst case feeds the barrier budget).
  const sim::SimResult sim_q = quarc.rate(0.001).run_sim_raw();
  const sim::SimResult sim_s = spidergon.rate(0.001).run_sim_raw();
  std::cout << "\nspot-check at rate 0.001 (simulator):\n"
            << "  Quarc broadcast     : " << sim_q.multicast_latency.to_string() << " cycles\n"
            << "  Spidergon broadcast : " << sim_s.multicast_latency.to_string() << " cycles\n"
            << "  -> all-port true broadcast completes "
            << sim_s.multicast_latency.mean / sim_q.multicast_latency.mean
            << "x faster; budget the barrier at ~"
            << static_cast<int>(sim_q.multicast_latency.max) << " cycles worst-case observed.\n";
  return 0;
}
