// Minimal JSON document model, writer and parser (no external deps).
//
// Exists so ResultSet documents (api/result_set.hpp) can be emitted and
// round-tripped by tooling without pulling a third-party JSON library into
// a research artifact. Scope is deliberately small: the six JSON types,
// UTF-8 pass-through strings with standard escapes, and a strict
// recursive-descent parser that throws InvalidArgument on malformed input.
//
// Numbers keep their exact source representation — double, int64 or
// uint64 — so 64-bit identifiers (e.g. ResultSet seeds) round-trip
// bit-exactly instead of being squeezed through a double. JSON has no
// representation for non-finite numbers; callers that need to carry
// +inf/NaN (e.g. saturated latencies) must map them to null/strings at the
// schema layer — Value::write() throws on a non-finite number rather than
// emitting invalid JSON silently. Formatting and parsing use
// std::to_chars/std::from_chars, so documents are locale-independent.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace quarc::json {

class Value;

/// Object members keep insertion order (stable, diff-friendly documents);
/// lookup is linear, which is fine at ResultSet sizes.
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() : type_(Type::Null) {}
  Value(std::nullptr_t) : type_(Type::Null) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(double d) : type_(Type::Number), num_(d) {}
  Value(int v) : type_(Type::Number), kind_(NumKind::Int), int_(v) {}
  Value(std::int64_t v) : type_(Type::Number), kind_(NumKind::Int), int_(v) {}
  Value(std::uint64_t v) : type_(Type::Number), kind_(NumKind::UInt), uint_(v) {}
  Value(const char* s) : type_(Type::String), str_(s) {}
  Value(std::string s) : type_(Type::String), str_(std::move(s)) {}

  static Value array() {
    Value v;
    v.type_ = Type::Array;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::Object;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw InvalidArgument on a type mismatch (and, for
  /// the integer accessors, on a numeric value outside the target range).
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::vector<Member>& as_object() const;

  /// Array building.
  Value& push_back(Value v);

  /// Object building: appends (no duplicate-key check; parsers keep the
  /// first occurrence on lookup).
  Value& set(std::string key, Value v);

  /// Object lookup: nullptr when absent or when this is not an object.
  const Value* find(std::string_view key) const;
  /// Object lookup that throws InvalidArgument when the key is missing.
  const Value& at(std::string_view key) const;

  /// Serialises to `os`. indent < 0: compact one-line form; indent >= 0:
  /// pretty-printed with that many spaces per level. Throws
  /// InvalidArgument when the document contains a non-finite number.
  void write(std::ostream& os, int indent = -1) const;
  std::string dump(int indent = -1) const;

  /// Strict parser for a complete document (trailing whitespace allowed,
  /// anything else is an error). Throws InvalidArgument with an offset on
  /// malformed input.
  static Value parse(std::string_view text);

 private:
  enum class NumKind : std::uint8_t { Double, Int, UInt };

  void write_impl(std::ostream& os, int indent, int depth) const;
  void write_number(std::ostream& os) const;

  Type type_;
  bool bool_ = false;
  NumKind kind_ = NumKind::Double;  ///< exact source representation
  double num_ = 0.0;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<Member> members_;
};

/// JSON string escaping (quotes not included); exposed for tests.
std::string escape(std::string_view s);

/// Locale-independent shortest-round-trip rendering of a finite double,
/// exactly as Value::write emits numbers (integer-valued doubles render
/// without a decimal point). This is the canonical textual form of a
/// double everywhere one is used as part of a key or a diffable record:
/// scenario fingerprints, sweep-cache rate keys and the ResultSet CSV
/// writer all share it, so the same value never serialises two ways.
/// Throws InvalidArgument on a non-finite input.
std::string format_number(double v);

}  // namespace quarc::json
