// Deterministic fork-join helper for parameter sweeps.
//
// Bench harnesses evaluate many independent (topology, workload, rate)
// points; each point seeds its own Rng, so results are identical regardless
// of the number of worker threads. Exceptions thrown by tasks are captured
// and rethrown on the calling thread (first one wins), per CP.23/CP.25:
// threads are joined before parallel_for returns.
#pragma once

#include <cstddef>
#include <functional>

namespace quarc {

/// Number of workers parallel_for uses by default: hardware_concurrency,
/// overridable via the QUARC_THREADS environment variable (0 or 1 forces
/// serial execution — useful when debugging).
int default_thread_count();

/// Runs body(i) for every i in [0, n), distributing indices dynamically
/// over `threads` workers (<=0 selects default_thread_count()). Blocks until
/// all iterations finish; rethrows the first captured exception.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body, int threads = -1);

}  // namespace quarc
