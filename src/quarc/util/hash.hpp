// Shared non-cryptographic hashing primitives.
#pragma once

#include <cstdint>
#include <string_view>

namespace quarc {

/// FNV-1a 64-bit over a byte string; `basis` chains multi-part digests.
/// Used by scenario fingerprints and RoutePlan structural digests — both
/// must stay stable across runs and processes, which FNV-1a's fixed
/// constants guarantee.
inline std::uint64_t fnv1a64(std::string_view bytes,
                             std::uint64_t basis = 0xCBF29CE484222325ULL) {
  std::uint64_t h = basis;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace quarc
