// Fundamental identifier and time types shared by the topology, model and
// simulator layers.
#pragma once

#include <cstdint>
#include <limits>

namespace quarc {

/// Index of a node (router + attached processing element). Nodes are
/// numbered 0..N-1; for ring-based topologies the numbering is clockwise.
using NodeId = std::int32_t;

/// Index into a Topology's channel table. A "channel" is any unidirectional
/// resource the queueing model sees: injection links, external (router to
/// router) links and ejection links.
using ChannelId = std::int32_t;

/// Simulation time in cycles. One flit crosses one channel per cycle.
using Cycle = std::int64_t;

/// Injection-port index within a router (0..num_ports-1).
using PortId = std::int32_t;

inline constexpr ChannelId kInvalidChannel = -1;
inline constexpr NodeId kInvalidNode = -1;

}  // namespace quarc
