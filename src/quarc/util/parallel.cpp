#include "quarc/util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace quarc {

int default_thread_count() {
  if (const char* env = std::getenv("QUARC_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 0) return v == 0 ? 1 : v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body, int threads) {
  if (n == 0) return;
  int workers = threads <= 0 ? default_thread_count() : threads;
  if (workers > static_cast<int>(n)) workers = static_cast<int>(n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};

  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        body(i);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace quarc
