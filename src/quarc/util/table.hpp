// Aligned text tables and CSV emission for the bench harness.
//
// Every bench binary regenerates one of the paper's figures as a table of
// series (the "rows the paper reports"); this module keeps the formatting
// in one place so all benches read identically.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace quarc {

/// A table cell: text, integer or floating-point (formatted with the
/// table's precision, or "-"/custom marker for missing points).
using Cell = std::variant<std::string, double, std::int64_t>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int precision = 3);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  /// Renders an aligned, pipe-separated table.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

  /// Convenience: print with a title banner to stdout.
  void print_titled(const std::string& title) const;

 private:
  std::string format_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace quarc
