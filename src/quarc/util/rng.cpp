#include "quarc/util/rng.hpp"

#include <cmath>

#include "quarc/util/error.hpp"

namespace quarc {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  QUARC_ASSERT(bound > 0, "uniform_below requires positive bound");
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  QUARC_ASSERT(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::exponential(double rate) {
  QUARC_ASSERT(rate > 0.0, "exponential requires positive rate");
  // 1 - uniform() is in (0,1], so the log argument is never zero.
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace quarc
