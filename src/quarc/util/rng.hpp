// Deterministic pseudo-random number generation.
//
// The simulator's reproducibility rests on this module: every stochastic
// decision (arrival times, destination choices, pattern construction) draws
// from an explicitly seeded Rng, and parallel sweeps derive independent
// streams with split(). xoshiro256** (Blackman & Vigna) is used for its
// quality and speed; SplitMix64 expands seeds, as its authors recommend.
#pragma once

#include <cstdint>

namespace quarc {

/// SplitMix64 step; used for seed expansion and cheap hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  /// Seeds the four words of state via SplitMix64 so that any 64-bit seed
  /// (including 0) produces a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform integer in [0, bound) using Lemire rejection; bound must be > 0.
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  /// Used for Poisson inter-arrival times; rate must be > 0.
  double exponential(double rate);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derives an independent generator; deterministic function of the current
  /// state (advances this generator by one draw).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace quarc
