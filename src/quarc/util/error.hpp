// Error-handling machinery for the quarc library.
//
// Two categories of failure are distinguished, following the C++ Core
// Guidelines (I.5/I.6, E.12):
//   * Precondition / configuration errors raised on the public API surface
//     throw quarc::InvalidArgument (callers can recover or report).
//   * Internal invariant violations abort via QUARC_ASSERT; they indicate a
//     bug in the library itself, never a user mistake.
#pragma once

#include <stdexcept>
#include <string>

namespace quarc {

/// Thrown when a public API receives an argument or configuration that
/// violates a documented precondition (e.g. a Quarc network whose size is
/// not a positive multiple of four).
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when an algorithm cannot complete for a well-formed input
/// (e.g. the fixed-point solver diverges for a saturated workload when the
/// caller demanded convergence).
class ComputationError : public std::runtime_error {
 public:
  explicit ComputationError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line, const std::string& msg);
[[noreturn]] void require_fail(const char* file, int line, const std::string& msg);
}  // namespace detail

}  // namespace quarc

/// Internal invariant check. Enabled in all build types: the library is a
/// research artifact and silent state corruption would invalidate results.
#define QUARC_ASSERT(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) [[unlikely]] {                                              \
      ::quarc::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));        \
    }                                                                        \
  } while (false)

/// Precondition check on the public API surface; throws InvalidArgument.
#define QUARC_REQUIRE(expr, msg)                                             \
  do {                                                                       \
    if (!(expr)) [[unlikely]] {                                              \
      ::quarc::detail::require_fail(__FILE__, __LINE__, (msg));              \
    }                                                                        \
  } while (false)
