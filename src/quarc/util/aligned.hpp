// Cache-line-aligned allocation for the SoA hot-path pools.
//
// The batched curve solver (solver.hpp's CurveWorkspace) lays per-channel
// state out channel-major, point-minor: lane l of channel c lives at
// pool[c * lanes + l], so one channel visit touches K contiguous doubles.
// Aligning every pool to the 64-byte cache line keeps a K = 8 lane group
// inside exactly one line (no straddle, no split loads/stores for aligned
// vector widths up to AVX-512). FlowGraph's CSR pools and the stencil
// weight pool adopt the same allocator: they are read once per lane group
// in the same inner loops, so line-aligned starts keep the streaming reads
// predictable too.
//
// AlignedVector is std::vector with this allocator — same interface, same
// value semantics, just a stronger alignment guarantee on data(). Spans
// view it like any other contiguous range.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace quarc {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T), "alignment must not weaken the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace quarc
