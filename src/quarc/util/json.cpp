#include "quarc/util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

#include "quarc/util/error.hpp"

namespace quarc::json {

bool Value::as_bool() const {
  QUARC_REQUIRE(is_bool(), "json: value is not a bool");
  return bool_;
}

double Value::as_double() const {
  QUARC_REQUIRE(is_number(), "json: value is not a number");
  switch (kind_) {
    case NumKind::Int: return static_cast<double>(int_);
    case NumKind::UInt: return static_cast<double>(uint_);
    case NumKind::Double: break;
  }
  return num_;
}

std::int64_t Value::as_int() const {
  QUARC_REQUIRE(is_number(), "json: value is not a number");
  switch (kind_) {
    case NumKind::Int: return int_;
    case NumKind::UInt:
      QUARC_REQUIRE(uint_ <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()),
                    "json: number does not fit in int64");
      return static_cast<std::int64_t>(uint_);
    case NumKind::Double: break;
  }
  QUARC_REQUIRE(num_ >= -9.3e18 && num_ <= 9.2e18, "json: number does not fit in int64");
  return static_cast<std::int64_t>(num_);
}

std::uint64_t Value::as_uint() const {
  QUARC_REQUIRE(is_number(), "json: value is not a number");
  switch (kind_) {
    case NumKind::UInt: return uint_;
    case NumKind::Int:
      QUARC_REQUIRE(int_ >= 0, "json: negative number is not a uint64");
      return static_cast<std::uint64_t>(int_);
    case NumKind::Double: break;
  }
  QUARC_REQUIRE(num_ >= 0.0 && num_ <= 1.8e19, "json: number does not fit in uint64");
  return static_cast<std::uint64_t>(num_);
}

const std::string& Value::as_string() const {
  QUARC_REQUIRE(is_string(), "json: value is not a string");
  return str_;
}

const std::vector<Value>& Value::as_array() const {
  QUARC_REQUIRE(is_array(), "json: value is not an array");
  return arr_;
}

const std::vector<Member>& Value::as_object() const {
  QUARC_REQUIRE(is_object(), "json: value is not an object");
  return members_;
}

Value& Value::push_back(Value v) {
  QUARC_REQUIRE(is_array(), "json: push_back on a non-array");
  arr_.push_back(std::move(v));
  return *this;
}

Value& Value::set(std::string key, Value v) {
  QUARC_REQUIRE(is_object(), "json: set on a non-object");
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  QUARC_REQUIRE(v != nullptr, "json: missing key '" + std::string(key) + "'");
  return *v;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  QUARC_REQUIRE(std::isfinite(v), "json: cannot serialise a non-finite number");
  char buf[40];
  std::to_chars_result r{buf, std::errc{}};
  // Integer-valued doubles render without a point; everything else gets
  // std::to_chars' shortest round-trip form. Locale-independent either way.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    r = std::to_chars(buf, buf + sizeof buf, static_cast<std::int64_t>(v));
  } else {
    r = std::to_chars(buf, buf + sizeof buf, v);
  }
  QUARC_ASSERT(r.ec == std::errc{}, "number formatting buffer overflow");
  return std::string(buf, r.ptr);
}

void Value::write_number(std::ostream& os) const {
  char buf[40];
  std::to_chars_result r{buf, std::errc{}};
  switch (kind_) {
    case NumKind::Int:
      r = std::to_chars(buf, buf + sizeof buf, int_);
      break;
    case NumKind::UInt:
      r = std::to_chars(buf, buf + sizeof buf, uint_);
      break;
    case NumKind::Double:
      os << format_number(num_);
      return;
  }
  QUARC_ASSERT(r.ec == std::errc{}, "number formatting buffer overflow");
  os.write(buf, r.ptr - buf);
}

namespace {

void newline_indent(std::ostream& os, int indent, int depth) {
  if (indent < 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Value::write_impl(std::ostream& os, int indent, int depth) const {
  switch (type_) {
    case Type::Null: os << "null"; break;
    case Type::Bool: os << (bool_ ? "true" : "false"); break;
    case Type::Number: write_number(os); break;
    case Type::String: os << '"' << escape(str_) << '"'; break;
    case Type::Array: {
      if (arr_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) os << ',';
        newline_indent(os, indent, depth + 1);
        arr_[i].write_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Type::Object: {
      if (members_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) os << ',';
        newline_indent(os, indent, depth + 1);
        os << '"' << escape(members_[i].first) << "\":";
        if (indent >= 0) os << ' ';
        members_[i].second.write_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

void Value::write(std::ostream& os, int indent) const { write_impl(os, indent, 0); }

std::string Value::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) fail("invalid literal");
    pos_ += lit.size();
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_literal("true"); return Value(true);
      case 'f': expect_literal("false"); return Value(false);
      case 'n': expect_literal("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return obj;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return arr;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  std::string parse_unicode_escape() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    // UTF-8 encode the BMP code point (surrogate pairs are not needed by
    // any quarc document; reject rather than mis-encode).
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate pairs are not supported");
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool integer = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    const char* tb = token.data();
    const char* te = tb + token.size();
    if (integer) {
      // Exact integer storage: int64 first, uint64 for the high half so
      // 64-bit identifiers round-trip bit-exactly.
      std::int64_t i = 0;
      auto [p, ec] = std::from_chars(tb, te, i);
      if (ec == std::errc{} && p == te) return Value(i);
      std::uint64_t u = 0;
      auto [pu, ecu] = std::from_chars(tb, te, u);
      if (ecu == std::errc{} && pu == te) return Value(u);
      // Out-of-range integers (e.g. 40 digits) degrade to double below.
    }
    double d = 0.0;
    auto [p, ec] = std::from_chars(tb, te, d);
    if (ec == std::errc::result_out_of_range) {
      fail("number out of double range '" + std::string(token) + "'");
    }
    if (ec != std::errc{} || p != te) fail("invalid number '" + std::string(token) + "'");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace quarc::json
