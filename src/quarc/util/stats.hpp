// Streaming statistics used by the simulator's measurement layer and by the
// benches when comparing model predictions against simulation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace quarc {

/// Welford single-pass accumulator: mean / variance / extrema without
/// storing samples. Numerically stable for long simulation runs.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::int64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch-means confidence interval estimator.
///
/// Simulation latency samples are autocorrelated, so the naive
/// stddev/sqrt(n) interval is too narrow. Batch means groups consecutive
/// samples (in creation order) into `num_batches` batches and treats the
/// batch averages as approximately independent.
class BatchMeans {
 public:
  explicit BatchMeans(int num_batches = 16);

  void add(double x);

  std::int64_t count() const { return static_cast<std::int64_t>(samples_.size()); }
  double mean() const;
  /// Half-width of the ~95% confidence interval (t ~= 2.0 approximation).
  /// Returns +inf when fewer than two batches of data are available.
  double ci_halfwidth() const;

 private:
  int num_batches_;
  std::vector<double> samples_;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow bins.
/// Used to inspect latency distributions (e.g. per-port multicast streams).
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);
  int bins() const { return static_cast<int>(counts_.size()); }
  std::int64_t bin_count(int b) const { return counts_.at(static_cast<std::size_t>(b)); }
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }
  std::int64_t total() const { return total_; }
  double bin_low(int b) const;
  double bin_high(int b) const;
  /// x such that approximately the given fraction q in [0,1] of samples are
  /// below x (linear interpolation inside the containing bin).
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t total_ = 0;
};

/// Summary of a measured quantity: sample mean plus a batch-means CI.
struct StatSummary {
  std::int64_t count = 0;
  double mean = 0.0;
  double ci95 = std::numeric_limits<double>::infinity();
  double min = 0.0;
  double max = 0.0;

  std::string to_string() const;
};

}  // namespace quarc
