#include "quarc/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "quarc/util/error.hpp"

namespace quarc {

Table::Table(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  QUARC_REQUIRE(!headers_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  QUARC_REQUIRE(cells.size() == headers_.size(), "Table row width must match header count");
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& c) const {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&c)) {
    os << *s;
  } else if (const auto* d = std::get_if<double>(&c)) {
    os << std::fixed << std::setprecision(precision_) << *d;
  } else {
    os << std::get<std::int64_t>(c);
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(format_cell(row[i]));
      widths[i] = std::max(widths[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << (i == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[i])) << r[i];
    }
    os << " |\n";
  };
  std::vector<std::string> hdr(headers_.begin(), headers_.end());
  print_row(hdr);
  os << "|";
  for (std::size_t i = 0; i < widths.size(); ++i) {
    os << std::string(widths[i] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& r : rendered) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::string& s) {
    if (s.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (char ch : s) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << s;
    }
  };
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i) os << ',';
    emit(headers_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      emit(format_cell(row[i]));
    }
    os << '\n';
  }
}

void Table::print_titled(const std::string& title) const {
  std::cout << "\n== " << title << " ==\n";
  print(std::cout);
  std::cout.flush();
}

}  // namespace quarc
