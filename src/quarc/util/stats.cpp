#include "quarc/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "quarc/util/error.hpp"

namespace quarc {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

BatchMeans::BatchMeans(int num_batches) : num_batches_(num_batches) {
  QUARC_REQUIRE(num_batches >= 2, "BatchMeans requires at least two batches");
}

void BatchMeans::add(double x) { samples_.push_back(x); }

double BatchMeans::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double BatchMeans::ci_halfwidth() const {
  const auto n = static_cast<std::int64_t>(samples_.size());
  if (n < 2 * num_batches_) return std::numeric_limits<double>::infinity();
  const std::int64_t per_batch = n / num_batches_;
  RunningStats batch_stats;
  for (int b = 0; b < num_batches_; ++b) {
    double s = 0.0;
    for (std::int64_t i = b * per_batch; i < (b + 1) * per_batch; ++i) {
      s += samples_[static_cast<std::size_t>(i)];
    }
    batch_stats.add(s / static_cast<double>(per_batch));
  }
  // t-quantile for ~95% with (num_batches-1) dof is close to 2.1 for the
  // batch counts used here; 2.0 is the conventional engineering choice.
  return 2.0 * batch_stats.stddev() / std::sqrt(static_cast<double>(num_batches_));
}

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  QUARC_REQUIRE(hi > lo, "Histogram range must be non-empty");
  QUARC_REQUIRE(bins > 0, "Histogram requires at least one bin");
  counts_.assign(static_cast<std::size_t>(bins), 0);
  width_ = (hi_ - lo_) / bins;
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto b = static_cast<std::size_t>((x - lo_) / width_);
    b = std::min(b, counts_.size() - 1);
    ++counts_[b];
  }
}

double Histogram::bin_low(int b) const { return lo_ + width_ * b; }
double Histogram::bin_high(int b) const { return lo_ + width_ * (b + 1); }

double Histogram::quantile(double q) const {
  QUARC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile fraction must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cum + static_cast<double>(counts_[b]);
    if (target <= next && counts_[b] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[b]);
      return bin_low(static_cast<int>(b)) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string StatSummary::to_string() const {
  std::ostringstream os;
  os << mean;
  if (std::isfinite(ci95)) os << " +- " << ci95;
  os << " (n=" << count << ")";
  return os.str();
}

}  // namespace quarc
