#include "quarc/util/error.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace quarc::detail {

[[noreturn]] void assert_fail(const char* expr, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "quarc: internal invariant violated at %s:%d\n  expression: %s\n  detail: %s\n",
               file, line, expr, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void require_fail(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << msg << " (" << file << ":" << line << ")";
  throw InvalidArgument(os.str());
}

}  // namespace quarc::detail
