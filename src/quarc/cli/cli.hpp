// Command-line front end for the model and simulator (the `quarcnoc`
// tool). Parsing and scenario assembly live in the library so they are
// unit-testable; tools/quarcnoc.cpp is a thin main().
//
// All object construction goes through the api layer: topologies and
// patterns resolve by registry spec, evaluation runs through a Scenario,
// and --json/--csv emit the ResultSet document downstream tooling parses.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "quarc/api/scenario.hpp"
#include "quarc/topo/topology.hpp"

namespace quarc::cli {

struct Options {
  /// Subcommand: "" evaluates the single scenario below; "batch" runs a
  /// scenario fleet from a spec file (batch/scenario_set.hpp); "serve"
  /// answers JSON requests over stdin from a shared result store
  /// (batch/serve.hpp).
  std::string command;
  /// Batch spec source ("-": read the input stream).
  std::string batch_file = "-";
  /// Batch: expand, fingerprint and report artifact dedup without solving.
  bool dry_run = false;
  /// Worker threads for batch/serve pools and the single-scenario sweep
  /// (<=0: QUARC_THREADS or hardware default).
  int threads = -1;
  /// Serve: in-memory row bound for the result store (0: unbounded).
  std::size_t memory_limit = 0;
  /// Topology registry spec. A bare name ("mesh") is completed from the
  /// dimension flags below; a full spec ("mesh:8x8") wins over them.
  std::string topology = "quarc";
  int nodes = 16;        ///< ring topologies
  int width = 4;         ///< mesh/torus
  int height = 4;        ///< mesh/torus
  int dims = 4;          ///< hypercube
  double rate = 0.004;   ///< messages/cycle/node
  double alpha = 0.0;    ///< multicast fraction
  int msg = 32;          ///< flits per message
  /// Pattern registry spec (broadcast | random:K | localized:LO:HI:K | uniform:K).
  std::string pattern = "broadcast";
  std::uint64_t seed = 1;
  bool run_sim = false;
  /// Simulator engine: "active" (event-driven default) or "reference"
  /// (the historical loop, the byte-identity oracle). Empty defers to
  /// SimConfig's default (QUARC_SIM_ENGINE, else active).
  std::string sim_engine;
  std::int64_t warmup = 5000;
  std::int64_t measure = 40000;
  /// 0 = evaluate the single rate above; otherwise sweep this many points
  /// up to fill * saturation.
  int sweep_points = 0;
  double fill = 0.85;
  /// Explicit comma-separated rate grid (--rates); overrides both --rate
  /// and --sweep. Exact decimal rates make stored ResultSets comparable
  /// across machines (the auto grid depends on the saturation search's
  /// floating-point behaviour); the checked-in bench baselines use this.
  std::vector<double> rates;
  /// Sweep-cache directory; empty disables caching. Solved (fingerprint,
  /// rate) points are reused across invocations sharing the directory.
  std::string cache_dir;
  int shards = 1;     ///< sweep shard count (bit-identical for any value)
  /// Solver iteration: "anderson" (accelerated default) or "gauss-seidel"
  /// (the historical damped sweep, the equivalence oracle).
  std::string solver_iteration = "anderson";
  /// Latency assembly: "stencil" (compiled walk, default) or "direct"
  /// (per-pair route walk; byte-identical — the equivalence oracle).
  std::string assembly = "stencil";
  /// Saturation search: "ridders" (superlinear probe, default) or
  /// "bisect" (the historical doubling + bisection fallback).
  std::string probe = "ridders";
  /// Disable continuation seeding: every sweep point solves from the
  /// zero-load seed (equivalent to Scenario::spine_points(0)).
  bool no_spine = false;
  /// SoA lane count of the batched solve (sweep and batch modes); every
  /// value is byte-identical, this only tunes throughput.
  int batch_points = 8;
  /// Force the historical one-scalar-solve-per-point path (equivalent to
  /// --batch-points 1; the byte-identity escape hatch CI compares against).
  bool no_batch = false;
  bool csv = false;   ///< ResultSet CSV instead of the aligned table
  bool json = false;  ///< ResultSet JSON document instead of the table
  bool help = false;
};

/// Parses argv-style arguments (without the program name). Throws
/// InvalidArgument with a helpful message on malformed input.
Options parse(std::span<const std::string> args);

/// The --help text (includes the registered topology/pattern listings).
std::string usage();

/// The topology registry spec the options denote (dimension flags folded
/// into a bare name).
std::string topology_spec(const Options& opts);

/// Instantiates the requested topology via the registry.
std::unique_ptr<Topology> make_topology(const Options& opts);

/// Assembles the full scenario (topology, pattern, workload, sim knobs).
api::Scenario make_scenario(const Options& opts);

/// Runs the tool end to end; returns a process exit code. Results go to
/// `out` (aligned table, or ResultSet CSV/JSON per options; JSONL streams
/// for batch/serve); diagnostics that must not pollute machine-readable
/// output — sweep-cache hit/miss, batch progress, serve logs — go to
/// `err`. `in` feeds `batch --file -` and the serve request loop.
int run(const Options& opts, std::istream& in, std::ostream& out, std::ostream& err);
int run(const Options& opts, std::ostream& out, std::ostream& err);  ///< in -> std::cin
int run(const Options& opts, std::ostream& out);  ///< in/err -> std::cin/std::cerr

}  // namespace quarc::cli
