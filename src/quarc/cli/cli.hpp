// Command-line front end for the model and simulator (the `quarcnoc`
// tool). Parsing and object construction live in the library so they are
// unit-testable; tools/quarcnoc.cpp is a thin main().
#pragma once

#include <memory>
#include <span>
#include <string>

#include "quarc/topo/topology.hpp"
#include "quarc/traffic/workload.hpp"

namespace quarc::cli {

struct Options {
  /// quarc | quarc1p | spidergon | mesh | mesh-ham | torus | hypercube
  std::string topology = "quarc";
  int nodes = 16;        ///< ring topologies
  int width = 4;         ///< mesh/torus
  int height = 4;        ///< mesh/torus
  int dims = 4;          ///< hypercube
  double rate = 0.004;   ///< messages/cycle/node
  double alpha = 0.0;    ///< multicast fraction
  int msg = 32;          ///< flits per message
  /// broadcast | random:K | localized:LO:HI:K  (ring topologies; random:K
  /// falls back to independent per-source sets elsewhere)
  std::string pattern = "broadcast";
  std::uint64_t seed = 1;
  bool run_sim = false;
  std::int64_t warmup = 5000;
  std::int64_t measure = 40000;
  /// 0 = evaluate the single rate above; otherwise sweep this many points
  /// up to fill * saturation.
  int sweep_points = 0;
  double fill = 0.85;
  bool csv = false;
  bool help = false;
};

/// Parses argv-style arguments (without the program name). Throws
/// InvalidArgument with a helpful message on malformed input.
Options parse(std::span<const std::string> args);

/// The --help text.
std::string usage();

/// Instantiates the requested topology.
std::unique_ptr<Topology> make_topology(const Options& opts);

/// Builds the workload, including the multicast pattern when alpha > 0.
Workload make_workload(const Options& opts, const Topology& topo);

/// Runs the tool end to end; returns a process exit code. Output goes to
/// the given stream (tables or CSV per opts.csv).
int run(const Options& opts, std::ostream& out);

}  // namespace quarc::cli
