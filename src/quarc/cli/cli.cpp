#include "quarc/cli/cli.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "quarc/api/registry.hpp"
#include "quarc/batch/batch_runner.hpp"
#include "quarc/batch/scenario_set.hpp"
#include "quarc/batch/serve.hpp"
#include "quarc/sim/engine.hpp"
#include "quarc/util/error.hpp"
#include "quarc/util/table.hpp"

namespace quarc::cli {

namespace {

long long parse_int(const std::string& flag, const std::string& value) {
  long long out = 0;
  const auto* begin = value.data();
  const auto* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  QUARC_REQUIRE(ec == std::errc{} && ptr == end, flag + " expects an integer, got '" + value + "'");
  return out;
}

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const double out = std::stod(value, &used);
    QUARC_REQUIRE(used == value.size(), flag + " expects a number, got '" + value + "'");
    return out;
  } catch (const std::exception&) {
    throw InvalidArgument(flag + " expects a number, got '" + value + "'");
  }
}

}  // namespace

std::string usage() {
  return R"(quarcnoc — analytical model & flit-level simulator for wormhole NoC multicast
(reproduction of Moadeli & Vanderbauwhede, IPDPS 2009)

usage: quarcnoc [options]             evaluate one scenario
       quarcnoc batch [options]       run a scenario fleet from a spec file
       quarcnoc serve [options]       answer JSON requests over stdin

fleet mode (batch/serve):
  --file F           batch spec file, JSONL with grid: expansion
                     (- reads stdin)                          [default -]
  --dry-run          batch: print the expanded fleet with per-member
                     fingerprints and the artifact-dedup report, solve
                     nothing
  --threads N        worker threads for the shared solve pool (also caps
                     the single-scenario sweep)     [default QUARC_THREADS]
  --memory-limit N   serve: bound the in-memory result store to N rows
                     (LRU eviction; evicted rows reload from --cache-dir
                     on demand)                       [default 0 = unbounded]
  --cache-dir D      shared (fingerprint, rate) result store, safe for
                     concurrent batch/serve processes

topology (registry spec, e.g. --topology mesh:8x8):
)" + api::describe_topologies() +
         R"(  --nodes N          ring sizes for bare names (multiple of 4)  [default 16]
  --width W --height H   mesh/torus dimensions for bare names    [default 4x4]
  --dims D           hypercube dimensions for bare names           [default 4]

workload:
  --rate R           messages/cycle/node (Poisson)            [default 0.004]
  --alpha A          multicast fraction                           [default 0]
  --msg M            message length in flits                     [default 32]
  --pattern P        pattern registry spec:
)" + api::describe_patterns() +
         R"(  --seed S           RNG seed (pattern + simulation)              [default 1]

evaluation:
  --sim              also run the flit-level simulator
  --sim-engine active|reference
                     simulator engine: the event-driven active-set
                     engine, or the historical every-channel loop
                     (the byte-identity oracle)          [default active]
  --warmup C         simulator warmup cycles                   [default 5000]
  --measure C        simulator measurement window              [default 40000]
  --sweep P          sweep P rates up to --fill * saturation instead of
                     evaluating --rate
  --rates R1,R2,...  sweep an explicit comma-separated rate grid (overrides
                     --rate/--sweep; exact rates make stored ResultSets
                     machine-portable for quarc-diff baselines)
  --fill F           sweep endpoint as a fraction of saturation [default 0.85]
  --cache-dir D      reuse solved sweep points across runs via an on-disk
                     cache keyed by (scenario fingerprint, rate); hit/miss
                     stats are printed to stderr
  --shards K         run the sweep in K contiguous shards     [default 1]
  --solver-iteration anderson|gauss-seidel
                     fixed-point iteration: Anderson-accelerated damped
                     sweeps, or the historical damped Gauss-Seidel
                     (the equivalence oracle)         [default anderson]
  --assembly stencil|direct
                     Eq. 7-16 latency assembly: the compiled
                     LatencyStencil or the per-route direct walk;
                     byte-identical results                [default stencil]
  --probe ridders|bisect
                     saturation search: the superlinear fold-fit probe
                     (certifies ~2e-3 relative) or the historical
                     doubling + bisection (~1e-3)         [default ridders]
  --no-spine         disable continuation seeding (solve every sweep
                     point from the zero-load seed)
  --batch-points K   solve up to K consecutive sweep points per SoA lane
                     group (byte-identical for every K)        [default 8]
  --no-batch         one scalar solve per point (the historical path;
                     same bytes as any --batch-points value)
  --csv              emit the ResultSet as CSV instead of a table
  --json             emit the ResultSet as a JSON document (schema v)" +
         std::to_string(api::kResultSchemaVersion) + R"()
  --help             this text
)";
}

Options parse(std::span<const std::string> args) {
  Options opts;
  std::size_t start = 0;
  if (!args.empty() && (args[0] == "batch" || args[0] == "serve")) {
    opts.command = args[0];
    start = 1;
  }
  for (std::size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const char* what) -> const std::string& {
      QUARC_REQUIRE(i + 1 < args.size(), std::string(what) + " requires a value");
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--topology") {
      opts.topology = next("--topology");
    } else if (arg == "--nodes") {
      opts.nodes = static_cast<int>(parse_int(arg, next("--nodes")));
    } else if (arg == "--width") {
      opts.width = static_cast<int>(parse_int(arg, next("--width")));
    } else if (arg == "--height") {
      opts.height = static_cast<int>(parse_int(arg, next("--height")));
    } else if (arg == "--dims") {
      opts.dims = static_cast<int>(parse_int(arg, next("--dims")));
    } else if (arg == "--rate") {
      opts.rate = parse_double(arg, next("--rate"));
    } else if (arg == "--alpha") {
      opts.alpha = parse_double(arg, next("--alpha"));
    } else if (arg == "--msg") {
      opts.msg = static_cast<int>(parse_int(arg, next("--msg")));
    } else if (arg == "--pattern") {
      opts.pattern = next("--pattern");
    } else if (arg == "--seed") {
      opts.seed = static_cast<std::uint64_t>(parse_int(arg, next("--seed")));
    } else if (arg == "--sim") {
      opts.run_sim = true;
    } else if (arg == "--sim-engine") {
      opts.sim_engine = next("--sim-engine");
      sim::parse_sim_engine(opts.sim_engine);  // validate at parse time
    } else if (arg == "--warmup") {
      opts.warmup = parse_int(arg, next("--warmup"));
    } else if (arg == "--measure") {
      opts.measure = parse_int(arg, next("--measure"));
    } else if (arg == "--sweep") {
      opts.sweep_points = static_cast<int>(parse_int(arg, next("--sweep")));
    } else if (arg == "--rates") {
      const std::string& list = next("--rates");
      opts.rates.clear();
      std::istringstream is(list);
      std::string token;
      while (std::getline(is, token, ',')) {
        opts.rates.push_back(parse_double(arg, token));
        QUARC_REQUIRE(opts.rates.back() > 0.0, "--rates entries must be positive");
      }
      QUARC_REQUIRE(!opts.rates.empty(), "--rates requires at least one rate");
    } else if (arg == "--fill") {
      opts.fill = parse_double(arg, next("--fill"));
    } else if (arg == "--cache-dir") {
      opts.cache_dir = next("--cache-dir");
    } else if (arg == "--shards") {
      opts.shards = static_cast<int>(parse_int(arg, next("--shards")));
      QUARC_REQUIRE(opts.shards >= 1, "--shards must be >= 1");
    } else if (arg == "--solver-iteration") {
      opts.solver_iteration = next("--solver-iteration");
      QUARC_REQUIRE(
          opts.solver_iteration == "anderson" || opts.solver_iteration == "gauss-seidel",
          "--solver-iteration expects anderson or gauss-seidel, got '" + opts.solver_iteration +
              "'");
    } else if (arg == "--assembly") {
      opts.assembly = next("--assembly");
      QUARC_REQUIRE(opts.assembly == "stencil" || opts.assembly == "direct",
                    "--assembly expects stencil or direct, got '" + opts.assembly + "'");
    } else if (arg == "--probe") {
      opts.probe = next("--probe");
      QUARC_REQUIRE(opts.probe == "ridders" || opts.probe == "bisect",
                    "--probe expects ridders or bisect, got '" + opts.probe + "'");
    } else if (arg == "--no-spine") {
      opts.no_spine = true;
    } else if (arg == "--batch-points") {
      opts.batch_points = static_cast<int>(parse_int(arg, next("--batch-points")));
      QUARC_REQUIRE(opts.batch_points >= 1, "--batch-points must be >= 1");
    } else if (arg == "--no-batch") {
      opts.no_batch = true;
    } else if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--file") {
      QUARC_REQUIRE(opts.command == "batch", "--file only applies to the batch subcommand");
      opts.batch_file = next("--file");
      QUARC_REQUIRE(!opts.batch_file.empty(), "--file requires a non-empty path");
    } else if (arg == "--dry-run") {
      QUARC_REQUIRE(opts.command == "batch", "--dry-run only applies to the batch subcommand");
      opts.dry_run = true;
    } else if (arg == "--threads") {
      opts.threads = static_cast<int>(parse_int(arg, next("--threads")));
      QUARC_REQUIRE(opts.threads >= 1, "--threads must be >= 1");
    } else if (arg == "--memory-limit") {
      QUARC_REQUIRE(opts.command == "serve",
                    "--memory-limit only applies to the serve subcommand");
      const long long limit = parse_int(arg, next("--memory-limit"));
      QUARC_REQUIRE(limit >= 0, "--memory-limit must be >= 0");
      opts.memory_limit = static_cast<std::size_t>(limit);
    } else {
      throw InvalidArgument("unknown option '" + arg + "' (try --help)");
    }
  }
  return opts;
}

std::string topology_spec(const Options& opts) {
  if (opts.topology.find(':') != std::string::npos) return opts.topology;
  // Bare name: complete it from the dimension flags so the historical
  // --nodes/--width/--height/--dims interface keeps working.
  const std::string& t = opts.topology;
  if (t == "quarc" || t == "quarc1p" || t == "spidergon") {
    return t + ":" + std::to_string(opts.nodes);
  }
  if (t == "mesh" || t == "mesh-ham" || t == "torus") {
    return t + ":" + std::to_string(opts.width) + "x" + std::to_string(opts.height);
  }
  if (t == "hypercube") return t + ":" + std::to_string(opts.dims);
  return t;  // unknown names fall through to the registry's error message
}

std::unique_ptr<Topology> make_topology(const Options& opts) {
  return api::make_topology(topology_spec(opts));
}

api::Scenario make_scenario(const Options& opts) {
  api::Scenario scenario;
  scenario.topology(topology_spec(opts))
      .pattern(opts.alpha > 0.0 ? opts.pattern : "none")
      .rate(opts.rate)
      .alpha(opts.alpha)
      .message_length(opts.msg)
      .seed(opts.seed)
      .warmup(opts.warmup)
      .measure(opts.measure)
      .with_sim(opts.run_sim)
      .shards(opts.shards);
  scenario.model_options().solver.iteration = opts.solver_iteration == "gauss-seidel"
                                                  ? SolverIteration::GaussSeidel
                                                  : SolverIteration::Anderson;
  scenario.model_options().assembly =
      opts.assembly == "direct" ? LatencyAssembly::DirectWalk : LatencyAssembly::Stencil;
  scenario.model_options().probe =
      opts.probe == "bisect" ? SaturationProbe::Bisection : SaturationProbe::Ridders;
  if (!opts.sim_engine.empty()) scenario.sim_engine(sim::parse_sim_engine(opts.sim_engine));
  if (opts.no_spine) scenario.spine_points(0);
  scenario.batch_points(opts.no_batch ? 1 : opts.batch_points);
  if (!opts.cache_dir.empty()) scenario.cache_dir(opts.cache_dir);
  if (opts.threads > 0) scenario.threads(opts.threads);
  return scenario;
}

namespace {

void print_table(const api::ResultSet& rs, std::ostream& out) {
  const bool mc = rs.has_multicast();
  const bool sim = rs.has_sim();
  std::vector<std::string> headers = {"rate", "model unicast"};
  if (mc) headers.push_back("model multicast");
  if (sim) {
    headers.push_back("sim unicast");
    if (mc) headers.push_back("sim multicast");
  }
  Table table(headers, 3);
  for (const api::ResultRow& r : rs.rows) {
    std::vector<Cell> row;
    std::ostringstream rate;
    rate << r.rate;
    row.emplace_back(rate.str());
    row.push_back(api::model_latency_cell(r.model_unicast_latency));
    if (mc) row.push_back(api::model_latency_cell(r.model_multicast_latency));
    if (sim) {
      row.push_back(api::sim_latency_cell(r, /*multicast=*/false));
      if (mc) row.push_back(api::sim_latency_cell(r, /*multicast=*/true));
    }
    table.add_row(std::move(row));
  }
  table.print(out);
}

/// `quarcnoc batch`: expand the fleet spec, then either report it
/// (--dry-run) or drain every point on one pool, streaming JSONL to `out`
/// and progress to `err`.
int run_batch(const Options& opts, std::istream& in, std::ostream& out, std::ostream& err) {
  batch::ScenarioSet set;
  if (opts.batch_file == "-") {
    set = batch::ScenarioSet::parse(in);
  } else {
    std::ifstream file(opts.batch_file);
    QUARC_REQUIRE(file.is_open(), "batch: cannot open spec file '" + opts.batch_file + "'");
    set = batch::ScenarioSet::parse(file);
  }
  QUARC_REQUIRE(!set.empty(), "batch: the spec expands to zero scenarios");
  batch::BatchOptions bo;
  bo.threads = opts.threads;
  bo.batch_points = opts.no_batch ? 1 : opts.batch_points;
  if (!opts.cache_dir.empty()) bo.cache = std::make_shared<SweepCache>(opts.cache_dir);
  batch::BatchRunner runner(std::move(set), bo);
  if (opts.dry_run) {
    runner.dry_run(out);
    return 0;
  }
  runner.run(&out, &err);
  if (!opts.cache_dir.empty()) {
    // Same machine-checkable shape as the single-scenario line (CI greps
    // it), aggregated over the fleet.
    const batch::BatchStats& s = runner.stats();
    err << "sweep-cache: hits=" << s.cache_hits << " misses=" << s.cache_misses << " ("
        << s.points << " points, dir=" << opts.cache_dir << ")\n";
  }
  return 0;
}

}  // namespace

int run(const Options& opts, std::ostream& out) { return run(opts, std::cin, out, std::cerr); }

int run(const Options& opts, std::ostream& out, std::ostream& err) {
  return run(opts, std::cin, out, err);
}

int run(const Options& opts, std::istream& in, std::ostream& out, std::ostream& err) {
  if (opts.help) {
    out << usage();
    return 0;
  }
  if (opts.command == "batch") return run_batch(opts, in, out, err);
  if (opts.command == "serve") {
    batch::ServeOptions so;
    so.threads = opts.threads;
    so.cache_dir = opts.cache_dir;
    so.memory_limit_rows = opts.memory_limit;
    return batch::serve(in, out, err, so);
  }
  api::Scenario scenario = make_scenario(opts);

  api::ResultSet rs;
  if (!opts.rates.empty()) {
    rs = scenario.run_sweep(opts.rates);
  } else if (opts.sweep_points > 0) {
    rs = scenario.run_sweep(opts.sweep_points, opts.fill);
  } else {
    const std::vector<double> rates = {opts.rate};
    rs = scenario.run_sweep(rates);
  }

  if (!opts.cache_dir.empty()) {
    // Machine-checkable (CI greps it), off the result stream.
    err << "sweep-cache: hits=" << rs.cache_hits << " misses=" << rs.cache_misses << " ("
        << rs.rows.size() << " points, dir=" << opts.cache_dir << ")\n";
  }
  if (rs.rows.size() > 1) {
    // Solver effort diagnostic (off the result stream). The total sums
    // every row's fixed-point iteration count — including cache-served
    // rows, which report the iterations of their original solve — so it
    // tracks the grid's solver cost, not necessarily this process's.
    long long total_iterations = 0;
    for (const api::ResultRow& r : rs.rows) total_iterations += r.solver_iterations;
    err << "solver: points=" << rs.rows.size() << " total-iterations=" << total_iterations
        << " batches=" << rs.solve_batches << " lanes=" << rs.solve_lanes
        << " retired-iterations=" << rs.solve_lane_iterations << "\n";
  }

  if (opts.json) {
    rs.write_json(out);
    return 0;
  }
  if (opts.csv) {
    rs.write_csv(out);
    return 0;
  }
  out << "topology: " << rs.topology_name << "  (" << rs.nodes << " nodes, diameter "
      << rs.diameter << ")\n"
      << "workload: " << rs.workload << "\n";
  if (opts.sweep_points > 0 && !rs.rows.empty()) {
    out << "sweep: " << opts.sweep_points << " points up to " << opts.fill
        << " of model saturation (" << rs.rows.back().rate / opts.fill << ")\n";
  }
  print_table(rs, out);
  return 0;
}

}  // namespace quarc::cli
