#include "quarc/cli/cli.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>
#include <vector>

#include "quarc/sweep/sweep.hpp"
#include "quarc/topo/hypercube.hpp"
#include "quarc/topo/mesh.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/topo/spidergon.hpp"
#include "quarc/topo/torus.hpp"
#include "quarc/traffic/pattern.hpp"
#include "quarc/util/error.hpp"
#include "quarc/util/table.hpp"

namespace quarc::cli {

namespace {

long long parse_int(const std::string& flag, const std::string& value) {
  long long out = 0;
  const auto* begin = value.data();
  const auto* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  QUARC_REQUIRE(ec == std::errc{} && ptr == end, flag + " expects an integer, got '" + value + "'");
  return out;
}

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const double out = std::stod(value, &used);
    QUARC_REQUIRE(used == value.size(), flag + " expects a number, got '" + value + "'");
    return out;
  } catch (const std::exception&) {
    throw InvalidArgument(flag + " expects a number, got '" + value + "'");
  }
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string token;
  std::istringstream is(s);
  while (std::getline(is, token, sep)) parts.push_back(token);
  return parts;
}

}  // namespace

std::string usage() {
  return R"(quarcnoc — analytical model & flit-level simulator for wormhole NoC multicast
(reproduction of Moadeli & Vanderbauwhede, IPDPS 2009)

usage: quarcnoc [options]

topology:
  --topology T       quarc | quarc1p | spidergon | mesh | mesh-ham | torus |
                     hypercube                                [default quarc]
  --nodes N          ring sizes (multiple of 4)                  [default 16]
  --width W --height H   mesh/torus dimensions                  [default 4x4]
  --dims D           hypercube dimensions                         [default 4]

workload:
  --rate R           messages/cycle/node (Poisson)            [default 0.004]
  --alpha A          multicast fraction                           [default 0]
  --msg M            message length in flits                     [default 32]
  --pattern P        broadcast | random:K | localized:LO:HI:K
                     (offsets relative to the source)     [default broadcast]
  --seed S           RNG seed (pattern + simulation)              [default 1]

evaluation:
  --sim              also run the flit-level simulator
  --warmup C         simulator warmup cycles                   [default 5000]
  --measure C        simulator measurement window              [default 40000]
  --sweep P          sweep P rates up to --fill * saturation instead of
                     evaluating --rate
  --fill F           sweep endpoint as a fraction of saturation [default 0.85]
  --csv              emit CSV instead of aligned tables
  --help             this text
)";
}

Options parse(std::span<const std::string> args) {
  Options opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const char* what) -> const std::string& {
      QUARC_REQUIRE(i + 1 < args.size(), std::string(what) + " requires a value");
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--topology") {
      opts.topology = next("--topology");
    } else if (arg == "--nodes") {
      opts.nodes = static_cast<int>(parse_int(arg, next("--nodes")));
    } else if (arg == "--width") {
      opts.width = static_cast<int>(parse_int(arg, next("--width")));
    } else if (arg == "--height") {
      opts.height = static_cast<int>(parse_int(arg, next("--height")));
    } else if (arg == "--dims") {
      opts.dims = static_cast<int>(parse_int(arg, next("--dims")));
    } else if (arg == "--rate") {
      opts.rate = parse_double(arg, next("--rate"));
    } else if (arg == "--alpha") {
      opts.alpha = parse_double(arg, next("--alpha"));
    } else if (arg == "--msg") {
      opts.msg = static_cast<int>(parse_int(arg, next("--msg")));
    } else if (arg == "--pattern") {
      opts.pattern = next("--pattern");
    } else if (arg == "--seed") {
      opts.seed = static_cast<std::uint64_t>(parse_int(arg, next("--seed")));
    } else if (arg == "--sim") {
      opts.run_sim = true;
    } else if (arg == "--warmup") {
      opts.warmup = parse_int(arg, next("--warmup"));
    } else if (arg == "--measure") {
      opts.measure = parse_int(arg, next("--measure"));
    } else if (arg == "--sweep") {
      opts.sweep_points = static_cast<int>(parse_int(arg, next("--sweep")));
    } else if (arg == "--fill") {
      opts.fill = parse_double(arg, next("--fill"));
    } else if (arg == "--csv") {
      opts.csv = true;
    } else {
      throw InvalidArgument("unknown option '" + arg + "' (try --help)");
    }
  }
  return opts;
}

std::unique_ptr<Topology> make_topology(const Options& opts) {
  if (opts.topology == "quarc") return std::make_unique<QuarcTopology>(opts.nodes);
  if (opts.topology == "quarc1p") {
    return std::make_unique<QuarcTopology>(opts.nodes, PortScheme::OnePort);
  }
  if (opts.topology == "spidergon") return std::make_unique<SpidergonTopology>(opts.nodes);
  if (opts.topology == "mesh") {
    return std::make_unique<MeshTopology>(opts.width, opts.height, MeshRouting::XY);
  }
  if (opts.topology == "mesh-ham") {
    return std::make_unique<MeshTopology>(opts.width, opts.height, MeshRouting::Hamiltonian);
  }
  if (opts.topology == "torus") return std::make_unique<TorusTopology>(opts.width, opts.height);
  if (opts.topology == "hypercube") return std::make_unique<HypercubeTopology>(opts.dims);
  throw InvalidArgument("unknown topology '" + opts.topology + "' (try --help)");
}

Workload make_workload(const Options& opts, const Topology& topo) {
  Workload w;
  w.message_rate = opts.rate;
  w.multicast_fraction = opts.alpha;
  w.message_length = opts.msg;
  if (opts.alpha > 0.0) {
    Rng rng(opts.seed);
    const int n = topo.num_nodes();
    const auto parts = split(opts.pattern, ':');
    if (parts.empty()) throw InvalidArgument("empty --pattern");
    if (parts[0] == "broadcast") {
      QUARC_REQUIRE(parts.size() == 1, "--pattern broadcast takes no arguments");
      w.pattern = RingRelativePattern::broadcast(n);
    } else if (parts[0] == "random") {
      QUARC_REQUIRE(parts.size() == 2, "--pattern random:K");
      const int k = static_cast<int>(parse_int("--pattern random", parts[1]));
      w.pattern = RingRelativePattern::random(n, k, rng);
    } else if (parts[0] == "localized") {
      QUARC_REQUIRE(parts.size() == 4, "--pattern localized:LO:HI:K");
      const int lo = static_cast<int>(parse_int("--pattern localized", parts[1]));
      const int hi = static_cast<int>(parse_int("--pattern localized", parts[2]));
      const int k = static_cast<int>(parse_int("--pattern localized", parts[3]));
      w.pattern = RingRelativePattern::localized(n, lo, hi, k, rng);
    } else {
      throw InvalidArgument("unknown pattern '" + parts[0] + "' (try --help)");
    }
  }
  w.validate(topo);
  return w;
}

namespace {

Cell latency_cell(double v) {
  if (!std::isfinite(v)) return std::string("saturated");
  return v;
}

Cell sim_latency_cell(const StatSummary& s, const sim::SimResult& r) {
  if (!r.completed) return std::string("unstable");
  if (s.count == 0) return std::string("-");
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << s.mean;
  if (std::isfinite(s.ci95)) os << " +-" << s.ci95;
  return os.str();
}

}  // namespace

int run(const Options& opts, std::ostream& out) {
  if (opts.help) {
    out << usage();
    return 0;
  }
  const auto topo = make_topology(opts);
  const Workload base = make_workload(opts, *topo);

  out << "topology: " << topo->name() << "  (" << topo->num_nodes() << " nodes, diameter "
      << topo->diameter() << ")\n"
      << "workload: " << base.describe() << "\n";

  std::vector<double> rates;
  if (opts.sweep_points > 0) {
    rates = rate_grid_to_saturation(*topo, base, opts.sweep_points, opts.fill);
    out << "sweep: " << opts.sweep_points << " points up to " << opts.fill
        << " of model saturation (" << rates.back() / opts.fill << ")\n";
  } else {
    rates.push_back(opts.rate);
  }

  SweepConfig cfg;
  cfg.run_sim = opts.run_sim;
  cfg.sim.seed = opts.seed;
  cfg.sim.warmup_cycles = opts.warmup;
  cfg.sim.measure_cycles = opts.measure;
  const auto points = sweep_rates(*topo, base, rates, cfg);

  const bool mc = base.multicast_rate() > 0.0;
  std::vector<std::string> headers = {"rate", "model unicast"};
  if (mc) headers.push_back("model multicast");
  if (opts.run_sim) {
    headers.push_back("sim unicast");
    if (mc) headers.push_back("sim multicast");
  }
  Table table(headers, 3);
  for (const auto& p : points) {
    std::vector<Cell> row;
    std::ostringstream r;
    r << p.rate;
    row.emplace_back(r.str());
    row.push_back(latency_cell(p.model.avg_unicast_latency));
    if (mc) row.push_back(latency_cell(p.model.avg_multicast_latency));
    if (opts.run_sim) {
      row.push_back(sim_latency_cell(p.sim.unicast_latency, p.sim));
      if (mc) row.push_back(sim_latency_cell(p.sim.multicast_latency, p.sim));
    }
    table.add_row(std::move(row));
  }
  if (opts.csv) {
    table.print_csv(out);
  } else {
    table.print(out);
  }
  return 0;
}

}  // namespace quarc::cli
