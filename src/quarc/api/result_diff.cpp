#include "quarc/api/result_diff.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <sstream>

namespace quarc::api {

std::string to_string(DiffStatus s) {
  switch (s) {
    case DiffStatus::Unchanged: return "unchanged";
    case DiffStatus::Improved: return "improved";
    case DiffStatus::Regressed: return "REGRESSED";
    case DiffStatus::Added: return "added";
    case DiffStatus::Removed: return "removed";
  }
  return "?";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Classifies one latency field. Saturation (+inf) is a meaningful value:
/// finite -> inf regressed, inf -> finite improved, inf -> inf unchanged.
/// NaN (never measured) transitions matter too: a measurement that
/// disappears — e.g. a simulation that newly aborts as unstable reports
/// no latency — is a regression at any tolerance, and a gained
/// measurement an improvement; NaN on both sides is not comparable.
DiffStatus classify(double base, double cand, double tolerance, double* rel_change) {
  *rel_change = kNaN;
  const bool base_nan = std::isnan(base);
  const bool cand_nan = std::isnan(cand);
  if (base_nan && cand_nan) return DiffStatus::Unchanged;
  if (!base_nan && cand_nan) return DiffStatus::Regressed;  // measurement lost
  if (base_nan && !cand_nan) return DiffStatus::Improved;   // measurement gained
  const bool base_inf = std::isinf(base);
  const bool cand_inf = std::isinf(cand);
  if (base_inf && cand_inf) return DiffStatus::Unchanged;
  if (!base_inf && cand_inf) {
    *rel_change = kInf;
    return DiffStatus::Regressed;
  }
  if (base_inf && !cand_inf) {
    *rel_change = -kInf;
    return DiffStatus::Improved;
  }
  if (base <= 0.0) return DiffStatus::Unchanged;  // degenerate; latencies are positive
  const double rel = (cand - base) / base;
  *rel_change = rel;
  if (rel > tolerance) return DiffStatus::Regressed;
  if (rel < -tolerance) return DiffStatus::Improved;
  return DiffStatus::Unchanged;
}

}  // namespace

DiffReport diff_result_sets(const ResultSet& baseline, const ResultSet& candidate,
                            const DiffOptions& options) {
  DiffReport report;
  report.scenarios_match = baseline.same_scenario(candidate);

  // Key rows by exact rate. ResultSet rows from one scenario's grid are
  // unique per rate; a double-keyed ordered map keeps entries rate-sorted.
  std::map<double, const ResultRow*> base_rows;
  for (const ResultRow& r : baseline.rows) base_rows.emplace(r.rate, &r);
  std::map<double, const ResultRow*> cand_rows;
  for (const ResultRow& r : candidate.rows) cand_rows.emplace(r.rate, &r);

  auto compare_field = [&](double rate, const char* field, double base, double cand) {
    double rel = kNaN;
    const DiffStatus status = classify(base, cand, options.tolerance, &rel);
    if (!std::isnan(base) || !std::isnan(cand)) ++report.fields_compared;
    if (status == DiffStatus::Unchanged) return;
    if (status == DiffStatus::Regressed) ++report.regressions;
    if (status == DiffStatus::Improved) ++report.improvements;
    report.entries.push_back({rate, field, base, cand, rel, status});
  };
  // Simulator health flags: losing stability or completion at a rate is
  // the sim-side saturation symptom, gated like a latency regression.
  auto compare_flag = [&](double rate, const char* field, bool base, bool cand) {
    ++report.fields_compared;
    if (base == cand) return;
    const DiffStatus status = base ? DiffStatus::Regressed : DiffStatus::Improved;
    ++(base ? report.regressions : report.improvements);
    report.entries.push_back({rate, field, base ? 1.0 : 0.0, cand ? 1.0 : 0.0, kNaN, status});
  };

  for (const auto& [rate, base] : base_rows) {
    const auto it = cand_rows.find(rate);
    if (it == cand_rows.end()) {
      // Lost coverage is gated like a lost measurement: a truncated
      // candidate (e.g. a sweep cut short at exactly the regressing
      // high-rate points) must not pass as clean.
      ++report.regressions;
      report.entries.push_back({rate, "row", kNaN, kNaN, kNaN, DiffStatus::Removed});
      continue;
    }
    const ResultRow* cand = it->second;
    // Section presence gates like any other measurement: a candidate row
    // that lost its whole model or sim section (e.g. rerun without --sim)
    // must not diff as clean just because nothing was comparable.
    compare_flag(rate, "model_run", base->model_run, cand->model_run);
    if (options.compare_sim) compare_flag(rate, "sim_run", base->sim_run, cand->sim_run);
    if (base->model_run && cand->model_run) {
      // An unconverged solve (max-iterations) reports finite latencies
      // computed from an unconverged x — numbers that can sit inside any
      // tolerance while meaning nothing. Gate the trust flip itself:
      // converged/saturated -> max-iterations is a regression however
      // small the latency drift, and the reverse an improvement.
      compare_flag(rate, "model_status", base->model_status != "max-iterations",
                   cand->model_status != "max-iterations");
      compare_field(rate, "model_unicast_latency", base->model_unicast_latency,
                    cand->model_unicast_latency);
      compare_field(rate, "model_multicast_latency", base->model_multicast_latency,
                    cand->model_multicast_latency);
    }
    if (options.compare_sim && base->sim_run && cand->sim_run) {
      compare_flag(rate, "sim_stable", base->sim_stable, cand->sim_stable);
      compare_flag(rate, "sim_completed", base->sim_completed, cand->sim_completed);
      compare_field(rate, "sim_unicast_latency", base->sim_unicast_latency,
                    cand->sim_unicast_latency);
      compare_field(rate, "sim_multicast_latency", base->sim_multicast_latency,
                    cand->sim_multicast_latency);
    }
  }
  for (const auto& [rate, cand] : cand_rows) {
    if (!base_rows.contains(rate)) {
      report.entries.push_back({rate, "row", kNaN, kNaN, kNaN, DiffStatus::Added});
    }
  }
  std::stable_sort(report.entries.begin(), report.entries.end(),
                   [](const DiffEntry& a, const DiffEntry& b) { return a.rate < b.rate; });
  return report;
}

namespace {

std::string value_text(double v) {
  if (std::isnan(v)) return "-";
  if (std::isinf(v)) return v > 0 ? "saturated" : "-inf";
  return json::format_number(v);
}

std::string change_text(double rel) {
  if (std::isnan(rel)) return "";
  if (std::isinf(rel)) return rel > 0 ? " (saturation)" : " (desaturated)";
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << " (" << (rel >= 0 ? "+" : "") << rel * 100.0 << "%)";
  return os.str();
}

}  // namespace

void write_diff_report(const DiffReport& report, std::ostream& os) {
  if (!report.scenarios_match) {
    os << "WARNING: the two documents describe different scenarios; "
          "latency comparisons below are apples to oranges\n";
  }
  for (const DiffEntry& e : report.entries) {
    os << "  rate=" << json::format_number(e.rate) << "  ";
    if (e.field == "row") {
      os << "row " << to_string(e.status) << "\n";
      continue;
    }
    os << e.field << "  " << value_text(e.baseline) << " -> " << value_text(e.candidate)
       << change_text(e.rel_change) << "  " << to_string(e.status) << "\n";
  }
  // Removed-row regressions are not field comparisons; keep them out of
  // the within-tolerance arithmetic.
  const auto removed_rows =
      std::count_if(report.entries.begin(), report.entries.end(),
                    [](const DiffEntry& e) { return e.status == DiffStatus::Removed; });
  os << "compared " << report.fields_compared << " fields: " << report.regressions
     << " regression" << (report.regressions == 1 ? "" : "s") << ", " << report.improvements
     << " improvement" << (report.improvements == 1 ? "" : "s") << ", "
     << report.fields_compared - (report.regressions - removed_rows) - report.improvements
     << " within tolerance\n";
}

}  // namespace quarc::api
