// Scenario — the single entry point for running experiments.
//
// A Scenario is a fluent builder over everything an experiment needs:
// topology spec, traffic pattern spec, workload knobs, solver and
// simulator settings, and the seed. It validates the assembled
// configuration once (spec strings resolve through the api registries,
// Workload::validate runs against the built topology) and then evaluates:
//
//   Scenario()
//       .topology("quarc:64")
//       .pattern("random:6")
//       .alpha(0.05)
//       .message_length(32)
//       .seed(42)
//       .run_sweep(8, 0.85)     // -> ResultSet, model + sim per point
//
// run_model()/run_sim() evaluate the single configured rate; run_sweep()
// evaluates a rate grid (explicit, or auto-spanned to a fraction of the
// model's saturation rate). All return ResultSet. The *_raw() escape
// hatches expose the full ModelResult/SimResult for consumers that need
// per-channel or per-port detail (ablation benches, diagnostics).
//
// Determinism: everything is a pure function of the builder state. The
// pattern is drawn from pattern_seed (defaults to seed) so a fixed
// destination set can be held while simulation seeds vary; sweep points
// derive per-point seeds exactly as sweep_rates() documents (rate-keyed,
// so thread count, shard count and grid position never change a result).
//
// Caching: attach a SweepCache (cache()/cache_dir()) and run_sweep skips
// every (fingerprint(), rate) point it has already solved, returning a
// ResultSet byte-identical to the uncached run's, with cache_hits/
// cache_misses reporting what was skipped.
//
// Routing & flow structure: validate() compiles the scenario's RoutePlan
// and rate-invariant FlowGraph exactly once per (topology, pattern, alpha,
// seed) assembly; every evaluation — each rate point of a sweep, on every
// shard and thread — shares both read-only, and the fingerprint digests
// the same plan, so no layer can disagree on routes or flow structure. A
// rate point solves from a deterministically seeded per-thread
// SolverWorkspace; nothing is rebuilt per point.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "quarc/api/result_set.hpp"
#include "quarc/sweep/fingerprint.hpp"
#include "quarc/sweep/sweep.hpp"

namespace quarc {
class SweepCache;
}

namespace quarc::batch {
class ArtifactCache;
}

namespace quarc::api {

class Scenario {
 public:
  Scenario();

  // ---- network ----
  /// Topology by registry spec (e.g. "mesh:8x8").
  Scenario& topology(std::string spec);
  /// Escape hatch: adopt an already-built topology (labelled by its
  /// name() in result metadata). Used when a caller needs the concrete
  /// type, e.g. mesh labelings.
  Scenario& topology(std::unique_ptr<Topology> topo);

  // ---- workload ----
  /// Pattern by registry spec (e.g. "localized:0.2:0.8:6"); "none" clears.
  Scenario& pattern(std::string spec);
  /// Escape hatch: an explicit pattern object (e.g. ExplicitPattern).
  Scenario& pattern(std::shared_ptr<const MulticastPattern> pattern);
  Scenario& rate(double messages_per_cycle_per_node);
  Scenario& alpha(double multicast_fraction);
  Scenario& message_length(int flits);

  // ---- evaluation knobs ----
  Scenario& seed(std::uint64_t seed);
  /// Pattern construction seed; defaults to the run seed.
  Scenario& pattern_seed(std::uint64_t seed);
  Scenario& warmup(Cycle cycles);
  Scenario& measure(Cycle cycles);
  /// Whether run_sweep() also simulates each point (default true).
  Scenario& with_sim(bool enabled = true);
  /// Simulator engine for every sim this scenario runs (default: the
  /// active engine, or QUARC_SIM_ENGINE). Byte-transparent — both engines
  /// emit identical results — so, like the assembly knob, deliberately
  /// NOT fingerprinted.
  Scenario& sim_engine(sim::SimEngine engine);
  /// parallel_for workers for sweeps (<= 0: default).
  Scenario& threads(int count);
  /// Contiguous shard count for sweep execution (default 1). Bit-identical
  /// for every count — see sweep.hpp's determinism contract.
  Scenario& shards(int count);
  /// Continuation-spine anchor count (default 4; 0 disables continuation
  /// seeding so every point solves from the zero-load seed). Fingerprinted
  /// — it changes the x0 every sweep point is solved from.
  Scenario& spine_points(int count);
  int spine_points() const { return sweep_.spine_points; }
  /// SoA lane count of the batched sweep solve (default 8; 1 restores the
  /// historical one-scalar-solve-per-point path). Byte-identical for
  /// every value — and therefore, like the assembly knob, deliberately
  /// NOT fingerprinted (see sweep.hpp). The returned ResultSet's
  /// solve_batches/solve_lanes/solve_lane_iterations counters report what
  /// the run actually batched.
  Scenario& batch_points(int count);
  int batch_points() const { return sweep_.batch_points; }

  // ---- caching ----
  /// Attaches a sweep cache (shared across Scenarios; nullptr detaches).
  /// run_sweep consults it before solving each point and stores every
  /// point it had to solve; hit/miss counts land on the returned
  /// ResultSet's cache_hits/cache_misses.
  Scenario& cache(std::shared_ptr<SweepCache> cache);
  /// Convenience: attach a fresh disk-backed cache under `dir`.
  Scenario& cache_dir(const std::string& dir);
  /// The attached cache (may be null).
  const std::shared_ptr<SweepCache>& sweep_cache() const { return cache_; }

  /// Attaches a shared compiled-artifact cache (batch/artifact_cache.hpp):
  /// validate() then adopts the cache's RoutePlan/FlowGraph for this
  /// scenario's (topology spec, pattern spec, pattern seed, alpha) instead
  /// of compiling private copies, so a fleet of scenarios sharing a
  /// topology compiles each artifact exactly once. Byte-transparent:
  /// results and fingerprints are identical with and without the cache
  /// (pinned by the batch determinism suite). Only spec-built scenarios
  /// share; adopted topologies/patterns always compile privately.
  /// nullptr detaches.
  Scenario& artifacts(std::shared_ptr<batch::ArtifactCache> cache);
  const std::shared_ptr<batch::ArtifactCache>& artifact_cache() const { return artifacts_; }

  /// Canonical fingerprint of the validated scenario — the cache key's
  /// scenario half (rate excluded). Validates first; stable across runs,
  /// thread counts and shard counts.
  ScenarioFingerprint fingerprint();

  /// Full-access mutable settings for the less common knobs
  /// (buffer depth, drain caps, solver damping, ...). Workload and seed
  /// fields inside sim_config() are overwritten by the builder state when
  /// a run starts.
  sim::SimConfig& sim_config() { return sweep_.sim; }
  ModelOptions& model_options() { return sweep_.model; }

  // ---- assembly ----
  /// Builds and validates topology + workload, and compiles the scenario's
  /// RoutePlan (once — reused until the topology, pattern or seed
  /// changes); throws InvalidArgument on any inconsistency. Idempotent;
  /// run_* call it implicitly.
  void validate();
  /// The built topology (constructing it on first use). Does NOT validate
  /// the workload against it, so callers can inspect the network (e.g. its
  /// diameter) before committing to a configuration.
  const Topology& built_topology();
  /// The scenario's compiled route plan (validates first). One plan is
  /// shared by run_model/run_sim/run_sweep/fingerprint — every rate point,
  /// shard and worker thread reads the same immutable arrays, so the
  /// model, simulator and cache key can never disagree on routing.
  const RoutePlan& route_plan();
  /// The scenario's compiled rate-invariant flow structure (validates
  /// first). Compiled alongside the plan, shared by every model solve this
  /// Scenario runs — each rate point is a pure scale of its unit weights.
  const FlowGraph& flow_graph();
  /// The validated workload at the configured rate.
  Workload build_workload();
  /// One-line description for banners/logs.
  std::string describe();
  /// The configured run seed (per-point simulator seeds derive from it via
  /// sweep_point_seed). Exposed so external schedulers — the batch runner
  /// solves all members' points on one pool — can construct per-point
  /// tasks exactly as run_sweep would.
  std::uint64_t seed() const { return seed_; }
  /// A validated, metadata-only ResultSet for this scenario (no rows):
  /// the exact header run_sweep would emit. External schedulers fill the
  /// rows so their documents stay byte-identical to run_sweep's.
  ResultSet empty_result_set();

  // ---- evaluation ----
  /// Analytical model at the configured rate.
  ResultSet run_model();
  /// Simulator at the configured rate.
  ResultSet run_sim();
  /// Model (and simulator per with_sim) over an explicit rate grid.
  ResultSet run_sweep(std::span<const double> rates);
  /// Auto grid: `points` rates evenly spaced in (0, fill * saturation].
  ResultSet run_sweep(int points, double fill = 0.85);

  /// Largest rate for which the analytical model converges. Memoized:
  /// the saturation probe (and the continuation spine compiled from its
  /// trajectory) runs at most once per validated assembly — calling this,
  /// rate_grid() and run_sweep(points, fill) in any order probes exactly
  /// once, and it reruns only when a knob the probe reads changes
  /// (topology/pattern/alpha/seed via the flow graph, message length,
  /// solver options, probe kind, spine_points — not the configured rate).
  /// Throws ComputationError when the model converges at no positive rate
  /// (the historical probe silently reported 0 here).
  double saturation_rate();
  /// The auto grid run_sweep(points, fill) would use.
  std::vector<double> rate_grid(int points, double fill = 0.85);
  /// How many times this Scenario has run the saturation probe (test and
  /// diagnostic visibility for the memoization above).
  int saturation_probe_runs() const { return sat_probe_runs_; }
  /// The continuation spine sweep points seed their solves from — the
  /// probe's converged trajectory plus spine_points() evenly spaced
  /// anchors. Probes (memoized, with saturation_rate()) on first use;
  /// shares its failure behavior. External schedulers (the batch runner)
  /// use this to seed exactly as run_sweep would.
  std::shared_ptr<const ContinuationSpine> continuation_spine();

  /// Raw single-run escape hatches (full result structs).
  ModelResult run_model_raw();
  sim::SimResult run_sim_raw();

 private:
  void ensure_topology();
  /// Runs (or reuses) the saturation probe + continuation spine for the
  /// current assembly — see saturation_rate()'s memoization contract.
  /// Rethrows the cached ComputationError when the probe failed.
  void ensure_saturation();
  ResultSet make_result_set();
  sim::SimConfig sim_config_for_run();
  /// fingerprint() minus the validate() — for callers that just validated.
  ScenarioFingerprint fingerprint_validated() const;

  std::string topology_spec_;
  /// Built lazily, adopted, or shared via the artifact cache (shared so a
  /// cached RoutePlan and the topology it references live together).
  std::shared_ptr<const Topology> topology_;
  bool topology_dirty_ = true;
  bool topology_from_spec_ = true;  ///< adopted topologies digest structurally

  std::string pattern_spec_ = "none";
  std::shared_ptr<const MulticastPattern> pattern_;
  bool pattern_from_spec_ = true;  ///< rebuild from the spec on validate()

  /// Compiled once per (topology, pattern, alpha, seed) assembly; shared
  /// read-only by every evaluation this Scenario runs.
  std::shared_ptr<const RoutePlan> plan_;
  /// The rate-invariant flow structure over plan_, compiled with it.
  std::shared_ptr<const FlowGraph> flows_;
  bool routes_dirty_ = true;  ///< pattern/plan/flow graph must be (re)compiled

  // ---- memoized saturation probe + continuation spine ----
  // Validity is keyed on a snapshot of everything the probe reads. The
  // flow graph is held by shared_ptr (not raw pointer) so a recompiled
  // graph reusing the old allocation's address can never masquerade as
  // the snapshot; solver options compare by value because model_options()
  // hands out a mutable reference that dirty flags cannot observe.
  std::shared_ptr<const ContinuationSpine> spine_;
  std::shared_ptr<const FlowGraph> sat_flows_;
  double sat_rate_ = 0.0;
  int sat_probe_runs_ = 0;
  bool sat_valid_ = false;
  bool sat_failed_ = false;
  std::string sat_error_;
  int sat_message_length_ = 0;
  SolverOptions sat_solver_;
  SaturationProbe sat_probe_kind_ = SaturationProbe::Ridders;
  int sat_spine_points_ = 0;

  Workload workload_;
  std::uint64_t seed_ = 1;
  std::uint64_t pattern_seed_ = 0;
  bool pattern_seed_set_ = false;
  SweepConfig sweep_;
  std::shared_ptr<SweepCache> cache_;
  std::shared_ptr<batch::ArtifactCache> artifacts_;
};

}  // namespace quarc::api
