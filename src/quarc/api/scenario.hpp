// Scenario — the single entry point for running experiments.
//
// A Scenario is a fluent builder over everything an experiment needs:
// topology spec, traffic pattern spec, workload knobs, solver and
// simulator settings, and the seed. It validates the assembled
// configuration once (spec strings resolve through the api registries,
// Workload::validate runs against the built topology) and then evaluates:
//
//   Scenario()
//       .topology("quarc:64")
//       .pattern("random:6")
//       .alpha(0.05)
//       .message_length(32)
//       .seed(42)
//       .run_sweep(8, 0.85)     // -> ResultSet, model + sim per point
//
// run_model()/run_sim() evaluate the single configured rate; run_sweep()
// evaluates a rate grid (explicit, or auto-spanned to a fraction of the
// model's saturation rate). All return ResultSet. The *_raw() escape
// hatches expose the full ModelResult/SimResult for consumers that need
// per-channel or per-port detail (ablation benches, diagnostics).
//
// Determinism: everything is a pure function of the builder state. The
// pattern is drawn from pattern_seed (defaults to seed) so a fixed
// destination set can be held while simulation seeds vary; sweep points
// derive per-point seeds exactly as sweep_rates() documents.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "quarc/api/result_set.hpp"
#include "quarc/sweep/sweep.hpp"

namespace quarc::api {

class Scenario {
 public:
  Scenario();

  // ---- network ----
  /// Topology by registry spec (e.g. "mesh:8x8").
  Scenario& topology(std::string spec);
  /// Escape hatch: adopt an already-built topology (labelled by its
  /// name() in result metadata). Used when a caller needs the concrete
  /// type, e.g. mesh labelings.
  Scenario& topology(std::unique_ptr<Topology> topo);

  // ---- workload ----
  /// Pattern by registry spec (e.g. "localized:0.2:0.8:6"); "none" clears.
  Scenario& pattern(std::string spec);
  /// Escape hatch: an explicit pattern object (e.g. ExplicitPattern).
  Scenario& pattern(std::shared_ptr<const MulticastPattern> pattern);
  Scenario& rate(double messages_per_cycle_per_node);
  Scenario& alpha(double multicast_fraction);
  Scenario& message_length(int flits);

  // ---- evaluation knobs ----
  Scenario& seed(std::uint64_t seed);
  /// Pattern construction seed; defaults to the run seed.
  Scenario& pattern_seed(std::uint64_t seed);
  Scenario& warmup(Cycle cycles);
  Scenario& measure(Cycle cycles);
  /// Whether run_sweep() also simulates each point (default true).
  Scenario& with_sim(bool enabled = true);
  /// parallel_for workers for sweeps (<= 0: default).
  Scenario& threads(int count);

  /// Full-access mutable settings for the less common knobs
  /// (buffer depth, drain caps, solver damping, ...). Workload and seed
  /// fields inside sim_config() are overwritten by the builder state when
  /// a run starts.
  sim::SimConfig& sim_config() { return sweep_.sim; }
  ModelOptions& model_options() { return sweep_.model; }

  // ---- assembly ----
  /// Builds and validates topology + workload; throws InvalidArgument on
  /// any inconsistency. Idempotent; run_* call it implicitly.
  void validate();
  /// The built topology (constructing it on first use). Does NOT validate
  /// the workload against it, so callers can inspect the network (e.g. its
  /// diameter) before committing to a configuration.
  const Topology& built_topology();
  /// The validated workload at the configured rate.
  Workload build_workload();
  /// One-line description for banners/logs.
  std::string describe();

  // ---- evaluation ----
  /// Analytical model at the configured rate.
  ResultSet run_model();
  /// Simulator at the configured rate.
  ResultSet run_sim();
  /// Model (and simulator per with_sim) over an explicit rate grid.
  ResultSet run_sweep(std::span<const double> rates);
  /// Auto grid: `points` rates evenly spaced in (0, fill * saturation].
  ResultSet run_sweep(int points, double fill = 0.85);

  /// Largest rate for which the analytical model converges.
  double saturation_rate();
  /// The auto grid run_sweep(points, fill) would use.
  std::vector<double> rate_grid(int points, double fill = 0.85);

  /// Raw single-run escape hatches (full result structs).
  ModelResult run_model_raw();
  sim::SimResult run_sim_raw();

 private:
  void ensure_topology();
  ResultSet make_result_set();
  sim::SimConfig sim_config_for_run();

  std::string topology_spec_;
  std::unique_ptr<Topology> topology_;   ///< built lazily or adopted
  bool topology_dirty_ = true;

  std::string pattern_spec_ = "none";
  std::shared_ptr<const MulticastPattern> pattern_;
  bool pattern_from_spec_ = true;  ///< rebuild from the spec on validate()

  Workload workload_;
  std::uint64_t seed_ = 1;
  std::uint64_t pattern_seed_ = 0;
  bool pattern_seed_set_ = false;
  SweepConfig sweep_;
};

}  // namespace quarc::api
