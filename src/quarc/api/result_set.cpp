#include "quarc/api/result_set.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "quarc/util/error.hpp"

namespace quarc::api {

namespace {

double nan_value() { return std::numeric_limits<double>::quiet_NaN(); }

double relative_error(bool model_run, bool sim_run, double model, double sim,
                      std::int64_t samples) {
  if (!model_run || !sim_run || samples == 0) return nan_value();
  if (!std::isfinite(model) || !std::isfinite(sim) || sim <= 0.0) return nan_value();
  return (model - sim) / sim;
}

/// Non-finite -> null (JSON has no inf/nan); see header for the read side.
json::Value number_or_null(double v) {
  if (!std::isfinite(v)) return json::Value(nullptr);
  return json::Value(v);
}

/// null -> `infinite` restores the library's conventional non-finite value
/// for the field (+inf for saturated latencies / absent CIs, NaN for
/// never-measured quantities).
double read_number(const json::Value& v, double non_finite) {
  if (v.is_null()) return non_finite;
  return v.as_double();
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double ResultRow::unicast_error() const {
  return relative_error(model_run, sim_run, model_unicast_latency, sim_unicast_latency,
                        sim_unicast_count);
}

double ResultRow::multicast_error() const {
  return relative_error(model_run, sim_run, model_multicast_latency, sim_multicast_latency,
                        sim_multicast_count);
}

ResultRow ResultRow::from_model(double rate, const ModelResult& m) {
  ResultRow r;
  r.rate = rate;
  r.model_run = true;
  r.model_status = to_string(m.status);
  r.model_unicast_latency = m.avg_unicast_latency;
  r.model_multicast_latency = m.has_multicast ? m.avg_multicast_latency : nan_value();
  r.model_max_utilization = m.max_utilization;
  r.solver_iterations = m.solver_iterations;
  return r;
}

ResultRow ResultRow::from_sim(double rate, const sim::SimResult& s) {
  ResultRow r;
  r.rate = rate;
  r.sim_run = true;
  r.sim_completed = s.completed;
  r.sim_stable = s.stable;
  r.sim_unicast_latency = s.unicast_latency.count > 0 ? s.unicast_latency.mean : nan_value();
  r.sim_unicast_ci95 = s.unicast_latency.ci95;
  r.sim_unicast_count = s.unicast_latency.count;
  r.sim_multicast_latency =
      s.multicast_latency.count > 0 ? s.multicast_latency.mean : nan_value();
  r.sim_multicast_ci95 = s.multicast_latency.ci95;
  r.sim_multicast_count = s.multicast_latency.count;
  r.sim_max_utilization = s.max_channel_utilization;
  r.sim_messages_generated = s.messages_generated;
  r.sim_cycles = s.cycles_run;
  return r;
}

ResultRow ResultRow::from_point(const RatePointResult& p) {
  ResultRow r = from_model(p.rate, p.model);
  if (p.sim_run) {
    const ResultRow s = from_sim(p.rate, p.sim);
    r.sim_run = true;
    r.sim_completed = s.sim_completed;
    r.sim_stable = s.sim_stable;
    r.sim_unicast_latency = s.sim_unicast_latency;
    r.sim_unicast_ci95 = s.sim_unicast_ci95;
    r.sim_unicast_count = s.sim_unicast_count;
    r.sim_multicast_latency = s.sim_multicast_latency;
    r.sim_multicast_ci95 = s.sim_multicast_ci95;
    r.sim_multicast_count = s.sim_multicast_count;
    r.sim_max_utilization = s.sim_max_utilization;
    r.sim_messages_generated = s.sim_messages_generated;
    r.sim_cycles = s.sim_cycles;
  }
  return r;
}

bool ResultSet::has_sim() const {
  return std::any_of(rows.begin(), rows.end(), [](const ResultRow& r) { return r.sim_run; });
}

bool ResultSet::same_scenario(const ResultSet& other) const {
  return schema == other.schema && topology == other.topology &&
         topology_name == other.topology_name && nodes == other.nodes && ports == other.ports &&
         diameter == other.diameter && pattern == other.pattern && alpha == other.alpha &&
         message_length == other.message_length && seed == other.seed &&
         workload == other.workload;
}

json::Value row_to_json(const ResultRow& r) {
  json::Value row = json::Value::object();
  row.set("rate", r.rate);
  if (r.model_run) {
    json::Value model = json::Value::object();
    model.set("status", r.model_status);
    model.set("unicast_latency", number_or_null(r.model_unicast_latency));
    model.set("multicast_latency", number_or_null(r.model_multicast_latency));
    model.set("max_utilization", number_or_null(r.model_max_utilization));
    model.set("solver_iterations", r.solver_iterations);
    row.set("model", std::move(model));
  }
  if (r.sim_run) {
    json::Value sim = json::Value::object();
    sim.set("completed", r.sim_completed);
    sim.set("stable", r.sim_stable);
    sim.set("unicast_latency", number_or_null(r.sim_unicast_latency));
    sim.set("unicast_ci95", number_or_null(r.sim_unicast_ci95));
    sim.set("unicast_count", r.sim_unicast_count);
    sim.set("multicast_latency", number_or_null(r.sim_multicast_latency));
    sim.set("multicast_ci95", number_or_null(r.sim_multicast_ci95));
    sim.set("multicast_count", r.sim_multicast_count);
    sim.set("max_utilization", number_or_null(r.sim_max_utilization));
    sim.set("messages_generated", r.sim_messages_generated);
    sim.set("cycles", r.sim_cycles);
    row.set("sim", std::move(sim));
  }
  return row;
}

ResultRow row_from_json(const json::Value& v, bool has_multicast) {
  ResultRow r;
  r.rate = v.at("rate").as_double();
  if (const json::Value* model = v.find("model")) {
    r.model_run = true;
    r.model_status = model->at("status").as_string();
    r.model_unicast_latency = read_number(model->at("unicast_latency"), kInf);
    // A null multicast latency is +inf when the scenario carries
    // multicast traffic (saturation), NaN when it never had any.
    r.model_multicast_latency =
        read_number(model->at("multicast_latency"), has_multicast ? kInf : nan_value());
    r.model_max_utilization = read_number(model->at("max_utilization"), nan_value());
    r.solver_iterations = static_cast<int>(model->at("solver_iterations").as_int());
  }
  if (const json::Value* sim = v.find("sim")) {
    r.sim_run = true;
    r.sim_completed = sim->at("completed").as_bool();
    r.sim_stable = sim->at("stable").as_bool();
    r.sim_unicast_latency = read_number(sim->at("unicast_latency"), nan_value());
    r.sim_unicast_ci95 = read_number(sim->at("unicast_ci95"), kInf);
    r.sim_unicast_count = sim->at("unicast_count").as_int();
    r.sim_multicast_latency = read_number(sim->at("multicast_latency"), nan_value());
    r.sim_multicast_ci95 = read_number(sim->at("multicast_ci95"), kInf);
    r.sim_multicast_count = sim->at("multicast_count").as_int();
    r.sim_max_utilization = read_number(sim->at("max_utilization"), nan_value());
    r.sim_messages_generated = sim->at("messages_generated").as_int();
    r.sim_cycles = sim->at("cycles").as_int();
  }
  return r;
}

json::Value ResultSet::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("schema", schema);
  json::Value scenario = json::Value::object();
  scenario.set("topology", topology);
  scenario.set("topology_name", topology_name);
  scenario.set("nodes", nodes);
  scenario.set("ports", ports);
  scenario.set("diameter", diameter);
  scenario.set("pattern", pattern);
  scenario.set("alpha", alpha);
  scenario.set("message_length", message_length);
  scenario.set("seed", seed);
  scenario.set("workload", workload);
  doc.set("scenario", std::move(scenario));

  json::Value arr = json::Value::array();
  for (const ResultRow& r : rows) arr.push_back(row_to_json(r));
  doc.set("rows", std::move(arr));
  return doc;
}

ResultSet ResultSet::from_json(const json::Value& doc) {
  const std::int64_t schema = doc.at("schema").as_int();
  QUARC_REQUIRE(schema == kResultSchemaVersion,
                "unsupported ResultSet schema version " + std::to_string(schema) +
                    " (expected " + std::to_string(kResultSchemaVersion) + ")");
  ResultSet rs;
  const json::Value& sc = doc.at("scenario");
  rs.topology = sc.at("topology").as_string();
  rs.topology_name = sc.at("topology_name").as_string();
  rs.nodes = static_cast<int>(sc.at("nodes").as_int());
  rs.ports = static_cast<int>(sc.at("ports").as_int());
  rs.diameter = static_cast<int>(sc.at("diameter").as_int());
  rs.pattern = sc.at("pattern").as_string();
  rs.alpha = sc.at("alpha").as_double();
  rs.message_length = static_cast<int>(sc.at("message_length").as_int());
  rs.seed = sc.at("seed").as_uint();
  rs.workload = sc.at("workload").as_string();

  const auto& row_values = doc.at("rows").as_array();
  rs.rows.reserve(row_values.size());
  for (const json::Value& row : row_values) {
    rs.rows.push_back(row_from_json(row, rs.alpha > 0.0));
  }
  return rs;
}

ResultSet merge_result_sets(std::span<const ResultSet> shards) {
  QUARC_REQUIRE(!shards.empty(), "merge_result_sets: no shards to merge");
  ResultSet merged = shards.front();
  for (std::size_t i = 1; i < shards.size(); ++i) {
    const ResultSet& s = shards[i];
    QUARC_REQUIRE(merged.same_scenario(s),
                  "merge_result_sets: shard " + std::to_string(i) +
                      " was produced by a different scenario than shard 0");
    merged.rows.insert(merged.rows.end(), s.rows.begin(), s.rows.end());
    merged.cache_hits += s.cache_hits;
    merged.cache_misses += s.cache_misses;
  }
  std::stable_sort(merged.rows.begin(), merged.rows.end(),
                   [](const ResultRow& a, const ResultRow& b) { return a.rate < b.rate; });
  // Overlapping shard grids are an operator error: the merged document
  // would contain duplicate rates no unsharded run could produce, and
  // downstream consumers key rows by rate.
  for (std::size_t i = 1; i < merged.rows.size(); ++i) {
    QUARC_REQUIRE(merged.rows[i].rate != merged.rows[i - 1].rate,
                  "merge_result_sets: rate " + json::format_number(merged.rows[i].rate) +
                      " appears in more than one shard (overlapping grids)");
  }
  return merged;
}

ResultSet ResultSet::from_json_text(std::string_view text) {
  return from_json(json::Value::parse(text));
}

void ResultSet::write_json(std::ostream& os) const {
  to_json().write(os, 2);
  os << "\n";
}

const std::vector<std::string>& ResultSet::csv_header() {
  static const std::vector<std::string> header = {
      "rate",
      "model_status",
      "model_unicast_latency",
      "model_multicast_latency",
      "model_max_utilization",
      "solver_iterations",
      "sim_completed",
      "sim_stable",
      "sim_unicast_latency",
      "sim_unicast_ci95",
      "sim_multicast_latency",
      "sim_multicast_ci95",
      "sim_max_utilization",
      "sim_cycles",
  };
  return header;
}

Cell model_latency_cell(double latency) {
  if (std::isnan(latency)) return std::string("-");
  if (!std::isfinite(latency)) return std::string("saturated");
  return latency;
}

Cell sim_latency_cell(const ResultRow& row, bool multicast) {
  if (!row.sim_run) return std::string("-");
  if (!row.sim_completed) return std::string("unstable");
  const auto count = multicast ? row.sim_multicast_count : row.sim_unicast_count;
  if (count == 0) return std::string("-");
  const double mean = multicast ? row.sim_multicast_latency : row.sim_unicast_latency;
  const double ci = multicast ? row.sim_multicast_ci95 : row.sim_unicast_ci95;
  std::ostringstream os;
  // Human table cell, never serialized state (the CSV/JSON writers below
  // go through json::format_number exclusively).
  os.precision(2);  // lint: display-only
  os << std::fixed << mean;  // lint: display-only
  if (std::isfinite(ci)) os << " +-" << ci;
  return os.str();
}

void ResultSet::write_csv(std::ostream& os) const {
  os << "# schema=" << schema << " topology=" << topology << " pattern=" << pattern
     << " alpha=" << json::format_number(alpha) << " message_length=" << message_length
     << " seed=" << seed << "\n";
  const auto& header = csv_header();
  for (std::size_t i = 0; i < header.size(); ++i) {
    os << (i > 0 ? "," : "") << header[i];
  }
  os << "\n";
  // Shortest-round-trip formatting (shared with the JSON writer) rather
  // than operator<<'s 6-significant-digit default: CSV and JSON documents
  // of the same ResultSet must never disagree on a value, and CSV cells
  // must survive a parse back to the same double.
  auto num = [&os](double v) {
    if (std::isnan(v)) {
      os << "";
    } else if (std::isinf(v)) {
      os << (v > 0 ? "inf" : "-inf");
    } else {
      os << json::format_number(v);
    }
  };
  for (const ResultRow& r : rows) {
    num(r.rate);
    os << "," << (r.model_run ? r.model_status : "");
    os << ",";
    num(r.model_unicast_latency);
    os << ",";
    num(r.model_multicast_latency);
    os << ",";
    num(r.model_max_utilization);
    os << "," << r.solver_iterations;
    os << "," << (r.sim_run ? (r.sim_completed ? "yes" : "no") : "");
    os << "," << (r.sim_run ? (r.sim_stable ? "yes" : "no") : "");
    os << ",";
    num(r.sim_unicast_latency);
    os << ",";
    num(r.sim_unicast_ci95);
    os << ",";
    num(r.sim_multicast_latency);
    os << ",";
    num(r.sim_multicast_ci95);
    os << ",";
    num(r.sim_max_utilization);
    os << "," << r.sim_cycles << "\n";
  }
}

}  // namespace quarc::api
