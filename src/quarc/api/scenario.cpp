#include "quarc/api/scenario.hpp"

#include <sstream>
#include <utility>

#include "quarc/api/registry.hpp"
#include "quarc/batch/artifact_cache.hpp"
#include "quarc/sweep/sweep_cache.hpp"
#include "quarc/util/error.hpp"

namespace quarc::api {

Scenario::Scenario() : topology_spec_("quarc:16") {
  workload_.message_rate = 0.004;
  workload_.multicast_fraction = 0.0;
  workload_.message_length = 32;
}

Scenario& Scenario::topology(std::string spec) {
  topology_spec_ = std::move(spec);
  topology_.reset();
  topology_dirty_ = true;
  topology_from_spec_ = true;
  routes_dirty_ = true;
  return *this;
}

Scenario& Scenario::topology(std::unique_ptr<Topology> topo) {
  QUARC_REQUIRE(topo != nullptr, "Scenario::topology: null topology");
  topology_ = std::move(topo);
  topology_spec_ = topology_->name();
  topology_dirty_ = false;
  topology_from_spec_ = false;
  routes_dirty_ = true;
  return *this;
}

Scenario& Scenario::pattern(std::string spec) {
  pattern_spec_ = std::move(spec);
  pattern_.reset();
  pattern_from_spec_ = true;
  routes_dirty_ = true;
  return *this;
}

Scenario& Scenario::pattern(std::shared_ptr<const MulticastPattern> pattern) {
  pattern_ = std::move(pattern);
  pattern_spec_ = pattern_ ? pattern_->describe() : "none";
  pattern_from_spec_ = false;
  routes_dirty_ = true;
  return *this;
}

Scenario& Scenario::rate(double messages_per_cycle_per_node) {
  workload_.message_rate = messages_per_cycle_per_node;
  return *this;
}

Scenario& Scenario::alpha(double multicast_fraction) {
  workload_.multicast_fraction = multicast_fraction;
  // The fraction gates whether the plan carries multicast state (a
  // unicast-only scenario never compiles its pattern), so the plan may
  // need recompiling when it changes.
  routes_dirty_ = true;
  return *this;
}

Scenario& Scenario::message_length(int flits) {
  workload_.message_length = flits;
  return *this;
}

Scenario& Scenario::seed(std::uint64_t seed) {
  seed_ = seed;
  // Spec-built patterns are drawn from the seed, so the pattern — and
  // with it the plan and flow graph — may change. Explicitly attached
  // patterns and pinned pattern seeds are seed-independent: recompiling
  // would rebuild identical structures.
  if (pattern_from_spec_ && !pattern_seed_set_) routes_dirty_ = true;
  return *this;
}

Scenario& Scenario::pattern_seed(std::uint64_t seed) {
  pattern_seed_ = seed;
  pattern_seed_set_ = true;
  routes_dirty_ = true;
  return *this;
}

Scenario& Scenario::warmup(Cycle cycles) {
  sweep_.sim.warmup_cycles = cycles;
  return *this;
}

Scenario& Scenario::measure(Cycle cycles) {
  sweep_.sim.measure_cycles = cycles;
  return *this;
}

Scenario& Scenario::with_sim(bool enabled) {
  sweep_.run_sim = enabled;
  return *this;
}

Scenario& Scenario::sim_engine(sim::SimEngine engine) {
  sweep_.sim.engine = engine;
  return *this;
}

Scenario& Scenario::threads(int count) {
  sweep_.threads = count;
  return *this;
}

Scenario& Scenario::shards(int count) {
  sweep_.shards = count;
  return *this;
}

Scenario& Scenario::spine_points(int count) {
  QUARC_REQUIRE(count >= 0, "spine_points must be non-negative");
  sweep_.spine_points = count;
  return *this;
}

Scenario& Scenario::batch_points(int count) {
  QUARC_REQUIRE(count >= 1, "batch_points must be at least 1");
  sweep_.batch_points = count;
  return *this;
}

Scenario& Scenario::cache(std::shared_ptr<SweepCache> cache) {
  cache_ = std::move(cache);
  return *this;
}

Scenario& Scenario::cache_dir(const std::string& dir) {
  cache_ = std::make_shared<SweepCache>(dir);
  return *this;
}

Scenario& Scenario::artifacts(std::shared_ptr<batch::ArtifactCache> cache) {
  artifacts_ = std::move(cache);
  // Already-compiled private artifacts stay valid; the cache only changes
  // where the NEXT compilation comes from.
  return *this;
}

ScenarioFingerprint Scenario::fingerprint() {
  validate();
  return fingerprint_validated();
}

ScenarioFingerprint Scenario::fingerprint_validated() const {
  FingerprintInputs in;
  in.topology_spec = topology_spec_;
  in.topology_from_spec = topology_from_spec_;
  in.plan = plan_.get();  // adopted topologies digest the compiled plan
  in.topology = topology_.get();
  in.pattern_spec = pattern_spec_;
  in.pattern_seed = pattern_seed_set_ ? pattern_seed_ : seed_;
  in.pattern = workload_.pattern.get();
  in.num_nodes = topology_->num_nodes();
  in.alpha = workload_.multicast_fraction;
  in.message_length = workload_.message_length;
  in.seed = seed_;
  in.sweep = &sweep_;
  return fingerprint_scenario(in);
}

void Scenario::ensure_topology() {
  if (topology_dirty_ || !topology_) {
    topology_ = make_topology(topology_spec_);
    topology_dirty_ = false;
  }
}

void Scenario::validate() {
  // Shared-artifact path: spec-built scenarios attached to an
  // ArtifactCache adopt its topology/pattern/plan/flow graph — compiled
  // once per distinct key across every attached Scenario. The adopted
  // objects are exactly what the private path below would compile
  // (same registry factories, same seeds), so results and fingerprints
  // are byte-identical either way.
  if (artifacts_ && topology_from_spec_ && pattern_from_spec_) {
    if (routes_dirty_ || !plan_) {
      batch::PlanRequest req;
      req.topology_spec = topology_spec_;
      req.pattern_spec = pattern_spec_;
      req.pattern_seed = pattern_seed_set_ ? pattern_seed_ : seed_;
      req.multicast = workload_.multicast_fraction > 0.0;
      const std::shared_ptr<const batch::PlanArtifact> artifact = artifacts_->plan(req);
      topology_ = artifact->topology;
      topology_dirty_ = false;
      pattern_ = artifact->pattern;
      workload_.pattern = pattern_;
      workload_.validate(*topology_);
      plan_ = artifact->plan;
      flows_ = artifacts_->flows(req, workload_.multicast_fraction, workload_.message_length);
      routes_dirty_ = false;
    } else {
      workload_.pattern = pattern_;
      workload_.validate(*topology_);
    }
    return;
  }
  ensure_topology();
  if (routes_dirty_ || !plan_) {
    if (pattern_from_spec_) {
      // Patterns are deterministic functions of (spec, topology size,
      // seed); rebuilding keeps them consistent when the topology or seed
      // changed.
      Rng rng(pattern_seed_set_ ? pattern_seed_ : seed_);
      pattern_ = make_pattern(pattern_spec_, topology_->num_nodes(), rng);
    }
    workload_.pattern = pattern_;
    workload_.validate(*topology_);
    // Compile the scenario's routing state exactly once; every evaluation
    // below — and the fingerprint — shares this immutable plan. Multicast
    // state only when the workload multicasts: a unicast-only scenario
    // must not compile (or choke on) an attached pattern it never uses.
    plan_ = std::make_shared<const RoutePlan>(
        *topology_, workload_.multicast_fraction > 0.0 ? pattern_.get() : nullptr);
    // The rate-invariant flow structure rides the same lifecycle: valid
    // for every message rate this assembly evaluates, rebuilt only when
    // the topology, pattern, alpha or seed changes.
    flows_ = std::make_shared<const FlowGraph>(*plan_, workload_);
    routes_dirty_ = false;
  } else {
    workload_.pattern = pattern_;
    workload_.validate(*topology_);
  }
}

const Topology& Scenario::built_topology() {
  ensure_topology();
  return *topology_;
}

const RoutePlan& Scenario::route_plan() {
  validate();
  return *plan_;
}

const FlowGraph& Scenario::flow_graph() {
  validate();
  return *flows_;
}

Workload Scenario::build_workload() {
  validate();
  return workload_;
}

std::string Scenario::describe() {
  validate();
  std::ostringstream os;
  os << topology_->name() << " (" << topology_->num_nodes() << " nodes, diameter "
     << topology_->diameter() << "): " << workload_.describe();
  return os.str();
}

ResultSet Scenario::make_result_set() {
  ResultSet rs;
  rs.topology = topology_spec_;
  rs.topology_name = topology_->name();
  rs.nodes = topology_->num_nodes();
  rs.ports = topology_->num_ports();
  rs.diameter = topology_->diameter();
  rs.pattern = pattern_spec_;
  rs.alpha = workload_.multicast_fraction;
  rs.message_length = workload_.message_length;
  rs.seed = seed_;
  rs.workload = workload_.describe();
  return rs;
}

sim::SimConfig Scenario::sim_config_for_run() {
  sim::SimConfig c = sweep_.sim;
  c.workload = workload_;
  c.seed = seed_;
  return c;
}

ResultSet Scenario::empty_result_set() {
  validate();
  return make_result_set();
}

ResultSet Scenario::run_model() {
  ModelResult m = run_model_raw();
  ResultSet rs = make_result_set();
  rs.rows.push_back(ResultRow::from_model(workload_.message_rate, m));
  return rs;
}

ResultSet Scenario::run_sim() {
  sim::SimResult s = run_sim_raw();
  ResultSet rs = make_result_set();
  rs.rows.push_back(ResultRow::from_sim(workload_.message_rate, s));
  return rs;
}

ResultSet Scenario::run_sweep(std::span<const double> rates) {
  validate();
  ResultSet rs = make_result_set();
  rs.rows.resize(rates.size());

  // Partition the grid into cache hits (rows ready now) and misses (tasks
  // to solve). Each task carries the rate-keyed seed a cold run would use,
  // so a partially warm run solves its misses bit-identically.
  std::vector<SweepTask> tasks;
  std::vector<std::size_t> task_rows;
  ScenarioFingerprint fp;
  if (cache_) fp = fingerprint_validated();  // run_sweep validated already
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (cache_) {
      if (std::optional<ResultRow> hit = cache_->lookup(fp, rates[i])) {
        rs.rows[i] = std::move(*hit);
        ++rs.cache_hits;
        continue;
      }
      ++rs.cache_misses;
    }
    tasks.push_back({rates[i], sweep_point_seed(seed_, rates[i])});
    task_rows.push_back(i);
  }

  // Hand sweep_tasks the memoized continuation spine so the probe runs
  // (at most) once per assembly instead of once per sweep call. All-hit
  // runs skip even that; a failed probe degrades explicit-rate sweeps to
  // unseeded solves (the error stays cached for saturation_rate()).
  SweepConfig cfg = sweep_;
  if (!tasks.empty() && cfg.spine_points > 0) {
    try {
      ensure_saturation();
      cfg.spine = spine_;
    } catch (const ComputationError&) {
      cfg.spine_points = 0;  // keep sweep_tasks from re-probing
    }
  }
  auto solve_stats = std::make_shared<BatchSolveStats>();
  cfg.solve_stats = solve_stats;
  const auto points = sweep_tasks(*flows_, workload_, tasks, cfg);
  rs.solve_batches = solve_stats->batches.load();
  rs.solve_lanes = solve_stats->lanes.load();
  rs.solve_lane_iterations = solve_stats->lane_iterations.load();
  for (std::size_t j = 0; j < points.size(); ++j) {
    rs.rows[task_rows[j]] = ResultRow::from_point(points[j]);
    if (cache_) cache_->store(fp, rs.rows[task_rows[j]], workload_.multicast_fraction > 0.0);
  }
  return rs;
}

ResultSet Scenario::run_sweep(int points, double fill) {
  const std::vector<double> rates = rate_grid(points, fill);
  return run_sweep(rates);
}

void Scenario::ensure_saturation() {
  validate();
  const bool fresh = sat_valid_ && sat_flows_ == flows_ &&
                     sat_message_length_ == workload_.message_length &&
                     sat_solver_ == sweep_.model.solver && sat_probe_kind_ == sweep_.model.probe &&
                     sat_spine_points_ == sweep_.spine_points;
  if (fresh) {
    if (sat_failed_) throw ComputationError(sat_error_);
    return;
  }
  sat_flows_ = flows_;
  sat_message_length_ = workload_.message_length;
  sat_solver_ = sweep_.model.solver;
  sat_probe_kind_ = sweep_.model.probe;
  sat_spine_points_ = sweep_.spine_points;
  sat_valid_ = true;
  sat_failed_ = false;
  sat_error_.clear();
  spine_.reset();
  sat_rate_ = 0.0;
  ++sat_probe_runs_;
  try {
    const SaturationProbeResult probe = probe_saturation_rate(*flows_, workload_, sweep_.model);
    sat_rate_ = probe.rate;
    spine_ = finalize_spine(*flows_, workload_, sweep_.model, sweep_.spine_points, probe);
  } catch (const ComputationError& e) {
    // Cache the failure too: repeated saturation_rate()/rate_grid() calls
    // rethrow instead of re-running a probe that cannot succeed.
    sat_failed_ = true;
    sat_error_ = e.what();
    throw;
  }
}

double Scenario::saturation_rate() {
  ensure_saturation();
  return sat_rate_;
}

std::shared_ptr<const ContinuationSpine> Scenario::continuation_spine() {
  ensure_saturation();
  return spine_;
}

std::vector<double> Scenario::rate_grid(int points, double fill) {
  QUARC_REQUIRE(points >= 1, "grid needs at least one point");
  QUARC_REQUIRE(fill > 0.0 && fill <= 1.0, "fill must be in (0,1]");
  ensure_saturation();
  return rate_grid_from_saturation(sat_rate_, points, fill);
}

ModelResult Scenario::run_model_raw() {
  validate();
  return PerformanceModel(*flows_, workload_, sweep_.model).evaluate();
}

sim::SimResult Scenario::run_sim_raw() {
  validate();
  return sim::Simulator(*plan_, sim_config_for_run()).run();
}

}  // namespace quarc::api
