// Structured experiment results: one schema for model evaluations,
// simulator runs and rate sweeps, with JSON and CSV serialisers.
//
// The seed repo had three result shapes (ModelResult, sim::SimResult,
// RatePointResult) and every consumer flattened them by hand into its own
// table. ResultSet unifies them: a run is a list of ResultRow — one per
// evaluated rate point — under a metadata header identifying the scenario
// (topology/pattern specs, workload, seed). The JSON document is
// schema-versioned (`schema` field, kResultSchemaVersion) so downstream
// tooling and stored BENCH_*.json trajectories can evolve safely, and
// from_json() round-trips every serialised field exactly.
//
// Non-finite numbers (saturated latencies are +inf by convention, absent
// measurements NaN) have no JSON representation; the serialiser writes
// them as null and the reader restores +inf for the *_latency/+ci fields
// and NaN elsewhere, which preserves the only non-finite values the
// library produces.
#pragma once

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "quarc/model/performance_model.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/sweep/sweep.hpp"
#include "quarc/util/json.hpp"
#include "quarc/util/table.hpp"

namespace quarc::api {

inline constexpr int kResultSchemaVersion = 1;

/// One evaluated rate point. Scalar summaries only — per-channel solver
/// state and raw sample vectors stay on ModelResult/SimResult (reachable
/// via Scenario's raw run methods) and are not serialised.
struct ResultRow {
  double rate = 0.0;

  bool model_run = false;
  std::string model_status;  ///< to_string(SolveStatus) when model_run
  double model_unicast_latency = std::numeric_limits<double>::quiet_NaN();
  double model_multicast_latency = std::numeric_limits<double>::quiet_NaN();
  double model_max_utilization = std::numeric_limits<double>::quiet_NaN();
  int solver_iterations = 0;

  bool sim_run = false;
  bool sim_completed = false;
  bool sim_stable = false;
  double sim_unicast_latency = std::numeric_limits<double>::quiet_NaN();
  double sim_unicast_ci95 = std::numeric_limits<double>::quiet_NaN();
  double sim_multicast_latency = std::numeric_limits<double>::quiet_NaN();
  double sim_multicast_ci95 = std::numeric_limits<double>::quiet_NaN();
  double sim_max_utilization = std::numeric_limits<double>::quiet_NaN();
  std::int64_t sim_unicast_count = 0;
  std::int64_t sim_multicast_count = 0;
  std::int64_t sim_messages_generated = 0;
  std::int64_t sim_cycles = 0;

  /// (model - sim) / sim for the finite, measured latencies; NaN otherwise.
  double unicast_error() const;
  double multicast_error() const;

  static ResultRow from_model(double rate, const ModelResult& m);
  static ResultRow from_sim(double rate, const sim::SimResult& s);
  static ResultRow from_point(const RatePointResult& p);
};

/// Row-level JSON (the exact object ResultSet::to_json embeds per row).
/// Exposed so the sweep cache can persist and restore individual rows with
/// the same bytes the document serialiser would produce. `has_multicast`
/// resolves the null -> inf/NaN ambiguity for the multicast latency field
/// exactly as ResultSet::from_json does via its alpha.
json::Value row_to_json(const ResultRow& r);
ResultRow row_from_json(const json::Value& v, bool has_multicast);

/// A complete experiment record: scenario identification plus rows.
struct ResultSet {
  int schema = kResultSchemaVersion;
  std::string topology;        ///< spec, e.g. "quarc:16"
  std::string topology_name;   ///< Topology::name(), e.g. "quarc-16"
  int nodes = 0;
  int ports = 0;
  int diameter = 0;
  std::string pattern;         ///< spec, e.g. "random:4"; "none" without multicast
  double alpha = 0.0;
  int message_length = 0;
  std::uint64_t seed = 0;
  std::string workload;        ///< Workload::describe() at the base rate
  std::vector<ResultRow> rows;

  /// Sweep-cache diagnostics for the run that produced this set: how many
  /// grid points were served from cache vs solved. Runtime-only — NOT
  /// serialised, so a warm run's document stays byte-identical to a cold
  /// run's (the cache must never change what an experiment reports).
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;

  /// Batched-solve diagnostics for the run that produced this set: how
  /// many SoA lane groups were run, how many points rode in them, and the
  /// solver iterations they retired. Runtime-only and NOT serialised for
  /// the same reason as the cache counters — batching never changes a
  /// byte of what an experiment reports (solve_batch's lane-identity
  /// contract), so the document must not betray whether it was used.
  std::int64_t solve_batches = 0;
  std::int64_t solve_lanes = 0;
  std::int64_t solve_lane_iterations = 0;

  bool has_multicast() const { return alpha > 0.0; }
  bool has_sim() const;

  /// Whether `other` records the same experiment: every metadata field
  /// (schema, topology spec + name, dimensions, pattern, alpha,
  /// message_length, seed, workload) matches. The single definition of
  /// "same scenario" shared by merge_result_sets and diff_result_sets.
  bool same_scenario(const ResultSet& other) const;

  /// JSON document (object) / parsing. from_json throws InvalidArgument on
  /// schema mismatch or malformed documents.
  json::Value to_json() const;
  static ResultSet from_json(const json::Value& doc);
  static ResultSet from_json_text(std::string_view text);

  /// Pretty-printed JSON document, trailing newline included.
  void write_json(std::ostream& os) const;

  /// CSV: fixed column set (csv_header()), one line per row; metadata is
  /// carried in '#'-prefixed comment lines above the header. Numbers use
  /// the same shortest-round-trip form as the JSON writer
  /// (json::format_number), so the two serialisations never disagree on a
  /// value; NaN renders as an empty cell and +-inf as "inf"/"-inf" (CSV
  /// has no null).
  void write_csv(std::ostream& os) const;
  static const std::vector<std::string>& csv_header();
};

/// Merges shard ResultSets (e.g. one per sweep shard, possibly produced by
/// different processes) into a single set: metadata is taken from the
/// first shard and must match on every other (schema, topology, pattern,
/// alpha, message_length, seed, ... — InvalidArgument otherwise), rows are
/// concatenated and stable-sorted by rate, and cache counters are summed.
/// Overlapping shard grids (the same rate in two shards) are rejected with
/// InvalidArgument. For a grid presented in increasing rate order — every
/// grid rate_grid_to_saturation builds — the merged set is byte-identical
/// to the unsharded run's.
ResultSet merge_result_sets(std::span<const ResultSet> shards);

/// Aligned-table cell renderings shared by the CLI and the bench harness:
/// "-" for absent values (NaN / not run / no samples), "saturated" for an
/// infinite model latency, "unstable" for an aborted simulation, and
/// "mean +-ci" for measured latencies.
Cell model_latency_cell(double latency);
Cell sim_latency_cell(const ResultRow& row, bool multicast);

}  // namespace quarc::api
