// String-keyed factories for topologies and multicast patterns.
//
// Every consumer of the library (CLI, benches, examples, tests) names its
// network and traffic by *spec strings* —
//
//   topology: "quarc:64"  "mesh:8x8"  "mesh-ham:4x4"  "hypercube:6" ...
//   pattern:  "broadcast" "random:6"  "localized:0.2:0.8:6"  "uniform:4"
//
// — and the registries turn those into objects. A spec is the factory name
// followed by ':'-separated arguments; numeric pattern bounds may be given
// as absolute clockwise offsets or (when they contain a '.') as fractions
// of the node count, so one spec scales across network sizes.
//
// Factories self-register: constructing a `TopologyRegistrar` /
// `PatternRegistrar` at namespace scope (see registry.cpp for the
// built-ins) adds the factory before main() runs, so new networks and
// traffic families plug in without touching any caller. Registries are
// populated at static-initialisation time and read-only afterwards, so
// lookups are safe from concurrent sweeps.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "quarc/topo/topology.hpp"
#include "quarc/traffic/pattern.hpp"
#include "quarc/util/rng.hpp"

namespace quarc::api {

/// A parsed spec: factory name plus positional arguments, with typed
/// accessors that throw InvalidArgument naming the spec on bad input.
class SpecArgs {
 public:
  /// Splits "name:a:b" on ':'; a trailing "WxH" argument may itself be
  /// split by the caller via pair_at().
  explicit SpecArgs(const std::string& spec);

  const std::string& name() const { return name_; }
  const std::string& spec() const { return spec_; }
  std::size_t size() const { return args_.size(); }

  /// Requires between `lo` and `hi` arguments; throws otherwise, quoting
  /// `signature` (e.g. "mesh[:WxH]") in the message.
  void require_count(std::size_t lo, std::size_t hi, const std::string& signature) const;

  const std::string& str_at(std::size_t i) const;
  int int_at(std::size_t i) const;
  int int_at(std::size_t i, int fallback) const;  ///< fallback when absent
  double double_at(std::size_t i) const;
  /// "WxH" (or two consecutive int args) -> {W, H}; `fallback` when absent.
  std::pair<int, int> pair_at(std::size_t i, std::pair<int, int> fallback) const;
  /// Offset argument: an integer is used as-is; a value containing '.' is
  /// a fraction of `num_nodes`, rounded and clamped to [1, num_nodes-1].
  int offset_at(std::size_t i, int num_nodes) const;

 private:
  [[noreturn]] void fail(const std::string& what) const;

  std::string spec_;
  std::string name_;
  std::vector<std::string> args_;
};

struct RegistryEntry {
  std::string name;
  std::string signature;  ///< e.g. "mesh[:WxH]" — for --help and docs
  std::string help;
  std::string example;    ///< a spec that must construct (used by tests)
};

class TopologyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Topology>(const SpecArgs&)>;

  static TopologyRegistry& instance();

  void add(RegistryEntry entry, Factory factory);
  bool contains(const std::string& name) const;
  /// Entries in registration order (built-ins first).
  std::vector<RegistryEntry> entries() const;

  /// Parses `spec` and invokes the named factory; throws InvalidArgument
  /// for unknown names or malformed arguments.
  std::unique_ptr<Topology> make(const std::string& spec) const;

 private:
  struct Slot {
    RegistryEntry entry;
    Factory factory;
  };
  std::vector<Slot> slots_;
};

/// Context handed to pattern factories: the topology size the pattern must
/// cover and a deterministic generator for randomised families.
struct PatternContext {
  int num_nodes = 0;
  Rng* rng = nullptr;
};

class PatternRegistry {
 public:
  using Factory =
      std::function<std::shared_ptr<const MulticastPattern>(const SpecArgs&, const PatternContext&)>;

  static PatternRegistry& instance();

  void add(RegistryEntry entry, Factory factory);
  bool contains(const std::string& name) const;
  std::vector<RegistryEntry> entries() const;

  /// Parses `spec` and builds the pattern ("none" yields nullptr).
  std::shared_ptr<const MulticastPattern> make(const std::string& spec, int num_nodes,
                                               Rng& rng) const;

 private:
  struct Slot {
    RegistryEntry entry;
    Factory factory;
  };
  std::vector<Slot> slots_;
};

/// Self-registration helpers: a namespace-scope instance registers the
/// factory during static initialisation.
struct TopologyRegistrar {
  TopologyRegistrar(RegistryEntry entry, TopologyRegistry::Factory factory) {
    TopologyRegistry::instance().add(std::move(entry), std::move(factory));
  }
};

struct PatternRegistrar {
  PatternRegistrar(RegistryEntry entry, PatternRegistry::Factory factory) {
    PatternRegistry::instance().add(std::move(entry), std::move(factory));
  }
};

/// Convenience front doors used throughout the repo.
std::unique_ptr<Topology> make_topology(const std::string& spec);
std::shared_ptr<const MulticastPattern> make_pattern(const std::string& spec, int num_nodes,
                                                     Rng& rng);

/// One-line-per-entry listings for --help text and README generation.
std::string describe_topologies();
std::string describe_patterns();

}  // namespace quarc::api
