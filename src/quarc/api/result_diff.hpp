// Regression diff over serialised sweep ResultSets.
//
// Stored sweep trajectories (BENCH_*.json, CI smoke documents) are only
// useful if something reads them back and complains: diff_result_sets
// compares a baseline and a candidate set row by row — rows match on
// their exact rate — and classifies every latency field whose relative
// change exceeds a tolerance. Latency going up is a regression, going
// down an improvement; a point that was finite and is now saturated
// (+inf) is a regression however large the tolerance, and so are a
// measurement that disappears (finite -> NaN: a simulation that newly
// aborts reports no latency), a sim stability/completion flag that flips
// to false, a model status that degrades to max-iterations (latencies
// assembled from an unconverged x must not pass as clean just because
// they moved less than the tolerance), a whole model/sim section missing
// from a matched row (a candidate rerun without --sim), and a rate point
// missing from the candidate grid. The `quarc-diff` tool is a thin main() over this module
// so CI can gate (or merely report) on stored trajectories.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "quarc/api/result_set.hpp"

namespace quarc::api {

enum class DiffStatus {
  Unchanged,  ///< within tolerance (not listed in DiffReport::entries)
  Improved,   ///< latency dropped beyond tolerance
  Regressed,  ///< latency rose beyond tolerance (or newly saturated)
  Added,      ///< rate present only in the candidate (reported, not gated)
  Removed,    ///< rate present only in the baseline: lost coverage, gated
              ///< as a regression (a truncated run must not pass as clean)
};

std::string to_string(DiffStatus s);

struct DiffOptions {
  /// Relative latency change treated as noise (|change| <= tolerance).
  double tolerance = 0.02;
  /// Also compare the (stochastic) simulator latencies; model latencies
  /// are always compared.
  bool compare_sim = true;
};

struct DiffEntry {
  double rate = 0.0;
  std::string field;         ///< e.g. "model_multicast_latency"; "row" for Added/Removed
  double baseline = std::numeric_limits<double>::quiet_NaN();
  double candidate = std::numeric_limits<double>::quiet_NaN();
  /// (candidate - baseline) / baseline; +-inf across a saturation flip,
  /// NaN for Added/Removed rows.
  double rel_change = std::numeric_limits<double>::quiet_NaN();
  DiffStatus status = DiffStatus::Unchanged;
};

struct DiffReport {
  std::vector<DiffEntry> entries;  ///< everything not Unchanged, in rate order
  /// Latency fields with a value on either side, plus the sim
  /// stability/completion flags of every matched sim row.
  std::int64_t fields_compared = 0;
  std::int64_t regressions = 0;
  std::int64_t improvements = 0;
  /// Scenario metadata (topology, pattern, alpha, ...) matched. A
  /// mismatch means the two documents are different experiments; the row
  /// diff still runs but the report flags it loudly.
  bool scenarios_match = true;

  bool has_regression() const { return regressions > 0; }
};

DiffReport diff_result_sets(const ResultSet& baseline, const ResultSet& candidate,
                            const DiffOptions& options = {});

/// Human-readable report: one line per entry plus a summary line.
void write_diff_report(const DiffReport& report, std::ostream& os);

}  // namespace quarc::api
