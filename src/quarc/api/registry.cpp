#include "quarc/api/registry.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

#include "quarc/topo/hypercube.hpp"
#include "quarc/topo/mesh.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/topo/spidergon.hpp"
#include "quarc/topo/torus.hpp"
#include "quarc/util/error.hpp"

namespace quarc::api {

// --------------------------------------------------------------- SpecArgs

SpecArgs::SpecArgs(const std::string& spec) : spec_(spec) {
  QUARC_REQUIRE(!spec.empty(), "empty spec string");
  std::istringstream is(spec);
  std::string token;
  bool first = true;
  while (std::getline(is, token, ':')) {
    if (first) {
      name_ = token;
      first = false;
    } else {
      args_.push_back(token);
    }
  }
  QUARC_REQUIRE(!name_.empty(), "spec '" + spec + "' has no factory name");
}

void SpecArgs::fail(const std::string& what) const {
  throw InvalidArgument("spec '" + spec_ + "': " + what);
}

void SpecArgs::require_count(std::size_t lo, std::size_t hi, const std::string& signature) const {
  if (args_.size() < lo || args_.size() > hi) {
    fail("expected the form '" + signature + "'");
  }
}

const std::string& SpecArgs::str_at(std::size_t i) const {
  if (i >= args_.size()) fail("missing argument " + std::to_string(i + 1));
  return args_[i];
}

int SpecArgs::int_at(std::size_t i) const {
  const std::string& v = str_at(i);
  int out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    fail("argument '" + v + "' is not an integer");
  }
  return out;
}

int SpecArgs::int_at(std::size_t i, int fallback) const {
  return i < args_.size() ? int_at(i) : fallback;
}

double SpecArgs::double_at(std::size_t i) const {
  const std::string& v = str_at(i);
  try {
    std::size_t used = 0;
    const double out = std::stod(v, &used);
    if (used != v.size()) fail("argument '" + v + "' is not a number");
    return out;
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception&) {
    fail("argument '" + v + "' is not a number");
  }
}

std::pair<int, int> SpecArgs::pair_at(std::size_t i, std::pair<int, int> fallback) const {
  if (i >= args_.size()) return fallback;
  const std::string& v = args_[i];
  const std::size_t x = v.find('x');
  if (x != std::string::npos) {
    auto dim = [&](const std::string& t) {
      int out = 0;
      const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), out);
      if (t.empty() || ec != std::errc{} || ptr != t.data() + t.size()) {
        fail("argument '" + v + "' is not of the form WxH");
      }
      return out;
    };
    return {dim(v.substr(0, x)), dim(v.substr(x + 1))};
  }
  // Two consecutive integer arguments ("mesh:8:8").
  return {int_at(i), int_at(i + 1)};
}

int SpecArgs::offset_at(std::size_t i, int num_nodes) const {
  const std::string& v = str_at(i);
  if (v.find('.') == std::string::npos) return int_at(i);
  const double f = double_at(i);
  if (f < 0.0 || f > 1.0) fail("fractional offset '" + v + "' must be in [0,1]");
  const int off = static_cast<int>(std::lround(f * num_nodes));
  return std::clamp(off, 1, num_nodes - 1);
}

// -------------------------------------------------------------- registries

TopologyRegistry& TopologyRegistry::instance() {
  static TopologyRegistry registry;
  return registry;
}

void TopologyRegistry::add(RegistryEntry entry, Factory factory) {
  QUARC_REQUIRE(!contains(entry.name), "topology '" + entry.name + "' registered twice");
  slots_.push_back(Slot{std::move(entry), std::move(factory)});
}

bool TopologyRegistry::contains(const std::string& name) const {
  return std::any_of(slots_.begin(), slots_.end(),
                     [&](const Slot& s) { return s.entry.name == name; });
}

std::vector<RegistryEntry> TopologyRegistry::entries() const {
  std::vector<RegistryEntry> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) out.push_back(s.entry);
  return out;
}

std::unique_ptr<Topology> TopologyRegistry::make(const std::string& spec) const {
  const SpecArgs args(spec);
  for (const Slot& s : slots_) {
    if (s.entry.name == args.name()) return s.factory(args);
  }
  std::string names;
  for (const RegistryEntry& e : entries()) {
    if (!names.empty()) names += ", ";
    names += e.name;
  }
  throw InvalidArgument("unknown topology '" + args.name() + "' (registered: " + names + ")");
}

PatternRegistry& PatternRegistry::instance() {
  static PatternRegistry registry;
  return registry;
}

void PatternRegistry::add(RegistryEntry entry, Factory factory) {
  QUARC_REQUIRE(!contains(entry.name), "pattern '" + entry.name + "' registered twice");
  slots_.push_back(Slot{std::move(entry), std::move(factory)});
}

bool PatternRegistry::contains(const std::string& name) const {
  return std::any_of(slots_.begin(), slots_.end(),
                     [&](const Slot& s) { return s.entry.name == name; });
}

std::vector<RegistryEntry> PatternRegistry::entries() const {
  std::vector<RegistryEntry> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) out.push_back(s.entry);
  return out;
}

std::shared_ptr<const MulticastPattern> PatternRegistry::make(const std::string& spec,
                                                              int num_nodes, Rng& rng) const {
  QUARC_REQUIRE(num_nodes >= 2, "pattern needs a topology of at least two nodes");
  const SpecArgs args(spec);
  const PatternContext ctx{num_nodes, &rng};
  for (const Slot& s : slots_) {
    if (s.entry.name == args.name()) return s.factory(args, ctx);
  }
  std::string names;
  for (const RegistryEntry& e : entries()) {
    if (!names.empty()) names += ", ";
    names += e.name;
  }
  throw InvalidArgument("unknown pattern '" + args.name() + "' (registered: " + names + ")");
}

std::unique_ptr<Topology> make_topology(const std::string& spec) {
  return TopologyRegistry::instance().make(spec);
}

std::shared_ptr<const MulticastPattern> make_pattern(const std::string& spec, int num_nodes,
                                                     Rng& rng) {
  return PatternRegistry::instance().make(spec, num_nodes, rng);
}

namespace {

std::string describe_entries(const std::vector<RegistryEntry>& entries) {
  std::ostringstream os;
  for (const RegistryEntry& e : entries) {
    os << "  " << e.signature;
    for (std::size_t pad = e.signature.size(); pad < 26; ++pad) os << ' ';
    os << e.help << "\n";
  }
  return os.str();
}

}  // namespace

std::string describe_topologies() {
  return describe_entries(TopologyRegistry::instance().entries());
}

std::string describe_patterns() {
  return describe_entries(PatternRegistry::instance().entries());
}

// ----------------------------------------------------- built-in factories

namespace {

const TopologyRegistrar kQuarc{
    {"quarc", "quarc[:N]", "all-port Quarc ring, N % 4 == 0 (default 16)", "quarc:16"},
    [](const SpecArgs& a) {
      a.require_count(0, 1, "quarc[:N]");
      return std::make_unique<QuarcTopology>(a.int_at(0, 16));
    }};

const TopologyRegistrar kQuarc1p{
    {"quarc1p", "quarc1p[:N]", "one-port Quarc ablation variant (default 16)", "quarc1p:16"},
    [](const SpecArgs& a) {
      a.require_count(0, 1, "quarc1p[:N]");
      return std::make_unique<QuarcTopology>(a.int_at(0, 16), PortScheme::OnePort);
    }};

const TopologyRegistrar kSpidergon{
    {"spidergon", "spidergon[:N]", "one-port Spidergon ring (default 16)", "spidergon:16"},
    [](const SpecArgs& a) {
      a.require_count(0, 1, "spidergon[:N]");
      return std::make_unique<SpidergonTopology>(a.int_at(0, 16));
    }};

const TopologyRegistrar kMesh{
    {"mesh", "mesh[:WxH]", "XY-routed multi-port 2D mesh (default 4x4)", "mesh:4x4"},
    [](const SpecArgs& a) {
      a.require_count(0, 2, "mesh[:WxH]");
      const auto [w, h] = a.pair_at(0, {4, 4});
      return std::make_unique<MeshTopology>(w, h, MeshRouting::XY);
    }};

const TopologyRegistrar kMeshHam{
    {"mesh-ham", "mesh-ham[:WxH]", "Hamiltonian dual-path mesh with hardware multicast",
     "mesh-ham:4x4"},
    [](const SpecArgs& a) {
      a.require_count(0, 2, "mesh-ham[:WxH]");
      const auto [w, h] = a.pair_at(0, {4, 4});
      return std::make_unique<MeshTopology>(w, h, MeshRouting::Hamiltonian);
    }};

const TopologyRegistrar kTorus{
    {"torus", "torus[:WxH]", "dimension-ordered multi-port 2D torus (default 4x4)", "torus:4x4"},
    [](const SpecArgs& a) {
      a.require_count(0, 2, "torus[:WxH]");
      const auto [w, h] = a.pair_at(0, {4, 4});
      return std::make_unique<TorusTopology>(w, h);
    }};

const TopologyRegistrar kHypercube{
    {"hypercube", "hypercube[:D]", "binary D-cube with e-cube routing (default 4)",
     "hypercube:4"},
    [](const SpecArgs& a) {
      a.require_count(0, 1, "hypercube[:D]");
      return std::make_unique<HypercubeTopology>(a.int_at(0, 4));
    }};

const PatternRegistrar kNone{
    {"none", "none", "no multicast destination set (unicast-only workloads)", "none"},
    [](const SpecArgs& a, const PatternContext&) -> std::shared_ptr<const MulticastPattern> {
      a.require_count(0, 0, "none");
      return nullptr;
    }};

const PatternRegistrar kBroadcast{
    {"broadcast", "broadcast", "every node targets all other nodes", "broadcast"},
    [](const SpecArgs& a, const PatternContext& ctx) -> std::shared_ptr<const MulticastPattern> {
      a.require_count(0, 0, "broadcast");
      return RingRelativePattern::broadcast(ctx.num_nodes);
    }};

const PatternRegistrar kRandom{
    {"random", "random:K", "K ring offsets drawn once, shared by all sources (Fig. 6)",
     "random:4"},
    [](const SpecArgs& a, const PatternContext& ctx) -> std::shared_ptr<const MulticastPattern> {
      a.require_count(1, 1, "random:K");
      return RingRelativePattern::random(ctx.num_nodes, a.int_at(0), *ctx.rng);
    }};

const PatternRegistrar kLocalized{
    {"localized", "localized:LO:HI:K",
     "K offsets within [LO,HI]; LO/HI absolute or fractions of N (Fig. 7)",
     "localized:0.2:0.8:3"},
    [](const SpecArgs& a, const PatternContext& ctx) -> std::shared_ptr<const MulticastPattern> {
      a.require_count(3, 3, "localized:LO:HI:K");
      const int lo = a.offset_at(0, ctx.num_nodes);
      const int hi = a.offset_at(1, ctx.num_nodes);
      return RingRelativePattern::localized(ctx.num_nodes, lo, hi, a.int_at(2), *ctx.rng);
    }};

const PatternRegistrar kUniform{
    {"uniform", "uniform:K", "independent K random destinations per source", "uniform:4"},
    [](const SpecArgs& a, const PatternContext& ctx) -> std::shared_ptr<const MulticastPattern> {
      a.require_count(1, 1, "uniform:K");
      return std::make_shared<UniformRandomPattern>(ctx.num_nodes, a.int_at(0), *ctx.rng);
    }};

/// Grid shape for the neighborhood families: an explicit WxH argument at
/// `i` (must cover the topology exactly), or a square inferred from the
/// node count.
std::pair<int, int> neighborhood_grid(const SpecArgs& a, std::size_t i, int num_nodes) {
  if (i < a.size()) {
    const auto [w, h] = a.pair_at(i, {0, 0});
    if (w < 1 || h < 1 || w * h != num_nodes) {
      throw InvalidArgument("spec '" + a.spec() + "': grid " + std::to_string(w) + "x" +
                            std::to_string(h) + " does not cover the topology's " +
                            std::to_string(num_nodes) + " nodes");
    }
    return {w, h};
  }
  const int side = static_cast<int>(std::lround(std::sqrt(static_cast<double>(num_nodes))));
  if (side * side != num_nodes) {
    throw InvalidArgument("spec '" + a.spec() + "': " + std::to_string(num_nodes) +
                          " nodes is not a square grid; pass an explicit WxH argument");
  }
  return {side, side};
}

const PatternRegistrar kNeighborhood{
    {"neighborhood", "neighborhood:R:K[:WxH]",
     "K dests per source in the Manhattan R-ball (mesh metric, clipped)",
     "neighborhood:2:3"},
    [](const SpecArgs& a, const PatternContext& ctx) -> std::shared_ptr<const MulticastPattern> {
      a.require_count(2, 3, "neighborhood:R:K[:WxH]");
      const auto [w, h] = neighborhood_grid(a, 2, ctx.num_nodes);
      return std::make_shared<NeighborhoodPattern>(w, h, a.int_at(0), a.int_at(1),
                                                   /*wrap=*/false, *ctx.rng);
    }};

const PatternRegistrar kNeighborhoodWrap{
    {"neighborhood-wrap", "neighborhood-wrap:R:K[:WxH]",
     "K dests per source in the Manhattan R-ball (torus metric, wrapping)",
     "neighborhood-wrap:2:3"},
    [](const SpecArgs& a, const PatternContext& ctx) -> std::shared_ptr<const MulticastPattern> {
      a.require_count(2, 3, "neighborhood-wrap:R:K[:WxH]");
      const auto [w, h] = neighborhood_grid(a, 2, ctx.num_nodes);
      return std::make_shared<NeighborhoodPattern>(w, h, a.int_at(0), a.int_at(1),
                                                   /*wrap=*/true, *ctx.rng);
    }};

}  // namespace

}  // namespace quarc::api
