#include "quarc/topo/mesh.hpp"

#include <algorithm>
#include <array>

#include "quarc/util/error.hpp"

namespace quarc {

namespace {
constexpr std::array<const char*, 4> kDirName = {"E", "W", "N", "S"};
}

MeshTopology::MeshTopology(int width, int height, MeshRouting mode)
    : Topology(width * height, mode == MeshRouting::XY ? 4 : 2),
      width_(width),
      height_(height),
      mode_(mode),
      labeling_(width, height) {
  QUARC_REQUIRE(width >= 2 && height >= 2, "mesh requires width, height >= 2");

  const int n = num_nodes();
  link_.resize(static_cast<std::size_t>(n), {kInvalidChannel, kInvalidChannel, kInvalidChannel,
                                             kInvalidChannel});
  inj_.resize(static_cast<std::size_t>(n));
  ej_.resize(static_cast<std::size_t>(n));

  for (NodeId i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const int x = x_of(i);
    const int y = y_of(i);
    for (PortId p = 0; p < num_ports(); ++p) {
      inj_[ui].push_back(add_channel(ChannelKind::Injection, i, i, p, 1,
                                     "inj[" + std::to_string(i) + "." + std::to_string(p) + "]"));
    }
    if (x + 1 < width_) {
      link_[ui][kEast] = add_channel(ChannelKind::External, i, node_id(x + 1, y), -1, 1,
                                     "E[" + std::to_string(i) + "]");
    }
    if (x - 1 >= 0) {
      link_[ui][kWest] = add_channel(ChannelKind::External, i, node_id(x - 1, y), -1, 1,
                                     "W[" + std::to_string(i) + "]");
    }
    if (y + 1 < height_) {
      link_[ui][kNorth] = add_channel(ChannelKind::External, i, node_id(x, y + 1), -1, 1,
                                      "N[" + std::to_string(i) + "]");
    }
    if (y - 1 >= 0) {
      link_[ui][kSouth] = add_channel(ChannelKind::External, i, node_id(x, y - 1), -1, 1,
                                      "S[" + std::to_string(i) + "]");
    }
    for (int d = 0; d < 4; ++d) {
      ej_[ui][static_cast<std::size_t>(d)] =
          add_channel(ChannelKind::Ejection, i, i, d, 1,
                      "ej[" + std::to_string(i) + "." + kDirName[static_cast<std::size_t>(d)] + "]",
                      /*dedicated=*/true);
    }
  }
}

std::string MeshTopology::name() const {
  return "mesh-" + std::to_string(width_) + "x" + std::to_string(height_) +
         (mode_ == MeshRouting::XY ? "-xy" : "-ham");
}

NodeId MeshTopology::node_id(int x, int y) const {
  QUARC_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_, "grid coordinate out of range");
  return static_cast<NodeId>(y * width_ + x);
}

ChannelId MeshTopology::link(NodeId node, Dir dir) const {
  QUARC_REQUIRE(node >= 0 && node < num_nodes(), "node out of range");
  return link_[static_cast<std::size_t>(node)][static_cast<std::size_t>(dir)];
}

ChannelId MeshTopology::injection_channel(NodeId node, PortId port) const {
  QUARC_REQUIRE(node >= 0 && node < num_nodes(), "node out of range");
  QUARC_REQUIRE(port >= 0 && port < num_ports(), "port out of range");
  return inj_[static_cast<std::size_t>(node)][static_cast<std::size_t>(port)];
}

ChannelId MeshTopology::ejection_channel(NodeId node, Dir arrival_dir) const {
  QUARC_REQUIRE(node >= 0 && node < num_nodes(), "node out of range");
  return ej_[static_cast<std::size_t>(node)][static_cast<std::size_t>(arrival_dir)];
}

MeshTopology::Dir MeshTopology::step_dir(NodeId a, NodeId b) const {
  const int ax = x_of(a), ay = y_of(a), bx = x_of(b), by = y_of(b);
  if (bx == ax + 1 && by == ay) return kEast;
  if (bx == ax - 1 && by == ay) return kWest;
  if (by == ay + 1 && bx == ax) return kNorth;
  if (by == ay - 1 && bx == ax) return kSouth;
  QUARC_ASSERT(false, "step_dir on non-adjacent nodes");
}

MeshTopology::Dir MeshTopology::append_ham_walk(int from_label, int to_label,
                                                std::vector<ChannelId>& links,
                                                std::vector<std::uint8_t>& vcs) const {
  QUARC_ASSERT(from_label != to_label, "empty Hamiltonian walk");
  const int step = to_label > from_label ? 1 : -1;
  Dir last = kEast;
  for (int l = from_label + step; l != to_label + step; l += step) {
    const NodeId a = labeling_.node_at(l - step);
    const NodeId b = labeling_.node_at(l);
    last = step_dir(a, b);
    const ChannelId ch = link(a, last);
    QUARC_ASSERT(ch != kInvalidChannel, "Hamiltonian walk crossed a missing link");
    links.push_back(ch);
    vcs.push_back(0);
  }
  return last;
}

PortId MeshTopology::port_of(NodeId s, NodeId d) const {
  check_pair(s, d);
  if (mode_ == MeshRouting::XY) {
    if (x_of(d) != x_of(s)) return x_of(d) > x_of(s) ? kEast : kWest;
    return y_of(d) > y_of(s) ? kNorth : kSouth;
  }
  return labeling_.label_of(d) > labeling_.label_of(s) ? kHigh : kLow;
}

UnicastRoute MeshTopology::unicast_route(NodeId s, NodeId d) const {
  check_pair(s, d);
  UnicastRoute r;
  r.source = s;
  r.dest = d;

  if (mode_ == MeshRouting::XY) {  // port decision mirrored in port_of()
    // Dimension-ordered: resolve x first, then y.
    NodeId at = s;
    Dir last = kEast;
    while (x_of(at) != x_of(d)) {
      last = x_of(d) > x_of(at) ? kEast : kWest;
      const ChannelId ch = link(at, last);
      QUARC_ASSERT(ch != kInvalidChannel, "XY route crossed a missing link");
      r.links.push_back(ch);
      r.link_vcs.push_back(0);
      at = channel(ch).dst;
    }
    while (y_of(at) != y_of(d)) {
      last = y_of(d) > y_of(at) ? kNorth : kSouth;
      const ChannelId ch = link(at, last);
      QUARC_ASSERT(ch != kInvalidChannel, "XY route crossed a missing link");
      r.links.push_back(ch);
      r.link_vcs.push_back(0);
      at = channel(ch).dst;
    }
    r.port = static_cast<PortId>(step_dir(s, channel(r.links.front()).dst));
    r.injection = inj_[static_cast<std::size_t>(s)][static_cast<std::size_t>(r.port)];
    r.ejection = ejection_channel(d, last);
    return r;
  }

  // Hamiltonian dual-path: all traffic walks the snake.
  const int ls = labeling_.label_of(s);
  const int ld = labeling_.label_of(d);
  r.port = ld > ls ? kHigh : kLow;
  r.injection = inj_[static_cast<std::size_t>(s)][static_cast<std::size_t>(r.port)];
  const Dir last = append_ham_walk(ls, ld, r.links, r.link_vcs);
  r.ejection = ejection_channel(d, last);
  return r;
}

std::vector<MulticastStream> MeshTopology::multicast_streams(
    NodeId s, const std::vector<NodeId>& dests) const {
  QUARC_REQUIRE(mode_ == MeshRouting::Hamiltonian,
                "mesh multicast requires Hamiltonian routing mode");
  QUARC_REQUIRE(s >= 0 && s < num_nodes(), "source node out of range");
  const int ls = labeling_.label_of(s);

  std::vector<int> high, low;
  for (NodeId d : dests) {
    check_pair(s, d);
    const int l = labeling_.label_of(d);
    (l > ls ? high : low).push_back(l);
  }
  std::sort(high.begin(), high.end());
  std::sort(low.begin(), low.end(), std::greater<>());

  std::vector<MulticastStream> streams;
  auto build = [&](PortId port, const std::vector<int>& labels) {
    if (labels.empty()) return;
    MulticastStream st;
    st.source = s;
    st.port = port;
    st.injection = inj_[static_cast<std::size_t>(s)][static_cast<std::size_t>(port)];
    // Walk label by label so each stop's arrival direction is known.
    int prev = ls;
    for (int l : labels) {
      const Dir arrival = append_ham_walk(prev, l, st.links, st.link_vcs);
      const NodeId node = labeling_.node_at(l);
      st.stops.push_back({static_cast<int>(st.links.size()), node, ejection_channel(node, arrival)});
      prev = l;
    }
    streams.push_back(std::move(st));
  };
  build(kHigh, high);
  build(kLow, low);
  return streams;
}

}  // namespace quarc
