// The Quarc NoC (paper Section 3; Moadeli et al. [17]).
//
// N nodes (N a positive multiple of 4) on a ring with, per node:
//   * a clockwise rim link   CW[i]  : i -> i+1
//   * a counter-clockwise rim link CCW[i] : i -> i-1
//   * two cross links XL[i], XR[i] : i -> i + N/2 (the Spidergon cross link
//     split in two so the left and right cross quadrants have private
//     bandwidth — Quarc change (i))
//
// Routing is quadrant-based and requires no switch logic: the injection
// port fully determines the path (paper Section 3.3.1). For a destination
// at clockwise distance k (q = N/4):
//
//   port L  (left rim)    1 <= k <= q        CW rim,          k hops
//   port CL (cross-left)  q <  k <= 2q       XL then CCW rim, 1 + (N/2 - k) hops
//   port CR (cross-right) 2q < k <  3q       XR then CW rim,  1 + (k - N/2) hops
//   port R  (right rim)   3q <= k <= N-1     CCW rim,         N - k hops
//
// Broadcast/multicast is BRCP path-based with absorb-and-forward (Section
// 3.3.2/3.3.3): one stream per port, tagged with the last node on the
// quadrant path; every stream of a broadcast is exactly N/4 hops.
//
// Rim links carry two virtual channels with a dateline scheme (inherited
// from Spidergon) so that rim-ring dependency cycles cannot deadlock.
#pragma once

#include "quarc/topo/topology.hpp"

namespace quarc {

/// Router port architecture (paper Fig. 1). AllPort is the Quarc design;
/// OnePort is the ablation baseline in which all traffic shares a single
/// injection and a single ejection channel per node.
enum class PortScheme { AllPort, OnePort };

class QuarcTopology final : public Topology {
 public:
  /// Quadrant/injection-port indices.
  enum Port : PortId { kL = 0, kCL = 1, kCR = 2, kR = 3 };
  /// Ejection arrival directions (all-port scheme).
  enum EjectDir : PortId { kFromCW = 0, kFromCCW = 1, kFromXL = 2, kFromXR = 3 };

  /// Builds a Quarc NoC of `num_nodes` nodes; requires num_nodes >= 8 and
  /// num_nodes % 4 == 0 (quadrant symmetry).
  explicit QuarcTopology(int num_nodes, PortScheme scheme = PortScheme::AllPort);

  std::string name() const override;
  UnicastRoute unicast_route(NodeId s, NodeId d) const override;
  /// Closed-form: the quadrant of the clockwise distance (port 0 for the
  /// one-port ablation scheme).
  PortId port_of(NodeId s, NodeId d) const override;
  bool supports_multicast() const override { return true; }
  std::vector<MulticastStream> multicast_streams(NodeId s,
                                                 const std::vector<NodeId>& dests) const override;
  /// Quarc's diameter is N/4 in closed form; overridden to avoid the scan.
  int diameter() const override { return num_nodes() / 4; }

  PortScheme scheme() const { return scheme_; }

  /// Clockwise distance (d - s) mod N; in [1, N-1] for distinct nodes.
  int cw_distance(NodeId s, NodeId d) const;
  /// Quadrant (== injection port) serving clockwise distance k.
  Port quadrant_of_distance(int k) const;
  /// Hop count for a unicast at clockwise distance k.
  int hops_for_distance(int k) const;

  // Channel lookups (used by tests and the closed-form cross-checks).
  ChannelId injection_channel(NodeId node, PortId port) const;
  ChannelId cw_channel(NodeId node) const { return cw_[static_cast<std::size_t>(node)]; }
  ChannelId ccw_channel(NodeId node) const { return ccw_[static_cast<std::size_t>(node)]; }
  ChannelId xl_channel(NodeId node) const { return xl_[static_cast<std::size_t>(node)]; }
  ChannelId xr_channel(NodeId node) const { return xr_[static_cast<std::size_t>(node)]; }
  ChannelId ejection_channel(NodeId node, EjectDir dir) const;

 private:
  struct QuadrantTargets;

  NodeId wrap(std::int64_t v) const {
    const int n = num_nodes();
    return static_cast<NodeId>(((v % n) + n) % n);
  }

  /// CW rim chain s, s+1, ..., length `count`, with dateline VCs relative to
  /// entry node `entry`. Appends to links/vcs.
  void append_cw_chain(NodeId entry, int count, std::vector<ChannelId>& links,
                       std::vector<std::uint8_t>& vcs) const;
  void append_ccw_chain(NodeId entry, int count, std::vector<ChannelId>& links,
                        std::vector<std::uint8_t>& vcs) const;

  PortScheme scheme_;
  std::vector<std::vector<ChannelId>> inj_;  // [node][port]
  std::vector<ChannelId> cw_, ccw_, xl_, xr_;
  std::vector<std::vector<ChannelId>> ej_;  // [node][dir] (single entry for OnePort)
};

}  // namespace quarc
