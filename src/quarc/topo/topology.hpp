// Topology abstraction shared by the analytical model and the simulator.
//
// A topology owns a table of unidirectional *channels* — the resources the
// queueing model reasons about and the simulator allocates:
//   * Injection channels: processing element -> router, one per router port.
//     All-port architectures (Quarc, mesh, torus here) have one injection
//     channel per external direction; one-port architectures (Spidergon)
//     have a single injection channel per node (paper Fig. 1).
//   * External channels: router -> neighbouring router links.
//   * Ejection channels: router -> local sink. For multi-port routers there
//     is one per arrival direction (paper: "the sink is connected to the
//     router via four ejection channels").
//
// Routing is deterministic (a paper assumption): unicast_route() returns
// the unique channel sequence for a source/destination pair, and
// multicast_streams() returns the per-injection-port BRCP streams covering
// a destination set, each with its ordered absorb-and-forward stops.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quarc/util/types.hpp"

namespace quarc {

enum class ChannelKind : std::uint8_t { Injection, External, Ejection };

/// Static description of one unidirectional channel.
struct ChannelInfo {
  ChannelId id = kInvalidChannel;
  ChannelKind kind = ChannelKind::External;
  /// Router at which the channel originates. For injection channels this is
  /// the node whose PE feeds it; for ejection channels the node whose sink
  /// drains it.
  NodeId src = kInvalidNode;
  /// Downstream router (External); for Injection/Ejection: same as src.
  NodeId dst = kInvalidNode;
  /// Injection port index, or ejection arrival-direction index; -1 for
  /// external channels.
  PortId port = -1;
  /// Virtual channels multiplexed on this physical channel (simulator);
  /// the analytical model works at physical-channel granularity.
  int vcs = 1;
  /// Ejection channels only: true when the channel is fed by exactly one
  /// input link (the multi-port per-direction sinks of Quarc/mesh/torus).
  /// Such channels never contend, so the simulator treats absorption
  /// through them as allocation-free — exactly the paper's non-blocking
  /// ingress-multiplexer clone, and the reason the Eq. 6 self-traffic
  /// discount zeroes their waiting term. Shared one-port ejection channels
  /// (Spidergon) keep FIFO message-granularity arbitration.
  bool dedicated = false;
  std::string label;
};

/// The deterministic path of a unicast message.
struct UnicastRoute {
  PortId port = 0;                 ///< Injection port chosen at the source.
  ChannelId injection = kInvalidChannel;
  std::vector<ChannelId> links;    ///< External channels, source to destination order.
  std::vector<std::uint8_t> link_vcs;  ///< Virtual channel per link (dateline scheme).
  ChannelId ejection = kInvalidChannel;
  NodeId source = kInvalidNode;
  NodeId dest = kInvalidNode;

  /// Number of external hops (the D of paper Eq. 7).
  int hops() const { return static_cast<int>(links.size()); }
};

/// One absorb point of a multicast stream.
struct MulticastStop {
  /// Number of external links traversed when the header reaches this node;
  /// stops are ordered by increasing hop and the final stop's hop equals
  /// the stream's link count.
  int hop = 0;
  NodeId node = kInvalidNode;
  ChannelId ejection = kInvalidChannel;
};

/// One per-port worm of a multicast operation (the sub-network S_{j,c} of
/// paper Eq. 1): the stream leaves injection port `port`, traverses `links`
/// and is absorbed (and, except at the last stop, forwarded) at each stop.
struct MulticastStream {
  PortId port = 0;
  ChannelId injection = kInvalidChannel;
  std::vector<ChannelId> links;
  std::vector<std::uint8_t> link_vcs;
  std::vector<MulticastStop> stops;
  NodeId source = kInvalidNode;

  /// Hop count to the stream's last destination (the D_{j,c} of Eq. 7).
  int hops() const { return static_cast<int>(links.size()); }
};

/// Abstract interconnection network.
class Topology {
 public:
  virtual ~Topology() = default;

  virtual std::string name() const = 0;

  int num_nodes() const { return num_nodes_; }
  /// Injection ports per router (the m of paper Eq. 12).
  int num_ports() const { return num_ports_; }
  int num_channels() const { return static_cast<int>(channels_.size()); }
  const std::vector<ChannelInfo>& channels() const { return channels_; }
  const ChannelInfo& channel(ChannelId id) const;

  /// Deterministic route from s to d; requires s != d and both valid.
  virtual UnicastRoute unicast_route(NodeId s, NodeId d) const = 0;

  /// Injection port a unicast from s to d uses. The base implementation
  /// computes the full route and discards everything but the port;
  /// concrete topologies override it with their closed-form port decision
  /// (it is called in hot model-assembly loops, where the route's vector
  /// allocations dominate). Overrides must agree with unicast_route().port
  /// exactly — validate_topology() checks this for every pair.
  virtual PortId port_of(NodeId s, NodeId d) const { return unicast_route(s, d).port; }

  /// Whether the switches support hardware multicast worms (BRCP
  /// absorb-and-forward). When false (Spidergon, torus here), collective
  /// operations are performed by consecutive unicasts at the traffic layer.
  virtual bool supports_multicast() const { return false; }

  /// Per-port BRCP streams covering `dests` (absolute node ids, none equal
  /// to s, no duplicates). Only valid when supports_multicast().
  virtual std::vector<MulticastStream> multicast_streams(NodeId s,
                                                         const std::vector<NodeId>& dests) const;

  /// Longest unicast route in hops; computed by exhaustive scan by default.
  virtual int diameter() const;

  /// Validates the source/destination pair preconditions shared by all
  /// implementations; throws InvalidArgument on violation.
  void check_pair(NodeId s, NodeId d) const;

 protected:
  Topology(int num_nodes, int num_ports);

  /// Registers a channel and returns its id. Only called from constructors.
  ChannelId add_channel(ChannelKind kind, NodeId src, NodeId dst, PortId port, int vcs,
                        std::string label, bool dedicated = false);

 private:
  int num_nodes_;
  int num_ports_;
  std::vector<ChannelInfo> channels_;
};

/// Structural sanity checks on a topology implementation. Verifies that
/// every unicast route is a connected channel chain of the right kinds with
/// consistent endpoints, and (when supported) that multicast streams for
/// sampled destination sets cover exactly the requested destinations with
/// ordered stops. Throws ComputationError describing the first violation.
/// Used by the test-suite for all shipped topologies.
void validate_topology(const Topology& topo);

}  // namespace quarc
