#include "quarc/topo/torus.hpp"

#include "quarc/util/error.hpp"

namespace quarc {

namespace {
constexpr std::array<const char*, 4> kDirName = {"E", "W", "N", "S"};
constexpr int kRingVcs = 2;  // dateline scheme on every ring
}  // namespace

TorusTopology::TorusTopology(int width, int height)
    : Topology(width * height, 4), width_(width), height_(height) {
  QUARC_REQUIRE(width >= 3 && height >= 3, "torus requires width, height >= 3");

  const int n = num_nodes();
  link_.resize(static_cast<std::size_t>(n));
  inj_.resize(static_cast<std::size_t>(n));
  ej_.resize(static_cast<std::size_t>(n));

  auto wrap_x = [this](int x) { return (x % width_ + width_) % width_; };
  auto wrap_y = [this](int y) { return (y % height_ + height_) % height_; };

  for (NodeId i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const int x = x_of(i);
    const int y = y_of(i);
    for (PortId p = 0; p < 4; ++p) {
      inj_[ui].push_back(add_channel(ChannelKind::Injection, i, i, p, 1,
                                     "inj[" + std::to_string(i) + "." +
                                         kDirName[static_cast<std::size_t>(p)] + "]"));
    }
    link_[ui][kEast] = add_channel(ChannelKind::External, i, node_id(wrap_x(x + 1), y), -1,
                                   kRingVcs, "E[" + std::to_string(i) + "]");
    link_[ui][kWest] = add_channel(ChannelKind::External, i, node_id(wrap_x(x - 1), y), -1,
                                   kRingVcs, "W[" + std::to_string(i) + "]");
    link_[ui][kNorth] = add_channel(ChannelKind::External, i, node_id(x, wrap_y(y + 1)), -1,
                                    kRingVcs, "N[" + std::to_string(i) + "]");
    link_[ui][kSouth] = add_channel(ChannelKind::External, i, node_id(x, wrap_y(y - 1)), -1,
                                    kRingVcs, "S[" + std::to_string(i) + "]");
    for (int d = 0; d < 4; ++d) {
      ej_[ui][static_cast<std::size_t>(d)] =
          add_channel(ChannelKind::Ejection, i, i, d, 1,
                      "ej[" + std::to_string(i) + "." + kDirName[static_cast<std::size_t>(d)] + "]",
                      /*dedicated=*/true);
    }
  }
}

std::string TorusTopology::name() const {
  return "torus-" + std::to_string(width_) + "x" + std::to_string(height_);
}

NodeId TorusTopology::node_id(int x, int y) const {
  QUARC_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_, "grid coordinate out of range");
  return static_cast<NodeId>(y * width_ + x);
}

ChannelId TorusTopology::link(NodeId node, Dir dir) const {
  QUARC_REQUIRE(node >= 0 && node < num_nodes(), "node out of range");
  return link_[static_cast<std::size_t>(node)][static_cast<std::size_t>(dir)];
}

ChannelId TorusTopology::injection_channel(NodeId node, PortId port) const {
  QUARC_REQUIRE(node >= 0 && node < num_nodes(), "node out of range");
  QUARC_REQUIRE(port >= 0 && port < 4, "port out of range");
  return inj_[static_cast<std::size_t>(node)][static_cast<std::size_t>(port)];
}

ChannelId TorusTopology::ejection_channel(NodeId node, Dir arrival_dir) const {
  QUARC_REQUIRE(node >= 0 && node < num_nodes(), "node out of range");
  return ej_[static_cast<std::size_t>(node)][static_cast<std::size_t>(arrival_dir)];
}

NodeId TorusTopology::append_ring_walk(NodeId at, Dir dir, int count,
                                       std::vector<ChannelId>& links,
                                       std::vector<std::uint8_t>& vcs) const {
  const bool horizontal = dir == kEast || dir == kWest;
  const int entry = horizontal ? x_of(at) : y_of(at);
  NodeId cur = at;
  for (int t = 0; t < count; ++t) {
    const int c = horizontal ? x_of(cur) : y_of(cur);
    // Dateline: positive-direction rings wrap from index max to 0, so a
    // worm that started at `entry` has wrapped once its coordinate drops
    // below the entry; negative-direction rings wrap 0 -> max, detected as
    // the coordinate rising above the entry.
    const bool positive = dir == kEast || dir == kNorth;
    const std::uint8_t vc = positive ? (c < entry ? 1 : 0) : (c > entry ? 1 : 0);
    const ChannelId ch = link(cur, dir);
    links.push_back(ch);
    vcs.push_back(vc);
    cur = channel(ch).dst;
  }
  return cur;
}

PortId TorusTopology::port_of(NodeId s, NodeId d) const {
  check_pair(s, d);
  // Mirrors unicast_route(): X resolved first (east on ties), then Y
  // (north on ties).
  const int dx = ((x_of(d) - x_of(s)) % width_ + width_) % width_;
  if (dx != 0) return dx <= width_ - dx ? kEast : kWest;
  const int dy = ((y_of(d) - y_of(s)) % height_ + height_) % height_;
  return dy <= height_ - dy ? kNorth : kSouth;
}

UnicastRoute TorusTopology::unicast_route(NodeId s, NodeId d) const {
  check_pair(s, d);
  UnicastRoute r;
  r.source = s;
  r.dest = d;

  // X dimension first: shortest way around the row ring, east on ties.
  const int dx = ((x_of(d) - x_of(s)) % width_ + width_) % width_;
  const int dy = ((y_of(d) - y_of(s)) % height_ + height_) % height_;

  NodeId at = s;
  Dir first = kEast;
  Dir last = kEast;
  bool first_set = false;
  if (dx != 0) {
    const bool east = dx <= width_ - dx;  // tie -> east
    const int steps = east ? dx : width_ - dx;
    last = east ? kEast : kWest;
    if (!first_set) {
      first = last;
      first_set = true;
    }
    at = append_ring_walk(at, last, steps, r.links, r.link_vcs);
  }
  if (dy != 0) {
    const bool north = dy <= height_ - dy;  // tie -> north
    const int steps = north ? dy : height_ - dy;
    last = north ? kNorth : kSouth;
    if (!first_set) {
      first = last;
      first_set = true;
    }
    at = append_ring_walk(at, last, steps, r.links, r.link_vcs);
  }
  QUARC_ASSERT(at == d && first_set, "torus route did not reach destination");

  r.port = static_cast<PortId>(first);
  r.injection = inj_[static_cast<std::size_t>(s)][static_cast<std::size_t>(r.port)];
  r.ejection = ejection_channel(d, last);
  return r;
}

}  // namespace quarc
