#include "quarc/topo/quarc.hpp"

#include <algorithm>
#include <array>

#include "quarc/util/error.hpp"

namespace quarc {

namespace {
constexpr int kRimVcs = 2;  // Spidergon/Quarc rim links carry two VCs (dateline scheme).
}

QuarcTopology::QuarcTopology(int num_nodes, PortScheme scheme)
    : Topology(num_nodes, scheme == PortScheme::AllPort ? 4 : 1), scheme_(scheme) {
  QUARC_REQUIRE(num_nodes >= 8, "Quarc requires at least 8 nodes");
  QUARC_REQUIRE(num_nodes % 4 == 0, "Quarc requires a node count divisible by 4");

  const auto n = static_cast<std::size_t>(num_nodes);
  inj_.resize(n);
  ej_.resize(n);
  cw_.resize(n);
  ccw_.resize(n);
  xl_.resize(n);
  xr_.resize(n);

  static constexpr std::array<const char*, 4> kPortName = {"L", "CL", "CR", "R"};
  static constexpr std::array<const char*, 4> kDirName = {"fromCW", "fromCCW", "fromXL", "fromXR"};

  for (NodeId i = 0; i < num_nodes; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    for (PortId p = 0; p < num_ports(); ++p) {
      const char* pname = scheme_ == PortScheme::AllPort ? kPortName[static_cast<std::size_t>(p)] : "inj";
      inj_[ui].push_back(add_channel(ChannelKind::Injection, i, i, p, 1,
                                     "inj[" + std::to_string(i) + "." + pname + "]"));
    }
    cw_[ui] = add_channel(ChannelKind::External, i, wrap(i + 1), -1, kRimVcs,
                          "CW[" + std::to_string(i) + "]");
    ccw_[ui] = add_channel(ChannelKind::External, i, wrap(i - 1), -1, kRimVcs,
                           "CCW[" + std::to_string(i) + "]");
    xl_[ui] = add_channel(ChannelKind::External, i, wrap(i + num_nodes / 2), -1, 1,
                          "XL[" + std::to_string(i) + "]");
    xr_[ui] = add_channel(ChannelKind::External, i, wrap(i + num_nodes / 2), -1, 1,
                          "XR[" + std::to_string(i) + "]");
    // Ejection stays per-arrival-direction in both schemes: each of the
    // four sinks is fed by exactly one input link, so absorption (and the
    // absorb-and-forward clone) never contends. The OnePort ablation
    // restricts the *injection* side only, which is where the paper's
    // multi-port argument (Eq. 12) lives.
    for (PortId d = 0; d < 4; ++d) {
      ej_[ui].push_back(add_channel(ChannelKind::Ejection, i, i, d, 1,
                                    "ej[" + std::to_string(i) + "." +
                                        kDirName[static_cast<std::size_t>(d)] + "]",
                                    /*dedicated=*/true));
    }
  }
}

std::string QuarcTopology::name() const {
  return "quarc-" + std::to_string(num_nodes()) +
         (scheme_ == PortScheme::AllPort ? "" : "-oneport");
}

int QuarcTopology::cw_distance(NodeId s, NodeId d) const {
  check_pair(s, d);
  return static_cast<int>(wrap(static_cast<std::int64_t>(d) - s));
}

QuarcTopology::Port QuarcTopology::quadrant_of_distance(int k) const {
  const int q = num_nodes() / 4;
  QUARC_REQUIRE(k >= 1 && k < num_nodes(), "clockwise distance out of range");
  if (k <= q) return kL;
  if (k <= 2 * q) return kCL;
  if (k < 3 * q) return kCR;
  return kR;
}

int QuarcTopology::hops_for_distance(int k) const {
  const int n = num_nodes();
  switch (quadrant_of_distance(k)) {
    case kL:
      return k;
    case kCL:
      return 1 + (n / 2 - k);
    case kCR:
      return 1 + (k - n / 2);
    case kR:
      return n - k;
  }
  QUARC_ASSERT(false, "unreachable quadrant");
}

ChannelId QuarcTopology::injection_channel(NodeId node, PortId port) const {
  QUARC_REQUIRE(node >= 0 && node < num_nodes(), "node out of range");
  QUARC_REQUIRE(port >= 0 && port < num_ports(), "port out of range");
  return inj_[static_cast<std::size_t>(node)][static_cast<std::size_t>(port)];
}

ChannelId QuarcTopology::ejection_channel(NodeId node, EjectDir dir) const {
  QUARC_REQUIRE(node >= 0 && node < num_nodes(), "node out of range");
  return ej_[static_cast<std::size_t>(node)][static_cast<std::size_t>(dir)];
}

void QuarcTopology::append_cw_chain(NodeId entry, int count, std::vector<ChannelId>& links,
                                    std::vector<std::uint8_t>& vcs) const {
  for (int t = 0; t < count; ++t) {
    const NodeId c = wrap(static_cast<std::int64_t>(entry) + t);
    links.push_back(cw_[static_cast<std::size_t>(c)]);
    // Dateline: a worm entering the CW ring at `entry` switches to VC1 once
    // its channel index wraps below the entry index.
    vcs.push_back(c < entry ? 1 : 0);
  }
}

void QuarcTopology::append_ccw_chain(NodeId entry, int count, std::vector<ChannelId>& links,
                                     std::vector<std::uint8_t>& vcs) const {
  for (int t = 0; t < count; ++t) {
    const NodeId c = wrap(static_cast<std::int64_t>(entry) - t);
    links.push_back(ccw_[static_cast<std::size_t>(c)]);
    vcs.push_back(c > entry ? 1 : 0);
  }
}

PortId QuarcTopology::port_of(NodeId s, NodeId d) const {
  if (scheme_ != PortScheme::AllPort) {
    check_pair(s, d);
    return 0;
  }
  return quadrant_of_distance(cw_distance(s, d));
}

UnicastRoute QuarcTopology::unicast_route(NodeId s, NodeId d) const {
  const int k = cw_distance(s, d);
  const int n = num_nodes();
  const Port quadrant = quadrant_of_distance(k);

  UnicastRoute r;
  r.source = s;
  r.dest = d;
  r.port = scheme_ == PortScheme::AllPort ? quadrant : 0;
  r.injection = inj_[static_cast<std::size_t>(s)][static_cast<std::size_t>(r.port)];

  const NodeId antipode = wrap(static_cast<std::int64_t>(s) + n / 2);
  switch (quadrant) {
    case kL:
      append_cw_chain(s, k, r.links, r.link_vcs);
      r.ejection = ejection_channel(d, kFromCW);
      break;
    case kCL:
      r.links.push_back(xl_[static_cast<std::size_t>(s)]);
      r.link_vcs.push_back(0);
      append_ccw_chain(antipode, n / 2 - k, r.links, r.link_vcs);
      r.ejection = ejection_channel(d, k == n / 2 ? kFromXL : kFromCCW);
      break;
    case kCR:
      r.links.push_back(xr_[static_cast<std::size_t>(s)]);
      r.link_vcs.push_back(0);
      append_cw_chain(antipode, k - n / 2, r.links, r.link_vcs);
      r.ejection = ejection_channel(d, kFromCW);
      break;
    case kR:
      append_ccw_chain(s, n - k, r.links, r.link_vcs);
      r.ejection = ejection_channel(d, kFromCCW);
      break;
  }
  QUARC_ASSERT(r.hops() == hops_for_distance(k), "hop count mismatch with closed form");
  return r;
}

struct QuarcTopology::QuadrantTargets {
  std::vector<int> ks;  // clockwise distances of targets in this quadrant
};

std::vector<MulticastStream> QuarcTopology::multicast_streams(
    NodeId s, const std::vector<NodeId>& dests) const {
  QUARC_REQUIRE(s >= 0 && s < num_nodes(), "source node out of range");
  const int n = num_nodes();

  std::array<QuadrantTargets, 4> quad;
  for (NodeId d : dests) {
    check_pair(s, d);
    const int k = cw_distance(s, d);
    quad[static_cast<std::size_t>(quadrant_of_distance(k))].ks.push_back(k);
  }

  const NodeId antipode = wrap(static_cast<std::int64_t>(s) + n / 2);
  std::vector<MulticastStream> streams;

  auto make_stream = [&](Port port) {
    MulticastStream st;
    st.source = s;
    st.port = scheme_ == PortScheme::AllPort ? port : 0;
    st.injection = inj_[static_cast<std::size_t>(s)][static_cast<std::size_t>(st.port)];
    return st;
  };

  // Port L: visits k = 1, 2, ... in order; stream extends to the largest k.
  if (!quad[kL].ks.empty()) {
    auto ks = quad[kL].ks;
    std::sort(ks.begin(), ks.end());
    MulticastStream st = make_stream(kL);
    append_cw_chain(s, ks.back(), st.links, st.link_vcs);
    for (int k : ks) {
      const NodeId node = wrap(static_cast<std::int64_t>(s) + k);
      st.stops.push_back({k, node, ejection_channel(node, kFromCW)});
    }
    streams.push_back(std::move(st));
  }

  // Port CL: crosses to the antipode (hop 1, distance N/2) then walks the
  // rim counter-clockwise, so targets are visited in *decreasing* k order;
  // the stream's last node is the target with the smallest k.
  if (!quad[kCL].ks.empty()) {
    auto ks = quad[kCL].ks;
    std::sort(ks.begin(), ks.end(), std::greater<>());
    MulticastStream st = make_stream(kCL);
    st.links.push_back(xl_[static_cast<std::size_t>(s)]);
    st.link_vcs.push_back(0);
    append_ccw_chain(antipode, n / 2 - ks.back(), st.links, st.link_vcs);
    for (int k : ks) {
      const int hop = 1 + (n / 2 - k);
      const NodeId node = wrap(static_cast<std::int64_t>(s) + k);
      st.stops.push_back({hop, node, ejection_channel(node, k == n / 2 ? kFromXL : kFromCCW)});
    }
    streams.push_back(std::move(st));
  }

  // Port CR: crosses then walks clockwise; targets visited in increasing k.
  if (!quad[kCR].ks.empty()) {
    auto ks = quad[kCR].ks;
    std::sort(ks.begin(), ks.end());
    MulticastStream st = make_stream(kCR);
    st.links.push_back(xr_[static_cast<std::size_t>(s)]);
    st.link_vcs.push_back(0);
    append_cw_chain(antipode, ks.back() - n / 2, st.links, st.link_vcs);
    for (int k : ks) {
      const int hop = 1 + (k - n / 2);
      const NodeId node = wrap(static_cast<std::int64_t>(s) + k);
      st.stops.push_back({hop, node, ejection_channel(node, kFromCW)});
    }
    streams.push_back(std::move(st));
  }

  // Port R: walks counter-clockwise from the source, so targets are visited
  // in decreasing k order; last node is the smallest k.
  if (!quad[kR].ks.empty()) {
    auto ks = quad[kR].ks;
    std::sort(ks.begin(), ks.end(), std::greater<>());
    MulticastStream st = make_stream(kR);
    append_ccw_chain(s, n - ks.back(), st.links, st.link_vcs);
    for (int k : ks) {
      const int hop = n - k;
      const NodeId node = wrap(static_cast<std::int64_t>(s) + k);
      st.stops.push_back({hop, node, ejection_channel(node, kFromCCW)});
    }
    streams.push_back(std::move(st));
  }

  return streams;
}

}  // namespace quarc
