// Binary d-cube with multi-port routers and e-cube (ascending dimension-
// ordered) routing.
//
// The hypercube is the architecture family behind the paper's antecedents:
// Robinson et al. [8] study all-port hypercube multicast and Shahrabi et
// al. [18] model hypercube broadcast (but with non-wormhole broadcast and
// one-port routers — the gap this paper fills). Including it lets the
// channel model be exercised on a third "relevant interconnection network"
// (paper Section 5) with logarithmic diameter.
//
// Routing: e-cube — flip differing address bits in ascending dimension
// order. The channel dependency graph is acyclic (a worm only ever waits
// for a strictly higher dimension), so a single virtual channel suffices.
// Ports are per-dimension (the injection port is the first dimension
// flipped; the ejection channel the last). Hardware multicast is not
// provided: deadlock-free path-based multicast conforming to e-cube needs
// the full BRCP ordering machinery of [1], so collective traffic uses the
// software consecutive-unicast path, as on Spidergon.
#pragma once

#include "quarc/topo/topology.hpp"

namespace quarc {

class HypercubeTopology final : public Topology {
 public:
  /// Builds a 2^dimensions-node cube; requires 2 <= dimensions <= 10.
  explicit HypercubeTopology(int dimensions);

  std::string name() const override;
  UnicastRoute unicast_route(NodeId s, NodeId d) const override;
  /// Closed-form: the lowest dimension in which s and d differ (e-cube
  /// flips ascending).
  PortId port_of(NodeId s, NodeId d) const override;
  /// The diameter of a binary d-cube is d.
  int diameter() const override { return dimensions_; }

  int dimensions() const { return dimensions_; }
  NodeId neighbor(NodeId node, int dimension) const;

  ChannelId link(NodeId node, int dimension) const;
  ChannelId injection_channel(NodeId node, PortId port) const;
  ChannelId ejection_channel(NodeId node, int arrival_dimension) const;

 private:
  int dimensions_;
  std::vector<std::vector<ChannelId>> link_;  // [node][dim]
  std::vector<std::vector<ChannelId>> inj_;   // [node][dim]
  std::vector<std::vector<ChannelId>> ej_;    // [node][dim]
};

}  // namespace quarc
