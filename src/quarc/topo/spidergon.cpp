#include "quarc/topo/spidergon.hpp"

#include "quarc/util/error.hpp"

namespace quarc {

SpidergonTopology::SpidergonTopology(int num_nodes) : Topology(num_nodes, 1) {
  QUARC_REQUIRE(num_nodes >= 8, "Spidergon requires at least 8 nodes");
  QUARC_REQUIRE(num_nodes % 4 == 0, "Spidergon (as built here) requires node count divisible by 4");

  for (NodeId i = 0; i < num_nodes; ++i) {
    inj_.push_back(add_channel(ChannelKind::Injection, i, i, 0, 1, "inj[" + std::to_string(i) + "]"));
    cw_.push_back(add_channel(ChannelKind::External, i, wrap(i + 1), -1, 2,
                              "CW[" + std::to_string(i) + "]"));
    ccw_.push_back(add_channel(ChannelKind::External, i, wrap(i - 1), -1, 2,
                               "CCW[" + std::to_string(i) + "]"));
    cross_.push_back(add_channel(ChannelKind::External, i, wrap(i + num_nodes / 2), -1, 1,
                                 "X[" + std::to_string(i) + "]"));
    // One-port: the single ejection channel is shared by all three input
    // links, so absorption contends and is FIFO-arbitrated (not dedicated).
    ej_.push_back(add_channel(ChannelKind::Ejection, i, i, 0, 1, "ej[" + std::to_string(i) + "]"));
  }
}

std::string SpidergonTopology::name() const { return "spidergon-" + std::to_string(num_nodes()); }

int SpidergonTopology::cw_distance(NodeId s, NodeId d) const {
  check_pair(s, d);
  return static_cast<int>(wrap(static_cast<std::int64_t>(d) - s));
}

int SpidergonTopology::hops_for_distance(int k) const {
  const int n = num_nodes();
  QUARC_REQUIRE(k >= 1 && k < n, "clockwise distance out of range");
  const int q = n / 4;
  if (k <= q) return k;            // clockwise rim
  if (k >= 3 * q) return n - k;    // counter-clockwise rim
  if (k == n / 2) return 1;        // cross only
  if (k < n / 2) return 1 + (n / 2 - k);  // cross then counter-clockwise
  return 1 + (k - n / 2);                 // cross then clockwise
}

PortId SpidergonTopology::port_of(NodeId s, NodeId d) const {
  check_pair(s, d);
  return 0;
}

UnicastRoute SpidergonTopology::unicast_route(NodeId s, NodeId d) const {
  const int k = cw_distance(s, d);
  const int n = num_nodes();
  const int q = n / 4;

  UnicastRoute r;
  r.source = s;
  r.dest = d;
  r.port = 0;
  r.injection = inj_[static_cast<std::size_t>(s)];
  r.ejection = ej_[static_cast<std::size_t>(d)];

  auto cw_chain = [&](NodeId entry, int count) {
    for (int t = 0; t < count; ++t) {
      const NodeId c = wrap(static_cast<std::int64_t>(entry) + t);
      r.links.push_back(cw_[static_cast<std::size_t>(c)]);
      r.link_vcs.push_back(c < entry ? 1 : 0);  // dateline
    }
  };
  auto ccw_chain = [&](NodeId entry, int count) {
    for (int t = 0; t < count; ++t) {
      const NodeId c = wrap(static_cast<std::int64_t>(entry) - t);
      r.links.push_back(ccw_[static_cast<std::size_t>(c)]);
      r.link_vcs.push_back(c > entry ? 1 : 0);
    }
  };

  const NodeId antipode = wrap(static_cast<std::int64_t>(s) + n / 2);
  if (k <= q) {
    cw_chain(s, k);
  } else if (k >= 3 * q) {
    ccw_chain(s, n - k);
  } else {
    r.links.push_back(cross_[static_cast<std::size_t>(s)]);
    r.link_vcs.push_back(0);
    if (k < n / 2) {
      ccw_chain(antipode, n / 2 - k);
    } else if (k > n / 2) {
      cw_chain(antipode, k - n / 2);
    }
  }
  QUARC_ASSERT(r.hops() == hops_for_distance(k), "hop count mismatch with closed form");
  return r;
}

}  // namespace quarc
