// 2D mesh with multi-port routers — the first half of the paper's stated
// future work ("multi-port mesh and torus").
//
// Two routing modes:
//   * XY: dimension-ordered shortest-path unicast (deadlock-free with a
//     single VC); injection port = first-hop direction (all-port router).
//     No hardware multicast (no deadlock-free path-based scheme conforms
//     to XY without extra machinery).
//   * Hamiltonian: dual-path routing in the Lin/Ni style. All traffic
//     follows the boustrophedon Hamiltonian path; messages to
//     higher-labeled nodes use the "high" sub-network (port 0), lower use
//     "low" (port 1). Both sub-networks are acyclic, so unicast AND
//     path-based multicast with absorb-and-forward are deadlock-free, and
//     a multicast becomes at most two asynchronous streams — exactly the
//     m = 2 instance of the paper's max-of-exponentials model.
#pragma once

#include <array>

#include "quarc/topo/hamiltonian.hpp"
#include "quarc/topo/topology.hpp"

namespace quarc {

enum class MeshRouting { XY, Hamiltonian };

class MeshTopology final : public Topology {
 public:
  enum Dir : PortId { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };
  enum HamPort : PortId { kHigh = 0, kLow = 1 };

  /// Builds a width x height mesh (both >= 2).
  MeshTopology(int width, int height, MeshRouting mode = MeshRouting::XY);

  std::string name() const override;
  UnicastRoute unicast_route(NodeId s, NodeId d) const override;
  /// Closed-form: XY's first-hop direction, or the Hamiltonian high/low
  /// sub-network of the destination's label.
  PortId port_of(NodeId s, NodeId d) const override;
  bool supports_multicast() const override { return mode_ == MeshRouting::Hamiltonian; }
  std::vector<MulticastStream> multicast_streams(NodeId s,
                                                 const std::vector<NodeId>& dests) const override;

  int width() const { return width_; }
  int height() const { return height_; }
  MeshRouting mode() const { return mode_; }
  const HamiltonianLabeling& labeling() const { return labeling_; }

  NodeId node_id(int x, int y) const;
  int x_of(NodeId node) const { return node % width_; }
  int y_of(NodeId node) const { return node / width_; }

  /// External channel leaving `node` in direction `dir`; kInvalidChannel at
  /// a mesh edge.
  ChannelId link(NodeId node, Dir dir) const;
  ChannelId injection_channel(NodeId node, PortId port) const;
  ChannelId ejection_channel(NodeId node, Dir arrival_dir) const;

 private:
  /// Direction of the (adjacent) step a -> b.
  Dir step_dir(NodeId a, NodeId b) const;
  /// Appends the Hamiltonian-path walk from label `from` to label `to`
  /// (exclusive of from, inclusive of to) and reports the final arrival dir.
  Dir append_ham_walk(int from_label, int to_label, std::vector<ChannelId>& links,
                      std::vector<std::uint8_t>& vcs) const;

  int width_, height_;
  MeshRouting mode_;
  HamiltonianLabeling labeling_;
  std::vector<std::array<ChannelId, 4>> link_;  // [node][dir]
  std::vector<std::vector<ChannelId>> inj_;     // [node][port]
  std::vector<std::array<ChannelId, 4>> ej_;    // [node][arrival dir]
};

}  // namespace quarc
