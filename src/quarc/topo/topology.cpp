#include "quarc/topo/topology.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "quarc/util/error.hpp"

namespace quarc {

Topology::Topology(int num_nodes, int num_ports) : num_nodes_(num_nodes), num_ports_(num_ports) {
  QUARC_REQUIRE(num_nodes >= 2, "topology requires at least two nodes");
  QUARC_REQUIRE(num_ports >= 1, "topology requires at least one injection port");
}

const ChannelInfo& Topology::channel(ChannelId id) const {
  QUARC_REQUIRE(id >= 0 && id < num_channels(), "channel id out of range");
  return channels_[static_cast<std::size_t>(id)];
}

ChannelId Topology::add_channel(ChannelKind kind, NodeId src, NodeId dst, PortId port, int vcs,
                                std::string label, bool dedicated) {
  QUARC_ASSERT(!dedicated || kind == ChannelKind::Ejection,
               "only ejection channels can be dedicated");
  const auto id = static_cast<ChannelId>(channels_.size());
  channels_.push_back(ChannelInfo{id, kind, src, dst, port, vcs, dedicated, std::move(label)});
  return id;
}

std::vector<MulticastStream> Topology::multicast_streams(NodeId /*s*/,
                                                         const std::vector<NodeId>& /*dests*/) const {
  throw InvalidArgument(name() + " does not support hardware multicast");
}

int Topology::diameter() const {
  int best = 0;
  for (NodeId s = 0; s < num_nodes_; ++s) {
    for (NodeId d = 0; d < num_nodes_; ++d) {
      if (s == d) continue;
      best = std::max(best, unicast_route(s, d).hops());
    }
  }
  return best;
}

void Topology::check_pair(NodeId s, NodeId d) const {
  QUARC_REQUIRE(s >= 0 && s < num_nodes_, "source node out of range");
  QUARC_REQUIRE(d >= 0 && d < num_nodes_, "destination node out of range");
  QUARC_REQUIRE(s != d, "source and destination must differ");
}

namespace {

[[noreturn]] void fail(const std::string& context, const std::string& what) {
  throw ComputationError("topology validation failed (" + context + "): " + what);
}

void check_route_chain(const Topology& topo, const UnicastRoute& r, const std::string& ctx) {
  if (r.injection == kInvalidChannel) fail(ctx, "missing injection channel");
  const ChannelInfo& inj = topo.channel(r.injection);
  if (inj.kind != ChannelKind::Injection) fail(ctx, "injection id is not an injection channel");
  if (inj.src != r.source) fail(ctx, "injection channel not at source node");
  if (r.links.empty()) fail(ctx, "route has no external links");
  if (r.link_vcs.size() != r.links.size()) fail(ctx, "link_vcs size mismatch");
  NodeId at = r.source;
  for (std::size_t i = 0; i < r.links.size(); ++i) {
    const ChannelInfo& ch = topo.channel(r.links[i]);
    if (ch.kind != ChannelKind::External) fail(ctx, "route link is not an external channel");
    if (ch.src != at) fail(ctx, "route link chain is disconnected");
    if (r.link_vcs[i] >= ch.vcs) fail(ctx, "virtual channel index exceeds channel vc count");
    at = ch.dst;
  }
  if (at != r.dest) fail(ctx, "route does not terminate at destination");
  const ChannelInfo& ej = topo.channel(r.ejection);
  if (ej.kind != ChannelKind::Ejection) fail(ctx, "ejection id is not an ejection channel");
  if (ej.src != r.dest) fail(ctx, "ejection channel not at destination node");
}

void check_stream(const Topology& topo, const MulticastStream& st, const std::string& ctx) {
  const ChannelInfo& inj = topo.channel(st.injection);
  if (inj.kind != ChannelKind::Injection) fail(ctx, "stream injection id invalid");
  if (inj.src != st.source) fail(ctx, "stream injection channel not at source");
  if (st.links.empty()) fail(ctx, "stream has no links");
  if (st.link_vcs.size() != st.links.size()) fail(ctx, "stream link_vcs size mismatch");
  if (st.stops.empty()) fail(ctx, "stream has no stops");
  // Chain connectivity and per-hop node positions.
  std::vector<NodeId> node_at_hop(st.links.size() + 1);
  node_at_hop[0] = st.source;
  NodeId at = st.source;
  for (std::size_t i = 0; i < st.links.size(); ++i) {
    const ChannelInfo& ch = topo.channel(st.links[i]);
    if (ch.kind != ChannelKind::External) fail(ctx, "stream link is not external");
    if (ch.src != at) fail(ctx, "stream link chain disconnected");
    if (st.link_vcs[i] >= ch.vcs) fail(ctx, "stream vc index exceeds channel vc count");
    at = ch.dst;
    node_at_hop[i + 1] = at;
  }
  int prev_hop = 0;
  for (const MulticastStop& stop : st.stops) {
    if (stop.hop <= prev_hop) fail(ctx, "stream stops not strictly ordered by hop");
    prev_hop = stop.hop;
    if (stop.hop > st.hops()) fail(ctx, "stop beyond stream path");
    if (node_at_hop[static_cast<std::size_t>(stop.hop)] != stop.node) {
      fail(ctx, "stop node inconsistent with path position");
    }
    const ChannelInfo& ej = topo.channel(stop.ejection);
    if (ej.kind != ChannelKind::Ejection) fail(ctx, "stop ejection id invalid");
    if (ej.src != stop.node) fail(ctx, "stop ejection channel not at stop node");
  }
  if (st.stops.back().hop != st.hops()) fail(ctx, "stream continues past its last stop");
}

}  // namespace

void validate_topology(const Topology& topo) {
  const int n = topo.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      std::ostringstream ctx;
      ctx << topo.name() << " unicast " << s << "->" << d;
      UnicastRoute r = topo.unicast_route(s, d);
      if (r.source != s || r.dest != d) fail(ctx.str(), "route endpoints not set");
      if (r.port < 0 || r.port >= topo.num_ports()) fail(ctx.str(), "port out of range");
      if (topo.port_of(s, d) != r.port) {
        fail(ctx.str(), "port_of() disagrees with unicast_route().port");
      }
      check_route_chain(topo, r, ctx.str());
    }
  }
  if (!topo.supports_multicast()) return;

  // Broadcast (all other nodes) exercises every stream shape at once.
  for (NodeId s = 0; s < n; ++s) {
    std::vector<NodeId> all;
    for (NodeId d = 0; d < n; ++d) {
      if (d != s) all.push_back(d);
    }
    std::ostringstream ctx;
    ctx << topo.name() << " broadcast from " << s;
    const auto streams = topo.multicast_streams(s, all);
    std::set<NodeId> covered;
    std::set<PortId> ports_seen;
    for (const auto& st : streams) {
      if (st.source != s) fail(ctx.str(), "stream source mismatch");
      // One stream per port on multi-port routers; one-port schemes funnel
      // every stream through port 0 legitimately.
      if (!ports_seen.insert(st.port).second && topo.num_ports() > 1) {
        fail(ctx.str(), "duplicate port stream");
      }
      check_stream(topo, st, ctx.str());
      for (const auto& stop : st.stops) {
        if (!covered.insert(stop.node).second) {
          fail(ctx.str(), "destination covered by two streams (Eq. 2 violated)");
        }
      }
    }
    if (covered.size() != all.size()) fail(ctx.str(), "broadcast does not cover all nodes");
  }
}

}  // namespace quarc
