#include "quarc/topo/hypercube.hpp"

#include <bit>

#include "quarc/util/error.hpp"

namespace quarc {

HypercubeTopology::HypercubeTopology(int dimensions)
    : Topology(1 << dimensions, dimensions), dimensions_(dimensions) {
  QUARC_REQUIRE(dimensions >= 2 && dimensions <= 10, "hypercube needs 2..10 dimensions");

  const int n = num_nodes();
  link_.resize(static_cast<std::size_t>(n));
  inj_.resize(static_cast<std::size_t>(n));
  ej_.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const auto uv = static_cast<std::size_t>(v);
    for (int i = 0; i < dimensions_; ++i) {
      inj_[uv].push_back(add_channel(ChannelKind::Injection, v, v, i, 1,
                                     "inj[" + std::to_string(v) + "." + std::to_string(i) + "]"));
    }
    for (int i = 0; i < dimensions_; ++i) {
      link_[uv].push_back(add_channel(ChannelKind::External, v, neighbor(v, i), -1, 1,
                                      "D" + std::to_string(i) + "[" + std::to_string(v) + "]"));
    }
    for (int i = 0; i < dimensions_; ++i) {
      // Per-arrival-dimension sinks: fed by a single input link each.
      ej_[uv].push_back(add_channel(ChannelKind::Ejection, v, v, i, 1,
                                    "ej[" + std::to_string(v) + "." + std::to_string(i) + "]",
                                    /*dedicated=*/true));
    }
  }
}

std::string HypercubeTopology::name() const {
  return "hypercube-" + std::to_string(dimensions_) + "d";
}

NodeId HypercubeTopology::neighbor(NodeId node, int dimension) const {
  QUARC_REQUIRE(node >= 0 && node < num_nodes(), "node out of range");
  QUARC_REQUIRE(dimension >= 0 && dimension < dimensions_, "dimension out of range");
  return node ^ (1 << dimension);
}

ChannelId HypercubeTopology::link(NodeId node, int dimension) const {
  QUARC_REQUIRE(node >= 0 && node < num_nodes(), "node out of range");
  QUARC_REQUIRE(dimension >= 0 && dimension < dimensions_, "dimension out of range");
  return link_[static_cast<std::size_t>(node)][static_cast<std::size_t>(dimension)];
}

ChannelId HypercubeTopology::injection_channel(NodeId node, PortId port) const {
  QUARC_REQUIRE(node >= 0 && node < num_nodes(), "node out of range");
  QUARC_REQUIRE(port >= 0 && port < num_ports(), "port out of range");
  return inj_[static_cast<std::size_t>(node)][static_cast<std::size_t>(port)];
}

ChannelId HypercubeTopology::ejection_channel(NodeId node, int arrival_dimension) const {
  QUARC_REQUIRE(node >= 0 && node < num_nodes(), "node out of range");
  QUARC_REQUIRE(arrival_dimension >= 0 && arrival_dimension < dimensions_,
                "dimension out of range");
  return ej_[static_cast<std::size_t>(node)][static_cast<std::size_t>(arrival_dimension)];
}

PortId HypercubeTopology::port_of(NodeId s, NodeId d) const {
  check_pair(s, d);
  const unsigned diff = static_cast<unsigned>(s) ^ static_cast<unsigned>(d);
  return std::countr_zero(diff);  // diff != 0: check_pair enforces s != d
}

UnicastRoute HypercubeTopology::unicast_route(NodeId s, NodeId d) const {
  check_pair(s, d);
  UnicastRoute r;
  r.source = s;
  r.dest = d;
  const unsigned diff = static_cast<unsigned>(s) ^ static_cast<unsigned>(d);
  NodeId at = s;
  int first = -1, last = -1;
  for (int i = 0; i < dimensions_; ++i) {
    if (!(diff & (1u << i))) continue;
    if (first < 0) first = i;
    last = i;
    r.links.push_back(link(at, i));
    r.link_vcs.push_back(0);
    at = neighbor(at, i);
  }
  QUARC_ASSERT(at == d, "e-cube walk did not reach destination");
  r.port = first;
  r.injection = injection_channel(s, first);
  r.ejection = ejection_channel(d, last);
  return r;
}

}  // namespace quarc
