#include "quarc/topo/hamiltonian.hpp"

#include "quarc/util/error.hpp"

namespace quarc {

HamiltonianLabeling::HamiltonianLabeling(int width, int height) : width_(width), height_(height) {
  QUARC_REQUIRE(width >= 1 && height >= 1, "grid dimensions must be positive");
  const int n = width * height;
  label_of_.assign(static_cast<std::size_t>(n), 0);
  node_at_.assign(static_cast<std::size_t>(n), 0);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const int snake_x = (y % 2 == 0) ? x : (width - 1 - x);
      const int label = y * width + snake_x;
      const NodeId node = static_cast<NodeId>(y * width + x);
      label_of_[static_cast<std::size_t>(node)] = label;
      node_at_[static_cast<std::size_t>(label)] = node;
    }
  }
}

int HamiltonianLabeling::label_of(NodeId node) const {
  QUARC_REQUIRE(node >= 0 && node < size(), "node out of range");
  return label_of_[static_cast<std::size_t>(node)];
}

NodeId HamiltonianLabeling::node_at(int label) const {
  QUARC_REQUIRE(label >= 0 && label < size(), "label out of range");
  return node_at_[static_cast<std::size_t>(label)];
}

}  // namespace quarc
