// Boustrophedon Hamiltonian labeling of a W x H grid.
//
// Used by the mesh extension's dual-path multicast (Lin/Ni-style): nodes
// are ranked along a Hamiltonian path that snakes row by row, consecutive
// labels are grid neighbours, and the two directions of the path define the
// acyclic "high" (increasing label) and "low" (decreasing label)
// sub-networks in which path-based multicast is deadlock-free.
#pragma once

#include <vector>

#include "quarc/util/types.hpp"

namespace quarc {

class HamiltonianLabeling {
 public:
  /// Builds the labeling for a width x height grid (both >= 1).
  HamiltonianLabeling(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  int size() const { return width_ * height_; }

  /// Label (position along the snake path, 0-based) of a node id
  /// (node = y * width + x).
  int label_of(NodeId node) const;
  /// Node id holding the given label.
  NodeId node_at(int label) const;

 private:
  int width_, height_;
  std::vector<int> label_of_;    // node -> label
  std::vector<NodeId> node_at_;  // label -> node
};

}  // namespace quarc
