// 2D torus with multi-port routers — the second half of the paper's stated
// future work.
//
// Dimension-ordered (X then Y) shortest-path routing around each ring; a
// tie at distance W/2 (or H/2) resolves to the positive direction so the
// algorithm stays deterministic (a paper assumption). Ring links carry two
// virtual channels with the same dateline scheme as the Quarc rim so that
// intra-ring dependency cycles cannot deadlock. Routers are all-port (the
// injection port is the first-hop direction; four ejection channels by
// arrival direction). Hardware multicast is not provided: path-based
// multicast conforming to dimension-ordered routing is not deadlock-free
// without extra machinery, so collective traffic is emulated by unicasts
// at the traffic layer (as on Spidergon).
#pragma once

#include <array>

#include "quarc/topo/topology.hpp"

namespace quarc {

class TorusTopology final : public Topology {
 public:
  enum Dir : PortId { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

  /// Builds a width x height torus (both >= 3; smaller rings would alias
  /// the two directions between a node pair).
  TorusTopology(int width, int height);

  std::string name() const override;
  UnicastRoute unicast_route(NodeId s, NodeId d) const override;
  /// Closed-form: shortest-way direction of the first traversed dimension
  /// (X unless the columns already match), east/north on ties.
  PortId port_of(NodeId s, NodeId d) const override;

  int width() const { return width_; }
  int height() const { return height_; }

  NodeId node_id(int x, int y) const;
  int x_of(NodeId node) const { return node % width_; }
  int y_of(NodeId node) const { return node / width_; }

  ChannelId link(NodeId node, Dir dir) const;
  ChannelId injection_channel(NodeId node, PortId port) const;
  ChannelId ejection_channel(NodeId node, Dir arrival_dir) const;

 private:
  /// Appends `count` ring steps in direction `dir` starting at `at`,
  /// assigning dateline VCs relative to the entry coordinate; returns the
  /// node reached.
  NodeId append_ring_walk(NodeId at, Dir dir, int count, std::vector<ChannelId>& links,
                          std::vector<std::uint8_t>& vcs) const;

  int width_, height_;
  std::vector<std::array<ChannelId, 4>> link_;
  std::vector<std::vector<ChannelId>> inj_;
  std::vector<std::array<ChannelId, 4>> ej_;
};

}  // namespace quarc
