// The Spidergon NoC (paper Section 3.1; Coppola et al. [15]).
//
// Same ring of N nodes as Quarc but with a *single* cross link per node and
// a one-port router: all locally generated traffic shares one injection
// channel and all absorbed traffic one ejection channel. Routing is
// "across-first" shortest path: rim for the near quarters, cross link then
// rim for the far half. Rim links carry two virtual channels (dateline).
//
// Spidergon switches cannot replicate flits, so hardware multicast is not
// supported; collective operations are emulated by consecutive unicasts
// (paper: "deadlock-free broadcast/multicast can only be achieved by
// consecutive unicast transmissions"). The traffic layer performs that
// expansion; this class only reports supports_multicast() == false.
#pragma once

#include "quarc/topo/topology.hpp"

namespace quarc {

class SpidergonTopology final : public Topology {
 public:
  /// Builds a Spidergon NoC; requires num_nodes >= 8 and divisible by 4
  /// (even N suffices for the topology, but quadrant-symmetric sizes keep
  /// routing ties deterministic and match all paper configurations).
  explicit SpidergonTopology(int num_nodes);

  std::string name() const override;
  UnicastRoute unicast_route(NodeId s, NodeId d) const override;
  /// One-port router: every unicast injects at port 0.
  PortId port_of(NodeId s, NodeId d) const override;
  /// Diameter is N/4 in closed form: the rim-quarter edge takes N/4 hops
  /// and the worst cross path (k = N/4 + 1) takes 1 + (N/4 - 1).
  int diameter() const override { return num_nodes() / 4; }

  int cw_distance(NodeId s, NodeId d) const;
  /// Hop count of the across-first shortest path for clockwise distance k.
  int hops_for_distance(int k) const;

  ChannelId injection_channel(NodeId node) const { return inj_[static_cast<std::size_t>(node)]; }
  ChannelId ejection_channel(NodeId node) const { return ej_[static_cast<std::size_t>(node)]; }
  ChannelId cw_channel(NodeId node) const { return cw_[static_cast<std::size_t>(node)]; }
  ChannelId ccw_channel(NodeId node) const { return ccw_[static_cast<std::size_t>(node)]; }
  ChannelId cross_channel(NodeId node) const { return cross_[static_cast<std::size_t>(node)]; }

 private:
  NodeId wrap(std::int64_t v) const {
    const int n = num_nodes();
    return static_cast<NodeId>(((v % n) + n) % n);
  }

  std::vector<ChannelId> inj_, ej_, cw_, ccw_, cross_;
};

}  // namespace quarc
