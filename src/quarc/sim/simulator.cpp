#include "quarc/sim/simulator.hpp"

#include <cstdio>

#include "quarc/sim/active_engine.hpp"
#include "quarc/sim/reference_engine.hpp"

namespace quarc::sim {

namespace {

std::unique_ptr<detail::EngineBase> make_engine(const Topology& topo, SimConfig config) {
  if (config.engine == SimEngine::Reference) {
    return std::make_unique<ReferenceEngine>(topo, std::move(config));
  }
  return std::make_unique<ActiveEngine>(topo, std::move(config));
}

std::unique_ptr<detail::EngineBase> make_engine(const RoutePlan& plan, SimConfig config) {
  if (config.engine == SimEngine::Reference) {
    return std::make_unique<ReferenceEngine>(plan, std::move(config));
  }
  return std::make_unique<ActiveEngine>(plan, std::move(config));
}

}  // namespace

Simulator::Simulator(const Topology& topo, SimConfig config)
    : engine_(make_engine(topo, std::move(config))) {}

Simulator::Simulator(const RoutePlan& plan, SimConfig config)
    : engine_(make_engine(plan, std::move(config))) {}

Simulator::~Simulator() = default;
Simulator::Simulator(Simulator&&) noexcept = default;
Simulator& Simulator::operator=(Simulator&&) noexcept = default;

SimResult Simulator::run() { return engine_->run(); }

const SimProfile& Simulator::profile() const { return engine_->profile(); }

namespace {

std::string hexfloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

void put_summary(std::string& out, const std::string& key, const StatSummary& s) {
  out += key + ".count=" + std::to_string(s.count) + '\n';
  out += key + ".mean=" + hexfloat(s.mean) + '\n';
  out += key + ".ci95=" + hexfloat(s.ci95) + '\n';
  out += key + ".min=" + hexfloat(s.min) + '\n';
  out += key + ".max=" + hexfloat(s.max) + '\n';
}

}  // namespace

std::string debug_serialize(const SimResult& r) {
  std::string out;
  out.reserve(1024 + 32 * r.channel_utilization.size());
  put_summary(out, "unicast_latency", r.unicast_latency);
  put_summary(out, "multicast_latency", r.multicast_latency);
  out += "stream_wait_by_port.size=" + std::to_string(r.stream_wait_by_port.size()) + '\n';
  for (std::size_t p = 0; p < r.stream_wait_by_port.size(); ++p) {
    put_summary(out, "stream_wait_by_port[" + std::to_string(p) + ']', r.stream_wait_by_port[p]);
  }
  put_summary(out, "multicast_wait", r.multicast_wait);
  out += "stream_wait_samples.size=" + std::to_string(r.stream_wait_samples.size()) + '\n';
  for (std::size_t p = 0; p < r.stream_wait_samples.size(); ++p) {
    const auto& v = r.stream_wait_samples[p];
    out += "stream_wait_samples[" + std::to_string(p) + "].size=" + std::to_string(v.size()) + '\n';
    for (std::size_t i = 0; i < v.size(); ++i) {
      out += "stream_wait_samples[" + std::to_string(p) + "][" + std::to_string(i) +
             "]=" + hexfloat(v[i]) + '\n';
    }
  }
  out += "avg_active_worms=" + hexfloat(r.avg_active_worms) + '\n';
  put_summary(out, "worm_sojourn", r.worm_sojourn);
  out += "unicast_delivered_total=" + std::to_string(r.unicast_delivered_total) + '\n';
  out += "multicast_groups_delivered_total=" +
         std::to_string(r.multicast_groups_delivered_total) + '\n';
  out += "messages_generated=" + std::to_string(r.messages_generated) + '\n';
  out += "cycles_run=" + std::to_string(r.cycles_run) + '\n';
  out += std::string("completed=") + (r.completed ? "true" : "false") + '\n';
  out += std::string("stable=") + (r.stable ? "true" : "false") + '\n';
  out += "max_channel_utilization=" + hexfloat(r.max_channel_utilization) + '\n';
  out += "channel_utilization.size=" + std::to_string(r.channel_utilization.size()) + '\n';
  for (std::size_t c = 0; c < r.channel_utilization.size(); ++c) {
    out += "channel_utilization[" + std::to_string(c) + "]=" + hexfloat(r.channel_utilization[c]) +
           '\n';
  }
  out += "flits_injected=" + std::to_string(r.flits_injected) + '\n';
  out += "flits_absorbed=" + std::to_string(r.flits_absorbed) + '\n';
  return out;
}

}  // namespace quarc::sim
