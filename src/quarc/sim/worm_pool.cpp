#include "quarc/sim/worm_pool.hpp"

#include <algorithm>

#include "quarc/util/error.hpp"

namespace quarc::sim {

std::uint32_t ProtoTable::append(const Worm& w) {
  Proto p;
  p.stage_off = static_cast<std::uint32_t>(stage_pool_.size());
  p.tap_off = static_cast<std::uint32_t>(tap_pool_.size());
  p.num_stages = static_cast<std::uint16_t>(w.stages.size());
  p.num_taps = static_cast<std::uint16_t>(w.taps.size());
  p.source = w.source;
  p.port = w.port;
  stage_pool_.insert(stage_pool_.end(), w.stages.begin(), w.stages.end());
  vc_pool_.insert(vc_pool_.end(), w.stage_vc.begin(), w.stage_vc.end());
  for (const TapState& tp : w.taps) {
    tap_pool_.push_back(TapProto{tp.boundary, tp.node, tp.eject});
  }
  max_stages_ = std::max(max_stages_, static_cast<int>(w.stages.size()));
  max_taps_ = std::max(max_taps_, static_cast<int>(w.taps.size()));
  protos_.push_back(p);
  return static_cast<std::uint32_t>(protos_.size() - 1);
}

ProtoTable::ProtoTable(const RoutePlan& plan, const Workload& load) {
  const Topology& topo = plan.topology();
  const int n = topo.num_nodes();
  num_nodes_ = n;
  const int msg = load.message_length;

  // Same skip rule as the reference engine's build(): the n^2 table exists
  // only when a unicast worm can actually spawn from it.
  const bool need_unicast =
      load.unicast_rate() > 0.0 || (load.multicast_rate() > 0.0 && !topo.supports_multicast());
  if (need_unicast) {
    unicast_index_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kNoProto);
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId d = 0; d < n; ++d) {
        if (d == s) continue;
        unicast_index_[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                       static_cast<std::size_t>(d)] = append(Worm::from_route(plan.route(s, d), msg));
      }
    }
  }

  stream_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  multicast_stop_count_.assign(static_cast<std::size_t>(n), 0);
  multicast_max_hops_.assign(static_cast<std::size_t>(n), 0);
  for (NodeId s = 0; s < n; ++s) {
    stream_off_[static_cast<std::size_t>(s)] = static_cast<std::uint32_t>(protos_.size());
    if (load.multicast_rate() <= 0.0 || plan.multicast_dests(s).empty()) continue;
    multicast_stop_count_[static_cast<std::size_t>(s)] = plan.multicast_stop_count(s);
    multicast_max_hops_[static_cast<std::size_t>(s)] = plan.multicast_max_hops(s);
    if (plan.hardware_streams()) {
      for (std::size_t c = 0; c < plan.stream_count(s); ++c) {
        append(Worm::from_stream(plan.stream(s, c), msg));
      }
    }
  }
  stream_off_[static_cast<std::size_t>(n)] = static_cast<std::uint32_t>(protos_.size());
}

WormArena::WormArena(const ProtoTable& protos, int msg_len)
    : protos_(&protos),
      msg_len_(msg_len),
      dyn_stride_(static_cast<std::size_t>(protos.max_stages())),
      tap_stride_(static_cast<std::size_t>(protos.max_taps())) {}

void WormArena::add_chunk() {
  auto chunk = std::make_unique<Chunk>();
  chunk->worms.resize(kChunkWorms);
  chunk->dyn.resize(kChunkWorms * dyn_stride_);
  chunk->taps.resize(kChunkWorms * tap_stride_);
  for (std::size_t i = 0; i < kChunkWorms; ++i) {
    PooledWorm& w = chunk->worms[i];
    w.dyn = dyn_stride_ != 0 ? chunk->dyn.data() + i * dyn_stride_ : nullptr;
    w.taps = tap_stride_ != 0 ? chunk->taps.data() + i * tap_stride_ : nullptr;
  }
  // The Chunk object is heap-allocated, so these pointers survive the move
  // of its owning unique_ptr. Push in reverse so slots hand out ascending.
  for (std::size_t i = kChunkWorms; i-- > 0;) free_.push_back(&chunk->worms[i]);
  chunks_.push_back(std::move(chunk));
}

PooledWorm* WormArena::acquire(std::uint32_t proto_index) {
  if (free_.empty()) add_chunk();
  PooledWorm* w = free_.back();
  free_.pop_back();

  const ProtoTable::Proto& p = protos_->proto(proto_index);
  QUARC_ASSERT(p.num_stages >= 2, "prototype must span injection and ejection");
  w->stages = protos_->stages(p);
  w->stage_vc = protos_->stage_vcs(p);
  w->num_stages = p.num_stages;
  w->num_taps = p.num_taps;
  w->msg_len = msg_len_;
  w->source = p.source;
  w->port = p.port;
  std::fill_n(w->dyn, p.num_stages, StageDyn{});
  const ProtoTable::TapProto* tp = protos_->taps(p);
  for (std::uint16_t i = 0; i < p.num_taps; ++i) {
    TapState t;
    t.boundary = tp[i].boundary;
    t.node = tp[i].node;
    t.eject = tp[i].eject;
    w->taps[i] = t;
  }
  w->group = -1;
  w->flits_to_inject = msg_len_;
  w->head_stage = -1;
  w->allocated_through = -1;
  w->absorbed = 0;
  return w;
}

}  // namespace quarc::sim
