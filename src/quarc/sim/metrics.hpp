// Measurement collection for the simulator.
//
// Latency definitions follow paper Section 4 exactly:
//   * unicast latency: generation at the source until the last flit is
//     absorbed by the destination's sink;
//   * multicast latency: generation until the last flit is absorbed at the
//     *last* destination, across all asynchronous port streams.
// Only messages *created* inside the measurement window contribute, and a
// run is complete only when all of them have been delivered.
#pragma once

#include <vector>

#include "quarc/util/stats.hpp"
#include "quarc/util/types.hpp"

namespace quarc::sim {

class Metrics {
 public:
  Metrics(int batch_count, int num_ports, bool collect_stream_samples = false);

  void on_created(bool multicast, bool measured);
  void on_unicast_done(Cycle latency, bool measured);
  void on_multicast_done(Cycle latency, bool measured);
  /// Total waiting time (latency minus the zero-load floor) of one
  /// multicast port stream — the empirical counterpart of the paper's
  /// W_{j,c} (Eq. 8). Waits can dip one cycle below zero when round-robin
  /// link arbitration favours a stream; clamped at zero.
  void on_stream_done(PortId port, double wait, bool measured);
  /// Same quantity for the whole multicast group (the last stream): the
  /// empirical counterpart of Eq. 13.
  void on_group_wait(double wait, bool measured);

  bool all_measured_done() const {
    return unicast_done_ == unicast_created_ && multicast_done_ == multicast_created_;
  }
  std::int64_t measured_created() const { return unicast_created_ + multicast_created_; }
  std::int64_t total_created() const { return total_created_; }

  StatSummary unicast_summary() const;
  StatSummary multicast_summary() const;
  /// Mean stream wait per injection port (empirical W_{j,c} averaged over
  /// sources and messages).
  std::vector<StatSummary> stream_wait_by_port() const;
  /// Empirical multicast group wait (Eq. 13 counterpart).
  StatSummary group_wait_summary() const;
  /// Raw per-port samples (empty unless sample collection was enabled).
  const std::vector<std::vector<double>>& stream_wait_samples() const { return samples_; }

 private:
  static StatSummary summarize(const BatchMeans& batches, const RunningStats& stats);
  static StatSummary summarize(const RunningStats& stats);

  BatchMeans unicast_batches_;
  BatchMeans multicast_batches_;
  RunningStats unicast_stats_;
  RunningStats multicast_stats_;
  std::vector<RunningStats> stream_wait_;
  RunningStats group_wait_;
  bool collect_samples_;
  std::vector<std::vector<double>> samples_;
  std::int64_t unicast_created_ = 0;
  std::int64_t multicast_created_ = 0;
  std::int64_t unicast_done_ = 0;
  std::int64_t multicast_done_ = 0;
  std::int64_t total_created_ = 0;
};

}  // namespace quarc::sim
