#include "quarc/sim/source.hpp"

#include <limits>

#include "quarc/util/error.hpp"

namespace quarc::sim {

TrafficSource::TrafficSource(NodeId node, const Workload& load, int num_nodes, Rng rng)
    : node_(node),
      num_nodes_(num_nodes),
      rate_(load.message_rate),
      multicast_fraction_(load.multicast_fraction),
      rng_(rng) {
  QUARC_REQUIRE(num_nodes >= 2, "source needs at least two nodes");
  next_arrival_ = rate_ > 0.0 ? rng_.exponential(rate_)
                              : std::numeric_limits<double>::infinity();
}

Cycle TrafficSource::next_arrival_cycle() const {
  // Guard the cast: infinity (zero rate) and astronomically distant
  // arrivals both mean "never" on any realizable horizon.
  if (!(next_arrival_ < 9.0e18)) return std::numeric_limits<Cycle>::max();
  return static_cast<Cycle>(next_arrival_);
}

void TrafficSource::poll(Cycle t, std::vector<Arrival>& out) {
  while (next_arrival_ < static_cast<double>(t + 1)) {
    Arrival a;
    a.multicast = rng_.bernoulli(multicast_fraction_);
    if (!a.multicast) {
      // Uniform over the other N-1 nodes.
      const auto pick = static_cast<NodeId>(rng_.uniform_below(static_cast<std::uint64_t>(num_nodes_ - 1)));
      a.unicast_dest = pick >= node_ ? pick + 1 : pick;
    }
    out.push_back(a);
    next_arrival_ += rng_.exponential(rate_);
  }
}

}  // namespace quarc::sim
