#include "quarc/sim/reference_engine.hpp"

#include <algorithm>
#include <chrono>

#include "quarc/util/error.hpp"

namespace quarc::sim {

ReferenceEngine::ReferenceEngine(const Topology& topo, SimConfig config)
    : topo_(&topo),
      config_(std::move(config)),
      metrics_(config_.batch_count, topo.num_ports(), config_.collect_stream_samples) {
  // The throwaway plan is compiled in the body, from config_ — which this
  // instance already owns — so no constructor-argument evaluation-order
  // hazard exists. (The delegating-ctor formulation this replaces had to
  // pass config by copy: a move could have stolen workload.pattern before
  // the plan temporary compiled from it, argument evaluation order being
  // unspecified.)
  const RoutePlan plan(topo, config_.workload.multicast_rate() > 0.0
                                 ? config_.workload.pattern.get()
                                 : nullptr);
  build(plan);
}

ReferenceEngine::ReferenceEngine(const RoutePlan& plan, SimConfig config)
    : topo_(&plan.topology()),
      config_(std::move(config)),
      metrics_(config_.batch_count, topo_->num_ports(), config_.collect_stream_samples) {
  build(plan);
}

void ReferenceEngine::build(const RoutePlan& plan) {
  const Topology& topo = *topo_;
  config_.workload.validate(topo);
  QUARC_REQUIRE(config_.workload.multicast_rate() == 0.0 ||
                    plan.pattern() == config_.workload.pattern.get(),
                "route plan was compiled with a different multicast pattern");
  QUARC_REQUIRE(config_.buffer_depth >= 1, "buffer depth must be positive");
  QUARC_REQUIRE(config_.warmup_cycles >= 0 && config_.measure_cycles > 0,
                "warmup must be >= 0 and measurement window positive");

  const int n = topo.num_nodes();
  const int msg = config_.workload.message_length;

  channel_state_.resize(static_cast<std::size_t>(topo.num_channels()));
  for (const ChannelInfo& ch : topo.channels()) {
    channel_state_[static_cast<std::size_t>(ch.id)].vcs.resize(static_cast<std::size_t>(ch.vcs));
    if (ch.kind == ChannelKind::Injection) injection_channels_.push_back(ch.id);
  }

  // Independent deterministic source per node.
  Rng master(config_.seed);
  sources_.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    sources_.emplace_back(i, config_.workload, n, master.split());
  }

  // Worm prototypes from the plan's views: unicast for every pair,
  // multicast streams per source. Prototypes own their stage arrays, so
  // the plan is not referenced after construction.
  //
  // The n^2 unicast table is needed only when unicast arrivals can occur
  // (unicast_rate > 0; Rng::bernoulli(p >= 1) consumes no draw and always
  // classifies multicast, so alpha == 1 provably never picks a unicast
  // destination) or when software multicast spawns from it. A pure
  // hardware-multicast workload skips it entirely — quarc:64 alone was
  // building 4032 unused prototypes per Simulator construction.
  const bool need_unicast =
      config_.workload.unicast_rate() > 0.0 ||
      (config_.workload.multicast_rate() > 0.0 && !topo.supports_multicast());
  if (need_unicast) {
    unicast_proto_.resize(static_cast<std::size_t>(n));
    for (NodeId s = 0; s < n; ++s) {
      auto& row = unicast_proto_[static_cast<std::size_t>(s)];
      row.resize(static_cast<std::size_t>(n));
      for (NodeId d = 0; d < n; ++d) {
        if (d == s) continue;
        row[static_cast<std::size_t>(d)] = Worm::from_route(plan.route(s, d), msg);
      }
    }
  }
  if (config_.workload.multicast_rate() > 0.0) {
    multicast_protos_.resize(static_cast<std::size_t>(n));
    multicast_stop_count_.resize(static_cast<std::size_t>(n), 0);
    multicast_max_hops_.resize(static_cast<std::size_t>(n), 0);
    for (NodeId s = 0; s < n; ++s) {
      if (plan.multicast_dests(s).empty()) continue;
      multicast_stop_count_[static_cast<std::size_t>(s)] = plan.multicast_stop_count(s);
      multicast_max_hops_[static_cast<std::size_t>(s)] = plan.multicast_max_hops(s);
      if (plan.hardware_streams()) {
        for (std::size_t c = 0; c < plan.stream_count(s); ++c) {
          multicast_protos_[static_cast<std::size_t>(s)].push_back(
              Worm::from_stream(plan.stream(s, c), msg));
        }
      }
      // Software multicast spawns from the unicast prototypes in
      // destination order (create_multicast); nothing extra to build.
    }
  }
}

void ReferenceEngine::spawn(const Worm& proto, std::int64_t group, bool measured) {
  auto w = std::make_unique<Worm>(proto);  // fresh dynamic state by construction
  w->id = next_worm_id_++;
  w->group = group;
  w->created = cycle_;
  w->measured = measured;
  w->slot = worms_.size();
  Worm* p = w.get();
  worms_.push_back(std::move(w));
  ++active_worms_;
  request(p->stages[0], p->stage_vc[0], Claim{p, 0, nullptr});
}

void ReferenceEngine::create_multicast(NodeId s, bool measured) {
  const auto us = static_cast<std::size_t>(s);
  const std::int64_t gid = next_group_id_++;
  const double floor =
      static_cast<double>(config_.workload.message_length + multicast_max_hops_[us] + 1);
  groups_[gid] = Group{cycle_, multicast_stop_count_[us], measured, floor};
  if (topo_->supports_multicast()) {
    for (const Worm& proto : multicast_protos_[us]) spawn(proto, gid, measured);
  } else {
    for (NodeId d : config_.workload.pattern->destinations(s)) {
      spawn(unicast_proto_[us][static_cast<std::size_t>(d)], gid, measured);
    }
  }
}

void ReferenceEngine::arrivals_phase() {
  const Cycle window_start = config_.warmup_cycles;
  const Cycle window_end = config_.warmup_cycles + config_.measure_cycles;
  const bool in_window = cycle_ >= window_start && cycle_ < window_end;
  profile_.source_polls += topo_->num_nodes();
  for (NodeId s = 0; s < topo_->num_nodes(); ++s) {
    arrival_scratch_.clear();
    sources_[static_cast<std::size_t>(s)].poll(cycle_, arrival_scratch_);
    for (const Arrival& a : arrival_scratch_) {
      metrics_.on_created(a.multicast, in_window);
      if (a.multicast) {
        create_multicast(s, in_window);
      } else {
        spawn(unicast_proto_[static_cast<std::size_t>(s)][static_cast<std::size_t>(a.unicast_dest)],
              -1, in_window);
      }
    }
  }
}

void ReferenceEngine::request(ChannelId ch, int vc, Claim claim) {
  const ChannelInfo& info = topo_->channels()[static_cast<std::size_t>(ch)];
  if (info.dedicated) {
    // Conflict-free absorption path: no allocation, immediately usable.
    channel_state_[static_cast<std::size_t>(ch)].absorbers.push_back(claim);
    if (claim.is_tap()) {
      claim.tap->allocated = true;
    } else {
      QUARC_ASSERT(claim.stage == claim.worm->allocated_through + 1,
                   "out-of-order stage allocation");
      claim.worm->allocated_through = claim.stage;
    }
    return;
  }
  VcState& v = channel_state_[static_cast<std::size_t>(ch)].vcs[static_cast<std::size_t>(vc)];
  if (v.is_free() && v.waiters.empty()) {
    grant(ch, vc, claim);
  } else {
    v.waiters.push_back(claim);
  }
}

void ReferenceEngine::grant(ChannelId ch, int vc, Claim claim) {
  VcState& v = channel_state_[static_cast<std::size_t>(ch)].vcs[static_cast<std::size_t>(vc)];
  QUARC_ASSERT(v.is_free(), "grant on an occupied virtual channel");
  v.owner = claim;
  if (claim.is_tap()) {
    claim.tap->allocated = true;
    return;
  }
  Worm& w = *claim.worm;
  QUARC_ASSERT(claim.stage == w.allocated_through + 1, "out-of-order stage allocation");
  w.allocated_through = claim.stage;
  // Acquire the absorb-and-forward tap strictly after the forward channel
  // (ejection channels are leaf resources; see DESIGN.md deadlock note).
  if (claim.stage >= 1) {
    if (TapState* tp = w.tap_at_boundary(claim.stage - 1)) {
      request(tp->eject, 0, Claim{&w, -1, tp});
    }
  }
}

void ReferenceEngine::release(ChannelId ch, int vc) {
  VcState& v = channel_state_[static_cast<std::size_t>(ch)].vcs[static_cast<std::size_t>(vc)];
  QUARC_ASSERT(!v.is_free(), "release of a free virtual channel");
  v.owner = Claim{};
  if (!v.waiters.empty()) pending_grants_.emplace_back(ch, vc);
}

void ReferenceEngine::allocation_phase() {
  // Grants take effect at the start of the cycle following the release.
  auto pending = std::move(pending_grants_);
  pending_grants_.clear();
  for (const auto& [ch, vc] : pending) {
    VcState& v = channel_state_[static_cast<std::size_t>(ch)].vcs[static_cast<std::size_t>(vc)];
    if (v.is_free() && !v.waiters.empty()) {
      Claim claim = v.waiters.front();
      v.waiters.pop_front();
      grant(ch, vc, claim);
      if (!v.waiters.empty()) {
        // Remaining waiters get their chance when this owner releases.
      }
    }
  }
}

bool ReferenceEngine::transfer_candidate(const Claim& o) const {
  if (o.worm == nullptr || o.is_tap()) return false;
  const Worm& w = *o.worm;
  const int s = o.stage;
  if (s == 0) {
    if (w.flits_to_inject == 0) return false;
  } else if (!w.dyn[static_cast<std::size_t>(s - 1)].avail(cycle_)) {
    return false;
  }
  if (w.dyn[static_cast<std::size_t>(s)].occ_at_start(cycle_) >= config_.buffer_depth) return false;
  if (s >= 1 && !w.taps.empty()) {
    // The boundary into stage s clones into a tap when the node after link
    // s-1 is an absorbing stop.
    if (const TapState* tp = w.tap_at_boundary(s - 1)) {
      if (!tp->allocated) return false;
      if (tp->buf.occ_at_start(cycle_) >= config_.buffer_depth) return false;
    }
  }
  return true;
}

void ReferenceEngine::do_transfer(const Claim& o) {
  Worm& w = *o.worm;
  const int s = o.stage;
  if (s == 0) {
    --w.flits_to_inject;
    ++flits_injected_;
  } else {
    StageDyn& up = w.dyn[static_cast<std::size_t>(s - 1)];
    up.on_exit(cycle_);
    if (TapState* tp = w.tap_at_boundary(s - 1)) {
      tp->buf.on_enter(cycle_);
      ++tp->cloned;
      ++channel_state_[static_cast<std::size_t>(tp->eject)].flits_crossed;
    }
    if (up.exited == static_cast<std::uint32_t>(w.msg_len)) {
      release(w.stages[static_cast<std::size_t>(s - 1)], w.stage_vc[static_cast<std::size_t>(s - 1)]);
    }
  }
  w.dyn[static_cast<std::size_t>(s)].on_enter(cycle_);
  if (s > w.head_stage) {
    w.head_stage = s;
    if (s + 1 <= w.last_stage()) {
      request(w.stages[static_cast<std::size_t>(s + 1)], w.stage_vc[static_cast<std::size_t>(s + 1)],
              Claim{&w, s + 1, nullptr});
    }
  }
}

void ReferenceEngine::on_stop_complete(Worm& w) {
  auto it = groups_.find(w.group);
  QUARC_ASSERT(it != groups_.end(), "stop completion for unknown group");
  Group& g = it->second;
  if (--g.stops_left == 0) {
    const Cycle latency = cycle_ - g.created;
    metrics_.on_multicast_done(latency, g.measured);
    metrics_.on_group_wait(static_cast<double>(latency) - g.zero_load_floor, g.measured);
    groups_.erase(it);
    ++multicast_groups_delivered_total_;
  }
}

void ReferenceEngine::on_stream_absorbed(Worm& w) {
  // Empirical W_{j,c}: stream latency minus its zero-load floor
  // M + D_c + 1 (D_c = last_stage - 1 external hops).
  const double wait =
      static_cast<double>(cycle_ - w.created) - static_cast<double>(w.msg_len + w.last_stage());
  metrics_.on_stream_done(w.port, wait, w.measured);
}

void ReferenceEngine::maybe_destroy(Worm* w) {
  if (!w->fully_absorbed() || !w->taps_done()) return;
  QUARC_ASSERT(w->flits_to_inject == 0, "destroying a worm with unsent flits");
  for (const StageDyn& d : w->dyn) {
    QUARC_ASSERT(d.occ == 0, "destroying a worm with in-flight flits");
  }
  if (w->measured) worm_sojourn_.add(static_cast<double>(cycle_ - w->created));
  const std::size_t slot = w->slot;
  if (slot + 1 != worms_.size()) {
    worms_[slot] = std::move(worms_.back());
    worms_[slot]->slot = slot;
  }
  worms_.pop_back();
  --active_worms_;
}

void ReferenceEngine::movement_phase() {
  bool moved = false;
  const auto& channels = topo_->channels();
  profile_.channel_visits += static_cast<std::int64_t>(channel_state_.size());
  for (std::size_t c = 0; c < channel_state_.size(); ++c) {
    ChannelState& cs = channel_state_[c];
    const ChannelInfo& info = channels[c];

    // Dedicated ejection channels: each in-progress absorption advances
    // independently (crossing-in for final stages, then a sink pull),
    // with start-of-cycle snapshot semantics keeping the two separate.
    if (info.kind == ChannelKind::Ejection && info.dedicated) {
      auto& absorbers = cs.absorbers;
      for (std::size_t i = 0; i < absorbers.size();) {
        const Claim a = absorbers[i];
        bool removed = false;
        if (a.is_tap()) {
          TapState& tp = *a.tap;
          if (tp.buf.avail(cycle_)) {
            tp.buf.on_exit(cycle_);
            ++tp.absorbed;
            ++flits_absorbed_;
            moved = true;
            if (tp.absorbed == a.worm->msg_len) {
              absorbers[i] = absorbers.back();
              absorbers.pop_back();
              removed = true;
              on_stop_complete(*a.worm);
              maybe_destroy(a.worm);
            }
          }
        } else {
          Worm* w = a.worm;
          if (transfer_candidate(a)) {  // crossing-in from the last link
            do_transfer(a);
            ++cs.flits_crossed;
            moved = true;
          }
          StageDyn& last = w->dyn[static_cast<std::size_t>(w->last_stage())];
          if (last.avail(cycle_)) {
            last.on_exit(cycle_);
            ++w->absorbed;
            ++flits_absorbed_;
            moved = true;
            if (w->fully_absorbed()) {
              absorbers[i] = absorbers.back();
              absorbers.pop_back();
              removed = true;
              if (w->group < 0) {
                metrics_.on_unicast_done(cycle_ - w->created, w->measured);
                ++unicast_delivered_total_;
              } else {
                on_stream_absorbed(*w);
                on_stop_complete(*w);
              }
              maybe_destroy(w);
            }
          }
        }
        if (!removed) ++i;
      }
      continue;  // no VC allocation machinery on dedicated sinks
    }

    // Shared (one-port) ejection channels: sink consumption for the worm
    // or tap currently holding the channel.
    if (info.kind == ChannelKind::Ejection) {
      VcState& v = cs.vcs[0];
      if (!v.is_free()) {
        if (v.owner.is_tap()) {
          TapState& tp = *v.owner.tap;
          if (tp.buf.avail(cycle_)) {
            Worm* w = v.owner.worm;
            tp.buf.on_exit(cycle_);
            ++tp.absorbed;
            ++flits_absorbed_;
            moved = true;
            if (tp.absorbed == w->msg_len) {
              release(info.id, 0);
              on_stop_complete(*w);
              maybe_destroy(w);
            }
          }
        } else if (v.owner.stage == v.owner.worm->last_stage()) {
          Worm* w = v.owner.worm;
          StageDyn& last = w->dyn[static_cast<std::size_t>(w->last_stage())];
          if (last.avail(cycle_)) {
            last.on_exit(cycle_);
            ++w->absorbed;
            ++flits_absorbed_;
            moved = true;
            if (w->fully_absorbed()) {
              release(info.id, 0);
              if (w->group < 0) {
                metrics_.on_unicast_done(cycle_ - w->created, w->measured);
                ++unicast_delivered_total_;
              } else {
                on_stream_absorbed(*w);
                on_stop_complete(*w);
              }
              maybe_destroy(w);
            }
          }
        }
      }
    }

    // At most one flit crosses the physical channel per cycle; round-robin
    // among virtual channels with a movable flit.
    const int nv = static_cast<int>(cs.vcs.size());
    int chosen = -1;
    for (int k = 1; k <= nv; ++k) {
      const int vc = static_cast<int>((cs.rr + static_cast<std::uint32_t>(k)) %
                                      static_cast<std::uint32_t>(nv));
      if (transfer_candidate(cs.vcs[static_cast<std::size_t>(vc)].owner)) {
        chosen = vc;
        break;
      }
    }
    if (chosen >= 0) {
      do_transfer(cs.vcs[static_cast<std::size_t>(chosen)].owner);
      cs.rr = static_cast<std::uint32_t>(chosen);
      ++cs.flits_crossed;
      moved = true;
    }
  }
  if (moved) last_movement_ = cycle_;
}

void ReferenceEngine::validate_state() const {
  // Per-worm flit conservation and buffer bounds.
  for (const auto& wp : worms_) {
    const Worm& w = *wp;
    int in_buffers = 0;
    for (const StageDyn& d : w.dyn) {
      QUARC_ASSERT(d.occ <= config_.buffer_depth, "stage buffer over capacity");
      in_buffers += d.occ;
    }
    QUARC_ASSERT(w.flits_to_inject + in_buffers + w.absorbed == w.msg_len,
                 "worm flit conservation violated");
    QUARC_ASSERT(w.head_stage <= w.allocated_through, "header ahead of its allocations");
    QUARC_ASSERT(w.allocated_through <= w.head_stage + 1,
                 "worm holds a stage more than one ahead of its header");
    for (const TapState& tp : w.taps) {
      QUARC_ASSERT(tp.cloned - tp.absorbed == tp.buf.occ, "tap clone conservation violated");
      QUARC_ASSERT(tp.cloned <= w.msg_len, "tap cloned more flits than the message has");
      QUARC_ASSERT(tp.allocated || tp.cloned == 0, "tap cloned before allocation");
    }
  }
  // Allocation consistency: every VC owner names the channel it occupies,
  // and a worm's stage is owned by at most one VC.
  for (std::size_t c = 0; c < channel_state_.size(); ++c) {
    const ChannelState& cs = channel_state_[c];
    for (const VcState& v : cs.vcs) {
      if (v.is_free()) continue;
      if (v.owner.is_tap()) {
        QUARC_ASSERT(v.owner.tap->eject == static_cast<ChannelId>(c),
                     "tap owns a channel that is not its ejection channel");
      } else {
        const Worm& w = *v.owner.worm;
        QUARC_ASSERT(v.owner.stage >= 0 && v.owner.stage <= w.last_stage(),
                     "owner stage out of range");
        QUARC_ASSERT(w.stages[static_cast<std::size_t>(v.owner.stage)] ==
                         static_cast<ChannelId>(c),
                     "VC owner does not match the worm's route");
      }
    }
    for (const Claim& a : cs.absorbers) {
      QUARC_ASSERT(a.worm != nullptr, "null absorber claim");
      if (a.is_tap()) {
        QUARC_ASSERT(a.tap->eject == static_cast<ChannelId>(c), "absorber channel mismatch");
      } else {
        QUARC_ASSERT(a.worm->stages[static_cast<std::size_t>(a.stage)] ==
                         static_cast<ChannelId>(c),
                     "absorber channel mismatch");
      }
    }
  }
}

bool ReferenceEngine::injection_queues_exceeded() const {
  for (ChannelId ch : injection_channels_) {
    if (channel_state_[static_cast<std::size_t>(ch)].vcs[0].waiters.size() >
        config_.max_queue_length) {
      return true;
    }
  }
  return false;
}

SimResult ReferenceEngine::run() {
  const Cycle window_end = config_.warmup_cycles + config_.measure_cycles;
  const Cycle hard_cap = window_end + config_.drain_cap_cycles;
  bool completed = false;

  using Clock = std::chrono::steady_clock;
  const bool prof = config_.profile_phases;
  auto timed = [prof](auto&& fn, double& acc) {
    if (!prof) {
      fn();
      return;
    }
    const auto t0 = Clock::now();
    fn();
    acc += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
  };

  for (cycle_ = 0;; ++cycle_) {
    timed([this] { arrivals_phase(); }, profile_.arrivals_ns);
    timed([this] { allocation_phase(); }, profile_.allocation_ns);
    timed([this] { movement_phase(); }, profile_.movement_ns);
    ++profile_.cycles_executed;
    active_worm_integral_ += static_cast<double>(active_worms_);

    if (cycle_ + 1 >= window_end && metrics_.all_measured_done()) {
      completed = true;
      break;
    }
    if (cycle_ >= hard_cap) break;
    if (config_.check_invariants && cycle_ % config_.invariant_check_interval == 0) {
      validate_state();
    }
    if ((cycle_ & 0xFF) == 0 && injection_queues_exceeded()) {
      stable_ = false;
      break;
    }
    if (active_worms_ > 0 && cycle_ - last_movement_ > config_.stall_watchdog) {
      QUARC_ASSERT(false, "simulation stalled: deadlock canary tripped");
    }
  }

  SimResult result;
  result.unicast_latency = metrics_.unicast_summary();
  result.multicast_latency = metrics_.multicast_summary();
  result.stream_wait_by_port = metrics_.stream_wait_by_port();
  result.multicast_wait = metrics_.group_wait_summary();
  result.stream_wait_samples = metrics_.stream_wait_samples();
  result.avg_active_worms = active_worm_integral_ / static_cast<double>(cycle_ + 1);
  {
    StatSummary sj;
    sj.count = worm_sojourn_.count();
    sj.mean = worm_sojourn_.mean();
    sj.min = worm_sojourn_.empty() ? 0.0 : worm_sojourn_.min();
    sj.max = worm_sojourn_.empty() ? 0.0 : worm_sojourn_.max();
    result.worm_sojourn = sj;
  }
  result.unicast_delivered_total = unicast_delivered_total_;
  result.multicast_groups_delivered_total = multicast_groups_delivered_total_;
  result.messages_generated = metrics_.total_created();
  result.cycles_run = cycle_ + 1;
  result.completed = completed && stable_;
  result.stable = stable_;
  result.flits_injected = flits_injected_;
  result.flits_absorbed = flits_absorbed_;
  result.channel_utilization.resize(channel_state_.size(), 0.0);
  const auto cycles = static_cast<double>(result.cycles_run);
  for (std::size_t c = 0; c < channel_state_.size(); ++c) {
    result.channel_utilization[c] = static_cast<double>(channel_state_[c].flits_crossed) / cycles;
    result.max_channel_utilization =
        std::max(result.max_channel_utilization, result.channel_utilization[c]);
  }
  return result;
}

}  // namespace quarc::sim
