// The event/activity-driven simulator engine (SimEngine::Active, default).
//
// Same algorithm as the reference engine — the movement/allocation bodies
// are line-for-line the reference code — but executed over activity
// structures that skip provably-inert work:
//
//   * Active channel set: the movement phase drains a sorted worklist of
//     channels that own claims or host absorptions instead of scanning
//     every channel. Channels activated *during* a movement phase (a grant
//     or absorber added mid-sweep) are buffered and merged at the next
//     phase — by the snapshot semantics their first visit would be a
//     no-op this cycle (the entering flit has last_enter == now), so
//     deferring them changes no byte. A visited channel with no owners
//     and no absorbers leaves the set lazily.
//   * Injection watermark: request/allocation maintain a count of
//     injection queues over max_queue_length, so the stability check is
//     O(1) instead of a scan (values identical at every checkpoint).
//   * Arrival gating + idle fast-forward: sources expose their next
//     arrival cycle; the arrivals phase is skipped entirely while no
//     source can fire (a skipped poll consumes no RNG), and when no worm
//     is in flight the cycle counter jumps straight to the next arrival
//     (or the measurement-window/drain boundary), with the active-worm
//     integral advanced by the skipped span (adding exactly the zeros the
//     reference would have added).
//   * Worm arena + dense groups: PooledWorm slots from worm_pool.hpp
//     replace per-message heap allocation; multicast groups live in a
//     slot-map vector with a freelist instead of an unordered_map.
//
// Byte-identity with the reference engine — every SimResult field,
// including batch-means CIs and per-channel utilization — is pinned by
// tests/test_sim_engine.cpp across all registered topologies, traffic
// classes and stability regimes, and audited again by the BENCH_sim lane.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "quarc/sim/metrics.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/sim/source.hpp"
#include "quarc/sim/worm_pool.hpp"

namespace quarc::sim {

/// Claim/VC/channel state over PooledWorm — the active-engine mirror of
/// network_state.hpp's Claim/VcState/ChannelState (deliberately duplicated
/// rather than templated; the identity suite pins the two engines to each
/// other, which is a stronger guarantee than sharing the code).
struct AClaim {
  PooledWorm* worm = nullptr;
  int stage = -1;
  TapState* tap = nullptr;  ///< non-null for tap claims

  bool is_tap() const { return tap != nullptr; }
};

struct AVcState {
  AClaim owner;
  std::deque<AClaim> waiters;

  bool is_free() const { return owner.worm == nullptr; }
};

struct AChannelState {
  std::vector<AVcState> vcs;
  std::vector<AClaim> absorbers;  ///< dedicated ejection channels only
  std::uint32_t rr = 0;
  std::int64_t flits_crossed = 0;
};

class ActiveEngine final : public detail::EngineBase {
 public:
  ActiveEngine(const Topology& topo, SimConfig config);
  ActiveEngine(const RoutePlan& plan, SimConfig config);

  SimResult run() override;
  const SimProfile& profile() const override { return profile_; }

 private:
  struct Group {
    Cycle created = 0;
    int stops_left = 0;
    bool measured = false;
    double zero_load_floor = 0.0;
  };

  void build(const RoutePlan& plan);

  void arrivals_phase();
  void allocation_phase();
  void movement_phase();

  void spawn(std::uint32_t proto_index, std::int32_t group_slot, bool measured);
  void create_multicast(NodeId s, bool measured);
  std::int32_t alloc_group(const Group& g);

  void request(ChannelId ch, int vc, AClaim claim);
  void grant(ChannelId ch, int vc, AClaim claim);
  void release(ChannelId ch, int vc);

  bool transfer_candidate(const AClaim& o) const;
  void do_transfer(const AClaim& o);
  void on_stop_complete(PooledWorm& w);
  void on_stream_absorbed(PooledWorm& w);
  void maybe_destroy(PooledWorm* w);

  /// Adds ch to the movement worklist (effective from the next merge) if
  /// it is not already tracked.
  void mark_active(ChannelId ch);
  /// Aborts (QUARC_ASSERT) if any engine invariant is violated.
  void validate_state() const;

  const Topology* topo_;
  SimConfig config_;

  std::vector<AChannelState> channel_state_;
  std::vector<std::pair<ChannelId, int>> pending_grants_;
  std::vector<std::pair<ChannelId, int>> pending_scratch_;
  std::vector<TrafficSource> sources_;
  std::vector<Arrival> arrival_scratch_;
  Metrics metrics_;

  std::unique_ptr<ProtoTable> protos_;
  std::unique_ptr<WormArena> arena_;
  std::vector<PooledWorm*> live_;  ///< swap-removed; PooledWorm::live_slot

  std::vector<Group> groups_;            ///< dense slot map
  std::vector<std::int32_t> group_free_;

  // Movement worklist: `active_` is the sorted membership drained each
  // phase; activations land in `newly_active_` and merge at the next
  // phase start. `in_active_[ch]` == 1 iff ch is in exactly one of them.
  std::vector<ChannelId> active_;
  std::vector<ChannelId> newly_active_;
  std::vector<ChannelId> merge_scratch_;
  std::vector<std::uint8_t> in_active_;

  /// Injection queues currently over max_queue_length (the incremental
  /// form of the reference scan).
  std::int64_t injection_over_ = 0;
  /// Earliest cycle any source can fire (Cycle max when none can).
  Cycle next_arrival_cycle_ = 0;

  Cycle cycle_ = 0;
  Cycle last_movement_ = 0;
  double active_worm_integral_ = 0.0;
  RunningStats worm_sojourn_;
  std::int64_t unicast_delivered_total_ = 0;
  std::int64_t multicast_groups_delivered_total_ = 0;
  std::int64_t next_worm_id_ = 0;
  std::int64_t flits_injected_ = 0;
  std::int64_t flits_absorbed_ = 0;
  std::size_t active_worms_ = 0;
  bool stable_ = true;
  SimProfile profile_;
};

}  // namespace quarc::sim
