// Cycle-accurate flit-level wormhole simulator.
//
// Replaces the paper's OMNeT++ validation simulator (Section 4) with the
// same semantics: Poisson per-node sources, messages queued per injection
// port in creation order, non-preemptive channels granted FIFO to blocked
// messages, flits forwarded one hop per cycle, absorb-and-forward multicast
// with per-port asynchronous streams, and latency measured from message
// creation to absorption of the last flit (at the last destination for a
// multicast). See network_state.hpp for the movement semantics and
// DESIGN.md for the zero-load timing anchor (latency == M + D + 1).
//
// Determinism: a run is a pure function of (topology, config). Sweeps may
// run many Simulator instances concurrently (one per parameter point).
//
// Simulator is a facade over two interchangeable engines (engine.hpp):
// the event/activity-driven ActiveEngine (default) and the historical
// ReferenceEngine oracle. Both produce bit-identical SimResults; the
// engine knob tunes throughput without moving a single result byte.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quarc/sim/engine.hpp"
#include "quarc/traffic/workload.hpp"
#include "quarc/util/stats.hpp"
#include "quarc/util/types.hpp"

namespace quarc {
class RoutePlan;
class Topology;
}  // namespace quarc

namespace quarc::sim {

struct SimConfig {
  Workload workload;
  std::uint64_t seed = 1;
  /// Cycles before the measurement window opens (network warm-up).
  Cycle warmup_cycles = 5000;
  /// Length of the measurement window; messages *created* inside it are the
  /// measured population.
  Cycle measure_cycles = 30000;
  /// Extra cycles allowed after the window for in-flight measured messages
  /// to drain; exceeding it marks the run incomplete (saturation symptom).
  Cycle drain_cap_cycles = 2000000;
  /// Flit buffer depth per virtual channel (>= 2 sustains 1 flit/cycle
  /// under the conservative two-phase update; see DESIGN.md).
  int buffer_depth = 2;
  /// Batch count for the batch-means confidence intervals.
  int batch_count = 16;
  /// An injection queue longer than this marks the run unstable and aborts
  /// it (the offered load exceeds capacity).
  std::size_t max_queue_length = 20000;
  /// Cycles without any flit movement while worms are active before the
  /// simulator declares (and aborts on) deadlock. The routing schemes
  /// implemented here are deadlock-free, so this is a canary, not policy.
  Cycle stall_watchdog = 1000;
  /// Record every measured multicast stream's waiting time (enables
  /// distribution-level analysis of the paper's Eq. 8 exponential
  /// assumption; costs memory proportional to the measured population).
  bool collect_stream_samples = false;
  /// Validate global engine invariants (per-worm flit conservation, buffer
  /// bounds, allocation consistency) every `invariant_check_interval`
  /// cycles; aborts on violation. Off by default (costs a full state scan);
  /// the stress test-suite runs with it on.
  bool check_invariants = false;
  Cycle invariant_check_interval = 64;
  /// Which engine executes the run. Byte-transparent — both engines emit
  /// bit-identical SimResults (tests/test_sim_engine.cpp) — so this knob,
  /// like the solver's assembly knob, is NOT fingerprinted.
  SimEngine engine = default_sim_engine();
  /// Collect per-phase wall-clock in SimProfile (diagnostic only; activity
  /// counters are always maintained, timing costs two clock reads per
  /// phase per cycle and is off by default).
  bool profile_phases = false;
};

struct SimResult {
  StatSummary unicast_latency;
  StatSummary multicast_latency;
  /// Empirical mean total waiting time of multicast port streams, per
  /// injection port (the W_{j,c} of paper Eq. 8, averaged over sources).
  std::vector<StatSummary> stream_wait_by_port;
  /// Empirical multicast group waiting time (the W_j of Eq. 13): group
  /// latency minus the zero-load floor M + max_c D_c + 1.
  StatSummary multicast_wait;
  /// Raw per-port stream wait samples (only when
  /// SimConfig::collect_stream_samples; index = port).
  std::vector<std::vector<double>> stream_wait_samples;
  /// Time-average number of worms in flight (injection queue + network).
  double avg_active_worms = 0.0;
  /// Worm sojourn time: creation until the worm and all its clone taps are
  /// fully absorbed. With avg_active_worms this closes Little's law
  /// (L = lambda_worm * W_sojourn), a global conservation check.
  StatSummary worm_sojourn;
  /// All deliveries including unmeasured ones (throughput accounting).
  std::int64_t unicast_delivered_total = 0;
  std::int64_t multicast_groups_delivered_total = 0;
  std::int64_t messages_generated = 0;
  Cycle cycles_run = 0;
  /// All messages created in the measurement window were delivered.
  bool completed = false;
  /// No queue-length blow-up was detected (offered load below saturation).
  bool stable = true;
  double max_channel_utilization = 0.0;
  /// Flits crossed per cycle per channel (index = ChannelId).
  std::vector<double> channel_utilization;
  std::int64_t flits_injected = 0;
  std::int64_t flits_absorbed = 0;  ///< includes multicast clone absorptions
};

/// Engine activity counters (and, when SimConfig::profile_phases, per-phase
/// wall-clock). Diagnostic only: never part of SimResult or its
/// serialization, so profiling can never perturb the identity contract.
struct SimProfile {
  double arrivals_ns = 0.0;    ///< wall-clock in the arrivals phase
  double allocation_ns = 0.0;  ///< wall-clock in the allocation phase
  double movement_ns = 0.0;    ///< wall-clock in the movement phase
  Cycle cycles_executed = 0;   ///< cycles the engine actually stepped
  Cycle cycles_skipped = 0;    ///< idle cycles fast-forwarded (active engine)
  std::int64_t channel_visits = 0;  ///< movement-phase channel visits
  std::int64_t source_polls = 0;    ///< arrivals-phase source polls
};

namespace detail {
/// Interface the facade dispatches through; one concrete engine per
/// SimEngine value (reference_engine.hpp, active_engine.hpp).
class EngineBase {
 public:
  virtual ~EngineBase() = default;
  virtual SimResult run() = 0;
  virtual const SimProfile& profile() const = 0;
};
}  // namespace detail

class Simulator {
 public:
  /// The workload is validated against the topology; worm prototypes are
  /// built from a RoutePlan compiled privately for this run (the
  /// destination sets are fixed for a whole run, paper Section 4).
  Simulator(const Topology& topo, SimConfig config);
  /// Shares an externally compiled plan (the sweep hot path: one plan,
  /// many points/threads). The plan is only read during construction —
  /// prototypes own their storage — so it need not outlive the simulator,
  /// but its topology must.
  Simulator(const RoutePlan& plan, SimConfig config);
  ~Simulator();
  Simulator(Simulator&&) noexcept;
  Simulator& operator=(Simulator&&) noexcept;

  /// Runs to completion and returns the measurements. One-shot: construct a
  /// fresh Simulator per run.
  SimResult run();

  /// Activity counters of the last run() (wall-clock fields populated only
  /// when SimConfig::profile_phases).
  const SimProfile& profile() const;

 private:
  std::unique_ptr<detail::EngineBase> engine_;
};

/// Lossless text serialization of every SimResult field — doubles printed
/// as hexfloats, so two results serialize identically iff they are
/// bit-identical. The medium of the engine byte-identity contract (tests
/// and the BENCH_sim identity audit compare these strings).
std::string debug_serialize(const SimResult& result);

}  // namespace quarc::sim
