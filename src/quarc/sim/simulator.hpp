// Cycle-accurate flit-level wormhole simulator.
//
// Replaces the paper's OMNeT++ validation simulator (Section 4) with the
// same semantics: Poisson per-node sources, messages queued per injection
// port in creation order, non-preemptive channels granted FIFO to blocked
// messages, flits forwarded one hop per cycle, absorb-and-forward multicast
// with per-port asynchronous streams, and latency measured from message
// creation to absorption of the last flit (at the last destination for a
// multicast). See network_state.hpp for the movement semantics and
// DESIGN.md for the zero-load timing anchor (latency == M + D + 1).
//
// Determinism: a run is a pure function of (topology, config). Sweeps may
// run many Simulator instances concurrently (one per parameter point).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "quarc/sim/metrics.hpp"
#include "quarc/sim/network_state.hpp"
#include "quarc/sim/source.hpp"
#include "quarc/traffic/workload.hpp"
#include "quarc/util/stats.hpp"

namespace quarc::sim {

struct SimConfig {
  Workload workload;
  std::uint64_t seed = 1;
  /// Cycles before the measurement window opens (network warm-up).
  Cycle warmup_cycles = 5000;
  /// Length of the measurement window; messages *created* inside it are the
  /// measured population.
  Cycle measure_cycles = 30000;
  /// Extra cycles allowed after the window for in-flight measured messages
  /// to drain; exceeding it marks the run incomplete (saturation symptom).
  Cycle drain_cap_cycles = 2000000;
  /// Flit buffer depth per virtual channel (>= 2 sustains 1 flit/cycle
  /// under the conservative two-phase update; see DESIGN.md).
  int buffer_depth = 2;
  /// Batch count for the batch-means confidence intervals.
  int batch_count = 16;
  /// An injection queue longer than this marks the run unstable and aborts
  /// it (the offered load exceeds capacity).
  std::size_t max_queue_length = 20000;
  /// Cycles without any flit movement while worms are active before the
  /// simulator declares (and aborts on) deadlock. The routing schemes
  /// implemented here are deadlock-free, so this is a canary, not policy.
  Cycle stall_watchdog = 1000;
  /// Record every measured multicast stream's waiting time (enables
  /// distribution-level analysis of the paper's Eq. 8 exponential
  /// assumption; costs memory proportional to the measured population).
  bool collect_stream_samples = false;
  /// Validate global engine invariants (per-worm flit conservation, buffer
  /// bounds, allocation consistency) every `invariant_check_interval`
  /// cycles; aborts on violation. Off by default (costs a full state scan);
  /// the stress test-suite runs with it on.
  bool check_invariants = false;
  Cycle invariant_check_interval = 64;
};

struct SimResult {
  StatSummary unicast_latency;
  StatSummary multicast_latency;
  /// Empirical mean total waiting time of multicast port streams, per
  /// injection port (the W_{j,c} of paper Eq. 8, averaged over sources).
  std::vector<StatSummary> stream_wait_by_port;
  /// Empirical multicast group waiting time (the W_j of Eq. 13): group
  /// latency minus the zero-load floor M + max_c D_c + 1.
  StatSummary multicast_wait;
  /// Raw per-port stream wait samples (only when
  /// SimConfig::collect_stream_samples; index = port).
  std::vector<std::vector<double>> stream_wait_samples;
  /// Time-average number of worms in flight (injection queue + network).
  double avg_active_worms = 0.0;
  /// Worm sojourn time: creation until the worm and all its clone taps are
  /// fully absorbed. With avg_active_worms this closes Little's law
  /// (L = lambda_worm * W_sojourn), a global conservation check.
  StatSummary worm_sojourn;
  /// All deliveries including unmeasured ones (throughput accounting).
  std::int64_t unicast_delivered_total = 0;
  std::int64_t multicast_groups_delivered_total = 0;
  std::int64_t messages_generated = 0;
  Cycle cycles_run = 0;
  /// All messages created in the measurement window were delivered.
  bool completed = false;
  /// No queue-length blow-up was detected (offered load below saturation).
  bool stable = true;
  double max_channel_utilization = 0.0;
  /// Flits crossed per cycle per channel (index = ChannelId).
  std::vector<double> channel_utilization;
  std::int64_t flits_injected = 0;
  std::int64_t flits_absorbed = 0;  ///< includes multicast clone absorptions
};

class Simulator {
 public:
  /// The workload is validated against the topology; worm prototypes are
  /// built from a RoutePlan compiled privately for this run (the
  /// destination sets are fixed for a whole run, paper Section 4).
  Simulator(const Topology& topo, SimConfig config);
  /// Shares an externally compiled plan (the sweep hot path: one plan,
  /// many points/threads). The plan is only read during construction —
  /// prototypes own their storage — so it need not outlive the simulator,
  /// but its topology must.
  Simulator(const RoutePlan& plan, SimConfig config);

  /// Runs to completion and returns the measurements. One-shot: construct a
  /// fresh Simulator per run.
  SimResult run();

 private:
  struct Group {
    Cycle created = 0;
    int stops_left = 0;
    bool measured = false;
    /// Zero-load group latency M + max_c D_c + 1 (for wait extraction).
    double zero_load_floor = 0.0;
  };

  /// Shared construction tail: validates config_ (which must already be
  /// owned by this instance) and builds channel state, sources and worm
  /// prototypes from the plan's views. The plan is only read here, never
  /// retained.
  void build(const RoutePlan& plan);

  void arrivals_phase();
  void allocation_phase();
  void movement_phase();

  void spawn(const Worm& proto, std::int64_t group, bool measured);
  void create_multicast(NodeId s, bool measured);

  void request(ChannelId ch, int vc, Claim claim);
  void grant(ChannelId ch, int vc, Claim claim);
  void release(ChannelId ch, int vc);

  bool transfer_candidate(const Claim& o) const;
  void do_transfer(const Claim& o);
  void on_stop_complete(Worm& w);
  void on_stream_absorbed(Worm& w);
  void maybe_destroy(Worm* w);
  bool injection_queues_exceeded() const;
  /// Aborts (QUARC_ASSERT) if any engine invariant is violated.
  void validate_state() const;

  const Topology* topo_;
  SimConfig config_;

  std::vector<ChannelState> channel_state_;
  std::vector<std::pair<ChannelId, int>> pending_grants_;
  std::vector<std::unique_ptr<Worm>> worms_;
  std::unordered_map<std::int64_t, Group> groups_;
  std::vector<TrafficSource> sources_;
  std::vector<Arrival> arrival_scratch_;
  Metrics metrics_;

  // Precomputed prototypes (zeroed dynamic state, full flit budget).
  std::vector<std::vector<Worm>> unicast_proto_;        // [s][dest index]
  std::vector<std::vector<Worm>> multicast_protos_;     // [s][stream]
  std::vector<int> multicast_stop_count_;               // [s]
  std::vector<int> multicast_max_hops_;                 // [s]
  std::vector<ChannelId> injection_channels_;

  Cycle cycle_ = 0;
  Cycle last_movement_ = 0;
  double active_worm_integral_ = 0.0;
  RunningStats worm_sojourn_;
  std::int64_t unicast_delivered_total_ = 0;
  std::int64_t multicast_groups_delivered_total_ = 0;
  std::int64_t next_worm_id_ = 0;
  std::int64_t next_group_id_ = 0;
  std::int64_t flits_injected_ = 0;
  std::int64_t flits_absorbed_ = 0;
  std::size_t active_worms_ = 0;
  bool stable_ = true;
};

}  // namespace quarc::sim
