// The historical every-channel-every-cycle simulator loop, preserved as
// the byte-identity oracle for the active engine (SimEngine::Reference).
//
// This is the seed implementation moved verbatim out of simulator.cpp:
// every cycle polls every source, the movement phase visits every channel
// in ascending id, worms are individually heap-allocated, and multicast
// groups live in an unordered_map. Its value is exactly that simplicity —
// the active engine's worklists, arena and idle-skip must reproduce this
// loop's SimResult bit-for-bit (tests/test_sim_engine.cpp), the same
// oracle pattern as SolverIteration::GaussSeidel and
// LatencyAssembly::DirectWalk.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "quarc/sim/metrics.hpp"
#include "quarc/sim/network_state.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/sim/source.hpp"

namespace quarc::sim {

class ReferenceEngine final : public detail::EngineBase {
 public:
  ReferenceEngine(const Topology& topo, SimConfig config);
  ReferenceEngine(const RoutePlan& plan, SimConfig config);

  SimResult run() override;
  const SimProfile& profile() const override { return profile_; }

 private:
  struct Group {
    Cycle created = 0;
    int stops_left = 0;
    bool measured = false;
    /// Zero-load group latency M + max_c D_c + 1 (for wait extraction).
    double zero_load_floor = 0.0;
  };

  /// Shared construction tail: validates config_ (which must already be
  /// owned by this instance) and builds channel state, sources and worm
  /// prototypes from the plan's views. The plan is only read here, never
  /// retained.
  void build(const RoutePlan& plan);

  void arrivals_phase();
  void allocation_phase();
  void movement_phase();

  void spawn(const Worm& proto, std::int64_t group, bool measured);
  void create_multicast(NodeId s, bool measured);

  void request(ChannelId ch, int vc, Claim claim);
  void grant(ChannelId ch, int vc, Claim claim);
  void release(ChannelId ch, int vc);

  bool transfer_candidate(const Claim& o) const;
  void do_transfer(const Claim& o);
  void on_stop_complete(Worm& w);
  void on_stream_absorbed(Worm& w);
  void maybe_destroy(Worm* w);
  bool injection_queues_exceeded() const;
  /// Aborts (QUARC_ASSERT) if any engine invariant is violated.
  void validate_state() const;

  const Topology* topo_;
  SimConfig config_;

  std::vector<ChannelState> channel_state_;
  std::vector<std::pair<ChannelId, int>> pending_grants_;
  std::vector<std::unique_ptr<Worm>> worms_;
  std::unordered_map<std::int64_t, Group> groups_;
  std::vector<TrafficSource> sources_;
  std::vector<Arrival> arrival_scratch_;
  Metrics metrics_;

  // Precomputed prototypes (zeroed dynamic state, full flit budget).
  std::vector<std::vector<Worm>> unicast_proto_;        // [s][dest index]
  std::vector<std::vector<Worm>> multicast_protos_;     // [s][stream]
  std::vector<int> multicast_stop_count_;               // [s]
  std::vector<int> multicast_max_hops_;                 // [s]
  std::vector<ChannelId> injection_channels_;

  Cycle cycle_ = 0;
  Cycle last_movement_ = 0;
  double active_worm_integral_ = 0.0;
  RunningStats worm_sojourn_;
  std::int64_t unicast_delivered_total_ = 0;
  std::int64_t multicast_groups_delivered_total_ = 0;
  std::int64_t next_worm_id_ = 0;
  std::int64_t next_group_id_ = 0;
  std::int64_t flits_injected_ = 0;
  std::int64_t flits_absorbed_ = 0;
  std::size_t active_worms_ = 0;
  bool stable_ = true;
  SimProfile profile_;
};

}  // namespace quarc::sim
