// Dynamic state of the flit-level wormhole simulation.
//
// A *worm* is one wormhole message: a train of `msg_len` flits flowing
// through a fixed sequence of stages (injection channel, external links,
// ejection channel). Stage k's buffer sits at the downstream end of channel
// stages[k]; moving a flit across boundary k-1 -> k consumes one cycle of
// channel stages[k]'s bandwidth. Per-stage enter/exit cycle stamps give
// exact start-of-cycle-snapshot semantics (a flit that entered a buffer
// this cycle cannot leave it this cycle; space is judged on start-of-cycle
// occupancy), which makes the movement phase independent of processing
// order and therefore deterministic.
//
// Multicast worms carry *taps*: at an absorb-and-forward stop after link h,
// every flit crossing boundary h -> h+1 is simultaneously cloned into the
// node's ejection channel (paper Section 3.3.2: the ingress multiplexer
// clones the flits). The tap must hold that ejection channel before the
// header may cross — acquired strictly *after* the forward channel, making
// ejection channels leaf resources and the acquisition order acyclic.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "quarc/route/route_plan.hpp"
#include "quarc/topo/topology.hpp"
#include "quarc/util/types.hpp"

namespace quarc::sim {

/// Per-stage dynamic buffer state with snapshot stamps.
struct StageDyn {
  std::uint16_t occ = 0;      ///< flits currently in this stage's buffer
  std::uint32_t exited = 0;   ///< flits that have left this stage (ever)
  Cycle last_enter = -1;      ///< cycle of the most recent entry
  Cycle last_exit = -1;       ///< cycle of the most recent exit

  /// A flit was present at the start of cycle t.
  bool avail(Cycle t) const { return occ > static_cast<std::uint16_t>(last_enter == t ? 1 : 0); }
  /// Start-of-cycle occupancy (entries this cycle excluded, exits restored).
  int occ_at_start(Cycle t) const {
    return static_cast<int>(occ) - (last_enter == t ? 1 : 0) + (last_exit == t ? 1 : 0);
  }
  void on_enter(Cycle t) {
    ++occ;
    last_enter = t;
  }
  void on_exit(Cycle t) {
    --occ;
    ++exited;
    last_exit = t;
  }
};

/// Absorb-and-forward clone point of a multicast worm.
struct TapState {
  int boundary = 0;           ///< flits crossing stage `boundary` -> boundary+1 are cloned
  NodeId node = kInvalidNode; ///< absorbing node
  ChannelId eject = kInvalidChannel;
  bool allocated = false;     ///< tap holds its ejection channel
  StageDyn buf;               ///< clone buffer inside the ejection channel
  int cloned = 0;             ///< flits cloned so far
  int absorbed = 0;           ///< clone flits consumed by the sink
};

struct Worm {
  std::int64_t id = 0;
  /// Index in the simulator's active-worm pool (maintained on swap-remove).
  std::size_t slot = 0;
  /// Multicast group id (also used for software-multicast batches); -1 for
  /// a plain unicast.
  std::int64_t group = -1;
  Cycle created = 0;
  bool measured = false;
  NodeId source = kInvalidNode;
  /// Injection port this worm uses (for per-port stream statistics).
  PortId port = 0;
  int msg_len = 0;

  std::vector<ChannelId> stages;      ///< injection, links..., ejection
  std::vector<std::uint8_t> stage_vc; ///< virtual channel per stage
  std::vector<StageDyn> dyn;          ///< parallel to stages
  std::vector<TapState> taps;         ///< ordered by boundary; sized at build

  int flits_to_inject = 0;  ///< flits still at the source PE
  int head_stage = -1;      ///< furthest stage the header has entered
  int allocated_through = -1;
  int absorbed = 0;         ///< flits consumed by the sink at the last stage

  int last_stage() const { return static_cast<int>(stages.size()) - 1; }
  bool fully_absorbed() const { return absorbed == msg_len; }
  bool taps_done() const {
    for (const TapState& tp : taps) {
      if (tp.absorbed != msg_len) return false;
    }
    return true;
  }
  /// Tap cloning at the crossing out of stage `boundary`, or nullptr.
  TapState* tap_at_boundary(int boundary) {
    for (TapState& tp : taps) {
      if (tp.boundary == boundary) return &tp;
    }
    return nullptr;
  }
  const TapState* tap_at_boundary(int boundary) const {
    for (const TapState& tp : taps) {
      if (tp.boundary == boundary) return &tp;
    }
    return nullptr;
  }

  /// Builds the stage arrays from a compiled route view (the simulator's
  /// prototype path — no route derivation involved).
  static Worm from_route(const RouteView& r, int msg_len);
  /// Builds the stage arrays (and taps) from a compiled stream view.
  static Worm from_stream(const StreamView& st, int msg_len);
  /// Convenience overloads for directly derived routes/streams (tests,
  /// one-off diagnostics); delegate to the view builders.
  static Worm from_route(const UnicastRoute& r, int msg_len);
  static Worm from_stream(const MulticastStream& st, int msg_len);
};

/// A pending claim on a (channel, vc): either a worm header waiting to
/// enter stage `stage`, or a multicast tap waiting for its ejection channel.
struct Claim {
  Worm* worm = nullptr;
  int stage = -1;
  TapState* tap = nullptr;  ///< non-null for tap claims

  bool is_tap() const { return tap != nullptr; }
};

struct VcState {
  Claim owner;                ///< empty worm pointer => free
  std::deque<Claim> waiters;  ///< FIFO, non-preemptive (paper Section 4)

  bool is_free() const { return owner.worm == nullptr; }
};

struct ChannelState {
  std::vector<VcState> vcs;
  /// Dedicated ejection channels only (ChannelInfo::dedicated): the set of
  /// absorptions currently in progress. Absorption through a dedicated sink
  /// is allocation-free — the physical channel is fed by a single input
  /// link, so the paper's ingress-multiplexer clone can never block on it.
  std::vector<Claim> absorbers;
  std::uint32_t rr = 0;             ///< round-robin pointer for link bandwidth
  std::int64_t flits_crossed = 0;   ///< utilisation accounting
};

}  // namespace quarc::sim
