// Poisson message source of one node (paper Section 4: "the source
// produces the messages according to a Poisson distribution").
//
// Inter-arrival times are exponential with the node's message rate; an
// arrival occurring in continuous time [t, t+1) is presented at the start
// of cycle t. Each arrival is classified multicast with probability alpha
// (the workload's multicast fraction) and unicast destinations are drawn
// uniformly from the other nodes — all from the node's private Rng, so a
// simulation is a deterministic function of (topology, workload, seed).
#pragma once

#include <vector>

#include "quarc/traffic/workload.hpp"
#include "quarc/util/rng.hpp"
#include "quarc/util/types.hpp"

namespace quarc::sim {

struct Arrival {
  bool multicast = false;
  NodeId unicast_dest = kInvalidNode;  ///< valid iff !multicast
};

class TrafficSource {
 public:
  TrafficSource(NodeId node, const Workload& load, int num_nodes, Rng rng);

  /// Appends all arrivals that occur in cycle t (possibly none or several).
  /// Must be called with strictly increasing t.
  void poll(Cycle t, std::vector<Arrival>& out);

  /// The earliest cycle poll() could report an arrival for, given the
  /// current stream position (Cycle max when the source can never fire).
  /// A poll on any earlier cycle returns nothing and consumes no
  /// randomness, so callers may skip those cycles outright — the active
  /// engine's arrival gating and idle fast-forward rest on this.
  Cycle next_arrival_cycle() const;

 private:
  NodeId node_;
  int num_nodes_;
  double rate_;
  double multicast_fraction_;
  double next_arrival_;
  Rng rng_;
};

}  // namespace quarc::sim
