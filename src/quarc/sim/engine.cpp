#include "quarc/sim/engine.hpp"

#include <cstdlib>
#include <string>

#include "quarc/util/error.hpp"

namespace quarc::sim {

const char* to_string(SimEngine engine) {
  switch (engine) {
    case SimEngine::Active:
      return "active";
    case SimEngine::Reference:
      return "reference";
  }
  return "?";
}

SimEngine parse_sim_engine(std::string_view text) {
  if (text == "active") return SimEngine::Active;
  if (text == "reference") return SimEngine::Reference;
  QUARC_REQUIRE(false, "unknown sim engine '" + std::string(text) + "' (active|reference)");
  return SimEngine::Active;  // unreachable
}

SimEngine default_sim_engine() {
  const char* env = std::getenv("QUARC_SIM_ENGINE");
  if (env == nullptr || *env == '\0') return SimEngine::Active;
  return parse_sim_engine(env);
}

}  // namespace quarc::sim
