// Pooled worm storage for the active simulator engine.
//
// The reference engine heap-allocates one Worm (plus three std::vectors)
// per message and stores per-(source, dest) prototype vectors. At sweep
// scale that is millions of small allocations per run and an n^2 table of
// owned stage arrays per Simulator. This header flattens both:
//
//   * ProtoTable — every prototype's stages/stage_vc/taps live as spans
//     into three shared pools (one ChannelId pool, one vc pool, one tap
//     pool), built once per Simulator from the RoutePlan's views via the
//     exact Worm::from_route/from_stream builders, so stage construction
//     logic exists in one place.
//   * WormArena — a freelist of fixed-slot PooledWorms over 64-byte-aligned
//     chunked storage (util/aligned.hpp). Every slot owns a dyn/taps span
//     sized for the largest prototype; activation resets the spans and
//     points stages/stage_vc at the prototype pools. Chunks never move, so
//     PooledWorm* stays stable for the engine's Claim queues.
//
// PooledWorm mirrors Worm's dynamic fields and helpers one-for-one; the
// active engine's movement code is line-for-line the reference algorithm
// over this layout (byte-identity pinned by tests/test_sim_engine.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "quarc/route/route_plan.hpp"
#include "quarc/sim/network_state.hpp"
#include "quarc/traffic/workload.hpp"
#include "quarc/util/aligned.hpp"
#include "quarc/util/types.hpp"

namespace quarc::sim {

class ProtoTable {
 public:
  struct TapProto {
    int boundary = 0;
    NodeId node = kInvalidNode;
    ChannelId eject = kInvalidChannel;
  };
  struct Proto {
    std::uint32_t stage_off = 0;  ///< into stage/vc pools
    std::uint32_t tap_off = 0;    ///< into the tap pool
    std::uint16_t num_stages = 0;
    std::uint16_t num_taps = 0;
    NodeId source = kInvalidNode;
    PortId port = 0;
  };

  static constexpr std::uint32_t kNoProto = 0xFFFFFFFFu;

  /// Builds exactly the prototypes a run with this workload can spawn:
  /// the n^2 unicast table only when unicast arrivals can occur or
  /// software multicast spawns from it (the reference engine's skip rule),
  /// and per-source hardware stream prototypes when the plan carries them.
  ProtoTable(const RoutePlan& plan, const Workload& load);

  bool has_unicast() const { return !unicast_index_.empty(); }
  std::uint32_t unicast(NodeId s, NodeId d) const {
    return unicast_index_[static_cast<std::size_t>(s) * static_cast<std::size_t>(num_nodes_) +
                          static_cast<std::size_t>(d)];
  }
  /// Hardware stream prototypes of source s: [stream_begin(s), stream_end(s)).
  std::uint32_t stream_begin(NodeId s) const { return stream_off_[static_cast<std::size_t>(s)]; }
  std::uint32_t stream_end(NodeId s) const { return stream_off_[static_cast<std::size_t>(s) + 1]; }

  int multicast_stop_count(NodeId s) const {
    return multicast_stop_count_[static_cast<std::size_t>(s)];
  }
  int multicast_max_hops(NodeId s) const {
    return multicast_max_hops_[static_cast<std::size_t>(s)];
  }

  const Proto& proto(std::uint32_t i) const { return protos_[i]; }
  const ChannelId* stages(const Proto& p) const { return stage_pool_.data() + p.stage_off; }
  const std::uint8_t* stage_vcs(const Proto& p) const { return vc_pool_.data() + p.stage_off; }
  const TapProto* taps(const Proto& p) const { return tap_pool_.data() + p.tap_off; }

  int max_stages() const { return max_stages_; }
  int max_taps() const { return max_taps_; }

 private:
  /// Flattens one built Worm prototype into the pools; returns its index.
  std::uint32_t append(const Worm& w);

  int num_nodes_ = 0;
  int max_stages_ = 0;
  int max_taps_ = 0;
  std::vector<Proto> protos_;
  AlignedVector<ChannelId> stage_pool_;
  AlignedVector<std::uint8_t> vc_pool_;
  AlignedVector<TapProto> tap_pool_;
  std::vector<std::uint32_t> unicast_index_;  ///< [s*n+d], kNoProto off-diagonal gaps
  std::vector<std::uint32_t> stream_off_;     ///< [n+1] prefix into protos_
  std::vector<int> multicast_stop_count_;     ///< [n] (0 when no multicast state)
  std::vector<int> multicast_max_hops_;       ///< [n]
};

/// One in-flight message in the active engine. Same dynamic state and
/// helpers as Worm, but stages/stage_vc alias the ProtoTable pools and
/// dyn/taps alias fixed arena spans.
struct alignas(kCacheLineBytes) PooledWorm {
  const ChannelId* stages = nullptr;
  const std::uint8_t* stage_vc = nullptr;
  StageDyn* dyn = nullptr;  ///< arena-backed, fixed per slot
  TapState* taps = nullptr; ///< arena-backed, fixed per slot
  std::int32_t num_stages = 0;
  std::int32_t num_taps = 0;
  std::int32_t msg_len = 0;
  NodeId source = kInvalidNode;
  PortId port = 0;

  std::int64_t id = 0;
  /// Index in the engine's live list (maintained on swap-remove).
  std::size_t live_slot = 0;
  /// Dense group slot (the active engine's slot-map id); -1 for unicast.
  std::int32_t group = -1;
  Cycle created = 0;
  bool measured = false;

  std::int32_t flits_to_inject = 0;
  std::int32_t head_stage = -1;
  std::int32_t allocated_through = -1;
  std::int32_t absorbed = 0;

  int last_stage() const { return num_stages - 1; }
  bool fully_absorbed() const { return absorbed == msg_len; }
  bool taps_done() const {
    for (std::int32_t i = 0; i < num_taps; ++i) {
      if (taps[i].absorbed != msg_len) return false;
    }
    return true;
  }
  TapState* tap_at_boundary(int boundary) {
    for (std::int32_t i = 0; i < num_taps; ++i) {
      if (taps[i].boundary == boundary) return &taps[i];
    }
    return nullptr;
  }
  const TapState* tap_at_boundary(int boundary) const {
    for (std::int32_t i = 0; i < num_taps; ++i) {
      if (taps[i].boundary == boundary) return &taps[i];
    }
    return nullptr;
  }
};

class WormArena {
 public:
  /// Slots are sized for the table's largest prototype; msg_len is the
  /// run-wide message length (one Workload knob, constant per run).
  WormArena(const ProtoTable& protos, int msg_len);

  /// Activates a fresh worm from prototype `proto_index`: spans wired,
  /// dynamic state reset (full flit budget, taps unallocated). The pointer
  /// is stable until release().
  PooledWorm* acquire(std::uint32_t proto_index);
  void release(PooledWorm* w) { free_.push_back(w); }

  /// Total slots ever materialized (high-water diagnostic).
  std::size_t capacity() const { return chunks_.size() * kChunkWorms; }

 private:
  static constexpr std::size_t kChunkWorms = 64;

  struct Chunk {
    AlignedVector<PooledWorm> worms;
    AlignedVector<StageDyn> dyn;
    AlignedVector<TapState> taps;
  };

  void add_chunk();

  const ProtoTable* protos_;
  int msg_len_;
  std::size_t dyn_stride_;
  std::size_t tap_stride_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<PooledWorm*> free_;
};

}  // namespace quarc::sim
