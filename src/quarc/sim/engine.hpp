// Simulator engine selection.
//
// Two engines execute SimConfig runs:
//   * Active    — the event/activity-driven engine (active channel sets,
//                 pooled worm arena, idle-cycle fast-forward). The default.
//   * Reference — the historical every-channel-every-cycle loop, kept as
//                 the byte-identity oracle (the SolverIteration::GaussSeidel
//                 pattern applied to the simulator).
//
// The engines are byte-transparent: both produce bit-identical SimResults
// for every (topology, config) — pinned by tests/test_sim_engine.cpp — so
// the knob, like the solver's assembly knob, is deliberately NOT part of
// the scenario fingerprint.
//
// Selection: SimConfig::engine defaults to default_sim_engine(), which
// reads the QUARC_SIM_ENGINE environment variable ("active"|"reference");
// unset means Active. The CLI exposes --sim-engine, and CI runs the whole
// sim test suite once per engine through the env knob.
#pragma once

#include <string_view>

namespace quarc::sim {

enum class SimEngine {
  Active,
  Reference,
};

const char* to_string(SimEngine engine);

/// Parses "active" / "reference"; throws InvalidArgument otherwise.
SimEngine parse_sim_engine(std::string_view text);

/// The engine SimConfig defaults to: QUARC_SIM_ENGINE when set (throws
/// InvalidArgument on an unrecognized value), Active otherwise.
SimEngine default_sim_engine();

}  // namespace quarc::sim
