#include "quarc/sim/active_engine.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <limits>

#include "quarc/util/error.hpp"

namespace quarc::sim {

ActiveEngine::ActiveEngine(const Topology& topo, SimConfig config)
    : topo_(&topo),
      config_(std::move(config)),
      metrics_(config_.batch_count, topo.num_ports(), config_.collect_stream_samples) {
  // Compiled in the body from config_ (already owned by this instance) —
  // same evaluation-order note as the reference engine's constructor.
  const RoutePlan plan(topo, config_.workload.multicast_rate() > 0.0
                                 ? config_.workload.pattern.get()
                                 : nullptr);
  build(plan);
}

ActiveEngine::ActiveEngine(const RoutePlan& plan, SimConfig config)
    : topo_(&plan.topology()),
      config_(std::move(config)),
      metrics_(config_.batch_count, topo_->num_ports(), config_.collect_stream_samples) {
  build(plan);
}

void ActiveEngine::build(const RoutePlan& plan) {
  const Topology& topo = *topo_;
  config_.workload.validate(topo);
  QUARC_REQUIRE(config_.workload.multicast_rate() == 0.0 ||
                    plan.pattern() == config_.workload.pattern.get(),
                "route plan was compiled with a different multicast pattern");
  QUARC_REQUIRE(config_.buffer_depth >= 1, "buffer depth must be positive");
  QUARC_REQUIRE(config_.warmup_cycles >= 0 && config_.measure_cycles > 0,
                "warmup must be >= 0 and measurement window positive");

  const int n = topo.num_nodes();

  channel_state_.resize(static_cast<std::size_t>(topo.num_channels()));
  for (const ChannelInfo& ch : topo.channels()) {
    channel_state_[static_cast<std::size_t>(ch.id)].vcs.resize(static_cast<std::size_t>(ch.vcs));
  }
  in_active_.assign(channel_state_.size(), 0);

  // Independent deterministic source per node (identical construction
  // order to the reference engine, so the RNG streams match).
  Rng master(config_.seed);
  sources_.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    sources_.emplace_back(i, config_.workload, n, master.split());
  }
  Cycle next = std::numeric_limits<Cycle>::max();
  for (const TrafficSource& src : sources_) next = std::min(next, src.next_arrival_cycle());
  next_arrival_cycle_ = next;

  protos_ = std::make_unique<ProtoTable>(plan, config_.workload);
  arena_ = std::make_unique<WormArena>(*protos_, config_.workload.message_length);
}

void ActiveEngine::mark_active(ChannelId ch) {
  std::uint8_t& flag = in_active_[static_cast<std::size_t>(ch)];
  if (flag == 0) {
    flag = 1;
    newly_active_.push_back(ch);
  }
}

std::int32_t ActiveEngine::alloc_group(const Group& g) {
  if (!group_free_.empty()) {
    const std::int32_t slot = group_free_.back();
    group_free_.pop_back();
    groups_[static_cast<std::size_t>(slot)] = g;
    return slot;
  }
  groups_.push_back(g);
  return static_cast<std::int32_t>(groups_.size() - 1);
}

void ActiveEngine::spawn(std::uint32_t proto_index, std::int32_t group_slot, bool measured) {
  QUARC_ASSERT(proto_index != ProtoTable::kNoProto, "spawn from a missing prototype");
  PooledWorm* w = arena_->acquire(proto_index);
  w->id = next_worm_id_++;
  w->group = group_slot;
  w->created = cycle_;
  w->measured = measured;
  w->live_slot = live_.size();
  live_.push_back(w);
  ++active_worms_;
  request(w->stages[0], static_cast<int>(w->stage_vc[0]), AClaim{w, 0, nullptr});
}

void ActiveEngine::create_multicast(NodeId s, bool measured) {
  const double floor = static_cast<double>(config_.workload.message_length +
                                           protos_->multicast_max_hops(s) + 1);
  const std::int32_t slot =
      alloc_group(Group{cycle_, protos_->multicast_stop_count(s), measured, floor});
  if (topo_->supports_multicast()) {
    for (std::uint32_t pi = protos_->stream_begin(s); pi < protos_->stream_end(s); ++pi) {
      spawn(pi, slot, measured);
    }
  } else {
    for (NodeId d : config_.workload.pattern->destinations(s)) {
      spawn(protos_->unicast(s, d), slot, measured);
    }
  }
}

void ActiveEngine::arrivals_phase() {
  // No source can fire before next_arrival_cycle_, and a poll that yields
  // nothing consumes no RNG — skipping it wholesale is a strict no-op.
  if (cycle_ < next_arrival_cycle_) return;
  const Cycle window_start = config_.warmup_cycles;
  const Cycle window_end = config_.warmup_cycles + config_.measure_cycles;
  const bool in_window = cycle_ >= window_start && cycle_ < window_end;
  profile_.source_polls += topo_->num_nodes();
  for (NodeId s = 0; s < topo_->num_nodes(); ++s) {
    arrival_scratch_.clear();
    sources_[static_cast<std::size_t>(s)].poll(cycle_, arrival_scratch_);
    for (const Arrival& a : arrival_scratch_) {
      metrics_.on_created(a.multicast, in_window);
      if (a.multicast) {
        create_multicast(s, in_window);
      } else {
        spawn(protos_->unicast(s, a.unicast_dest), -1, in_window);
      }
    }
  }
  Cycle next = std::numeric_limits<Cycle>::max();
  for (const TrafficSource& src : sources_) next = std::min(next, src.next_arrival_cycle());
  next_arrival_cycle_ = next;
}

void ActiveEngine::request(ChannelId ch, int vc, AClaim claim) {
  const ChannelInfo& info = topo_->channels()[static_cast<std::size_t>(ch)];
  if (info.dedicated) {
    // Conflict-free absorption path: no allocation, immediately usable.
    channel_state_[static_cast<std::size_t>(ch)].absorbers.push_back(claim);
    mark_active(ch);
    if (claim.is_tap()) {
      claim.tap->allocated = true;
    } else {
      QUARC_ASSERT(claim.stage == claim.worm->allocated_through + 1,
                   "out-of-order stage allocation");
      claim.worm->allocated_through = claim.stage;
    }
    return;
  }
  AVcState& v = channel_state_[static_cast<std::size_t>(ch)].vcs[static_cast<std::size_t>(vc)];
  if (v.is_free() && v.waiters.empty()) {
    grant(ch, vc, claim);
  } else {
    v.waiters.push_back(claim);
    // Injection watermark: count the queue exactly when it crosses the
    // stability limit (pushes grow by one, so == detects every crossing).
    if (info.kind == ChannelKind::Injection && vc == 0 &&
        v.waiters.size() == config_.max_queue_length + 1) {
      ++injection_over_;
    }
  }
}

void ActiveEngine::grant(ChannelId ch, int vc, AClaim claim) {
  AVcState& v = channel_state_[static_cast<std::size_t>(ch)].vcs[static_cast<std::size_t>(vc)];
  QUARC_ASSERT(v.is_free(), "grant on an occupied virtual channel");
  v.owner = claim;
  mark_active(ch);
  if (claim.is_tap()) {
    claim.tap->allocated = true;
    return;
  }
  PooledWorm& w = *claim.worm;
  QUARC_ASSERT(claim.stage == w.allocated_through + 1, "out-of-order stage allocation");
  w.allocated_through = claim.stage;
  // Acquire the absorb-and-forward tap strictly after the forward channel
  // (ejection channels are leaf resources; see DESIGN.md deadlock note).
  if (claim.stage >= 1) {
    if (TapState* tp = w.tap_at_boundary(claim.stage - 1)) {
      request(tp->eject, 0, AClaim{&w, -1, tp});
    }
  }
}

void ActiveEngine::release(ChannelId ch, int vc) {
  AVcState& v = channel_state_[static_cast<std::size_t>(ch)].vcs[static_cast<std::size_t>(vc)];
  QUARC_ASSERT(!v.is_free(), "release of a free virtual channel");
  v.owner = AClaim{};
  if (!v.waiters.empty()) pending_grants_.emplace_back(ch, vc);
}

void ActiveEngine::allocation_phase() {
  // Grants take effect at the start of the cycle following the release.
  // Double-buffered (capacity-preserving) form of the reference move:
  // nothing pushes pending grants during this loop, and new ones land in
  // the (now empty) pending_grants_ either way.
  pending_scratch_.swap(pending_grants_);
  for (const auto& [ch, vc] : pending_scratch_) {
    AVcState& v = channel_state_[static_cast<std::size_t>(ch)].vcs[static_cast<std::size_t>(vc)];
    if (v.is_free() && !v.waiters.empty()) {
      AClaim claim = v.waiters.front();
      v.waiters.pop_front();
      if (topo_->channels()[static_cast<std::size_t>(ch)].kind == ChannelKind::Injection &&
          vc == 0 && v.waiters.size() == config_.max_queue_length) {
        --injection_over_;
      }
      grant(ch, vc, claim);
    }
  }
  pending_scratch_.clear();
}

bool ActiveEngine::transfer_candidate(const AClaim& o) const {
  if (o.worm == nullptr || o.is_tap()) return false;
  const PooledWorm& w = *o.worm;
  const int s = o.stage;
  if (s == 0) {
    if (w.flits_to_inject == 0) return false;
  } else if (!w.dyn[static_cast<std::size_t>(s - 1)].avail(cycle_)) {
    return false;
  }
  if (w.dyn[static_cast<std::size_t>(s)].occ_at_start(cycle_) >= config_.buffer_depth) return false;
  if (s >= 1 && w.num_taps != 0) {
    // The boundary into stage s clones into a tap when the node after link
    // s-1 is an absorbing stop.
    if (const TapState* tp = w.tap_at_boundary(s - 1)) {
      if (!tp->allocated) return false;
      if (tp->buf.occ_at_start(cycle_) >= config_.buffer_depth) return false;
    }
  }
  return true;
}

void ActiveEngine::do_transfer(const AClaim& o) {
  PooledWorm& w = *o.worm;
  const int s = o.stage;
  if (s == 0) {
    --w.flits_to_inject;
    ++flits_injected_;
  } else {
    StageDyn& up = w.dyn[static_cast<std::size_t>(s - 1)];
    up.on_exit(cycle_);
    if (TapState* tp = w.tap_at_boundary(s - 1)) {
      tp->buf.on_enter(cycle_);
      ++tp->cloned;
      ++channel_state_[static_cast<std::size_t>(tp->eject)].flits_crossed;
    }
    if (up.exited == static_cast<std::uint32_t>(w.msg_len)) {
      release(w.stages[s - 1], static_cast<int>(w.stage_vc[s - 1]));
    }
  }
  w.dyn[static_cast<std::size_t>(s)].on_enter(cycle_);
  if (s > w.head_stage) {
    w.head_stage = s;
    if (s + 1 <= w.last_stage()) {
      request(w.stages[s + 1], static_cast<int>(w.stage_vc[s + 1]), AClaim{&w, s + 1, nullptr});
    }
  }
}

void ActiveEngine::on_stop_complete(PooledWorm& w) {
  QUARC_ASSERT(w.group >= 0, "stop completion for a unicast worm");
  Group& g = groups_[static_cast<std::size_t>(w.group)];
  QUARC_ASSERT(g.stops_left > 0, "stop completion for a completed group");
  if (--g.stops_left == 0) {
    const Cycle latency = cycle_ - g.created;
    metrics_.on_multicast_done(latency, g.measured);
    metrics_.on_group_wait(static_cast<double>(latency) - g.zero_load_floor, g.measured);
    group_free_.push_back(w.group);
    ++multicast_groups_delivered_total_;
  }
}

void ActiveEngine::on_stream_absorbed(PooledWorm& w) {
  // Empirical W_{j,c}: stream latency minus its zero-load floor
  // M + D_c + 1 (D_c = last_stage - 1 external hops).
  const double wait =
      static_cast<double>(cycle_ - w.created) - static_cast<double>(w.msg_len + w.last_stage());
  metrics_.on_stream_done(w.port, wait, w.measured);
}

void ActiveEngine::maybe_destroy(PooledWorm* w) {
  if (!w->fully_absorbed() || !w->taps_done()) return;
  QUARC_ASSERT(w->flits_to_inject == 0, "destroying a worm with unsent flits");
  for (std::int32_t i = 0; i < w->num_stages; ++i) {
    QUARC_ASSERT(w->dyn[i].occ == 0, "destroying a worm with in-flight flits");
  }
  if (w->measured) worm_sojourn_.add(static_cast<double>(cycle_ - w->created));
  const std::size_t slot = w->live_slot;
  if (slot + 1 != live_.size()) {
    live_[slot] = live_.back();
    live_[slot]->live_slot = slot;
  }
  live_.pop_back();
  --active_worms_;
  arena_->release(w);
}

void ActiveEngine::movement_phase() {
  // Fold in channels activated since the last sweep. Mid-sweep activations
  // are deferred on purpose: a flit that entered its buffer this cycle has
  // last_enter == cycle_, so the reference loop's visit of that channel
  // later in the same cycle is a guaranteed no-op (snapshot semantics) —
  // visiting it first next cycle produces identical bytes.
  if (!newly_active_.empty()) {
    std::sort(newly_active_.begin(), newly_active_.end());
    merge_scratch_.clear();
    merge_scratch_.reserve(active_.size() + newly_active_.size());
    std::merge(active_.begin(), active_.end(), newly_active_.begin(), newly_active_.end(),
               std::back_inserter(merge_scratch_));
    active_.swap(merge_scratch_);
    newly_active_.clear();
  }
  profile_.channel_visits += static_cast<std::int64_t>(active_.size());

  bool moved = false;
  const auto& channels = topo_->channels();
  std::size_t out = 0;
  for (std::size_t idx = 0; idx < active_.size(); ++idx) {
    const ChannelId c = active_[idx];
    const auto uc = static_cast<std::size_t>(c);
    AChannelState& cs = channel_state_[uc];
    const ChannelInfo& info = channels[uc];

    // Dedicated ejection channels: each in-progress absorption advances
    // independently (crossing-in for final stages, then a sink pull),
    // with start-of-cycle snapshot semantics keeping the two separate.
    if (info.kind == ChannelKind::Ejection && info.dedicated) {
      auto& absorbers = cs.absorbers;
      for (std::size_t i = 0; i < absorbers.size();) {
        const AClaim a = absorbers[i];
        bool removed = false;
        if (a.is_tap()) {
          TapState& tp = *a.tap;
          if (tp.buf.avail(cycle_)) {
            tp.buf.on_exit(cycle_);
            ++tp.absorbed;
            ++flits_absorbed_;
            moved = true;
            if (tp.absorbed == a.worm->msg_len) {
              absorbers[i] = absorbers.back();
              absorbers.pop_back();
              removed = true;
              on_stop_complete(*a.worm);
              maybe_destroy(a.worm);
            }
          }
        } else {
          PooledWorm* w = a.worm;
          if (transfer_candidate(a)) {  // crossing-in from the last link
            do_transfer(a);
            ++cs.flits_crossed;
            moved = true;
          }
          StageDyn& last = w->dyn[static_cast<std::size_t>(w->last_stage())];
          if (last.avail(cycle_)) {
            last.on_exit(cycle_);
            ++w->absorbed;
            ++flits_absorbed_;
            moved = true;
            if (w->fully_absorbed()) {
              absorbers[i] = absorbers.back();
              absorbers.pop_back();
              removed = true;
              if (w->group < 0) {
                metrics_.on_unicast_done(cycle_ - w->created, w->measured);
                ++unicast_delivered_total_;
              } else {
                on_stream_absorbed(*w);
                on_stop_complete(*w);
              }
              maybe_destroy(w);
            }
          }
        }
        if (!removed) ++i;
      }
    } else {
      // Shared (one-port) ejection channels: sink consumption for the worm
      // or tap currently holding the channel.
      if (info.kind == ChannelKind::Ejection) {
        AVcState& v = cs.vcs[0];
        if (!v.is_free()) {
          if (v.owner.is_tap()) {
            TapState& tp = *v.owner.tap;
            if (tp.buf.avail(cycle_)) {
              PooledWorm* w = v.owner.worm;
              tp.buf.on_exit(cycle_);
              ++tp.absorbed;
              ++flits_absorbed_;
              moved = true;
              if (tp.absorbed == w->msg_len) {
                release(info.id, 0);
                on_stop_complete(*w);
                maybe_destroy(w);
              }
            }
          } else if (v.owner.stage == v.owner.worm->last_stage()) {
            PooledWorm* w = v.owner.worm;
            StageDyn& last = w->dyn[static_cast<std::size_t>(w->last_stage())];
            if (last.avail(cycle_)) {
              last.on_exit(cycle_);
              ++w->absorbed;
              ++flits_absorbed_;
              moved = true;
              if (w->fully_absorbed()) {
                release(info.id, 0);
                if (w->group < 0) {
                  metrics_.on_unicast_done(cycle_ - w->created, w->measured);
                  ++unicast_delivered_total_;
                } else {
                  on_stream_absorbed(*w);
                  on_stop_complete(*w);
                }
                maybe_destroy(w);
              }
            }
          }
        }
      }

      // At most one flit crosses the physical channel per cycle;
      // round-robin among virtual channels with a movable flit.
      const int nv = static_cast<int>(cs.vcs.size());
      int chosen = -1;
      for (int k = 1; k <= nv; ++k) {
        const int vc = static_cast<int>((cs.rr + static_cast<std::uint32_t>(k)) %
                                        static_cast<std::uint32_t>(nv));
        if (transfer_candidate(cs.vcs[static_cast<std::size_t>(vc)].owner)) {
          chosen = vc;
          break;
        }
      }
      if (chosen >= 0) {
        do_transfer(cs.vcs[static_cast<std::size_t>(chosen)].owner);
        cs.rr = static_cast<std::uint32_t>(chosen);
        ++cs.flits_crossed;
        moved = true;
      }
    }

    // Lazy removal: keep the channel while it owns any claim or hosts an
    // absorption; otherwise unmark and drop (a later grant re-adds it).
    // A channel with waiters but no owner always has a pending grant
    // queued, so dropping it here can never strand a waiter.
    bool alive = !cs.absorbers.empty();
    if (!alive) {
      for (const AVcState& v : cs.vcs) {
        if (!v.is_free()) {
          alive = true;
          break;
        }
      }
    }
    if (alive) {
      active_[out++] = c;
    } else {
      in_active_[uc] = 0;
    }
  }
  active_.resize(out);
  if (moved) last_movement_ = cycle_;
}

void ActiveEngine::validate_state() const {
  // Per-worm flit conservation and buffer bounds.
  for (const PooledWorm* wp : live_) {
    const PooledWorm& w = *wp;
    int in_buffers = 0;
    for (std::int32_t i = 0; i < w.num_stages; ++i) {
      QUARC_ASSERT(w.dyn[i].occ <= config_.buffer_depth, "stage buffer over capacity");
      in_buffers += w.dyn[i].occ;
    }
    QUARC_ASSERT(w.flits_to_inject + in_buffers + w.absorbed == w.msg_len,
                 "worm flit conservation violated");
    QUARC_ASSERT(w.head_stage <= w.allocated_through, "header ahead of its allocations");
    QUARC_ASSERT(w.allocated_through <= w.head_stage + 1,
                 "worm holds a stage more than one ahead of its header");
    for (std::int32_t i = 0; i < w.num_taps; ++i) {
      const TapState& tp = w.taps[i];
      QUARC_ASSERT(tp.cloned - tp.absorbed == tp.buf.occ, "tap clone conservation violated");
      QUARC_ASSERT(tp.cloned <= w.msg_len, "tap cloned more flits than the message has");
      QUARC_ASSERT(tp.allocated || tp.cloned == 0, "tap cloned before allocation");
    }
  }
  // Allocation consistency: every VC owner names the channel it occupies.
  for (std::size_t c = 0; c < channel_state_.size(); ++c) {
    const AChannelState& cs = channel_state_[c];
    for (const AVcState& v : cs.vcs) {
      if (v.is_free()) continue;
      if (v.owner.is_tap()) {
        QUARC_ASSERT(v.owner.tap->eject == static_cast<ChannelId>(c),
                     "tap owns a channel that is not its ejection channel");
      } else {
        const PooledWorm& w = *v.owner.worm;
        QUARC_ASSERT(v.owner.stage >= 0 && v.owner.stage <= w.last_stage(),
                     "owner stage out of range");
        QUARC_ASSERT(w.stages[v.owner.stage] == static_cast<ChannelId>(c),
                     "VC owner does not match the worm's route");
      }
    }
    for (const AClaim& a : cs.absorbers) {
      QUARC_ASSERT(a.worm != nullptr, "null absorber claim");
      if (a.is_tap()) {
        QUARC_ASSERT(a.tap->eject == static_cast<ChannelId>(c), "absorber channel mismatch");
      } else {
        QUARC_ASSERT(a.worm->stages[a.stage] == static_cast<ChannelId>(c),
                     "absorber channel mismatch");
      }
    }
    // Activity-set consistency: any channel with work is tracked.
    const bool busy = !cs.absorbers.empty() ||
                      std::any_of(cs.vcs.begin(), cs.vcs.end(),
                                  [](const AVcState& v) { return !v.is_free(); });
    QUARC_ASSERT(!busy || in_active_[c] != 0, "busy channel missing from the active set");
  }
}

SimResult ActiveEngine::run() {
  const Cycle window_end = config_.warmup_cycles + config_.measure_cycles;
  const Cycle hard_cap = window_end + config_.drain_cap_cycles;
  bool completed = false;

  using Clock = std::chrono::steady_clock;
  const bool prof = config_.profile_phases;
  auto timed = [prof](auto&& fn, double& acc) {
    if (!prof) {
      fn();
      return;
    }
    const auto t0 = Clock::now();
    fn();
    acc += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
  };

  for (cycle_ = 0;; ++cycle_) {
    timed([this] { arrivals_phase(); }, profile_.arrivals_ns);
    timed([this] { allocation_phase(); }, profile_.allocation_ns);
    timed([this] { movement_phase(); }, profile_.movement_ns);
    ++profile_.cycles_executed;
    active_worm_integral_ += static_cast<double>(active_worms_);

    if (cycle_ + 1 >= window_end && metrics_.all_measured_done()) {
      completed = true;
      break;
    }
    if (cycle_ >= hard_cap) break;
    if (config_.check_invariants && cycle_ % config_.invariant_check_interval == 0) {
      validate_state();
    }
    if ((cycle_ & 0xFF) == 0 && injection_over_ > 0) {
      stable_ = false;
      break;
    }
    if (active_worms_ > 0 && cycle_ - last_movement_ > config_.stall_watchdog) {
      QUARC_ASSERT(false, "simulation stalled: deadlock canary tripped");
    }

    if (active_worms_ == 0) {
      // Idle fast-forward. With no worm in flight every cycle before the
      // next arrival is a reference-loop no-op: the arrivals phase cannot
      // fire, allocation/movement are empty, all queues are empty (so the
      // watermark break and the watchdog cannot trip), invariant checks
      // pass vacuously, and each cycle adds exactly zero to the
      // active-worm integral. The first break the reference could take is
      // the window-completion check at window_end - 1 (only when all
      // measured messages are already done) or the drain hard cap — so
      // jump straight to the earliest of those and the next arrival.
      Cycle target = next_arrival_cycle_;
      const Cycle bound = metrics_.all_measured_done() ? window_end - 1 : hard_cap;
      target = std::min(target, bound);
      if (target > cycle_ + 1) {
        const Cycle span = target - (cycle_ + 1);
        active_worm_integral_ +=
            static_cast<double>(active_worms_) * static_cast<double>(span);
        profile_.cycles_skipped += span;
        cycle_ = target - 1;  // the loop increment lands on `target`
      }
    }
  }

  SimResult result;
  result.unicast_latency = metrics_.unicast_summary();
  result.multicast_latency = metrics_.multicast_summary();
  result.stream_wait_by_port = metrics_.stream_wait_by_port();
  result.multicast_wait = metrics_.group_wait_summary();
  result.stream_wait_samples = metrics_.stream_wait_samples();
  result.avg_active_worms = active_worm_integral_ / static_cast<double>(cycle_ + 1);
  {
    StatSummary sj;
    sj.count = worm_sojourn_.count();
    sj.mean = worm_sojourn_.mean();
    sj.min = worm_sojourn_.empty() ? 0.0 : worm_sojourn_.min();
    sj.max = worm_sojourn_.empty() ? 0.0 : worm_sojourn_.max();
    result.worm_sojourn = sj;
  }
  result.unicast_delivered_total = unicast_delivered_total_;
  result.multicast_groups_delivered_total = multicast_groups_delivered_total_;
  result.messages_generated = metrics_.total_created();
  result.cycles_run = cycle_ + 1;
  result.completed = completed && stable_;
  result.stable = stable_;
  result.flits_injected = flits_injected_;
  result.flits_absorbed = flits_absorbed_;
  result.channel_utilization.resize(channel_state_.size(), 0.0);
  const auto cycles = static_cast<double>(result.cycles_run);
  for (std::size_t c = 0; c < channel_state_.size(); ++c) {
    result.channel_utilization[c] = static_cast<double>(channel_state_[c].flits_crossed) / cycles;
    result.max_channel_utilization =
        std::max(result.max_channel_utilization, result.channel_utilization[c]);
  }
  return result;
}

}  // namespace quarc::sim
