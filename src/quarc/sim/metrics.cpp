#include "quarc/sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace quarc::sim {

Metrics::Metrics(int batch_count, int num_ports, bool collect_stream_samples)
    : unicast_batches_(batch_count),
      multicast_batches_(batch_count),
      stream_wait_(static_cast<std::size_t>(num_ports)),
      collect_samples_(collect_stream_samples),
      samples_(static_cast<std::size_t>(num_ports)) {}

void Metrics::on_created(bool multicast, bool measured) {
  ++total_created_;
  if (!measured) return;
  if (multicast) {
    ++multicast_created_;
  } else {
    ++unicast_created_;
  }
}

void Metrics::on_unicast_done(Cycle latency, bool measured) {
  if (!measured) return;
  ++unicast_done_;
  unicast_batches_.add(static_cast<double>(latency));
  unicast_stats_.add(static_cast<double>(latency));
}

void Metrics::on_multicast_done(Cycle latency, bool measured) {
  if (!measured) return;
  ++multicast_done_;
  multicast_batches_.add(static_cast<double>(latency));
  multicast_stats_.add(static_cast<double>(latency));
}

void Metrics::on_stream_done(PortId port, double wait, bool measured) {
  if (!measured) return;
  const double clamped = std::max(0.0, wait);
  stream_wait_[static_cast<std::size_t>(port)].add(clamped);
  if (collect_samples_) samples_[static_cast<std::size_t>(port)].push_back(clamped);
}

void Metrics::on_group_wait(double wait, bool measured) {
  if (!measured) return;
  group_wait_.add(std::max(0.0, wait));
}

StatSummary Metrics::summarize(const RunningStats& stats) {
  StatSummary s;
  s.count = stats.count();
  s.mean = stats.mean();
  s.ci95 = stats.count() > 1 ? 2.0 * stats.stddev() / std::sqrt(static_cast<double>(stats.count()))
                             : std::numeric_limits<double>::infinity();
  s.min = stats.empty() ? 0.0 : stats.min();
  s.max = stats.empty() ? 0.0 : stats.max();
  return s;
}

std::vector<StatSummary> Metrics::stream_wait_by_port() const {
  std::vector<StatSummary> out;
  out.reserve(stream_wait_.size());
  for (const RunningStats& s : stream_wait_) out.push_back(summarize(s));
  return out;
}

StatSummary Metrics::group_wait_summary() const { return summarize(group_wait_); }

StatSummary Metrics::summarize(const BatchMeans& batches, const RunningStats& stats) {
  StatSummary s;
  s.count = stats.count();
  s.mean = stats.mean();
  s.ci95 = batches.ci_halfwidth();
  s.min = stats.empty() ? 0.0 : stats.min();
  s.max = stats.empty() ? 0.0 : stats.max();
  return s;
}

StatSummary Metrics::unicast_summary() const { return summarize(unicast_batches_, unicast_stats_); }

StatSummary Metrics::multicast_summary() const {
  return summarize(multicast_batches_, multicast_stats_);
}

}  // namespace quarc::sim
