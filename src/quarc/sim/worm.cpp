#include "quarc/sim/network_state.hpp"

#include "quarc/util/error.hpp"

namespace quarc::sim {

Worm Worm::from_route(const RouteView& r, int msg_len) {
  QUARC_ASSERT(msg_len >= 1, "worm needs at least one flit");
  Worm w;
  w.source = r.source;
  w.port = r.port;
  w.msg_len = msg_len;
  w.flits_to_inject = msg_len;
  w.stages.reserve(r.links.size() + 2);
  w.stage_vc.reserve(r.links.size() + 2);
  w.stages.push_back(r.injection);
  w.stage_vc.push_back(0);
  for (std::size_t i = 0; i < r.links.size(); ++i) {
    w.stages.push_back(r.links[i]);
    w.stage_vc.push_back(r.link_vcs[i]);
  }
  w.stages.push_back(r.ejection);
  w.stage_vc.push_back(0);
  w.dyn.assign(w.stages.size(), StageDyn{});
  return w;
}

Worm Worm::from_stream(const StreamView& st, int msg_len) {
  QUARC_ASSERT(msg_len >= 1, "worm needs at least one flit");
  QUARC_ASSERT(!st.stops.empty(), "stream must have at least one stop");
  Worm w;
  w.source = st.source;
  w.port = st.port;
  w.msg_len = msg_len;
  w.flits_to_inject = msg_len;
  w.stages.reserve(st.links.size() + 2);
  w.stage_vc.reserve(st.links.size() + 2);
  w.stages.push_back(st.injection);
  w.stage_vc.push_back(0);
  for (std::size_t i = 0; i < st.links.size(); ++i) {
    w.stages.push_back(st.links[i]);
    w.stage_vc.push_back(st.link_vcs[i]);
  }
  // The final stop's ejection channel is the worm's last stage; earlier
  // stops become taps on the boundary out of their arrival link's stage
  // (link h occupies stage h since the injection channel is stage 0).
  w.stages.push_back(st.stops.back().ejection);
  w.stage_vc.push_back(0);
  w.taps.reserve(st.stops.size() - 1);
  for (std::size_t i = 0; i + 1 < st.stops.size(); ++i) {
    TapState tp;
    tp.boundary = st.stops[i].hop;
    tp.node = st.stops[i].node;
    tp.eject = st.stops[i].ejection;
    w.taps.push_back(tp);
  }
  w.dyn.assign(w.stages.size(), StageDyn{});
  return w;
}

Worm Worm::from_route(const UnicastRoute& r, int msg_len) {
  return from_route(view_of(r), msg_len);
}

Worm Worm::from_stream(const MulticastStream& st, int msg_len) {
  return from_stream(view_of(st), msg_len);
}

}  // namespace quarc::sim
