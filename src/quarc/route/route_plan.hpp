// RoutePlan — routes and multicast streams compiled once per
// (topology, pattern), shared read-only by every consumer.
//
// The paper's pipeline assumes routing is *fixed* for a given (topology,
// pattern) pair: channel rates are accumulated from deterministic routes
// (Eq. 1-2), the M/G/1 recursion runs over the resulting channel graph
// (Eq. 3-6), and path latency is assembled by walking the same routes
// again (Eq. 7-16). Deriving each route on demand re-pays the routing
// arithmetic and — worse, on the hot path — a fresh std::vector per call,
// at every rate point of every sweep. A RoutePlan pays that cost exactly
// once: it materialises all N*(N-1) unicast routes and every per-source
// BRCP multicast stream into flat CSR-style pools (one contiguous link
// pool plus offset records) and hands out cheap non-owning views.
//
//   topo ──► RoutePlan ──► { ChannelGraph, PerformanceModel,
//            (compile        Simulator, fingerprint }
//             once)
//
// Consumers iterate views in exactly the order the direct calls used to
// produce, so rate accumulation, model assembly and simulator worm
// construction are bit-identical to deriving routes from scratch — the
// route-plan test-suite pins this link-for-link and byte-for-byte.
//
// Thread safety: a RoutePlan is immutable after construction; concurrent
// sweeps share one instance across threads and shards without locking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "quarc/topo/topology.hpp"

namespace quarc {

class MulticastPattern;

/// Non-owning view of one compiled unicast route (spans into the plan's
/// pools). Field-for-field equal to the UnicastRoute the topology returns.
struct RouteView {
  NodeId source = kInvalidNode;
  NodeId dest = kInvalidNode;
  PortId port = 0;
  ChannelId injection = kInvalidChannel;
  ChannelId ejection = kInvalidChannel;
  std::span<const ChannelId> links;
  std::span<const std::uint8_t> link_vcs;

  /// Number of external hops (the D of paper Eq. 7).
  int hops() const { return static_cast<int>(links.size()); }
};

/// Non-owning view of one compiled multicast stream (the S_{j,c} of paper
/// Eq. 1). Field-for-field equal to the MulticastStream the topology
/// returns for the same (source, destination set).
struct StreamView {
  NodeId source = kInvalidNode;
  PortId port = 0;
  ChannelId injection = kInvalidChannel;
  std::span<const ChannelId> links;
  std::span<const std::uint8_t> link_vcs;
  std::span<const MulticastStop> stops;

  /// Hop count to the stream's last destination (the D_{j,c} of Eq. 7).
  int hops() const { return static_cast<int>(links.size()); }
};

/// Views over directly derived routes/streams (tests, one-off
/// diagnostics). The spans alias the argument, which must outlive the
/// view. Kept next to the view types so a field added to either side is
/// mapped here, in one place.
RouteView view_of(const UnicastRoute& r);
StreamView view_of(const MulticastStream& st);

class RoutePlan {
 public:
  /// Compiles every unicast route of `topo`; when `pattern` is non-null,
  /// also the per-source multicast state — hardware BRCP streams when the
  /// topology supports them, and the materialised destination lists either
  /// way (the software-multicast fallback replays unicast routes over
  /// them). The pattern pointer is kept only as an identity token for
  /// consistency checks; the plan never dereferences it after compiling.
  explicit RoutePlan(const Topology& topo, const MulticastPattern* pattern = nullptr);

  /// The topology the plan was compiled from (must outlive the plan).
  const Topology& topology() const { return *topo_; }
  /// Identity of the pattern the plan was compiled with (may be null).
  const MulticastPattern* pattern() const { return pattern_; }
  /// Whether per-source multicast state was compiled.
  bool has_multicast() const { return pattern_ != nullptr; }
  /// Whether the multicast state is hardware BRCP streams (vs. the
  /// software consecutive-unicast fallback).
  bool hardware_streams() const { return hardware_streams_; }

  // ---- unicast ----
  /// Compiled route s -> d; requires s != d and both in range.
  RouteView route(NodeId s, NodeId d) const;
  /// Longest unicast route in hops (== Topology::diameter()).
  int max_route_hops() const { return max_route_hops_; }
  /// Longest hop count over all routes and streams (the plan's summary).
  int max_hops() const { return max_hops_; }

  // ---- multicast ----
  /// Materialised destination set of source s (empty span when the
  /// pattern assigns none, or without a pattern).
  std::span<const NodeId> multicast_dests(NodeId s) const;
  /// Number of hardware streams leaving source s (0 without hardware
  /// multicast or for an empty destination set).
  std::size_t stream_count(NodeId s) const;
  /// The i-th hardware stream of source s (i < stream_count(s)), in the
  /// order Topology::multicast_streams() returns them.
  StreamView stream(NodeId s, std::size_t i) const;
  /// Total absorb stops of source s's multicast (== its fanout; covers
  /// both hardware streams and the software fallback).
  int multicast_stop_count(NodeId s) const;
  /// max_c D_{j,c}: the longest stream (hardware) or longest destination
  /// route (software) of source s's multicast; 0 for an empty set.
  int multicast_max_hops(NodeId s) const;

  /// FNV-1a 64 digest of the plan's canonical arrays: node/port counts,
  /// the channel table, every unicast route and every multicast stream.
  /// This is the structural cache key for adopted (escape-hatch)
  /// topologies — two same-named builds with different wiring never
  /// collide, and the digest provably names the exact routes the model,
  /// simulator and rate accumulation consume.
  std::uint64_t structural_digest() const;

 private:
  struct RouteRec {
    PortId port = 0;
    ChannelId injection = kInvalidChannel;
    ChannelId ejection = kInvalidChannel;
    std::uint32_t link_begin = 0;
    std::uint32_t link_end = 0;
  };
  struct StreamRec {
    PortId port = 0;
    ChannelId injection = kInvalidChannel;
    std::uint32_t link_begin = 0;
    std::uint32_t link_end = 0;
    std::uint32_t stop_begin = 0;
    std::uint32_t stop_end = 0;
  };

  std::size_t route_index(NodeId s, NodeId d) const;

  const Topology* topo_;
  const MulticastPattern* pattern_;
  bool hardware_streams_ = false;
  int max_route_hops_ = 0;
  int max_hops_ = 0;

  // One contiguous pool of external-channel ids (routes first, then
  // streams), with a parallel virtual-channel pool; records slice into it.
  std::vector<ChannelId> link_pool_;
  std::vector<std::uint8_t> vc_pool_;
  std::vector<RouteRec> routes_;             ///< [s * N + d]; diagonal unused
  std::vector<StreamRec> streams_;           ///< grouped by source
  std::vector<std::uint32_t> stream_offset_; ///< [N + 1] into streams_
  std::vector<MulticastStop> stop_pool_;
  std::vector<NodeId> dest_pool_;
  std::vector<std::uint32_t> dest_offset_;   ///< [N + 1] into dest_pool_
  std::vector<int> mc_stop_count_;           ///< [N]
  std::vector<int> mc_max_hops_;             ///< [N]
};

}  // namespace quarc
