#include "quarc/route/route_plan.hpp"

#include <algorithm>
#include <string>

#include "quarc/traffic/pattern.hpp"
#include "quarc/util/error.hpp"
#include "quarc/util/hash.hpp"

namespace quarc {

RouteView view_of(const UnicastRoute& r) {
  RouteView v;
  v.source = r.source;
  v.dest = r.dest;
  v.port = r.port;
  v.injection = r.injection;
  v.ejection = r.ejection;
  v.links = r.links;
  v.link_vcs = r.link_vcs;
  return v;
}

StreamView view_of(const MulticastStream& st) {
  StreamView v;
  v.source = st.source;
  v.port = st.port;
  v.injection = st.injection;
  v.links = st.links;
  v.link_vcs = st.link_vcs;
  v.stops = st.stops;
  return v;
}

RoutePlan::RoutePlan(const Topology& topo, const MulticastPattern* pattern)
    : topo_(&topo), pattern_(pattern) {
  const int n = topo.num_nodes();
  const auto un = static_cast<std::size_t>(n);
  hardware_streams_ = pattern != nullptr && topo.supports_multicast();

  // ---- unicast routes: all N*(N-1) pairs, (s, d) ascending. ----
  routes_.resize(un * un);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const UnicastRoute r = topo.unicast_route(s, d);
      QUARC_ASSERT(r.link_vcs.size() == r.links.size(), "route vc table size mismatch");
      RouteRec& rec = routes_[route_index(s, d)];
      rec.port = r.port;
      rec.injection = r.injection;
      rec.ejection = r.ejection;
      rec.link_begin = static_cast<std::uint32_t>(link_pool_.size());
      link_pool_.insert(link_pool_.end(), r.links.begin(), r.links.end());
      vc_pool_.insert(vc_pool_.end(), r.link_vcs.begin(), r.link_vcs.end());
      rec.link_end = static_cast<std::uint32_t>(link_pool_.size());
      max_route_hops_ = std::max(max_route_hops_, r.hops());
    }
  }
  max_hops_ = max_route_hops_;

  // ---- multicast state: streams and destination lists per source. ----
  dest_offset_.assign(un + 1, 0);
  stream_offset_.assign(un + 1, 0);
  mc_stop_count_.assign(un, 0);
  mc_max_hops_.assign(un, 0);
  if (pattern == nullptr) return;
  for (NodeId s = 0; s < n; ++s) {
    const std::vector<NodeId>& dests = pattern->destinations(s);
    dest_pool_.insert(dest_pool_.end(), dests.begin(), dests.end());
    dest_offset_[static_cast<std::size_t>(s) + 1] =
        static_cast<std::uint32_t>(dest_pool_.size());
    int stops = 0;
    int mc_hops = 0;
    if (!dests.empty()) {
      if (hardware_streams_) {
        for (const MulticastStream& st : topo.multicast_streams(s, dests)) {
          QUARC_ASSERT(st.link_vcs.size() == st.links.size(), "stream vc table size mismatch");
          StreamRec rec;
          rec.port = st.port;
          rec.injection = st.injection;
          rec.link_begin = static_cast<std::uint32_t>(link_pool_.size());
          link_pool_.insert(link_pool_.end(), st.links.begin(), st.links.end());
          vc_pool_.insert(vc_pool_.end(), st.link_vcs.begin(), st.link_vcs.end());
          rec.link_end = static_cast<std::uint32_t>(link_pool_.size());
          rec.stop_begin = static_cast<std::uint32_t>(stop_pool_.size());
          stop_pool_.insert(stop_pool_.end(), st.stops.begin(), st.stops.end());
          rec.stop_end = static_cast<std::uint32_t>(stop_pool_.size());
          streams_.push_back(rec);
          stops += static_cast<int>(st.stops.size());
          mc_hops = std::max(mc_hops, st.hops());
        }
        QUARC_ASSERT(stops == static_cast<int>(dests.size()),
                     "streams do not cover the destination set exactly");
      } else {
        stops = static_cast<int>(dests.size());
        for (const NodeId d : dests) mc_hops = std::max(mc_hops, route(s, d).hops());
      }
    }
    stream_offset_[static_cast<std::size_t>(s) + 1] =
        static_cast<std::uint32_t>(streams_.size());
    mc_stop_count_[static_cast<std::size_t>(s)] = stops;
    mc_max_hops_[static_cast<std::size_t>(s)] = mc_hops;
    max_hops_ = std::max(max_hops_, mc_hops);
  }
}

std::size_t RoutePlan::route_index(NodeId s, NodeId d) const {
  return static_cast<std::size_t>(s) * static_cast<std::size_t>(topo_->num_nodes()) +
         static_cast<std::size_t>(d);
}

RouteView RoutePlan::route(NodeId s, NodeId d) const {
  topo_->check_pair(s, d);
  const RouteRec& rec = routes_[route_index(s, d)];
  RouteView v;
  v.source = s;
  v.dest = d;
  v.port = rec.port;
  v.injection = rec.injection;
  v.ejection = rec.ejection;
  v.links = std::span<const ChannelId>(link_pool_).subspan(rec.link_begin,
                                                           rec.link_end - rec.link_begin);
  v.link_vcs = std::span<const std::uint8_t>(vc_pool_).subspan(rec.link_begin,
                                                               rec.link_end - rec.link_begin);
  return v;
}

std::span<const NodeId> RoutePlan::multicast_dests(NodeId s) const {
  QUARC_REQUIRE(s >= 0 && s < topo_->num_nodes(), "source node out of range");
  if (pattern_ == nullptr) return {};
  const auto us = static_cast<std::size_t>(s);
  return std::span<const NodeId>(dest_pool_)
      .subspan(dest_offset_[us], dest_offset_[us + 1] - dest_offset_[us]);
}

std::size_t RoutePlan::stream_count(NodeId s) const {
  QUARC_REQUIRE(s >= 0 && s < topo_->num_nodes(), "source node out of range");
  const auto us = static_cast<std::size_t>(s);
  return stream_offset_.empty() ? 0 : stream_offset_[us + 1] - stream_offset_[us];
}

StreamView RoutePlan::stream(NodeId s, std::size_t i) const {
  QUARC_REQUIRE(i < stream_count(s), "stream index out of range");
  const StreamRec& rec = streams_[stream_offset_[static_cast<std::size_t>(s)] + i];
  StreamView v;
  v.source = s;
  v.port = rec.port;
  v.injection = rec.injection;
  v.links = std::span<const ChannelId>(link_pool_).subspan(rec.link_begin,
                                                           rec.link_end - rec.link_begin);
  v.link_vcs = std::span<const std::uint8_t>(vc_pool_).subspan(rec.link_begin,
                                                               rec.link_end - rec.link_begin);
  v.stops = std::span<const MulticastStop>(stop_pool_)
                .subspan(rec.stop_begin, rec.stop_end - rec.stop_begin);
  return v;
}

int RoutePlan::multicast_stop_count(NodeId s) const {
  QUARC_REQUIRE(s >= 0 && s < topo_->num_nodes(), "source node out of range");
  return mc_stop_count_[static_cast<std::size_t>(s)];
}

int RoutePlan::multicast_max_hops(NodeId s) const {
  QUARC_REQUIRE(s >= 0 && s < topo_->num_nodes(), "source node out of range");
  return mc_max_hops_[static_cast<std::size_t>(s)];
}

std::uint64_t RoutePlan::structural_digest() const {
  // Byte-compatible with the structural topology digest historically
  // computed by the fingerprint layer from direct unicast_route() /
  // multicast_streams() calls: same field order, same "<int>;" mixing.
  // The frozen layout keeps every code version agreeing on what a given
  // wiring is named (cache entry *validity* across versions is governed
  // separately by kFingerprintSchemaVersion).
  std::uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](std::int64_t v) { h = fnv1a64(std::to_string(v) + ";", h); };
  const Topology& topo = *topo_;
  const int n = topo.num_nodes();
  mix(n);
  mix(topo.num_ports());
  for (const ChannelInfo& c : topo.channels()) {
    mix(static_cast<std::int64_t>(c.kind));
    mix(c.src);
    mix(c.dst);
    mix(c.port);
    mix(c.vcs);
    mix(c.dedicated ? 1 : 0);
  }
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const RouteView r = route(s, d);
      mix(r.port);
      mix(r.injection);
      for (const ChannelId link : r.links) mix(link);
      for (const std::uint8_t vc : r.link_vcs) mix(vc);
      mix(r.ejection);
    }
    for (std::size_t i = 0; i < stream_count(s); ++i) {
      const StreamView st = stream(s, i);
      mix(st.port);
      mix(st.injection);
      for (const ChannelId link : st.links) mix(link);
      for (const MulticastStop& stop : st.stops) {
        mix(stop.hop);
        mix(stop.node);
        mix(stop.ejection);
      }
    }
  }
  return h;
}

}  // namespace quarc
