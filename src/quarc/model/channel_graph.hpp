// Per-channel traffic rates and channel-to-channel transition rates — the
// input of the Eq. 6 service-time recursion:
//
//   lambda_j         total arrival rate at channel j
//   r_{i->j}         rate of traffic that uses channel j immediately after
//                    channel i (so P_{i->j} = r_{i->j} / lambda_i, and the
//                    self-traffic discount of Eq. 6 is r_{i->j}/lambda_j)
//
// Unicast: every (s,d) pair contributes lambda_u/(N-1) along its route.
// Multicast (hardware streams): every per-port stream contributes the full
// multicast rate along its path; clone absorptions at intermediate stops
// load the stop's ejection channel but add no transition edge — the
// forward link gates the worm's progress, the ejection clone is a leaf
// (matching the simulator's resource-acquisition order).
// Multicast on topologies without hardware support is expanded into the
// consecutive unicasts the traffic layer would send.
//
// A ChannelGraph is now a *scaled view* over a rate-invariant FlowGraph
// (flow_graph.hpp): all structure and unit weights live in the FlowGraph's
// CSR pools, and this class multiplies them by the workload's message rate
// on access. The FlowGraph constructor is allocation-free — the sweep hot
// path shares one FlowGraph across every rate point and never rebuilds
// anything. The RoutePlan/Topology constructors compile (and own) a
// private FlowGraph with the historical exact gating, so one-off graphs
// behave as they always did (a zero-rate workload yields an empty graph).
//
// Rows are sorted by next-channel id, so transition_rate(i, j) is
// O(log deg) instead of the historical linear scan.
#pragma once

#include <memory>
#include <span>
#include <utility>

#include "quarc/model/flow_graph.hpp"
#include "quarc/route/route_plan.hpp"
#include "quarc/topo/topology.hpp"
#include "quarc/traffic/workload.hpp"

namespace quarc {

class ChannelGraph {
 public:
  /// Iterable view of one channel's outgoing flows as (next channel, rate)
  /// pairs, scaled on the fly from the FlowGraph's unit-rate row.
  class FlowRange {
   public:
    FlowRange(std::span<const ChannelId> next, std::span<const double> unit, double scale)
        : next_(next), unit_(unit), scale_(scale) {}

    std::size_t size() const { return next_.size(); }
    bool empty() const { return next_.empty(); }
    std::pair<ChannelId, double> operator[](std::size_t k) const {
      return {next_[k], scale_ * unit_[k]};
    }

    class iterator {
     public:
      using value_type = std::pair<ChannelId, double>;
      iterator(const FlowRange* range, std::size_t k) : range_(range), k_(k) {}
      value_type operator*() const { return (*range_)[k_]; }
      iterator& operator++() {
        ++k_;
        return *this;
      }
      bool operator==(const iterator& o) const { return k_ == o.k_; }

     private:
      const FlowRange* range_;
      std::size_t k_;
    };
    iterator begin() const { return iterator(this, 0); }
    iterator end() const { return iterator(this, size()); }

    friend bool operator==(const FlowRange& a, const FlowRange& b) {
      if (a.size() != b.size()) return false;
      for (std::size_t k = 0; k < a.size(); ++k) {
        if (a[k] != b[k]) return false;
      }
      return true;
    }

   private:
    std::span<const ChannelId> next_;
    std::span<const double> unit_;
    double scale_;
  };

  /// Zero-allocation scaled view over a shared rate-invariant structure
  /// (the sweep hot path). The FlowGraph must outlive the view.
  ChannelGraph(const FlowGraph& flows, double message_rate)
      : flows_(&flows), scale_(message_rate) {}

  /// Compiles (and owns) an exact FlowGraph over `plan` for `load`. The
  /// plan must have been compiled with `load`'s pattern when the workload
  /// multicasts.
  ChannelGraph(const RoutePlan& plan, const Workload& load);
  /// Convenience: compiles a private plan for (topo, load.pattern) too.
  ChannelGraph(const Topology& topo, const Workload& load);

  /// Total arrival rate at channel c (messages/cycle).
  double lambda(ChannelId c) const { return scale_ * flows_->unit_lambda(c); }

  /// Rate of traffic taking j directly after i; 0 if no such flow.
  /// O(log deg) via the FlowGraph's sorted CSR row.
  double transition_rate(ChannelId i, ChannelId j) const {
    return scale_ * flows_->unit_transition_rate(i, j);
  }

  /// All outgoing flows of channel i as (next channel, rate) pairs,
  /// sorted by next-channel id.
  FlowRange outgoing(ChannelId i) const {
    return FlowRange(flows_->next(i), flows_->unit_rate(i), scale_);
  }

  /// Aggregate generation rate actually offered (for sanity checks):
  /// sum over injection channels of lambda.
  double total_injection_rate() const;

  /// The underlying rate-invariant structure.
  const FlowGraph& flow_graph() const { return *flows_; }
  /// The message rate the unit weights are scaled by.
  double scale() const { return scale_; }

 private:
  std::shared_ptr<const FlowGraph> owned_;  ///< set by the compat ctors
  const FlowGraph* flows_;
  double scale_;
};

}  // namespace quarc
