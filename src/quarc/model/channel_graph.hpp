// Per-channel traffic rates and channel-to-channel transition rates,
// accumulated from the deterministic routes of a (topology, workload)
// pair. This is the input of the Eq. 6 service-time recursion:
//
//   lambda_j         total arrival rate at channel j
//   r_{i->j}         rate of traffic that uses channel j immediately after
//                    channel i (so P_{i->j} = r_{i->j} / lambda_i, and the
//                    self-traffic discount of Eq. 6 is r_{i->j}/lambda_j)
//
// Unicast: every (s,d) pair contributes lambda_u/(N-1) along its route.
// Multicast (hardware streams): every per-port stream contributes the full
// multicast rate along its path; clone absorptions at intermediate stops
// load the stop's ejection channel but add no transition edge — the
// forward link gates the worm's progress, the ejection clone is a leaf
// (matching the simulator's resource-acquisition order).
// Multicast on topologies without hardware support is expanded into the
// consecutive unicasts the traffic layer would send.
//
// Routes come from a RoutePlan: construction is a pure scale-and-accumulate
// over the plan's precompiled link arrays — no route derivation and no
// per-route allocation on this path, which is re-entered at every rate
// point of a sweep. The Topology convenience constructor compiles a
// throwaway plan for one-off graphs.
#pragma once

#include <vector>

#include "quarc/route/route_plan.hpp"
#include "quarc/topo/topology.hpp"
#include "quarc/traffic/workload.hpp"

namespace quarc {

class ChannelGraph {
 public:
  /// Accumulates rates over `plan`'s routes/streams. The plan must have
  /// been compiled with `load`'s pattern when the workload multicasts.
  ChannelGraph(const RoutePlan& plan, const Workload& load);
  /// Convenience: compiles a plan for (topo, load.pattern) and accumulates
  /// over it. Sweeps share one plan via the RoutePlan overload instead.
  ChannelGraph(const Topology& topo, const Workload& load);

  /// Total arrival rate at channel c (messages/cycle).
  double lambda(ChannelId c) const { return lambda_[static_cast<std::size_t>(c)]; }

  /// Rate of traffic taking j directly after i; 0 if no such flow.
  double transition_rate(ChannelId i, ChannelId j) const;

  /// All outgoing flows of channel i as (next channel, rate) pairs.
  const std::vector<std::pair<ChannelId, double>>& outgoing(ChannelId i) const {
    return out_[static_cast<std::size_t>(i)];
  }

  /// Aggregate generation rate actually offered (for sanity checks):
  /// sum over injection channels of lambda.
  double total_injection_rate() const;

 private:
  void add_flow(ChannelId from, ChannelId to, double rate);
  void add_route(const RouteView& r, double rate);
  void add_stream(const StreamView& st, double rate);

  std::vector<double> lambda_;
  std::vector<std::vector<std::pair<ChannelId, double>>> out_;
  const Topology* topo_;
};

}  // namespace quarc
