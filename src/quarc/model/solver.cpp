#include "quarc/model/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "quarc/model/mg1.hpp"
#include "quarc/util/error.hpp"

namespace quarc {

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Converged:
      return "converged";
    case SolveStatus::Saturated:
      return "saturated";
    case SolveStatus::MaxIterationsReached:
      return "max-iterations";
  }
  return "unknown";
}

std::string to_string(SolverIteration it) {
  switch (it) {
    case SolverIteration::Anderson:
      return "anderson";
    case SolverIteration::GaussSeidel:
      return "gauss-seidel";
  }
  return "unknown";
}

ServiceTimeSolver::ServiceTimeSolver(const FlowGraph& flows, int message_length,
                                     SolverOptions options)
    : flows_(&flows), message_length_(message_length), options_(options) {
  QUARC_REQUIRE(message_length >= 1, "message length must be positive");
  QUARC_REQUIRE(options_.damping > 0.0 && options_.damping <= 1.0, "damping must be in (0,1]");
  QUARC_REQUIRE(options_.anderson_window >= 1 && options_.anderson_window <= 8,
                "anderson_window must be in [1, 8]");
}

ServiceTimeSolver::ServiceTimeSolver(const Topology& topo, const ChannelGraph& graph,
                                     int message_length, SolverOptions options)
    : ServiceTimeSolver(graph.flow_graph(), message_length, options) {
  QUARC_REQUIRE(&topo == &graph.flow_graph().topology(),
                "channel graph was built for a different topology");
  bound_rate_ = graph.scale();
}

SolveStatus ServiceTimeSolver::solve() {
  QUARC_REQUIRE(bound_rate_ >= 0.0,
                "no-argument solve() requires the ChannelGraph constructor (which binds the "
                "message rate); FlowGraph-constructed solvers must pass a rate");
  return solve(bound_rate_, own_);
}

bool ServiceTimeSolver::refresh_waits(std::vector<ChannelSolution>& sol) const {
  for (std::size_t c = 0; c < sol.size(); ++c) {
    ChannelSolution& s = sol[c];
    if (s.lambda <= 0.0) {
      s.waiting_time = 0.0;
      s.utilization = 0.0;
      continue;
    }
    s.utilization = mg1_utilization(s.lambda, s.service_time);
    if (s.utilization >= options_.utilization_guard) return true;
    s.waiting_time =
        mg1_waiting_time(s.lambda, s.service_time, service_sigma(s.service_time, message_length_));
    if (!std::isfinite(s.waiting_time)) return true;
  }
  return false;
}

double ServiceTimeSolver::gauss_seidel_sweep(std::vector<ChannelSolution>& sol) const {
  // Gauss-Seidel sweep of Eq. 6 with damping, directly over the CSR:
  // P_{i->j} and the self-share discount are precomputed per edge.
  const FlowGraph& flows = *flows_;
  double max_delta = 0.0;
  for (std::size_t c = 0; c < sol.size(); ++c) {
    const auto ch = static_cast<ChannelId>(c);
    if (flows.is_ejection(ch)) continue;  // fixed x = msg
    ChannelSolution& s = sol[c];
    if (s.lambda <= 0.0) continue;  // unused channel; x irrelevant
    const auto next = flows.next(ch);
    QUARC_ASSERT(!next.empty(), "loaded non-ejection channel has no next channel");
    const auto prob = flows.prob(ch);
    const auto share = flows.self_share(ch);

    double update = 0.0;
    for (std::size_t k = 0; k < next.size(); ++k) {
      const ChannelSolution& t = sol[static_cast<std::size_t>(next[k])];
      update += prob[k] * ((1.0 - share[k]) * t.waiting_time + t.service_time + 1.0);
    }
    const double damped = options_.damping * update + (1.0 - options_.damping) * s.service_time;
    max_delta = std::max(max_delta, std::abs(damped - s.service_time));
    s.service_time = damped;
  }
  return max_delta;
}

SolveStatus ServiceTimeSolver::solve(double message_rate, SolverWorkspace& ws, SolverSeed seed) {
  const FlowGraph& flows = *flows_;
  const std::size_t nch = flows.num_channels();
  const double msg = static_cast<double>(message_length_);

  auto& sol = ws.solution;
  sol.resize(nch);
  last_ = &ws;

  // Deterministic seed: every field of every entry is overwritten, so a
  // reused workspace can never leak state into the result. Idle channels
  // seed (and report) the drain-time floor either way.
  for (std::size_t c = 0; c < nch; ++c) {
    const double lambda = message_rate * flows.unit_lambda(static_cast<ChannelId>(c));
    double x0 = msg;
    if (seed == SolverSeed::ZeroLoad && lambda > 0.0) {
      x0 = msg + flows.steps_to_eject(static_cast<ChannelId>(c));
    }
    sol[c] = ChannelSolution{lambda, x0, 0.0, 0.0};
  }

  return run_iteration(ws);
}

SolveStatus ServiceTimeSolver::solve(double message_rate, SolverWorkspace& ws,
                                     std::span<const double> x0) {
  const FlowGraph& flows = *flows_;
  const std::size_t nch = flows.num_channels();
  QUARC_REQUIRE(x0.size() == nch, "seeded solve: x0 must have one entry per channel");
  const double msg = static_cast<double>(message_length_);

  auto& sol = ws.solution;
  sol.resize(nch);
  last_ = &ws;

  for (std::size_t c = 0; c < nch; ++c) {
    const auto ch = static_cast<ChannelId>(c);
    const double lambda = message_rate * flows.unit_lambda(ch);
    // Ejection channels are pinned at x = msg and idle channels never
    // iterate, exactly as in the closed-form seed; loaded channels take
    // the hint, clamped between the zero-load floor and strictly inside
    // the utilization guard. The upper clamp is what makes hints safe:
    // saturation is only ever diagnosed from genuine iterates, never
    // because an interpolated chord overshot rho past the guard before
    // the first sweep ran.
    double x = msg;
    if (!flows.is_ejection(ch) && lambda > 0.0) {
      x = x0[c];
      const double floor = msg + flows.steps_to_eject(ch);
      if (!(x >= floor)) x = floor;  // also catches NaN hints
      const double ceiling = options_.utilization_guard * (1.0 - 1e-3) / lambda;
      if (x > ceiling) x = std::max(floor, ceiling);
    }
    sol[c] = ChannelSolution{lambda, x, 0.0, 0.0};
  }

  const SolveStatus st = run_iteration(ws);
  if (st == SolveStatus::Converged) return st;
  // A hint must never make a solve report a WORSE status than the cold
  // start would (a pathological hint clamped against the utilization
  // ceiling can legitimately iterate into the guard even where the
  // zero-load start converges). Fall back to the closed-form seed and
  // keep both iteration counts on the bill — still a pure function of
  // (rate, hint), so determinism is unaffected.
  const int spent = iterations_used_;
  const SolveStatus cold = solve(message_rate, ws, SolverSeed::ZeroLoad);
  iterations_used_ += spent;
  return cold;
}

SolveStatus ServiceTimeSolver::run_iteration(SolverWorkspace& ws) {
  iterations_used_ = 0;
  if (options_.iteration == SolverIteration::GaussSeidel) return solve_gauss_seidel(ws);
  return solve_anderson(ws);
}

double ServiceTimeSolver::ordered_sweep(std::vector<ChannelSolution>& sol) const {
  // Undamped nonlinear Gauss-Seidel in the FlowGraph's downwind order:
  // every channel reads already-updated downstream values (wait included,
  // refreshed in place right after each x update), so ejection-anchored
  // information crosses the whole network in one pass and only the
  // cycle-closing back edges carry stale state. This is what collapses
  // the id-order iteration's ring-of-eigenvalues (one hop of progress
  // per sweep) into a handful of sweeps — see FlowGraph::sweep_order().
  //
  // Safeguards: an updated channel whose utilisation would reach the
  // guard keeps its previous wait (the surrounding refresh_waits pass is
  // the single place saturation is diagnosed), and the in-place wait is
  // recomputed only from genuine Eq. 6 updates, keeping every quantity a
  // pure function of the iterate.
  const FlowGraph& flows = *flows_;
  double max_delta = 0.0;
  for (const ChannelId ch : flows.sweep_order()) {
    const auto c = static_cast<std::size_t>(ch);
    ChannelSolution& s = sol[c];
    const auto next = flows.next(ch);
    QUARC_ASSERT(!next.empty(), "loaded non-ejection channel has no next channel");
    const auto prob = flows.prob(ch);
    const auto share = flows.self_share(ch);

    double update = 0.0;
    for (std::size_t k = 0; k < next.size(); ++k) {
      const ChannelSolution& t = sol[static_cast<std::size_t>(next[k])];
      update += prob[k] * ((1.0 - share[k]) * t.waiting_time + t.service_time + 1.0);
    }
    max_delta = std::max(max_delta, std::abs(update - s.service_time));
    s.service_time = update;
    if (mg1_utilization(s.lambda, update) < options_.utilization_guard) {
      s.waiting_time =
          mg1_waiting_time(s.lambda, update, service_sigma(update, message_length_));
    }
  }
  return max_delta;
}

SolveStatus ServiceTimeSolver::solve_gauss_seidel(SolverWorkspace& ws) {
  // The historical iteration, byte-for-byte: refresh waits, damped sweep,
  // converge on the sweep residual (with a final wait refresh so callers
  // see W consistent with the converged x).
  auto& sol = ws.solution;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    iterations_used_ = iter + 1;
    if (refresh_waits(sol)) return SolveStatus::Saturated;
    const double max_delta = gauss_seidel_sweep(sol);
    if (max_delta < options_.tolerance) {
      if (refresh_waits(sol)) return SolveStatus::Saturated;
      return SolveStatus::Converged;
    }
  }
  return SolveStatus::MaxIterationsReached;
}

SolveStatus ServiceTimeSolver::solve_anderson(SolverWorkspace& ws) {
  auto& sol = ws.solution;
  const FlowGraph& flows = *flows_;
  const double msg = static_cast<double>(message_length_);

  // Active set: exactly the components the damped sweep updates. Ejection
  // channels are pinned at x = msg and idle channels never move, so the
  // extrapolation must not touch either.
  ws.aa_active.clear();
  for (std::size_t c = 0; c < sol.size(); ++c) {
    if (!flows.is_ejection(static_cast<ChannelId>(c)) && sol[c].lambda > 0.0) {
      ws.aa_active.push_back(static_cast<std::uint32_t>(c));
    }
  }
  const std::size_t na = ws.aa_active.size();
  const int window = options_.anderson_window;  // ctor-validated to [1, 8]
  const std::size_t rows = static_cast<std::size_t>(window) + 1;
  // Full reseed of the history ring: contents and counters never survive
  // across solves, so workspace reuse cannot change a byte.
  ws.aa_x.assign(na, 0.0);
  ws.aa_g.assign(rows * na, 0.0);
  ws.aa_f.assign(rows * na, 0.0);

  int hist = 0;       // valid consecutive history rows ending at `newest`
  int head = 0;       // ring slot the next row is written to
  double beta = 1.0;  // adaptive mixing; shrinks when extrapolation misbehaves
  double prev_rnorm2 = std::numeric_limits<double>::infinity();
  // Effective extrapolation depth. Fixed at the configured window
  // historically; under auto-tuning it starts at secant depth and adapts
  // to the measured contraction below — slow contraction (the
  // near-saturation regime) earns a deeper window, fast contraction
  // sheds history that the least-squares model would only overfit.
  int w_eff = options_.anderson_auto_window ? 1 : window;

  const int nrows = static_cast<int>(rows);
  const auto row_f = [&](int r) { return ws.aa_f.data() + static_cast<std::size_t>(r) * na; };
  const auto row_g = [&](int r) { return ws.aa_g.data() + static_cast<std::size_t>(r) * na; };
  const auto ring = [nrows](int r) { return ((r % nrows) + nrows) % nrows; };

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    iterations_used_ = iter + 1;
    if (refresh_waits(sol)) return SolveStatus::Saturated;
    for (std::size_t k = 0; k < na; ++k) {
      ws.aa_x[k] = sol[ws.aa_active[k]].service_time;
    }
    const double max_delta = ordered_sweep(sol);
    if (max_delta < options_.tolerance) {
      // Same convergence criterion family and final wait refresh as the
      // historical iteration: the accepted x is always a swept iterate
      // (the sweep is undamped, so the criterion is if anything stricter).
      if (refresh_waits(sol)) return SolveStatus::Saturated;
      return SolveStatus::Converged;
    }

    // Record this sweep's (g, f = g - x) pair.
    const int newest = head;
    double* g = row_g(newest);
    double* f = row_f(newest);
    double rnorm2 = 0.0;
    for (std::size_t k = 0; k < na; ++k) {
      g[k] = sol[ws.aa_active[k]].service_time;
      f[k] = g[k] - ws.aa_x[k];
      rnorm2 += f[k] * f[k];
    }
    // Adaptive damping + restart: a growing residual means the window's
    // linear model stopped describing the map — drop the stale history
    // and mix the next extrapolation softer; steady progress relaxes the
    // mixing back toward a full Anderson step.
    if (rnorm2 > 4.0 * prev_rnorm2) {
      hist = 0;
      beta = std::max(0.25, 0.5 * beta);
    } else if (rnorm2 <= prev_rnorm2) {
      beta = std::min(1.0, 1.25 * beta);
    }
    // Window auto-tuning from the measured contraction (norm ratio per
    // sweep, compared in squared form): above 0.5 per sweep the plain
    // sweep is slow — deepen the window toward the configured cap so the
    // extrapolation has more directions to cancel the slow modes; below
    // 0.1 the sweep is doing fine on its own and older rows describe a
    // regime the iterate already left. A pure function of the residual
    // trajectory, so solves stay deterministic.
    if (options_.anderson_auto_window && std::isfinite(prev_rnorm2) && prev_rnorm2 > 0.0) {
      if (rnorm2 > 0.25 * prev_rnorm2) {
        w_eff = std::min(w_eff + 1, window);
      } else if (rnorm2 < 0.01 * prev_rnorm2) {
        w_eff = std::max(1, w_eff - 1);
      }
    }
    prev_rnorm2 = rnorm2;
    head = ring(head + 1);
    hist = std::min(hist + 1, static_cast<int>(rows));

    const int cols = std::min(hist - 1, w_eff);
    if (cols < 1 || na == 0) continue;

    // Anderson mixing over the last `cols` residual differences:
    // gamma = argmin || f_newest - dF gamma ||_2 via the (tiny) normal
    // equations, solved by Gaussian elimination with partial pivoting —
    // deterministic, no allocation.
    const auto df = [&](int p, std::size_t k) {
      // p-th difference column, newest-first: f_{i-p+1} - f_{i-p}.
      return row_f(ring(newest - p + 1))[k] - row_f(ring(newest - p))[k];
    };
    double nm[8][9];  // [cols x cols | rhs]
    for (int p = 1; p <= cols; ++p) {
      for (int q = p; q <= cols; ++q) {
        double dot = 0.0;
        for (std::size_t k = 0; k < na; ++k) dot += df(p, k) * df(q, k);
        nm[p - 1][q - 1] = dot;
        nm[q - 1][p - 1] = dot;
      }
      double dot = 0.0;
      for (std::size_t k = 0; k < na; ++k) dot += df(p, k) * f[k];
      nm[p - 1][cols] = dot;
    }
    // Tikhonov floor keeps near-collinear windows solvable without
    // blowing up gamma (and keeps the elimination deterministic).
    double diag_max = 0.0;
    for (int p = 0; p < cols; ++p) diag_max = std::max(diag_max, nm[p][p]);
    if (diag_max <= 0.0) continue;
    for (int p = 0; p < cols; ++p) nm[p][p] += 1e-12 * diag_max;

    bool singular = false;
    for (int p = 0; p < cols && !singular; ++p) {
      int pivot = p;
      for (int r = p + 1; r < cols; ++r) {
        if (std::abs(nm[r][p]) > std::abs(nm[pivot][p])) pivot = r;
      }
      if (std::abs(nm[pivot][p]) < 1e-30 * diag_max) {
        singular = true;
        break;
      }
      if (pivot != p) {
        for (int q = p; q <= cols; ++q) std::swap(nm[p][q], nm[pivot][q]);
      }
      for (int r = p + 1; r < cols; ++r) {
        const double factor = nm[r][p] / nm[p][p];
        for (int q = p; q <= cols; ++q) nm[r][q] -= factor * nm[p][q];
      }
    }
    if (singular) continue;
    double gamma[8];
    for (int p = cols - 1; p >= 0; --p) {
      double v = nm[p][cols];
      for (int q = p + 1; q < cols; ++q) v -= nm[p][q] * gamma[q];
      gamma[p] = v / nm[p][p];
    }

    // Candidate iterate, beta-mixed:
    //   x+ = (1-beta) (x - dX gamma) + beta (g - dG gamma),  dX = dG - dF.
    // Built into aa_x (this iteration's snapshot is no longer needed) so
    // the safeguard can inspect it in full before sol is touched.
    for (std::size_t k = 0; k < na; ++k) {
      double dg_gamma = 0.0;
      double df_gamma = 0.0;
      for (int p = 1; p <= cols; ++p) {
        const double dfk = df(p, k);
        const double dgk = row_g(ring(newest - p + 1))[k] - row_g(ring(newest - p))[k];
        dg_gamma += gamma[p - 1] * dgk;
        df_gamma += gamma[p - 1] * dfk;
      }
      const double accel_x = ws.aa_x[k] - (dg_gamma - df_gamma);
      const double accel_g = g[k] - dg_gamma;
      ws.aa_x[k] = (1.0 - beta) * accel_x + beta * accel_g;
    }

    // Safeguard: the extrapolated iterate must be finite, respect the
    // drain-time floor and stay strictly inside the utilization guard on
    // every channel — otherwise keep the (always valid) damped sweep
    // iterate and restart the window with a softer mix. Saturation thus
    // can never be declared from an extrapolated point.
    bool valid = true;
    for (std::size_t k = 0; k < na && valid; ++k) {
      const double v = ws.aa_x[k];
      const ChannelSolution& s = sol[ws.aa_active[k]];
      valid = std::isfinite(v) && v >= msg &&
              mg1_utilization(s.lambda, v) < options_.utilization_guard;
    }
    if (!valid) {
      hist = 1;  // keep only the newest pair; the window was misleading
      beta = std::max(0.25, 0.5 * beta);
      continue;
    }
    for (std::size_t k = 0; k < na; ++k) {
      sol[ws.aa_active[k]].service_time = ws.aa_x[k];
    }
  }
  return SolveStatus::MaxIterationsReached;
}

std::span<const LaneResult> ServiceTimeSolver::solve_batch(std::span<const double> rates,
                                                           CurveWorkspace& cw,
                                                           std::span<const double> x0) {
  const FlowGraph& flows = *flows_;
  const std::size_t K = rates.size();
  const std::size_t nch = flows.num_channels();
  QUARC_REQUIRE(K >= 1, "solve_batch needs at least one rate point");
  for (const double r : rates) {
    QUARC_REQUIRE(r > 0.0, "solve_batch lanes must have positive rates");
  }
  QUARC_REQUIRE(x0.empty() || x0.size() == K * nch,
                "seeded solve_batch: x0 must be lane-major with one entry per (lane, channel)");
  const double msg = static_cast<double>(message_length_);

  cw.lanes = K;
  cw.channels = nch;
  cw.lambda.resize(nch * K);
  cw.service_time.resize(nch * K);
  cw.waiting_time.resize(nch * K);
  cw.utilization.resize(nch * K);
  cw.results.assign(K, LaneResult{});

  // solve_batch leaves the scalar accessors alone: per-lane results live
  // in the workspace, and a prior scalar solve's channels() must survive
  // a batch (the GaussSeidel lane loop below reuses the scalar solve).
  const SolverWorkspace* const saved_last = last_;
  const int saved_iterations = iterations_used_;

  if (options_.iteration == SolverIteration::GaussSeidel) {
    // The historical oracle stays scalar per lane: it exists to BE the
    // byte-identity baseline, so it runs the baseline.
    for (std::size_t l = 0; l < K; ++l) {
      const SolveStatus st =
          x0.empty() ? solve(rates[l], cw.scalar)
                     : solve(rates[l], cw.scalar, x0.subspan(l * nch, nch));
      cw.results[l] = LaneResult{st, iterations_used_};
      for (std::size_t c = 0; c < nch; ++c) {
        const ChannelSolution& s = cw.scalar.solution[c];
        const std::size_t at = c * K + l;
        cw.lambda[at] = s.lambda;
        cw.service_time[at] = s.service_time;
        cw.waiting_time[at] = s.waiting_time;
        cw.utilization[at] = s.utilization;
      }
    }
    last_ = saved_last;
    iterations_used_ = saved_iterations;
    return {cw.results.data(), cw.results.size()};
  }

  // Seed every lane exactly as the scalar solves would.
  for (std::size_t c = 0; c < nch; ++c) {
    const auto ch = static_cast<ChannelId>(c);
    const double ul = flows.unit_lambda(ch);
    const double steps = flows.steps_to_eject(ch);
    const bool ejection = flows.is_ejection(ch);
    const std::size_t row = c * K;
    for (std::size_t l = 0; l < K; ++l) {
      const double lambda = rates[l] * ul;
      double x = msg;
      if (x0.empty()) {
        if (lambda > 0.0) x = msg + steps;  // SolverSeed::ZeroLoad
      } else if (!ejection && lambda > 0.0) {
        x = x0[l * nch + c];
        const double floor = msg + steps;
        if (!(x >= floor)) x = floor;  // also catches NaN hints
        const double ceiling = options_.utilization_guard * (1.0 - 1e-3) / lambda;
        if (x > ceiling) x = std::max(floor, ceiling);
      }
      cw.lambda[row + l] = lambda;
      cw.service_time[row + l] = x;
      cw.waiting_time[row + l] = 0.0;
      cw.utilization[row + l] = 0.0;
    }
  }

  anderson_batch(cw);

  if (!x0.empty()) {
    // Per-lane seeded fallback: exactly the scalar seeded solve's "a hint
    // can never worsen a status" clause — non-converged lanes re-solve as
    // a zero-load sub-batch, iteration counts accumulating.
    cw.retry_lanes.clear();
    for (std::size_t l = 0; l < K; ++l) {
      if (cw.results[l].status != SolveStatus::Converged) cw.retry_lanes.push_back(l);
    }
    if (!cw.retry_lanes.empty()) {
      if (!cw.fallback) cw.fallback = std::make_unique<CurveWorkspace>();
      const std::size_t Ksub = cw.retry_lanes.size();
      cw.retry_rates.resize(Ksub);
      for (std::size_t j = 0; j < Ksub; ++j) cw.retry_rates[j] = rates[cw.retry_lanes[j]];
      const std::span<const LaneResult> sub = solve_batch(cw.retry_rates, *cw.fallback);
      for (std::size_t c = 0; c < nch; ++c) {
        const std::size_t src = c * Ksub;
        const std::size_t dst = c * K;
        for (std::size_t j = 0; j < Ksub; ++j) {
          const std::size_t l = cw.retry_lanes[j];
          cw.lambda[dst + l] = cw.fallback->lambda[src + j];
          cw.service_time[dst + l] = cw.fallback->service_time[src + j];
          cw.waiting_time[dst + l] = cw.fallback->waiting_time[src + j];
          cw.utilization[dst + l] = cw.fallback->utilization[src + j];
        }
      }
      for (std::size_t j = 0; j < Ksub; ++j) {
        LaneResult& r = cw.results[cw.retry_lanes[j]];
        r.status = sub[j].status;
        r.iterations += sub[j].iterations;
      }
    }
  }

  last_ = saved_last;
  iterations_used_ = saved_iterations;
  return {cw.results.data(), cw.results.size()};
}

void ServiceTimeSolver::refresh_waits_batch(CurveWorkspace& cw,
                                            const std::vector<std::uint8_t>& mask,
                                            std::vector<std::uint8_t>& saturated) const {
  const FlowGraph& flows = *flows_;
  const std::size_t K = cw.lanes;
  // Live-lane window: masks (active or conv) are only ever set inside it.
  const std::size_t lo = cw.lane_lo;
  const std::size_t hi = cw.lane_hi;
  const double guard = options_.utilization_guard;
  saturated.assign(K, 0);
  auto& stopped = cw.stopped;
  stopped.assign(K, 0);
  std::size_t live = 0;
  for (std::size_t l = lo; l < hi; ++l) live += mask[l] != 0;
  const double* const __restrict lambda = cw.lambda.data();
  double* const __restrict x = cw.service_time.data();
  double* const __restrict w = cw.waiting_time.data();
  double* const __restrict rho = cw.utilization.data();
  const double msg = static_cast<double>(message_length_);
  // Dense fast path: while the mask covers the whole window and no lane
  // has stopped, the per-channel lane loops run mask-free and branch-free
  // so the M/G/1 divisions vectorize across lanes. rho is stored for
  // every lane first (exactly what the scalar order does — each lane
  // stores rho before its guard check), then a cheap scalar scan decides
  // whether any lane stops here; only then is W written. The first stop
  // event falls back to the masked loop for the remaining channels —
  // identical arithmetic, lane for lane.
  bool clean = live == hi - lo && live > 0;
  for (std::size_t c = 0; c < cw.channels && live > 0; ++c) {
    const std::size_t row = c * K;
    if (flows.unit_lambda(static_cast<ChannelId>(c)) <= 0.0) {
      // lambda <= 0 in every lane (all rates positive): the scalar path's
      // idle-channel reset, lane for lane.
      if (clean) {
        for (std::size_t l = lo; l < hi; ++l) {
          w[row + l] = 0.0;
          rho[row + l] = 0.0;
        }
        continue;
      }
      for (std::size_t l = lo; l < hi; ++l) {
        if (mask[l] != 0 && stopped[l] == 0) {
          w[row + l] = 0.0;
          rho[row + l] = 0.0;
        }
      }
      continue;
    }
    if (clean) {
      for (std::size_t l = lo; l < hi; ++l) {
        rho[row + l] = std::max(0.0, lambda[row + l] * x[row + l]);
      }
      bool guarded = false;
      for (std::size_t l = lo; l < hi; ++l) guarded = guarded || rho[row + l] >= guard;
      if (!guarded) {
        // All lanes passed the guard: lambda > 0 and rho < guard <= 1
        // make mg1_waiting_time exactly its closed form (the rho >= 1
        // select covers a caller-widened guard), so the division runs
        // once per vector of lanes.
        const double inf = std::numeric_limits<double>::infinity();
        for (std::size_t l = lo; l < hi; ++l) {
          const double xv = x[row + l];
          const double sig = std::max(0.0, xv - msg);
          const double w_raw =
              lambda[row + l] * (xv * xv + sig * sig) / (2.0 * (1.0 - rho[row + l]));
          w[row + l] = rho[row + l] >= 1.0 ? inf : w_raw;
        }
        bool finite = true;
        for (std::size_t l = lo; l < hi; ++l) finite = finite && std::isfinite(w[row + l]);
        if (finite) continue;
        for (std::size_t l = lo; l < hi; ++l) {
          if (!std::isfinite(w[row + l])) {
            stopped[l] = 1;
            saturated[l] = 1;
            --live;
          }
        }
        clean = false;
        continue;
      }
      // Some lane hit the guard at this channel: finish it lane by lane
      // (rho is already stored with the scalar's values) and run the
      // remaining channels masked.
      for (std::size_t l = lo; l < hi; ++l) {
        if (rho[row + l] >= guard) {
          // The scalar early return: rho is stored, W stays stale, and
          // no later channel of this lane is touched.
          stopped[l] = 1;
          saturated[l] = 1;
          --live;
          continue;
        }
        const double w_v = mg1_waiting_time(lambda[row + l], x[row + l],
                                            service_sigma(x[row + l], message_length_));
        w[row + l] = w_v;
        if (!std::isfinite(w_v)) {
          stopped[l] = 1;
          saturated[l] = 1;
          --live;
        }
      }
      clean = false;
      continue;
    }
    for (std::size_t l = lo; l < hi; ++l) {
      if (mask[l] == 0 || stopped[l] != 0) continue;
      const double rho_v = mg1_utilization(lambda[row + l], x[row + l]);
      rho[row + l] = rho_v;
      if (rho_v >= guard) {
        // The scalar early return: rho is stored, W stays stale, and no
        // later channel of this lane is touched.
        stopped[l] = 1;
        saturated[l] = 1;
        --live;
        continue;
      }
      const double w_v = mg1_waiting_time(lambda[row + l], x[row + l],
                                          service_sigma(x[row + l], message_length_));
      w[row + l] = w_v;
      if (!std::isfinite(w_v)) {
        stopped[l] = 1;
        saturated[l] = 1;
        --live;
      }
    }
  }
}

void ServiceTimeSolver::ordered_sweep_batch(CurveWorkspace& cw) const {
  const FlowGraph& flows = *flows_;
  const std::size_t K = cw.lanes;
  // Live-lane window: lanes outside it are retired; their upd would be
  // computed and discarded, so the dense loops skip them outright.
  const std::size_t lo = cw.lane_lo;
  const std::size_t hi = cw.lane_hi;
  const double guard = options_.utilization_guard;
  const double* const __restrict lambda = cw.lambda.data();
  double* const __restrict x = cw.service_time.data();
  double* const __restrict w = cw.waiting_time.data();
  double* const __restrict upd = cw.upd.data();
  double* const __restrict delta = cw.delta.data();
  const std::uint8_t* const __restrict active = cw.active.data();
  const double msg = static_cast<double>(message_length_);
  // Dense fast path: while every window lane is active, the commit loop
  // below drops the per-lane mask and runs the M/G/1 update branch-free —
  // mg1_utilization/service_sigma expand to max() and mg1_waiting_time to
  // its closed form with its two early returns as selects (lambda <= 0
  // => 0, rho >= 1 => +inf; both value-exact for every input) — so the
  // whole commit, division included, vectorizes across lanes. Any
  // retired lane inside the window forces the masked loop, which is the
  // same arithmetic lane for lane.
  bool dense = true;
  for (std::size_t l = lo; l < hi; ++l) dense = dense && active[l] != 0;
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t l = lo; l < hi; ++l) delta[l] = 0.0;
  for (const ChannelId ch : flows.sweep_order()) {
    const std::size_t row = static_cast<std::size_t>(ch) * K;
    const auto next = flows.next(ch);
    QUARC_ASSERT(!next.empty(), "loaded non-ejection channel has no next channel");
    const auto prob = flows.prob(ch);
    const auto share = flows.self_share(ch);
    // The flops-dense lane loop: contiguous, unconditional within the
    // window (retired in-window lanes compute and discard — their pools
    // are never written), exactly the scalar accumulation order per lane.
    for (std::size_t l = lo; l < hi; ++l) upd[l] = 0.0;
    for (std::size_t k = 0; k < next.size(); ++k) {
      const std::size_t trow = static_cast<std::size_t>(next[k]) * K;
      const double pk = prob[k];
      const double sk = 1.0 - share[k];
      for (std::size_t l = lo; l < hi; ++l) {
        upd[l] += pk * (sk * w[trow + l] + x[trow + l] + 1.0);
      }
    }
    if (dense) {
      for (std::size_t l = lo; l < hi; ++l) {
        const double u = upd[l];
        const double ad = std::abs(u - x[row + l]);
        delta[l] = std::max(delta[l], ad);
        x[row + l] = u;
        const double lam = lambda[row + l];
        const double rho = std::max(0.0, lam * u);
        const double sig = std::max(0.0, u - msg);
        const double w_raw = lam * (u * u + sig * sig) / (2.0 * (1.0 - rho));
        const double w_v = lam <= 0.0 ? 0.0 : (rho >= 1.0 ? inf : w_raw);
        w[row + l] = rho < guard ? w_v : w[row + l];
      }
      continue;
    }
    for (std::size_t l = lo; l < hi; ++l) {
      if (active[l] == 0) continue;  // frozen lanes keep their bytes
      const double u = upd[l];
      delta[l] = std::max(delta[l], std::abs(u - x[row + l]));
      x[row + l] = u;
      if (mg1_utilization(lambda[row + l], u) < guard) {
        w[row + l] = mg1_waiting_time(lambda[row + l], u, service_sigma(u, message_length_));
      }
    }
  }
}

void ServiceTimeSolver::anderson_batch(CurveWorkspace& cw) {
  // The scalar solve_anderson, lane-parallel. Anderson state splits two
  // ways: the history ring HEAD advances unconditionally every iteration
  // in the scalar algorithm, so it is a pure function of the iteration
  // index and stays SHARED across lanes (all active lanes sit at the same
  // iteration); everything adaptive — hist, beta, w_eff, prev_rnorm2 —
  // depends on the lane's own residual trajectory and is per-lane. Rows
  // are laid out [ring][k][lane] so the dot products and extrapolation
  // run k-outer, lane-inner: per lane the accumulation order over k is
  // exactly the scalar's.
  const FlowGraph& flows = *flows_;
  const std::size_t K = cw.lanes;
  const double msg = static_cast<double>(message_length_);
  const double guard = options_.utilization_guard;

  // Active channel set: lane-invariant, because every lane's rate is
  // positive (lambda > 0 iff unit_lambda > 0 — the solve_batch REQUIRE).
  cw.aa_active.clear();
  for (std::size_t c = 0; c < cw.channels; ++c) {
    if (!flows.is_ejection(static_cast<ChannelId>(c)) &&
        flows.unit_lambda(static_cast<ChannelId>(c)) > 0.0) {
      cw.aa_active.push_back(static_cast<std::uint32_t>(c));
    }
  }
  const std::size_t na = cw.aa_active.size();
  const int window = options_.anderson_window;  // ctor-validated to [1, 8]
  const std::size_t rows = static_cast<std::size_t>(window) + 1;
  cw.aa_x.assign(na * K, 0.0);
  cw.aa_g.assign(rows * na * K, 0.0);
  cw.aa_f.assign(rows * na * K, 0.0);
  cw.upd.resize(K);
  cw.delta.resize(K);
  cw.rnorm2.resize(K);
  cw.nm_dot.resize(64 * K);
  cw.nm_rhs.resize(8 * K);
  cw.gamma.assign(8 * K, 0.0);
  cw.dg_gamma.resize(K);
  cw.df_gamma.resize(K);
  cw.active.assign(K, 1);
  cw.hist.assign(K, 0);
  cw.beta.assign(K, 1.0);
  cw.prev_rnorm2.assign(K, std::numeric_limits<double>::infinity());
  cw.w_eff.assign(K, options_.anderson_auto_window ? 1 : window);
  cw.cols.assign(K, 0);
  cw.conv.resize(K);
  cw.extrap.resize(K);
  cw.valid.resize(K);
  cw.lane_lo = 0;
  cw.lane_hi = K;

  // Re-tightens [lane_lo, lane_hi) to the smallest range holding every
  // active lane; called after each retirement pass so the dense lane
  // loops stop paying for lanes that are done. Purely a work-skipping
  // bound — no live lane's arithmetic changes (see CurveWorkspace).
  const auto shrink_window = [&cw, K] {
    std::size_t lo = 0;
    std::size_t hi = K;
    while (lo < hi && cw.active[lo] == 0) ++lo;
    while (hi > lo && cw.active[hi - 1] == 0) --hi;
    cw.lane_lo = lo;
    cw.lane_hi = hi;
  };

  int head = 0;
  std::size_t remaining = K;
  const int nrows = static_cast<int>(rows);
  const auto ring = [nrows](int r) { return ((r % nrows) + nrows) % nrows; };
  const auto row_g = [&](int r) {
    return cw.aa_g.data() + static_cast<std::size_t>(r) * na * K;
  };
  const auto row_f = [&](int r) {
    return cw.aa_f.data() + static_cast<std::size_t>(r) * na * K;
  };

  for (int iter = 0; iter < options_.max_iterations && remaining > 0; ++iter) {
    for (std::size_t l = 0; l < K; ++l) {
      if (cw.active[l] != 0) cw.results[l].iterations = iter + 1;
    }
    refresh_waits_batch(cw, cw.active, cw.saturated);
    for (std::size_t l = 0; l < K; ++l) {
      if (cw.active[l] != 0 && cw.saturated[l] != 0) {
        cw.results[l].status = SolveStatus::Saturated;
        cw.active[l] = 0;
        --remaining;
      }
    }
    if (remaining == 0) break;
    shrink_window();
    const std::size_t lo = cw.lane_lo;
    const std::size_t hi = cw.lane_hi;

    {
      // Scoped __restrict: within this block aa_x is written only through
      // `snap` and service_time read only through `xs` (distinct pools),
      // so the lane loop vectorizes without runtime alias versioning.
      double* const __restrict snap = cw.aa_x.data();
      const double* const __restrict xs = cw.service_time.data();
      for (std::size_t k = 0; k < na; ++k) {
        const std::size_t row = static_cast<std::size_t>(cw.aa_active[k]) * K;
        const std::size_t o = k * K;
        for (std::size_t l = lo; l < hi; ++l) snap[o + l] = xs[row + l];
      }
    }
    ordered_sweep_batch(cw);
    bool any_conv = false;
    for (std::size_t l = lo; l < hi; ++l) {
      cw.conv[l] = static_cast<std::uint8_t>(cw.active[l] != 0 &&
                                             cw.delta[l] < options_.tolerance);
      any_conv = any_conv || cw.conv[l] != 0;
    }
    if (any_conv) {
      // The scalar convergence path: one final wait refresh, which may
      // still diagnose saturation. conv is only populated inside the
      // window, and refresh reads masks through the window alone.
      refresh_waits_batch(cw, cw.conv, cw.saturated);
      for (std::size_t l = lo; l < hi; ++l) {
        if (cw.conv[l] == 0) continue;
        cw.results[l].status =
            cw.saturated[l] != 0 ? SolveStatus::Saturated : SolveStatus::Converged;
        cw.active[l] = 0;
        --remaining;
      }
      if (remaining == 0) break;
      shrink_window();
    }

    // The conv retirement may have tightened the window; the rest of the
    // iteration works on the fresh bounds.
    const std::size_t wlo = cw.lane_lo;
    const std::size_t whi = cw.lane_hi;

    // Record this sweep's (g, f) rows — written for every window lane
    // (the lane stride keeps rows contiguous); retired lanes' rows are
    // never read.
    const int newest = head;
    double* const g = row_g(newest);
    double* const f = row_f(newest);
    {
      // Scoped __restrict: this block writes the newest aa_g/aa_f rows
      // and rnorm2 through these pointers only, and reads distinct pools.
      double* const __restrict gw = g;
      double* const __restrict fw = f;
      double* const __restrict rn2 = cw.rnorm2.data();
      const double* const __restrict ax = cw.aa_x.data();
      const double* const __restrict xs = cw.service_time.data();
      for (std::size_t l = wlo; l < whi; ++l) rn2[l] = 0.0;
      for (std::size_t k = 0; k < na; ++k) {
        const std::size_t row = static_cast<std::size_t>(cw.aa_active[k]) * K;
        const std::size_t o = k * K;
        for (std::size_t l = wlo; l < whi; ++l) {
          const double gv = xs[row + l];
          gw[o + l] = gv;
          const double fv = gv - ax[o + l];
          fw[o + l] = fv;
          rn2[l] += fv * fv;
        }
      }
    }
    int cmax = 0;
    for (std::size_t l = 0; l < K; ++l) {
      if (cw.active[l] == 0) {
        cw.cols[l] = 0;
        continue;
      }
      const double rn = cw.rnorm2[l];
      const double prev = cw.prev_rnorm2[l];
      if (rn > 4.0 * prev) {
        cw.hist[l] = 0;
        cw.beta[l] = std::max(0.25, 0.5 * cw.beta[l]);
      } else if (rn <= prev) {
        cw.beta[l] = std::min(1.0, 1.25 * cw.beta[l]);
      }
      if (options_.anderson_auto_window && std::isfinite(prev) && prev > 0.0) {
        if (rn > 0.25 * prev) {
          cw.w_eff[l] = std::min(cw.w_eff[l] + 1, window);
        } else if (rn < 0.01 * prev) {
          cw.w_eff[l] = std::max(1, cw.w_eff[l] - 1);
        }
      }
      cw.prev_rnorm2[l] = rn;
      cw.hist[l] = std::min(cw.hist[l] + 1, nrows);
      cw.cols[l] = std::min(cw.hist[l] - 1, cw.w_eff[l]);
      cmax = std::max(cmax, cw.cols[l]);
    }
    head = ring(head + 1);
    if (cmax < 1 || na == 0) continue;

    // Normal-equation dot products for every lane at once, k-outer with
    // every (p,q) pair folded into the single channel pass: each history
    // row segment is loaded once per channel instead of once per pair
    // (the pairwise form re-streams the f rows ~(cmax+1)/2 times, and the
    // history pool is the largest thing the solver touches). Per (p,q)
    // and per lane the accumulation order over k is unchanged, and the
    // difference tile holds exactly the values the pairwise loop
    // recomputed, so every partial sum is byte-identical. Lanes with
    // cols[l] < cmax simply ignore the extra entries.
    double* const dot = cw.nm_dot.data();
    double* const rhs = cw.nm_rhs.data();
    const double* fa_rows[9];
    const double* fb_rows[9];
    for (int p = 1; p <= cmax; ++p) {
      fa_rows[p] = row_f(ring(newest - p + 1));
      fb_rows[p] = row_f(ring(newest - p));
      for (int q = p; q <= cmax; ++q) {
        double* const d =
            dot + (static_cast<std::size_t>(p - 1) * 8 + static_cast<std::size_t>(q - 1)) * K;
        for (std::size_t l = wlo; l < whi; ++l) d[l] = 0.0;
      }
      double* const r = rhs + static_cast<std::size_t>(p - 1) * K;
      for (std::size_t l = wlo; l < whi; ++l) r[l] = 0.0;
    }
    for (std::size_t k = 0; k < na; ++k) {
      const std::size_t o = k * K;
      double diff[8][8];
      for (int p = 1; p <= cmax; ++p) {
        const double* const fa = fa_rows[p];
        const double* const fb = fb_rows[p];
        for (std::size_t l = wlo; l < whi; ++l) diff[p - 1][l] = fa[o + l] - fb[o + l];
      }
      for (int p = 1; p <= cmax; ++p) {
        // Only the accumulators are __restrict: the f-row pointers may
        // legitimately alias each other, but they are read-only here, so
        // the promise that writes through `d`/`r` touch nothing else is
        // all the vectorizer needs (no runtime alias versioning).
        for (int q = p; q <= cmax; ++q) {
          double* const __restrict d =
              dot +
              (static_cast<std::size_t>(p - 1) * 8 + static_cast<std::size_t>(q - 1)) * K;
          for (std::size_t l = wlo; l < whi; ++l) d[l] += diff[p - 1][l] * diff[q - 1][l];
        }
        double* const __restrict r = rhs + static_cast<std::size_t>(p - 1) * K;
        for (std::size_t l = wlo; l < whi; ++l) r[l] += diff[p - 1][l] * f[o + l];
      }
    }

    // Tiny per-lane eliminations (cols x cols, cols <= 8): scalar code,
    // lane-indexed reads. gamma rows are zero-padded to cmax so the
    // shared extrapolation loop below adds an exact +0.0 for p > cols[l].
    std::fill_n(cw.gamma.data(), static_cast<std::size_t>(cmax) * K, 0.0);
    bool any_extrap = false;
    for (std::size_t l = 0; l < K; ++l) {
      cw.extrap[l] = 0;
      if (cw.active[l] == 0 || cw.cols[l] < 1) continue;
      const int cols = cw.cols[l];
      double nm[8][9];
      for (int p = 0; p < cols; ++p) {
        for (int q = 0; q < cols; ++q) {
          const int a = std::min(p, q);
          const int b = std::max(p, q);
          nm[p][q] = dot[(static_cast<std::size_t>(a) * 8 + static_cast<std::size_t>(b)) * K + l];
        }
        nm[p][cols] = rhs[static_cast<std::size_t>(p) * K + l];
      }
      double diag_max = 0.0;
      for (int p = 0; p < cols; ++p) diag_max = std::max(diag_max, nm[p][p]);
      if (diag_max <= 0.0) continue;
      for (int p = 0; p < cols; ++p) nm[p][p] += 1e-12 * diag_max;

      bool singular = false;
      for (int p = 0; p < cols && !singular; ++p) {
        int pivot = p;
        for (int r = p + 1; r < cols; ++r) {
          if (std::abs(nm[r][p]) > std::abs(nm[pivot][p])) pivot = r;
        }
        if (std::abs(nm[pivot][p]) < 1e-30 * diag_max) {
          singular = true;
          break;
        }
        if (pivot != p) {
          for (int q = p; q <= cols; ++q) std::swap(nm[p][q], nm[pivot][q]);
        }
        for (int r = p + 1; r < cols; ++r) {
          const double factor = nm[r][p] / nm[p][p];
          for (int q = p; q <= cols; ++q) nm[r][q] -= factor * nm[p][q];
        }
      }
      if (singular) continue;
      for (int p = cols - 1; p >= 0; --p) {
        double v = nm[p][cols];
        for (int q = p + 1; q < cols; ++q) {
          v -= nm[p][q] * cw.gamma[static_cast<std::size_t>(q) * K + l];
        }
        cw.gamma[static_cast<std::size_t>(p) * K + l] = v / nm[p][p];
      }
      cw.extrap[l] = 1;
      any_extrap = true;
    }
    if (!any_extrap) continue;

    // Candidate iterates into aa_x, k-outer / p-middle / lane-inner: per
    // lane the p accumulation order matches the scalar loop, and the
    // zero-padded gamma makes p > cols[l] contribute an exact +0.0 (every
    // history row is finite, so 0.0 * dgk is 0.0, never NaN).
    for (std::size_t k = 0; k < na; ++k) {
      const std::size_t o = k * K;
      // Same __restrict discipline as the dot products: accumulators and
      // the candidate target are written through these pointers only; the
      // ring rows alias each other but are read-only.
      double* const __restrict dg = cw.dg_gamma.data();
      double* const __restrict df = cw.df_gamma.data();
      for (std::size_t l = wlo; l < whi; ++l) {
        dg[l] = 0.0;
        df[l] = 0.0;
      }
      for (int p = 1; p <= cmax; ++p) {
        const double* const fa = row_f(ring(newest - p + 1));
        const double* const fb = row_f(ring(newest - p));
        const double* const ga = row_g(ring(newest - p + 1));
        const double* const gb = row_g(ring(newest - p));
        const double* const gm = cw.gamma.data() + static_cast<std::size_t>(p - 1) * K;
        for (std::size_t l = wlo; l < whi; ++l) {
          dg[l] += gm[l] * (ga[o + l] - gb[o + l]);
          df[l] += gm[l] * (fa[o + l] - fb[o + l]);
        }
      }
      double* const __restrict ax = cw.aa_x.data();
      const double* const __restrict bt = cw.beta.data();
      for (std::size_t l = wlo; l < whi; ++l) {
        const double accel_x = ax[o + l] - (dg[l] - df[l]);
        const double accel_g = g[o + l] - dg[l];
        ax[o + l] = (1.0 - bt[l]) * accel_x + bt[l] * accel_g;
      }
    }

    // Safeguard per lane (the scalar loop short-circuits on the first
    // invalid k; evaluating the rest is side-effect-free, so the verdict
    // is identical).
    for (std::size_t l = 0; l < K; ++l) cw.valid[l] = cw.extrap[l];
    {
      // Branchless per-lane verdict: the scalar loop short-circuits on
      // the first invalid channel, but evaluating the remaining channels
      // is side-effect-free, so folding the && chain into unconditional
      // mask updates yields the identical verdict per lane.
      std::uint8_t* const __restrict vd = cw.valid.data();
      const double* const __restrict ax = cw.aa_x.data();
      const double* const __restrict lam = cw.lambda.data();
      for (std::size_t k = 0; k < na; ++k) {
        const std::size_t row = static_cast<std::size_t>(cw.aa_active[k]) * K;
        const std::size_t o = k * K;
        for (std::size_t l = wlo; l < whi; ++l) {
          const double v = ax[o + l];
          const bool ok =
              std::isfinite(v) && v >= msg && std::max(0.0, lam[row + l] * v) < guard;
          vd[l] = static_cast<std::uint8_t>(vd[l] != 0 && ok);
        }
      }
    }
    for (std::size_t l = wlo; l < whi; ++l) {
      if (cw.extrap[l] != 0 && cw.valid[l] == 0) {
        cw.hist[l] = 1;  // keep only the newest pair; the window misled
        cw.beta[l] = std::max(0.25, 0.5 * cw.beta[l]);
      }
    }
    {
      double* const __restrict xs = cw.service_time.data();
      const double* const __restrict ax = cw.aa_x.data();
      const std::uint8_t* const __restrict vd = cw.valid.data();
      for (std::size_t k = 0; k < na; ++k) {
        const std::size_t row = static_cast<std::size_t>(cw.aa_active[k]) * K;
        const std::size_t o = k * K;
        for (std::size_t l = wlo; l < whi; ++l) {
          if (vd[l] != 0) xs[row + l] = ax[o + l];
        }
      }
    }
  }
  // Lanes still active ran out of iterations; results were initialised to
  // MaxIterationsReached and their counts already sit at max_iterations.
}

double ServiceTimeSolver::max_utilization(ChannelId* argmax) const {
  QUARC_REQUIRE(last_ != nullptr,
                "ServiceTimeSolver::max_utilization() requires a prior solve()");
  const auto& sol = last_->solution;
  double best = 0.0;
  ChannelId best_id = kInvalidChannel;
  for (std::size_t c = 0; c < sol.size(); ++c) {
    if (sol[c].utilization > best) {
      best = sol[c].utilization;
      best_id = static_cast<ChannelId>(c);
    }
  }
  if (argmax != nullptr) *argmax = best_id;
  return best;
}

}  // namespace quarc
