#include "quarc/model/solver.hpp"

#include <algorithm>
#include <cmath>

#include "quarc/model/mg1.hpp"
#include "quarc/util/error.hpp"

namespace quarc {

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Converged:
      return "converged";
    case SolveStatus::Saturated:
      return "saturated";
    case SolveStatus::MaxIterationsReached:
      return "max-iterations";
  }
  return "unknown";
}

ServiceTimeSolver::ServiceTimeSolver(const Topology& topo, const ChannelGraph& graph,
                                     int message_length, SolverOptions options)
    : topo_(&topo), graph_(&graph), message_length_(message_length), options_(options) {
  QUARC_REQUIRE(message_length >= 1, "message length must be positive");
  QUARC_REQUIRE(options_.damping > 0.0 && options_.damping <= 1.0, "damping must be in (0,1]");
}

SolveStatus ServiceTimeSolver::solve() {
  const auto nch = static_cast<std::size_t>(topo_->num_channels());
  const double msg = static_cast<double>(message_length_);

  solution_.assign(nch, ChannelSolution{});
  for (std::size_t c = 0; c < nch; ++c) {
    solution_[c].lambda = graph_->lambda(static_cast<ChannelId>(c));
    solution_[c].service_time = msg;  // drain time is the floor of any service time
  }

  iterations_used_ = 0;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    iterations_used_ = iter + 1;

    // Refresh waits and check the stability guard with current x.
    for (std::size_t c = 0; c < nch; ++c) {
      ChannelSolution& s = solution_[c];
      if (s.lambda <= 0.0) {
        s.waiting_time = 0.0;
        s.utilization = 0.0;
        continue;
      }
      s.utilization = mg1_utilization(s.lambda, s.service_time);
      if (s.utilization >= options_.utilization_guard) return SolveStatus::Saturated;
      s.waiting_time =
          mg1_waiting_time(s.lambda, s.service_time, service_sigma(s.service_time, message_length_));
      if (!std::isfinite(s.waiting_time)) return SolveStatus::Saturated;
    }

    // Gauss-Seidel sweep of Eq. 6 with damping.
    double max_delta = 0.0;
    for (const ChannelInfo& ch : topo_->channels()) {
      if (ch.kind == ChannelKind::Ejection) continue;  // fixed x = msg
      ChannelSolution& s = solution_[static_cast<std::size_t>(ch.id)];
      if (s.lambda <= 0.0) continue;  // unused channel; x irrelevant
      const auto& flows = graph_->outgoing(ch.id);
      QUARC_ASSERT(!flows.empty(), "loaded non-ejection channel has no next channel");

      double update = 0.0;
      for (const auto& [next, rate] : flows) {
        const ChannelSolution& t = solution_[static_cast<std::size_t>(next)];
        const double p = rate / s.lambda;                    // P_{i->j}
        const double self_share = rate / t.lambda;           // fraction of j's load from i
        update += p * ((1.0 - self_share) * t.waiting_time + t.service_time + 1.0);
      }
      const double damped =
          options_.damping * update + (1.0 - options_.damping) * s.service_time;
      max_delta = std::max(max_delta, std::abs(damped - s.service_time));
      s.service_time = damped;
    }

    if (max_delta < options_.tolerance) {
      // Final wait refresh so callers see W consistent with converged x.
      for (std::size_t c = 0; c < nch; ++c) {
        ChannelSolution& s = solution_[c];
        if (s.lambda <= 0.0) continue;
        s.utilization = mg1_utilization(s.lambda, s.service_time);
        if (s.utilization >= options_.utilization_guard) return SolveStatus::Saturated;
        s.waiting_time = mg1_waiting_time(s.lambda, s.service_time,
                                          service_sigma(s.service_time, message_length_));
      }
      return SolveStatus::Converged;
    }
  }
  return SolveStatus::MaxIterationsReached;
}

double ServiceTimeSolver::max_utilization(ChannelId* argmax) const {
  double best = 0.0;
  ChannelId best_id = kInvalidChannel;
  for (std::size_t c = 0; c < solution_.size(); ++c) {
    if (solution_[c].utilization > best) {
      best = solution_[c].utilization;
      best_id = static_cast<ChannelId>(c);
    }
  }
  if (argmax != nullptr) *argmax = best_id;
  return best;
}

}  // namespace quarc
