#include "quarc/model/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "quarc/model/mg1.hpp"
#include "quarc/util/error.hpp"

namespace quarc {

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Converged:
      return "converged";
    case SolveStatus::Saturated:
      return "saturated";
    case SolveStatus::MaxIterationsReached:
      return "max-iterations";
  }
  return "unknown";
}

std::string to_string(SolverIteration it) {
  switch (it) {
    case SolverIteration::Anderson:
      return "anderson";
    case SolverIteration::GaussSeidel:
      return "gauss-seidel";
  }
  return "unknown";
}

ServiceTimeSolver::ServiceTimeSolver(const FlowGraph& flows, int message_length,
                                     SolverOptions options)
    : flows_(&flows), message_length_(message_length), options_(options) {
  QUARC_REQUIRE(message_length >= 1, "message length must be positive");
  QUARC_REQUIRE(options_.damping > 0.0 && options_.damping <= 1.0, "damping must be in (0,1]");
  QUARC_REQUIRE(options_.anderson_window >= 1 && options_.anderson_window <= 8,
                "anderson_window must be in [1, 8]");
}

ServiceTimeSolver::ServiceTimeSolver(const Topology& topo, const ChannelGraph& graph,
                                     int message_length, SolverOptions options)
    : ServiceTimeSolver(graph.flow_graph(), message_length, options) {
  QUARC_REQUIRE(&topo == &graph.flow_graph().topology(),
                "channel graph was built for a different topology");
  bound_rate_ = graph.scale();
}

SolveStatus ServiceTimeSolver::solve() {
  QUARC_REQUIRE(bound_rate_ >= 0.0,
                "no-argument solve() requires the ChannelGraph constructor (which binds the "
                "message rate); FlowGraph-constructed solvers must pass a rate");
  return solve(bound_rate_, own_);
}

bool ServiceTimeSolver::refresh_waits(std::vector<ChannelSolution>& sol) const {
  for (std::size_t c = 0; c < sol.size(); ++c) {
    ChannelSolution& s = sol[c];
    if (s.lambda <= 0.0) {
      s.waiting_time = 0.0;
      s.utilization = 0.0;
      continue;
    }
    s.utilization = mg1_utilization(s.lambda, s.service_time);
    if (s.utilization >= options_.utilization_guard) return true;
    s.waiting_time =
        mg1_waiting_time(s.lambda, s.service_time, service_sigma(s.service_time, message_length_));
    if (!std::isfinite(s.waiting_time)) return true;
  }
  return false;
}

double ServiceTimeSolver::gauss_seidel_sweep(std::vector<ChannelSolution>& sol) const {
  // Gauss-Seidel sweep of Eq. 6 with damping, directly over the CSR:
  // P_{i->j} and the self-share discount are precomputed per edge.
  const FlowGraph& flows = *flows_;
  double max_delta = 0.0;
  for (std::size_t c = 0; c < sol.size(); ++c) {
    const auto ch = static_cast<ChannelId>(c);
    if (flows.is_ejection(ch)) continue;  // fixed x = msg
    ChannelSolution& s = sol[c];
    if (s.lambda <= 0.0) continue;  // unused channel; x irrelevant
    const auto next = flows.next(ch);
    QUARC_ASSERT(!next.empty(), "loaded non-ejection channel has no next channel");
    const auto prob = flows.prob(ch);
    const auto share = flows.self_share(ch);

    double update = 0.0;
    for (std::size_t k = 0; k < next.size(); ++k) {
      const ChannelSolution& t = sol[static_cast<std::size_t>(next[k])];
      update += prob[k] * ((1.0 - share[k]) * t.waiting_time + t.service_time + 1.0);
    }
    const double damped = options_.damping * update + (1.0 - options_.damping) * s.service_time;
    max_delta = std::max(max_delta, std::abs(damped - s.service_time));
    s.service_time = damped;
  }
  return max_delta;
}

SolveStatus ServiceTimeSolver::solve(double message_rate, SolverWorkspace& ws, SolverSeed seed) {
  const FlowGraph& flows = *flows_;
  const std::size_t nch = flows.num_channels();
  const double msg = static_cast<double>(message_length_);

  auto& sol = ws.solution;
  sol.resize(nch);
  last_ = &ws;

  // Deterministic seed: every field of every entry is overwritten, so a
  // reused workspace can never leak state into the result. Idle channels
  // seed (and report) the drain-time floor either way.
  for (std::size_t c = 0; c < nch; ++c) {
    const double lambda = message_rate * flows.unit_lambda(static_cast<ChannelId>(c));
    double x0 = msg;
    if (seed == SolverSeed::ZeroLoad && lambda > 0.0) {
      x0 = msg + flows.steps_to_eject(static_cast<ChannelId>(c));
    }
    sol[c] = ChannelSolution{lambda, x0, 0.0, 0.0};
  }

  return run_iteration(ws);
}

SolveStatus ServiceTimeSolver::solve(double message_rate, SolverWorkspace& ws,
                                     std::span<const double> x0) {
  const FlowGraph& flows = *flows_;
  const std::size_t nch = flows.num_channels();
  QUARC_REQUIRE(x0.size() == nch, "seeded solve: x0 must have one entry per channel");
  const double msg = static_cast<double>(message_length_);

  auto& sol = ws.solution;
  sol.resize(nch);
  last_ = &ws;

  for (std::size_t c = 0; c < nch; ++c) {
    const auto ch = static_cast<ChannelId>(c);
    const double lambda = message_rate * flows.unit_lambda(ch);
    // Ejection channels are pinned at x = msg and idle channels never
    // iterate, exactly as in the closed-form seed; loaded channels take
    // the hint, clamped between the zero-load floor and strictly inside
    // the utilization guard. The upper clamp is what makes hints safe:
    // saturation is only ever diagnosed from genuine iterates, never
    // because an interpolated chord overshot rho past the guard before
    // the first sweep ran.
    double x = msg;
    if (!flows.is_ejection(ch) && lambda > 0.0) {
      x = x0[c];
      const double floor = msg + flows.steps_to_eject(ch);
      if (!(x >= floor)) x = floor;  // also catches NaN hints
      const double ceiling = options_.utilization_guard * (1.0 - 1e-3) / lambda;
      if (x > ceiling) x = std::max(floor, ceiling);
    }
    sol[c] = ChannelSolution{lambda, x, 0.0, 0.0};
  }

  const SolveStatus st = run_iteration(ws);
  if (st == SolveStatus::Converged) return st;
  // A hint must never make a solve report a WORSE status than the cold
  // start would (a pathological hint clamped against the utilization
  // ceiling can legitimately iterate into the guard even where the
  // zero-load start converges). Fall back to the closed-form seed and
  // keep both iteration counts on the bill — still a pure function of
  // (rate, hint), so determinism is unaffected.
  const int spent = iterations_used_;
  const SolveStatus cold = solve(message_rate, ws, SolverSeed::ZeroLoad);
  iterations_used_ += spent;
  return cold;
}

SolveStatus ServiceTimeSolver::run_iteration(SolverWorkspace& ws) {
  iterations_used_ = 0;
  if (options_.iteration == SolverIteration::GaussSeidel) return solve_gauss_seidel(ws);
  return solve_anderson(ws);
}

double ServiceTimeSolver::ordered_sweep(std::vector<ChannelSolution>& sol) const {
  // Undamped nonlinear Gauss-Seidel in the FlowGraph's downwind order:
  // every channel reads already-updated downstream values (wait included,
  // refreshed in place right after each x update), so ejection-anchored
  // information crosses the whole network in one pass and only the
  // cycle-closing back edges carry stale state. This is what collapses
  // the id-order iteration's ring-of-eigenvalues (one hop of progress
  // per sweep) into a handful of sweeps — see FlowGraph::sweep_order().
  //
  // Safeguards: an updated channel whose utilisation would reach the
  // guard keeps its previous wait (the surrounding refresh_waits pass is
  // the single place saturation is diagnosed), and the in-place wait is
  // recomputed only from genuine Eq. 6 updates, keeping every quantity a
  // pure function of the iterate.
  const FlowGraph& flows = *flows_;
  double max_delta = 0.0;
  for (const ChannelId ch : flows.sweep_order()) {
    const auto c = static_cast<std::size_t>(ch);
    ChannelSolution& s = sol[c];
    const auto next = flows.next(ch);
    QUARC_ASSERT(!next.empty(), "loaded non-ejection channel has no next channel");
    const auto prob = flows.prob(ch);
    const auto share = flows.self_share(ch);

    double update = 0.0;
    for (std::size_t k = 0; k < next.size(); ++k) {
      const ChannelSolution& t = sol[static_cast<std::size_t>(next[k])];
      update += prob[k] * ((1.0 - share[k]) * t.waiting_time + t.service_time + 1.0);
    }
    max_delta = std::max(max_delta, std::abs(update - s.service_time));
    s.service_time = update;
    if (mg1_utilization(s.lambda, update) < options_.utilization_guard) {
      s.waiting_time =
          mg1_waiting_time(s.lambda, update, service_sigma(update, message_length_));
    }
  }
  return max_delta;
}

SolveStatus ServiceTimeSolver::solve_gauss_seidel(SolverWorkspace& ws) {
  // The historical iteration, byte-for-byte: refresh waits, damped sweep,
  // converge on the sweep residual (with a final wait refresh so callers
  // see W consistent with the converged x).
  auto& sol = ws.solution;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    iterations_used_ = iter + 1;
    if (refresh_waits(sol)) return SolveStatus::Saturated;
    const double max_delta = gauss_seidel_sweep(sol);
    if (max_delta < options_.tolerance) {
      if (refresh_waits(sol)) return SolveStatus::Saturated;
      return SolveStatus::Converged;
    }
  }
  return SolveStatus::MaxIterationsReached;
}

SolveStatus ServiceTimeSolver::solve_anderson(SolverWorkspace& ws) {
  auto& sol = ws.solution;
  const FlowGraph& flows = *flows_;
  const double msg = static_cast<double>(message_length_);

  // Active set: exactly the components the damped sweep updates. Ejection
  // channels are pinned at x = msg and idle channels never move, so the
  // extrapolation must not touch either.
  ws.aa_active.clear();
  for (std::size_t c = 0; c < sol.size(); ++c) {
    if (!flows.is_ejection(static_cast<ChannelId>(c)) && sol[c].lambda > 0.0) {
      ws.aa_active.push_back(static_cast<std::uint32_t>(c));
    }
  }
  const std::size_t na = ws.aa_active.size();
  const int window = options_.anderson_window;  // ctor-validated to [1, 8]
  const std::size_t rows = static_cast<std::size_t>(window) + 1;
  // Full reseed of the history ring: contents and counters never survive
  // across solves, so workspace reuse cannot change a byte.
  ws.aa_x.assign(na, 0.0);
  ws.aa_g.assign(rows * na, 0.0);
  ws.aa_f.assign(rows * na, 0.0);

  int hist = 0;       // valid consecutive history rows ending at `newest`
  int head = 0;       // ring slot the next row is written to
  double beta = 1.0;  // adaptive mixing; shrinks when extrapolation misbehaves
  double prev_rnorm2 = std::numeric_limits<double>::infinity();
  // Effective extrapolation depth. Fixed at the configured window
  // historically; under auto-tuning it starts at secant depth and adapts
  // to the measured contraction below — slow contraction (the
  // near-saturation regime) earns a deeper window, fast contraction
  // sheds history that the least-squares model would only overfit.
  int w_eff = options_.anderson_auto_window ? 1 : window;

  const int nrows = static_cast<int>(rows);
  const auto row_f = [&](int r) { return ws.aa_f.data() + static_cast<std::size_t>(r) * na; };
  const auto row_g = [&](int r) { return ws.aa_g.data() + static_cast<std::size_t>(r) * na; };
  const auto ring = [nrows](int r) { return ((r % nrows) + nrows) % nrows; };

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    iterations_used_ = iter + 1;
    if (refresh_waits(sol)) return SolveStatus::Saturated;
    for (std::size_t k = 0; k < na; ++k) {
      ws.aa_x[k] = sol[ws.aa_active[k]].service_time;
    }
    const double max_delta = ordered_sweep(sol);
    if (max_delta < options_.tolerance) {
      // Same convergence criterion family and final wait refresh as the
      // historical iteration: the accepted x is always a swept iterate
      // (the sweep is undamped, so the criterion is if anything stricter).
      if (refresh_waits(sol)) return SolveStatus::Saturated;
      return SolveStatus::Converged;
    }

    // Record this sweep's (g, f = g - x) pair.
    const int newest = head;
    double* g = row_g(newest);
    double* f = row_f(newest);
    double rnorm2 = 0.0;
    for (std::size_t k = 0; k < na; ++k) {
      g[k] = sol[ws.aa_active[k]].service_time;
      f[k] = g[k] - ws.aa_x[k];
      rnorm2 += f[k] * f[k];
    }
    // Adaptive damping + restart: a growing residual means the window's
    // linear model stopped describing the map — drop the stale history
    // and mix the next extrapolation softer; steady progress relaxes the
    // mixing back toward a full Anderson step.
    if (rnorm2 > 4.0 * prev_rnorm2) {
      hist = 0;
      beta = std::max(0.25, 0.5 * beta);
    } else if (rnorm2 <= prev_rnorm2) {
      beta = std::min(1.0, 1.25 * beta);
    }
    // Window auto-tuning from the measured contraction (norm ratio per
    // sweep, compared in squared form): above 0.5 per sweep the plain
    // sweep is slow — deepen the window toward the configured cap so the
    // extrapolation has more directions to cancel the slow modes; below
    // 0.1 the sweep is doing fine on its own and older rows describe a
    // regime the iterate already left. A pure function of the residual
    // trajectory, so solves stay deterministic.
    if (options_.anderson_auto_window && std::isfinite(prev_rnorm2) && prev_rnorm2 > 0.0) {
      if (rnorm2 > 0.25 * prev_rnorm2) {
        w_eff = std::min(w_eff + 1, window);
      } else if (rnorm2 < 0.01 * prev_rnorm2) {
        w_eff = std::max(1, w_eff - 1);
      }
    }
    prev_rnorm2 = rnorm2;
    head = ring(head + 1);
    hist = std::min(hist + 1, static_cast<int>(rows));

    const int cols = std::min(hist - 1, w_eff);
    if (cols < 1 || na == 0) continue;

    // Anderson mixing over the last `cols` residual differences:
    // gamma = argmin || f_newest - dF gamma ||_2 via the (tiny) normal
    // equations, solved by Gaussian elimination with partial pivoting —
    // deterministic, no allocation.
    const auto df = [&](int p, std::size_t k) {
      // p-th difference column, newest-first: f_{i-p+1} - f_{i-p}.
      return row_f(ring(newest - p + 1))[k] - row_f(ring(newest - p))[k];
    };
    double nm[8][9];  // [cols x cols | rhs]
    for (int p = 1; p <= cols; ++p) {
      for (int q = p; q <= cols; ++q) {
        double dot = 0.0;
        for (std::size_t k = 0; k < na; ++k) dot += df(p, k) * df(q, k);
        nm[p - 1][q - 1] = dot;
        nm[q - 1][p - 1] = dot;
      }
      double dot = 0.0;
      for (std::size_t k = 0; k < na; ++k) dot += df(p, k) * f[k];
      nm[p - 1][cols] = dot;
    }
    // Tikhonov floor keeps near-collinear windows solvable without
    // blowing up gamma (and keeps the elimination deterministic).
    double diag_max = 0.0;
    for (int p = 0; p < cols; ++p) diag_max = std::max(diag_max, nm[p][p]);
    if (diag_max <= 0.0) continue;
    for (int p = 0; p < cols; ++p) nm[p][p] += 1e-12 * diag_max;

    bool singular = false;
    for (int p = 0; p < cols && !singular; ++p) {
      int pivot = p;
      for (int r = p + 1; r < cols; ++r) {
        if (std::abs(nm[r][p]) > std::abs(nm[pivot][p])) pivot = r;
      }
      if (std::abs(nm[pivot][p]) < 1e-30 * diag_max) {
        singular = true;
        break;
      }
      if (pivot != p) {
        for (int q = p; q <= cols; ++q) std::swap(nm[p][q], nm[pivot][q]);
      }
      for (int r = p + 1; r < cols; ++r) {
        const double factor = nm[r][p] / nm[p][p];
        for (int q = p; q <= cols; ++q) nm[r][q] -= factor * nm[p][q];
      }
    }
    if (singular) continue;
    double gamma[8];
    for (int p = cols - 1; p >= 0; --p) {
      double v = nm[p][cols];
      for (int q = p + 1; q < cols; ++q) v -= nm[p][q] * gamma[q];
      gamma[p] = v / nm[p][p];
    }

    // Candidate iterate, beta-mixed:
    //   x+ = (1-beta) (x - dX gamma) + beta (g - dG gamma),  dX = dG - dF.
    // Built into aa_x (this iteration's snapshot is no longer needed) so
    // the safeguard can inspect it in full before sol is touched.
    for (std::size_t k = 0; k < na; ++k) {
      double dg_gamma = 0.0;
      double df_gamma = 0.0;
      for (int p = 1; p <= cols; ++p) {
        const double dfk = df(p, k);
        const double dgk = row_g(ring(newest - p + 1))[k] - row_g(ring(newest - p))[k];
        dg_gamma += gamma[p - 1] * dgk;
        df_gamma += gamma[p - 1] * dfk;
      }
      const double accel_x = ws.aa_x[k] - (dg_gamma - df_gamma);
      const double accel_g = g[k] - dg_gamma;
      ws.aa_x[k] = (1.0 - beta) * accel_x + beta * accel_g;
    }

    // Safeguard: the extrapolated iterate must be finite, respect the
    // drain-time floor and stay strictly inside the utilization guard on
    // every channel — otherwise keep the (always valid) damped sweep
    // iterate and restart the window with a softer mix. Saturation thus
    // can never be declared from an extrapolated point.
    bool valid = true;
    for (std::size_t k = 0; k < na && valid; ++k) {
      const double v = ws.aa_x[k];
      const ChannelSolution& s = sol[ws.aa_active[k]];
      valid = std::isfinite(v) && v >= msg &&
              mg1_utilization(s.lambda, v) < options_.utilization_guard;
    }
    if (!valid) {
      hist = 1;  // keep only the newest pair; the window was misleading
      beta = std::max(0.25, 0.5 * beta);
      continue;
    }
    for (std::size_t k = 0; k < na; ++k) {
      sol[ws.aa_active[k]].service_time = ws.aa_x[k];
    }
  }
  return SolveStatus::MaxIterationsReached;
}

double ServiceTimeSolver::max_utilization(ChannelId* argmax) const {
  QUARC_REQUIRE(last_ != nullptr,
                "ServiceTimeSolver::max_utilization() requires a prior solve()");
  const auto& sol = last_->solution;
  double best = 0.0;
  ChannelId best_id = kInvalidChannel;
  for (std::size_t c = 0; c < sol.size(); ++c) {
    if (sol[c].utilization > best) {
      best = sol[c].utilization;
      best_id = static_cast<ChannelId>(c);
    }
  }
  if (argmax != nullptr) *argmax = best_id;
  return best;
}

}  // namespace quarc
