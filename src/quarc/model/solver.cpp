#include "quarc/model/solver.hpp"

#include <algorithm>
#include <cmath>

#include "quarc/model/mg1.hpp"
#include "quarc/util/error.hpp"

namespace quarc {

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Converged:
      return "converged";
    case SolveStatus::Saturated:
      return "saturated";
    case SolveStatus::MaxIterationsReached:
      return "max-iterations";
  }
  return "unknown";
}

ServiceTimeSolver::ServiceTimeSolver(const FlowGraph& flows, int message_length,
                                     SolverOptions options)
    : flows_(&flows), message_length_(message_length), options_(options) {
  QUARC_REQUIRE(message_length >= 1, "message length must be positive");
  QUARC_REQUIRE(options_.damping > 0.0 && options_.damping <= 1.0, "damping must be in (0,1]");
}

ServiceTimeSolver::ServiceTimeSolver(const Topology& topo, const ChannelGraph& graph,
                                     int message_length, SolverOptions options)
    : ServiceTimeSolver(graph.flow_graph(), message_length, options) {
  QUARC_REQUIRE(&topo == &graph.flow_graph().topology(),
                "channel graph was built for a different topology");
  bound_rate_ = graph.scale();
}

SolveStatus ServiceTimeSolver::solve() {
  QUARC_REQUIRE(bound_rate_ >= 0.0,
                "no-argument solve() requires the ChannelGraph constructor (which binds the "
                "message rate); FlowGraph-constructed solvers must pass a rate");
  return solve(bound_rate_, own_);
}

SolveStatus ServiceTimeSolver::solve(double message_rate, SolverWorkspace& ws, SolverSeed seed) {
  const FlowGraph& flows = *flows_;
  const std::size_t nch = flows.num_channels();
  const double msg = static_cast<double>(message_length_);

  auto& sol = ws.solution;
  sol.resize(nch);
  last_ = &ws;

  // Deterministic seed: every field of every entry is overwritten, so a
  // reused workspace can never leak state into the result. Idle channels
  // seed (and report) the drain-time floor either way.
  for (std::size_t c = 0; c < nch; ++c) {
    const double lambda = message_rate * flows.unit_lambda(static_cast<ChannelId>(c));
    double x0 = msg;
    if (seed == SolverSeed::ZeroLoad && lambda > 0.0) {
      x0 = msg + flows.steps_to_eject(static_cast<ChannelId>(c));
    }
    sol[c] = ChannelSolution{lambda, x0, 0.0, 0.0};
  }

  iterations_used_ = 0;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    iterations_used_ = iter + 1;

    // Refresh waits and check the stability guard with current x.
    for (std::size_t c = 0; c < nch; ++c) {
      ChannelSolution& s = sol[c];
      if (s.lambda <= 0.0) {
        s.waiting_time = 0.0;
        s.utilization = 0.0;
        continue;
      }
      s.utilization = mg1_utilization(s.lambda, s.service_time);
      if (s.utilization >= options_.utilization_guard) return SolveStatus::Saturated;
      s.waiting_time =
          mg1_waiting_time(s.lambda, s.service_time, service_sigma(s.service_time, message_length_));
      if (!std::isfinite(s.waiting_time)) return SolveStatus::Saturated;
    }

    // Gauss-Seidel sweep of Eq. 6 with damping, directly over the CSR:
    // P_{i->j} and the self-share discount are precomputed per edge.
    double max_delta = 0.0;
    for (std::size_t c = 0; c < nch; ++c) {
      const auto ch = static_cast<ChannelId>(c);
      if (flows.is_ejection(ch)) continue;  // fixed x = msg
      ChannelSolution& s = sol[c];
      if (s.lambda <= 0.0) continue;  // unused channel; x irrelevant
      const auto next = flows.next(ch);
      QUARC_ASSERT(!next.empty(), "loaded non-ejection channel has no next channel");
      const auto prob = flows.prob(ch);
      const auto share = flows.self_share(ch);

      double update = 0.0;
      for (std::size_t k = 0; k < next.size(); ++k) {
        const ChannelSolution& t = sol[static_cast<std::size_t>(next[k])];
        update += prob[k] * ((1.0 - share[k]) * t.waiting_time + t.service_time + 1.0);
      }
      const double damped =
          options_.damping * update + (1.0 - options_.damping) * s.service_time;
      max_delta = std::max(max_delta, std::abs(damped - s.service_time));
      s.service_time = damped;
    }

    if (max_delta < options_.tolerance) {
      // Final wait refresh so callers see W consistent with converged x.
      for (std::size_t c = 0; c < nch; ++c) {
        ChannelSolution& s = sol[c];
        if (s.lambda <= 0.0) continue;
        s.utilization = mg1_utilization(s.lambda, s.service_time);
        if (s.utilization >= options_.utilization_guard) return SolveStatus::Saturated;
        s.waiting_time = mg1_waiting_time(s.lambda, s.service_time,
                                          service_sigma(s.service_time, message_length_));
      }
      return SolveStatus::Converged;
    }
  }
  return SolveStatus::MaxIterationsReached;
}

double ServiceTimeSolver::max_utilization(ChannelId* argmax) const {
  const auto& sol = last_->solution;
  double best = 0.0;
  ChannelId best_id = kInvalidChannel;
  for (std::size_t c = 0; c < sol.size(); ++c) {
    if (sol[c].utilization > best) {
      best = sol[c].utilization;
      best_id = static_cast<ChannelId>(c);
    }
  }
  if (argmax != nullptr) *argmax = best_id;
  return best;
}

}  // namespace quarc
