// Expected value of the maximum of independent exponential random
// variables — the paper's core device for asynchronous multi-port
// multicast (Eq. 9-13).
//
// The multicast waiting time is the time until the *last* of the m port
// streams delivers; associating each stream's total waiting time with
// Exp(mu_c), the expectation of the maximum follows from memorylessness
// (recursion of Eq. 12). The closed inclusion-exclusion form
//
//   E[max] = sum over non-empty subsets S of (-1)^{|S|+1} / sum_{i in S} mu_i
//
// is algebraically identical; both are implemented and cross-checked in the
// test-suite.
#pragma once

#include <span>

namespace quarc {

/// E[max of Exp(rates[i])] via inclusion-exclusion. Rates must be positive;
/// size may be 0 (returns 0) and is limited to 20 (2^m subset expansion —
/// far above any router port count).
double expected_max_exponential(std::span<const double> rates);

/// Same quantity via the paper's Eq. 12 recursion (memoized over subsets).
double expected_max_exponential_recursive(std::span<const double> rates);

/// Convenience for the model: expectation of the maximum where each entry
/// is the *mean* (total waiting time W_{j,c}, so mu = 1/W). Entries <= eps
/// are treated as degenerate point masses at zero (they cannot be the
/// maximum unless all are zero). This is the exact limit of Eq. 12 as
/// mu -> infinity.
double expected_max_from_means(std::span<const double> means, double eps = 1e-12);

}  // namespace quarc
