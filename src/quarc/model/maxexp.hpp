// Expected value of the maximum of independent exponential random
// variables — the paper's core device for asynchronous multi-port
// multicast (Eq. 9-13).
//
// The multicast waiting time is the time until the *last* of the m port
// streams delivers; associating each stream's total waiting time with
// Exp(mu_c), the expectation of the maximum follows from memorylessness
// (recursion of Eq. 12). The closed inclusion-exclusion form
//
//   E[max] = sum over non-empty subsets S of (-1)^{|S|+1} / sum_{i in S} mu_i
//
// is algebraically identical but numerically treacherous: the 2^m terms
// alternate in sign and cancel catastrophically well below the m = 20
// size cap. The Eq. 12 recursion, by contrast, sums only positive terms
// (it is the expected absorption time of a pure-death chain), so it is
// the *stable* form — implemented here iteratively (bottom-up over
// subset masks, no recursion depth), and generalised past 20 variables
// by collapsing equal rates into multiplicities: the recursion's value
// depends only on the multiset of rates, so a broadcast-width set with
// few distinct waits costs prod(count_i + 1) states instead of 2^m.
// Rate sets too heterogeneous even for that fall back to deterministic
// adaptive quadrature of the survival function
// E[max] = integral_0^inf (1 - prod_i(1 - e^{-mu_i t})) dt.
// All forms are cross-pinned against each other in the test-suite.
#pragma once

#include <span>

namespace quarc {

/// E[max of Exp(rates[i])] via inclusion-exclusion. Rates must be positive;
/// size may be 0 (returns 0) and is limited to 20 (2^m subset expansion).
/// Kept as the closed-form oracle for the test-suite; production callers
/// use expected_max_exponential_stable (no size limit, no cancellation).
double expected_max_exponential(std::span<const double> rates);

/// Same quantity via the paper's Eq. 12 recursion, evaluated iteratively
/// (bottom-up over subset masks — all-positive terms, numerically stable).
/// Limited to 20 variables by the 2^m memo; see the stable form below.
double expected_max_exponential_recursive(std::span<const double> rates);

/// The Eq. 12 recursion collapsed over equal rates (the value depends only
/// on the multiset): prod(count_i + 1) states instead of 2^m, so iid and
/// few-distinct-rate sets of any realistic broadcast width are exact and
/// cheap. Falls back to expected_max_exponential_integrated when the
/// collapsed state space is still too large. No size limit.
double expected_max_exponential_stable(std::span<const double> rates);

/// Deterministic adaptive quadrature of the survival function — the
/// fallback for wide, fully heterogeneous rate sets, exposed so the
/// test-suite can cross-pin it against the exact forms. No size limit.
double expected_max_exponential_integrated(std::span<const double> rates);

/// Convenience for the model: expectation of the maximum where each entry
/// is the *mean* (total waiting time W_{j,c}, so mu = 1/W). Entries <= eps
/// are treated as degenerate point masses at zero (they cannot be the
/// maximum unless all are zero). This is the exact limit of Eq. 12 as
/// mu -> infinity. Evaluated via the stable form: any number of streams
/// (wide multicast sets included), no alternating-sum cancellation.
double expected_max_from_means(std::span<const double> means, double eps = 1e-12);

}  // namespace quarc
