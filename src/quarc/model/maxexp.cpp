#include "quarc/model/maxexp.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "quarc/util/error.hpp"

namespace quarc {

double expected_max_exponential(std::span<const double> rates) {
  const std::size_t m = rates.size();
  if (m == 0) return 0.0;
  QUARC_REQUIRE(m <= 20, "subset expansion limited to 20 variables");
  for (double mu : rates) QUARC_REQUIRE(mu > 0.0, "exponential rates must be positive");

  double total = 0.0;
  const std::size_t subsets = std::size_t{1} << m;
  for (std::size_t mask = 1; mask < subsets; ++mask) {
    double rate_sum = 0.0;
    int bits = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (std::size_t{1} << i)) {
        rate_sum += rates[i];
        ++bits;
      }
    }
    total += ((bits % 2 == 1) ? 1.0 : -1.0) / rate_sum;
  }
  return total;
}

namespace {

/// Eq. 10/12 bottom-up over `memo` (caller-provided, size 2^m): the first
/// event fires after 1/sum(mu); by memorylessness the remaining maximum
/// restarts over the survivors, weighted by which variable fired first
/// (probability mu_i / sum). Clearing a bit yields a numerically smaller
/// mask, so an ascending iteration visits every sub-state before the
/// states that need it — the memoized top-down recursion, unrolled (no
/// stack, no memo probes). The single kernel behind both the <= 20
/// oracle and the stable form's small-m fast path, so the two can never
/// drift term-for-term.
double subset_dp(std::span<const double> rates, double* memo) {
  const std::size_t m = rates.size();
  const std::size_t subsets = std::size_t{1} << m;
  memo[0] = 0.0;
  for (std::size_t mask = 1; mask < subsets; ++mask) {
    double rate_sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (std::size_t{1} << i)) rate_sum += rates[i];
    }
    double value = 1.0 / rate_sum;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t bit = std::size_t{1} << i;
      if (mask & bit) {
        value += (rates[i] / rate_sum) * memo[mask & ~bit];
      }
    }
    memo[mask] = value;
  }
  return memo[subsets - 1];
}

}  // namespace

double expected_max_exponential_recursive(std::span<const double> rates) {
  const std::size_t m = rates.size();
  if (m == 0) return 0.0;
  QUARC_REQUIRE(m <= 20, "subset expansion limited to 20 variables");
  for (double mu : rates) QUARC_REQUIRE(mu > 0.0, "exponential rates must be positive");
  std::vector<double> memo(std::size_t{1} << m);
  return subset_dp(rates, memo.data());
}

namespace {

/// Largest collapsed state space the multiset DP is allowed to allocate
/// (doubles): 2^22 = 32 MiB. Every <= 20-variable set fits (2^20 states at
/// worst), as does any realistic broadcast width with a handful of
/// distinct waits; only wide *and* fully heterogeneous sets spill over to
/// quadrature.
constexpr std::size_t kMaxDpStates = std::size_t{1} << 22;

/// Survival function S(t) = 1 - prod_i (1 - e^{-mu_i t}), evaluated in log
/// space so products of near-one factors keep full precision.
double survival(std::span<const double> rates, double t) {
  double log_prod = 0.0;
  for (double mu : rates) {
    // log(1 - e^{-mu t}) without cancellation at either end.
    log_prod += std::log(-std::expm1(-mu * t));
    if (log_prod == -std::numeric_limits<double>::infinity()) return 1.0;
  }
  return -std::expm1(log_prod);
}

/// Fixed-order adaptive Simpson refinement: deterministic (pure function
/// of the rate set), depth-capped, absolute tolerance per panel.
double simpson_recurse(std::span<const double> rates, double a, double fa, double b, double fb,
                       double fm, double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = survival(rates, lm);
  const double frm = survival(rates, rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  if (depth <= 0 || std::abs(left + right - whole) <= 15.0 * tol) {
    return left + right + (left + right - whole) / 15.0;
  }
  return simpson_recurse(rates, a, fa, m, fm, flm, left, 0.5 * tol, depth - 1) +
         simpson_recurse(rates, m, fm, b, fb, frm, right, 0.5 * tol, depth - 1);
}

}  // namespace

double expected_max_exponential_integrated(std::span<const double> rates) {
  const std::size_t m = rates.size();
  if (m == 0) return 0.0;
  double mu_min = rates[0];
  double mean_sum = 0.0;
  for (double mu : rates) {
    QUARC_REQUIRE(mu > 0.0, "exponential rates must be positive");
    mu_min = std::min(mu_min, mu);
    mean_sum += 1.0 / mu;
  }
  // Truncation point: past T the integrand is below m * e^{-mu_min T},
  // chosen so the dropped tail is ~1e-16 of the largest possible answer.
  const double T = (std::log(static_cast<double>(m)) + 40.0) / mu_min;
  // Integrate over geometrically growing panels (the integrand decays
  // roughly exponentially, so equal work per decade), each refined by
  // deterministic adaptive Simpson to a share of the absolute tolerance.
  const double tol = 1e-13 * mean_sum;
  double total = 0.0;
  double a = 0.0;
  double fa = 1.0;  // S(0) = 1
  double b = 0.25 / mu_min;
  constexpr int kMaxPanels = 64;
  for (int panel = 0; panel < kMaxPanels && a < T; ++panel) {
    b = std::min(b, T);
    const double fb = survival(rates, b);
    const double mid = 0.5 * (a + b);
    const double fmid = survival(rates, mid);
    const double whole = (b - a) / 6.0 * (fa + 4.0 * fmid + fb);
    total += simpson_recurse(rates, a, fa, b, fb, fmid, whole, tol / kMaxPanels, 32);
    a = b;
    fa = fb;
    b *= 2.0;
  }
  return total;
}

/// Widest set the stable form evaluates via the subset DP on the stack —
/// the model's hot path (per-source port-stream counts are single digits),
/// allocation-free through the shared kernel.
constexpr std::size_t kStackDpVars = 8;

double expected_max_exponential_stable(std::span<const double> rates) {
  const std::size_t m = rates.size();
  if (m == 0) return 0.0;
  for (double mu : rates) QUARC_REQUIRE(mu > 0.0, "exponential rates must be positive");
  if (m <= kStackDpVars) {
    std::array<double, std::size_t{1} << kStackDpVars> memo;
    return subset_dp(rates, memo.data());
  }

  // Collapse equal rates: the Eq. 12 recursion's value depends only on the
  // multiset, so state = how many of each distinct rate still run. Sorting
  // makes grouping (and the result) independent of input order.
  std::vector<double> values(rates.begin(), rates.end());
  std::sort(values.begin(), values.end());
  std::vector<double> distinct;
  std::vector<std::size_t> count;
  for (double v : values) {
    if (distinct.empty() || v != distinct.back()) {
      distinct.push_back(v);
      count.push_back(1);
    } else {
      ++count.back();
    }
  }

  const std::size_t k = distinct.size();
  std::size_t states = 1;
  for (std::size_t i = 0; i < k; ++i) {
    if (states > kMaxDpStates / (count[i] + 1)) {
      return expected_max_exponential_integrated(rates);
    }
    states *= count[i] + 1;
  }

  // Mixed-radix DP, ascending: digit i of a state index is the number of
  // still-running variables of rate distinct[i]; decrementing any digit
  // gives a smaller index, so every dependency is already computed.
  //   E[c] = (1 + sum_i c_i mu_i E[c - e_i]) / sum_i c_i mu_i
  std::vector<std::size_t> stride(k);
  std::size_t acc = 1;
  for (std::size_t i = 0; i < k; ++i) {
    stride[i] = acc;
    acc *= count[i] + 1;
  }
  std::vector<double> memo(states, 0.0);
  std::vector<std::size_t> digit(k, 0);
  for (std::size_t idx = 1; idx < states; ++idx) {
    // Increment the mixed-radix counter tracking idx.
    for (std::size_t i = 0; i < k; ++i) {
      if (++digit[i] <= count[i]) break;
      digit[i] = 0;
    }
    double rate_sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      rate_sum += static_cast<double>(digit[i]) * distinct[i];
    }
    double value = 1.0;
    for (std::size_t i = 0; i < k; ++i) {
      if (digit[i] > 0) {
        value += static_cast<double>(digit[i]) * distinct[i] * memo[idx - stride[i]];
      }
    }
    memo[idx] = value / rate_sum;
  }
  return memo[states - 1];
}

double expected_max_from_means(std::span<const double> means, double eps) {
  std::vector<double> rates;
  rates.reserve(means.size());
  for (double w : means) {
    QUARC_REQUIRE(w >= 0.0, "waiting times must be non-negative");
    if (w > eps) rates.push_back(1.0 / w);
  }
  return expected_max_exponential_stable(rates);
}

}  // namespace quarc
