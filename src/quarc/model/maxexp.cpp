#include "quarc/model/maxexp.hpp"

#include <vector>

#include "quarc/util/error.hpp"

namespace quarc {

double expected_max_exponential(std::span<const double> rates) {
  const std::size_t m = rates.size();
  if (m == 0) return 0.0;
  QUARC_REQUIRE(m <= 20, "subset expansion limited to 20 variables");
  for (double mu : rates) QUARC_REQUIRE(mu > 0.0, "exponential rates must be positive");

  double total = 0.0;
  const std::size_t subsets = std::size_t{1} << m;
  for (std::size_t mask = 1; mask < subsets; ++mask) {
    double rate_sum = 0.0;
    int bits = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (std::size_t{1} << i)) {
        rate_sum += rates[i];
        ++bits;
      }
    }
    total += ((bits % 2 == 1) ? 1.0 : -1.0) / rate_sum;
  }
  return total;
}

namespace {

double recurse(std::span<const double> rates, std::size_t mask, std::vector<double>& memo) {
  if (mask == 0) return 0.0;
  double& slot = memo[mask];
  if (slot >= 0.0) return slot;

  // Eq. 10/12: first event fires after 1/sum(mu); by memorylessness the
  // remaining maximum restarts over the survivors, weighted by which
  // variable fired first (probability mu_i / sum).
  double rate_sum = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (mask & (std::size_t{1} << i)) rate_sum += rates[i];
  }
  double value = 1.0 / rate_sum;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const std::size_t bit = std::size_t{1} << i;
    if (mask & bit) {
      value += (rates[i] / rate_sum) * recurse(rates, mask & ~bit, memo);
    }
  }
  slot = value;
  return value;
}

}  // namespace

double expected_max_exponential_recursive(std::span<const double> rates) {
  const std::size_t m = rates.size();
  if (m == 0) return 0.0;
  QUARC_REQUIRE(m <= 20, "subset expansion limited to 20 variables");
  for (double mu : rates) QUARC_REQUIRE(mu > 0.0, "exponential rates must be positive");
  std::vector<double> memo(std::size_t{1} << m, -1.0);
  return recurse(rates, (std::size_t{1} << m) - 1, memo);
}

double expected_max_from_means(std::span<const double> means, double eps) {
  std::vector<double> rates;
  rates.reserve(means.size());
  for (double w : means) {
    QUARC_REQUIRE(w >= 0.0, "waiting times must be non-negative");
    if (w > eps) rates.push_back(1.0 / w);
  }
  return expected_max_exponential(rates);
}

}  // namespace quarc
