#include "quarc/model/channel_graph.hpp"

#include <algorithm>

#include "quarc/util/error.hpp"

namespace quarc {

ChannelGraph::ChannelGraph(const RoutePlan& plan, const Workload& load)
    : topo_(&plan.topology()) {
  const Topology& topo = plan.topology();
  load.validate(topo);
  QUARC_REQUIRE(load.multicast_rate() == 0.0 || plan.pattern() == load.pattern.get(),
                "route plan was compiled with a different multicast pattern");
  const auto nch = static_cast<std::size_t>(topo.num_channels());
  lambda_.assign(nch, 0.0);
  out_.assign(nch, {});

  const int n = topo.num_nodes();
  const double per_dest_unicast = load.unicast_rate() / static_cast<double>(n - 1);

  if (per_dest_unicast > 0.0) {
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId d = 0; d < n; ++d) {
        if (s == d) continue;
        add_route(plan.route(s, d), per_dest_unicast);
      }
    }
  }

  const double mc_rate = load.multicast_rate();
  if (mc_rate > 0.0) {
    for (NodeId s = 0; s < n; ++s) {
      if (plan.multicast_dests(s).empty()) continue;
      if (plan.hardware_streams()) {
        for (std::size_t i = 0; i < plan.stream_count(s); ++i) {
          add_stream(plan.stream(s, i), mc_rate);
        }
      } else {
        // Software multicast: one unicast per destination.
        for (NodeId d : plan.multicast_dests(s)) add_route(plan.route(s, d), mc_rate);
      }
    }
  }
}

ChannelGraph::ChannelGraph(const Topology& topo, const Workload& load)
    : ChannelGraph(RoutePlan(topo, load.multicast_rate() > 0.0 ? load.pattern.get() : nullptr),
                   load) {}

void ChannelGraph::add_flow(ChannelId from, ChannelId to, double rate) {
  auto& flows = out_[static_cast<std::size_t>(from)];
  auto it = std::find_if(flows.begin(), flows.end(),
                         [to](const auto& p) { return p.first == to; });
  if (it == flows.end()) {
    flows.emplace_back(to, rate);
  } else {
    it->second += rate;
  }
}

void ChannelGraph::add_route(const RouteView& r, double rate) {
  lambda_[static_cast<std::size_t>(r.injection)] += rate;
  ChannelId prev = r.injection;
  for (ChannelId link : r.links) {
    lambda_[static_cast<std::size_t>(link)] += rate;
    add_flow(prev, link, rate);
    prev = link;
  }
  lambda_[static_cast<std::size_t>(r.ejection)] += rate;
  add_flow(prev, r.ejection, rate);
}

void ChannelGraph::add_stream(const StreamView& st, double rate) {
  lambda_[static_cast<std::size_t>(st.injection)] += rate;
  ChannelId prev = st.injection;
  for (ChannelId link : st.links) {
    lambda_[static_cast<std::size_t>(link)] += rate;
    add_flow(prev, link, rate);
    prev = link;
  }
  // Every stop's ejection channel serves a full copy of the message; only
  // the final stop adds a service-gating transition edge (the worm's tail
  // leaves the network through it).
  for (const MulticastStop& stop : st.stops) {
    lambda_[static_cast<std::size_t>(stop.ejection)] += rate;
  }
  add_flow(prev, st.stops.back().ejection, rate);
}

double ChannelGraph::transition_rate(ChannelId i, ChannelId j) const {
  const auto& flows = out_[static_cast<std::size_t>(i)];
  auto it = std::find_if(flows.begin(), flows.end(),
                         [j](const auto& p) { return p.first == j; });
  return it == flows.end() ? 0.0 : it->second;
}

double ChannelGraph::total_injection_rate() const {
  double total = 0.0;
  for (const ChannelInfo& ch : topo_->channels()) {
    if (ch.kind == ChannelKind::Injection) total += lambda_[static_cast<std::size_t>(ch.id)];
  }
  return total;
}

}  // namespace quarc
