#include "quarc/model/channel_graph.hpp"

namespace quarc {

ChannelGraph::ChannelGraph(const RoutePlan& plan, const Workload& load)
    : owned_(std::make_shared<const FlowGraph>(plan, load, FlowGating::Exact)),
      flows_(owned_.get()),
      scale_(load.message_rate) {}

ChannelGraph::ChannelGraph(const Topology& topo, const Workload& load)
    : owned_(std::make_shared<const FlowGraph>(topo, load, FlowGating::Exact)),
      flows_(owned_.get()),
      scale_(load.message_rate) {}

double ChannelGraph::total_injection_rate() const {
  double total = 0.0;
  for (const ChannelId c : flows_->injection_channels()) total += lambda(c);
  return total;
}

}  // namespace quarc
