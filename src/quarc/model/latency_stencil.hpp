// LatencyStencil — the rate-invariant structure of the Eq. 7-16 latency
// assembly, compiled once per FlowGraph and shared read-only by every
// rate point of a sweep (the companion of FlowGraph, one layer up).
//
// For a fixed (plan, workload shape) the latency walk never changes shape
// across a latency curve: which channels each of the N*(N-1) unicast
// paths and each per-source multicast stream crosses, the (1 - self
// share) boundary discount of every crossing, whether a crossing is
// gated out (an idle channel contributes no wait at any positive rate),
// the hop constants and the injection-offset indices of streams sharing
// a port — all of it is determined by the routes and the unit flow
// weights. Only the solved W/x vectors change per rate point.
//
// A LatencyStencil therefore precompiles every path into flat pools:
//
//   wait_ch_/wait_w_   one (channel, weight) entry per gated-in boundary
//                      crossing, weight = 1 - r_{prev->ch}/lambda_ch,
//                      in exact walk order
//   unicast_          one PathRec per ordered (s,d) pair, s-major —
//                      injection channel, entry span, hop count
//   streams_          per-source hardware stream records (entry span +
//                      the stream's injection-offset index: the i-th
//                      stream sharing an injection channel is delayed by
//                      i injection services — Eq. 14/15's one-port case)
//   software_         per-source software-multicast path records (the
//                      batched consecutive-unicast fallback)
//
// evaluate() then reduces a rate point to flat weighted accumulations
// over the solved channel vector: one multiply-add per crossing, no
// plan.route() calls, no O(log deg) self-share searches, no per-source
// allocation. The accumulation order is identical operation for
// operation to the direct Eq. 7-16 walk, so the results are not merely
// close — they are byte-identical (pinned across every registered
// topology spec by tests/test_latency_stencil.cpp), which is why
// ModelOptions::assembly is excluded from the scenario fingerprint.
//
// Thread safety: immutable after construction; concurrent sweeps share
// one instance (via FlowGraph::stencil()) across threads without locking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "quarc/model/solver.hpp"
#include "quarc/route/route_plan.hpp"
#include "quarc/topo/topology.hpp"

namespace quarc {

class FlowGraph;

class LatencyStencil {
 public:
  /// Compiles the Eq. 7-16 walk structure over `flows` (and the RoutePlan
  /// it carries). The FlowGraph must outlive the stencil.
  explicit LatencyStencil(const FlowGraph& flows);

  /// Sum over all ordered (s,d) pairs of Eq. 7's per-pair latency
  /// (path waits + M + D + 1), double-for-double identical to walking
  /// plan.route(s, d) + path_waiting for every pair. The caller divides
  /// by N(N-1) exactly as the direct walk does.
  double unicast_latency_sum(std::span<const ChannelSolution> channels, double msg) const;

  /// The same Eq. 7 sum for K solved rate points at once, over a
  /// CurveWorkspace-style SoA waiting-time pool (`waiting[c * lanes + l]`
  /// = lane l's W of channel c): paths outer, lanes inner, so the
  /// N(N-1)-path walk is amortised across the whole lane group and the
  /// per-crossing multiply-add runs over K contiguous doubles. Per lane
  /// the accumulation order is exactly unicast_latency_sum's, so
  /// sums[l] is byte-identical to the scalar sum over lane l's channels.
  /// `sums` and `scratch` are caller scratch of `lanes` doubles each.
  void unicast_latency_sum_lanes(const double* waiting, std::size_t lanes, double msg,
                                 double* sums, double* scratch) const;

  /// Whether source s initiates a multicast (its destination set is
  /// non-empty in the compiled plan).
  bool initiates_multicast(NodeId s) const {
    return mc_initiator_[static_cast<std::size_t>(s)] != 0;
  }
  /// Eq. 8-16 latency of source s's multicast: hardware streams get the
  /// E[max]-over-stream-waits plus the deterministic (offset + drain +
  /// hops) floor; software multicast the worst batched unicast.
  /// `stream_waits` is caller-provided scratch (cleared here, reused
  /// across sources and rate points — no per-source allocation).
  double multicast_latency(NodeId s, std::span<const ChannelSolution> channels, double msg,
                           std::vector<double>& stream_waits) const;

  std::size_t wait_entry_count() const { return wait_ch_.size(); }

 private:
  struct PathRec {
    ChannelId injection = kInvalidChannel;
    std::uint32_t begin = 0;  ///< into wait_ch_/wait_w_
    std::uint32_t end = 0;
    std::int32_t hops = 0;    ///< D of Eq. 7 / D_{j,c} of Eq. 15
    /// Hardware streams: position among the source's streams sharing this
    /// injection channel (the deterministic serialisation offset).
    /// Unicast/software paths: unused (0).
    std::int32_t offset_index = 0;
  };

  /// W[injection] plus the gated, discounted waits of every subsequent
  /// crossing — the compiled path_waiting().
  double path_wait(const PathRec& p, std::span<const ChannelSolution> channels) const {
    double total = channels[static_cast<std::size_t>(p.injection)].waiting_time;
    for (std::uint32_t e = p.begin; e < p.end; ++e) {
      total += wait_w_[e] * channels[static_cast<std::size_t>(wait_ch_[e])].waiting_time;
    }
    return total;
  }

  /// Appends one compiled path; returns its record.
  PathRec compile_path(const FlowGraph& flows, ChannelId injection,
                       std::span<const ChannelId> links, ChannelId ejection, int hops);

  int num_nodes_ = 0;
  bool hardware_ = false;
  std::vector<ChannelId> wait_ch_;
  AlignedVector<double> wait_w_;  ///< streamed per path per lane group
  std::vector<PathRec> unicast_;               ///< [s * (N-1) + rank(d)]
  std::vector<PathRec> mc_paths_;              ///< streams or software paths
  std::vector<std::uint32_t> mc_offset_;       ///< [N + 1] into mc_paths_
  std::vector<std::uint8_t> mc_initiator_;     ///< [N]
};

}  // namespace quarc
