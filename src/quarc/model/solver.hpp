// Fixed-point solver for the Eq. 6 service-time recursion.
//
// Service time of an ejection channel is the message length (the sink
// drains one flit per cycle); the service time of any other channel is the
// expected time its worm needs to clear it, which depends on the waiting
// and service times of the channels taken *next*:
//
//   x_i = sum_j P_{i->j} [ (1 - r_{i->j}/lambda_j) W_j + x_j + 1 ]
//
// with W_j the M/G/1 wait of channel j (Eq. 3/5) and the discount term
// removing the share of j's load that is channel i's own traffic (a worm
// never queues behind itself; in particular an ejection channel fed by a
// single link contributes zero waiting, as it must physically).
//
// Ring topologies make the next-channel graph cyclic (CW[i] feeds CW[i+1]
// all the way around), so the recursion is solved by fixed-point
// iteration. Saturation (rho >= 1 on any channel) is reported as a status
// rather than an error: latency curves legitimately end at an asymptote.
//
// Two iterations are available (SolverOptions::iteration):
//
//   * Anderson (default): downwind-ordered nonlinear Gauss-Seidel sweeps
//     accelerated by Anderson mixing over a small sliding window (AA(m),
//     m = anderson_window). Two structural facts make the historical
//     iteration slow near saturation, and this path removes both. First,
//     sweeping in channel-id order follows the ring direction, so
//     ejection-anchored information propagates upstream one hop per
//     sweep — the iteration Jacobian is (numerically measured) a ring of
//     eigenvalues at the per-hop attenuation radius, which also means no
//     extrapolation *over* that sweep can beat the radius: the sweep
//     order itself has to change. FlowGraph::sweep_order() is the fix: a
//     DFS post-order of the next-channel graph, so one sweep carries the
//     information the whole way around and only each cycle's closing
//     back edge stays stale. Second, the remaining wrap-edge/nonlinear
//     contraction is handled by Anderson mixing over the last m sweep
//     residuals (least-squares extrapolation with adaptive mixing).
//     Every extrapolated iterate is safeguarded — rejected (keeping the
//     always-valid swept iterate) unless it is finite, respects the
//     drain-time floor and stays inside the utilization guard on every
//     channel — and the window restarts (with a softer mix) whenever the
//     residual grows, so the worst case degenerates to the plain ordered
//     sweep. Convergence is declared by the sweep residual (max |delta x|
//     < tolerance, the historical criterion over an undamped sweep, i.e.
//     if anything stricter) and saturation only ever from a swept (never
//     an extrapolated) iterate. Near saturation this converges in single
//     digit iterations where the damped id-order sweep needs hundreds
//     (bench/micro_solver.cpp: 5898 -> 132 grid iterations, 272 -> 7 at
//     0.95 x saturation on the fig6 quarc:16 cell).
//   * GaussSeidel: the historical damped id-order sweep, byte-for-byte —
//     kept as the equivalence oracle and bench baseline.
//
// Both are deterministic: every quantity is a pure function of
// (structure, rate, options), never of workspace history or timing.
//
// The solver iterates directly over a FlowGraph's CSR pools: P_{i->j} and
// the self-share discount are rate-invariant and precomputed there, so a
// rate point costs one multiply per channel (lambda = rate * unit_lambda)
// plus the iteration itself — no graph rebuild, no per-solve allocation
// once a SolverWorkspace is warm. Seeding is deterministic: the initial
// x-vector is the closed-form zero-load service time per channel
// (M + FlowGraph::steps_to_eject), a pure function of (structure, rate) —
// never of previously solved points — so cache hits, shard splits and
// thread counts stay byte-identical while low-load points converge in a
// handful of iterations instead of walking up from the drain-time floor.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "quarc/model/channel_graph.hpp"
#include "quarc/model/flow_graph.hpp"
#include "quarc/topo/topology.hpp"
#include "quarc/util/aligned.hpp"
#include "quarc/util/error.hpp"

namespace quarc {

enum class SolveStatus { Converged, Saturated, MaxIterationsReached };

std::string to_string(SolveStatus s);

/// Which fixed-point iteration solve() runs (see the header comment).
enum class SolverIteration {
  Anderson,     ///< safeguarded Anderson-accelerated downwind sweeps (default)
  GaussSeidel,  ///< the historical damped Gauss-Seidel (equivalence oracle)
};

std::string to_string(SolverIteration it);

struct SolverOptions {
  int max_iterations = 20000;
  double tolerance = 1e-9;       ///< max |delta x| per sweep for convergence
  double damping = 0.5;          ///< new x = damping*update + (1-damping)*old
  double utilization_guard = 1.0 - 1e-6;  ///< rho at/above this => Saturated
  SolverIteration iteration = SolverIteration::Anderson;
  /// Sliding-window depth of the Anderson extrapolation (must be in
  /// [1, 8] — validated at construction so the fingerprinted value is
  /// always the effective one); ignored under GaussSeidel. Window 1 is
  /// secant-style AA(1) over the downwind sweep — still accelerated,
  /// just memoryless; use iteration = GaussSeidel for the plain
  /// historical sweep. Under anderson_auto_window this is the *cap*:
  /// the effective depth adapts per solve.
  int anderson_window = 3;
  /// Auto-tune the effective Anderson depth from the measured per-sweep
  /// contraction (default): the window deepens (up to anderson_window)
  /// while the residual contracts slowly — the regime where extrapolating
  /// over more history pays — and shallows back to secant when the sweep
  /// alone contracts fast, where stale rows only mislead the
  /// least-squares model. Deterministic: the depth is a pure function of
  /// the iterate trajectory, itself a pure function of (structure, rate,
  /// options). Off = the historical fixed-depth window.
  bool anderson_auto_window = true;

  friend bool operator==(const SolverOptions&, const SolverOptions&) = default;
};

/// Initial x-vector family. Both are pure functions of (structure, rate),
/// so either keeps the determinism contract; ZeroLoad is the production
/// default, DrainTime reproduces the historical cold start (kept so
/// bench/micro_solver.cpp can measure the difference).
enum class SolverSeed {
  ZeroLoad,   ///< x0 = M + steps_to_eject (closed-form zero-load service)
  DrainTime,  ///< x0 = M everywhere (the historical cold start)
};

/// Converged per-channel quantities.
struct ChannelSolution {
  double lambda = 0.0;        ///< arrival rate (messages/cycle)
  double service_time = 0.0;  ///< mean service time x (cycles)
  double waiting_time = 0.0;  ///< M/G/1 mean wait W (cycles)
  double utilization = 0.0;   ///< rho = lambda * x
};

/// Reusable per-thread solve state. solve() fully reseeds every entry —
/// including the Anderson history buffers, whose generation counters and
/// contents are reset before any element is read — so a warm workspace
/// yields bytes identical to a cold one; reuse is purely an allocation
/// saving (asserted by the flow-graph and solver test-suites).
struct SolverWorkspace {
  std::vector<ChannelSolution> solution;

  // ---- Anderson acceleration history (solver-internal) ----
  std::vector<std::uint32_t> aa_active;  ///< channels the sweep updates
  std::vector<double> aa_x;              ///< iterate snapshot before a sweep
  std::vector<double> aa_g;              ///< (window+1) rows of sweep results
  std::vector<double> aa_f;              ///< (window+1) rows of residuals

  // ---- latency-assembly scratch (performance_model.cpp) ----
  /// Per-source multicast stream waits (Eq. 12-13 input), reused across
  /// sources and rate points instead of reallocated per source.
  std::vector<double> stream_waits;
};

/// Per-lane outcome of a batched solve (solve_batch): the status and the
/// iteration count the scalar solve of the same (rate, seed) would report.
struct LaneResult {
  SolveStatus status = SolveStatus::MaxIterationsReached;
  int iterations = 0;
};

/// Reusable state for solve_batch: the per-channel solution of K rate
/// points ("lanes") in channel-major, point-minor SoA layout — entry
/// (channel c, lane l) of every pool lives at [c * lanes + l], so one
/// channel visit of the sweep touches K contiguous doubles (64-byte
/// aligned: a K = 8 lane group is exactly one cache line). Like
/// SolverWorkspace, every entry is fully reseeded per solve_batch — reuse
/// is purely an allocation saving.
struct CurveWorkspace {
  std::size_t lanes = 0;     ///< K of the most recent solve_batch
  std::size_t channels = 0;  ///< channel count of the bound FlowGraph

  // ---- SoA solution pools (the batched ChannelSolution fields) ----
  AlignedVector<double> lambda;        ///< arrival rates
  AlignedVector<double> service_time;  ///< x
  AlignedVector<double> waiting_time;  ///< W
  AlignedVector<double> utilization;   ///< rho

  /// Per-lane statuses/iterations of the most recent solve_batch.
  std::vector<LaneResult> results;

  /// Scatters lane `lane` into the AoS form every scalar consumer reads;
  /// byte-identical to the SolverWorkspace::solution the scalar solve of
  /// that lane's rate would have produced.
  void extract(std::size_t lane, std::vector<ChannelSolution>& out) const {
    out.resize(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      const std::size_t at = c * lanes + lane;
      out[c] = ChannelSolution{lambda[at], service_time[at], waiting_time[at], utilization[at]};
    }
  }

  // ---- latency-assembly scratch (performance_model.cpp) ----
  std::vector<ChannelSolution> solution_scratch;  ///< extract() target
  std::vector<double> stream_waits;               ///< Eq. 12-13 input
  AlignedVector<double> unicast_sums;             ///< per-lane Eq. 7 sums
  AlignedVector<double> path_scratch;             ///< per-path lane waits

  // ---- solver-internal SoA iteration state (solver.cpp) ----
  std::vector<std::uint32_t> aa_active;  ///< channels the sweep updates
  AlignedVector<double> aa_x;            ///< [na * K] pre-sweep snapshots
  AlignedVector<double> aa_g;            ///< [(window+1) * na * K] sweep results
  AlignedVector<double> aa_f;            ///< [(window+1) * na * K] residuals
  AlignedVector<double> upd;             ///< per-lane channel update scratch
  AlignedVector<double> delta;           ///< per-lane sweep residuals
  AlignedVector<double> rnorm2;          ///< per-lane residual norms
  AlignedVector<double> nm_dot;          ///< [8 * 8 * K] normal-equation dots
  AlignedVector<double> nm_rhs;          ///< [8 * K] normal-equation rhs
  AlignedVector<double> gamma;           ///< [8 * K] per-lane mixing weights
  AlignedVector<double> dg_gamma;        ///< per-lane dG*gamma scratch
  AlignedVector<double> df_gamma;        ///< per-lane dF*gamma scratch
  std::vector<double> beta;              ///< per-lane adaptive mixing
  std::vector<double> prev_rnorm2;       ///< per-lane previous residual norm
  std::vector<int> hist;                 ///< per-lane valid history rows
  std::vector<int> w_eff;                ///< per-lane effective window depth
  std::vector<int> cols;                 ///< per-lane extrapolation columns
  std::vector<std::uint8_t> active;      ///< lanes still iterating
  std::vector<std::uint8_t> stopped;     ///< refresh early-stop mask
  std::vector<std::uint8_t> saturated;   ///< refresh saturation verdicts
  std::vector<std::uint8_t> conv;        ///< lanes converging this sweep
  std::vector<std::uint8_t> extrap;      ///< lanes with a usable gamma
  std::vector<std::uint8_t> valid;       ///< lanes whose candidate passed
  /// Live-lane window: the smallest index range [lane_lo, lane_hi)
  /// containing every active lane, re-tightened whenever lanes retire.
  /// The flops-dense lane loops run over this window instead of [0, K) —
  /// lanes typically retire in rate order (low rates converge first,
  /// saturated top lanes stop in the first sweeps), so the window tracks
  /// the stragglers and the batch stops paying full-K work for retired
  /// lanes. Byte-neutral: every lane's arithmetic is elementwise, and a
  /// retired lane's pools are never written, so skipping its discarded
  /// updates cannot move a byte of any live lane.
  std::size_t lane_lo = 0;
  std::size_t lane_hi = 0;
  std::vector<std::size_t> retry_lanes;  ///< seeded-fallback lane ids
  std::vector<double> retry_rates;       ///< seeded-fallback sub-batch rates
  /// Sub-workspace for the seeded-fallback cold re-solve (one level deep:
  /// the fallback itself is never seeded).
  std::unique_ptr<CurveWorkspace> fallback;
  /// Per-lane scratch for the GaussSeidel oracle path (solved scalar).
  SolverWorkspace scalar;
};

class ServiceTimeSolver {
 public:
  /// Binds the rate-invariant structure; each solve() call supplies the
  /// message rate. The FlowGraph must outlive the solver.
  ServiceTimeSolver(const FlowGraph& flows, int message_length, SolverOptions options = {});
  /// Compatibility: binds the graph's structure and its message rate
  /// (solve() with no arguments solves at that rate). The graph must
  /// outlive the solver.
  ServiceTimeSolver(const Topology& topo, const ChannelGraph& graph, int message_length,
                    SolverOptions options = {});

  /// Runs the iteration in `ws` (resized, fully reseeded — results never
  /// depend on the workspace's previous contents). Deterministic.
  SolveStatus solve(double message_rate, SolverWorkspace& ws,
                    SolverSeed seed = SolverSeed::ZeroLoad);
  /// Same iteration from an explicit per-channel initial x-vector (one
  /// entry per channel) — the continuation-seeding hot path: a sweep
  /// point starts from the interpolated spine solutions instead of the
  /// zero-load closed form. The hint is sanitised per channel before the
  /// first iteration: ejection channels stay pinned at M, idle channels
  /// at the drain floor, and every loaded channel is clamped into
  /// [zero-load floor, strictly inside the utilization guard] — so a
  /// hint can never fake a saturation diagnosis (the first refresh sees
  /// rho < guard by construction) and never undercuts the closed-form
  /// seed. A seeded solve that still fails to converge falls back to the
  /// zero-load start (iteration counts accumulate), so a hint can never
  /// produce a worse status than the cold solve — only a cheaper path to
  /// the same answer. Determinism: the result is a pure function of (structure,
  /// rate, options, x0) — callers must derive x0 from fingerprinted
  /// state only (the spine qualifies; "previous point on this thread"
  /// does not).
  SolveStatus solve(double message_rate, SolverWorkspace& ws, std::span<const double> x0);
  /// Compatibility: solves at the bound ChannelGraph's rate into an
  /// internal workspace; idempotent (re-running re-solves from scratch).
  SolveStatus solve();

  /// Solves `rates.size()` rate points in one SoA pass: the downwind
  /// sweep + Anderson mixing advance all lanes per channel visit, with
  /// per-lane masks retiring converged/saturated lanes while stragglers
  /// keep iterating. Vectorization is across lanes, never within one —
  /// every lane executes the exact scalar arithmetic order, so lane l's
  /// solution, status and iteration count are BYTE-IDENTICAL to
  /// solve(rates[l], ws[, x0 slice l]) (pinned by tests and the
  /// -march=native CI lane). `x0` is empty (zero-load seeds) or
  /// lane-major: lane l's per-channel hint occupies
  /// x0[l * num_channels, (l+1) * num_channels) and gets the scalar
  /// seeded solve's clamps and cold-start fallback per lane. All rates
  /// must be positive (lane-invariant channel gating; rate-0 points
  /// belong on the scalar path). Under SolverIteration::GaussSeidel each
  /// lane runs the scalar oracle directly. Does not touch channels() /
  /// iterations_used() — per-lane results live in `cw` (the returned span
  /// views cw.results). Deterministic, like every other solve.
  std::span<const LaneResult> solve_batch(std::span<const double> rates, CurveWorkspace& cw,
                                          std::span<const double> x0 = {});

  /// Per-channel quantities of the most recent solve (index = ChannelId).
  /// channels()/channel()/max_utilization() reference the workspace that
  /// solve ran in: after solve(rate, ws) they stay valid only while `ws`
  /// is alive and unmodified (the no-argument solve() uses an internal
  /// workspace, which lives as long as the solver). All three require a
  /// completed solve() and throw InvalidArgument before the first one.
  const std::vector<ChannelSolution>& channels() const {
    QUARC_REQUIRE(last_ != nullptr, "ServiceTimeSolver::channels() requires a prior solve()");
    return last_->solution;
  }
  const ChannelSolution& channel(ChannelId c) const {
    return channels()[static_cast<std::size_t>(c)];
  }
  int iterations_used() const { return iterations_used_; }
  /// Highest channel utilisation and the channel achieving it. Requires a
  /// prior solve() (throws InvalidArgument otherwise).
  double max_utilization(ChannelId* argmax = nullptr) const;
  /// Signed utilization-guard residual of the most recent solve:
  /// max_utilization() - utilization_guard. Negative for converged
  /// points (how far inside the guard the bottleneck sits), >= 0 when
  /// the solve tripped the guard. The saturation probe roots on this.
  double guard_residual() const { return max_utilization() - options_.utilization_guard; }
  const SolverOptions& options() const { return options_; }

 private:
  /// Dispatches the configured iteration over an already-seeded ws.
  SolveStatus run_iteration(SolverWorkspace& ws);
  SolveStatus solve_gauss_seidel(SolverWorkspace& ws);
  SolveStatus solve_anderson(SolverWorkspace& ws);
  /// The batched Anderson iteration over already-seeded SoA lanes.
  void anderson_batch(CurveWorkspace& cw);
  /// Batched refresh_waits over the lanes in `mask`, replicating the
  /// scalar early return per lane: a lane that hits the guard at channel
  /// c stops there (its W at c and everything after stay untouched).
  /// Writes per-lane saturation verdicts into `saturated`.
  void refresh_waits_batch(CurveWorkspace& cw, const std::vector<std::uint8_t>& mask,
                           std::vector<std::uint8_t>& saturated) const;
  /// Batched ordered_sweep: per-lane residuals into cw.delta; retired
  /// lanes are read but never written.
  void ordered_sweep_batch(CurveWorkspace& cw) const;
  /// Recomputes W/rho from the current x; true => a channel hit the guard.
  bool refresh_waits(std::vector<ChannelSolution>& sol) const;
  /// One damped Gauss-Seidel sweep of Eq. 6 in channel-id order (the
  /// historical iteration); returns max |delta x|.
  double gauss_seidel_sweep(std::vector<ChannelSolution>& sol) const;
  /// One undamped nonlinear Gauss-Seidel sweep in the FlowGraph's
  /// downwind order, refreshing each channel's wait in place; returns
  /// max |delta x|. The accelerated path's engine.
  double ordered_sweep(std::vector<ChannelSolution>& sol) const;

  const FlowGraph* flows_;
  int message_length_;
  SolverOptions options_;
  /// Rate for the compatibility solve(); < 0 marks "not bound" (the
  /// FlowGraph constructor), which the no-argument solve() rejects.
  double bound_rate_ = -1.0;
  SolverWorkspace own_;               ///< backs the compatibility solve()
  const SolverWorkspace* last_ = nullptr;  ///< null until the first solve()
  int iterations_used_ = 0;
};

}  // namespace quarc
