// Fixed-point solver for the Eq. 6 service-time recursion.
//
// Service time of an ejection channel is the message length (the sink
// drains one flit per cycle); the service time of any other channel is the
// expected time its worm needs to clear it, which depends on the waiting
// and service times of the channels taken *next*:
//
//   x_i = sum_j P_{i->j} [ (1 - r_{i->j}/lambda_j) W_j + x_j + 1 ]
//
// with W_j the M/G/1 wait of channel j (Eq. 3/5) and the discount term
// removing the share of j's load that is channel i's own traffic (a worm
// never queues behind itself; in particular an ejection channel fed by a
// single link contributes zero waiting, as it must physically).
//
// Ring topologies make the next-channel graph cyclic (CW[i] feeds CW[i+1]
// all the way around), so the recursion is solved by damped fixed-point
// iteration. Saturation (rho >= 1 on any channel) is reported as a status
// rather than an error: latency curves legitimately end at an asymptote.
//
// The solver iterates directly over a FlowGraph's CSR pools: P_{i->j} and
// the self-share discount are rate-invariant and precomputed there, so a
// rate point costs one multiply per channel (lambda = rate * unit_lambda)
// plus the iteration itself — no graph rebuild, no per-solve allocation
// once a SolverWorkspace is warm. Seeding is deterministic: the initial
// x-vector is the closed-form zero-load service time per channel
// (M + FlowGraph::steps_to_eject), a pure function of (structure, rate) —
// never of previously solved points — so cache hits, shard splits and
// thread counts stay byte-identical while low-load points converge in a
// handful of iterations instead of walking up from the drain-time floor.
#pragma once

#include <string>
#include <vector>

#include "quarc/model/channel_graph.hpp"
#include "quarc/model/flow_graph.hpp"
#include "quarc/topo/topology.hpp"

namespace quarc {

enum class SolveStatus { Converged, Saturated, MaxIterationsReached };

std::string to_string(SolveStatus s);

struct SolverOptions {
  int max_iterations = 20000;
  double tolerance = 1e-9;       ///< max |delta x| per sweep for convergence
  double damping = 0.5;          ///< new x = damping*update + (1-damping)*old
  double utilization_guard = 1.0 - 1e-6;  ///< rho at/above this => Saturated
};

/// Initial x-vector family. Both are pure functions of (structure, rate),
/// so either keeps the determinism contract; ZeroLoad is the production
/// default, DrainTime reproduces the historical cold start (kept so
/// bench/micro_solver.cpp can measure the difference).
enum class SolverSeed {
  ZeroLoad,   ///< x0 = M + steps_to_eject (closed-form zero-load service)
  DrainTime,  ///< x0 = M everywhere (the historical cold start)
};

/// Converged per-channel quantities.
struct ChannelSolution {
  double lambda = 0.0;        ///< arrival rate (messages/cycle)
  double service_time = 0.0;  ///< mean service time x (cycles)
  double waiting_time = 0.0;  ///< M/G/1 mean wait W (cycles)
  double utilization = 0.0;   ///< rho = lambda * x
};

/// Reusable per-thread solve state. solve() fully reseeds every entry, so
/// a warm workspace yields bytes identical to a cold one — reuse is purely
/// an allocation saving (asserted by the flow-graph test-suite).
struct SolverWorkspace {
  std::vector<ChannelSolution> solution;
};

class ServiceTimeSolver {
 public:
  /// Binds the rate-invariant structure; each solve() call supplies the
  /// message rate. The FlowGraph must outlive the solver.
  ServiceTimeSolver(const FlowGraph& flows, int message_length, SolverOptions options = {});
  /// Compatibility: binds the graph's structure and its message rate
  /// (solve() with no arguments solves at that rate). The graph must
  /// outlive the solver.
  ServiceTimeSolver(const Topology& topo, const ChannelGraph& graph, int message_length,
                    SolverOptions options = {});

  /// Runs the iteration in `ws` (resized, fully reseeded — results never
  /// depend on the workspace's previous contents). Deterministic.
  SolveStatus solve(double message_rate, SolverWorkspace& ws,
                    SolverSeed seed = SolverSeed::ZeroLoad);
  /// Compatibility: solves at the bound ChannelGraph's rate into an
  /// internal workspace; idempotent (re-running re-solves from scratch).
  SolveStatus solve();

  /// Per-channel quantities of the most recent solve (index = ChannelId).
  /// channels()/channel()/max_utilization() reference the workspace that
  /// solve ran in: after solve(rate, ws) they stay valid only while `ws`
  /// is alive and unmodified (the no-argument solve() uses an internal
  /// workspace, which lives as long as the solver).
  const std::vector<ChannelSolution>& channels() const { return last_->solution; }
  const ChannelSolution& channel(ChannelId c) const {
    return last_->solution[static_cast<std::size_t>(c)];
  }
  int iterations_used() const { return iterations_used_; }
  /// Highest channel utilisation and the channel achieving it.
  double max_utilization(ChannelId* argmax = nullptr) const;

 private:
  const FlowGraph* flows_;
  int message_length_;
  SolverOptions options_;
  /// Rate for the compatibility solve(); < 0 marks "not bound" (the
  /// FlowGraph constructor), which the no-argument solve() rejects.
  double bound_rate_ = -1.0;
  SolverWorkspace own_;            ///< backs the compatibility solve()
  const SolverWorkspace* last_ = &own_;
  int iterations_used_ = 0;
};

}  // namespace quarc
