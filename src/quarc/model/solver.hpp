// Fixed-point solver for the Eq. 6 service-time recursion.
//
// Service time of an ejection channel is the message length (the sink
// drains one flit per cycle); the service time of any other channel is the
// expected time its worm needs to clear it, which depends on the waiting
// and service times of the channels taken *next*:
//
//   x_i = sum_j P_{i->j} [ (1 - r_{i->j}/lambda_j) W_j + x_j + 1 ]
//
// with W_j the M/G/1 wait of channel j (Eq. 3/5) and the discount term
// removing the share of j's load that is channel i's own traffic (a worm
// never queues behind itself; in particular an ejection channel fed by a
// single link contributes zero waiting, as it must physically).
//
// Ring topologies make the next-channel graph cyclic (CW[i] feeds CW[i+1]
// all the way around), so the recursion is solved by damped fixed-point
// iteration. Saturation (rho >= 1 on any channel) is reported as a status
// rather than an error: latency curves legitimately end at an asymptote.
#pragma once

#include <string>
#include <vector>

#include "quarc/model/channel_graph.hpp"
#include "quarc/topo/topology.hpp"

namespace quarc {

enum class SolveStatus { Converged, Saturated, MaxIterationsReached };

std::string to_string(SolveStatus s);

struct SolverOptions {
  int max_iterations = 20000;
  double tolerance = 1e-9;       ///< max |delta x| per sweep for convergence
  double damping = 0.5;          ///< new x = damping*update + (1-damping)*old
  double utilization_guard = 1.0 - 1e-6;  ///< rho at/above this => Saturated
};

/// Converged per-channel quantities.
struct ChannelSolution {
  double lambda = 0.0;        ///< arrival rate (messages/cycle)
  double service_time = 0.0;  ///< mean service time x (cycles)
  double waiting_time = 0.0;  ///< M/G/1 mean wait W (cycles)
  double utilization = 0.0;   ///< rho = lambda * x
};

class ServiceTimeSolver {
 public:
  ServiceTimeSolver(const Topology& topo, const ChannelGraph& graph, int message_length,
                    SolverOptions options = {});

  /// Runs the iteration; idempotent (re-running re-solves from scratch).
  SolveStatus solve();

  const std::vector<ChannelSolution>& channels() const { return solution_; }
  const ChannelSolution& channel(ChannelId c) const {
    return solution_[static_cast<std::size_t>(c)];
  }
  int iterations_used() const { return iterations_used_; }
  /// Highest channel utilisation and the channel achieving it.
  double max_utilization(ChannelId* argmax = nullptr) const;

 private:
  const Topology* topo_;
  const ChannelGraph* graph_;
  int message_length_;
  SolverOptions options_;
  std::vector<ChannelSolution> solution_;
  int iterations_used_ = 0;
};

}  // namespace quarc
