#include "quarc/model/flow_graph.hpp"

#include <algorithm>
#include <cmath>

#include "quarc/model/latency_stencil.hpp"
#include "quarc/util/error.hpp"

namespace quarc {

// Out of line: ~unique_ptr<const LatencyStencil> needs the complete type.
FlowGraph::~FlowGraph() = default;

const LatencyStencil& FlowGraph::stencil() const {
  std::call_once(stencil_once_, [this] { stencil_ = std::make_unique<LatencyStencil>(*this); });
  return *stencil_;
}

namespace {

/// One accumulating adjacency row during compilation (merged duplicates,
/// insertion order). Row sizes are bounded by the router degree, so the
/// linear merge scan is cheap — and paid once per (plan, shape), never per
/// rate point.
using BuildRow = std::vector<std::pair<ChannelId, double>>;

void add_flow(std::vector<BuildRow>& rows, ChannelId from, ChannelId to, double rate) {
  BuildRow& flows = rows[static_cast<std::size_t>(from)];
  auto it = std::find_if(flows.begin(), flows.end(),
                         [to](const auto& p) { return p.first == to; });
  if (it == flows.end()) {
    flows.emplace_back(to, rate);
  } else {
    it->second += rate;
  }
}

}  // namespace

FlowGraph::FlowGraph(const RoutePlan& plan, const Workload& shape, FlowGating gating)
    : plan_(&plan), topo_(&plan.topology()), alpha_(shape.multicast_fraction) {
  accumulate(plan, shape, gating);
}

FlowGraph::FlowGraph(const Topology& topo, const Workload& shape, FlowGating gating)
    : topo_(&topo), alpha_(shape.multicast_fraction) {
  const bool multicast = gating == FlowGating::Exact ? shape.multicast_rate() > 0.0
                                                     : shape.multicast_fraction > 0.0;
  owned_plan_ = std::make_unique<const RoutePlan>(topo, multicast ? shape.pattern.get() : nullptr);
  plan_ = owned_plan_.get();
  accumulate(*plan_, shape, gating);
}

void FlowGraph::accumulate(const RoutePlan& plan, const Workload& shape, FlowGating gating) {
  const Topology& topo = plan.topology();
  shape.validate(topo);

  const bool unicast = gating == FlowGating::Exact ? shape.unicast_rate() > 0.0
                                                   : shape.multicast_fraction < 1.0;
  const bool multicast = gating == FlowGating::Exact ? shape.multicast_rate() > 0.0
                                                     : shape.multicast_fraction > 0.0;
  QUARC_REQUIRE(!multicast || plan.pattern() == shape.pattern.get(),
                "route plan was compiled with a different multicast pattern");

  const auto nch = static_cast<std::size_t>(topo.num_channels());
  unit_lambda_.assign(nch, 0.0);
  is_ejection_.assign(nch, 0);
  for (const ChannelInfo& ch : topo.channels()) {
    if (ch.kind == ChannelKind::Ejection) is_ejection_[static_cast<std::size_t>(ch.id)] = 1;
    if (ch.kind == ChannelKind::Injection) injection_.push_back(ch.id);
  }

  std::vector<BuildRow> rows(nch);
  const int n = topo.num_nodes();

  auto add_route = [&](const RouteView& r, double rate) {
    unit_lambda_[static_cast<std::size_t>(r.injection)] += rate;
    ChannelId prev = r.injection;
    for (ChannelId link : r.links) {
      unit_lambda_[static_cast<std::size_t>(link)] += rate;
      add_flow(rows, prev, link, rate);
      prev = link;
    }
    unit_lambda_[static_cast<std::size_t>(r.ejection)] += rate;
    add_flow(rows, prev, r.ejection, rate);
  };
  auto add_stream = [&](const StreamView& st, double rate) {
    unit_lambda_[static_cast<std::size_t>(st.injection)] += rate;
    ChannelId prev = st.injection;
    for (ChannelId link : st.links) {
      unit_lambda_[static_cast<std::size_t>(link)] += rate;
      add_flow(rows, prev, link, rate);
      prev = link;
    }
    // Every stop's ejection channel serves a full copy of the message;
    // only the final stop adds a service-gating transition edge (the
    // worm's tail leaves the network through it).
    for (const MulticastStop& stop : st.stops) {
      unit_lambda_[static_cast<std::size_t>(stop.ejection)] += rate;
    }
    add_flow(rows, prev, st.stops.back().ejection, rate);
  };

  // Unit weights: contributions at message_rate = 1 with the shape's
  // multicast fraction, in exactly the accumulation order the historical
  // per-point ChannelGraph used.
  if (unicast) {
    const double per_dest = (1.0 - shape.multicast_fraction) / static_cast<double>(n - 1);
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId d = 0; d < n; ++d) {
        if (s == d) continue;
        add_route(plan.route(s, d), per_dest);
      }
    }
  }
  if (multicast) {
    const double mc_unit = shape.multicast_fraction;
    for (NodeId s = 0; s < n; ++s) {
      if (plan.multicast_dests(s).empty()) continue;
      if (plan.hardware_streams()) {
        for (std::size_t i = 0; i < plan.stream_count(s); ++i) {
          add_stream(plan.stream(s, i), mc_unit);
        }
      } else {
        // Software multicast: one unicast per destination.
        for (NodeId d : plan.multicast_dests(s)) add_route(plan.route(s, d), mc_unit);
      }
    }
  }

  // Flatten into CSR, each row sorted by next-channel id (unique within a
  // row by construction, so the sort is stable in effect and the sorted
  // row supports binary-search lookup).
  std::size_t nnz = 0;
  for (const BuildRow& r : rows) nnz += r.size();
  row_offset_.assign(nch + 1, 0);
  next_.reserve(nnz);
  unit_rate_.reserve(nnz);
  prob_.reserve(nnz);
  self_share_.reserve(nnz);
  for (std::size_t c = 0; c < nch; ++c) {
    BuildRow& r = rows[c];
    std::sort(r.begin(), r.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [to, rate] : r) {
      next_.push_back(to);
      unit_rate_.push_back(rate);
      prob_.push_back(rate / unit_lambda_[c]);
      self_share_.push_back(rate / unit_lambda_[static_cast<std::size_t>(to)]);
    }
    row_offset_[c + 1] = static_cast<std::uint32_t>(next_.size());
  }

  compute_steps_to_eject();
  compute_sweep_order();
}

void FlowGraph::compute_sweep_order() {
  // Iterative DFS post-order over the loaded non-ejection channels, edges
  // c -> next(c): a channel is emitted only after everything it reads, so
  // a sweep in this order is downwind (see the header). Roots ascend by
  // id and each row's neighbors are visited in CSR (sorted) order, so the
  // order is a pure function of the structure — byte-determinism safe.
  const std::size_t nch = unit_lambda_.size();
  sweep_order_.clear();
  sweep_order_.reserve(nch);
  std::vector<std::uint8_t> state(nch, 0);  // 0 unvisited, 1 active, 2 done
  const auto eligible = [&](std::size_t c) {
    return state[c] == 0 && is_ejection_[c] == 0 && unit_lambda_[c] > 0.0;
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;  // (channel, next edge)
  for (std::size_t root = 0; root < nch; ++root) {
    if (!eligible(root)) continue;
    state[root] = 1;
    stack.push_back({static_cast<std::uint32_t>(root), row_offset_[root]});
    while (!stack.empty()) {
      auto& [c, edge] = stack.back();
      bool descended = false;
      while (edge < row_offset_[c + 1]) {
        const auto t = static_cast<std::size_t>(next_[edge++]);
        if (eligible(t)) {
          state[t] = 1;
          stack.push_back({static_cast<std::uint32_t>(t), row_offset_[t]});
          descended = true;
          break;
        }
      }
      if (descended) continue;
      state[c] = 2;
      sweep_order_.push_back(static_cast<ChannelId>(c));
      stack.pop_back();
    }
  }
}

void FlowGraph::compute_steps_to_eject() {
  // Zero-load recursion of Eq. 6 (all waits zero), with the message drain
  // time factored out: h_i = sum_j P_{i->j} (1 + h_j), h = 0 at ejection.
  // This is the expected-absorption-time system of the transition chain;
  // Gauss-Seidel value iteration in channel-id order converges geometric-
  // ally even on the cyclic ring graphs (the chain always leaks into the
  // ejection sinks). The result is a pure function of the structure, so
  // the warm-start seed derived from it is identical wherever — and in
  // whatever order — a (fingerprint, rate) point is solved.
  const std::size_t nch = unit_lambda_.size();
  steps_to_eject_.assign(nch, 0.0);
  constexpr int kMaxIterations = 4096;
  constexpr double kTolerance = 1e-12;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    double max_delta = 0.0;
    for (std::size_t c = 0; c < nch; ++c) {
      if (is_ejection_[c] != 0 || unit_lambda_[c] <= 0.0) continue;
      double h = 0.0;
      const auto begin = row_offset_[c];
      const auto end = row_offset_[c + 1];
      for (std::uint32_t k = begin; k < end; ++k) {
        h += prob_[k] * (1.0 + steps_to_eject_[static_cast<std::size_t>(next_[k])]);
      }
      max_delta = std::max(max_delta, std::abs(h - steps_to_eject_[c]));
      steps_to_eject_[c] = h;
    }
    if (max_delta < kTolerance) break;
  }
}

double FlowGraph::unit_transition_rate(ChannelId i, ChannelId j) const {
  const auto row_next = next(i);
  const auto it = std::lower_bound(row_next.begin(), row_next.end(), j);
  if (it == row_next.end() || *it != j) return 0.0;
  return unit_rate(i)[static_cast<std::size_t>(it - row_next.begin())];
}

double FlowGraph::edge_self_share(ChannelId i, ChannelId j) const {
  const auto row_next = next(i);
  const auto it = std::lower_bound(row_next.begin(), row_next.end(), j);
  if (it == row_next.end() || *it != j) return 0.0;
  return self_share(i)[static_cast<std::size_t>(it - row_next.begin())];
}

}  // namespace quarc
