// Facade assembling the paper's full analytical model (Sections 2.1-2.2).
//
// Pipeline: RoutePlan (routes compiled once) -> FlowGraph (rate-invariant
// Eq. 1-2 flow structure, compiled once) -> ServiceTimeSolver (Eq. 3-6,
// solved per rate point from a deterministically seeded SolverWorkspace)
// -> latency assembly:
//
//   unicast  (Eq. 7):  L(s,d) = sum of path waits + (D+1) + M, averaged
//                      over all source/destination pairs;
//   multicast (Eq. 8-16): per-port stream waits W_{j,c} define rates
//                      mu_{j,c} = 1/W_{j,c}; the multicast wait is
//                      E[max of Exp(mu_{j,c})] (Eq. 12-13), the hop term is
//                      D_j = max_c D_{j,c} (Eq. 15), and the network
//                      average is the mean over initiating nodes (Eq. 16).
//
// The +1 in the hop terms accounts for the ejection stage so that the
// zero-load latency is exactly M + D + 1 cycles, matching the simulator's
// timing cycle-for-cycle (see DESIGN.md "zero-load anchor").
//
// Topologies without hardware multicast (Spidergon, torus) get a
// batch-of-unicasts estimate: the i-th unicast of the software multicast
// additionally waits i service times at the shared injection channel and
// the group latency is the maximum over the batch. This extends the paper
// (which models only the all-port case) and is validated against the
// simulator in bench/broadcast_scaling.
//
// Assembly defaults to the FlowGraph's compiled LatencyStencil
// (latency_stencil.hpp): the whole Eq. 7-16 walk structure — boundary
// discounts, gates, hop constants, stream offsets — is precompiled into
// flat per-channel weight pools, so a rate point is a flat weighted
// accumulation over the solved W/x vectors. The historical per-route
// walk remains available as LatencyAssembly::DirectWalk and produces
// byte-identical results (the accumulation order is preserved operation
// for operation; pinned by tests/test_latency_stencil.cpp). Neither path
// derives routes, rebuilds graphs or allocates per route/source inside
// evaluate() (the Eq. 12-13 stream waits live in the SolverWorkspace).
// A sweep compiles one plan + one FlowGraph per scenario and shares both
// across every rate point (see sweep.hpp); the Topology/RoutePlan
// constructors compile a private FlowGraph for one-off evaluations.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "quarc/model/flow_graph.hpp"
#include "quarc/model/solver.hpp"
#include "quarc/route/route_plan.hpp"
#include "quarc/traffic/workload.hpp"

namespace quarc {

/// How evaluate() assembles the Eq. 7-16 latencies from the solved
/// channel vector. Both produce byte-identical results (pinned across
/// every registered topology spec by tests/test_latency_stencil.cpp) —
/// which is why this knob is excluded from the scenario fingerprint.
enum class LatencyAssembly {
  /// Flat weighted accumulation over the FlowGraph's compiled
  /// LatencyStencil (default): no route walks, no per-edge searches.
  Stencil,
  /// The historical per-pair plan.route() + path_waiting() walk — kept as
  /// the equivalence oracle and bench baseline.
  DirectWalk,
};

/// How the saturation rate is searched (sweep.hpp's probe functions; the
/// knob lives here because ModelOptions is what every probe call takes).
/// Both probes certify the same ~1e-3 relative precision and both only
/// ever return a rate the solver actually converged at; they differ in
/// cost, not contract — which is why the choice IS fingerprinted (the
/// certified rate, and with it auto grids and the continuation spine,
/// moves at the certification tolerance between them).
enum class SaturationProbe {
  /// Superlinear secant on the utilization-guard residual (default): the
  /// bottleneck load rho(r) is superlinear in r, so r/rho(r) is close to
  /// affine and a two-point fit of it predicts the rho = guard root with
  /// Ridders-style safeguarding (any overshoot tightens a bracket that a
  /// bisection fallback can always finish). O(4-6) solver runs.
  Ridders,
  /// The historical doubling + bisection search (~40 solver runs) — kept
  /// as the safeguarded fallback and the bench/CI comparison baseline.
  Bisection,
};

std::string to_string(SaturationProbe p);

struct ModelOptions {
  SolverOptions solver;
  LatencyAssembly assembly = LatencyAssembly::Stencil;
  SaturationProbe probe = SaturationProbe::Ridders;
};

struct ModelResult {
  SolveStatus status = SolveStatus::Converged;
  /// Mean unicast latency over all (s,d) pairs; +inf when saturated.
  double avg_unicast_latency = 0.0;
  /// Mean multicast latency (Eq. 16); +inf when saturated; meaningful only
  /// when has_multicast.
  double avg_multicast_latency = 0.0;
  bool has_multicast = false;
  /// Eq. 14 per initiating node (empty without multicast traffic).
  std::vector<double> per_node_multicast_latency;
  double max_utilization = 0.0;
  ChannelId bottleneck = kInvalidChannel;
  int solver_iterations = 0;
  /// Converged per-channel queueing quantities (index = ChannelId).
  std::vector<ChannelSolution> channels;
};

class PerformanceModel {
 public:
  /// The workload is validated against the topology on construction; a
  /// private RoutePlan + FlowGraph are compiled for this model instance.
  PerformanceModel(const Topology& topo, Workload load, ModelOptions options = {});
  /// Shares an externally compiled plan; a private FlowGraph is compiled
  /// over it. The plan must outlive the model and must have been compiled
  /// with the workload's pattern.
  PerformanceModel(const RoutePlan& plan, Workload load, ModelOptions options = {});
  /// Shares an externally compiled FlowGraph (the sweep hot path: one
  /// structure, many rate points — nothing is rebuilt per point). The
  /// FlowGraph must outlive the model and must have been compiled with
  /// the workload's pattern and multicast fraction.
  PerformanceModel(const FlowGraph& flows, Workload load, ModelOptions options = {});

  /// Solves the model. Deterministic; safe to call repeatedly.
  ModelResult evaluate() const;
  /// Same, iterating in `ws` (fully reseeded — byte-identical to a fresh
  /// workspace; reuse saves the per-solve allocation on sweep hot paths).
  ModelResult evaluate(SolverWorkspace& ws) const;
  /// Same, seeding the solver from an explicit per-channel x0 (the
  /// continuation-spine hot path — see ServiceTimeSolver's seeded solve
  /// for the clamping and determinism contract). An empty span falls back
  /// to the closed-form zero-load seed.
  ModelResult evaluate(SolverWorkspace& ws, std::span<const double> x0_seed) const;

  /// Evaluates K rate points over the shared FlowGraph in one SoA batch:
  /// ServiceTimeSolver::solve_batch advances every lane per sweep, then
  /// the stencil's lane-strided accumulation walks the N(N-1) unicast
  /// paths once for the whole group. Element l of the returned vector is
  /// BYTE-IDENTICAL to evaluate(ws, x0 slice l) on a model constructed
  /// with message_rate = rates[l] (this model's own load rate is ignored;
  /// its shape — pattern, alpha, message length — applies to every lane).
  /// `x0_seeds` is empty or lane-major as in solve_batch. All rates must
  /// be positive.
  std::vector<ModelResult> evaluate_batch(std::span<const double> rates, CurveWorkspace& cw,
                                          std::span<const double> x0_seeds = {}) const;

  /// Mean waiting a message experiences along (injection, links..., eject),
  /// i.e. W_inj plus the self-discounted waits of every subsequent channel
  /// (the sum-of-w_l of Eq. 7). Exposed for tests and diagnostics; requires
  /// the per-channel solution from a solved model over the same FlowGraph.
  static double path_waiting(const FlowGraph& flows,
                             const std::vector<ChannelSolution>& channels, ChannelId injection,
                             std::span<const ChannelId> links, ChannelId ejection);

 private:
  /// The post-solve Eq. 7-16 assembly shared by evaluate and
  /// evaluate_batch: expects result.status / channels / has_multicast
  /// already set; fills the latency fields. `unicast_sum` overrides the
  /// Eq. 7 sum when the caller already accumulated it (the lane-strided
  /// stencil path); null computes it here (stencil or direct walk).
  void assemble_latencies(ModelResult& result, std::vector<double>& stream_waits,
                          const double* unicast_sum) const;

  std::shared_ptr<const FlowGraph> owned_flows_;  ///< set by the compat ctors
  const FlowGraph* flows_;
  const RoutePlan* plan_;
  const Topology* topo_;
  Workload load_;
  ModelOptions options_;
};

}  // namespace quarc
