// FlowGraph — the rate-invariant structure of the Eq. 6 channel-transition
// graph, compiled once per (RoutePlan, workload shape) and shared read-only
// by every rate point of a sweep.
//
// For a fixed (topology, pattern, alpha) the *structure* of the flow graph
// never changes across a latency curve: which channel feeds which, and the
// relative weight of every edge, are determined entirely by the routes.
// Only the absolute rates scale — linearly — with the per-node injection
// rate. A FlowGraph therefore stores everything once, at unit message
// rate, in the same flat CSR layout RoutePlan uses for routes:
//
//   unit_lambda[c]          arrival rate of channel c at message_rate = 1
//   row_offset/next/        sorted adjacency: the channels taken directly
//   unit_rate               after c, with their unit transition rates
//   prob / self_share       P_{i->j} = r_{i->j}/lambda_i and the Eq. 6
//                           discount r_{i->j}/lambda_j — both ratios of
//                           unit quantities, so both rate-INVARIANT and
//                           precomputed here instead of re-divided on
//                           every solver iteration of every rate point
//   steps_to_eject[c]       expected remaining channel crossings before
//                           ejection — the zero-load service time is
//                           exactly M + steps_to_eject[c], which is the
//                           deterministic warm-start seed the solver uses
//                           (a pure function of the structure, hence of
//                           the scenario fingerprint, never of any
//                           previously solved point)
//
// A rate point then needs no graph (re)build at all: lambda_j(rate) =
// rate * unit_lambda[j], and every other solver input is already in the
// pools. This removes the per-point `add_flow` linear scans and the
// vector-of-vectors churn the pre-FlowGraph ChannelGraph paid at every
// rate point (bench/micro_solver.cpp measures the difference).
//
// Rows are sorted by next-channel id, so edge lookup is O(log deg)
// (ChannelGraph::transition_rate rides this).
//
// Thread safety: immutable after construction; concurrent sweeps share
// one instance across threads and shards without locking.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "quarc/route/route_plan.hpp"
#include "quarc/util/aligned.hpp"
#include "quarc/topo/topology.hpp"
#include "quarc/traffic/workload.hpp"

namespace quarc {

class LatencyStencil;

/// Which traffic classes a FlowGraph compiles structure for.
enum class FlowGating {
  /// Gate on the workload's *fractions* (alpha < 1 -> unicast flows,
  /// alpha > 0 -> multicast flows): the structure is valid for every
  /// positive message rate, which is what sweeps share across points.
  RateInvariant,
  /// Gate on the workload's *actual rates* (a zero-rate workload yields an
  /// empty graph) — the historical per-point ChannelGraph semantics, used
  /// by the one-off compatibility constructors.
  Exact,
};

class FlowGraph {
 public:
  /// Compiles the flow structure over `plan`'s routes/streams for the
  /// workload's shape (its fractions and pattern; the message rate is
  /// only read under FlowGating::Exact). The plan must outlive the graph
  /// and, when multicast flows are gated in, must have been compiled with
  /// the workload's pattern.
  FlowGraph(const RoutePlan& plan, const Workload& shape,
            FlowGating gating = FlowGating::RateInvariant);
  /// Convenience: compiles (and owns) a private RoutePlan for the
  /// topology. Sweeps share one externally compiled plan instead.
  FlowGraph(const Topology& topo, const Workload& shape,
            FlowGating gating = FlowGating::RateInvariant);
  ~FlowGraph();

  const RoutePlan& plan() const { return *plan_; }
  const Topology& topology() const { return *topo_; }
  /// The multicast fraction the unit weights were compiled with; a solve
  /// is only meaningful for workloads sharing it.
  double alpha() const { return alpha_; }

  std::size_t num_channels() const { return unit_lambda_.size(); }
  /// Total number of compiled flow edges.
  std::size_t flow_count() const { return next_.size(); }

  /// Arrival rate of channel c at message_rate = 1.
  double unit_lambda(ChannelId c) const { return unit_lambda_[static_cast<std::size_t>(c)]; }

  // ---- CSR row views (sorted by next-channel id, unique keys) ----
  std::span<const ChannelId> next(ChannelId i) const { return row(next_, i); }
  std::span<const double> unit_rate(ChannelId i) const { return row(unit_rate_, i); }
  std::span<const double> prob(ChannelId i) const { return row(prob_, i); }
  std::span<const double> self_share(ChannelId i) const { return row(self_share_, i); }
  std::size_t degree(ChannelId i) const {
    const auto c = static_cast<std::size_t>(i);
    return row_offset_[c + 1] - row_offset_[c];
  }

  /// Unit-rate flow taking j directly after i; 0 if no such edge.
  /// O(log deg) via binary search of the sorted row.
  double unit_transition_rate(ChannelId i, ChannelId j) const;
  /// The Eq. 6 self-traffic discount r_{i->j}/lambda_j (rate-invariant);
  /// 0 if no such edge. O(log deg).
  double edge_self_share(ChannelId i, ChannelId j) const;

  bool is_ejection(ChannelId c) const {
    return is_ejection_[static_cast<std::size_t>(c)] != 0;
  }
  /// Expected remaining channel crossings before ejection (0 for ejection
  /// and idle channels). The zero-load service time of channel c is
  /// exactly message_length + steps_to_eject(c) — the solver's
  /// deterministic warm-start seed.
  /// Closed-form zero-load service time of channel c for messages of
  /// `message_length` flits: M + steps_to_eject(c) (exactly M for
  /// ejection and idle channels, whose steps_to_eject is 0). This is the
  /// solver's deterministic seed, the seeded solve's per-channel floor,
  /// and the continuation spine's implicit rate-zero node — one
  /// definition so all three agree byte-for-byte.
  double zero_load_service(ChannelId c, int message_length) const {
    return static_cast<double>(message_length) + steps_to_eject(c);
  }
  double steps_to_eject(ChannelId c) const {
    return steps_to_eject_[static_cast<std::size_t>(c)];
  }

  /// Downwind update order over the loaded non-ejection channels: a DFS
  /// post-order of the next-channel graph, so every channel appears after
  /// the channels it reads (its downstream path) except across the single
  /// back edge that closes each ring cycle. A Gauss-Seidel sweep in this
  /// order propagates ejection-anchored information the whole way
  /// upstream in ONE pass — in channel-id order the same information
  /// crawls one hop per sweep, which is why the id-order iteration's
  /// Jacobian has a ring of eigenvalues at the per-hop attenuation radius
  /// (and why no extrapolation over it can beat that radius). Deterministic
  /// (roots ascending, CSR-row neighbor order) and rate-invariant
  /// (gated on unit_lambda like every other pool).
  std::span<const ChannelId> sweep_order() const { return sweep_order_; }

  /// Ids of the topology's injection channels (ascending).
  std::span<const ChannelId> injection_channels() const { return injection_; }

  /// The compiled Eq. 7-16 latency walk structure over this graph
  /// (latency_stencil.hpp), built on first use — thread-safe, exactly
  /// once — and shared read-only by every rate point afterwards. Lazy so
  /// solver-only consumers (saturation bisection, ChannelGraph views)
  /// never pay for it.
  const LatencyStencil& stencil() const;

 private:
  template <typename T, typename Alloc>
  std::span<const T> row(const std::vector<T, Alloc>& pool, ChannelId i) const {
    const auto c = static_cast<std::size_t>(i);
    return std::span<const T>(pool).subspan(row_offset_[c], row_offset_[c + 1] - row_offset_[c]);
  }

  void accumulate(const RoutePlan& plan, const Workload& shape, FlowGating gating);
  void compute_steps_to_eject();
  void compute_sweep_order();

  std::unique_ptr<const RoutePlan> owned_plan_;  ///< set by the Topology ctor
  const RoutePlan* plan_;
  const Topology* topo_;
  double alpha_ = 0.0;

  // Cache-line-aligned pools (util/aligned.hpp): the solver streams these
  // in CSR row order on every sweep of every lane group, so rows start on
  // line boundaries instead of straddling them.
  AlignedVector<double> unit_lambda_;
  std::vector<std::uint32_t> row_offset_;  ///< [nch + 1] into the edge pools
  std::vector<ChannelId> next_;            ///< sorted within each row
  AlignedVector<double> unit_rate_;
  AlignedVector<double> prob_;
  AlignedVector<double> self_share_;
  AlignedVector<double> steps_to_eject_;
  std::vector<std::uint8_t> is_ejection_;
  std::vector<ChannelId> injection_;
  std::vector<ChannelId> sweep_order_;

  mutable std::once_flag stencil_once_;
  mutable std::unique_ptr<const LatencyStencil> stencil_;
};

}  // namespace quarc
