#include "quarc/model/latency_stencil.hpp"

#include <algorithm>

#include "quarc/model/flow_graph.hpp"
#include "quarc/model/maxexp.hpp"
#include "quarc/util/error.hpp"

namespace quarc {

LatencyStencil::PathRec LatencyStencil::compile_path(const FlowGraph& flows, ChannelId injection,
                                                     std::span<const ChannelId> links,
                                                     ChannelId ejection, int hops) {
  PathRec rec;
  rec.injection = injection;
  rec.begin = static_cast<std::uint32_t>(wait_ch_.size());
  rec.hops = hops;
  // One entry per boundary crossing the direct walk would take, in walk
  // order, with the rate-invariant gate baked in: lambda(ch) = rate *
  // unit_lambda(ch), so "t.lambda > 0" is "unit_lambda > 0" at every
  // positive rate — and at rate zero the gated-in channels have W = 0, so
  // adding w * 0.0 reproduces the skipped term bit-for-bit anyway.
  ChannelId prev = injection;
  auto boundary = [&](ChannelId next) {
    if (flows.unit_lambda(next) > 0.0) {
      wait_ch_.push_back(next);
      wait_w_.push_back(1.0 - flows.edge_self_share(prev, next));
    }
    prev = next;
  };
  for (ChannelId link : links) boundary(link);
  boundary(ejection);
  rec.end = static_cast<std::uint32_t>(wait_ch_.size());
  return rec;
}

LatencyStencil::LatencyStencil(const FlowGraph& flows) {
  const RoutePlan& plan = flows.plan();
  const Topology& topo = plan.topology();
  const int n = topo.num_nodes();
  num_nodes_ = n;
  hardware_ = plan.hardware_streams();

  // ---- Eq. 7: all ordered pairs, (s, d)-major — the direct walk's order.
  unicast_.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1));
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const RouteView r = plan.route(s, d);
      unicast_.push_back(compile_path(flows, r.injection, r.links, r.ejection, r.hops()));
    }
  }

  // ---- Eq. 8-16: per-source multicast walks.
  mc_initiator_.assign(static_cast<std::size_t>(n), 0);
  mc_offset_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId s = 0; s < n; ++s) {
    const std::span<const NodeId> dests = plan.multicast_dests(s);
    if (!dests.empty()) {
      mc_initiator_[static_cast<std::size_t>(s)] = 1;
      if (hardware_) {
        for (std::size_t c = 0; c < plan.stream_count(s); ++c) {
          const StreamView st = plan.stream(s, c);
          PathRec rec = compile_path(flows, st.injection, st.links, st.stops.back().ejection,
                                     st.hops());
          // The i-th stream sharing an injection channel starts i
          // injection services late (one-port serialisation); with one
          // stream per port every offset is 0 — the paper's all-port case.
          std::int32_t index = 0;
          for (std::size_t prev = mc_offset_[static_cast<std::size_t>(s)];
               prev < mc_paths_.size(); ++prev) {
            if (mc_paths_[prev].injection == st.injection) ++index;
          }
          rec.offset_index = index;
          mc_paths_.push_back(rec);
        }
      } else {
        // Software multicast: consecutive unicasts over the materialised
        // destination list, in list order (the batch order).
        for (NodeId d : dests) {
          const RouteView r = plan.route(s, d);
          mc_paths_.push_back(compile_path(flows, r.injection, r.links, r.ejection, r.hops()));
        }
      }
    }
    mc_offset_[static_cast<std::size_t>(s) + 1] = static_cast<std::uint32_t>(mc_paths_.size());
  }
}

double LatencyStencil::unicast_latency_sum(std::span<const ChannelSolution> channels,
                                           double msg) const {
  double unicast_sum = 0.0;
  for (const PathRec& p : unicast_) {
    const double waits = path_wait(p, channels);
    unicast_sum += waits + msg + static_cast<double>(p.hops + 1);
  }
  return unicast_sum;
}

void LatencyStencil::unicast_latency_sum_lanes(const double* waiting, std::size_t lanes,
                                               double msg, double* sums,
                                               double* scratch) const {
  for (std::size_t l = 0; l < lanes; ++l) sums[l] = 0.0;
  for (const PathRec& p : unicast_) {
    // scratch accumulates this path's wait per lane — a separate
    // accumulator, like the scalar path_wait's `total`, so the final
    // (waits + msg) + (hops + 1) addition order matches bit for bit.
    const double* const w_inj = waiting + static_cast<std::size_t>(p.injection) * lanes;
    for (std::size_t l = 0; l < lanes; ++l) scratch[l] = w_inj[l];
    for (std::uint32_t e = p.begin; e < p.end; ++e) {
      const double we = wait_w_[e];
      const double* const w_ch = waiting + static_cast<std::size_t>(wait_ch_[e]) * lanes;
      for (std::size_t l = 0; l < lanes; ++l) scratch[l] += we * w_ch[l];
    }
    const double hopsp1 = static_cast<double>(p.hops + 1);
    for (std::size_t l = 0; l < lanes; ++l) sums[l] += scratch[l] + msg + hopsp1;
  }
}

double LatencyStencil::multicast_latency(NodeId s, std::span<const ChannelSolution> channels,
                                         double msg, std::vector<double>& stream_waits) const {
  const std::uint32_t begin = mc_offset_[static_cast<std::size_t>(s)];
  const std::uint32_t end = mc_offset_[static_cast<std::size_t>(s) + 1];
  QUARC_ASSERT(begin < end, "multicast_latency on a non-initiating source");
  if (hardware_) {
    // Streams sharing one injection channel cannot start together: the
    // deterministic floor is the max of the per-stream (offset + drain +
    // hops) terms; the stochastic part is the paper's E[max] over the
    // queueing waits (Eq. 12-13). Identical accumulation order to the
    // direct walk in performance_model.cpp.
    stream_waits.clear();
    double deterministic_floor = 0.0;
    for (std::uint32_t i = begin; i < end; ++i) {
      const PathRec& st = mc_paths_[i];
      const ChannelSolution& inj = channels[static_cast<std::size_t>(st.injection)];
      stream_waits.push_back(path_wait(st, channels));
      deterministic_floor =
          std::max(deterministic_floor, static_cast<double>(st.offset_index) * inj.service_time +
                                            msg + static_cast<double>(st.hops + 1));
    }
    const double w_multicast = expected_max_from_means(stream_waits);  // Eq. 12-13
    return w_multicast + deterministic_floor;                          // Eq. 14-15
  }
  // Software multicast: consecutive unicasts through the shared injection
  // channel; the i-th waits behind its i batch predecessors.
  double worst = 0.0;
  std::size_t index = 0;
  for (std::uint32_t i = begin; i < end; ++i) {
    const PathRec& p = mc_paths_[i];
    const ChannelSolution& inj = channels[static_cast<std::size_t>(p.injection)];
    const double waits =
        path_wait(p, channels) + static_cast<double>(index) * inj.service_time;
    worst = std::max(worst, waits + msg + static_cast<double>(p.hops + 1));
    ++index;
  }
  return worst;
}

}  // namespace quarc
