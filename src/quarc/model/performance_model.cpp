#include "quarc/model/performance_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "quarc/model/latency_stencil.hpp"
#include "quarc/model/maxexp.hpp"
#include "quarc/util/error.hpp"

namespace quarc {

PerformanceModel::PerformanceModel(const Topology& topo, Workload load, ModelOptions options)
    : owned_flows_(std::make_shared<const FlowGraph>(topo, load, FlowGating::Exact)),
      flows_(owned_flows_.get()),
      plan_(&flows_->plan()),
      topo_(&topo),
      load_(std::move(load)),
      options_(options) {}

PerformanceModel::PerformanceModel(const RoutePlan& plan, Workload load, ModelOptions options)
    : owned_flows_(std::make_shared<const FlowGraph>(plan, load, FlowGating::Exact)),
      flows_(owned_flows_.get()),
      plan_(&plan),
      topo_(&plan.topology()),
      load_(std::move(load)),
      options_(options) {}

PerformanceModel::PerformanceModel(const FlowGraph& flows, Workload load, ModelOptions options)
    : flows_(&flows),
      plan_(&flows.plan()),
      topo_(&flows.topology()),
      load_(std::move(load)),
      options_(options) {
  load_.validate(*topo_);
  QUARC_REQUIRE(load_.multicast_rate() == 0.0 || plan_->pattern() == load_.pattern.get(),
                "flow graph was compiled with a different multicast pattern");
  QUARC_REQUIRE(load_.message_rate == 0.0 || load_.multicast_fraction == flows.alpha(),
                "flow graph was compiled with a different multicast fraction");
}

double PerformanceModel::path_waiting(const FlowGraph& flows,
                                      const std::vector<ChannelSolution>& channels,
                                      ChannelId injection, std::span<const ChannelId> links,
                                      ChannelId ejection) {
  double total = channels[static_cast<std::size_t>(injection)].waiting_time;
  ChannelId prev = injection;
  auto boundary = [&](ChannelId next) {
    const ChannelSolution& t = channels[static_cast<std::size_t>(next)];
    if (t.lambda > 0.0) {
      total += (1.0 - flows.edge_self_share(prev, next)) * t.waiting_time;
    }
    prev = next;
  };
  for (ChannelId link : links) boundary(link);
  boundary(ejection);
  return total;
}

std::string to_string(SaturationProbe p) {
  switch (p) {
    case SaturationProbe::Ridders:
      return "ridders";
    case SaturationProbe::Bisection:
      return "bisect";
  }
  return "unknown";
}

ModelResult PerformanceModel::evaluate() const {
  SolverWorkspace ws;
  return evaluate(ws);
}

ModelResult PerformanceModel::evaluate(SolverWorkspace& ws) const {
  return evaluate(ws, std::span<const double>{});
}

ModelResult PerformanceModel::evaluate(SolverWorkspace& ws, std::span<const double> x0_seed) const {
  ModelResult result;
  const FlowGraph& flows = *flows_;
  ServiceTimeSolver solver(flows, load_.message_length, options_.solver);
  result.status = x0_seed.empty() ? solver.solve(load_.message_rate, ws)
                                  : solver.solve(load_.message_rate, ws, x0_seed);
  result.solver_iterations = solver.iterations_used();
  result.channels = ws.solution;
  result.max_utilization = solver.max_utilization(&result.bottleneck);
  result.has_multicast = load_.multicast_rate() > 0.0;
  assemble_latencies(result, ws.stream_waits, nullptr);
  return result;
}

std::vector<ModelResult> PerformanceModel::evaluate_batch(std::span<const double> rates,
                                                          CurveWorkspace& cw,
                                                          std::span<const double> x0_seeds) const {
  const FlowGraph& flows = *flows_;
  const std::size_t K = rates.size();
  const double msg = static_cast<double>(load_.message_length);
  ServiceTimeSolver solver(flows, load_.message_length, options_.solver);
  const std::span<const LaneResult> lanes = solver.solve_batch(rates, cw, x0_seeds);

  // Lane-strided Eq. 7 accumulation over the solved SoA waits: the
  // dominant N(N-1)-path walk runs once for the whole lane group.
  // Saturated lanes may hold non-finite waits; their sums are never read
  // (assemble_latencies pins them to infinity first).
  bool any_live = false;
  for (std::size_t l = 0; l < K; ++l) any_live |= lanes[l].status != SolveStatus::Saturated;
  const bool stencil_lanes = options_.assembly == LatencyAssembly::Stencil && any_live;
  if (stencil_lanes) {
    cw.unicast_sums.resize(K);
    cw.path_scratch.resize(K);
    flows.stencil().unicast_latency_sum_lanes(cw.waiting_time.data(), K, msg,
                                              cw.unicast_sums.data(), cw.path_scratch.data());
  }

  std::vector<ModelResult> out(K);
  for (std::size_t l = 0; l < K; ++l) {
    ModelResult& result = out[l];
    result.status = lanes[l].status;
    result.solver_iterations = lanes[l].iterations;
    cw.extract(l, cw.solution_scratch);
    result.channels = cw.solution_scratch;
    // The scalar max_utilization scan, over the same per-channel values.
    double best = 0.0;
    ChannelId best_id = kInvalidChannel;
    for (std::size_t c = 0; c < result.channels.size(); ++c) {
      if (result.channels[c].utilization > best) {
        best = result.channels[c].utilization;
        best_id = static_cast<ChannelId>(c);
      }
    }
    result.max_utilization = best;
    result.bottleneck = best_id;
    // The scalar model for lane l carries message_rate = rates[l]:
    // multicast_rate() = rate * alpha, so the gate is rate-positive AND
    // alpha-positive (rates are all positive here).
    result.has_multicast = rates[l] * load_.multicast_fraction > 0.0;
    assemble_latencies(result, cw.stream_waits,
                       stencil_lanes ? cw.unicast_sums.data() + l : nullptr);
  }
  return out;
}

void PerformanceModel::assemble_latencies(ModelResult& result, std::vector<double>& stream_waits,
                                          const double* unicast_sum_override) const {
  const RoutePlan& plan = *plan_;
  const FlowGraph& flows = *flows_;

  if (result.status == SolveStatus::Saturated) {
    result.avg_unicast_latency = std::numeric_limits<double>::infinity();
    result.avg_multicast_latency = std::numeric_limits<double>::infinity();
    return;
  }

  const int n = topo_->num_nodes();
  const double msg = static_cast<double>(load_.message_length);
  const LatencyStencil* stencil =
      options_.assembly == LatencyAssembly::Stencil ? &flows.stencil() : nullptr;

  // ---- Unicast average (Eq. 7 over all pairs). ----
  double unicast_sum = 0.0;
  if (unicast_sum_override != nullptr) {
    unicast_sum = *unicast_sum_override;  // lane-strided stencil pass
  } else if (stencil != nullptr) {
    unicast_sum = stencil->unicast_latency_sum(result.channels, msg);
  } else {
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId d = 0; d < n; ++d) {
        if (s == d) continue;
        const RouteView r = plan.route(s, d);
        const double waits =
            path_waiting(flows, result.channels, r.injection, r.links, r.ejection);
        unicast_sum += waits + msg + static_cast<double>(r.hops() + 1);
      }
    }
  }
  result.avg_unicast_latency = unicast_sum / (static_cast<double>(n) * (n - 1));

  // ---- Multicast average (Eq. 8-16). ----
  if (!result.has_multicast) return;

  result.per_node_multicast_latency.assign(static_cast<std::size_t>(n),
                                           std::numeric_limits<double>::quiet_NaN());
  double mc_sum = 0.0;
  int mc_nodes = 0;
  for (NodeId s = 0; s < n; ++s) {
    double latency;
    if (stencil != nullptr) {
      if (!stencil->initiates_multicast(s)) continue;
      latency = stencil->multicast_latency(s, result.channels, msg, stream_waits);
    } else {
      const std::span<const NodeId> dests = plan.multicast_dests(s);
      if (dests.empty()) continue;
      if (plan.hardware_streams()) {
        // Streams sharing one injection channel (one-port schemes) cannot
        // start together: the i-th such stream is deterministically
        // delayed by i injection services. The deterministic floor is the
        // max of the per-stream (offset + drain + hops) terms; the
        // stochastic part is the paper's E[max] over the queueing waits
        // (Eq. 12-13). With one stream per port (the paper's all-port
        // case) every offset is zero and this reduces exactly to
        // Eq. 14-15. The waits land in the workspace's reused scratch and
        // the offset index is a scan of the already-seen streams — no
        // per-source allocation on this path either.
        stream_waits.clear();
        double deterministic_floor = 0.0;
        for (std::size_t c = 0; c < plan.stream_count(s); ++c) {
          const StreamView st = plan.stream(s, c);
          int index = 0;
          for (std::size_t p = 0; p < c; ++p) {
            if (plan.stream(s, p).injection == st.injection) ++index;
          }
          const ChannelSolution& inj = result.channels[static_cast<std::size_t>(st.injection)];
          stream_waits.push_back(path_waiting(flows, result.channels, st.injection, st.links,
                                                 st.stops.back().ejection));
          deterministic_floor =
              std::max(deterministic_floor, static_cast<double>(index) * inj.service_time + msg +
                                                static_cast<double>(st.hops() + 1));
        }
        const double w_multicast = expected_max_from_means(stream_waits);  // Eq. 12-13
        latency = w_multicast + deterministic_floor;                          // Eq. 14-15
      } else {
        // Software multicast: consecutive unicasts through the shared
        // injection channel; the i-th waits behind its i batch
        // predecessors.
        double worst = 0.0;
        std::size_t index = 0;
        for (NodeId d : dests) {
          const RouteView r = plan.route(s, d);
          const ChannelSolution& inj = result.channels[static_cast<std::size_t>(r.injection)];
          const double waits =
              path_waiting(flows, result.channels, r.injection, r.links, r.ejection) +
              static_cast<double>(index) * inj.service_time;
          worst = std::max(worst, waits + msg + static_cast<double>(r.hops() + 1));
          ++index;
        }
        latency = worst;
      }
    }
    result.per_node_multicast_latency[static_cast<std::size_t>(s)] = latency;
    mc_sum += latency;
    ++mc_nodes;
  }
  QUARC_ASSERT(mc_nodes > 0, "multicast workload with no multicasting node");
  result.avg_multicast_latency = mc_sum / static_cast<double>(mc_nodes);  // Eq. 16
}

}  // namespace quarc
