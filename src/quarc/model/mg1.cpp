#include "quarc/model/mg1.hpp"

#include <algorithm>
#include <limits>

#include "quarc/util/error.hpp"

namespace quarc {

double mg1_waiting_time(double lambda, double mean, double sigma) {
  QUARC_ASSERT(mean >= 0.0 && sigma >= 0.0, "negative service statistics");
  if (lambda <= 0.0) return 0.0;
  const double rho = lambda * mean;
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  return lambda * (mean * mean + sigma * sigma) / (2.0 * (1.0 - rho));
}

double mg1_utilization(double lambda, double mean) { return std::max(0.0, lambda * mean); }

double service_sigma(double service_mean, int message_length) {
  return std::max(0.0, service_mean - static_cast<double>(message_length));
}

}  // namespace quarc
