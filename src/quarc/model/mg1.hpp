// M/G/1 waiting-time kernel (paper Eq. 3-5).
//
// Every network channel is modeled as an M/G/1 queue. The paper's Eq. 3 as
// printed ("W = lambda*rho / (2(1-lambda*x)) * (1 + sigma^2/x^2)") is
// dimensionally inconsistent (it yields 1/time); the standard
// Pollaczek-Khinchine mean wait used throughout this model family
// ([12],[16],[18] and Kleinrock [14]) is
//
//   W = lambda * x^2 * (1 + sigma^2 / x^2) / (2 (1 - lambda x))
//     = lambda (x^2 + sigma^2) / (2 (1 - rho)),
//
// which we implement. The service-time variance uses the paper's
// approximation sigma = x - msg (Eq. 5): the service time of a wormhole
// channel varies between the pure drain time (msg flits) and the blocked
// mean x.
#pragma once

namespace quarc {

/// Mean M/G/1 waiting time for arrival rate `lambda`, mean service time
/// `mean` and service-time standard deviation `sigma`. Returns 0 for an
/// idle channel (lambda <= 0) and +infinity at or beyond saturation
/// (lambda * mean >= 1).
double mg1_waiting_time(double lambda, double mean, double sigma);

/// Channel utilisation rho = lambda * mean (Eq. 4).
double mg1_utilization(double lambda, double mean);

/// The paper's Eq. 5 variance approximation: sigma = service mean minus the
/// message drain time, floored at zero (service can never beat the drain).
double service_sigma(double service_mean, int message_length);

}  // namespace quarc
