// M/G/1 waiting-time kernel (paper Eq. 3-5).
//
// Every network channel is modeled as an M/G/1 queue. The paper's Eq. 3 as
// printed ("W = lambda*rho / (2(1-lambda*x)) * (1 + sigma^2/x^2)") is
// dimensionally inconsistent (it yields 1/time); the standard
// Pollaczek-Khinchine mean wait used throughout this model family
// ([12],[16],[18] and Kleinrock [14]) is
//
//   W = lambda * x^2 * (1 + sigma^2 / x^2) / (2 (1 - lambda x))
//     = lambda (x^2 + sigma^2) / (2 (1 - rho)),
//
// which we implement. The service-time variance uses the paper's
// approximation sigma = x - msg (Eq. 5): the service time of a wormhole
// channel varies between the pure drain time (msg flits) and the blocked
// mean x.
//
// Header-inline: these three functions sit on the innermost lane loops of
// both the scalar solve and the SoA batch sweep (one call per (channel,
// lane) per iteration), where an out-of-line call is measurable. The
// arithmetic is call-for-call identical to the historical out-of-line
// definitions, so inlining moves no solved byte.
#pragma once

#include <algorithm>
#include <limits>

#include "quarc/util/error.hpp"

namespace quarc {

/// Mean M/G/1 waiting time for arrival rate `lambda`, mean service time
/// `mean` and service-time standard deviation `sigma`. Returns 0 for an
/// idle channel (lambda <= 0) and +infinity at or beyond saturation
/// (lambda * mean >= 1).
inline double mg1_waiting_time(double lambda, double mean, double sigma) {
  QUARC_ASSERT(mean >= 0.0 && sigma >= 0.0, "negative service statistics");
  if (lambda <= 0.0) return 0.0;
  const double rho = lambda * mean;
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  return lambda * (mean * mean + sigma * sigma) / (2.0 * (1.0 - rho));
}

/// Channel utilisation rho = lambda * mean (Eq. 4).
inline double mg1_utilization(double lambda, double mean) {
  return std::max(0.0, lambda * mean);
}

/// The paper's Eq. 5 variance approximation: sigma = service mean minus the
/// message drain time, floored at zero (service can never beat the drain).
inline double service_sigma(double service_mean, int message_length) {
  return std::max(0.0, service_mean - static_cast<double>(message_length));
}

}  // namespace quarc
