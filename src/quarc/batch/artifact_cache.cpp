#include "quarc/batch/artifact_cache.hpp"

#include <utility>

#include "quarc/api/registry.hpp"
#include "quarc/traffic/workload.hpp"
#include "quarc/util/json.hpp"
#include "quarc/util/rng.hpp"

namespace quarc::batch {

std::string PlanRequest::key() const {
  // "none" patterns are seed-independent; zeroing the seed line keeps
  // unicast-only members with different run seeds on one artifact.
  const bool has_pattern = pattern_spec != "none";
  std::string k;
  k.reserve(64 + topology_spec.size() + pattern_spec.size());
  k += "topology=";
  k += topology_spec;
  k += "\npattern=";
  k += pattern_spec;
  k += "\npattern_seed=";
  k += has_pattern ? std::to_string(pattern_seed) : std::string("0");
  k += "\nmulticast=";
  k += multicast ? '1' : '0';
  return k;
}

std::shared_ptr<const PlanArtifact> ArtifactCache::plan_locked(const PlanRequest& req,
                                                               bool count_reuse) {
  const std::string key = req.key();
  if (auto it = plans_.find(key); it != plans_.end()) {
    // Internal lookups (a flows() call resolving its plan) don't count:
    // plans_reused tracks consumer requests, so compiled + reused equals
    // the number of scenarios asking, not the number of map probes.
    if (count_reuse) ++stats_.plans_reused;
    return it->second;
  }
  auto artifact = std::make_shared<PlanArtifact>();
  artifact->topology = api::make_topology(req.topology_spec);
  if (req.pattern_spec != "none") {
    // Materialised even for unicast-only members: the scenario fingerprint
    // digests an attached pattern's destination sets whether or not the
    // workload multicasts, so the shared artifact must carry exactly what
    // a privately compiled Scenario would.
    Rng rng(req.pattern_seed);
    artifact->pattern = api::make_pattern(req.pattern_spec, artifact->topology->num_nodes(), rng);
  }
  artifact->plan = std::make_shared<const RoutePlan>(
      *artifact->topology, req.multicast ? artifact->pattern.get() : nullptr);
  ++stats_.plans_compiled;
  plans_.emplace(key, artifact);
  return artifact;
}

std::shared_ptr<const PlanArtifact> ArtifactCache::plan(const PlanRequest& req) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return plan_locked(req);
}

std::shared_ptr<const FlowGraph> ArtifactCache::flows(const PlanRequest& req, double alpha,
                                                      int message_length) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = req.key() + "\nalpha=" + json::format_number(alpha);
  if (auto it = flows_.find(key); it != flows_.end()) {
    ++stats_.flows_reused;
    return it->second.flows;
  }
  FlowEntry entry;
  entry.plan = plan_locked(req, /*count_reuse=*/false);
  // The FlowGraph only reads the workload's shape — its fractions and the
  // pattern already inside the plan; the rate is irrelevant under
  // FlowGating::RateInvariant and message_length feeds the solver, not the
  // structure. A nominal rate keeps Workload::validate happy.
  Workload shape;
  shape.message_rate = 1.0;
  shape.multicast_fraction = alpha;
  shape.message_length = message_length;
  shape.pattern = entry.plan->pattern;
  entry.flows = std::make_shared<const FlowGraph>(*entry.plan->plan, shape);
  ++stats_.flows_compiled;
  return flows_.emplace(key, std::move(entry)).first->second.flows;
}

ArtifactCacheStats ArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ArtifactCache::plan_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

std::size_t ArtifactCache::flow_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return flows_.size();
}

}  // namespace quarc::batch
