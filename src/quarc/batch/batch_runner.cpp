#include "quarc/batch/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <ostream>
#include <span>
#include <utility>

#include "quarc/model/performance_model.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/sweep/sweep.hpp"
#include "quarc/util/error.hpp"
#include "quarc/util/json.hpp"
#include "quarc/util/parallel.hpp"

namespace quarc::batch {

namespace {

/// Everything one member carries through a run. The Scenario owns (or
/// shares, via the artifact cache) the compiled structures the tasks
/// read; it must therefore outlive the pool, which the member vector
/// guarantees.
struct Member {
  api::Scenario scenario;
  ScenarioFingerprint fp;
  std::vector<double> rates;
  api::ResultSet rs;        ///< header + rows, filled as points land
  const FlowGraph* flows = nullptr;
  Workload workload;        ///< base workload (per-point rate applied on top)
  SweepConfig cfg;          ///< solver/sim knobs (threads/shards unused here)
  /// The member's continuation spine (null: solve unseeded), shared by
  /// every worker — the same spine a solo run_sweep would seed from, so
  /// batched and individual runs stay byte-identical.
  std::shared_ptr<const ContinuationSpine> spine;
  std::size_t first_point = 0;  ///< global index of this member's row 0
  std::size_t pending = 0;      ///< points not yet landed (for progress)
};

/// One cache-miss point: where it lands plus the task a cold
/// Scenario::run_sweep would have built for it.
struct GlobalTask {
  std::size_t member = 0;
  std::size_t row = 0;
  SweepTask task;
};

std::string stream_line(int scenario_index, const ScenarioFingerprint& fp,
                        const api::ResultRow& row) {
  json::Value line = json::Value::object();
  line.set("schema", kBatchStreamSchemaVersion);
  line.set("scenario", scenario_index);
  line.set("fp", fp.hex());
  line.set("row", api::row_to_json(row));
  return line.dump();
}

}  // namespace

BatchRunner::BatchRunner(ScenarioSet set, BatchOptions options)
    : set_(std::move(set)), options_(std::move(options)) {}

std::vector<api::ResultSet> BatchRunner::run(std::ostream* stream, std::ostream* progress) {
  const auto t0 = std::chrono::steady_clock::now();
  stats_ = BatchStats{};
  stats_.scenarios = static_cast<std::int64_t>(set_.size());
  const std::shared_ptr<ArtifactCache> artifacts =
      options_.artifacts ? options_.artifacts : std::make_shared<ArtifactCache>();
  const ArtifactCacheStats before = artifacts->stats();

  // ---- Phase 1: prepare members (serial — compilation dedup makes this
  // cheap; the expensive part is the auto-grid saturation probe, which is
  // itself a solver loop sharing the member's FlowGraph).
  std::vector<Member> members;
  members.reserve(set_.size());
  std::vector<GlobalTask> tasks;
  std::size_t total_points = 0;
  for (std::size_t m = 0; m < set_.size(); ++m) {
    const ScenarioSpec& spec = set_[m];
    Member member;
    member.scenario = spec.make_scenario();
    member.scenario.artifacts(artifacts);
    member.fp = member.scenario.fingerprint();  // validates + compiles shared artifacts
    member.rates = spec.rates.empty() ? member.scenario.rate_grid(spec.sweep_points, spec.fill)
                                      : spec.rates;
    member.rs = member.scenario.empty_result_set();
    member.rs.rows.resize(member.rates.size());
    member.flows = &member.scenario.flow_graph();
    member.workload = member.scenario.build_workload();
    member.cfg.sim = member.scenario.sim_config();
    member.cfg.model = member.scenario.model_options();
    member.cfg.run_sim = spec.sim;
    member.cfg.spine_points = member.scenario.spine_points();
    member.first_point = total_points;
    total_points += member.rates.size();
    members.push_back(std::move(member));
  }
  stats_.points = static_cast<std::int64_t>(total_points);

  // ---- Phase 2: partition every member's grid into hits and miss tasks,
  // exactly as run_sweep does — hits land now, misses carry the rate-keyed
  // seed a cold run would use.
  std::vector<std::uint8_t> landed(total_points, 0);
  for (std::size_t m = 0; m < members.size(); ++m) {
    Member& member = members[m];
    member.pending = member.rates.size();
    for (std::size_t i = 0; i < member.rates.size(); ++i) {
      const double rate = member.rates[i];
      if (options_.cache) {
        if (std::optional<api::ResultRow> hit = options_.cache->lookup(member.fp, rate)) {
          member.rs.rows[i] = std::move(*hit);
          ++member.rs.cache_hits;
          landed[member.first_point + i] = 1;
          --member.pending;
          continue;
        }
        ++member.rs.cache_misses;
      }
      tasks.push_back({m, i, {rate, sweep_point_seed(member.scenario.seed(), rate)}});
    }
    stats_.cache_hits += member.rs.cache_hits;
    stats_.cache_misses += member.rs.cache_misses;
    // Continuation spine, only for members that actually solve (fully
    // warm members must stay at zero solver work). Auto-grid members
    // already probed inside rate_grid(); the memoized result is reused
    // here, so the probe still runs at most once per member.
    if (member.pending > 0 && member.cfg.spine_points > 0) {
      try {
        member.spine = member.scenario.continuation_spine();
      } catch (const ComputationError&) {
        member.spine = nullptr;  // degrade to unseeded, as run_sweep does
      }
    }
  }

  // ---- Phase 3: one pool over every miss of every member. Results land
  // out of order; the reorder buffer flushes the stream strictly in
  // canonical (member, grid-index) order, so its bytes never depend on
  // scheduling. Progress lines ride the same lock.
  std::mutex land_mutex;
  std::size_t flushed = 0;
  auto flush_ready = [&] {
    while (flushed < total_points && landed[flushed]) {
      if (stream != nullptr) {
        // Owning member by linear scan — fleets are small relative to
        // their points, and this runs under the land lock either way.
        std::size_t m = 0;
        while (m + 1 < members.size() && members[m + 1].first_point <= flushed) ++m;
        const std::size_t i = flushed - members[m].first_point;
        *stream << stream_line(static_cast<int>(m), members[m].fp, members[m].rs.rows[i])
                << "\n";
      }
      ++flushed;
    }
    if (stream != nullptr) stream->flush();
  };
  auto member_done = [&](std::size_t m) {
    if (progress == nullptr) return;
    const Member& member = members[m];
    *progress << "batch: [" << (m + 1) << "/" << members.size() << "] " << set_[m].describe()
              << ": " << member.rates.size() << " points, hits=" << member.rs.cache_hits
              << " misses=" << member.rs.cache_misses << "\n";
    progress->flush();
  };
  {
    const std::lock_guard<std::mutex> lock(land_mutex);
    flush_ready();  // leading cache hits stream before any solve finishes
    for (std::size_t m = 0; m < members.size(); ++m) {
      if (members[m].pending == 0 && !members[m].rates.empty()) member_done(m);
    }
  }

  // Simulates (if configured), caches and lands one modelled point — the
  // per-point tail shared by the scalar and the batched solve paths.
  auto finish_point = [&](const GlobalTask& gt, RatePointResult& point) {
    Member& member = members[gt.member];
    if (member.cfg.run_sim) {
      sim::SimConfig sc = member.cfg.sim;
      sc.workload = member.workload;
      sc.workload.message_rate = gt.task.rate;
      sc.seed = gt.task.sim_seed;
      point.sim = sim::Simulator(member.flows->plan(), sc).run();
      point.sim_run = true;
    }
    api::ResultRow row = api::ResultRow::from_point(point);
    // Store before taking the land lock: SweepCache serialises itself,
    // and landing must not hold two locks.
    if (options_.cache) {
      options_.cache->store(member.fp, row, member.workload.multicast_fraction > 0.0);
    }
    const std::lock_guard<std::mutex> lock(land_mutex);
    stats_.solved_iterations += row.solver_iterations;
    member.rs.rows[gt.row] = std::move(row);
    landed[member.first_point + gt.row] = 1;
    flush_ready();
    if (--member.pending == 0) member_done(gt.member);
  };
  // The historical scalar solve — the batch_points <= 1 escape hatch and
  // the fallback for rate <= 0 points.
  auto solve_task = [&](std::size_t t) {
    const GlobalTask& gt = tasks[t];
    Member& member = members[gt.member];
    RatePointResult point;
    point.rate = gt.task.rate;
    Workload w = member.workload;
    w.message_rate = gt.task.rate;
    // Per-worker workspace, fully reseeded per solve — reuse across
    // members cannot change a byte (same contract as sweep_tasks).
    static thread_local SolverWorkspace ws;
    const PerformanceModel model(*member.flows, w, member.cfg.model);
    if (member.spine != nullptr) {
      static thread_local std::vector<double> x0;
      member.spine->seed(gt.task.rate, x0);
      point.model = model.evaluate(ws, x0);
    } else {
      point.model = model.evaluate(ws);
    }
    finish_point(gt, point);
  };
  // Solves tasks [begin, end) — same member, positive rates — as one SoA
  // lane group; each lane is byte-identical to solve_task on it (pinned
  // by the batch determinism suite).
  auto solve_chunk = [&](std::size_t begin, std::size_t end) {
    Member& member = members[tasks[begin].member];
    const std::size_t width = end - begin;
    static thread_local CurveWorkspace cw;
    static thread_local std::vector<double> rates_buf;
    static thread_local std::vector<double> x0_buf;
    static thread_local std::vector<double> seed_buf;
    rates_buf.resize(width);
    for (std::size_t l = 0; l < width; ++l) rates_buf[l] = tasks[begin + l].task.rate;
    Workload w = member.workload;
    w.message_rate = rates_buf[0];  // shape only; evaluate_batch applies lane rates
    const PerformanceModel model(*member.flows, w, member.cfg.model);
    std::span<const double> x0{};
    if (member.spine != nullptr) {
      const std::size_t nch = member.flows->num_channels();
      x0_buf.resize(width * nch);
      for (std::size_t l = 0; l < width; ++l) {
        member.spine->seed(rates_buf[l], seed_buf);
        std::copy(seed_buf.begin(), seed_buf.end(),
                  x0_buf.begin() + static_cast<std::ptrdiff_t>(l * nch));
      }
      x0 = x0_buf;
    }
    std::vector<ModelResult> res = model.evaluate_batch(rates_buf, cw, x0);
    {
      const std::lock_guard<std::mutex> lock(land_mutex);
      ++stats_.solve_batches;
      stats_.solve_lanes += static_cast<std::int64_t>(width);
    }
    for (std::size_t l = 0; l < width; ++l) {
      RatePointResult point;
      point.rate = rates_buf[l];
      point.model = std::move(res[l]);
      finish_point(tasks[begin + l], point);
    }
  };

  // Lane-group chunking: consecutive miss tasks of the SAME member (phase
  // 2 emits them in (member, grid-index) order, so same-member runs are
  // contiguous) share a FlowGraph and can ride one solve_batch. The
  // parallel grain becomes the chunk — pure per-point results make any
  // grouping byte-neutral.
  struct TaskChunk {
    std::size_t begin, end;
  };
  std::vector<TaskChunk> chunks;
  const std::size_t lane_cap = static_cast<std::size_t>(std::max(options_.batch_points, 1));
  for (std::size_t t = 0; t < tasks.size();) {
    if (lane_cap <= 1 || !(tasks[t].task.rate > 0.0)) {
      chunks.push_back({t, t + 1});
      ++t;
      continue;
    }
    std::size_t j = t;
    while (j < tasks.size() && j - t < lane_cap && tasks[j].member == tasks[t].member &&
           tasks[j].task.rate > 0.0) {
      ++j;
    }
    chunks.push_back({t, j});
    t = j;
  }
  parallel_for(
      chunks.size(),
      [&](std::size_t c) {
        const TaskChunk ch = chunks[c];
        if (ch.end - ch.begin > 1 || (lane_cap > 1 && tasks[ch.begin].task.rate > 0.0)) {
          solve_chunk(ch.begin, ch.end);
        } else {
          solve_task(ch.begin);
        }
      },
      options_.threads);

  // ---- Phase 4: hand back per-member documents.
  std::vector<api::ResultSet> out;
  out.reserve(members.size());
  for (Member& member : members) out.push_back(std::move(member.rs));

  const ArtifactCacheStats after = artifacts->stats();
  stats_.artifacts.plans_compiled = after.plans_compiled - before.plans_compiled;
  stats_.artifacts.plans_reused = after.plans_reused - before.plans_reused;
  stats_.artifacts.flows_compiled = after.flows_compiled - before.flows_compiled;
  stats_.artifacts.flows_reused = after.flows_reused - before.flows_reused;
  stats_.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (progress != nullptr) {
    *progress << "batch: " << stats_.scenarios << " scenarios, " << stats_.points
              << " points, hits=" << stats_.cache_hits << " misses=" << stats_.cache_misses
              << ", solve batches=" << stats_.solve_batches
              << " lanes=" << stats_.solve_lanes
              << ", plans compiled=" << stats_.artifacts.plans_compiled
              << " reused=" << stats_.artifacts.plans_reused
              << ", flows compiled=" << stats_.artifacts.flows_compiled
              << " reused=" << stats_.artifacts.flows_reused << ", "
              << json::format_number(stats_.elapsed_seconds) << "s";
    if (stats_.elapsed_seconds > 0.0 && stats_.points > 0) {
      *progress << " ("
                << json::format_number(static_cast<double>(stats_.points) /
                                       stats_.elapsed_seconds)
                << " points/s)";
    }
    *progress << "\n";
    progress->flush();
  }
  return out;
}

void BatchRunner::dry_run(std::ostream& out) {
  stats_ = BatchStats{};
  stats_.scenarios = static_cast<std::int64_t>(set_.size());
  const std::shared_ptr<ArtifactCache> artifacts =
      options_.artifacts ? options_.artifacts : std::make_shared<ArtifactCache>();
  const ArtifactCacheStats before = artifacts->stats();

  for (std::size_t m = 0; m < set_.size(); ++m) {
    const ScenarioSpec& spec = set_[m];
    api::Scenario scenario = spec.make_scenario();
    scenario.artifacts(artifacts);
    const ScenarioFingerprint fp = scenario.fingerprint();
    stats_.points += spec.point_count();

    json::Value line = json::Value::object();
    line.set("schema", kBatchStreamSchemaVersion);
    line.set("scenario", static_cast<int>(m));
    line.set("label", spec.describe());
    line.set("fp", fp.hex());
    line.set("topology", spec.topology);
    line.set("pattern", spec.alpha > 0.0 ? spec.pattern : std::string("none"));
    line.set("alpha", spec.alpha);
    line.set("msg", spec.msg);
    line.set("seed", spec.seed);
    line.set("points", spec.point_count());
    out << line.dump() << "\n";
  }

  const ArtifactCacheStats after = artifacts->stats();
  stats_.artifacts.plans_compiled = after.plans_compiled - before.plans_compiled;
  stats_.artifacts.plans_reused = after.plans_reused - before.plans_reused;
  stats_.artifacts.flows_compiled = after.flows_compiled - before.flows_compiled;
  stats_.artifacts.flows_reused = after.flows_reused - before.flows_reused;

  json::Value report = json::Value::object();
  report.set("schema", kBatchStreamSchemaVersion);
  report.set("scenarios", static_cast<std::int64_t>(set_.size()));
  report.set("points", stats_.points);
  report.set("route_plans", stats_.artifacts.plans_compiled);
  report.set("flow_graphs", stats_.artifacts.flows_compiled);
  out << report.dump() << "\n";
  out.flush();
}

}  // namespace quarc::batch
