#include "quarc/batch/scenario_set.hpp"

#include <istream>
#include <sstream>
#include <utility>

#include "quarc/util/error.hpp"
#include "quarc/util/json.hpp"

namespace quarc::batch {

namespace {

/// The scalar keys a spec line may carry (also the grid axes, for the
/// first five). Kept in one place so the unknown-key check and the axis
/// whitelist can't drift apart.
constexpr std::string_view kAxisKeys[] = {"topology", "pattern", "alpha", "msg", "seed"};

bool is_axis(std::string_view key) {
  for (const std::string_view k : kAxisKeys) {
    if (k == key) return true;
  }
  return false;
}

/// Applies one scalar key to the spec; false when the key is unknown.
bool apply_key(ScenarioSpec& spec, const std::string& key, const json::Value& v) {
  if (key == "topology") {
    spec.topology = v.as_string();
  } else if (key == "pattern") {
    spec.pattern = v.as_string();
  } else if (key == "alpha") {
    spec.alpha = v.as_double();
  } else if (key == "msg") {
    spec.msg = static_cast<int>(v.as_int());
  } else if (key == "seed") {
    spec.seed = v.as_uint();
  } else if (key == "pattern_seed") {
    spec.pattern_seed = v.as_uint();
    spec.pattern_seed_set = true;
  } else if (key == "rates") {
    spec.rates.clear();
    for (const json::Value& r : v.as_array()) {
      const double rate = r.as_double();
      QUARC_REQUIRE(rate > 0.0, "scenario spec: rates must be positive");
      spec.rates.push_back(rate);
    }
    QUARC_REQUIRE(!spec.rates.empty(), "scenario spec: rates must not be empty");
  } else if (key == "sweep") {
    spec.sweep_points = static_cast<int>(v.as_int());
    QUARC_REQUIRE(spec.sweep_points >= 1, "scenario spec: sweep must be >= 1");
  } else if (key == "fill") {
    spec.fill = v.as_double();
    QUARC_REQUIRE(spec.fill > 0.0 && spec.fill <= 1.0, "scenario spec: fill must be in (0,1]");
  } else if (key == "sim") {
    spec.sim = v.as_bool();
  } else if (key == "warmup") {
    spec.warmup = v.as_int();
  } else if (key == "measure") {
    spec.measure = v.as_int();
  } else if (key == "solver_iteration") {
    spec.solver_iteration = v.as_string();
    QUARC_REQUIRE(spec.solver_iteration == "anderson" || spec.solver_iteration == "gauss-seidel",
                  "scenario spec: solver_iteration must be anderson or gauss-seidel");
  } else if (key == "assembly") {
    spec.assembly = v.as_string();
    QUARC_REQUIRE(spec.assembly == "stencil" || spec.assembly == "direct",
                  "scenario spec: assembly must be stencil or direct");
  } else if (key == "label") {
    spec.label = v.as_string();
  } else {
    return false;
  }
  return true;
}

/// One parsed line -> one or (for grid lines) many members, appended in
/// deterministic cross-product order.
void expand_line(const json::Value& doc, ScenarioSet& out) {
  QUARC_REQUIRE(doc.is_object(), "scenario spec: each line must be a JSON object");

  ScenarioSpec base;
  bool has_topology = false;
  const json::Value* grid = nullptr;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "grid") {
      QUARC_REQUIRE(value.is_object(), "scenario spec: grid must be an object of axis arrays");
      grid = &value;
      continue;
    }
    QUARC_REQUIRE(apply_key(base, key, value), "scenario spec: unknown key '" + key + "'");
    if (key == "topology") has_topology = true;
  }

  if (grid == nullptr) {
    QUARC_REQUIRE(has_topology, "scenario spec: topology is required");
    out.add(std::move(base));
    return;
  }

  // Collect the axes; reject anything that isn't one, anything that is
  // also a top-level scalar, and empty arrays.
  std::vector<std::pair<std::string_view, const std::vector<json::Value>*>> axes;
  for (const std::string_view axis : kAxisKeys) {
    const json::Value* values = grid->find(axis);
    if (values == nullptr) continue;
    QUARC_REQUIRE(doc.find(axis) == nullptr,
                  "scenario spec: axis '" + std::string(axis) +
                      "' given both at top level and inside grid");
    QUARC_REQUIRE(values->is_array() && !values->as_array().empty(),
                  "scenario spec: grid axis '" + std::string(axis) +
                      "' must be a non-empty array");
    axes.emplace_back(axis, &values->as_array());
  }
  for (const auto& [key, value] : grid->as_object()) {
    (void)value;
    QUARC_REQUIRE(is_axis(key), "scenario spec: unknown grid axis '" + key + "'");
  }
  QUARC_REQUIRE(has_topology || grid->find("topology") != nullptr,
                "scenario spec: topology is required (top level or a grid axis)");

  // Row-major nested expansion over the fixed kAxisKeys order: the last
  // collected axis varies fastest. Iterative odometer over axis indices.
  std::vector<std::size_t> index(axes.size(), 0);
  while (true) {
    ScenarioSpec member = base;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      apply_key(member, std::string(axes[a].first), (*axes[a].second)[index[a]]);
    }
    out.add(std::move(member));
    std::size_t a = axes.size();
    while (a > 0) {
      --a;
      if (++index[a] < axes[a].second->size()) break;
      index[a] = 0;
      if (a == 0) return;
    }
    if (axes.empty()) return;
  }
}

}  // namespace

int ScenarioSpec::point_count() const {
  return rates.empty() ? sweep_points : static_cast<int>(rates.size());
}

api::Scenario ScenarioSpec::make_scenario() const {
  api::Scenario s;
  // Unicast-only members never materialise a pattern (same normalisation
  // the CLI applies), so grid members differing only in alpha=0 share one
  // artifact and one fingerprint family.
  s.topology(topology)
      .pattern(alpha > 0.0 ? pattern : "none")
      .alpha(alpha)
      .message_length(msg)
      .seed(seed)
      .warmup(warmup)
      .measure(measure)
      .with_sim(sim);
  if (pattern_seed_set) s.pattern_seed(pattern_seed);
  s.model_options().solver.iteration = solver_iteration == "gauss-seidel"
                                           ? SolverIteration::GaussSeidel
                                           : SolverIteration::Anderson;
  s.model_options().assembly =
      assembly == "direct" ? LatencyAssembly::DirectWalk : LatencyAssembly::Stencil;
  return s;
}

std::string ScenarioSpec::describe() const {
  if (!label.empty()) return label;
  std::ostringstream os;
  os << topology << " " << pattern << " alpha=" << json::format_number(alpha) << " msg=" << msg
     << " seed=" << seed;
  return os.str();
}

void ScenarioSet::add(ScenarioSpec spec) {
  QUARC_REQUIRE(!spec.topology.empty(), "scenario spec: topology is required");
  members_.push_back(std::move(spec));
}

ScenarioSet ScenarioSet::parse(std::istream& in) {
  ScenarioSet set;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Skip blanks and '#' comments so spec files can be annotated.
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    try {
      expand_line(json::Value::parse(line), set);
    } catch (const InvalidArgument& e) {
      throw InvalidArgument("scenario spec line " + std::to_string(line_no) + ": " + e.what());
    }
  }
  return set;
}

ScenarioSet ScenarioSet::parse_text(std::string_view text) {
  std::istringstream is{std::string(text)};
  return parse(is);
}

}  // namespace quarc::batch
