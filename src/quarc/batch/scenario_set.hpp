// ScenarioSet — a parsed fleet of scenarios: explicit members plus
// `grid:` cross-product expansion, from a JSONL spec stream.
//
// One line per entry, each a JSON object. Two kinds of line:
//
//   {"topology":"quarc:16","pattern":"random:3","alpha":0.05,
//    "rates":[0.002,0.004],"sim":true,"seed":42}
//
// names one scenario, and
//
//   {"grid":{"topology":["quarc:16","mesh:4x4"],"alpha":[0.05,0.1]},
//    "pattern":"random:3","sweep":4}
//
// expands the cross-product of its axes (members of the "grid" object),
// every other key acting as the shared default. Axes may be any of
// topology / pattern / alpha / msg / seed; expansion order is fixed —
// topology outermost, then pattern, alpha, msg, seed innermost — so the
// member list (and with it every member index in streamed batch output)
// is deterministic whatever order the JSON object spelled its keys in.
//
// Recognised keys (all optional except topology):
//   topology   registry spec, e.g. "quarc:16"             [required]
//   pattern    registry spec; "none" for unicast-only     ["none"]
//   alpha      multicast fraction                         [0]
//   msg        message length in flits                    [32]
//   seed       run seed                                   [1]
//   pattern_seed  pattern construction seed               [defaults to seed]
//   rates      explicit rate grid (array of numbers)
//   sweep      auto-grid point count (ignored when rates given)  [4]
//   fill       auto-grid endpoint as a fraction of saturation    [0.85]
//   sim        also run the flit-level simulator per point  [false]
//   warmup / measure   simulator windows                  [5000 / 40000]
//   solver_iteration   "anderson" | "gauss-seidel"        ["anderson"]
//   assembly           "stencil" | "direct"               ["stencil"]
//   label      display name for progress output           [auto]
//
// Unknown keys are errors (a typo must not silently drop a knob), as are
// axis keys listed both at top level and inside "grid". Blank lines and
// lines starting with '#' are skipped, so spec files can be commented.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "quarc/api/scenario.hpp"

namespace quarc::batch {

/// One fleet member, still in spec form (nothing compiled yet).
struct ScenarioSpec {
  std::string topology;
  std::string pattern = "none";
  double alpha = 0.0;
  int msg = 32;
  std::uint64_t seed = 1;
  bool pattern_seed_set = false;
  std::uint64_t pattern_seed = 0;
  std::vector<double> rates;  ///< explicit grid; empty -> auto sweep
  int sweep_points = 4;
  double fill = 0.85;
  bool sim = false;
  std::int64_t warmup = 5000;
  std::int64_t measure = 40000;
  std::string solver_iteration = "anderson";
  std::string assembly = "stencil";
  std::string label;

  /// Grid points this member evaluates (known without solving: explicit
  /// rates count, or the configured sweep point count).
  int point_count() const;

  /// Assembles the api::Scenario this spec denotes (nothing validated or
  /// compiled yet — attach caches first).
  api::Scenario make_scenario() const;

  /// Short display form, e.g. "quarc:16 random:3 alpha=0.05 msg=32 seed=42".
  std::string describe() const;
};

class ScenarioSet {
 public:
  /// Parses a JSONL spec stream; throws InvalidArgument naming the line
  /// on any malformed entry. Grid lines expand in place, in order.
  static ScenarioSet parse(std::istream& in);
  static ScenarioSet parse_text(std::string_view text);

  void add(ScenarioSpec spec);

  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }
  const std::vector<ScenarioSpec>& members() const { return members_; }
  const ScenarioSpec& operator[](std::size_t i) const { return members_[i]; }

 private:
  std::vector<ScenarioSpec> members_;
};

}  // namespace quarc::batch
