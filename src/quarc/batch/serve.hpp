// `quarcnoc serve` — a long-lived scenario service over stdin/stdout.
//
// The batch engine drains a fleet and exits; serve keeps the process —
// and its warm caches — alive. One JSON request per input line, one JSON
// response line per request, in order:
//
//   request   {"topology":"quarc:16","pattern":"random:3","alpha":0.05,
//              "rates":[0.002,0.004],"sim":true,"id":7}
//   response  {"schema":1,"id":7,"fp":"<hex>","rows":[{...},{...}],
//              "served":1,"solved":1,"iterations":42}
//
// A request carries the same keys as a ScenarioSet member (scenario_set.hpp)
// plus "rate" (single) or "rates" (grid) — or "sweep"/"fill" for an
// auto grid — and an optional "id" echoed verbatim into the response.
// Hits in the shared (fingerprint, rate) store are answered without a
// solve ("served", zero added "iterations"); misses are solved on the
// pool and stored, so the next identical request is pure lookup. Control
// lines: {"cmd":"stats"} reports store/artifact counters without solving;
// {"cmd":"shutdown"} ends the loop (EOF does too).
//
// Malformed lines get {"schema":1,"error":"..."} (with the id when one
// parsed) and the loop keeps serving — one bad client request must not
// take the service down.
//
// Storage: the result store is a SweepCache — disk-backed when cache_dir
// is set, with flock-guarded appends so concurrent serve/batch processes
// can share one directory — and its in-memory tier can be size-bounded
// (memory_limit_rows) with LRU eviction; evicted rows reload from disk on
// demand. Compiled artifacts (plans/flow graphs) are shared across
// requests via one ArtifactCache for the life of the process.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>

#include "quarc/batch/artifact_cache.hpp"
#include "quarc/sweep/sweep_cache.hpp"

namespace quarc::batch {

inline constexpr int kServeSchemaVersion = 1;

struct ServeOptions {
  /// parallel_for workers for miss solves (<=0: default).
  int threads = -1;
  /// Disk-backed store directory; empty keeps the store in memory only.
  /// Ignored when `cache` is provided.
  std::string cache_dir;
  /// In-memory row bound for the store (0: unbounded); evictions are LRU
  /// by fingerprint and reload from disk on demand.
  std::size_t memory_limit_rows = 0;
  /// Pre-built store/artifact caches (tests, embedding); built from the
  /// fields above when null.
  std::shared_ptr<SweepCache> cache;
  std::shared_ptr<ArtifactCache> artifacts;
};

/// Runs the serve loop until EOF or {"cmd":"shutdown"}; responses to
/// `out`, per-request log lines to `err`. Returns a process exit code.
int serve(std::istream& in, std::ostream& out, std::ostream& err, const ServeOptions& options);

}  // namespace quarc::batch
