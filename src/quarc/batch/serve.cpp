#include "quarc/batch/serve.hpp"

#include <exception>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "quarc/batch/batch_runner.hpp"
#include "quarc/batch/scenario_set.hpp"
#include "quarc/util/error.hpp"
#include "quarc/util/json.hpp"

namespace quarc::batch {

namespace {

/// Request keys that are serve-layer, not scenario-spec: stripped before
/// the remainder re-parses as a one-member ScenarioSet line.
bool is_serve_key(const std::string& key) {
  return key == "id" || key == "rate" || key == "cmd";
}

json::Value stats_response(const SweepCache& cache, const ArtifactCache& artifacts) {
  const SweepCacheStats cs = cache.stats();
  const ArtifactCacheStats as = artifacts.stats();
  json::Value r = json::Value::object();
  r.set("schema", kServeSchemaVersion);
  r.set("cmd", "stats");
  r.set("store_rows", static_cast<std::int64_t>(cache.size()));
  r.set("store_hits", cs.hits);
  r.set("store_misses", cs.misses);
  r.set("store_stores", cs.stores);
  r.set("store_loaded", cs.loaded_entries);
  r.set("store_corrupt", cs.corrupt_entries);
  r.set("store_evicted_rows", cs.evicted_rows);
  r.set("plans_compiled", as.plans_compiled);
  r.set("plans_reused", as.plans_reused);
  r.set("flows_compiled", as.flows_compiled);
  r.set("flows_reused", as.flows_reused);
  return r;
}

}  // namespace

int serve(std::istream& in, std::ostream& out, std::ostream& err, const ServeOptions& options) {
  const std::shared_ptr<SweepCache> cache =
      options.cache ? options.cache
                    : (options.cache_dir.empty() ? std::make_shared<SweepCache>()
                                                 : std::make_shared<SweepCache>(options.cache_dir));
  if (options.memory_limit_rows > 0) cache->set_memory_limit_rows(options.memory_limit_rows);
  const std::shared_ptr<ArtifactCache> artifacts =
      options.artifacts ? options.artifacts : std::make_shared<ArtifactCache>();

  err << "serve: ready (store="
      << (cache->dir().empty() ? std::string("memory") : cache->dir());
  if (options.memory_limit_rows > 0) err << ", memory-limit=" << options.memory_limit_rows;
  err << ")\n";
  err.flush();

  std::string line;
  std::int64_t request_no = 0;
  while (std::getline(in, line)) {
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    ++request_no;

    json::Value response = json::Value::object();
    response.set("schema", kServeSchemaVersion);
    const json::Value* id = nullptr;
    json::Value request;
    try {
      request = json::Value::parse(line);
      QUARC_REQUIRE(request.is_object(), "request must be a JSON object");
      if ((id = request.find("id")) != nullptr) response.set("id", *id);

      if (const json::Value* cmd = request.find("cmd")) {
        const std::string& name = cmd->as_string();
        if (name == "shutdown") {
          response.set("cmd", "shutdown");
          out << response.dump() << "\n";
          out.flush();
          err << "serve: shutdown after " << request_no << " requests\n";
          return 0;
        }
        if (name == "stats") {
          json::Value stats = stats_response(*cache, *artifacts);
          if (id != nullptr) stats.set("id", *id);
          out << stats.dump() << "\n";
          out.flush();
          continue;
        }
        throw InvalidArgument("unknown cmd '" + name + "'");
      }

      // Rebuild the scenario-spec half of the request: strip serve-layer
      // keys, fold a scalar "rate" into "rates", reuse the ScenarioSet
      // line parser so request and batch-file syntax can never diverge.
      json::Value spec_doc = json::Value::object();
      for (const auto& [key, value] : request.as_object()) {
        if (!is_serve_key(key)) spec_doc.set(key, value);
      }
      if (const json::Value* rate = request.find("rate")) {
        QUARC_REQUIRE(request.find("rates") == nullptr,
                      "request carries both rate and rates");
        json::Value rates = json::Value::array();
        rates.push_back(*rate);
        spec_doc.set("rates", std::move(rates));
      }
      ScenarioSet one;
      {
        std::istringstream spec_line(spec_doc.dump());
        one = ScenarioSet::parse(spec_line);
      }
      QUARC_REQUIRE(one.size() == 1, "request must name exactly one scenario");

      // Fingerprint through the shared artifact cache: the compile work
      // (if any) is exactly what the runner below would do anyway.
      api::Scenario keyed = one[0].make_scenario();
      keyed.artifacts(artifacts);
      const ScenarioFingerprint fp = keyed.fingerprint();

      BatchOptions bo;
      bo.threads = options.threads;
      bo.cache = cache;
      bo.artifacts = artifacts;
      BatchRunner runner(std::move(one), bo);
      std::vector<api::ResultSet> results = runner.run(nullptr, nullptr);
      const api::ResultSet& rs = results.front();

      json::Value rows = json::Value::array();
      for (const api::ResultRow& row : rs.rows) rows.push_back(api::row_to_json(row));
      response.set("fp", fp.hex());
      response.set("rows", std::move(rows));
      response.set("served", rs.cache_hits);
      response.set("solved", rs.cache_misses);
      response.set("iterations", runner.stats().solved_iterations);
      out << response.dump() << "\n";
      out.flush();
      err << "serve: #" << request_no << " " << rs.topology << " " << rs.pattern
          << " alpha=" << json::format_number(rs.alpha) << ": " << rs.rows.size()
          << " rows, served=" << rs.cache_hits << " solved=" << rs.cache_misses
          << " iterations=" << runner.stats().solved_iterations << "\n";
      err.flush();
    } catch (const std::exception& e) {
      json::Value error = json::Value::object();
      error.set("schema", kServeSchemaVersion);
      if (id != nullptr) error.set("id", *id);
      error.set("error", std::string(e.what()));
      out << error.dump() << "\n";
      out.flush();
      err << "serve: #" << request_no << " error: " << e.what() << "\n";
      err.flush();
    }
  }
  err << "serve: eof after " << request_no << " requests\n";
  return 0;
}

}  // namespace quarc::batch
