// BatchRunner — every (scenario, rate) point of a fleet on one pool.
//
// A ScenarioSet names N scenarios; running them one Scenario::run_sweep at
// a time pays N pool fork-joins and leaves workers idle at every member
// boundary. The runner instead:
//
//   1. prepares each member once (validate via a shared ArtifactCache, so
//      plans/flow graphs compile once per distinct key across the fleet;
//      fingerprint; rate grid; SweepCache lookups),
//   2. flattens every cache-miss point of every member into ONE task list
//      and solves it with a single parallel_for — the same dynamic
//      index-stealing pool sweep_tasks uses, now saturated across member
//      boundaries,
//   3. streams one compact JSON line per point the moment it completes —
//      through an in-order reorder buffer, so the stream is emitted in
//      canonical (member, grid-index) order and its bytes are identical
//      across thread counts and warm/cold caches,
//   4. assembles one ResultSet per member, byte-identical to what that
//      member's own run_sweep would have produced (each point is a pure
//      function of (fingerprint, rate) — the same invariant that makes
//      the sweep cache sound makes fleet scheduling free).
//
// Progress (per-scenario completion lines and an aggregate summary with
// artifact-dedup and throughput counters) goes to a separate stream —
// stderr in the CLI — so the result stream stays machine-readable.
//
// Determinism: solver workspaces are per-worker-thread and fully reseeded
// per solve; per-point sim seeds are sweep_point_seed(member seed, rate).
// Nothing about scheduling order can change a byte of any row (the batch
// determinism suite pins batch-vs-individual, thread counts and
// warm/cold byte identity).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "quarc/api/result_set.hpp"
#include "quarc/batch/artifact_cache.hpp"
#include "quarc/batch/scenario_set.hpp"
#include "quarc/sweep/sweep_cache.hpp"

namespace quarc::batch {

inline constexpr int kBatchStreamSchemaVersion = 1;

struct BatchOptions {
  /// parallel_for workers for the one shared pool (<=0: default).
  int threads = -1;
  /// Shared result store consulted before solving and fed after (may be
  /// null: everything solves).
  std::shared_ptr<SweepCache> cache;
  /// Shared compiled-artifact cache; created internally when null. Pass
  /// one in to share plans/flow graphs across BatchRunner instances (the
  /// serve loop does).
  std::shared_ptr<ArtifactCache> artifacts;
  /// SoA lane count of the batched solve: up to this many consecutive
  /// same-member miss points go through one solve_batch lane group
  /// (<= 1: the historical scalar path). Byte-identical for every value
  /// — the batch determinism suite pins it — so like threads it never
  /// appears in any fingerprint or document.
  int batch_points = 8;
};

/// Aggregate counters for one run(); truthful across every path — cache
/// hits and misses are summed over members exactly as merge_result_sets
/// sums them over shards.
struct BatchStats {
  std::int64_t scenarios = 0;
  std::int64_t points = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  /// Fixed-point iterations spent on newly solved points only (served
  /// rows carry their original solve's count but cost this run nothing) —
  /// the serve loop's "a repeated request does zero solver work" counter.
  std::int64_t solved_iterations = 0;
  /// SoA lane groups run and the points that rode in them (scalar-path
  /// points — rate <= 0 or batch_points <= 1 — count in neither).
  std::int64_t solve_batches = 0;
  std::int64_t solve_lanes = 0;
  ArtifactCacheStats artifacts;
  double elapsed_seconds = 0.0;
};

class BatchRunner {
 public:
  explicit BatchRunner(ScenarioSet set, BatchOptions options = {});

  /// Runs the whole fleet. `stream` (may be null) receives one compact
  /// JSON line per completed point in canonical order:
  ///   {"schema":1,"scenario":<i>,"fp":"<hex>","row":{...}}
  /// `progress` (may be null) receives per-scenario completion lines and
  /// the aggregate summary. Returns one ResultSet per member, in member
  /// order, byte-identical to the members' individual run_sweep documents.
  std::vector<api::ResultSet> run(std::ostream* stream, std::ostream* progress);

  /// Expands and validates the fleet WITHOUT solving anything: emits one
  /// JSON line per member —
  ///   {"schema":1,"scenario":<i>,"label":...,"fp":"<hex>","points":N}
  /// then the artifact-dedup report —
  ///   {"schema":1,"scenarios":N,"route_plans":M,"flow_graphs":K}
  /// Auto-sweep members report their configured point count (the grid
  /// itself would need saturation solves).
  void dry_run(std::ostream& out);

  /// Counters for the last run()/dry_run() (zeroed before each).
  const BatchStats& stats() const { return stats_; }

 private:
  ScenarioSet set_;
  BatchOptions options_;
  BatchStats stats_;
};

}  // namespace quarc::batch
