// ArtifactCache — keyed, shared compiled artifacts for scenario fleets.
//
// PRs 3-5 made the per-scenario fixed costs explicit: a RoutePlan is a
// pure function of (topology spec, pattern spec, pattern seed, multicast
// gating) and a FlowGraph of (that plan, alpha). A batch of scenarios —
// a topology x alpha grid, say — recompiles those artifacts once per
// member even though most members share them. This cache generalises the
// lazy `call_once` sharing the single-Scenario path already uses into an
// explicit keyed store: each distinct plan key compiles exactly once, each
// distinct (plan key, alpha) flow structure compiles exactly once, and
// every Scenario attached to the cache (Scenario::artifacts) adopts the
// shared immutable objects instead of building private copies.
//
// Keys are canonical texts (the same key=value discipline the scenario
// fingerprint uses), so two scenarios share an artifact iff the artifact's
// inputs are identical:
//
//   plan:  topology=<spec> pattern=<spec> pattern_seed=<n> multicast=<0|1>
//   flows: <plan key> + alpha=<shortest-round-trip>
//
// Sharing is byte-transparent by construction: a compiled artifact is a
// deterministic function of its key's inputs, so a Scenario that adopts a
// cached plan/flow graph produces bit-identical results to one that
// compiled its own (pinned by the batch determinism suite). Only
// spec-built scenarios participate; escape-hatch topologies/patterns are
// not keyed by any spec and always compile privately.
//
// Lifetime: a PlanArtifact owns its Topology, pattern and RoutePlan
// together (the plan holds a reference into the topology), and a flow
// entry keeps its plan artifact alive, so handed-out shared_ptrs stay
// valid after the cache — or any other consumer — is destroyed.
//
// Thread safety: lookup-or-compile is serialised by an internal mutex
// (compilation happens under the lock, so a key is never compiled twice by
// racing threads); the artifacts themselves are immutable after
// construction and shared read-only across threads.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "quarc/model/flow_graph.hpp"
#include "quarc/route/route_plan.hpp"
#include "quarc/topo/topology.hpp"
#include "quarc/traffic/pattern.hpp"

namespace quarc::batch {

/// Everything a plan key names, compiled together because they reference
/// each other: the plan borrows the topology, and the pattern is the one
/// the plan's multicast streams were built from.
struct PlanArtifact {
  std::shared_ptr<const Topology> topology;
  std::shared_ptr<const MulticastPattern> pattern;  ///< null for "none"
  std::shared_ptr<const RoutePlan> plan;
};

/// The inputs a shared RoutePlan is a pure function of.
struct PlanRequest {
  std::string topology_spec;  ///< registry spec, e.g. "quarc:16"
  std::string pattern_spec;   ///< registry spec; "none" for unicast-only
  std::uint64_t pattern_seed = 0;
  /// Whether the plan compiles multicast streams (the workload's
  /// alpha > 0); a unicast-only plan never materialises its pattern.
  bool multicast = false;

  /// Canonical cache key (one line per input, fingerprint-style).
  std::string key() const;
};

struct ArtifactCacheStats {
  std::int64_t plans_compiled = 0;
  std::int64_t plans_reused = 0;
  std::int64_t flows_compiled = 0;
  std::int64_t flows_reused = 0;
};

class ArtifactCache {
 public:
  /// The shared plan artifact for `req`, compiling it on first request:
  /// topology from the registry, pattern from (spec, nodes, seed) whenever
  /// the spec isn't "none" (the fingerprint digests an attached pattern
  /// even for unicast-only workloads), plan with multicast streams only
  /// when `req.multicast`. Throws InvalidArgument on bad specs.
  std::shared_ptr<const PlanArtifact> plan(const PlanRequest& req);

  /// The shared rate-invariant FlowGraph for (req, alpha), compiling it —
  /// and its plan, if needed — on first request. `message_length` only
  /// seeds the workload handed to validation; the flow structure itself is
  /// independent of it (the solver takes M separately).
  std::shared_ptr<const FlowGraph> flows(const PlanRequest& req, double alpha,
                                         int message_length);

  ArtifactCacheStats stats() const;

  std::size_t plan_count() const;
  std::size_t flow_count() const;

 private:
  /// `count_reuse` is false for internal lookups so plans_reused counts
  /// consumer requests, not map probes.
  std::shared_ptr<const PlanArtifact> plan_locked(const PlanRequest& req, bool count_reuse = true);

  struct FlowEntry {
    std::shared_ptr<const PlanArtifact> plan;  ///< keeps the graph's plan alive
    std::shared_ptr<const FlowGraph> flows;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const PlanArtifact>> plans_;
  std::unordered_map<std::string, FlowEntry> flows_;
  ArtifactCacheStats stats_;
};

}  // namespace quarc::batch
