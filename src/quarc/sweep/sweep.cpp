#include "quarc/sweep/sweep.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "quarc/util/error.hpp"
#include "quarc/util/parallel.hpp"

namespace quarc {

namespace {

double nan_value() { return std::numeric_limits<double>::quiet_NaN(); }

double relative_error(double model, double sim) {
  if (!std::isfinite(model) || !std::isfinite(sim) || sim <= 0.0) return nan_value();
  return (model - sim) / sim;
}

// Fold fit for the superlinear probe. On these workloads the model stops
// converging not because the bottleneck load reaches the utilization guard
// but because the fixed point DISAPPEARS in a fold bifurcation: rho(r) ends
// at some rho* well below the guard with a vertical tangent, i.e.
// rho* - rho ~ A*sqrt(r* - r). Three converged samples pin the sqrt model
// exactly; the fitted r* is found where the two secant amplitudes agree:
//   g(r*) = A12(r*) - A23(r*),  Aij = (rho_j - rho_i)/(sqrt(r*-r_i)-sqrt(r*-r_j))
// g is monotone in r*, so an internal bisection (no solver cost) recovers
// it. Returns NaN when the samples carry no fold signature.
double fold_fit(double r1, double rho1, double r2, double rho2, double r3, double rho3,
                double hi_bound) {
  auto g = [&](double rs) {
    const double s1 = std::sqrt(rs - r1), s2 = std::sqrt(rs - r2), s3 = std::sqrt(rs - r3);
    const double d12 = s1 - s2, d23 = s2 - s3;
    if (!(d12 > 0.0) || !(d23 > 0.0)) return nan_value();
    return (rho2 - rho1) / d12 - (rho3 - rho2) / d23;
  };
  double a = r3 + (r3 - r2) * 1e-6 + 1e-300;
  double b = std::max(hi_bound * 2.0, r3 * 1.01);
  double ga = g(a);
  const double gb = g(b);
  if (std::isnan(ga) || std::isnan(gb) || ga * gb > 0.0) return nan_value();
  for (int i = 0; i < 60; ++i) {
    const double m = 0.5 * (a + b);
    const double gm = g(m);
    if (std::isnan(gm)) return nan_value();
    if (ga * gm <= 0.0) {
      b = m;
    } else {
      a = m;
      ga = gm;
    }
  }
  return 0.5 * (a + b);
}

}  // namespace

double RatePointResult::multicast_error() const {
  if (!sim_run || sim.multicast_latency.count == 0) return nan_value();
  return relative_error(model.avg_multicast_latency, sim.multicast_latency.mean);
}

double RatePointResult::unicast_error() const {
  if (!sim_run || sim.unicast_latency.count == 0) return nan_value();
  return relative_error(model.avg_unicast_latency, sim.unicast_latency.mean);
}

std::uint64_t sweep_point_seed(std::uint64_t base_seed, double rate) {
  // splitmix64 finaliser over the xor of the base seed and the rate's bit
  // pattern: cheap, and every output bit depends on every input bit, so
  // nearby rates do not produce correlated simulator streams.
  if (rate == 0.0) rate = 0.0;  // -0.0 and 0.0 compare equal; seed equally
  std::uint64_t z = base_seed ^ std::bit_cast<std::uint64_t>(rate);
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

SaturationProbeResult probe_saturation_rate(const FlowGraph& flows, const Workload& base,
                                            ModelOptions options) {
  // Only the solver's status and bottleneck load matter here, so probe it
  // directly from one reused workspace: no latency assembly (Eq. 7-16
  // walks every route) and no per-probe graph build, unlike evaluating
  // the full model.
  ServiceTimeSolver solver(flows, base.message_length, options.solver);
  SolverWorkspace ws;
  const double guard = options.solver.utilization_guard;
  SaturationProbeResult out;

  // Last converged solution: the continuation seed for the next attempt
  // (the attempt sequence is deterministic, so the seeds are too).
  std::vector<double> hint;
  // Solves `rate`; returns the bottleneck load rho, or NaN when the
  // solver did not converge. Converged solutions are harvested into
  // out.nodes — they are free continuation-spine material.
  auto attempt = [&](double rate) -> double {
    ++out.solves;
    const SolveStatus st = hint.empty() ? solver.solve(rate, ws)
                                        : solver.solve(rate, ws, hint);
    out.iterations += solver.iterations_used();
    if (st != SolveStatus::Converged) return nan_value();
    hint.resize(ws.solution.size());
    for (std::size_t c = 0; c < ws.solution.size(); ++c) {
      hint[c] = ws.solution[c].service_time;
    }
    auto pos = std::lower_bound(out.nodes.begin(), out.nodes.end(), rate,
                                [](const SpineNode& n, double r) { return n.rate < r; });
    if (pos == out.nodes.end() || pos->rate != rate) {
      out.nodes.insert(pos, SpineNode{rate, hint});
    }
    return guard + solver.guard_residual();
  };

  // Converged floor. The historical probe silently reported saturation 0
  // when the model failed at the initial 1e-4 — an extreme workload then
  // produced an all-zero "grid" with no hint anything went wrong. Shrink
  // the floor instead, and fail loudly when even vanishing rates diverge.
  double lo = 1e-4;
  double rho_lo = attempt(lo);
  for (int shrink = 0; std::isnan(rho_lo); ++shrink) {
    if (shrink >= 24) {
      std::ostringstream msg;
      msg << "saturation probe: model does not converge even at rate " << lo
          << " (solver max_iterations=" << options.solver.max_iterations
          << ", utilization_guard=" << guard
          << ") — the workload has no usable operating region";
      throw ComputationError(msg.str());
    }
    lo *= 0.25;
    rho_lo = attempt(lo);
  }
  if (!(rho_lo > 0.0)) {
    throw ComputationError(
        "saturation probe: zero bottleneck load at a positive rate — "
        "the model never saturates, so no finite saturation rate exists");
  }

  if (options.probe == SaturationProbe::Bisection) {
    // Historical search: double until divergence, then bisect the bracket.
    double hi = 2.0 * lo;
    for (double rho = attempt(hi); !std::isnan(rho); rho = attempt(hi)) {
      lo = hi;
      rho_lo = rho;
      hi *= 2.0;
      QUARC_ASSERT(hi < 1e6, "saturation search runaway");
    }
    for (int i = 0; i < 40 && (hi - lo) > 1e-3 * hi; ++i) {
      const double mid = 0.5 * (lo + hi);
      const double rho = attempt(mid);
      if (std::isnan(rho)) {
        hi = mid;
      } else {
        lo = mid;
        rho_lo = rho;
      }
    }
    out.rate = lo;
    return out;
  }

  // Superlinear probe. The bottleneck load rho(r) is superlinear (convex,
  // rho(0) = 0) in the injection rate, which makes r*guard/rho(r) a SOUND
  // upper bound on any rate that still converges — no doubling phase.
  // Saturation itself is a fold bifurcation (see fold_fit), so the probe
  // runs in two phases:
  //   1. a geometric ramp (x8 per step, clipped by the bound) gathers
  //      coarse samples until an attempt diverges or rho turns clearly
  //      superlinear;
  //   2. the last three converged samples feed the sqrt fold model. The
  //      fit over-predicts from mid-range samples by an unknown fraction
  //      of the remaining gap, so each step bisects TOWARD the prediction
  //      (never past the tightest diverged rate) — worst case a bisection
  //      of the fit bracket, typically superlinear as the samples cluster.
  // Termination, in decreasing order of typicality:
  //   - fold certificate: the fitted fold sits within 2e-3 of the last
  //     converged rate AND a diverged rate was observed within 2e-3 above
  //     the fit (one cheap verification attempt forces this when the fit
  //     converges before the bracket does);
  //   - bracket certificate: converged/diverged bracket within 1e-3, as
  //     the historical bisection certified;
  //   - residual certificate: rho within 1e-3 of the guard (workloads
  //     that saturate by guard crossing rather than by fold).
  double cap = lo * guard / rho_lo;
  std::vector<std::pair<double, double>> samples = {{lo, rho_lo}};
  while (true) {
    double r = lo * std::min(8.0, 0.5 * guard / rho_lo);
    if (r >= cap) r = std::sqrt(lo * cap);
    const double rho = attempt(r);
    if (std::isnan(rho)) {
      cap = r;
      break;
    }
    const bool curved = rho / samples.back().second > 1.3 * r / samples.back().first;
    samples.push_back({r, rho});
    lo = r;
    rho_lo = rho;
    cap = std::min(cap, lo * guard / rho_lo);
    if (curved || samples.size() >= 4) break;
  }
  for (int i = 0; i < 64; ++i) {
    if (guard - rho_lo <= 1e-3 * guard) break;  // residual certificate
    if (cap - lo <= 1e-3 * cap) break;          // bracket certificate
    double pred = nan_value();
    if (samples.size() >= 3) {
      const std::size_t n = samples.size();
      pred = fold_fit(samples[n - 3].first, samples[n - 3].second, samples[n - 2].first,
                      samples[n - 2].second, samples[n - 1].first, samples[n - 1].second, cap);
    }
    double r;
    if (std::isfinite(pred) && pred > lo * (1.0 + 1e-9)) {
      if (pred - lo <= 2e-3 * pred) {
        if (cap <= pred * (1.0 + 2e-3)) break;  // fold certificate
        // Verification attempt: expect divergence just above the fit.
        r = pred * (1.0 + 1e-3);
        if (r >= cap) r = lo + 0.5 * (cap - lo);
      } else {
        r = lo + 0.5 * (std::min(pred, cap) - lo);
      }
    } else {
      // No usable fit: plain bracket work (geometric while wide).
      r = cap / lo > 4.0 ? std::sqrt(lo * cap) : lo + 0.5 * (cap - lo);
    }
    const double rho = attempt(r);
    if (std::isnan(rho)) {
      cap = r;
    } else {
      samples.push_back({r, rho});
      lo = r;
      rho_lo = rho;
      cap = std::min(cap, lo * guard / rho_lo);
    }
  }
  out.rate = lo;
  return out;
}

double model_saturation_rate(const FlowGraph& flows, const Workload& base, ModelOptions options) {
  return probe_saturation_rate(flows, base, options).rate;
}

double model_saturation_rate(const RoutePlan& plan, const Workload& base, ModelOptions options) {
  return model_saturation_rate(FlowGraph(plan, base), base, options);
}

double model_saturation_rate(const Topology& topo, const Workload& base, ModelOptions options) {
  return model_saturation_rate(FlowGraph(topo, base), base, options);
}

std::vector<double> rate_grid_from_saturation(double saturation, int points, double fill) {
  QUARC_REQUIRE(points >= 1, "grid needs at least one point");
  QUARC_REQUIRE(fill > 0.0 && fill <= 1.0, "fill must be in (0,1]");
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(points));
  for (int i = 1; i <= points; ++i) {
    rates.push_back(saturation * fill * static_cast<double>(i) / static_cast<double>(points));
  }
  return rates;
}

std::vector<double> rate_grid_to_saturation(const FlowGraph& flows, const Workload& base,
                                            int points, double fill, ModelOptions options) {
  QUARC_REQUIRE(points >= 1, "grid needs at least one point");
  QUARC_REQUIRE(fill > 0.0 && fill <= 1.0, "fill must be in (0,1]");
  return rate_grid_from_saturation(model_saturation_rate(flows, base, options), points, fill);
}

std::vector<double> rate_grid_to_saturation(const RoutePlan& plan, const Workload& base,
                                            int points, double fill, ModelOptions options) {
  return rate_grid_to_saturation(FlowGraph(plan, base), base, points, fill, options);
}

std::vector<double> rate_grid_to_saturation(const Topology& topo, const Workload& base, int points,
                                            double fill, ModelOptions options) {
  return rate_grid_to_saturation(FlowGraph(topo, base), base, points, fill, options);
}

// ---- ContinuationSpine ----

ContinuationSpine::ContinuationSpine(const FlowGraph& flows, int message_length) {
  const std::size_t nch = flows.num_channels();
  floor_.resize(nch);
  for (std::size_t c = 0; c < nch; ++c) {
    floor_[c] = flows.zero_load_service(static_cast<ChannelId>(c), message_length);
  }
}

void ContinuationSpine::insert(double rate, std::span<const double> service_time) {
  QUARC_REQUIRE(rate > 0.0, "spine nodes must have positive rates (rate 0 is implicit)");
  QUARC_REQUIRE(service_time.size() == floor_.size(),
                "spine node must have one service time per channel");
  const auto pos = std::lower_bound(rates_.begin(), rates_.end(), rate);
  if (pos != rates_.end() && *pos == rate) return;
  const auto idx = pos - rates_.begin();
  rates_.insert(pos, rate);
  x_.insert(x_.begin() + idx, std::vector<double>(service_time.begin(), service_time.end()));
}

bool ContinuationSpine::has_node_within(double rate, double tol) const {
  const auto pos = std::lower_bound(rates_.begin(), rates_.end(), rate);
  if (pos != rates_.end() && *pos - rate <= tol) return true;
  if (pos != rates_.begin() && rate - *(pos - 1) <= tol) return true;
  return false;
}

void ContinuationSpine::seed(double rate, std::vector<double>& out) const {
  const std::size_t nch = floor_.size();
  out.resize(nch);
  // First node strictly above `rate`. Landing exactly on a node makes it
  // the lower end with weight 1, so node rates reproduce node solutions.
  const auto pos = std::upper_bound(rates_.begin(), rates_.end(), rate);
  const auto j = static_cast<std::size_t>(pos - rates_.begin());
  if (j == rates_.size()) {
    // Above every node (or an empty spine): clamp to the top node — the
    // solver's own per-channel clamps keep even a too-hot seed inside the
    // utilization guard.
    const std::vector<double>& top = rates_.empty() ? floor_ : x_.back();
    std::copy(top.begin(), top.end(), out.begin());
    return;
  }
  const double r1 = rates_[j];
  const std::vector<double>& x1 = x_[j];
  const double r0 = j == 0 ? 0.0 : rates_[j - 1];
  const std::vector<double>& x0 = j == 0 ? floor_ : x_[j - 1];
  const double t = r1 > r0 ? (rate - r0) / (r1 - r0) : 0.0;
  for (std::size_t c = 0; c < nch; ++c) {
    out[c] = x0[c] + t * (x1[c] - x0[c]);
  }
}

std::shared_ptr<const ContinuationSpine> finalize_spine(const FlowGraph& flows,
                                                        const Workload& base,
                                                        const ModelOptions& options,
                                                        int spine_points,
                                                        const SaturationProbeResult& probe) {
  auto spine = std::make_shared<ContinuationSpine>(flows, base.message_length);
  for (const SpineNode& n : probe.nodes) spine->insert(n.rate, n.service_time);
  spine->add_build_cost(probe.solves, probe.iterations);
  if (spine_points > 0 && probe.rate > 0.0) {
    // Fill evenly spaced anchors at sat*i/spine_points, but only where no
    // harvested probe node already sits within half an anchor spacing —
    // the probe trajectory is free spine material, anchors are paid
    // solves. Ascending order, each seeded from the spine so far: a pure
    // function of (probe result, spine_points), nothing else.
    ServiceTimeSolver solver(flows, base.message_length, options.solver);
    SolverWorkspace ws;
    std::vector<double> seed;
    std::vector<double> x;
    const double spacing_tol = probe.rate / (2.0 * static_cast<double>(spine_points));
    for (int i = 1; i <= spine_points; ++i) {
      const double r = probe.rate * static_cast<double>(i) / static_cast<double>(spine_points);
      if (spine->has_node_within(r, spacing_tol)) continue;
      spine->seed(r, seed);
      const SolveStatus st = solver.solve(r, ws, seed);
      spine->add_build_cost(1, solver.iterations_used());
      if (st != SolveStatus::Converged) continue;
      x.resize(ws.solution.size());
      for (std::size_t c = 0; c < ws.solution.size(); ++c) {
        x[c] = ws.solution[c].service_time;
      }
      spine->insert(r, x);
    }
  }
  return spine;
}

std::shared_ptr<const ContinuationSpine> build_spine(const FlowGraph& flows, const Workload& base,
                                                     const ModelOptions& options,
                                                     int spine_points) {
  try {
    const SaturationProbeResult probe = probe_saturation_rate(flows, base, options);
    return finalize_spine(flows, base, options, spine_points, probe);
  } catch (const ComputationError&) {
    // No certifiable saturation rate. Sweeps over explicit rates may
    // still be perfectly solvable, so degrade to unseeded solves instead
    // of failing the whole sweep; auto-grid callers surface the error
    // themselves (Scenario::saturation_rate rethrows it).
    return nullptr;
  }
}

std::vector<RatePointResult> sweep_tasks(const FlowGraph& flows, const Workload& base,
                                         std::span<const SweepTask> tasks,
                                         const SweepConfig& cfg) {
  std::vector<RatePointResult> out(tasks.size());
  if (tasks.empty()) return out;  // cache-hit-only sweeps pay no probe
  // The continuation spine: supplied by the caller (Scenario/batch build
  // it once per scenario) or built here from the same fingerprinted
  // inputs — either way every point's seed is a pure function of
  // (fingerprint, rate), never of grid shape, threads or shards.
  std::shared_ptr<const ContinuationSpine> spine = cfg.spine;
  if (spine == nullptr && cfg.spine_points > 0) {
    spine = build_spine(flows, base, cfg.model, cfg.spine_points);
  }
  const ContinuationSpine* sp = spine.get();
  BatchSolveStats* stats = cfg.solve_stats.get();
  // Simulates task i into its already-modelled result row (the simulator
  // is per-point either way; only the model solve batches).
  auto sim_point = [&](std::size_t i) {
    if (!cfg.run_sim) return;
    sim::SimConfig sc = cfg.sim;
    sc.workload = base;
    sc.workload.message_rate = tasks[i].rate;
    sc.seed = tasks[i].sim_seed;
    sim::Simulator simulator(flows.plan(), sc);
    out[i].sim = simulator.run();
    out[i].sim_run = true;
  };
  // The historical one-scalar-solve-per-point body: the batch_points <= 1
  // escape hatch and the fallback for rate <= 0 points, which the batched
  // solve rejects (channel gating is lane-invariant only at positive
  // rates).
  auto solve_point = [&](std::size_t i) {
    RatePointResult& point = out[i];
    point.rate = tasks[i].rate;
    Workload w = base;
    w.message_rate = tasks[i].rate;
    // One workspace per worker thread, reused across every point the
    // thread solves. solve() fully reseeds it, so reuse cannot change
    // a byte (the sweep determinism suites pin this).
    static thread_local SolverWorkspace ws;
    const PerformanceModel model(flows, w, cfg.model);
    if (sp != nullptr) {
      static thread_local std::vector<double> x0;
      sp->seed(tasks[i].rate, x0);
      point.model = model.evaluate(ws, x0);
    } else {
      point.model = model.evaluate(ws);
    }
    sim_point(i);
  };
  // Solves tasks [chunk_begin, chunk_end) — all with positive rates — in
  // one SoA lane group. Byte-identical to solve_point on each (pinned by
  // the determinism suites), just one sweep for the whole group.
  auto solve_chunk = [&](std::size_t chunk_begin, std::size_t chunk_end) {
    const std::size_t width = chunk_end - chunk_begin;
    static thread_local CurveWorkspace cw;
    static thread_local std::vector<double> rates_buf;
    static thread_local std::vector<double> x0_buf;
    static thread_local std::vector<double> seed_buf;
    rates_buf.resize(width);
    for (std::size_t l = 0; l < width; ++l) rates_buf[l] = tasks[chunk_begin + l].rate;
    // The model carries the base shape; evaluate_batch substitutes each
    // lane's rate itself (its contract), so the workload rate is inert.
    Workload w = base;
    w.message_rate = rates_buf[0];
    const PerformanceModel model(flows, w, cfg.model);
    std::span<const double> x0{};
    if (sp != nullptr) {
      const std::size_t nch = flows.num_channels();
      x0_buf.resize(width * nch);
      for (std::size_t l = 0; l < width; ++l) {
        sp->seed(rates_buf[l], seed_buf);
        std::copy(seed_buf.begin(), seed_buf.end(),
                  x0_buf.begin() + static_cast<std::ptrdiff_t>(l * nch));
      }
      x0 = x0_buf;
    }
    std::vector<ModelResult> res = model.evaluate_batch(rates_buf, cw, x0);
    long long iters = 0;
    for (std::size_t l = 0; l < width; ++l) {
      out[chunk_begin + l].rate = rates_buf[l];
      iters += res[l].solver_iterations;
      out[chunk_begin + l].model = std::move(res[l]);
      sim_point(chunk_begin + l);
    }
    if (stats != nullptr) {
      stats->batches.fetch_add(1, std::memory_order_relaxed);
      stats->lanes.fetch_add(static_cast<long long>(width), std::memory_order_relaxed);
      stats->lane_iterations.fetch_add(iters, std::memory_order_relaxed);
    }
  };
  const std::size_t lane_cap = static_cast<std::size_t>(std::max(cfg.batch_points, 1));
  auto run_slice = [&](std::size_t begin, std::size_t end) {
    if (lane_cap <= 1) {
      parallel_for(end - begin, [&](std::size_t k) { solve_point(begin + k); }, cfg.threads);
      return;
    }
    // Chunk the slice into lane groups of up to batch_points consecutive
    // positive-rate tasks; rate <= 0 tasks become scalar singletons. The
    // parallel grain is the chunk — grouping cannot change a byte (every
    // point is a pure function of its task), only the work distribution.
    struct Chunk {
      std::size_t begin, end;
      bool batched;
    };
    std::vector<Chunk> chunks;
    for (std::size_t i = begin; i < end;) {
      if (!(tasks[i].rate > 0.0)) {
        chunks.push_back({i, i + 1, false});
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < end && j - i < lane_cap && tasks[j].rate > 0.0) ++j;
      chunks.push_back({i, j, true});
      i = j;
    }
    parallel_for(
        chunks.size(),
        [&](std::size_t c) {
          const Chunk ch = chunks[c];
          if (ch.batched) {
            solve_chunk(ch.begin, ch.end);
          } else {
            solve_point(ch.begin);
          }
        },
        cfg.threads);
  };
  // Contiguous shard slices, run back to back; slice boundaries cannot
  // change any point's result (each is a pure function of its task), so
  // every shard count yields the same bytes.
  const std::size_t n = tasks.size();
  const std::size_t shards = std::min(static_cast<std::size_t>(std::max(cfg.shards, 1)),
                                      n == 0 ? std::size_t{1} : n);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = n * s / shards;
    const std::size_t end = n * (s + 1) / shards;
    run_slice(begin, end);
  }
  return out;
}

std::vector<RatePointResult> sweep_tasks(const RoutePlan& plan, const Workload& base,
                                         std::span<const SweepTask> tasks,
                                         const SweepConfig& cfg) {
  return sweep_tasks(FlowGraph(plan, base), base, tasks, cfg);
}

std::vector<RatePointResult> sweep_tasks(const Topology& topo, const Workload& base,
                                         std::span<const SweepTask> tasks,
                                         const SweepConfig& cfg) {
  return sweep_tasks(FlowGraph(topo, base), base, tasks, cfg);
}

std::vector<RatePointResult> sweep_rates(const FlowGraph& flows, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg) {
  std::vector<SweepTask> tasks;
  tasks.reserve(rates.size());
  for (const double r : rates) tasks.push_back({r, sweep_point_seed(cfg.sim.seed, r)});
  return sweep_tasks(flows, base, tasks, cfg);
}

std::vector<RatePointResult> sweep_rates(const RoutePlan& plan, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg) {
  return sweep_rates(FlowGraph(plan, base), base, rates, cfg);
}

std::vector<RatePointResult> sweep_rates(const Topology& topo, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg) {
  return sweep_rates(FlowGraph(topo, base), base, rates, cfg);
}

}  // namespace quarc
