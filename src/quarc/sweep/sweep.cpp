#include "quarc/sweep/sweep.hpp"

#include <cmath>
#include <limits>

#include "quarc/util/error.hpp"
#include "quarc/util/parallel.hpp"

namespace quarc {

namespace {

double nan_value() { return std::numeric_limits<double>::quiet_NaN(); }

double relative_error(double model, double sim) {
  if (!std::isfinite(model) || !std::isfinite(sim) || sim <= 0.0) return nan_value();
  return (model - sim) / sim;
}

}  // namespace

double RatePointResult::multicast_error() const {
  if (!sim_run || sim.multicast_latency.count == 0) return nan_value();
  return relative_error(model.avg_multicast_latency, sim.multicast_latency.mean);
}

double RatePointResult::unicast_error() const {
  if (!sim_run || sim.unicast_latency.count == 0) return nan_value();
  return relative_error(model.avg_unicast_latency, sim.unicast_latency.mean);
}

double model_saturation_rate(const Topology& topo, const Workload& base, ModelOptions options) {
  auto converges = [&](double rate) {
    Workload w = base;
    w.message_rate = rate;
    return PerformanceModel(topo, w, options).evaluate().status == SolveStatus::Converged;
  };
  double lo = 0.0;
  double hi = 1e-4;
  while (converges(hi)) {
    lo = hi;
    hi *= 2.0;
    QUARC_ASSERT(hi < 1e6, "saturation search runaway");
  }
  for (int i = 0; i < 40 && (hi - lo) > 1e-3 * hi; ++i) {
    const double mid = 0.5 * (lo + hi);
    (converges(mid) ? lo : hi) = mid;
  }
  return lo;
}

std::vector<double> rate_grid_to_saturation(const Topology& topo, const Workload& base, int points,
                                            double fill, ModelOptions options) {
  QUARC_REQUIRE(points >= 1, "grid needs at least one point");
  QUARC_REQUIRE(fill > 0.0 && fill <= 1.0, "fill must be in (0,1]");
  const double sat = model_saturation_rate(topo, base, options);
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(points));
  for (int i = 1; i <= points; ++i) {
    rates.push_back(sat * fill * static_cast<double>(i) / static_cast<double>(points));
  }
  return rates;
}

std::vector<RatePointResult> sweep_rates(const Topology& topo, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg) {
  std::vector<RatePointResult> out(rates.size());
  parallel_for(
      rates.size(),
      [&](std::size_t i) {
        RatePointResult& point = out[i];
        point.rate = rates[i];
        Workload w = base;
        w.message_rate = rates[i];
        point.model = PerformanceModel(topo, w, cfg.model).evaluate();
        if (cfg.run_sim) {
          sim::SimConfig sc = cfg.sim;
          sc.workload = w;
          sc.seed = cfg.sim.seed + static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ULL;
          sim::Simulator simulator(topo, sc);
          point.sim = simulator.run();
          point.sim_run = true;
        }
      },
      cfg.threads);
  return out;
}

}  // namespace quarc
