#include "quarc/sweep/sweep.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "quarc/util/error.hpp"
#include "quarc/util/parallel.hpp"

namespace quarc {

namespace {

double nan_value() { return std::numeric_limits<double>::quiet_NaN(); }

double relative_error(double model, double sim) {
  if (!std::isfinite(model) || !std::isfinite(sim) || sim <= 0.0) return nan_value();
  return (model - sim) / sim;
}

}  // namespace

double RatePointResult::multicast_error() const {
  if (!sim_run || sim.multicast_latency.count == 0) return nan_value();
  return relative_error(model.avg_multicast_latency, sim.multicast_latency.mean);
}

double RatePointResult::unicast_error() const {
  if (!sim_run || sim.unicast_latency.count == 0) return nan_value();
  return relative_error(model.avg_unicast_latency, sim.unicast_latency.mean);
}

std::uint64_t sweep_point_seed(std::uint64_t base_seed, double rate) {
  // splitmix64 finaliser over the xor of the base seed and the rate's bit
  // pattern: cheap, and every output bit depends on every input bit, so
  // nearby rates do not produce correlated simulator streams.
  std::uint64_t z = base_seed ^ std::bit_cast<std::uint64_t>(rate);
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double model_saturation_rate(const FlowGraph& flows, const Workload& base, ModelOptions options) {
  // Only the solver's status matters here, so probe it directly from one
  // reused workspace: no latency assembly (Eq. 7-16 walks every route)
  // and no per-probe graph build, unlike evaluating the full model.
  ServiceTimeSolver solver(flows, base.message_length, options.solver);
  SolverWorkspace ws;
  auto converges = [&](double rate) { return solver.solve(rate, ws) == SolveStatus::Converged; };
  double lo = 0.0;
  double hi = 1e-4;
  while (converges(hi)) {
    lo = hi;
    hi *= 2.0;
    QUARC_ASSERT(hi < 1e6, "saturation search runaway");
  }
  for (int i = 0; i < 40 && (hi - lo) > 1e-3 * hi; ++i) {
    const double mid = 0.5 * (lo + hi);
    (converges(mid) ? lo : hi) = mid;
  }
  return lo;
}

double model_saturation_rate(const RoutePlan& plan, const Workload& base, ModelOptions options) {
  return model_saturation_rate(FlowGraph(plan, base), base, options);
}

double model_saturation_rate(const Topology& topo, const Workload& base, ModelOptions options) {
  return model_saturation_rate(FlowGraph(topo, base), base, options);
}

std::vector<double> rate_grid_to_saturation(const FlowGraph& flows, const Workload& base,
                                            int points, double fill, ModelOptions options) {
  QUARC_REQUIRE(points >= 1, "grid needs at least one point");
  QUARC_REQUIRE(fill > 0.0 && fill <= 1.0, "fill must be in (0,1]");
  const double sat = model_saturation_rate(flows, base, options);
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(points));
  for (int i = 1; i <= points; ++i) {
    rates.push_back(sat * fill * static_cast<double>(i) / static_cast<double>(points));
  }
  return rates;
}

std::vector<double> rate_grid_to_saturation(const RoutePlan& plan, const Workload& base,
                                            int points, double fill, ModelOptions options) {
  return rate_grid_to_saturation(FlowGraph(plan, base), base, points, fill, options);
}

std::vector<double> rate_grid_to_saturation(const Topology& topo, const Workload& base, int points,
                                            double fill, ModelOptions options) {
  return rate_grid_to_saturation(FlowGraph(topo, base), base, points, fill, options);
}

std::vector<RatePointResult> sweep_tasks(const FlowGraph& flows, const Workload& base,
                                         std::span<const SweepTask> tasks,
                                         const SweepConfig& cfg) {
  std::vector<RatePointResult> out(tasks.size());
  auto run_slice = [&](std::size_t begin, std::size_t end) {
    parallel_for(
        end - begin,
        [&](std::size_t k) {
          const std::size_t i = begin + k;
          RatePointResult& point = out[i];
          point.rate = tasks[i].rate;
          Workload w = base;
          w.message_rate = tasks[i].rate;
          // One workspace per worker thread, reused across every point the
          // thread solves. solve() fully reseeds it, so reuse cannot change
          // a byte (the sweep determinism suites pin this).
          static thread_local SolverWorkspace ws;
          point.model = PerformanceModel(flows, w, cfg.model).evaluate(ws);
          if (cfg.run_sim) {
            sim::SimConfig sc = cfg.sim;
            sc.workload = w;
            sc.seed = tasks[i].sim_seed;
            sim::Simulator simulator(flows.plan(), sc);
            point.sim = simulator.run();
            point.sim_run = true;
          }
        },
        cfg.threads);
  };
  // Contiguous shard slices, run back to back; slice boundaries cannot
  // change any point's result (each is a pure function of its task), so
  // every shard count yields the same bytes.
  const std::size_t n = tasks.size();
  const std::size_t shards =
      std::min<std::size_t>(std::max(cfg.shards, 1), n == 0 ? std::size_t{1} : n);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = n * s / shards;
    const std::size_t end = n * (s + 1) / shards;
    run_slice(begin, end);
  }
  return out;
}

std::vector<RatePointResult> sweep_tasks(const RoutePlan& plan, const Workload& base,
                                         std::span<const SweepTask> tasks,
                                         const SweepConfig& cfg) {
  return sweep_tasks(FlowGraph(plan, base), base, tasks, cfg);
}

std::vector<RatePointResult> sweep_tasks(const Topology& topo, const Workload& base,
                                         std::span<const SweepTask> tasks,
                                         const SweepConfig& cfg) {
  return sweep_tasks(FlowGraph(topo, base), base, tasks, cfg);
}

std::vector<RatePointResult> sweep_rates(const FlowGraph& flows, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg) {
  std::vector<SweepTask> tasks;
  tasks.reserve(rates.size());
  for (const double r : rates) tasks.push_back({r, sweep_point_seed(cfg.sim.seed, r)});
  return sweep_tasks(flows, base, tasks, cfg);
}

std::vector<RatePointResult> sweep_rates(const RoutePlan& plan, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg) {
  return sweep_rates(FlowGraph(plan, base), base, rates, cfg);
}

std::vector<RatePointResult> sweep_rates(const Topology& topo, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg) {
  return sweep_rates(FlowGraph(topo, base), base, rates, cfg);
}

}  // namespace quarc
