// Canonical, stable scenario fingerprints.
//
// A sweep cache (sweep_cache.hpp) keys solved points by
// (scenario fingerprint, rate): the fingerprint must therefore name every
// knob that can change a solved point's bytes — topology spec, pattern
// spec and the materialised destination sets, workload shape, seed,
// solver and simulator knobs — and must exclude everything that provably
// cannot: the rate (it is the other half of the key), the thread count
// and the shard count (results are bit-identical across both; see
// sweep.hpp's determinism contract).
//
// The fingerprint is built in two layers so it is both debuggable and
// cheap to compare:
//   * `canonical` — a newline-separated key=value rendering of the
//     contributing knobs, in a fixed order, with doubles in
//     json::format_number's shortest round-trip form. Two scenarios have
//     equal canonical texts iff they are the same experiment.
//   * `hash` — FNV-1a 64 over the canonical text (hex() for file names).
// Both are stable across runs, thread counts and processes; goldens are
// pinned by the fingerprint test-suite. Bump kFingerprintSchemaVersion
// whenever the canonical format (or anything feeding it) changes meaning,
// so stale on-disk caches can never be mistaken for fresh ones.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "quarc/sweep/sweep.hpp"
#include "quarc/util/hash.hpp"

namespace quarc {

// v2: the solver now iterates the precompiled FlowGraph CSR with
// deterministic zero-load warm-start seeding — converged bytes moved at
// the tolerance level, so v1 cache entries must not be served for v2
// solves (same knobs, different solver arithmetic).
// v3: Anderson-accelerated iteration (solver_iteration/anderson_window
// lines added; fixed-point bytes move at the tolerance level vs the
// damped sweep) and the stable Eq. 12 E[max] kernel (last-ulp shifts in
// multicast latencies). ModelOptions::assembly is deliberately NOT a
// fingerprint input: the stencil and direct-walk assemblies are
// byte-identical by construction (pinned across every registered
// topology spec by the stencil test-suite), so either may serve the
// other's cache entries — same doctrine as thread and shard counts.
// v4: superlinear saturation probe + continuation-seeded sweeps
// (saturation_probe/spine_points lines added — the certified rate and
// every point's x0 seed now depend on them) and the Anderson auto-window
// (solver_anderson_auto line; the effective mixing depth trajectory
// changes converged bytes at the tolerance level). SweepConfig::spine is
// NOT an input: a supplied spine is byte-equal to the one these knobs
// would build (pinned by the sweep determinism suite).
inline constexpr int kFingerprintSchemaVersion = 4;

struct ScenarioFingerprint {
  std::string canonical;   ///< key=value text, one knob per line
  std::uint64_t hash = 0;  ///< fnv1a64(canonical)

  /// 16 lowercase hex digits of `hash` — the on-disk cache file stem.
  std::string hex() const;

  friend bool operator==(const ScenarioFingerprint&, const ScenarioFingerprint&) = default;
};

/// Everything a fingerprint is computed from. The workload's message_rate
/// is deliberately NOT read (rate is the other half of a cache key); the
/// sweep config's threads/shards are NOT read (bit-identical by contract).
struct FingerprintInputs {
  std::string topology_spec;  ///< registry spec or adopted topology name
  /// True when the topology came from a registry spec (the spec string
  /// then names it completely). False for adopted/escape-hatch topologies,
  /// whose name() alone is NOT a sound key: the fingerprint then digests
  /// the topology's structure — channel table, every unicast route, and
  /// (with a pattern) the multicast streams — via the compiled RoutePlan,
  /// so two same-named builds with different wiring never share cache
  /// entries, and the digest names the exact arrays the model and
  /// simulator consume.
  bool topology_from_spec = true;
  /// The scenario's compiled plan (preferred): digested directly when
  /// !topology_from_spec, guaranteeing the cache key and the evaluation
  /// layers can never disagree on routing. When null, a throwaway plan is
  /// compiled from `topology` + `pattern`.
  const RoutePlan* plan = nullptr;
  /// Fallback source for the structural digest when `plan` is null;
  /// required when !topology_from_spec and plan == nullptr.
  const Topology* topology = nullptr;
  std::string pattern_spec;   ///< registry spec; "none" without multicast
  std::uint64_t pattern_seed = 0;
  /// The materialised pattern (may be null): its destination sets are
  /// digested so explicit/escape-hatch patterns fingerprint soundly even
  /// when their spec string is just a description.
  const MulticastPattern* pattern = nullptr;
  int num_nodes = 0;  ///< sources to digest destinations for
  double alpha = 0.0;
  int message_length = 0;
  std::uint64_t seed = 0;  ///< the run seed (per-point seeds derive from it)
  const SweepConfig* sweep = nullptr;  ///< solver + simulator knobs; required
};

ScenarioFingerprint fingerprint_scenario(const FingerprintInputs& in);

}  // namespace quarc
