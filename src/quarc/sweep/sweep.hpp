// Rate-sweep harness shared by the bench binaries and examples.
//
// The paper's figures plot latency against the per-node message rate for a
// fixed (N, M, alpha, pattern) configuration, with curves ending at the
// saturation asymptote. This module (a) finds the model's saturation rate
// by bisection so grids span the interesting region automatically, and
// (b) evaluates model and simulator over a rate grid, one parallel task
// per point (deterministic per-point seeds).
#pragma once

#include <span>
#include <vector>

#include "quarc/model/performance_model.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/traffic/workload.hpp"

namespace quarc {

struct RatePointResult {
  double rate = 0.0;
  ModelResult model;
  sim::SimResult sim;
  bool sim_run = false;

  /// Relative error of the model's multicast latency against simulation;
  /// NaN when either side is unavailable.
  double multicast_error() const;
  /// Same for unicast latency.
  double unicast_error() const;
};

struct SweepConfig {
  /// Simulator settings; the workload inside is ignored (the sweep's base
  /// workload with a per-point rate is used), the rest applies per point.
  sim::SimConfig sim;
  ModelOptions model;
  bool run_sim = true;
  int threads = -1;  ///< parallel_for worker count (<=0: default)
};

/// Largest per-node message rate for which the analytical model still
/// converges, found by doubling + bisection (relative precision ~1e-3).
double model_saturation_rate(const Topology& topo, const Workload& base,
                             ModelOptions options = {});

/// `points` rates evenly spaced in (0, fill * saturation].
std::vector<double> rate_grid_to_saturation(const Topology& topo, const Workload& base,
                                            int points, double fill = 0.9,
                                            ModelOptions options = {});

/// Evaluates model (and optionally simulator) at every rate.
std::vector<RatePointResult> sweep_rates(const Topology& topo, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg);

}  // namespace quarc
