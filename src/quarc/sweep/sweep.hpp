// Rate-sweep harness shared by the bench binaries and examples.
//
// The paper's figures plot latency against the per-node message rate for a
// fixed (N, M, alpha, pattern) configuration, with curves ending at the
// saturation asymptote. This module (a) finds the model's saturation rate
// by bisection so grids span the interesting region automatically, and
// (b) evaluates model and simulator over a rate grid, one parallel task
// per point.
//
// Determinism contract: the result of a point is a pure function of
// (topology, base workload, rate, per-point seed, solver/sim knobs). The
// per-point seed is itself a pure function of the sweep's base seed and
// the *rate* — not the point's position in the grid — so the same
// (scenario, rate) pair is solved bit-identically wherever it appears:
// in any grid, in any shard split, on any thread count. That invariant is
// what makes (fingerprint, rate) a sound cache key (see sweep_cache.hpp).
//
// Sharded execution (SweepConfig::shards) partitions the task list into K
// contiguous slices and runs them one after another, each through the
// existing parallel_for workers. Concatenating the shard results restores
// the input order exactly, so a sharded run is bit-identical to the
// single-shard run — asserted by the sweep test-suite.
//
// Routing & flow structure: every entry point takes a FlowGraph
// (preferred — the rate-invariant Eq. 6 structure compiled once per
// scenario, carrying its RoutePlan, shared read-only by every rate point,
// shard and worker thread), a RoutePlan (a FlowGraph is compiled over it
// once per call) or a Topology (plan + FlowGraph compiled once per call).
// No unicast_route()/multicast_streams() call and no flow-graph rebuild
// happens per rate point on any path; model solves reuse a per-thread
// SolverWorkspace (deterministically reseeded, so reuse never changes a
// byte — see solver.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "quarc/model/flow_graph.hpp"
#include "quarc/model/performance_model.hpp"
#include "quarc/route/route_plan.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/traffic/workload.hpp"

namespace quarc {

struct RatePointResult {
  double rate = 0.0;
  ModelResult model;
  sim::SimResult sim;
  bool sim_run = false;

  /// Relative error of the model's multicast latency against simulation;
  /// NaN when either side is unavailable or non-finite (saturated rows).
  double multicast_error() const;
  /// Same for unicast latency.
  double unicast_error() const;
};

struct SweepConfig {
  /// Simulator settings; the workload inside is ignored (the sweep's base
  /// workload with a per-point rate is used), the rest applies per point.
  sim::SimConfig sim;
  ModelOptions model;
  bool run_sim = true;
  int threads = -1;  ///< parallel_for worker count (<=0: default)
  /// Contiguous shard count for sweep execution (<=1: one shard). Results
  /// are bit-identical for every shard count; sharding exists so large
  /// grids can be chunked (and, via SweepTask, distributed) without
  /// changing any answer.
  int shards = 1;
};

/// Deterministic per-point simulator seed: a fixed avalanche mix of the
/// sweep's base seed and the rate's bit pattern. Index-free by design —
/// see the determinism contract above.
std::uint64_t sweep_point_seed(std::uint64_t base_seed, double rate);

/// One unit of sweep work: a rate plus the exact simulator seed to use.
/// Produced by sweep_rates internally; exposed so cached sweeps can solve
/// just their miss set with the same seeds a cold run would use.
struct SweepTask {
  double rate = 0.0;
  std::uint64_t sim_seed = 0;
};

/// Largest per-node message rate for which the analytical model still
/// converges, found by doubling + bisection (relative precision ~1e-3).
/// The FlowGraph overload probes the solver directly from one reused
/// workspace — no latency assembly, no per-probe graph build; the
/// plan/topology overloads compile the shared structure once per call.
double model_saturation_rate(const FlowGraph& flows, const Workload& base,
                             ModelOptions options = {});
double model_saturation_rate(const RoutePlan& plan, const Workload& base,
                             ModelOptions options = {});
double model_saturation_rate(const Topology& topo, const Workload& base,
                             ModelOptions options = {});

/// `points` rates evenly spaced in (0, fill * saturation].
std::vector<double> rate_grid_to_saturation(const FlowGraph& flows, const Workload& base,
                                            int points, double fill = 0.9,
                                            ModelOptions options = {});
std::vector<double> rate_grid_to_saturation(const RoutePlan& plan, const Workload& base,
                                            int points, double fill = 0.9,
                                            ModelOptions options = {});
std::vector<double> rate_grid_to_saturation(const Topology& topo, const Workload& base,
                                            int points, double fill = 0.9,
                                            ModelOptions options = {});

/// Evaluates model (and optionally simulator) for every task, honouring
/// cfg.shards and cfg.threads; cfg.sim.seed is ignored (each task carries
/// its own seed). The FlowGraph (and the plan it carries) is shared
/// read-only by all workers.
std::vector<RatePointResult> sweep_tasks(const FlowGraph& flows, const Workload& base,
                                         std::span<const SweepTask> tasks,
                                         const SweepConfig& cfg);
std::vector<RatePointResult> sweep_tasks(const RoutePlan& plan, const Workload& base,
                                         std::span<const SweepTask> tasks,
                                         const SweepConfig& cfg);
std::vector<RatePointResult> sweep_tasks(const Topology& topo, const Workload& base,
                                         std::span<const SweepTask> tasks,
                                         const SweepConfig& cfg);

/// Evaluates model (and optionally simulator) at every rate, with
/// per-point seeds sweep_point_seed(cfg.sim.seed, rate).
std::vector<RatePointResult> sweep_rates(const FlowGraph& flows, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg);
std::vector<RatePointResult> sweep_rates(const RoutePlan& plan, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg);
std::vector<RatePointResult> sweep_rates(const Topology& topo, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg);

}  // namespace quarc
