// Rate-sweep harness shared by the bench binaries and examples.
//
// The paper's figures plot latency against the per-node message rate for a
// fixed (N, M, alpha, pattern) configuration, with curves ending at the
// saturation asymptote. This module (a) finds the model's saturation rate
// with a superlinear probe (bisection kept as the safeguarded fallback) so
// grids span the interesting region automatically, (b) compiles the
// probe's converged solutions into a *continuation spine* that seeds every
// real rate point, and (c) evaluates model and simulator over a rate grid,
// one parallel task per point.
//
// Determinism contract: the result of a point is a pure function of
// (topology, base workload, rate, per-point seed, solver/sim knobs). The
// per-point seed is itself a pure function of the sweep's base seed and
// the *rate* — not the point's position in the grid — so the same
// (scenario, rate) pair is solved bit-identically wherever it appears:
// in any grid, in any shard split, on any thread count. That invariant is
// what makes (fingerprint, rate) a sound cache key (see sweep_cache.hpp).
//
// Continuation seeding keeps that contract by construction: the spine is
// derived purely from fingerprinted state — its nodes are the probe's
// deterministic solve trajectory plus fixed fractional anchors of the
// certified saturation rate, never the sweep's grid, thread count or
// shard split — and a point's seed is a fixed interpolation of the two
// bracketing spine solutions. Naive previous-point warm-starting would
// break byte identity across shard splits and cache-hit patterns; the
// spine is the version of warm-starting that cannot.
//
// Sharded execution (SweepConfig::shards) partitions the task list into K
// contiguous slices and runs them one after another, each through the
// existing parallel_for workers. Concatenating the shard results restores
// the input order exactly, so a sharded run is bit-identical to the
// single-shard run — asserted by the sweep test-suite.
//
// Routing & flow structure: every entry point takes a FlowGraph
// (preferred — the rate-invariant Eq. 6 structure compiled once per
// scenario, carrying its RoutePlan, shared read-only by every rate point,
// shard and worker thread), a RoutePlan (a FlowGraph is compiled over it
// once per call) or a Topology (plan + FlowGraph compiled once per call).
// No unicast_route()/multicast_streams() call and no flow-graph rebuild
// happens per rate point on any path; model solves reuse a per-thread
// SolverWorkspace (deterministically reseeded, so reuse never changes a
// byte — see solver.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "quarc/model/flow_graph.hpp"
#include "quarc/model/performance_model.hpp"
#include "quarc/route/route_plan.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/traffic/workload.hpp"

namespace quarc {

struct RatePointResult {
  double rate = 0.0;
  ModelResult model;
  sim::SimResult sim;
  bool sim_run = false;

  /// Relative error of the model's multicast latency against simulation;
  /// NaN when either side is unavailable or non-finite (saturated rows).
  double multicast_error() const;
  /// Same for unicast latency.
  double unicast_error() const;
};

class ContinuationSpine;

/// Counters describing how a sweep's solves were batched (CLI/bench
/// visibility). Purely observational — the values never feed back into
/// any result. Accumulated atomically by worker threads when a
/// SweepConfig carries a stats pointer.
struct BatchSolveStats {
  std::atomic<long long> batches{0};          ///< solve_batch lane groups run
  std::atomic<long long> lanes{0};            ///< rate points solved in them
  std::atomic<long long> lane_iterations{0};  ///< solver iterations across lanes
};

struct SweepConfig {
  /// Simulator settings; the workload inside is ignored (the sweep's base
  /// workload with a per-point rate is used), the rest applies per point.
  sim::SimConfig sim;
  ModelOptions model;
  bool run_sim = true;
  int threads = -1;  ///< parallel_for worker count (<=0: default)
  /// Contiguous shard count for sweep execution (<=1: one shard). Results
  /// are bit-identical for every shard count; sharding exists so large
  /// grids can be chunked (and, via SweepTask, distributed) without
  /// changing any answer.
  int shards = 1;
  /// Evenly spaced anchor count for the continuation spine built when no
  /// precompiled `spine` is supplied (0: disable seeding entirely and
  /// solve every point from the zero-load seed). Fingerprinted: it
  /// changes which x0 every point is solved from, hence (potentially)
  /// low-order bits of every solved value.
  int spine_points = 4;
  /// Precompiled continuation spine (see build_spine). Purely an
  /// already-computed copy of what sweep_tasks would build itself from
  /// (flows, base, model, spine_points) — which is why this pointer is
  /// NOT fingerprinted while spine_points is. Callers (Scenario, batch)
  /// set it so the probe+spine cost is paid once per scenario, not once
  /// per sweep call.
  std::shared_ptr<const ContinuationSpine> spine;
  /// SoA lane count of the batched solve: up to this many consecutive
  /// sweep points are solved per ServiceTimeSolver::solve_batch pass
  /// (<= 1: the historical one-scalar-solve-per-point path). Every lane
  /// of a batch is byte-identical to the scalar solve of the same
  /// (fingerprint, rate) — pinned by tests/test_curve_solver.cpp and the
  /// sweep determinism suites — so, like LatencyAssembly, this knob is
  /// deliberately NOT fingerprinted: it changes how fast a curve is
  /// solved, never a byte of it. Points with rate <= 0 fall back to the
  /// scalar path (channel gating is lane-invariant only at positive
  /// rates).
  int batch_points = 8;
  /// Optional batched-solve counters, accumulated during the sweep when
  /// set (the CLI's "solver:" stderr line). Never affects results.
  std::shared_ptr<BatchSolveStats> solve_stats;
};

/// Deterministic per-point simulator seed: a fixed avalanche mix of the
/// sweep's base seed and the rate's bit pattern. Index-free by design —
/// see the determinism contract above.
std::uint64_t sweep_point_seed(std::uint64_t base_seed, double rate);

/// One unit of sweep work: a rate plus the exact simulator seed to use.
/// Produced by sweep_rates internally; exposed so cached sweeps can solve
/// just their miss set with the same seeds a cold run would use.
struct SweepTask {
  double rate = 0.0;
  std::uint64_t sim_seed = 0;
};

/// One converged solution harvested by the saturation probe: the rate and
/// the per-channel service-time vector x the solver converged to there.
struct SpineNode {
  double rate = 0.0;
  std::vector<double> service_time;  ///< one entry per channel
};

struct SaturationProbeResult {
  /// Largest probed rate the model converged at. Bisection certifies a
  /// converged/diverged bracket within 1e-3 relative; the superlinear
  /// probe certifies to ~2e-3 (its fold-model certificate: the fitted
  /// fold is within 2e-3 of this rate and a diverged rate was observed
  /// within 2e-3 above the fit; tighter bracket and guard-residual
  /// certificates apply when they fire first).
  double rate = 0.0;
  int solves = 0;               ///< solver runs spent by the probe
  long long iterations = 0;     ///< fixed-point iterations across them
  /// Every converged probe solve, sorted by rate ascending — free
  /// continuation-spine nodes (see finalize_spine).
  std::vector<SpineNode> nodes;
};

/// Finds the saturation rate per options.probe (superlinear fold-fit with
/// Ridders-style safeguarding by default — saturation on these models is
/// a fold bifurcation of the fixed point, so a sqrt fold model through
/// the last three converged samples predicts it; every step stays inside
/// the converged/diverged bracket, so the worst case is a bisection — or
/// the historical doubling + bisection as fallback).
/// Probes the solver directly from one reused workspace — no latency
/// assembly, no per-probe graph build. Deterministic: a pure function of
/// (flows, base shape, options). Throws ComputationError when the model
/// does not converge even at vanishing rates (instead of silently
/// reporting a zero saturation rate).
SaturationProbeResult probe_saturation_rate(const FlowGraph& flows, const Workload& base,
                                            ModelOptions options = {});

/// Largest per-node message rate for which the analytical model still
/// converges — probe_saturation_rate(...).rate. The plan/topology
/// overloads compile the shared flow structure once per call.
double model_saturation_rate(const FlowGraph& flows, const Workload& base,
                             ModelOptions options = {});
double model_saturation_rate(const RoutePlan& plan, const Workload& base,
                             ModelOptions options = {});
double model_saturation_rate(const Topology& topo, const Workload& base,
                             ModelOptions options = {});

/// `points` rates evenly spaced in (0, fill * saturation] — the grid
/// shape shared by rate_grid_to_saturation and Scenario::rate_grid.
std::vector<double> rate_grid_from_saturation(double saturation, int points, double fill);

/// `points` rates evenly spaced in (0, fill * saturation].
std::vector<double> rate_grid_to_saturation(const FlowGraph& flows, const Workload& base,
                                            int points, double fill = 0.9,
                                            ModelOptions options = {});
std::vector<double> rate_grid_to_saturation(const RoutePlan& plan, const Workload& base,
                                            int points, double fill = 0.9,
                                            ModelOptions options = {});
std::vector<double> rate_grid_to_saturation(const Topology& topo, const Workload& base,
                                            int points, double fill = 0.9,
                                            ModelOptions options = {});

/// Sorted set of solved (rate, x) nodes a sweep interpolates solver seeds
/// from. Immutable once built (insert() is for the builders below);
/// shared read-only across threads, shards and sweep calls.
///
/// seed(rate, out) fills `out` with the linear interpolation of the two
/// nodes bracketing `rate`, using the closed-form zero-load solution
/// (FlowGraph::zero_load_service) as the implicit rate-0 node and
/// clamping to the top node above it. A pure function of (spine, rate):
/// grid position, thread count, shard split and cache-hit pattern cannot
/// change a seed — the determinism contract's continuation clause.
class ContinuationSpine {
 public:
  ContinuationSpine(const FlowGraph& flows, int message_length);

  std::size_t num_channels() const { return floor_.size(); }
  std::size_t size() const { return rates_.size(); }
  /// Probe + anchor solver-run accounting (bench/CI visibility).
  int build_solves() const { return build_solves_; }
  long long build_iterations() const { return build_iterations_; }
  void add_build_cost(int solves, long long iterations) {
    build_solves_ += solves;
    build_iterations_ += iterations;
  }

  /// Inserts a solved node, keeping nodes sorted by rate (duplicate rates
  /// are ignored — first insertion wins).
  void insert(double rate, std::span<const double> service_time);
  /// True when some node's rate is within `tol` of `rate`.
  bool has_node_within(double rate, double tol) const;

  /// Interpolated solver seed at `rate` (resizes `out` to num_channels()).
  void seed(double rate, std::vector<double>& out) const;

 private:
  std::vector<double> floor_;           ///< zero-load x (implicit rate-0 node)
  std::vector<double> rates_;           ///< ascending
  std::vector<std::vector<double>> x_;  ///< x_[i] pairs with rates_[i]
  int build_solves_ = 0;
  long long build_iterations_ = 0;
};

/// Compiles a spine from an already-run probe: harvests its converged
/// nodes, then solves (seeded from the spine so far) evenly spaced
/// anchors at saturation * i / spine_points wherever no harvested node
/// already sits within half an anchor spacing. Deterministic for the same
/// reason the probe is.
std::shared_ptr<const ContinuationSpine> finalize_spine(const FlowGraph& flows,
                                                        const Workload& base,
                                                        const ModelOptions& options,
                                                        int spine_points,
                                                        const SaturationProbeResult& probe);

/// probe_saturation_rate + finalize_spine; returns nullptr (sweeps then
/// solve unseeded, exactly as before spines existed) when the probe
/// cannot certify a saturation rate, instead of failing a sweep over
/// explicit rates that may be perfectly solvable.
std::shared_ptr<const ContinuationSpine> build_spine(const FlowGraph& flows, const Workload& base,
                                                     const ModelOptions& options,
                                                     int spine_points);

/// Evaluates model (and optionally simulator) for every task, honouring
/// cfg.shards and cfg.threads; cfg.sim.seed is ignored (each task carries
/// its own seed). The FlowGraph (and the plan it carries) is shared
/// read-only by all workers.
std::vector<RatePointResult> sweep_tasks(const FlowGraph& flows, const Workload& base,
                                         std::span<const SweepTask> tasks,
                                         const SweepConfig& cfg);
std::vector<RatePointResult> sweep_tasks(const RoutePlan& plan, const Workload& base,
                                         std::span<const SweepTask> tasks,
                                         const SweepConfig& cfg);
std::vector<RatePointResult> sweep_tasks(const Topology& topo, const Workload& base,
                                         std::span<const SweepTask> tasks,
                                         const SweepConfig& cfg);

/// Evaluates model (and optionally simulator) at every rate, with
/// per-point seeds sweep_point_seed(cfg.sim.seed, rate).
std::vector<RatePointResult> sweep_rates(const FlowGraph& flows, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg);
std::vector<RatePointResult> sweep_rates(const RoutePlan& plan, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg);
std::vector<RatePointResult> sweep_rates(const Topology& topo, const Workload& base,
                                         std::span<const double> rates, const SweepConfig& cfg);

}  // namespace quarc
