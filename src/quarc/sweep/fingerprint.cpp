#include "quarc/sweep/fingerprint.hpp"

#include <charconv>

#include "quarc/util/error.hpp"
#include "quarc/util/json.hpp"

namespace quarc {

std::string ScenarioFingerprint::hex() const {
  char buf[17] = {};
  // Fixed-width: to_chars drops leading zeros, so pad by formatting into
  // the tail of a zero-filled buffer.
  for (int i = 0; i < 16; ++i) buf[i] = '0';
  char tmp[17];
  const auto r = std::to_chars(tmp, tmp + sizeof tmp, hash, 16);
  const auto len = static_cast<std::size_t>(r.ptr - tmp);
  for (std::size_t i = 0; i < len; ++i) buf[16 - len + i] = tmp[i];
  return std::string(buf, 16);
}

namespace {

/// Digest of the pattern's materialised destination sets: the canonical
/// text stays one line however large the sets are, and two patterns with
/// the same spec but different destinations (possible for escape-hatch
/// ExplicitPatterns whose spec is just a description) never collide.
std::uint64_t pattern_digest(const MulticastPattern& pattern, int num_nodes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (NodeId s = 0; s < num_nodes; ++s) {
    h = fnv1a64("|", h);
    for (const NodeId d : pattern.destinations(s)) {
      h = fnv1a64(std::to_string(d), h);
      h = fnv1a64(",", h);
    }
  }
  return h;
}

/// Structural digest for adopted (escape-hatch) topologies, whose name()
/// string does not pin down their wiring. Digests the RoutePlan's
/// canonical arrays — channel table, every unicast route, and (when
/// compiled with a pattern) the multicast streams — so the cache key
/// names exactly the routing state the model and simulator consume.
/// Prefers the caller's compiled plan; compiles a throwaway one (O(N^2 *
/// diameter), paid only for adopted topologies) otherwise. The byte
/// layout is frozen at the historical direct-call digest so two code
/// versions agree on what a structure is named; whether old cache
/// *entries* are still served is governed by kFingerprintSchemaVersion
/// (the v2 bump re-keyed everything).
std::uint64_t topology_digest(const FingerprintInputs& in) {
  // The digest must cover the multicast streams whenever a pattern is
  // attached (the historical key layout), but the caller's plan may have
  // been compiled without multicast state (unicast-only workloads skip
  // it). Use the plan only when it was compiled with the same pattern;
  // compile a throwaway plan otherwise, so both paths digest identical
  // bytes for identical inputs.
  if (in.plan != nullptr && in.plan->pattern() == in.pattern) {
    return in.plan->structural_digest();
  }
  QUARC_REQUIRE(in.topology != nullptr,
                "fingerprint_scenario: adopted topologies must be digested structurally");
  return RoutePlan(*in.topology, in.pattern).structural_digest();
}

}  // namespace

ScenarioFingerprint fingerprint_scenario(const FingerprintInputs& in) {
  QUARC_REQUIRE(in.sweep != nullptr, "fingerprint_scenario: sweep config is required");
  const SweepConfig& cfg = *in.sweep;
  const sim::SimConfig& sc = cfg.sim;
  const SolverOptions& so = cfg.model.solver;

  std::string c;
  c.reserve(640);
  auto line = [&c](std::string_view key, const std::string& value) {
    c.append(key);
    c.push_back('=');
    c.append(value);
    c.push_back('\n');
  };
  auto num = [](double v) { return json::format_number(v); };

  line("fp_schema", std::to_string(kFingerprintSchemaVersion));
  line("topology", in.topology_spec);
  if (in.topology_from_spec) {
    line("topology_digest", "spec");  // the spec string names it completely
  } else {
    ScenarioFingerprint structure;
    structure.hash = topology_digest(in);
    line("topology_digest", structure.hex());
  }
  line("pattern", in.pattern_spec);
  line("pattern_seed", std::to_string(in.pattern_seed));
  if (in.pattern != nullptr) {
    ScenarioFingerprint dests;
    dests.hash = pattern_digest(*in.pattern, in.num_nodes);
    line("pattern_digest", dests.hex());
  } else {
    line("pattern_digest", "none");
  }
  line("alpha", num(in.alpha));
  line("message_length", std::to_string(in.message_length));
  line("seed", std::to_string(in.seed));
  line("run_sim", cfg.run_sim ? "true" : "false");
  line("warmup_cycles", std::to_string(sc.warmup_cycles));
  line("measure_cycles", std::to_string(sc.measure_cycles));
  line("drain_cap_cycles", std::to_string(sc.drain_cap_cycles));
  line("buffer_depth", std::to_string(sc.buffer_depth));
  line("batch_count", std::to_string(sc.batch_count));
  line("max_queue_length", std::to_string(sc.max_queue_length));
  line("stall_watchdog", std::to_string(sc.stall_watchdog));
  line("collect_stream_samples", sc.collect_stream_samples ? "true" : "false");
  line("check_invariants", sc.check_invariants ? "true" : "false");
  line("invariant_check_interval", std::to_string(sc.invariant_check_interval));
  line("solver_max_iterations", std::to_string(so.max_iterations));
  line("solver_tolerance", num(so.tolerance));
  line("solver_damping", num(so.damping));
  line("solver_utilization_guard", num(so.utilization_guard));
  line("solver_iteration", to_string(so.iteration));
  // The window genuinely changes converged bytes only under Anderson, but
  // a constant line under GaussSeidel is harmless and keeps the canonical
  // format knob-for-knob (the oracle option itself is already a line).
  line("solver_anderson_window", std::to_string(so.anderson_window));
  line("solver_anderson_auto", so.anderson_auto_window ? "true" : "false");
  // Which probe certified the saturation rate and how many spine anchors
  // seed the solves: both move solved bytes (the certified rate at the
  // certification tolerance; the seeds at the solver tolerance), so both
  // key the cache. The spine *pointer* (SweepConfig::spine) is excluded —
  // it is only a precomputed copy of what these knobs determine.
  line("saturation_probe", to_string(cfg.model.probe));
  line("spine_points", std::to_string(cfg.spine_points));
  // Deliberately excluded, like threads/shards and the assembly knob:
  // SweepConfig::batch_points (and solve_stats). Every lane of a batched
  // solve is byte-identical to the scalar solve of the same
  // (fingerprint, rate) — solve_batch's lane-identity contract, pinned by
  // tests/test_curve_solver.cpp and the determinism suites — so batching
  // tunes throughput without moving a single cached byte.

  ScenarioFingerprint fp;
  fp.canonical = std::move(c);
  fp.hash = fnv1a64(fp.canonical);
  return fp;
}

}  // namespace quarc
