#include "quarc/sweep/fingerprint.hpp"

#include <charconv>

#include "quarc/util/error.hpp"
#include "quarc/util/json.hpp"

namespace quarc {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string ScenarioFingerprint::hex() const {
  char buf[17] = {};
  // Fixed-width: to_chars drops leading zeros, so pad by formatting into
  // the tail of a zero-filled buffer.
  for (int i = 0; i < 16; ++i) buf[i] = '0';
  char tmp[17];
  const auto r = std::to_chars(tmp, tmp + sizeof tmp, hash, 16);
  const auto len = static_cast<std::size_t>(r.ptr - tmp);
  for (std::size_t i = 0; i < len; ++i) buf[16 - len + i] = tmp[i];
  return std::string(buf, 16);
}

namespace {

/// Digest of the pattern's materialised destination sets: the canonical
/// text stays one line however large the sets are, and two patterns with
/// the same spec but different destinations (possible for escape-hatch
/// ExplicitPatterns whose spec is just a description) never collide.
std::uint64_t pattern_digest(const MulticastPattern& pattern, int num_nodes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (NodeId s = 0; s < num_nodes; ++s) {
    h = fnv1a64("|", h);
    for (const NodeId d : pattern.destinations(s)) {
      h = fnv1a64(std::to_string(d), h);
      h = fnv1a64(",", h);
    }
  }
  return h;
}

/// Structural digest for adopted (escape-hatch) topologies, whose name()
/// string does not pin down their wiring: channel table, every unicast
/// route, and — when a pattern supplies destination sets — the multicast
/// streams the model would consume. O(N^2 * diameter), paid only for
/// adopted topologies (spec-built ones are fully named by their spec).
std::uint64_t topology_digest(const Topology& topo, const MulticastPattern* pattern) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](std::int64_t v) { h = fnv1a64(std::to_string(v) + ";", h); };
  mix(topo.num_nodes());
  mix(topo.num_ports());
  for (const ChannelInfo& c : topo.channels()) {
    mix(static_cast<std::int64_t>(c.kind));
    mix(c.src);
    mix(c.dst);
    mix(c.port);
    mix(c.vcs);
    mix(c.dedicated ? 1 : 0);
  }
  for (NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (NodeId d = 0; d < topo.num_nodes(); ++d) {
      if (s == d) continue;
      const UnicastRoute r = topo.unicast_route(s, d);
      mix(r.port);
      mix(r.injection);
      for (const ChannelId link : r.links) mix(link);
      for (const std::uint8_t vc : r.link_vcs) mix(vc);
      mix(r.ejection);
    }
    if (pattern != nullptr && topo.supports_multicast()) {
      for (const MulticastStream& stream : topo.multicast_streams(s, pattern->destinations(s))) {
        mix(stream.port);
        mix(stream.injection);
        for (const ChannelId link : stream.links) mix(link);
        for (const MulticastStop& stop : stream.stops) {
          mix(stop.hop);
          mix(stop.node);
          mix(stop.ejection);
        }
      }
    }
  }
  return h;
}

}  // namespace

ScenarioFingerprint fingerprint_scenario(const FingerprintInputs& in) {
  QUARC_REQUIRE(in.sweep != nullptr, "fingerprint_scenario: sweep config is required");
  const SweepConfig& cfg = *in.sweep;
  const sim::SimConfig& sc = cfg.sim;
  const SolverOptions& so = cfg.model.solver;

  std::string c;
  c.reserve(640);
  auto line = [&c](std::string_view key, const std::string& value) {
    c.append(key);
    c.push_back('=');
    c.append(value);
    c.push_back('\n');
  };
  auto num = [](double v) { return json::format_number(v); };

  line("fp_schema", std::to_string(kFingerprintSchemaVersion));
  line("topology", in.topology_spec);
  if (in.topology_from_spec) {
    line("topology_digest", "spec");  // the spec string names it completely
  } else {
    QUARC_REQUIRE(in.topology != nullptr,
                  "fingerprint_scenario: adopted topologies must be digested structurally");
    ScenarioFingerprint structure;
    structure.hash = topology_digest(*in.topology, in.pattern);
    line("topology_digest", structure.hex());
  }
  line("pattern", in.pattern_spec);
  line("pattern_seed", std::to_string(in.pattern_seed));
  if (in.pattern != nullptr) {
    ScenarioFingerprint dests;
    dests.hash = pattern_digest(*in.pattern, in.num_nodes);
    line("pattern_digest", dests.hex());
  } else {
    line("pattern_digest", "none");
  }
  line("alpha", num(in.alpha));
  line("message_length", std::to_string(in.message_length));
  line("seed", std::to_string(in.seed));
  line("run_sim", cfg.run_sim ? "true" : "false");
  line("warmup_cycles", std::to_string(sc.warmup_cycles));
  line("measure_cycles", std::to_string(sc.measure_cycles));
  line("drain_cap_cycles", std::to_string(sc.drain_cap_cycles));
  line("buffer_depth", std::to_string(sc.buffer_depth));
  line("batch_count", std::to_string(sc.batch_count));
  line("max_queue_length", std::to_string(sc.max_queue_length));
  line("stall_watchdog", std::to_string(sc.stall_watchdog));
  line("collect_stream_samples", sc.collect_stream_samples ? "true" : "false");
  line("check_invariants", sc.check_invariants ? "true" : "false");
  line("invariant_check_interval", std::to_string(sc.invariant_check_interval));
  line("solver_max_iterations", std::to_string(so.max_iterations));
  line("solver_tolerance", num(so.tolerance));
  line("solver_damping", num(so.damping));
  line("solver_utilization_guard", num(so.utilization_guard));

  ScenarioFingerprint fp;
  fp.canonical = std::move(c);
  fp.hash = fnv1a64(fp.canonical);
  return fp;
}

}  // namespace quarc
