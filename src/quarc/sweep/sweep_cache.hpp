// Sweep result cache keyed by (scenario fingerprint, rate).
//
// Repeated bench grids and CI smoke runs re-solve the same (topology,
// pattern, M, alpha, rate) cells from scratch; this cache lets run_sweep
// skip every point it has already solved. Soundness rests on two
// invariants established elsewhere:
//   * the fingerprint (fingerprint.hpp) names every knob that can change
//     a solved point's bytes, and
//   * a point's result is a pure function of (scenario, rate) — per-point
//     seeds are rate-keyed, not index-keyed (sweep.hpp) — so a row cached
//     from one grid is bit-identical to what any other grid would solve
//     for the same rate.
// A cache hit therefore returns the exact bytes a cold run would produce;
// warm and cold runs serialise identically (asserted by the test-suite).
//
// Storage: an in-memory map, optionally backed by a directory of
// JSON-lines files — one file per fingerprint hash, named <fp.hex()>.jsonl,
// one self-describing line per solved point:
//
//   {"schema":1,"fp":"<hex>","c":"<canonical>","mc":<bool>,"row":{...}}
//
// Soundness does not rest on the 64-bit hash: the in-memory map is keyed
// by the fingerprint's full canonical text, and every on-disk entry
// carries that text and is compared against it on load, so even a true
// hash collision (two scenarios sharing a .jsonl file) can only ever
// degrade to a re-solve — never serve another scenario's rows.
//
// Appends are concurrent-WRITER-safe across processes: each record is one
// complete line written by a single write(2) to an O_APPEND descriptor
// under an exclusive flock(2), so two processes sharing a --cache-dir
// (batch fleets, serve loops, CI shards) can never interleave partial
// lines — the multi-writer stress test pins this. A crash still leaves at
// most one truncated line. On load, any line that fails to parse, has
// the wrong schema, or names a different fingerprint is counted in
// stats().corrupt_entries and skipped — a corrupt entry is re-solved,
// never served. Duplicate rates keep the last line (the freshest solve).
//
// Memory bound: set_memory_limit_rows(N) caps the in-memory tier; when an
// insert or load pushes the total past N, least-recently-used fingerprint
// shards are evicted (never the one being touched). Disk-backed entries
// reload on the next lookup — eviction can cost a re-read, never an
// answer; entries of a purely in-memory cache are gone and re-solve.
// This is what lets a long-lived serve process hold a bounded working
// set over an unbounded on-disk store.
//
// Thread safety: lookup/store are serialised by an internal mutex, so
// concurrent Scenarios may share one cache; the parallel point solves
// themselves never touch the cache (run_sweep consults it before and
// stores after the fork-join; the batch runner stores from workers, which
// the mutex serialises).
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "quarc/api/result_set.hpp"
#include "quarc/sweep/fingerprint.hpp"

namespace quarc {

inline constexpr int kSweepCacheSchemaVersion = 1;

struct SweepCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t stores = 0;
  std::int64_t loaded_entries = 0;   ///< rows restored from disk
  std::int64_t corrupt_entries = 0;  ///< on-disk lines rejected and skipped
  std::int64_t evicted_rows = 0;     ///< rows dropped by the memory bound
  std::int64_t evictions = 0;        ///< fingerprint shards evicted
};

class SweepCache {
 public:
  /// In-memory cache (dies with the process).
  SweepCache() = default;
  /// Disk-backed cache under `dir` (created, recursively, if missing);
  /// throws InvalidArgument when the directory cannot be created.
  explicit SweepCache(std::string dir);

  /// The solved row for (fp, rate), or nullopt. Counts a hit or a miss.
  std::optional<api::ResultRow> lookup(const ScenarioFingerprint& fp, double rate);

  /// Records a solved row (row.rate is the key's rate half);
  /// `has_multicast` is persisted so a reload can restore the row's
  /// NaN/inf conventions. Overwrites any previous entry for the key.
  void store(const ScenarioFingerprint& fp, const api::ResultRow& row, bool has_multicast);

  SweepCacheStats stats() const;
  void reset_stats();

  /// Caps the in-memory tier at `max_rows` rows (0: unbounded, the
  /// default), evicting least-recently-used fingerprint shards on
  /// overflow. Applies immediately to anything already held.
  void set_memory_limit_rows(std::size_t max_rows);
  std::size_t memory_limit_rows() const;

  /// Rows currently held in memory (loaded + stored).
  std::size_t size() const;
  /// Backing directory; empty for an in-memory cache.
  const std::string& dir() const { return dir_; }

 private:
  struct Shard {
    bool loaded = false;  ///< disk file (if any) has been read
    std::uint64_t last_used = 0;  ///< LRU stamp (monotone use counter)
    std::unordered_map<std::string, api::ResultRow> rows;  ///< rate key -> row
  };

  Shard& shard_for(const ScenarioFingerprint& fp);
  void load_from_disk(const ScenarioFingerprint& fp, Shard& shard);
  std::string file_path(const ScenarioFingerprint& fp) const;
  /// Evicts LRU shards (sparing `keep`) until the row total fits the
  /// memory limit. Call with the mutex held.
  void enforce_memory_limit(const Shard* keep);
  std::size_t total_rows_locked() const;

  std::string dir_;
  /// Keyed by ScenarioFingerprint::canonical (not the hash) — see above.
  std::unordered_map<std::string, Shard> by_fingerprint_;
  SweepCacheStats stats_;
  std::size_t memory_limit_rows_ = 0;  ///< 0: unbounded
  std::uint64_t use_counter_ = 0;
  mutable std::mutex mutex_;
};

}  // namespace quarc
