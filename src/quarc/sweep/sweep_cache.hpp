// Sweep result cache keyed by (scenario fingerprint, rate).
//
// Repeated bench grids and CI smoke runs re-solve the same (topology,
// pattern, M, alpha, rate) cells from scratch; this cache lets run_sweep
// skip every point it has already solved. Soundness rests on two
// invariants established elsewhere:
//   * the fingerprint (fingerprint.hpp) names every knob that can change
//     a solved point's bytes, and
//   * a point's result is a pure function of (scenario, rate) — per-point
//     seeds are rate-keyed, not index-keyed (sweep.hpp) — so a row cached
//     from one grid is bit-identical to what any other grid would solve
//     for the same rate.
// A cache hit therefore returns the exact bytes a cold run would produce;
// warm and cold runs serialise identically (asserted by the test-suite).
//
// Storage: an in-memory map, optionally backed by a directory of
// JSON-lines files — one file per fingerprint hash, named <fp.hex()>.jsonl,
// one self-describing line per solved point:
//
//   {"schema":1,"fp":"<hex>","c":"<canonical>","mc":<bool>,"row":{...}}
//
// Soundness does not rest on the 64-bit hash: the in-memory map is keyed
// by the fingerprint's full canonical text, and every on-disk entry
// carries that text and is compared against it on load, so even a true
// hash collision (two scenarios sharing a .jsonl file) can only ever
// degrade to a re-solve — never serve another scenario's rows.
//
// Lines are appended and flushed one write() at a time, so a crash leaves
// at most one truncated line. On load, any line that fails to parse, has
// the wrong schema, or names a different fingerprint is counted in
// stats().corrupt_entries and skipped — a corrupt entry is re-solved,
// never served. Duplicate rates keep the last line (the freshest solve).
//
// Thread safety: lookup/store are serialised by an internal mutex, so
// concurrent Scenarios may share one cache; the parallel point solves
// themselves never touch the cache (run_sweep consults it before and
// stores after the fork-join).
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "quarc/api/result_set.hpp"
#include "quarc/sweep/fingerprint.hpp"

namespace quarc {

inline constexpr int kSweepCacheSchemaVersion = 1;

struct SweepCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t stores = 0;
  std::int64_t loaded_entries = 0;   ///< rows restored from disk
  std::int64_t corrupt_entries = 0;  ///< on-disk lines rejected and skipped
};

class SweepCache {
 public:
  /// In-memory cache (dies with the process).
  SweepCache() = default;
  /// Disk-backed cache under `dir` (created, recursively, if missing);
  /// throws InvalidArgument when the directory cannot be created.
  explicit SweepCache(std::string dir);

  /// The solved row for (fp, rate), or nullopt. Counts a hit or a miss.
  std::optional<api::ResultRow> lookup(const ScenarioFingerprint& fp, double rate);

  /// Records a solved row (row.rate is the key's rate half);
  /// `has_multicast` is persisted so a reload can restore the row's
  /// NaN/inf conventions. Overwrites any previous entry for the key.
  void store(const ScenarioFingerprint& fp, const api::ResultRow& row, bool has_multicast);

  SweepCacheStats stats() const;
  void reset_stats();

  /// Rows currently held in memory (loaded + stored).
  std::size_t size() const;
  /// Backing directory; empty for an in-memory cache.
  const std::string& dir() const { return dir_; }

 private:
  struct Shard {
    bool loaded = false;  ///< disk file (if any) has been read
    std::unordered_map<std::string, api::ResultRow> rows;  ///< rate key -> row
  };

  Shard& shard_for(const ScenarioFingerprint& fp);
  void load_from_disk(const ScenarioFingerprint& fp, Shard& shard);
  std::string file_path(const ScenarioFingerprint& fp) const;

  std::string dir_;
  /// Keyed by ScenarioFingerprint::canonical (not the hash) — see above.
  std::unordered_map<std::string, Shard> by_fingerprint_;
  SweepCacheStats stats_;
  mutable std::mutex mutex_;
};

}  // namespace quarc
