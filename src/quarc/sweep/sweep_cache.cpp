#include "quarc/sweep/sweep_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "quarc/util/error.hpp"

namespace quarc {

namespace {

/// Canonical key for the rate half of a cache key: the same shortest
/// round-trip text the serialisers use, so every representation of a rate
/// maps to exactly one entry.
std::string rate_key(double rate) { return json::format_number(rate); }

/// Appends `line` (terminator included) to `path` as one record, safe
/// against concurrent appenders in other processes: O_APPEND positions the
/// write at the live end of file, and the exclusive flock spans the whole
/// record so even a partial first write() can never interleave with
/// another process's record — the retry loop finishes the line before the
/// lock drops at close.
void append_record(const std::string& path, const std::string& line) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  QUARC_REQUIRE(fd >= 0, "SweepCache: cannot open '" + path + "' for append: " +
                             std::strerror(errno));
  int rc = 0;
  do {
    rc = ::flock(fd, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    ::close(fd);
    throw InvalidArgument("SweepCache: cannot lock '" + path + "': " + std::strerror(saved));
  }
  const char* data = line.data();
  std::size_t remaining = line.size();
  while (remaining > 0) {
    const ::ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      throw InvalidArgument("SweepCache: write to '" + path + "' failed: " +
                            std::strerror(saved));
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  ::close(fd);  // releases the flock
}

}  // namespace

SweepCache::SweepCache(std::string dir) : dir_(std::move(dir)) {
  QUARC_REQUIRE(!dir_.empty(), "SweepCache: empty cache directory");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  QUARC_REQUIRE(!ec, "SweepCache: cannot create cache directory '" + dir_ + "': " + ec.message());
}

std::string SweepCache::file_path(const ScenarioFingerprint& fp) const {
  return dir_ + "/" + fp.hex() + ".jsonl";
}

void SweepCache::load_from_disk(const ScenarioFingerprint& fp, Shard& shard) {
  std::ifstream in(file_path(fp));
  if (!in.is_open()) return;  // nothing cached for this fingerprint yet
  const std::string want_fp = fp.hex();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const json::Value entry = json::Value::parse(line);
      QUARC_REQUIRE(entry.at("schema").as_int() == kSweepCacheSchemaVersion,
                    "cache entry schema mismatch");
      QUARC_REQUIRE(entry.at("fp").as_string() == want_fp, "cache entry fingerprint mismatch");
      // The canonical text is the real identity; the hash only names the
      // file. This is what keeps a hash collision from serving another
      // scenario's rows.
      QUARC_REQUIRE(entry.at("c").as_string() == fp.canonical,
                    "cache entry canonical-text mismatch (fingerprint hash collision)");
      const bool mc = entry.at("mc").as_bool();
      api::ResultRow row = api::row_from_json(entry.at("row"), mc);
      shard.rows.insert_or_assign(rate_key(row.rate), std::move(row));
      ++stats_.loaded_entries;
    } catch (const std::exception&) {
      // Truncated tail line, bit rot, foreign schema, colliding file name:
      // whatever the cause, the entry is dropped and the point re-solved.
      ++stats_.corrupt_entries;
    }
  }
}

SweepCache::Shard& SweepCache::shard_for(const ScenarioFingerprint& fp) {
  Shard& shard = by_fingerprint_[fp.canonical];
  shard.last_used = ++use_counter_;
  if (!shard.loaded) {
    if (!dir_.empty()) load_from_disk(fp, shard);
    shard.loaded = true;
  }
  return shard;
}

std::optional<api::ResultRow> SweepCache::lookup(const ScenarioFingerprint& fp, double rate) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Shard& shard = shard_for(fp);
  const auto it = shard.rows.find(rate_key(rate));
  if (it == shard.rows.end()) {
    ++stats_.misses;
    enforce_memory_limit(&shard);  // a cold disk load may have overflowed
    return std::nullopt;
  }
  ++stats_.hits;
  api::ResultRow row = it->second;  // copy before eviction can touch the shard
  enforce_memory_limit(&shard);
  return row;
}

void SweepCache::store(const ScenarioFingerprint& fp, const api::ResultRow& row,
                       bool has_multicast) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Shard& shard = shard_for(fp);
  shard.rows.insert_or_assign(rate_key(row.rate), row);
  ++stats_.stores;
  enforce_memory_limit(&shard);
  if (dir_.empty()) return;
  // Open-append-close per entry: a long-lived cache shared across many
  // fingerprints (the bench env cache) must not hold one fd per file, and
  // a crash can truncate at most the final line, which the loader detects
  // and drops. The flock-guarded single-record write makes the same file
  // safe to share with concurrent batch/serve processes.
  json::Value entry = json::Value::object();
  entry.set("schema", kSweepCacheSchemaVersion);
  entry.set("fp", fp.hex());
  entry.set("c", fp.canonical);
  entry.set("mc", has_multicast);
  entry.set("row", api::row_to_json(row));
  append_record(file_path(fp), entry.dump() + "\n");
}

void SweepCache::set_memory_limit_rows(std::size_t max_rows) {
  const std::lock_guard<std::mutex> lock(mutex_);
  memory_limit_rows_ = max_rows;
  enforce_memory_limit(nullptr);
}

std::size_t SweepCache::memory_limit_rows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return memory_limit_rows_;
}

std::size_t SweepCache::total_rows_locked() const {
  std::size_t n = 0;
  // lint: order-independent — a commutative row-count sum over all shards.
  for (const auto& [canonical, shard] : by_fingerprint_) n += shard.rows.size();
  return n;
}

void SweepCache::enforce_memory_limit(const Shard* keep) {
  if (memory_limit_rows_ == 0) return;
  std::size_t total = total_rows_locked();
  while (total > memory_limit_rows_) {
    // LRU victim among the non-current shards. Never the shard being
    // touched: a caller's reference must stay valid, and evicting the
    // working set would thrash.
    auto victim = by_fingerprint_.end();
    // use_counter_ is strictly monotonic, so last_used stamps are unique and
    // every visit order selects the same victim; eviction never reaches
    // serialized bytes.  lint: order-independent — argmin over unique stamps
    for (auto it = by_fingerprint_.begin(); it != by_fingerprint_.end(); ++it) {
      if (&it->second == keep || it->second.rows.empty()) continue;
      if (victim == by_fingerprint_.end() || it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == by_fingerprint_.end()) return;  // only the current shard left
    total -= victim->second.rows.size();
    stats_.evicted_rows += static_cast<std::int64_t>(victim->second.rows.size());
    ++stats_.evictions;
    // Erase the whole entry (not just the rows): the shard goes back to
    // "never seen", so a later touch reloads the disk file on demand.
    by_fingerprint_.erase(victim);
  }
}

SweepCacheStats SweepCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SweepCache::reset_stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_ = SweepCacheStats{};
}

std::size_t SweepCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  // lint: order-independent — a commutative row-count sum over all shards.
  for (const auto& [hex, shard] : by_fingerprint_) n += shard.rows.size();
  return n;
}

}  // namespace quarc
