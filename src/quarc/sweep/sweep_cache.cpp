#include "quarc/sweep/sweep_cache.hpp"

#include <filesystem>
#include <sstream>
#include <utility>

#include "quarc/util/error.hpp"

namespace quarc {

namespace {

/// Canonical key for the rate half of a cache key: the same shortest
/// round-trip text the serialisers use, so every representation of a rate
/// maps to exactly one entry.
std::string rate_key(double rate) { return json::format_number(rate); }

}  // namespace

SweepCache::SweepCache(std::string dir) : dir_(std::move(dir)) {
  QUARC_REQUIRE(!dir_.empty(), "SweepCache: empty cache directory");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  QUARC_REQUIRE(!ec, "SweepCache: cannot create cache directory '" + dir_ + "': " + ec.message());
}

std::string SweepCache::file_path(const ScenarioFingerprint& fp) const {
  return dir_ + "/" + fp.hex() + ".jsonl";
}

void SweepCache::load_from_disk(const ScenarioFingerprint& fp, Shard& shard) {
  std::ifstream in(file_path(fp));
  if (!in.is_open()) return;  // nothing cached for this fingerprint yet
  const std::string want_fp = fp.hex();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const json::Value entry = json::Value::parse(line);
      QUARC_REQUIRE(entry.at("schema").as_int() == kSweepCacheSchemaVersion,
                    "cache entry schema mismatch");
      QUARC_REQUIRE(entry.at("fp").as_string() == want_fp, "cache entry fingerprint mismatch");
      // The canonical text is the real identity; the hash only names the
      // file. This is what keeps a hash collision from serving another
      // scenario's rows.
      QUARC_REQUIRE(entry.at("c").as_string() == fp.canonical,
                    "cache entry canonical-text mismatch (fingerprint hash collision)");
      const bool mc = entry.at("mc").as_bool();
      api::ResultRow row = api::row_from_json(entry.at("row"), mc);
      shard.rows.insert_or_assign(rate_key(row.rate), std::move(row));
      ++stats_.loaded_entries;
    } catch (const std::exception&) {
      // Truncated tail line, bit rot, foreign schema, colliding file name:
      // whatever the cause, the entry is dropped and the point re-solved.
      ++stats_.corrupt_entries;
    }
  }
}

SweepCache::Shard& SweepCache::shard_for(const ScenarioFingerprint& fp) {
  Shard& shard = by_fingerprint_[fp.canonical];
  if (!shard.loaded) {
    if (!dir_.empty()) load_from_disk(fp, shard);
    shard.loaded = true;
  }
  return shard;
}

std::optional<api::ResultRow> SweepCache::lookup(const ScenarioFingerprint& fp, double rate) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Shard& shard = shard_for(fp);
  const auto it = shard.rows.find(rate_key(rate));
  if (it == shard.rows.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void SweepCache::store(const ScenarioFingerprint& fp, const api::ResultRow& row,
                       bool has_multicast) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Shard& shard = shard_for(fp);
  shard.rows.insert_or_assign(rate_key(row.rate), row);
  ++stats_.stores;
  if (dir_.empty()) return;
  // Open-append-close per entry: a long-lived cache shared across many
  // fingerprints (the bench env cache) must not hold one fd per file, and
  // a crash can truncate at most the final line, which the loader detects
  // and drops.
  std::ofstream appender(file_path(fp), std::ios::app);
  QUARC_REQUIRE(appender.is_open(),
                "SweepCache: cannot open '" + file_path(fp) + "' for append");
  json::Value entry = json::Value::object();
  entry.set("schema", kSweepCacheSchemaVersion);
  entry.set("fp", fp.hex());
  entry.set("c", fp.canonical);
  entry.set("mc", has_multicast);
  entry.set("row", api::row_to_json(row));
  appender << entry.dump() << "\n";
}

SweepCacheStats SweepCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SweepCache::reset_stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_ = SweepCacheStats{};
}

std::size_t SweepCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [hex, shard] : by_fingerprint_) n += shard.rows.size();
  return n;
}

}  // namespace quarc
