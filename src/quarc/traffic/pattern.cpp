#include "quarc/traffic/pattern.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>

#include "quarc/util/error.hpp"

namespace quarc {

namespace {

/// `count` distinct integers from [lo, hi], uniform without replacement
/// (Floyd's algorithm keeps this O(count) in expectation for any range).
std::vector<int> sample_without_replacement(int lo, int hi, int count, Rng& rng) {
  QUARC_REQUIRE(lo <= hi, "empty sampling range");
  const int range = hi - lo + 1;
  QUARC_REQUIRE(count >= 1 && count <= range, "sample count exceeds range");
  std::set<int> chosen;
  for (int j = range - count; j < range; ++j) {
    const int t = lo + static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(j) + 1));
    if (!chosen.insert(t).second) chosen.insert(lo + j);
  }
  return {chosen.begin(), chosen.end()};
}

}  // namespace

RingRelativePattern::RingRelativePattern(int num_nodes, std::vector<int> offsets)
    : num_nodes_(num_nodes), offsets_(std::move(offsets)) {
  QUARC_REQUIRE(num_nodes >= 2, "pattern requires at least two nodes");
  QUARC_REQUIRE(!offsets_.empty(), "pattern requires at least one offset");
  std::sort(offsets_.begin(), offsets_.end());
  for (std::size_t i = 0; i < offsets_.size(); ++i) {
    QUARC_REQUIRE(offsets_[i] >= 1 && offsets_[i] < num_nodes_, "offset out of range");
    QUARC_REQUIRE(i == 0 || offsets_[i] != offsets_[i - 1], "duplicate offset");
  }
  dests_.resize(static_cast<std::size_t>(num_nodes_));
  for (NodeId s = 0; s < num_nodes_; ++s) {
    auto& v = dests_[static_cast<std::size_t>(s)];
    v.reserve(offsets_.size());
    for (int k : offsets_) v.push_back(static_cast<NodeId>((s + k) % num_nodes_));
  }
}

std::string RingRelativePattern::describe() const {
  std::ostringstream os;
  os << "ring-relative{";
  for (std::size_t i = 0; i < offsets_.size(); ++i) {
    if (i) os << ",";
    os << "+" << offsets_[i];
  }
  os << "}";
  return os.str();
}

const std::vector<NodeId>& RingRelativePattern::destinations(NodeId s) const {
  QUARC_REQUIRE(s >= 0 && s < num_nodes_, "source out of range");
  return dests_[static_cast<std::size_t>(s)];
}

std::shared_ptr<RingRelativePattern> RingRelativePattern::broadcast(int num_nodes) {
  std::vector<int> all;
  for (int k = 1; k < num_nodes; ++k) all.push_back(k);
  return std::make_shared<RingRelativePattern>(num_nodes, std::move(all));
}

std::shared_ptr<RingRelativePattern> RingRelativePattern::random(int num_nodes, int count,
                                                                 Rng& rng) {
  return std::make_shared<RingRelativePattern>(
      num_nodes, sample_without_replacement(1, num_nodes - 1, count, rng));
}

std::shared_ptr<RingRelativePattern> RingRelativePattern::localized(int num_nodes, int lo_offset,
                                                                    int hi_offset, int count,
                                                                    Rng& rng) {
  return std::make_shared<RingRelativePattern>(
      num_nodes, sample_without_replacement(lo_offset, hi_offset, count, rng));
}

UniformRandomPattern::UniformRandomPattern(int num_nodes, int count, Rng& rng) : count_(count) {
  QUARC_REQUIRE(num_nodes >= 2, "pattern requires at least two nodes");
  QUARC_REQUIRE(count >= 1 && count < num_nodes, "fanout must be in [1, N-1]");
  dests_.resize(static_cast<std::size_t>(num_nodes));
  for (NodeId s = 0; s < num_nodes; ++s) {
    auto offsets = sample_without_replacement(1, num_nodes - 1, count, rng);
    auto& v = dests_[static_cast<std::size_t>(s)];
    for (int k : offsets) v.push_back(static_cast<NodeId>((s + k) % num_nodes));
  }
}

std::string UniformRandomPattern::describe() const {
  return "uniform-random(fanout=" + std::to_string(count_) + ")";
}

const std::vector<NodeId>& UniformRandomPattern::destinations(NodeId s) const {
  QUARC_REQUIRE(s >= 0 && s < static_cast<NodeId>(dests_.size()), "source out of range");
  return dests_[static_cast<std::size_t>(s)];
}

NeighborhoodPattern::NeighborhoodPattern(int width, int height, int radius, int count, bool wrap,
                                         Rng& rng)
    : width_(width), height_(height), radius_(radius), count_(count), wrap_(wrap) {
  QUARC_REQUIRE(width >= 1 && height >= 1 && width * height >= 2,
                "neighborhood grid needs at least two nodes");
  QUARC_REQUIRE(radius >= 1, "neighborhood radius must be >= 1");
  QUARC_REQUIRE(count >= 1, "neighborhood fanout must be >= 1");
  const int n = width * height;
  dests_.resize(static_cast<std::size_t>(n));
  std::vector<NodeId> ball;
  for (NodeId s = 0; s < n; ++s) {
    ball.clear();
    const int sx = s % width;
    const int sy = s / width;
    for (NodeId d = 0; d < n; ++d) {
      if (d == s) continue;
      int dx = std::abs(d % width - sx);
      int dy = std::abs(d / width - sy);
      if (wrap) {
        dx = std::min(dx, width - dx);
        dy = std::min(dy, height - dy);
      }
      if (dx + dy <= radius) ball.push_back(d);  // ids ascend: ball is sorted
    }
    QUARC_REQUIRE(static_cast<int>(ball.size()) >= count,
                  "neighborhood ball of node " + std::to_string(s) + " holds only " +
                      std::to_string(ball.size()) + " nodes; cannot draw " +
                      std::to_string(count) + " destinations (radius " +
                      std::to_string(radius) + " on " + std::to_string(width) + "x" +
                      std::to_string(height) + ")");
    auto& v = dests_[static_cast<std::size_t>(s)];
    v.reserve(static_cast<std::size_t>(count));
    for (int i : sample_without_replacement(0, static_cast<int>(ball.size()) - 1, count, rng)) {
      v.push_back(ball[static_cast<std::size_t>(i)]);
    }
  }
}

std::string NeighborhoodPattern::describe() const {
  std::ostringstream os;
  os << (wrap_ ? "torus-neighborhood" : "mesh-neighborhood") << "(r=" << radius_
     << ", k=" << count_ << ", " << width_ << "x" << height_ << ")";
  return os.str();
}

const std::vector<NodeId>& NeighborhoodPattern::destinations(NodeId s) const {
  QUARC_REQUIRE(s >= 0 && s < static_cast<NodeId>(dests_.size()), "source out of range");
  return dests_[static_cast<std::size_t>(s)];
}

ExplicitPattern::ExplicitPattern(std::vector<std::vector<NodeId>> dests, std::string description)
    : dests_(std::move(dests)), description_(std::move(description)) {
  for (NodeId s = 0; s < static_cast<NodeId>(dests_.size()); ++s) {
    std::set<NodeId> seen;
    for (NodeId d : dests_[static_cast<std::size_t>(s)]) {
      QUARC_REQUIRE(d >= 0 && d < static_cast<NodeId>(dests_.size()), "destination out of range");
      QUARC_REQUIRE(d != s, "destination equals source");
      QUARC_REQUIRE(seen.insert(d).second, "duplicate destination");
    }
  }
}

std::string ExplicitPattern::describe() const { return description_; }

const std::vector<NodeId>& ExplicitPattern::destinations(NodeId s) const {
  QUARC_REQUIRE(s >= 0 && s < static_cast<NodeId>(dests_.size()), "source out of range");
  return dests_[static_cast<std::size_t>(s)];
}

}  // namespace quarc
