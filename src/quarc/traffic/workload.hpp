// Workload description shared by the analytical model and the simulator.
//
// Matches the paper's traffic assumptions (Section 2): every node generates
// messages by a Poisson process at `message_rate` messages/cycle; a
// fraction `multicast_fraction` (the figures' alpha) are multicasts to the
// pattern's destination set, the rest are unicasts to uniformly random
// destinations; all messages are `message_length` flits.
#pragma once

#include <memory>
#include <string>

#include "quarc/topo/topology.hpp"
#include "quarc/traffic/pattern.hpp"

namespace quarc {

struct Workload {
  /// Messages generated per node per cycle (Poisson rate).
  double message_rate = 0.005;
  /// Fraction of generated messages that are multicasts (paper's alpha).
  double multicast_fraction = 0.0;  // lint: fingerprint=alpha
  /// Message length in flits (paper: 16/32/48/64; must exceed the network
  /// diameter per the paper's assumptions — validated, not assumed).
  int message_length = 32;
  /// Destination sets for multicast messages; required iff
  /// multicast_fraction > 0.
  std::shared_ptr<const MulticastPattern> pattern;

  double unicast_rate() const { return message_rate * (1.0 - multicast_fraction); }
  double multicast_rate() const { return message_rate * multicast_fraction; }

  /// Checks rates, lengths and pattern consistency against a topology;
  /// throws InvalidArgument on violation.
  void validate(const Topology& topo) const;

  /// One-line description for bench output.
  std::string describe() const;
};

}  // namespace quarc
