#include "quarc/traffic/workload.hpp"

#include <sstream>

#include "quarc/util/error.hpp"

namespace quarc {

void Workload::validate(const Topology& topo) const {
  QUARC_REQUIRE(message_rate >= 0.0, "message rate must be non-negative");
  QUARC_REQUIRE(multicast_fraction >= 0.0 && multicast_fraction <= 1.0,
                "multicast fraction must be in [0,1]");
  QUARC_REQUIRE(message_length >= 1, "message length must be positive");
  QUARC_REQUIRE(message_length > topo.diameter(),
                "paper assumption: messages are larger than the network diameter");
  if (multicast_fraction > 0.0) {
    QUARC_REQUIRE(pattern != nullptr, "multicast traffic requires a destination pattern");
    for (NodeId s = 0; s < topo.num_nodes(); ++s) {
      for (NodeId d : pattern->destinations(s)) {
        QUARC_REQUIRE(d >= 0 && d < topo.num_nodes() && d != s,
                      "pattern destination invalid for this topology");
      }
    }
  }
}

std::string Workload::describe() const {
  std::ostringstream os;
  os << "rate=" << message_rate << " msg/cycle/node, alpha=" << multicast_fraction
     << ", M=" << message_length << " flits";
  if (pattern) os << ", pattern=" << pattern->describe();
  return os.str();
}

}  // namespace quarc
