// Multicast destination patterns.
//
// The paper fixes the multicast destination set at the start of each
// simulation (Section 4) and describes it, per figure, as bitstrings of
// targets relative to the initiating node (L/R/LO/RO in Figs. 6-7) — i.e.
// every node multicasts to the same *relative* set, preserving the vertex
// symmetry the analytical model exploits. RingRelativePattern realises
// that; random and localized builders regenerate the Fig. 6 / Fig. 7
// families. UniformRandomPattern (independent per-source sets) and
// ExplicitPattern (arbitrary maps, used by the mesh extension) cover the
// non-symmetric cases.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "quarc/util/rng.hpp"
#include "quarc/util/types.hpp"

namespace quarc {

/// Fixed mapping source -> multicast destination set, immutable after
/// construction (paper: "selected randomly ... at the beginning of the
/// simulation").
class MulticastPattern {
 public:
  virtual ~MulticastPattern() = default;

  /// Human-readable description for bench/table headers.
  virtual std::string describe() const = 0;

  /// Destination set of a multicast initiated at s; nodes are absolute ids,
  /// distinct, and never equal to s.
  virtual const std::vector<NodeId>& destinations(NodeId s) const = 0;

  /// Number of destinations of the multicast initiated at s.
  std::size_t fanout(NodeId s) const { return destinations(s).size(); }
};

/// Every node targets the same set of clockwise offsets (ring topologies).
class RingRelativePattern final : public MulticastPattern {
 public:
  /// `offsets` are clockwise distances in [1, num_nodes-1], distinct.
  RingRelativePattern(int num_nodes, std::vector<int> offsets);

  std::string describe() const override;
  const std::vector<NodeId>& destinations(NodeId s) const override;
  const std::vector<int>& offsets() const { return offsets_; }

  /// All other nodes (a broadcast).
  static std::shared_ptr<RingRelativePattern> broadcast(int num_nodes);
  /// `count` offsets drawn uniformly without replacement from [1, N-1]
  /// (the Fig. 6 "random destinations" family).
  static std::shared_ptr<RingRelativePattern> random(int num_nodes, int count, Rng& rng);
  /// `count` offsets drawn uniformly without replacement from
  /// [lo_offset, hi_offset] — used with a Quarc quadrant's range to build
  /// the Fig. 7 "localized destinations" (same-rim) family.
  static std::shared_ptr<RingRelativePattern> localized(int num_nodes, int lo_offset,
                                                        int hi_offset, int count, Rng& rng);

 private:
  int num_nodes_;
  std::vector<int> offsets_;
  /// destinations(s) materialised per source (cheap: N * |offsets|).
  std::vector<std::vector<NodeId>> dests_;
};

/// Independent uniformly random destination set per source, fixed at
/// construction.
class UniformRandomPattern final : public MulticastPattern {
 public:
  UniformRandomPattern(int num_nodes, int count, Rng& rng);

  std::string describe() const override;
  const std::vector<NodeId>& destinations(NodeId s) const override;

 private:
  int count_;
  std::vector<std::vector<NodeId>> dests_;
};

/// Spatially localized destinations on a 2D grid: each source draws its
/// destinations uniformly from the Manhattan ball of a given radius
/// around itself (node id = y * width + x). This is the mesh/torus-native
/// analogue of the ring-offset "localized" family — locality is measured
/// in grid hops, not clockwise ring distance, so it matches the distance
/// metric the mesh/torus routers actually route by.
class NeighborhoodPattern final : public MulticastPattern {
 public:
  /// `count` destinations per source from the radius-`radius` Manhattan
  /// ball (source excluded). `wrap` selects the torus metric (distances
  /// wrap at the grid edges) vs. the mesh metric (the ball clips at the
  /// boundary). Throws InvalidArgument when any source's ball holds fewer
  /// than `count` nodes.
  NeighborhoodPattern(int width, int height, int radius, int count, bool wrap, Rng& rng);

  std::string describe() const override;
  const std::vector<NodeId>& destinations(NodeId s) const override;

  int radius() const { return radius_; }
  bool wrap() const { return wrap_; }

 private:
  int width_, height_, radius_, count_;
  bool wrap_;
  std::vector<std::vector<NodeId>> dests_;
};

/// Arbitrary per-source destination sets.
class ExplicitPattern final : public MulticastPattern {
 public:
  /// `dests[s]` is the destination set of source s; the vector must have
  /// one entry per node (possibly empty).
  explicit ExplicitPattern(std::vector<std::vector<NodeId>> dests, std::string description);

  std::string describe() const override;
  const std::vector<NodeId>& destinations(NodeId s) const override;

 private:
  std::vector<std::vector<NodeId>> dests_;
  std::string description_;
};

}  // namespace quarc
