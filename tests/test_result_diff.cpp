#include "quarc/api/result_diff.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace quarc::api {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Two-point model+sim baseline resembling a small sweep document.
ResultSet baseline_set() {
  ResultSet rs;
  rs.topology = "quarc:16";
  rs.topology_name = "quarc-16";
  rs.nodes = 16;
  rs.ports = 4;
  rs.diameter = 4;
  rs.pattern = "random:4";
  rs.alpha = 0.05;
  rs.message_length = 32;
  rs.seed = 42;
  rs.workload = "w";

  for (const auto& [rate, model_mc, sim_mc] :
       {std::tuple{0.002, 50.0, 51.0}, std::tuple{0.004, 80.0, 82.0}}) {
    ResultRow r;
    r.rate = rate;
    r.model_run = true;
    r.model_status = "converged";
    r.model_unicast_latency = model_mc - 10.0;
    r.model_multicast_latency = model_mc;
    r.sim_run = true;
    r.sim_completed = true;
    r.sim_stable = true;
    r.sim_unicast_latency = sim_mc - 10.0;
    r.sim_unicast_count = 1000;
    r.sim_multicast_latency = sim_mc;
    r.sim_multicast_count = 100;
    rs.rows.push_back(r);
  }
  return rs;
}

std::string report_text(const DiffReport& report) {
  std::ostringstream os;
  write_diff_report(report, os);
  return os.str();
}

// The ISSUE's golden trio: identical, regressed, and improved pairs.

TEST(ResultDiff, IdenticalPairIsClean) {
  const ResultSet base = baseline_set();
  const DiffReport report = diff_result_sets(base, base);
  EXPECT_FALSE(report.has_regression());
  EXPECT_TRUE(report.entries.empty());
  EXPECT_TRUE(report.scenarios_match);
  // 2 rows x (4 latencies + sim_stable/sim_completed + model_run/sim_run
  // + model_status).
  EXPECT_EQ(report.fields_compared, 18);
  EXPECT_EQ(report_text(report),
            "compared 18 fields: 0 regressions, 0 improvements, 18 within tolerance\n");
}

TEST(ResultDiff, RegressedPairIsFlagged) {
  const ResultSet base = baseline_set();
  ResultSet cand = base;
  cand.rows[1].model_multicast_latency = 88.0;  // 80 -> 88: +10%
  const DiffReport report = diff_result_sets(base, cand, {.tolerance = 0.05});
  EXPECT_TRUE(report.has_regression());
  ASSERT_EQ(report.entries.size(), 1u);
  const DiffEntry& e = report.entries[0];
  EXPECT_EQ(e.field, "model_multicast_latency");
  EXPECT_EQ(e.rate, 0.004);
  EXPECT_EQ(e.status, DiffStatus::Regressed);
  EXPECT_NEAR(e.rel_change, 0.1, 1e-12);
  EXPECT_EQ(report_text(report),
            "  rate=0.004  model_multicast_latency  80 -> 88 (+10.0%)  REGRESSED\n"
            "compared 18 fields: 1 regression, 0 improvements, 17 within tolerance\n");
}

TEST(ResultDiff, ImprovedPairIsNotARegression) {
  const ResultSet base = baseline_set();
  ResultSet cand = base;
  cand.rows[0].sim_multicast_latency = 45.9;  // 51 -> 45.9: -10%
  const DiffReport report = diff_result_sets(base, cand, {.tolerance = 0.05});
  EXPECT_FALSE(report.has_regression());
  EXPECT_EQ(report.improvements, 1);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].status, DiffStatus::Improved);
  EXPECT_EQ(report_text(report),
            "  rate=0.002  sim_multicast_latency  51 -> 45.9 (-10.0%)  improved\n"
            "compared 18 fields: 0 regressions, 1 improvement, 17 within tolerance\n");
}

TEST(ResultDiff, ChangesWithinToleranceAreNoise) {
  const ResultSet base = baseline_set();
  ResultSet cand = base;
  cand.rows[0].sim_multicast_latency *= 1.01;  // +1% < 2% default tolerance
  cand.rows[1].model_unicast_latency *= 0.99;
  const DiffReport report = diff_result_sets(base, cand);
  EXPECT_TRUE(report.entries.empty());
  EXPECT_FALSE(report.has_regression());
}

TEST(ResultDiff, NewSaturationIsAlwaysARegression) {
  const ResultSet base = baseline_set();
  ResultSet cand = base;
  cand.rows[1].model_multicast_latency = kInf;
  const DiffReport report = diff_result_sets(base, cand, {.tolerance = 1e9});
  EXPECT_TRUE(report.has_regression());
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_TRUE(std::isinf(report.entries[0].rel_change));
  EXPECT_NE(report_text(report).find("80 -> saturated (saturation)  REGRESSED"),
            std::string::npos);

  // And the reverse direction is an improvement.
  const DiffReport reverse = diff_result_sets(cand, base, {.tolerance = 1e9});
  EXPECT_FALSE(reverse.has_regression());
  EXPECT_EQ(reverse.improvements, 1);
}

TEST(ResultDiff, BothSaturatedIsUnchanged) {
  ResultSet base = baseline_set();
  base.rows[1].model_multicast_latency = kInf;
  const DiffReport report = diff_result_sets(base, base);
  EXPECT_TRUE(report.entries.empty());
}

TEST(ResultDiff, LostMeasurementsAreRegressionsAndBothNaNIsNotComparable) {
  ResultSet base = baseline_set();
  ResultSet cand = base;
  // Absent on both sides: not comparable, not an entry.
  base.rows[0].model_multicast_latency = std::nan("");
  cand.rows[0].model_multicast_latency = std::nan("");
  // Whole sim side absent at rate 0: those fields are skipped entirely.
  cand.rows[0].sim_run = false;
  // Present in the baseline, gone in the candidate: a regression at any
  // tolerance (this is how a newly-aborting simulation reads).
  cand.rows[1].model_multicast_latency = std::nan("");
  const DiffReport report = diff_result_sets(base, cand, {.tolerance = 1e9});
  EXPECT_TRUE(report.has_regression());
  // Two regressions: row0 lost its whole sim section (sim_run flag), and
  // row1 lost the model multicast measurement.
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_EQ(report.entries[0].field, "sim_run");
  EXPECT_EQ(report.entries[0].status, DiffStatus::Regressed);
  EXPECT_EQ(report.entries[1].field, "model_multicast_latency");
  EXPECT_EQ(report.entries[1].status, DiffStatus::Regressed);
  EXPECT_NE(report_text(report).find("80 -> -  REGRESSED"), std::string::npos);
  // row0: model_run + sim_run + model_status + model_unicast (multicast
  // both-NaN, sim latencies/flags skipped) = 4; row1: 2 section flags +
  // model_status + 4 latencies + 2 sim flags = 9.
  EXPECT_EQ(report.fields_compared, 13);
}

TEST(ResultDiff, NewlyUnstableSimulationIsARegression) {
  // The sim-side saturation symptom: the candidate aborts as unstable at
  // a rate the baseline handled. Latencies vanish (finite -> NaN) and the
  // stability flags flip — all of it must gate, at any tolerance.
  const ResultSet base = baseline_set();
  ResultSet cand = base;
  cand.rows[1].sim_stable = false;
  cand.rows[1].sim_completed = false;
  cand.rows[1].sim_unicast_latency = std::nan("");
  cand.rows[1].sim_unicast_count = 0;
  cand.rows[1].sim_multicast_latency = std::nan("");
  cand.rows[1].sim_multicast_count = 0;
  const DiffReport report = diff_result_sets(base, cand, {.tolerance = 1e9});
  EXPECT_TRUE(report.has_regression());
  EXPECT_EQ(report.regressions, 4);  // stable, completed, two lost latencies
  const std::string text = report_text(report);
  EXPECT_NE(text.find("sim_stable"), std::string::npos);
  EXPECT_NE(text.find("sim_completed"), std::string::npos);

  // Model-only mode ignores the whole sim side, flags included.
  const DiffReport model_only =
      diff_result_sets(base, cand, {.tolerance = 1e9, .compare_sim = false});
  EXPECT_FALSE(model_only.has_regression());
}

TEST(ResultDiff, RemovedRatesGateAddedRatesAreReported) {
  const ResultSet base = baseline_set();
  ResultSet cand = base;
  cand.rows[0].rate = 0.003;  // 0.002 removed, 0.003 added
  const DiffReport report = diff_result_sets(base, cand);
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_EQ(report.entries[0].rate, 0.002);
  EXPECT_EQ(report.entries[0].status, DiffStatus::Removed);
  EXPECT_EQ(report.entries[1].rate, 0.003);
  EXPECT_EQ(report.entries[1].status, DiffStatus::Added);
  // Lost coverage gates: a candidate truncated at exactly the regressing
  // rates must not exit 0. New extra rates are merely reported.
  EXPECT_TRUE(report.has_regression());
  EXPECT_EQ(report.regressions, 1);
  EXPECT_NE(report_text(report).find("row removed"), std::string::npos);
  // The removed row is not a field comparison: the matched row's 9 fields
  // are all within tolerance.
  EXPECT_NE(report_text(report).find("9 within tolerance"), std::string::npos);
}

TEST(ResultDiff, UnconvergedSolveIsARegressionEvenWithUnchangedLatencies) {
  // The satellite bug this pins: a candidate whose solver ran out of
  // iterations reports latencies assembled from an unconverged x. Those
  // numbers can sit within any tolerance of the converged baseline, so
  // the *status* flip itself must gate.
  const ResultSet base = baseline_set();
  ResultSet cand = base;
  cand.rows[1].model_status = "max-iterations";  // latencies untouched
  const DiffReport report = diff_result_sets(base, cand, {.tolerance = 1e9});
  EXPECT_TRUE(report.has_regression());
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].field, "model_status");
  EXPECT_EQ(report.entries[0].status, DiffStatus::Regressed);
  EXPECT_NE(report_text(report).find("model_status"), std::string::npos);

  // The reverse flip — a solve that newly converges — is an improvement,
  // and a converged <-> saturated transition is left to the latency
  // fields (the +inf classification already gates it).
  const DiffReport reverse = diff_result_sets(cand, base, {.tolerance = 1e9});
  EXPECT_FALSE(reverse.has_regression());
  EXPECT_EQ(reverse.improvements, 1);
  ResultSet saturated = base;
  saturated.rows[1].model_status = "saturated";
  saturated.rows[1].model_unicast_latency = kInf;
  saturated.rows[1].model_multicast_latency = kInf;
  const DiffReport sat = diff_result_sets(base, saturated, {.tolerance = 1e9});
  EXPECT_TRUE(sat.has_regression());
  for (const DiffEntry& e : sat.entries) EXPECT_NE(e.field, "model_status");
}

TEST(ResultDiff, ScenarioMismatchIsFlagged) {
  const ResultSet base = baseline_set();
  ResultSet cand = base;
  cand.seed = 7;
  const DiffReport report = diff_result_sets(base, cand);
  EXPECT_FALSE(report.scenarios_match);
  EXPECT_NE(report_text(report).find("different scenarios"), std::string::npos);
}

TEST(ResultDiff, ModelOnlyModeIgnoresSimFields) {
  const ResultSet base = baseline_set();
  ResultSet cand = base;
  cand.rows[0].sim_multicast_latency = 500.0;  // huge sim regression
  const DiffReport report = diff_result_sets(base, cand, {.tolerance = 0.02, .compare_sim = false});
  EXPECT_FALSE(report.has_regression());
  EXPECT_EQ(report.fields_compared, 8);  // model_run + model_status + 2 latencies per row
}

}  // namespace
}  // namespace quarc::api
