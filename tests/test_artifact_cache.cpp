#include "quarc/batch/artifact_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "quarc/api/scenario.hpp"
#include "quarc/util/error.hpp"

namespace quarc::batch {
namespace {

std::string to_json_text(const api::ResultSet& rs) {
  std::ostringstream os;
  rs.write_json(os);
  return os.str();
}

api::Scenario make(const std::string& topology, double alpha) {
  api::Scenario s;
  s.topology(topology)
      .pattern(alpha > 0.0 ? "random:3" : "none")
      .alpha(alpha)
      .message_length(16)
      .seed(42)
      .with_sim(false);
  return s;
}

TEST(ArtifactCache, TopologyByAlphaGridCompilesEachArtifactOnce) {
  // The acceptance shape: 3 topologies x 3 alphas. One RoutePlan per
  // topology (pattern/seed/multicast shared), one FlowGraph per member
  // (alpha is a flow-structure input).
  const std::vector<std::string> topologies = {"quarc:16", "spidergon:16", "mesh:4x4"};
  const std::vector<double> alphas = {0.05, 0.1, 0.2};
  auto cache = std::make_shared<ArtifactCache>();
  for (const std::string& t : topologies) {
    for (const double a : alphas) {
      api::Scenario s = make(t, a);
      s.artifacts(cache);
      s.validate();
    }
  }
  const ArtifactCacheStats stats = cache->stats();
  EXPECT_EQ(stats.plans_compiled, 3);
  EXPECT_EQ(stats.plans_reused, 6);
  EXPECT_EQ(stats.flows_compiled, 9);
  EXPECT_EQ(stats.flows_reused, 0);
  EXPECT_EQ(cache->plan_count(), 3u);
  EXPECT_EQ(cache->flow_count(), 9u);
}

TEST(ArtifactCache, IdenticalScenariosShareTheExactObjects) {
  auto cache = std::make_shared<ArtifactCache>();
  api::Scenario a = make("quarc:16", 0.05);
  api::Scenario b = make("quarc:16", 0.05);
  a.artifacts(cache);
  b.artifacts(cache);
  // Pointer identity, not just equal bytes: both adopted the one compiled
  // instance, so the fleet's memory cost is per-distinct-key.
  EXPECT_EQ(&a.route_plan(), &b.route_plan());
  EXPECT_EQ(&a.flow_graph(), &b.flow_graph());

  api::Scenario c = make("quarc:16", 0.1);  // same plan, different flows
  c.artifacts(cache);
  EXPECT_EQ(&a.route_plan(), &c.route_plan());
  EXPECT_NE(&a.flow_graph(), &c.flow_graph());
}

TEST(ArtifactCache, SharedArtifactsAreByteTransparent) {
  // The load-bearing invariant: a Scenario attached to the cache produces
  // the same document bytes and the same fingerprint as one compiling
  // privately — for multicast, unicast-with-pattern-spec and sim runs.
  const std::vector<double> rates = {0.002, 0.004};
  auto cache = std::make_shared<ArtifactCache>();
  for (const double alpha : {0.0, 0.05}) {
    api::Scenario solo = make("quarc:16", alpha);
    solo.warmup(500).measure(4000).with_sim(true);
    api::Scenario shared = make("quarc:16", alpha);
    shared.warmup(500).measure(4000).with_sim(true);
    shared.artifacts(cache);
    EXPECT_EQ(shared.fingerprint().canonical, solo.fingerprint().canonical);
    EXPECT_EQ(to_json_text(shared.run_sweep(rates)), to_json_text(solo.run_sweep(rates)));
  }
}

TEST(ArtifactCache, ArtifactsOutliveTheCache) {
  api::Scenario s = make("quarc:16", 0.05);
  {
    auto cache = std::make_shared<ArtifactCache>();
    s.artifacts(cache);
    s.validate();
    s.artifacts(nullptr);  // detach; the Scenario keeps its shared_ptrs
  }  // cache destroyed
  const api::ResultSet rs = s.run_sweep(std::vector<double>{0.002});
  EXPECT_EQ(rs.rows.size(), 1u);
}

TEST(ArtifactCache, DistinctPatternSeedsDoNotShare) {
  auto cache = std::make_shared<ArtifactCache>();
  api::Scenario a = make("quarc:16", 0.05);
  api::Scenario b = make("quarc:16", 0.05);
  b.seed(7);  // pattern seed defaults to the run seed
  a.artifacts(cache);
  b.artifacts(cache);
  EXPECT_NE(&a.route_plan(), &b.route_plan());
  EXPECT_EQ(cache->stats().plans_compiled, 2);
}

TEST(ArtifactCache, RejectsBadSpecs) {
  ArtifactCache cache;
  PlanRequest req;
  req.topology_spec = "not-a-topology:9";
  req.pattern_spec = "none";
  EXPECT_THROW(cache.plan(req), InvalidArgument);
}

}  // namespace
}  // namespace quarc::batch
