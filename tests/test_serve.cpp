#include "quarc/batch/serve.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "quarc/batch/batch_runner.hpp"
#include "quarc/batch/scenario_set.hpp"
#include "quarc/util/json.hpp"

namespace quarc::batch {
namespace {

/// Runs the serve loop over scripted request lines; returns the parsed
/// response lines (always one per request).
std::vector<json::Value> serve_script(const std::string& requests,
                                      const ServeOptions& options = {}) {
  std::istringstream in(requests);
  std::ostringstream out, err;
  EXPECT_EQ(serve(in, out, err, options), 0);
  std::vector<json::Value> responses;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) responses.push_back(json::Value::parse(line));
  return responses;
}

constexpr const char* kRequest =
    "{\"topology\":\"quarc:16\",\"pattern\":\"random:3\",\"alpha\":0.05,"
    "\"rates\":[0.002,0.004],\"msg\":16,\"seed\":42}";

TEST(Serve, AnswersMatchTheBatchEngine) {
  // Three distinct requests; each response's rows must be byte-identical
  // to what a batch run of the same spec produces (both are views of the
  // same pure (fingerprint, rate) function).
  const std::vector<std::string> specs = {
      "{\"topology\":\"quarc:16\",\"pattern\":\"random:3\",\"alpha\":0.05,"
      "\"rates\":[0.002,0.004],\"msg\":16,\"seed\":42}",
      "{\"topology\":\"quarc:16\",\"pattern\":\"random:3\",\"alpha\":0.1,"
      "\"rates\":[0.002],\"msg\":16,\"seed\":42}",
      "{\"topology\":\"spidergon:16\",\"pattern\":\"random:3\",\"alpha\":0.05,"
      "\"rates\":[0.004],\"msg\":16,\"seed\":42}",
  };
  std::string script;
  std::string batch_spec;
  for (const std::string& s : specs) {
    script += s + "\n";
    batch_spec += s + "\n";
  }
  const std::vector<json::Value> responses = serve_script(script);
  ASSERT_EQ(responses.size(), specs.size());

  BatchRunner runner(ScenarioSet::parse_text(batch_spec), {});
  const std::vector<api::ResultSet> batch = runner.run(nullptr, nullptr);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const json::Value& rows = responses[i].at("rows");
    ASSERT_EQ(rows.as_array().size(), batch[i].rows.size()) << "request " << i;
    for (std::size_t r = 0; r < batch[i].rows.size(); ++r) {
      EXPECT_EQ(rows.as_array()[r].dump(), api::row_to_json(batch[i].rows[r]).dump())
          << "request " << i << " row " << r;
    }
  }
}

TEST(Serve, RepeatedRequestsAreServedWithoutSolving) {
  const std::string script = std::string(kRequest) + "\n" + kRequest + "\n";
  const std::vector<json::Value> responses = serve_script(script);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].at("solved").as_int(), 2);
  EXPECT_EQ(responses[0].at("served").as_int(), 0);
  EXPECT_GT(responses[0].at("iterations").as_int(), 0);
  // The second identical request is pure lookup: same fingerprint, same
  // rows, zero new solver iterations.
  EXPECT_EQ(responses[1].at("solved").as_int(), 0);
  EXPECT_EQ(responses[1].at("served").as_int(), 2);
  EXPECT_EQ(responses[1].at("iterations").as_int(), 0);
  EXPECT_EQ(responses[1].at("fp").as_string(), responses[0].at("fp").as_string());
  EXPECT_EQ(responses[1].at("rows").dump(), responses[0].at("rows").dump());
}

TEST(Serve, ScalarRateAndIdAreHonoured) {
  const std::vector<json::Value> responses = serve_script(
      "{\"topology\":\"quarc:16\",\"pattern\":\"random:3\",\"alpha\":0.05,"
      "\"rate\":0.002,\"msg\":16,\"seed\":42,\"id\":7}\n");
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].at("id").as_int(), 7);
  ASSERT_EQ(responses[0].at("rows").as_array().size(), 1u);
  EXPECT_DOUBLE_EQ(responses[0].at("rows").as_array()[0].at("rate").as_double(), 0.002);
}

TEST(Serve, BadRequestsKeepTheLoopAlive) {
  const std::string script =
      "not json at all\n"
      "{\"topology\":\"quarc:16\",\"bogus\":1,\"id\":1}\n"
      "{\"rate\":0.002,\"rates\":[0.002],\"topology\":\"quarc:16\",\"id\":2}\n"
      "{\"cmd\":\"no-such-cmd\"}\n" +
      std::string(kRequest) + "\n";
  const std::vector<json::Value> responses = serve_script(script);
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_NE(responses[0].find("error"), nullptr);
  EXPECT_NE(responses[1].find("error"), nullptr);
  EXPECT_EQ(responses[1].at("id").as_int(), 1);  // id echoed even on errors
  EXPECT_NE(responses[2].find("error"), nullptr);
  EXPECT_NE(responses[3].find("error"), nullptr);
  // The loop survived four bad requests and still answered the good one.
  EXPECT_EQ(responses[4].find("error"), nullptr);
  EXPECT_EQ(responses[4].at("rows").as_array().size(), 2u);
}

TEST(Serve, StatsAndShutdownCommands) {
  const std::string script =
      std::string(kRequest) + "\n{\"cmd\":\"stats\",\"id\":9}\n{\"cmd\":\"shutdown\"}\n" +
      kRequest + "\n";  // never reached
  const std::vector<json::Value> responses = serve_script(script);
  ASSERT_EQ(responses.size(), 3u);  // shutdown stops before the 4th line
  const json::Value& stats = responses[1];
  EXPECT_EQ(stats.at("cmd").as_string(), "stats");
  EXPECT_EQ(stats.at("id").as_int(), 9);
  EXPECT_EQ(stats.at("store_rows").as_int(), 2);
  EXPECT_EQ(stats.at("plans_compiled").as_int(), 1);
  EXPECT_EQ(responses[2].at("cmd").as_string(), "shutdown");
}

TEST(Serve, MemoryBoundedStoreStillAnswersFromDisk) {
  const std::string dir = testing::TempDir() + "quarc_serve_lru";
  std::filesystem::remove_all(dir);
  ServeOptions options;
  options.cache_dir = dir;
  options.memory_limit_rows = 1;  // smaller than any response: constant churn

  const std::string other =
      "{\"topology\":\"quarc:16\",\"pattern\":\"random:3\",\"alpha\":0.1,"
      "\"rates\":[0.003],\"msg\":16,\"seed\":42}";
  // Solve A, displace it with B, then ask for A again — the store must
  // reload A's rows from disk rather than re-solving.
  const std::string script =
      std::string(kRequest) + "\n" + other + "\n" + kRequest + "\n";
  const std::vector<json::Value> responses = serve_script(script, options);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[2].at("served").as_int(), 2);
  EXPECT_EQ(responses[2].at("iterations").as_int(), 0);
  EXPECT_EQ(responses[2].at("rows").dump(), responses[0].at("rows").dump());
}

}  // namespace
}  // namespace quarc::batch
