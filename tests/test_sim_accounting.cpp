// Global accounting properties of the simulator: sample capture, delivery
// counters, and Little's-law consistency between the time-average worm
// population and arrival rate x sojourn time.
#include <gtest/gtest.h>

#include <cmath>

#include "quarc/sim/simulator.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/traffic/pattern.hpp"

namespace quarc {
namespace {

using sim::SimConfig;
using sim::Simulator;
using sim::SimResult;

SimConfig base_config(double rate, double alpha, int msg) {
  SimConfig c;
  c.workload.message_rate = rate;
  c.workload.multicast_fraction = alpha;
  c.workload.message_length = msg;
  if (alpha > 0) c.workload.pattern = RingRelativePattern::broadcast(16);
  c.warmup_cycles = 2000;
  c.measure_cycles = 40000;
  c.seed = 31;
  return c;
}

TEST(SimAccounting, StreamSamplesOffByDefault) {
  QuarcTopology topo(16);
  const SimResult r = Simulator(topo, base_config(0.003, 0.1, 16)).run();
  ASSERT_TRUE(r.completed);
  for (const auto& v : r.stream_wait_samples) EXPECT_TRUE(v.empty());
}

TEST(SimAccounting, StreamSamplesMatchSummaries) {
  QuarcTopology topo(16);
  SimConfig c = base_config(0.003, 0.1, 16);
  c.collect_stream_samples = true;
  const SimResult r = Simulator(topo, c).run();
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.stream_wait_samples.size(), 4u);
  for (std::size_t p = 0; p < 4; ++p) {
    const auto& samples = r.stream_wait_samples[p];
    const auto& summary = r.stream_wait_by_port[p];
    ASSERT_EQ(static_cast<std::int64_t>(samples.size()), summary.count);
    double sum = 0.0;
    for (double x : samples) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    if (!samples.empty()) {
      EXPECT_NEAR(sum / static_cast<double>(samples.size()), summary.mean, 1e-9);
    }
  }
}

TEST(SimAccounting, DeliveryCountersCoverMeasuredAndUnmeasured) {
  QuarcTopology topo(16);
  const SimResult r = Simulator(topo, base_config(0.004, 0.1, 16)).run();
  ASSERT_TRUE(r.completed);
  // Counters include warmup/post-window deliveries, so they dominate the
  // measured counts.
  EXPECT_GE(r.unicast_delivered_total, r.unicast_latency.count);
  EXPECT_GE(r.multicast_groups_delivered_total, r.multicast_latency.count);
  EXPECT_GT(r.unicast_delivered_total, 0);
  EXPECT_GT(r.multicast_groups_delivered_total, 0);
}

TEST(SimAccounting, AcceptedThroughputMatchesOfferedBelowSaturation) {
  QuarcTopology topo(16);
  SimConfig c = base_config(0.004, 0.0, 16);
  c.measure_cycles = 60000;
  const SimResult r = Simulator(topo, c).run();
  ASSERT_TRUE(r.completed);
  const double accepted =
      static_cast<double>(r.unicast_delivered_total) / static_cast<double>(r.cycles_run) / 16.0;
  EXPECT_NEAR(accepted, 0.004, 0.0004);
}

TEST(SimAccounting, LittlesLawHoldsForWorms) {
  // L = lambda * W with L the time-average worm population, lambda the
  // worm arrival rate and W the mean sojourn. Unicast-only keeps lambda
  // exact (one worm per message).
  QuarcTopology topo(16);
  SimConfig c = base_config(0.005, 0.0, 16);
  c.measure_cycles = 120000;
  const SimResult r = Simulator(topo, c).run();
  ASSERT_TRUE(r.completed);
  const double lambda_worms =
      static_cast<double>(r.messages_generated) / static_cast<double>(r.cycles_run);
  const double little = lambda_worms * r.worm_sojourn.mean;
  EXPECT_GT(r.avg_active_worms, 0.0);
  EXPECT_NEAR(r.avg_active_worms, little, 0.1 * little);
}

TEST(SimAccounting, SojournExceedsLatency) {
  // A worm's sojourn ends when its last clone drains, at or after the
  // group-latency absorption; for unicast they coincide up to bookkeeping.
  QuarcTopology topo(16);
  const SimResult r = Simulator(topo, base_config(0.004, 0.0, 16)).run();
  ASSERT_TRUE(r.completed);
  ASSERT_GT(r.worm_sojourn.count, 0);
  EXPECT_NEAR(r.worm_sojourn.mean, r.unicast_latency.mean, 1.0);
}

TEST(SimAccounting, InvariantCheckerPassesOnMixedTraffic) {
  QuarcTopology topo(16);
  SimConfig c = base_config(0.004, 0.1, 16);
  c.check_invariants = true;
  c.invariant_check_interval = 8;
  const SimResult r = Simulator(topo, c).run();  // aborts internally on violation
  EXPECT_TRUE(r.completed);
}

TEST(SimAccounting, ActiveWormsGrowWithLoad) {
  QuarcTopology topo(16);
  const SimResult lo = Simulator(topo, base_config(0.002, 0.0, 16)).run();
  const SimResult hi = Simulator(topo, base_config(0.006, 0.0, 16)).run();
  ASSERT_TRUE(lo.completed);
  ASSERT_TRUE(hi.completed);
  EXPECT_GT(hi.avg_active_worms, 2.0 * lo.avg_active_worms);
}

TEST(SimAccounting, TimeAveragesExactUnderIdleSkip) {
  // avg_active_worms and channel_utilization are time integrals divided by
  // cycles_run. The active engine fast-forwards idle stretches instead of
  // stepping them, so this pins that the skipped spans contribute to the
  // integrals exactly as the reference's cycle-by-cycle accumulation does
  // (bitwise, not approximately): x + 0.0 * span == x after += 0.0 spans.
  QuarcTopology topo(16);
  SimConfig c = base_config(0.0003, 0.1, 16);
  c.measure_cycles = 30000;

  c.engine = sim::SimEngine::Reference;
  const SimResult ref = Simulator(topo, c).run();
  c.engine = sim::SimEngine::Active;
  Simulator active(topo, c);
  const SimResult act = active.run();

  // The fast path must actually have engaged, or this test pins nothing.
  ASSERT_GT(active.profile().cycles_skipped, 0);
  ASSERT_TRUE(ref.completed);
  EXPECT_EQ(ref.cycles_run, act.cycles_run);
  EXPECT_EQ(ref.avg_active_worms, act.avg_active_worms);
  EXPECT_EQ(ref.max_channel_utilization, act.max_channel_utilization);
  ASSERT_EQ(ref.channel_utilization.size(), act.channel_utilization.size());
  for (std::size_t ch = 0; ch < ref.channel_utilization.size(); ++ch) {
    EXPECT_EQ(ref.channel_utilization[ch], act.channel_utilization[ch]) << "channel " << ch;
  }
}

}  // namespace
}  // namespace quarc
