#include "quarc/util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "quarc/util/error.hpp"

namespace quarc::json {
namespace {

TEST(Json, WritesScalars) {
  EXPECT_EQ(Value(nullptr).dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Value(2.5).dump(), "2.5");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(Json, IntegerValuedDoublesPrintWithoutPoint) {
  EXPECT_EQ(Value(3.0).dump(), "3");
  EXPECT_EQ(Value(-0.0).dump(), "0");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("tab\there"), "tab\\there");
  EXPECT_EQ(escape("new\nline"), "new\\nline");
  EXPECT_EQ(escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(escape("back\\slash"), "back\\\\slash");
}

TEST(Json, BuildsNestedDocuments) {
  Value doc = Value::object();
  doc.set("name", "quarc");
  Value arr = Value::array();
  arr.push_back(1).push_back(2.5).push_back(Value(nullptr));
  doc.set("values", std::move(arr));
  EXPECT_EQ(doc.dump(), R"({"name":"quarc","values":[1,2.5,null]})");
}

TEST(Json, PrettyPrintIndents) {
  Value doc = Value::object();
  doc.set("a", 1);
  EXPECT_EQ(doc.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, RejectsNonFiniteNumbers) {
  EXPECT_THROW(Value(std::numeric_limits<double>::infinity()).dump(), InvalidArgument);
  EXPECT_THROW(Value(std::nan("")).dump(), InvalidArgument);
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Value::parse("null").is_null());
  EXPECT_EQ(Value::parse("true").as_bool(), true);
  EXPECT_EQ(Value::parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(Value::parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(Value::parse("\"s\"").as_string(), "s");
}

TEST(Json, ParsesNestedDocuments) {
  const Value v = Value::parse(R"({ "a": [1, {"b": "x"}, null], "c": false })");
  const auto& arr = v.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0].as_int(), 1);
  EXPECT_EQ(arr[1].at("b").as_string(), "x");
  EXPECT_TRUE(arr[2].is_null());
  EXPECT_FALSE(v.at("c").as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ParsesEscapes) {
  EXPECT_EQ(Value::parse(R"("a\"b\\c\nA")").as_string(), "a\"b\\c\nA");
  // \u escapes are decoded to UTF-8 (2- and 3-byte forms).
  EXPECT_EQ(Value::parse(R"("\u00e9\u20ac")").as_string(), "\xC3\xA9\xE2\x82\xAC");
  // Raw UTF-8 passes through untouched.
  EXPECT_EQ(Value::parse("\"\xC3\xA9\"").as_string(), "\xC3\xA9");
}

TEST(Json, Uint64IdentifiersRoundTripExactly) {
  const std::uint64_t big = 0xFFFFFFFFFFFFFFFFULL;  // > int64 max and > 2^53
  EXPECT_EQ(Value(big).dump(), "18446744073709551615");
  EXPECT_EQ(Value::parse("18446744073709551615").as_uint(), big);
  EXPECT_THROW(Value::parse("18446744073709551615").as_int(), InvalidArgument);
  // Above 2^53 a double representation would already be lossy.
  EXPECT_EQ(Value(std::int64_t{9007199254740993}).dump(), "9007199254740993");
  EXPECT_EQ(Value::parse("9007199254740993").as_int(), 9007199254740993);
  EXPECT_THROW(Value(std::int64_t{-1}).as_uint(), InvalidArgument);
}

TEST(Json, RoundTripsArbitraryDoubles) {
  for (double d : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.00286875}) {
    const std::string text = Value(d).dump();
    EXPECT_EQ(Value::parse(text).as_double(), d) << text;
  }
}

TEST(Json, RoundTripsDocuments) {
  const char* text =
      R"({"schema":1,"rows":[{"rate":0.004,"ok":true},{"rate":0.008,"ok":false}],"note":"x"})";
  const Value v = Value::parse(text);
  EXPECT_EQ(v.dump(), text);
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
                          "{\"a\":1,}", "[1]]", "nan", "\"bad\\q\""}) {
    EXPECT_THROW(Value::parse(bad), InvalidArgument) << bad;
  }
}

TEST(Json, TypeMismatchThrows) {
  const Value v = Value::parse("[1]");
  EXPECT_THROW(v.as_object(), InvalidArgument);
  EXPECT_THROW(v.at("k"), InvalidArgument);
  EXPECT_THROW(v.as_string(), InvalidArgument);
}

TEST(Json, FormatNumberIsCanonicalAndExact) {
  // format_number is the canonical double rendering shared by the JSON
  // writer, the CSV writer, fingerprint canonical text and sweep-cache
  // rate keys; it must match Value::write byte for byte and survive a
  // round-trip through the parser.
  EXPECT_EQ(format_number(0.004), "0.004");
  EXPECT_EQ(format_number(1.0), "1");       // integer-valued: no point
  EXPECT_EQ(format_number(-3.0), "-3");
  EXPECT_EQ(format_number(1e-9), "1e-09");
  EXPECT_EQ(format_number(0.1), "0.1");     // shortest form, not 0.1000000000000000055...
  for (const double v : {0.0012345678901234567, 41.256789123456789, 1e300, -2.5e-17}) {
    EXPECT_EQ(format_number(v), Value(v).dump());
    EXPECT_EQ(Value::parse(format_number(v)).as_double(), v);  // exact round-trip
  }
  EXPECT_THROW(format_number(std::numeric_limits<double>::infinity()), InvalidArgument);
  EXPECT_THROW(format_number(std::nan("")), InvalidArgument);
}

}  // namespace
}  // namespace quarc::json
