#include "quarc/topo/mesh.hpp"

#include <gtest/gtest.h>

#include <set>

#include "quarc/topo/hamiltonian.hpp"
#include "quarc/util/error.hpp"

namespace quarc {
namespace {

TEST(Hamiltonian, SnakeOrderIsGridAdjacent) {
  for (auto [w, h] : {std::pair{4, 4}, std::pair{5, 3}, std::pair{2, 6}}) {
    HamiltonianLabeling lab(w, h);
    for (int l = 0; l + 1 < lab.size(); ++l) {
      const NodeId a = lab.node_at(l);
      const NodeId b = lab.node_at(l + 1);
      const int ax = a % w, ay = a / w, bx = b % w, by = b / w;
      EXPECT_EQ(std::abs(ax - bx) + std::abs(ay - by), 1)
          << "labels " << l << "," << l + 1 << " in " << w << "x" << h;
    }
  }
}

TEST(Hamiltonian, LabelBijection) {
  HamiltonianLabeling lab(4, 3);
  std::set<int> labels;
  for (NodeId n = 0; n < lab.size(); ++n) {
    labels.insert(lab.label_of(n));
    EXPECT_EQ(lab.node_at(lab.label_of(n)), n);
  }
  EXPECT_EQ(static_cast<int>(labels.size()), lab.size());
}

TEST(MeshTopology, RejectsTinyGrids) {
  EXPECT_THROW(MeshTopology(1, 4), InvalidArgument);
  EXPECT_THROW(MeshTopology(4, 1), InvalidArgument);
  EXPECT_NO_THROW(MeshTopology(2, 2));
}

TEST(MeshTopology, EdgeNodesLackOutwardLinks) {
  MeshTopology t(3, 3);
  EXPECT_EQ(t.link(t.node_id(0, 0), MeshTopology::kWest), kInvalidChannel);
  EXPECT_EQ(t.link(t.node_id(0, 0), MeshTopology::kSouth), kInvalidChannel);
  EXPECT_NE(t.link(t.node_id(0, 0), MeshTopology::kEast), kInvalidChannel);
  EXPECT_NE(t.link(t.node_id(1, 1), MeshTopology::kWest), kInvalidChannel);
}

TEST(MeshTopology, XyRouteShapeAndHops) {
  MeshTopology t(4, 4, MeshRouting::XY);
  const auto r = t.unicast_route(t.node_id(0, 0), t.node_id(3, 2));
  EXPECT_EQ(r.hops(), 5);  // 3 east + 2 north
  EXPECT_EQ(r.port, MeshTopology::kEast);
  // X resolved before Y: first three links are all east links.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t.channel(r.links[static_cast<std::size_t>(i)]).dst -
                  t.channel(r.links[static_cast<std::size_t>(i)]).src,
              1);
  }
}

TEST(MeshTopology, XyHopsAreManhattanDistance) {
  MeshTopology t(5, 4, MeshRouting::XY);
  for (NodeId s = 0; s < t.num_nodes(); ++s) {
    for (NodeId d = 0; d < t.num_nodes(); ++d) {
      if (s == d) continue;
      const int manhattan = std::abs(t.x_of(s) - t.x_of(d)) + std::abs(t.y_of(s) - t.y_of(d));
      EXPECT_EQ(t.unicast_route(s, d).hops(), manhattan);
    }
  }
}

TEST(MeshTopology, XyStructuralValidation) {
  EXPECT_NO_THROW(validate_topology(MeshTopology(4, 4, MeshRouting::XY)));
  EXPECT_NO_THROW(validate_topology(MeshTopology(3, 5, MeshRouting::XY)));
  EXPECT_FALSE(MeshTopology(4, 4, MeshRouting::XY).supports_multicast());
}

TEST(MeshTopology, HamiltonianStructuralValidation) {
  EXPECT_NO_THROW(validate_topology(MeshTopology(4, 4, MeshRouting::Hamiltonian)));
  EXPECT_NO_THROW(validate_topology(MeshTopology(3, 3, MeshRouting::Hamiltonian)));
  EXPECT_TRUE(MeshTopology(4, 4, MeshRouting::Hamiltonian).supports_multicast());
}

TEST(MeshTopology, HamiltonianRoutesFollowLabels) {
  MeshTopology t(4, 4, MeshRouting::Hamiltonian);
  const auto& lab = t.labeling();
  for (NodeId s = 0; s < t.num_nodes(); ++s) {
    for (NodeId d = 0; d < t.num_nodes(); ++d) {
      if (s == d) continue;
      const auto r = t.unicast_route(s, d);
      EXPECT_EQ(r.hops(), std::abs(lab.label_of(d) - lab.label_of(s)));
      EXPECT_EQ(r.port, lab.label_of(d) > lab.label_of(s) ? MeshTopology::kHigh
                                                          : MeshTopology::kLow);
    }
  }
}

TEST(MeshTopology, DualPathMulticastSplitsByLabel) {
  MeshTopology t(4, 4, MeshRouting::Hamiltonian);
  const auto& lab = t.labeling();
  const NodeId s = lab.node_at(7);
  const std::vector<NodeId> dests = {lab.node_at(2), lab.node_at(9), lab.node_at(12),
                                     lab.node_at(5)};
  const auto streams = t.multicast_streams(s, dests);
  ASSERT_EQ(streams.size(), 2u);
  // High stream visits labels 9 then 12; low stream visits 5 then 2.
  const auto& high = streams[0].port == MeshTopology::kHigh ? streams[0] : streams[1];
  const auto& low = streams[0].port == MeshTopology::kHigh ? streams[1] : streams[0];
  ASSERT_EQ(high.stops.size(), 2u);
  EXPECT_EQ(high.stops[0].node, lab.node_at(9));
  EXPECT_EQ(high.stops[1].node, lab.node_at(12));
  EXPECT_EQ(high.hops(), 5);
  ASSERT_EQ(low.stops.size(), 2u);
  EXPECT_EQ(low.stops[0].node, lab.node_at(5));
  EXPECT_EQ(low.stops[1].node, lab.node_at(2));
  EXPECT_EQ(low.hops(), 5);
}

TEST(MeshTopology, MulticastOneSidedUsesOneStream) {
  MeshTopology t(4, 4, MeshRouting::Hamiltonian);
  const auto& lab = t.labeling();
  const auto streams = t.multicast_streams(lab.node_at(0), {lab.node_at(3), lab.node_at(6)});
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].port, MeshTopology::kHigh);
}

TEST(MeshTopology, MulticastRejectedInXyMode) {
  MeshTopology t(4, 4, MeshRouting::XY);
  EXPECT_THROW(t.multicast_streams(0, {1}), InvalidArgument);
}

TEST(MeshTopology, PortCountsByMode) {
  EXPECT_EQ(MeshTopology(4, 4, MeshRouting::XY).num_ports(), 4);
  EXPECT_EQ(MeshTopology(4, 4, MeshRouting::Hamiltonian).num_ports(), 2);
}

}  // namespace
}  // namespace quarc
