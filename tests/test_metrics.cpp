#include "quarc/sim/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace quarc::sim {
namespace {

TEST(Metrics, CountsOnlyMeasuredMessages) {
  Metrics m(4, 2);
  m.on_created(false, true);
  m.on_created(false, false);
  m.on_created(true, true);
  EXPECT_EQ(m.measured_created(), 2);
  EXPECT_EQ(m.total_created(), 3);
  EXPECT_FALSE(m.all_measured_done());
  m.on_unicast_done(10, true);
  EXPECT_FALSE(m.all_measured_done());
  m.on_multicast_done(20, true);
  EXPECT_TRUE(m.all_measured_done());
}

TEST(Metrics, UnmeasuredCompletionsIgnored) {
  Metrics m(4, 2);
  m.on_unicast_done(10, false);
  m.on_multicast_done(20, false);
  EXPECT_EQ(m.unicast_summary().count, 0);
  EXPECT_EQ(m.multicast_summary().count, 0);
  EXPECT_TRUE(m.all_measured_done());
}

TEST(Metrics, SummariesReflectSamples) {
  Metrics m(4, 2);
  for (Cycle latency : {10, 20, 30}) {
    m.on_created(false, true);
    m.on_unicast_done(latency, true);
  }
  const auto s = m.unicast_summary();
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
  EXPECT_EQ(s.min, 10.0);
  EXPECT_EQ(s.max, 30.0);
}

TEST(Metrics, StreamWaitsClampedAndPerPort) {
  Metrics m(4, 3);
  m.on_stream_done(0, 5.0, true);
  m.on_stream_done(0, -0.7, true);  // round-robin jitter clamps to zero
  m.on_stream_done(2, 1.0, true);
  m.on_stream_done(1, 9.0, false);  // unmeasured
  const auto waits = m.stream_wait_by_port();
  ASSERT_EQ(waits.size(), 3u);
  EXPECT_EQ(waits[0].count, 2);
  EXPECT_DOUBLE_EQ(waits[0].mean, 2.5);
  EXPECT_EQ(waits[1].count, 0);
  EXPECT_EQ(waits[2].count, 1);
}

TEST(Metrics, GroupWaitSummary) {
  Metrics m(4, 2);
  m.on_group_wait(4.0, true);
  m.on_group_wait(6.0, true);
  const auto s = m.group_wait_summary();
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_TRUE(std::isfinite(s.ci95));
}

TEST(Metrics, BatchCiNarrowsWithSamples) {
  Metrics small(8, 1), large(8, 1);
  for (int i = 0; i < 64; ++i) {
    small.on_created(false, true);
    small.on_unicast_done(10 + (i % 5), true);
  }
  for (int i = 0; i < 4096; ++i) {
    large.on_created(false, true);
    large.on_unicast_done(10 + (i % 5), true);
  }
  EXPECT_GT(small.unicast_summary().ci95, large.unicast_summary().ci95);
}

}  // namespace
}  // namespace quarc::sim
