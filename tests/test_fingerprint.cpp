#include "quarc/sweep/fingerprint.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "quarc/api/registry.hpp"
#include "quarc/api/scenario.hpp"
#include "quarc/traffic/pattern.hpp"

namespace quarc {
namespace {

api::Scenario canonical_mesh() {
  api::Scenario s;
  s.topology("mesh:8x8").pattern("random:6").alpha(0.05).message_length(32).seed(7);
  return s;
}

// ---------------------------------------------------------------- goldens
//
// Pinned hex digests for a handful of canonical scenarios. These must
// never change silently: a difference means either the canonical format
// changed (bump kFingerprintSchemaVersion and re-pin) or scenario
// assembly drifted (a bug — stale on-disk caches would be served for a
// different experiment).

TEST(Fingerprint, GoldenCanonicalTextForDefaultScenario) {
  api::Scenario s;  // quarc:16, no pattern, defaults everywhere
  const ScenarioFingerprint fp = s.fingerprint();
  EXPECT_EQ(fp.canonical,
            "fp_schema=4\n"
            "topology=quarc:16\n"
            "topology_digest=spec\n"
            "pattern=none\n"
            "pattern_seed=1\n"
            "pattern_digest=none\n"
            "alpha=0\n"
            "message_length=32\n"
            "seed=1\n"
            "run_sim=true\n"
            "warmup_cycles=5000\n"
            "measure_cycles=30000\n"
            "drain_cap_cycles=2000000\n"
            "buffer_depth=2\n"
            "batch_count=16\n"
            "max_queue_length=20000\n"
            "stall_watchdog=1000\n"
            "collect_stream_samples=false\n"
            "check_invariants=false\n"
            "invariant_check_interval=64\n"
            "solver_max_iterations=20000\n"
            "solver_tolerance=1e-09\n"
            "solver_damping=0.5\n"
            "solver_utilization_guard=0.999999\n"
            "solver_iteration=anderson\n"
            "solver_anderson_window=3\n"
            "solver_anderson_auto=true\n"
            "saturation_probe=ridders\n"
            "spine_points=4\n");
  EXPECT_EQ(fp.hash, fnv1a64(fp.canonical));
}

TEST(Fingerprint, GoldenDigests) {
  api::Scenario mesh = canonical_mesh();
  EXPECT_EQ(mesh.fingerprint().hex(), "8249c801e22ee1fe");

  api::Scenario cube;
  cube.topology("hypercube:4").pattern("localized:0.2:0.8:6").alpha(0.1).message_length(32).seed(
      11);
  EXPECT_EQ(cube.fingerprint().hex(), "8d54c093a0035033");

  api::Scenario quarc;
  quarc.topology("quarc:16").pattern("broadcast").alpha(0.05).message_length(16).seed(1);
  EXPECT_EQ(quarc.fingerprint().hex(), "e4104d0fa53cd2c0");
}

// ----------------------------------------------------------- stability

TEST(Fingerprint, StableAcrossRepeatedRunsAndThreadCounts) {
  const ScenarioFingerprint a = canonical_mesh().fingerprint();
  const ScenarioFingerprint b = canonical_mesh().fingerprint();
  EXPECT_EQ(a, b);

  // Thread and shard counts change how a sweep executes, never what a
  // point computes — they are excluded from the fingerprint by contract.
  api::Scenario threaded = canonical_mesh();
  threaded.threads(1);
  EXPECT_EQ(threaded.fingerprint(), a);
  threaded.threads(8);
  EXPECT_EQ(threaded.fingerprint(), a);
  threaded.shards(7);
  EXPECT_EQ(threaded.fingerprint(), a);
}

TEST(Fingerprint, RateIsExcluded) {
  api::Scenario s = canonical_mesh();
  const ScenarioFingerprint base = s.fingerprint();
  s.rate(0.0123);
  EXPECT_EQ(s.fingerprint(), base);  // rate is the cache key's other half
}

TEST(Fingerprint, EverySingleKnobChangeChangesTheFingerprint) {
  using Mutator = void (*)(api::Scenario&);
  const std::vector<std::pair<const char*, Mutator>> knobs = {
      {"topology", [](api::Scenario& s) { s.topology("mesh:4x4"); }},
      {"pattern", [](api::Scenario& s) { s.pattern("random:5"); }},
      {"pattern_family", [](api::Scenario& s) { s.pattern("uniform:6"); }},
      {"pattern_seed", [](api::Scenario& s) { s.pattern_seed(99); }},
      {"alpha", [](api::Scenario& s) { s.alpha(0.1); }},
      {"message_length", [](api::Scenario& s) { s.message_length(64); }},
      {"seed", [](api::Scenario& s) { s.seed(8); }},
      {"with_sim", [](api::Scenario& s) { s.with_sim(false); }},
      {"warmup", [](api::Scenario& s) { s.warmup(1234); }},
      {"measure", [](api::Scenario& s) { s.measure(4321); }},
      {"drain_cap", [](api::Scenario& s) { s.sim_config().drain_cap_cycles = 5; }},
      {"buffer_depth", [](api::Scenario& s) { s.sim_config().buffer_depth = 3; }},
      {"batch_count", [](api::Scenario& s) { s.sim_config().batch_count = 8; }},
      {"max_queue_length", [](api::Scenario& s) { s.sim_config().max_queue_length = 7; }},
      {"stall_watchdog", [](api::Scenario& s) { s.sim_config().stall_watchdog = 2; }},
      {"collect_stream_samples",
       [](api::Scenario& s) { s.sim_config().collect_stream_samples = true; }},
      {"check_invariants", [](api::Scenario& s) { s.sim_config().check_invariants = true; }},
      {"invariant_check_interval",
       [](api::Scenario& s) { s.sim_config().invariant_check_interval = 128; }},
      {"solver_max_iterations",
       [](api::Scenario& s) { s.model_options().solver.max_iterations = 999; }},
      {"solver_tolerance", [](api::Scenario& s) { s.model_options().solver.tolerance = 1e-7; }},
      {"solver_damping", [](api::Scenario& s) { s.model_options().solver.damping = 0.25; }},
      {"solver_utilization_guard",
       [](api::Scenario& s) { s.model_options().solver.utilization_guard = 0.97; }},
      {"solver_iteration",
       [](api::Scenario& s) { s.model_options().solver.iteration = SolverIteration::GaussSeidel; }},
      {"solver_anderson_window",
       [](api::Scenario& s) { s.model_options().solver.anderson_window = 5; }},
      {"solver_anderson_auto",
       [](api::Scenario& s) { s.model_options().solver.anderson_auto_window = false; }},
      {"saturation_probe",
       [](api::Scenario& s) { s.model_options().probe = SaturationProbe::Bisection; }},
      {"spine_points", [](api::Scenario& s) { s.spine_points(7); }},
  };

  const ScenarioFingerprint base = canonical_mesh().fingerprint();
  std::set<std::uint64_t> hashes = {base.hash};
  for (const auto& [name, mutate] : knobs) {
    api::Scenario s = canonical_mesh();
    mutate(s);
    const ScenarioFingerprint fp = s.fingerprint();
    EXPECT_NE(fp.hash, base.hash) << "knob '" << name << "' did not change the fingerprint";
    hashes.insert(fp.hash);
  }
  // All mutants are pairwise distinct too (no accidental canonical-text
  // collisions between knobs).
  EXPECT_EQ(hashes.size(), knobs.size() + 1);
}

TEST(Fingerprint, ExplicitPatternsAreDigestedByDestinations) {
  // Two escape-hatch patterns with identical describe() strings but
  // different destination sets must not collide: the fingerprint digests
  // the materialised sets, not just the spec text.
  auto scenario_with = [](std::vector<std::vector<NodeId>> dests) {
    api::Scenario s;
    s.topology("quarc:16").alpha(0.05).message_length(16).seed(3);
    s.pattern(std::make_shared<ExplicitPattern>(std::move(dests), "custom"));
    return s;
  };
  std::vector<std::vector<NodeId>> a(16), b(16);
  for (NodeId s = 0; s < 16; ++s) {
    a[static_cast<std::size_t>(s)] = {static_cast<NodeId>((s + 1) % 16)};
    b[static_cast<std::size_t>(s)] = {static_cast<NodeId>((s + 2) % 16)};
  }
  const ScenarioFingerprint fa = scenario_with(a).fingerprint();
  const ScenarioFingerprint fb = scenario_with(b).fingerprint();
  EXPECT_EQ(fa.canonical.size(), fb.canonical.size());
  EXPECT_NE(fa.hash, fb.hash);
}

TEST(Fingerprint, AdoptedTopologiesAreDigestedStructurally) {
  // Escape-hatch topologies are keyed by structure, not by their name()
  // string: two topology objects presented under the same spec text but
  // with different wiring must fingerprint differently, or a persistent
  // cache would serve one topology's latencies for the other.
  SweepConfig cfg;
  auto inputs_for = [&](const Topology& topo) {
    FingerprintInputs in;
    in.topology_spec = "custom-network";  // same label for both
    in.topology_from_spec = false;
    in.topology = &topo;
    in.pattern_spec = "none";
    in.num_nodes = topo.num_nodes();
    in.message_length = 32;
    in.seed = 1;
    in.sweep = &cfg;
    return in;
  };
  const auto mesh = api::make_topology("mesh:4x4");
  const auto torus = api::make_topology("torus:4x4");
  const ScenarioFingerprint fm = fingerprint_scenario(inputs_for(*mesh));
  const ScenarioFingerprint ft = fingerprint_scenario(inputs_for(*torus));
  EXPECT_NE(fm.hash, ft.hash);

  // Same structure -> same fingerprint (digesting is deterministic), and
  // the Scenario escape hatch routes through the structural digest.
  const ScenarioFingerprint fm2 = fingerprint_scenario(inputs_for(*api::make_topology("mesh:4x4")));
  EXPECT_EQ(fm.hash, fm2.hash);

  api::Scenario adopted;
  adopted.topology(api::make_topology("quarc:16"));
  api::Scenario by_spec;
  by_spec.topology("quarc:16");
  EXPECT_NE(adopted.fingerprint(), by_spec.fingerprint());  // "spec" vs digest
  EXPECT_NE(adopted.fingerprint().canonical.find("topology_digest="), std::string::npos);
}

TEST(Fingerprint, PrecompiledSpinePointerIsExcluded) {
  // SweepConfig::spine is an already-computed copy of what the
  // fingerprinted knobs (probe, spine_points, solver options) would build,
  // never an independent input: supplying one must not move the
  // fingerprint, or warm and cold sweeps of the same scenario would key
  // different cache files. spine_points itself IS an input (covered by
  // EverySingleKnobChangeChangesTheFingerprint).
  const auto topo = api::make_topology("quarc:16");
  Workload w;
  w.message_length = 32;
  const FlowGraph flows(*topo, w, FlowGating::RateInvariant);
  SweepConfig with, without;
  with.spine = std::make_shared<ContinuationSpine>(flows, 32);
  auto inputs_for = [](const SweepConfig& cfg) {
    FingerprintInputs in;
    in.topology_spec = "quarc:16";
    in.pattern_spec = "none";
    in.num_nodes = 16;
    in.message_length = 32;
    in.seed = 1;
    in.sweep = &cfg;
    return in;
  };
  EXPECT_EQ(fingerprint_scenario(inputs_for(with)), fingerprint_scenario(inputs_for(without)));
}

TEST(Fingerprint, HexIsFixedWidthLowercase) {
  ScenarioFingerprint fp;
  fp.hash = 0xABCULL;
  EXPECT_EQ(fp.hex(), "0000000000000abc");
  fp.hash = 0xFFFFFFFFFFFFFFFFULL;
  EXPECT_EQ(fp.hex(), "ffffffffffffffff");
  fp.hash = 0;
  EXPECT_EQ(fp.hex(), "0000000000000000");
}

TEST(Fingerprint, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171F73967E8ULL);
}

}  // namespace
}  // namespace quarc
