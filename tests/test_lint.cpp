// quarc-lint's own test suite: the engine's scanner primitives, the real
// tree (which must be clean), and the seeded-violation corpus under
// tests/lint_corpus/ (each violation must be flagged, each waiver
// respected).
//
// NB: oracle tokens are assembled by concatenation throughout — this file
// is itself one of the test TUs check 4 scans, and a verbatim token here
// would pin an oracle vacuously.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

using quarc::lint::Check;
using quarc::lint::Finding;
using quarc::lint::LintConfig;
using quarc::lint::LintReport;
using quarc::lint::run_lint;

const std::string kRoot = QUARC_SOURCE_ROOT;
const std::string kCorpus = kRoot + "/tests/lint_corpus";

std::string dump(const LintReport& rep) { return quarc::lint::format_report(rep); }

int count_check(const LintReport& rep, Check c) {
  return static_cast<int>(std::count_if(rep.findings.begin(), rep.findings.end(),
                                        [&](const Finding& f) { return f.check == c; }));
}

bool has_finding(const LintReport& rep, Check c, const std::string& needle) {
  return std::any_of(rep.findings.begin(), rep.findings.end(), [&](const Finding& f) {
    return f.check == c && f.message.find(needle) != std::string::npos;
  });
}

// ---------------------------------------------------------------- engine

TEST(QuarcLintEngine, StripCommentsRemovesCommentsKeepsStringsAndLayout) {
  const std::string src =
      "int a = 1; // trailing\n"
      "/* block\n   spans */ int b = 2;\n"
      "const char* s = \"// not a comment\";\n"
      "char c = '\\''; int d = 3; // tail\n";
  const std::string out = quarc::lint::strip_comments(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(out.size(), src.size());  // offsets preserved one-for-one
  EXPECT_EQ(out.find("trailing"), std::string::npos);
  EXPECT_EQ(out.find("spans"), std::string::npos);
  EXPECT_NE(out.find("int b = 2;"), std::string::npos);
  EXPECT_NE(out.find("\"// not a comment\""), std::string::npos);
  EXPECT_NE(out.find("int d = 3;"), std::string::npos);
}

TEST(QuarcLintEngine, HasTokenRespectsIdentifierBoundaries) {
  EXPECT_TRUE(quarc::lint::has_token("x = rand();", "rand"));
  EXPECT_TRUE(quarc::lint::has_token("std::rand()", "rand"));
  EXPECT_FALSE(quarc::lint::has_token("srand(7)", "rand"));
  EXPECT_FALSE(quarc::lint::has_token("randomized", "rand"));
  EXPECT_TRUE(quarc::lint::has_token("a::b::c", "a::b"));
  EXPECT_FALSE(quarc::lint::has_token("", "rand"));
}

TEST(QuarcLintEngine, ParsesRealSolverOptionsFields) {
  std::ifstream in(kRoot + "/src/quarc/model/solver.hpp");
  ASSERT_TRUE(in.is_open());
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto fields = quarc::lint::parse_struct_fields(content, "SolverOptions", {});
  std::vector<std::string> names;
  names.reserve(fields.size());
  for (const auto& f : fields) names.push_back(f.name);
  const std::vector<std::string> expected = {
      "max_iterations",  "tolerance",       "damping",
      "utilization_guard", "iteration",     "anderson_window",
      "anderson_auto_window"};
  EXPECT_EQ(names, expected);  // exact: a parser regression must be loud
}

TEST(QuarcLintEngine, ParsesRealSimConfigIncludingFunctionInitializedField) {
  std::ifstream in(kRoot + "/src/quarc/sim/simulator.hpp");
  ASSERT_TRUE(in.is_open());
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto fields =
      quarc::lint::parse_struct_fields(content, "SimConfig", {"Workload"});
  std::vector<std::string> names;
  for (const auto& f : fields) names.push_back(f.name);
  // engine's initializer is a function call — the parser must still see it.
  EXPECT_NE(std::find(names.begin(), names.end(), "engine"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "profile_phases"), names.end());
  const auto workload = std::find_if(fields.begin(), fields.end(),
                                     [](const auto& f) { return f.name == "workload"; });
  ASSERT_NE(workload, fields.end());
  EXPECT_TRUE(workload->composite);  // Workload is scanned in its own right
}

// ------------------------------------------------------------- clean tree

TEST(QuarcLint, CleanTreeHasZeroFindings) {
  const LintReport rep = run_lint(quarc::lint::default_config(kRoot));
  EXPECT_TRUE(rep.findings.empty()) << dump(rep);
  EXPECT_GT(rep.files_scanned, 100);  // the scan actually covered the tree
}

// ----------------------------------------------------------------- corpus

TEST(QuarcLintCorpus, UncoveredKnobFieldAndBadAllowlistAreFlagged) {
  LintConfig cfg;
  cfg.root = kCorpus + "/uncovered_knob";
  cfg.knob_structs = {{"src/knobs.hpp", "FakeOptions"}, {"src/knobs.hpp", "NestedOptions"}};
  cfg.fingerprint_tu = "src/fingerprint.cpp";
  cfg.allowlist = "allowlist.txt";
  const LintReport rep = run_lint(cfg);

  EXPECT_TRUE(has_finding(rep, Check::FingerprintCoverage, "FakeOptions::uncovered_knob"))
      << dump(rep);
  EXPECT_TRUE(has_finding(rep, Check::FingerprintCoverage, "no_such_token")) << dump(rep);
  EXPECT_TRUE(has_finding(rep, Check::FingerprintCoverage, "FakeOptions::ghost_knob"))
      << dump(rep);
  EXPECT_TRUE(has_finding(rep, Check::FingerprintCoverage, "UnknownStruct::any_field"))
      << dump(rep);
  // Covered, aliased, allowlisted and composite fields are all clean.
  // NB "::covered_knob", because plain "covered_knob" is a substring of the
  // expected uncovered_knob finding.
  EXPECT_FALSE(has_finding(rep, Check::FingerprintCoverage, "::covered_knob")) << dump(rep);
  EXPECT_FALSE(has_finding(rep, Check::FingerprintCoverage, "aliased_knob")) << dump(rep);
  EXPECT_FALSE(has_finding(rep, Check::FingerprintCoverage, "allowlisted_knob")) << dump(rep);
  EXPECT_FALSE(has_finding(rep, Check::FingerprintCoverage, "::nested")) << dump(rep);
  EXPECT_FALSE(has_finding(rep, Check::FingerprintCoverage, "nested_knob")) << dump(rep);
  EXPECT_EQ(count_check(rep, Check::FingerprintCoverage), 4) << dump(rep);
}

TEST(QuarcLintCorpus, UnorderedSerializerIterationIsFlaggedWaiverRespected) {
  LintConfig cfg;
  cfg.root = kCorpus + "/unordered_serializer";
  cfg.ordered_iteration_tus = {"src/ser.cpp"};
  const LintReport rep = run_lint(cfg);
  EXPECT_EQ(count_check(rep, Check::OrderedIteration), 2) << dump(rep);
  // The range-for and the .begin() walk are flagged; the waived sum is not.
  std::vector<int> lines;
  for (const Finding& f : rep.findings) lines.push_back(f.line);
  EXPECT_TRUE(std::is_sorted(lines.begin(), lines.end()));
  EXPECT_TRUE(has_finding(rep, Check::OrderedIteration, "index_")) << dump(rep);
}

TEST(QuarcLintCorpus, BannedRandomnessAndWallClockAreFlagged) {
  LintConfig cfg;
  cfg.root = kCorpus + "/banned_random";
  cfg.hygiene_dirs = {"src"};
  const LintReport rep = run_lint(cfg);
  EXPECT_TRUE(has_finding(rep, Check::DeterminismHygiene, "'rand()'")) << dump(rep);
  EXPECT_TRUE(has_finding(rep, Check::DeterminismHygiene, "'srand()'")) << dump(rep);
  EXPECT_TRUE(has_finding(rep, Check::DeterminismHygiene, "'time()'")) << dump(rep);
  EXPECT_TRUE(has_finding(rep, Check::DeterminismHygiene, "system_clock")) << dump(rep);
  EXPECT_TRUE(has_finding(rep, Check::DeterminismHygiene, "random_device")) << dump(rep);
  // steady_clock and *_time( identifiers are clean.
  EXPECT_EQ(count_check(rep, Check::DeterminismHygiene), 5) << dump(rep);
}

TEST(QuarcLintCorpus, RandomDeviceIsAllowedInExemptSeedingModule) {
  LintConfig cfg;
  cfg.root = kCorpus + "/banned_random";
  cfg.hygiene_dirs = {"src"};
  cfg.hygiene_exempt = {"src/solver_bits.cpp"};
  const LintReport rep = run_lint(cfg);
  EXPECT_FALSE(has_finding(rep, Check::DeterminismHygiene, "random_device")) << dump(rep);
  EXPECT_EQ(count_check(rep, Check::DeterminismHygiene), 4) << dump(rep);
}

TEST(QuarcLintCorpus, IostreamFloatFormattingInSerializerIsFlaggedWaiverRespected) {
  LintConfig cfg;
  cfg.root = kCorpus + "/float_serializer";
  cfg.serializer_tus = {"src/ser_float.cpp"};
  const LintReport rep = run_lint(cfg);
  EXPECT_EQ(count_check(rep, Check::DeterminismHygiene), 1) << dump(rep);
  EXPECT_TRUE(has_finding(rep, Check::DeterminismHygiene, "setprecision")) << dump(rep);
}

TEST(QuarcLintCorpus, MissingOraclePinIsFlagged) {
  LintConfig cfg;
  cfg.root = kCorpus + "/missing_oracle";
  cfg.test_dir = "tests";
  // Assembled by concatenation: see the file comment.
  const std::string sim_oracle = std::string("SimEngine::Refer") + "ence";
  cfg.oracle_tokens = {std::string("SolverIteration::GaussSei") + "del",
                       std::string("LatencyAssembly::DirectW") + "alk", sim_oracle};
  const LintReport rep = run_lint(cfg);
  EXPECT_EQ(count_check(rep, Check::OraclePinning), 1) << dump(rep);
  EXPECT_TRUE(has_finding(rep, Check::OraclePinning, sim_oracle)) << dump(rep);
}

}  // namespace
