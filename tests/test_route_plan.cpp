// RoutePlan equivalence and sharing guarantees.
//
// The refactor contract: a RoutePlan compiled from (topology, pattern) is
// indistinguishable from deriving every route and stream directly —
// link-for-link, stop-for-stop, digest-for-digest — and a plan-backed
// sweep serialises byte-identically to solving every point against the
// topology directly. These tests pin that contract across all shipped
// topology families.
#include "quarc/route/route_plan.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "quarc/api/registry.hpp"
#include "quarc/api/scenario.hpp"
#include "quarc/model/channel_graph.hpp"
#include "quarc/model/performance_model.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/sweep/fingerprint.hpp"
#include "quarc/sweep/sweep.hpp"
#include "quarc/traffic/pattern.hpp"
#include "quarc/util/error.hpp"

namespace quarc {
namespace {

/// One spec per shipped topology family, each with a pattern that
/// exercises its multicast path (hardware streams where supported,
/// software expansion elsewhere).
const std::vector<std::pair<const char*, const char*>> kCases = {
    {"quarc:16", "broadcast"},     {"quarc1p:16", "random:5"}, {"spidergon:16", "random:5"},
    {"mesh:4x4", "uniform:4"},     {"mesh-ham:4x4", "broadcast"},
    {"torus:4x4", "neighborhood-wrap:2:3"},                    {"hypercube:4", "uniform:4"},
};

struct Built {
  std::unique_ptr<Topology> topo;
  std::shared_ptr<const MulticastPattern> pattern;
  RoutePlan plan;
};

Built build(const char* topo_spec, const char* pattern_spec) {
  auto topo = api::make_topology(topo_spec);
  Rng rng(11);
  auto pattern = api::make_pattern(pattern_spec, topo->num_nodes(), rng);
  RoutePlan plan(*topo, pattern.get());
  return Built{std::move(topo), std::move(pattern), std::move(plan)};
}

TEST(RoutePlan, RouteViewsMatchDirectRoutesLinkForLink) {
  for (const auto& [topo_spec, pattern_spec] : kCases) {
    SCOPED_TRACE(topo_spec);
    const Built b = build(topo_spec, pattern_spec);
    const int n = b.topo->num_nodes();
    int max_hops = 0;
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId d = 0; d < n; ++d) {
        if (s == d) continue;
        SCOPED_TRACE(std::to_string(s) + "->" + std::to_string(d));
        const UnicastRoute direct = b.topo->unicast_route(s, d);
        const RouteView view = b.plan.route(s, d);
        EXPECT_EQ(view.source, direct.source);
        EXPECT_EQ(view.dest, direct.dest);
        EXPECT_EQ(view.port, direct.port);
        EXPECT_EQ(view.injection, direct.injection);
        EXPECT_EQ(view.ejection, direct.ejection);
        ASSERT_EQ(view.links.size(), direct.links.size());
        ASSERT_EQ(view.link_vcs.size(), direct.link_vcs.size());
        for (std::size_t i = 0; i < direct.links.size(); ++i) {
          EXPECT_EQ(view.links[i], direct.links[i]) << "link " << i;
          EXPECT_EQ(view.link_vcs[i], direct.link_vcs[i]) << "vc " << i;
        }
        max_hops = std::max(max_hops, direct.hops());
      }
    }
    EXPECT_EQ(b.plan.max_route_hops(), max_hops);
    EXPECT_EQ(b.plan.max_route_hops(), b.topo->diameter());
  }
}

TEST(RoutePlan, StreamViewsMatchDirectStreamsStopForStop) {
  for (const auto& [topo_spec, pattern_spec] : kCases) {
    SCOPED_TRACE(topo_spec);
    const Built b = build(topo_spec, pattern_spec);
    const int n = b.topo->num_nodes();
    EXPECT_EQ(b.plan.hardware_streams(), b.topo->supports_multicast());
    for (NodeId s = 0; s < n; ++s) {
      SCOPED_TRACE("source " + std::to_string(s));
      const auto& dests = b.pattern->destinations(s);
      const auto plan_dests = b.plan.multicast_dests(s);
      ASSERT_EQ(plan_dests.size(), dests.size());
      for (std::size_t i = 0; i < dests.size(); ++i) EXPECT_EQ(plan_dests[i], dests[i]);

      if (!b.topo->supports_multicast()) {
        EXPECT_EQ(b.plan.stream_count(s), 0u);
        int max_hops = 0;
        for (NodeId d : dests) max_hops = std::max(max_hops, b.topo->unicast_route(s, d).hops());
        EXPECT_EQ(b.plan.multicast_max_hops(s), max_hops);
        EXPECT_EQ(b.plan.multicast_stop_count(s), static_cast<int>(dests.size()));
        continue;
      }
      const auto direct = dests.empty() ? std::vector<MulticastStream>{}
                                        : b.topo->multicast_streams(s, dests);
      ASSERT_EQ(b.plan.stream_count(s), direct.size());
      int max_hops = 0;
      int stops = 0;
      for (std::size_t c = 0; c < direct.size(); ++c) {
        SCOPED_TRACE("stream " + std::to_string(c));
        const MulticastStream& ds = direct[c];
        const StreamView view = b.plan.stream(s, c);
        EXPECT_EQ(view.source, ds.source);
        EXPECT_EQ(view.port, ds.port);
        EXPECT_EQ(view.injection, ds.injection);
        ASSERT_EQ(view.links.size(), ds.links.size());
        ASSERT_EQ(view.link_vcs.size(), ds.link_vcs.size());
        for (std::size_t i = 0; i < ds.links.size(); ++i) {
          EXPECT_EQ(view.links[i], ds.links[i]) << "link " << i;
          EXPECT_EQ(view.link_vcs[i], ds.link_vcs[i]) << "vc " << i;
        }
        ASSERT_EQ(view.stops.size(), ds.stops.size());
        for (std::size_t i = 0; i < ds.stops.size(); ++i) {
          EXPECT_EQ(view.stops[i].hop, ds.stops[i].hop) << "stop " << i;
          EXPECT_EQ(view.stops[i].node, ds.stops[i].node) << "stop " << i;
          EXPECT_EQ(view.stops[i].ejection, ds.stops[i].ejection) << "stop " << i;
        }
        max_hops = std::max(max_hops, ds.hops());
        stops += static_cast<int>(ds.stops.size());
      }
      EXPECT_EQ(b.plan.multicast_max_hops(s), max_hops);
      EXPECT_EQ(b.plan.multicast_stop_count(s), stops);
    }
    // The plan-level summary is the max over both route and stream hops
    // (the per-source terms were verified against direct derivation
    // above).
    int expected_max = b.plan.max_route_hops();
    for (NodeId s = 0; s < n; ++s) {
      expected_max = std::max(expected_max, b.plan.multicast_max_hops(s));
    }
    EXPECT_EQ(b.plan.max_hops(), expected_max);
  }
}

TEST(RoutePlan, UnicastOnlyScenarioIgnoresAnAttachedPattern) {
  // alpha = 0: the pattern is never used, so a pattern that does not fit
  // the topology must be neither compiled nor validated (the pre-plan
  // behaviour). Raising alpha makes the mismatch real — then it throws.
  Rng rng(1);
  const auto oversized = api::make_pattern("random:4", 64, rng);  // 64-node pattern
  api::Scenario s;
  s.topology("mesh:4x4").pattern(oversized).alpha(0.0).rate(0.002);
  EXPECT_NO_THROW(s.run_model());
  s.alpha(0.05);
  EXPECT_THROW(s.run_model(), InvalidArgument);
}

TEST(RoutePlan, ChannelGraphFromPlanIsIdenticalToDirect) {
  for (const auto& [topo_spec, pattern_spec] : kCases) {
    SCOPED_TRACE(topo_spec);
    const Built b = build(topo_spec, pattern_spec);
    Workload load;
    load.message_rate = 0.004;
    load.multicast_fraction = 0.05;
    load.message_length = 32;
    load.pattern = b.pattern;
    const ChannelGraph direct(*b.topo, load);
    const ChannelGraph planned(b.plan, load);
    for (ChannelId c = 0; c < b.topo->num_channels(); ++c) {
      EXPECT_EQ(planned.lambda(c), direct.lambda(c)) << "channel " << c;
      EXPECT_EQ(planned.outgoing(c), direct.outgoing(c)) << "channel " << c;
    }
  }
}

TEST(RoutePlan, StructuralDigestMatchesThrowawayCompile) {
  // The fingerprint layer digests the caller's plan when provided and
  // compiles a throwaway one otherwise; both must produce the same
  // canonical text, or a Scenario-attached cache would re-key entries an
  // externally fingerprinted run wrote.
  SweepConfig cfg;
  const auto topo = api::make_topology("quarc:16");
  Rng rng(3);
  const auto pattern = api::make_pattern("random:4", topo->num_nodes(), rng);
  const RoutePlan plan(*topo, pattern.get());

  FingerprintInputs in;
  in.topology_spec = "adopted-quarc";
  in.topology_from_spec = false;
  in.topology = topo.get();
  in.pattern_spec = "random:4";
  in.pattern = pattern.get();
  in.num_nodes = topo->num_nodes();
  in.alpha = 0.05;
  in.message_length = 32;
  in.seed = 1;
  in.sweep = &cfg;
  const ScenarioFingerprint without_plan = fingerprint_scenario(in);
  in.plan = &plan;
  const ScenarioFingerprint with_plan = fingerprint_scenario(in);
  EXPECT_EQ(with_plan.canonical, without_plan.canonical);
  EXPECT_EQ(with_plan.hash, without_plan.hash);
}

TEST(RoutePlan, ScenarioCompilesThePlanOncePerAssembly) {
  api::Scenario s;
  s.topology("quarc:16").pattern("random:4").alpha(0.05).message_length(16).seed(5);
  const RoutePlan* first = &s.route_plan();
  s.rate(0.003);          // workload knobs do not touch routing
  s.run_model();          // repeated validation must not recompile
  EXPECT_EQ(&s.route_plan(), first);

  s.seed(6);              // spec patterns are seed-drawn: plan changes
  EXPECT_NE(&s.route_plan(), first);
}

// The headline byte-identity guarantee: a Scenario sweep (one shared
// plan for all points, threads and shards) serialises exactly the bytes
// produced by solving every point directly against the topology — the
// pre-refactor execution shape. Covers a hardware-multicast and a
// software-multicast topology.
TEST(RoutePlan, PlanBackedSweepIsByteIdenticalToDirectPerPointRuns) {
  struct Case {
    const char* topo_spec;
    const char* pattern_spec;
  };
  for (const Case& c : {Case{"quarc:16", "random:4"}, Case{"torus:4x4", "neighborhood-wrap:2:3"}}) {
    SCOPED_TRACE(c.topo_spec);
    const std::uint64_t seed = 5;
    const std::vector<double> rates = {0.001, 0.002, 0.003};

    api::Scenario scenario;
    scenario.topology(c.topo_spec)
        .pattern(c.pattern_spec)
        .alpha(0.05)
        .message_length(16)
        .seed(seed)
        .warmup(500)
        .measure(4000)
        .shards(2)
        // The direct reference below solves each point standalone from the
        // zero-load seed; continuation seeding would move low-order bits,
        // so this oracle pins the unseeded path (the sweep suite covers
        // spine-seeded determinism separately).
        .spine_points(0);
    std::ostringstream planned;
    scenario.run_sweep(rates).write_json(planned);

    // Direct reference: identical assembly, but every point constructs
    // its own model and simulator straight from the Topology.
    const auto topo = api::make_topology(c.topo_spec);
    Rng rng(seed);
    const auto pattern = api::make_pattern(c.pattern_spec, topo->num_nodes(), rng);
    Workload base;
    base.multicast_fraction = 0.05;
    base.message_length = 16;
    base.pattern = pattern;

    api::ResultSet reference;
    reference.topology = c.topo_spec;
    reference.topology_name = topo->name();
    reference.nodes = topo->num_nodes();
    reference.ports = topo->num_ports();
    reference.diameter = topo->diameter();
    reference.pattern = c.pattern_spec;
    reference.alpha = 0.05;
    reference.message_length = 16;
    reference.seed = seed;
    {
      // ResultSet metadata quotes the *configured* (pre-sweep) rate; the
      // Scenario above never set one, so it reports the builder default.
      Workload described = base;
      described.message_rate = 0.004;
      reference.workload = described.describe();
    }
    for (const double rate : rates) {
      Workload w = base;
      w.message_rate = rate;
      RatePointResult point;
      point.rate = rate;
      point.model = PerformanceModel(*topo, w).evaluate();
      sim::SimConfig sc;
      sc.workload = w;
      sc.seed = sweep_point_seed(seed, rate);
      sc.warmup_cycles = 500;
      sc.measure_cycles = 4000;
      sim::Simulator simulator(*topo, sc);
      point.sim = simulator.run();
      point.sim_run = true;
      reference.rows.push_back(api::ResultRow::from_point(point));
    }
    std::ostringstream direct;
    reference.write_json(direct);
    EXPECT_EQ(planned.str(), direct.str());
  }
}

TEST(RoutePlan, SimulatorFromPlanMatchesSimulatorFromTopology) {
  const Built b = build("quarc:16", "random:4");
  sim::SimConfig sc;
  sc.workload.message_rate = 0.004;
  sc.workload.multicast_fraction = 0.1;
  sc.workload.message_length = 16;
  sc.workload.pattern = b.pattern;
  sc.seed = 99;
  sc.warmup_cycles = 500;
  sc.measure_cycles = 4000;
  const sim::SimResult from_topo = sim::Simulator(*b.topo, sc).run();
  const sim::SimResult from_plan = sim::Simulator(b.plan, sc).run();
  EXPECT_EQ(from_plan.unicast_latency.mean, from_topo.unicast_latency.mean);
  EXPECT_EQ(from_plan.multicast_latency.mean, from_topo.multicast_latency.mean);
  EXPECT_EQ(from_plan.cycles_run, from_topo.cycles_run);
  EXPECT_EQ(from_plan.messages_generated, from_topo.messages_generated);
  EXPECT_EQ(from_plan.flits_injected, from_topo.flits_injected);
  EXPECT_EQ(from_plan.flits_absorbed, from_topo.flits_absorbed);
  EXPECT_EQ(from_plan.channel_utilization, from_topo.channel_utilization);
}

TEST(RoutePlan, MismatchedPatternIsRejected) {
  const auto topo = api::make_topology("quarc:16");
  Rng rng(1);
  const auto a = api::make_pattern("random:4", 16, rng);
  const auto other = api::make_pattern("random:4", 16, rng);
  const RoutePlan plan(*topo, a.get());
  Workload load;
  load.message_rate = 0.004;
  load.multicast_fraction = 0.05;
  load.message_length = 16;
  load.pattern = other;  // different object: plan identity check must fire
  EXPECT_THROW(ChannelGraph(plan, load), InvalidArgument);
  EXPECT_THROW(PerformanceModel(plan, load), InvalidArgument);
}

}  // namespace
}  // namespace quarc
