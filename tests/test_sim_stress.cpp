// Stress and robustness: high load near saturation on every topology must
// never trip the deadlock canary (dateline VCs, leaf-ordered ejection
// acquisition), with small buffers and both port schemes.
#include "quarc/sim/simulator.hpp"

#include <gtest/gtest.h>

#include "quarc/topo/mesh.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/topo/spidergon.hpp"
#include "quarc/topo/torus.hpp"
#include "quarc/traffic/pattern.hpp"

namespace quarc {
namespace {

using sim::SimConfig;
using sim::Simulator;
using sim::SimResult;

SimConfig stress_config(double rate, double alpha, int msg,
                        std::shared_ptr<const MulticastPattern> pattern, int buffers) {
  SimConfig c;
  c.workload.message_rate = rate;
  c.workload.multicast_fraction = alpha;
  c.workload.message_length = msg;
  c.workload.pattern = std::move(pattern);
  c.warmup_cycles = 1000;
  c.measure_cycles = 20000;
  c.drain_cap_cycles = 60000;   // bounded: overloaded runs simply time out
  c.max_queue_length = 2000;    // bounded memory
  c.buffer_depth = buffers;
  c.seed = 3;
  // Stress runs double as invariant sweeps: flit conservation, buffer
  // bounds and allocation consistency are validated throughout.
  c.check_invariants = true;
  return c;
}

// The assertion here is implicit: the simulator aborts the process if its
// deadlock watchdog fires. Each test passing means sustained progress.

TEST(SimStress, QuarcNearSaturationMixedTraffic) {
  QuarcTopology topo(16);
  for (int buffers : {1, 2, 4}) {
    SimConfig c = stress_config(0.05, 0.1, 16, RingRelativePattern::broadcast(16), buffers);
    const SimResult r = Simulator(topo, c).run();
    EXPECT_GT(r.flits_absorbed, 0) << "buffers=" << buffers;
  }
}

TEST(SimStress, QuarcPureBroadcastOverload) {
  QuarcTopology topo(16);
  SimConfig c = stress_config(0.05, 1.0, 16, RingRelativePattern::broadcast(16), 2);
  const SimResult r = Simulator(topo, c).run();
  EXPECT_GT(r.flits_absorbed, 0);
}

TEST(SimStress, QuarcWrapHeavyPattern) {
  // Localized pattern forcing long rim walks across the dateline from all
  // sources at once — the worst case for rim-ring cyclic waiting.
  QuarcTopology topo(16);
  auto pattern = std::make_shared<RingRelativePattern>(16, std::vector<int>{3, 4});
  SimConfig c = stress_config(0.08, 0.5, 16, pattern, 1);
  const SimResult r = Simulator(topo, c).run();
  EXPECT_GT(r.flits_absorbed, 0);
}

TEST(SimStress, SpidergonOverloadWithSoftwareBroadcast) {
  SpidergonTopology topo(16);
  SimConfig c = stress_config(0.03, 0.2, 16, RingRelativePattern::broadcast(16), 2);
  const SimResult r = Simulator(topo, c).run();
  EXPECT_GT(r.flits_absorbed, 0);
}

TEST(SimStress, OnePortQuarcOverload) {
  QuarcTopology topo(16, PortScheme::OnePort);
  SimConfig c = stress_config(0.04, 0.3, 16, RingRelativePattern::broadcast(16), 2);
  const SimResult r = Simulator(topo, c).run();
  EXPECT_GT(r.flits_absorbed, 0);
}

TEST(SimStress, MeshHamiltonianOverload) {
  MeshTopology mesh(4, 4, MeshRouting::Hamiltonian);
  const auto& lab = mesh.labeling();
  std::vector<std::vector<NodeId>> dests(16);
  for (NodeId s = 0; s < 16; ++s) {
    std::vector<NodeId> v;
    for (int off : {-5, 4, 9}) {
      const int l = lab.label_of(s) + off;
      if (l >= 0 && l < 16) v.push_back(lab.node_at(l));
    }
    dests[static_cast<std::size_t>(s)] = v;
  }
  SimConfig c = stress_config(0.05, 0.3, 16,
                              std::make_shared<ExplicitPattern>(dests, "stress"), 1);
  const SimResult r = Simulator(mesh, c).run();
  EXPECT_GT(r.flits_absorbed, 0);
}

TEST(SimStress, MeshXyUnicastOverload) {
  MeshTopology mesh(4, 4, MeshRouting::XY);
  SimConfig c = stress_config(0.1, 0.0, 16, nullptr, 1);
  const SimResult r = Simulator(mesh, c).run();
  EXPECT_GT(r.flits_absorbed, 0);
}

TEST(SimStress, TorusUnicastOverloadSmallBuffers) {
  TorusTopology torus(4, 4);
  SimConfig c = stress_config(0.1, 0.0, 17, nullptr, 1);
  const SimResult r = Simulator(torus, c).run();
  EXPECT_GT(r.flits_absorbed, 0);
}

TEST(SimStress, LongMessagesSmallBuffers) {
  QuarcTopology topo(16);
  SimConfig c = stress_config(0.01, 0.1, 64, RingRelativePattern::broadcast(16), 1);
  const SimResult r = Simulator(topo, c).run();
  EXPECT_GT(r.flits_absorbed, 0);
}

TEST(SimStress, ModerateLoadStaysStableAndCompletes) {
  // Below saturation the run must finish cleanly even with buffers of 1.
  QuarcTopology topo(16);
  SimConfig c = stress_config(0.004, 0.05, 16, RingRelativePattern::broadcast(16), 1);
  c.drain_cap_cycles = 500000;
  c.max_queue_length = 20000;
  const SimResult r = Simulator(topo, c).run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.stable);
}

}  // namespace
}  // namespace quarc
