// FlowGraph CSR structure, scaled ChannelGraph views, and warm-started
// solver determinism.
//
// The contract under test: a FlowGraph compiled once per (plan, shape) is
// byte-equivalent — through every consumer — to the historical per-point
// accumulation; rows are sorted so edge lookup is a binary search; and
// the solver's zero-load warm start plus workspace reuse never change a
// single byte of any solution, on any status path (Converged, Saturated
// via the utilization guard, MaxIterationsReached).
#include "quarc/model/flow_graph.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "quarc/api/registry.hpp"
#include "quarc/model/channel_graph.hpp"
#include "quarc/model/performance_model.hpp"
#include "quarc/model/solver.hpp"
#include "quarc/sweep/sweep.hpp"
#include "quarc/traffic/pattern.hpp"
#include "quarc/util/error.hpp"
#include "quarc/util/rng.hpp"

namespace quarc {
namespace {

Workload fig6_load(const Topology& topo, double rate = 0.004, double alpha = 0.05) {
  Workload w;
  w.message_rate = rate;
  w.multicast_fraction = alpha;
  w.message_length = 32;
  if (alpha > 0.0) {
    Rng rng(7);
    w.pattern = api::make_pattern("random:3", topo.num_nodes(), rng);
  }
  return w;
}

/// Historical per-point accumulation (the pre-FlowGraph ChannelGraph
/// algorithm, at the workload's actual rates), kept here as the reference
/// the CSR must reproduce.
struct Reference {
  std::vector<double> lambda;
  std::map<std::pair<ChannelId, ChannelId>, double> flows;

  Reference(const RoutePlan& plan, const Workload& load) {
    const Topology& topo = plan.topology();
    lambda.assign(static_cast<std::size_t>(topo.num_channels()), 0.0);
    const int n = topo.num_nodes();
    auto add_route = [&](const RouteView& r, double rate) {
      lambda[static_cast<std::size_t>(r.injection)] += rate;
      ChannelId prev = r.injection;
      for (ChannelId link : r.links) {
        lambda[static_cast<std::size_t>(link)] += rate;
        flows[{prev, link}] += rate;
        prev = link;
      }
      lambda[static_cast<std::size_t>(r.ejection)] += rate;
      flows[{prev, r.ejection}] += rate;
    };
    const double per_dest = load.unicast_rate() / static_cast<double>(n - 1);
    if (per_dest > 0.0) {
      for (NodeId s = 0; s < n; ++s) {
        for (NodeId d = 0; d < n; ++d) {
          if (s != d) add_route(plan.route(s, d), per_dest);
        }
      }
    }
    const double mc = load.multicast_rate();
    if (mc > 0.0) {
      for (NodeId s = 0; s < n; ++s) {
        if (plan.multicast_dests(s).empty()) continue;
        if (plan.hardware_streams()) {
          for (std::size_t i = 0; i < plan.stream_count(s); ++i) {
            const StreamView st = plan.stream(s, i);
            lambda[static_cast<std::size_t>(st.injection)] += mc;
            ChannelId prev = st.injection;
            for (ChannelId link : st.links) {
              lambda[static_cast<std::size_t>(link)] += mc;
              flows[{prev, link}] += mc;
              prev = link;
            }
            for (const MulticastStop& stop : st.stops) {
              lambda[static_cast<std::size_t>(stop.ejection)] += mc;
            }
            flows[{prev, st.stops.back().ejection}] += mc;
          }
        } else {
          for (NodeId d : plan.multicast_dests(s)) add_route(plan.route(s, d), mc);
        }
      }
    }
  }
};

TEST(FlowGraph, MatchesHistoricalAccumulationAcrossTopologies) {
  for (const char* spec : {"quarc:16", "quarc:32", "mesh:4x4", "torus:4x4", "hypercube:4",
                           "spidergon:16"}) {
    const auto topo = api::make_topology(spec);
    const Workload load = fig6_load(*topo);
    const RoutePlan plan(*topo, load.pattern.get());
    const Reference ref(plan, load);
    const ChannelGraph g(plan, load);

    for (ChannelId c = 0; c < topo->num_channels(); ++c) {
      EXPECT_NEAR(g.lambda(c), ref.lambda[static_cast<std::size_t>(c)],
                  1e-15 + 1e-12 * ref.lambda[static_cast<std::size_t>(c)])
          << spec << " channel " << c;
      // Row contents match the reference flow map exactly (same addends,
      // same merge), and no edge exists that the reference lacks.
      double row_sum = 0.0;
      ChannelId prev_next = kInvalidChannel;
      for (const auto& [next, rate] : g.outgoing(c)) {
        EXPECT_GT(next, prev_next) << spec << ": row of " << c << " not sorted/unique";
        prev_next = next;
        const auto it = ref.flows.find({c, next});
        ASSERT_NE(it, ref.flows.end()) << spec << ": spurious edge " << c << "->" << next;
        EXPECT_NEAR(rate, it->second, 1e-15 + 1e-12 * it->second);
        row_sum += rate;
      }
      (void)row_sum;
    }
    std::size_t ref_edges = 0;
    for (const auto& [key, rate] : ref.flows) {
      (void)rate;
      ++ref_edges;
      EXPECT_GT(g.transition_rate(key.first, key.second), 0.0);
    }
    EXPECT_EQ(g.flow_graph().flow_count(), ref_edges) << spec;
  }
}

TEST(FlowGraph, TransitionRateBinarySearchOnHighDegreeQuarcNode) {
  // Broadcast on a 64-node Quarc maximises row fanout (rim channels feed
  // the next rim link plus per-direction ejections; injection channels
  // feed their port's first link for every unicast destination class).
  const auto topo = api::make_topology("quarc:64");
  Workload load = fig6_load(*topo, 0.004, 0.5);
  load.pattern = RingRelativePattern::broadcast(topo->num_nodes());
  const RoutePlan plan(*topo, load.pattern.get());
  const ChannelGraph g(plan, load);
  const FlowGraph& flows = g.flow_graph();

  // Find the highest-degree row and sanity-check it branches (QUARC rows
  // top out at 2 — rim-continue plus ejection — the binary search must
  // nonetheless agree with a scan on every row, dense or not).
  ChannelId dense = 0;
  for (ChannelId c = 0; c < topo->num_channels(); ++c) {
    if (flows.degree(c) > flows.degree(dense)) dense = c;
  }
  ASSERT_GE(flows.degree(dense), 2u) << "expected a branching QUARC channel";

  // The O(log deg) lookup agrees with a linear scan of the row for every
  // present neighbour, and returns 0 for every absent channel id.
  for (ChannelId c = 0; c < topo->num_channels(); ++c) {
    std::map<ChannelId, double> linear;
    for (const auto& [next, rate] : g.outgoing(c)) linear[next] = rate;
    for (ChannelId j = 0; j < topo->num_channels(); ++j) {
      const auto it = linear.find(j);
      const double expected = it == linear.end() ? 0.0 : it->second;
      ASSERT_DOUBLE_EQ(g.transition_rate(c, j), expected) << c << "->" << j;
    }
  }
}

TEST(FlowGraph, ScaledViewIsBitIdenticalToExactBuild) {
  // The rate-invariant structure scaled to a point's rate must produce
  // exactly the bytes the exact per-point build produces: the unit pools
  // are accumulated by the same arithmetic, only the gates differ (and
  // they agree for every positive rate).
  const auto topo = api::make_topology("quarc:16");
  const Workload base = fig6_load(*topo);
  const RoutePlan plan(*topo, base.pattern.get());
  const FlowGraph shared(plan, base);  // FlowGating::RateInvariant
  for (const double rate : {0.001, 0.004, 0.02}) {
    Workload w = base;
    w.message_rate = rate;
    const ChannelGraph exact(plan, w);
    const ChannelGraph scaled(shared, rate);
    for (ChannelId c = 0; c < topo->num_channels(); ++c) {
      ASSERT_EQ(exact.lambda(c), scaled.lambda(c));
      ASSERT_TRUE(exact.outgoing(c) == scaled.outgoing(c));
    }
    ASSERT_EQ(exact.total_injection_rate(), scaled.total_injection_rate());
  }
}

TEST(FlowGraph, ZeroRateExactBuildIsEmpty) {
  const auto topo = api::make_topology("quarc:16");
  Workload w = fig6_load(*topo, 0.0, 0.0);
  const ChannelGraph g(*topo, w);
  for (ChannelId c = 0; c < topo->num_channels(); ++c) {
    EXPECT_EQ(g.lambda(c), 0.0);
    EXPECT_TRUE(g.outgoing(c).empty());
  }
}

TEST(FlowGraph, StepsToEjectIsStructuralAndDeterministic) {
  const auto topo = api::make_topology("quarc:32");
  const Workload base = fig6_load(*topo);
  const RoutePlan plan(*topo, base.pattern.get());
  const FlowGraph a(plan, base);
  const FlowGraph b(plan, base);
  for (ChannelId c = 0; c < topo->num_channels(); ++c) {
    // Bit-identical across compiles: the warm-start seed is a pure
    // function of the structure.
    ASSERT_EQ(a.steps_to_eject(c), b.steps_to_eject(c));
    if (a.is_ejection(c) || a.unit_lambda(c) <= 0.0) {
      EXPECT_EQ(a.steps_to_eject(c), 0.0);
    } else {
      // A loaded channel needs at least one more hop (into ejection).
      EXPECT_GE(a.steps_to_eject(c), 1.0);
    }
  }

  // The converged service time dominates the zero-load seed (waits only
  // add): the seed starts the damped iteration below the fixed point, so
  // warm starts can never trip the saturation guard where a cold start
  // would not.
  ServiceTimeSolver solver(a, base.message_length);
  SolverWorkspace ws;
  const double rate = 0.5 * model_saturation_rate(a, base);
  ASSERT_EQ(solver.solve(rate, ws), SolveStatus::Converged);
  for (ChannelId c = 0; c < topo->num_channels(); ++c) {
    const ChannelSolution& s = ws.solution[static_cast<std::size_t>(c)];
    if (s.lambda <= 0.0) continue;
    EXPECT_GE(s.service_time,
              static_cast<double>(base.message_length) + a.steps_to_eject(c) - 1e-6);
  }
}

/// Byte-compare two solution vectors (exact, including every field).
void expect_identical(const std::vector<ChannelSolution>& a,
                      const std::vector<ChannelSolution>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(ChannelSolution)), 0);
}

TEST(FlowGraph, WarmWorkspaceReuseIsByteIdenticalOnEveryStatusPath) {
  // One workspace reused across the whole fig6 grid — including rates past
  // the saturation boundary and deliberately truncated iteration budgets —
  // must produce exactly the bytes a fresh workspace produces per point.
  // This is the determinism contract that makes per-thread workspace
  // reuse (sweep.cpp) and (fingerprint, rate) cache keys sound.
  const auto topo = api::make_topology("quarc:16");
  const Workload base = fig6_load(*topo);
  const RoutePlan plan(*topo, base.pattern.get());
  const FlowGraph flows(plan, base);

  const double sat = model_saturation_rate(flows, base);
  std::vector<double> rates = rate_grid_to_saturation(flows, base, 6, 0.85);
  rates.push_back(sat * 1.05);  // Saturated via the utilization guard
  rates.push_back(sat * 4.0);   // deeply saturated

  struct Case {
    SolverOptions options;
    const char* name;
  };
  SolverOptions truncated;
  truncated.max_iterations = 5;  // forces MaxIterationsReached mid-grid
  SolverOptions tight_guard;
  tight_guard.utilization_guard = 0.3;  // forces Saturated at modest load
  const Case cases[] = {{SolverOptions{}, "default"},
                        {truncated, "max-iterations"},
                        {tight_guard, "utilization-guard"}};

  for (const Case& c : cases) {
    ServiceTimeSolver warm(flows, base.message_length, c.options);
    SolverWorkspace reused;
    bool saw[3] = {false, false, false};
    for (const double rate : rates) {
      const SolveStatus warm_status = warm.solve(rate, reused);
      const int warm_iters = warm.iterations_used();

      ServiceTimeSolver cold(flows, base.message_length, c.options);
      SolverWorkspace fresh;
      const SolveStatus cold_status = cold.solve(rate, fresh);

      ASSERT_EQ(warm_status, cold_status) << c.name << " rate " << rate;
      ASSERT_EQ(warm_iters, cold.iterations_used()) << c.name << " rate " << rate;
      expect_identical(reused.solution, fresh.solution);
      saw[static_cast<int>(warm_status)] = true;
    }
    if (c.options.max_iterations == 5) {
      EXPECT_TRUE(saw[static_cast<int>(SolveStatus::MaxIterationsReached)]) << c.name;
    } else {
      EXPECT_TRUE(saw[static_cast<int>(SolveStatus::Saturated)]) << c.name;
    }
    if (c.options.max_iterations > 5 && c.options.utilization_guard > 0.9) {
      EXPECT_TRUE(saw[static_cast<int>(SolveStatus::Converged)]) << c.name;
    }
  }
}

TEST(FlowGraph, ZeroLoadSeedConvergesToTheDrainTimeSeedsFixedPoint) {
  // Both seeds target the same fixed point at the same tolerance: statuses
  // match across the grid and converged latencies agree far inside the
  // regression gate's 5% tolerance.
  const auto topo = api::make_topology("quarc:16");
  const Workload base = fig6_load(*topo);
  const RoutePlan plan(*topo, base.pattern.get());
  const FlowGraph flows(plan, base);
  const std::vector<double> rates = rate_grid_to_saturation(flows, base, 6, 0.85);

  ServiceTimeSolver solver(flows, base.message_length);
  SolverWorkspace seeded_ws, cold_ws;
  long long seeded_total = 0, cold_total = 0;
  for (const double rate : rates) {
    ASSERT_EQ(solver.solve(rate, seeded_ws, SolverSeed::ZeroLoad), SolveStatus::Converged);
    seeded_total += solver.iterations_used();
    std::vector<ChannelSolution> seeded = seeded_ws.solution;
    ASSERT_EQ(solver.solve(rate, cold_ws, SolverSeed::DrainTime), SolveStatus::Converged);
    cold_total += solver.iterations_used();
    for (std::size_t c = 0; c < seeded.size(); ++c) {
      EXPECT_NEAR(seeded[c].service_time, cold_ws.solution[c].service_time,
                  1e-6 * (1.0 + cold_ws.solution[c].service_time))
          << "channel " << c << " rate " << rate;
    }
  }
  // The warm seed must actually pay: strictly fewer iterations in total.
  EXPECT_LT(seeded_total, cold_total);
}

TEST(FlowGraph, SharedFlowGraphModelMatchesPlanPathExactly) {
  const auto topo = api::make_topology("quarc:16");
  const Workload base = fig6_load(*topo);
  const RoutePlan plan(*topo, base.pattern.get());
  const FlowGraph flows(plan, base);
  for (const double rate : {0.001, 0.004}) {
    Workload w = base;
    w.message_rate = rate;
    const ModelResult via_plan = PerformanceModel(plan, w).evaluate();
    SolverWorkspace ws;
    const ModelResult via_flows = PerformanceModel(flows, w).evaluate(ws);
    ASSERT_EQ(via_plan.status, via_flows.status);
    ASSERT_EQ(via_plan.solver_iterations, via_flows.solver_iterations);
    ASSERT_EQ(via_plan.avg_unicast_latency, via_flows.avg_unicast_latency);
    ASSERT_EQ(via_plan.avg_multicast_latency, via_flows.avg_multicast_latency);
    ASSERT_EQ(via_plan.max_utilization, via_flows.max_utilization);
    ASSERT_EQ(via_plan.bottleneck, via_flows.bottleneck);
    expect_identical(via_plan.channels, via_flows.channels);
  }
}

TEST(FlowGraph, SweepOverloadsAgreeByteForByte) {
  const auto topo = api::make_topology("mesh:4x4");
  const Workload base = fig6_load(*topo, 0.004, 0.1);
  const RoutePlan plan(*topo, base.pattern.get());
  const FlowGraph flows(plan, base);
  SweepConfig cfg;
  cfg.run_sim = false;
  cfg.threads = 1;
  const std::vector<double> rates = {0.001, 0.003, 0.006};
  const auto via_flows = sweep_rates(flows, base, rates, cfg);
  const auto via_plan = sweep_rates(plan, base, rates, cfg);
  const auto via_topo = sweep_rates(*topo, base, rates, cfg);
  ASSERT_EQ(via_flows.size(), via_plan.size());
  ASSERT_EQ(via_flows.size(), via_topo.size());
  for (std::size_t i = 0; i < via_flows.size(); ++i) {
    ASSERT_EQ(via_flows[i].model.avg_unicast_latency, via_plan[i].model.avg_unicast_latency);
    ASSERT_EQ(via_flows[i].model.avg_multicast_latency, via_plan[i].model.avg_multicast_latency);
    ASSERT_EQ(via_flows[i].model.solver_iterations, via_plan[i].model.solver_iterations);
    expect_identical(via_flows[i].model.channels, via_plan[i].model.channels);
    ASSERT_EQ(via_flows[i].model.avg_unicast_latency, via_topo[i].model.avg_unicast_latency);
  }
}

TEST(FlowGraph, RejectsMismatchedPatternAndAlpha) {
  const auto topo = api::make_topology("quarc:16");
  Workload w = fig6_load(*topo, 0.004, 0.05);
  const RoutePlan unicast_plan(*topo);  // compiled without the pattern
  EXPECT_THROW(FlowGraph(unicast_plan, w), InvalidArgument);

  const RoutePlan plan(*topo, w.pattern.get());
  const FlowGraph flows(plan, w);
  Workload other_alpha = w;
  other_alpha.multicast_fraction = 0.10;
  EXPECT_THROW(PerformanceModel(flows, other_alpha), InvalidArgument);
}

}  // namespace
}  // namespace quarc
