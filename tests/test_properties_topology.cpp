// Property tests over every shipped topology (parameterized): structural
// validity, route determinism, channel-table hygiene, and the invariants
// the model and simulator both rely on.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>

#include "quarc/topo/hypercube.hpp"
#include "quarc/topo/mesh.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/topo/spidergon.hpp"
#include "quarc/topo/torus.hpp"
#include "quarc/util/error.hpp"

namespace quarc {
namespace {

struct TopologyCase {
  std::string name;
  std::function<std::unique_ptr<Topology>()> make;
};

class TopologyProperties : public ::testing::TestWithParam<TopologyCase> {};

TEST_P(TopologyProperties, StructurallyValid) {
  const auto topo = GetParam().make();
  EXPECT_NO_THROW(validate_topology(*topo));
}

TEST_P(TopologyProperties, ChannelTableHygiene) {
  const auto topo = GetParam().make();
  std::set<std::string> labels;
  for (const ChannelInfo& ch : topo->channels()) {
    EXPECT_EQ(&topo->channel(ch.id), &ch);
    EXPECT_GE(ch.src, 0);
    EXPECT_LT(ch.src, topo->num_nodes());
    EXPECT_GE(ch.dst, 0);
    EXPECT_LT(ch.dst, topo->num_nodes());
    EXPECT_GE(ch.vcs, 1);
    EXPECT_TRUE(labels.insert(ch.label).second) << "duplicate label " << ch.label;
    if (ch.kind != ChannelKind::External) {
      EXPECT_EQ(ch.src, ch.dst) << "internal channels stay at their node";
      EXPECT_GE(ch.port, 0);
    }
    if (ch.dedicated) {
      EXPECT_EQ(ch.kind, ChannelKind::Ejection);
    }
  }
}

TEST_P(TopologyProperties, EveryNodeHasInjectionAndEjection) {
  const auto topo = GetParam().make();
  std::vector<int> inj(static_cast<std::size_t>(topo->num_nodes()), 0);
  std::vector<int> ej(static_cast<std::size_t>(topo->num_nodes()), 0);
  for (const ChannelInfo& ch : topo->channels()) {
    if (ch.kind == ChannelKind::Injection) ++inj[static_cast<std::size_t>(ch.src)];
    if (ch.kind == ChannelKind::Ejection) ++ej[static_cast<std::size_t>(ch.src)];
  }
  for (NodeId i = 0; i < topo->num_nodes(); ++i) {
    EXPECT_EQ(inj[static_cast<std::size_t>(i)], topo->num_ports());
    EXPECT_GE(ej[static_cast<std::size_t>(i)], 1);
  }
}

TEST_P(TopologyProperties, RoutesAreDeterministic) {
  const auto topo = GetParam().make();
  const int n = topo->num_nodes();
  for (NodeId s = 0; s < n; s += std::max(1, n / 7)) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto a = topo->unicast_route(s, d);
      const auto b = topo->unicast_route(s, d);
      EXPECT_EQ(a.links, b.links);
      EXPECT_EQ(a.link_vcs, b.link_vcs);
      EXPECT_EQ(a.port, b.port);
    }
  }
}

TEST_P(TopologyProperties, HopsBoundedByDiameter) {
  const auto topo = GetParam().make();
  const int diam = topo->diameter();
  const int n = topo->num_nodes();
  bool diameter_attained = false;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const int h = topo->unicast_route(s, d).hops();
      EXPECT_LE(h, diam);
      EXPECT_GE(h, 1);
      diameter_attained |= h == diam;
    }
  }
  EXPECT_TRUE(diameter_attained) << "diameter must be tight";
}

TEST_P(TopologyProperties, CheckPairRejectsBadArguments) {
  const auto topo = GetParam().make();
  EXPECT_THROW(topo->unicast_route(0, 0), InvalidArgument);
  EXPECT_THROW(topo->unicast_route(-1, 0), InvalidArgument);
  EXPECT_THROW(topo->unicast_route(0, topo->num_nodes()), InvalidArgument);
}

TEST_P(TopologyProperties, MulticastStreamsDeterministicWhenSupported) {
  const auto topo = GetParam().make();
  if (!topo->supports_multicast()) return;
  std::vector<NodeId> dests;
  for (NodeId d = 1; d < topo->num_nodes(); d += 2) dests.push_back(d);
  const auto a = topo->multicast_streams(0, dests);
  const auto b = topo->multicast_streams(0, dests);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].links, b[i].links);
    EXPECT_EQ(a[i].stops.size(), b[i].stops.size());
  }
}

TEST_P(TopologyProperties, DatelineVcNeverOnFirstRingLink) {
  // A worm cannot have wrapped on the very first link of a ring walk; the
  // first VC of any route must be 0.
  const auto topo = GetParam().make();
  const int n = topo->num_nodes();
  for (NodeId s = 0; s < n; s += std::max(1, n / 5)) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      EXPECT_EQ(topo->unicast_route(s, d).link_vcs.front(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TopologyProperties,
    ::testing::Values(
        TopologyCase{"quarc8", [] { return std::make_unique<QuarcTopology>(8); }},
        TopologyCase{"quarc16", [] { return std::make_unique<QuarcTopology>(16); }},
        TopologyCase{"quarc36", [] { return std::make_unique<QuarcTopology>(36); }},
        TopologyCase{"quarc64", [] { return std::make_unique<QuarcTopology>(64); }},
        TopologyCase{"quarc16_oneport",
                     [] { return std::make_unique<QuarcTopology>(16, PortScheme::OnePort); }},
        TopologyCase{"spidergon8", [] { return std::make_unique<SpidergonTopology>(8); }},
        TopologyCase{"spidergon24", [] { return std::make_unique<SpidergonTopology>(24); }},
        TopologyCase{"spidergon64", [] { return std::make_unique<SpidergonTopology>(64); }},
        TopologyCase{"mesh3x3",
                     [] { return std::make_unique<MeshTopology>(3, 3, MeshRouting::XY); }},
        TopologyCase{"mesh5x4",
                     [] { return std::make_unique<MeshTopology>(5, 4, MeshRouting::XY); }},
        TopologyCase{"mesh4x4_ham",
                     [] {
                       return std::make_unique<MeshTopology>(4, 4, MeshRouting::Hamiltonian);
                     }},
        TopologyCase{"mesh5x3_ham",
                     [] {
                       return std::make_unique<MeshTopology>(5, 3, MeshRouting::Hamiltonian);
                     }},
        TopologyCase{"torus3x3", [] { return std::make_unique<TorusTopology>(3, 3); }},
        TopologyCase{"torus4x4", [] { return std::make_unique<TorusTopology>(4, 4); }},
        TopologyCase{"torus5x4", [] { return std::make_unique<TorusTopology>(5, 4); }},
        TopologyCase{"hypercube3", [] { return std::make_unique<HypercubeTopology>(3); }},
        TopologyCase{"hypercube5", [] { return std::make_unique<HypercubeTopology>(5); }}),
    [](const ::testing::TestParamInfo<TopologyCase>& tpi) { return tpi.param.name; });

}  // namespace
}  // namespace quarc
