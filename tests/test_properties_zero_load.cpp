// Parameterized zero-load anchors: for every topology and message length,
// the analytical model's zero-load latencies must equal the closed-form
// hop averages, and the simulator must reproduce them exactly (DESIGN.md
// "zero-load anchor": latency == M + D + 1).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "quarc/model/performance_model.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/topo/hypercube.hpp"
#include "quarc/topo/mesh.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/topo/spidergon.hpp"
#include "quarc/topo/torus.hpp"
#include "quarc/traffic/pattern.hpp"

namespace quarc {
namespace {

struct ZeroLoadCase {
  std::string name;
  std::function<std::unique_ptr<Topology>()> make;
  int msg_len;
};

class ZeroLoadProperties : public ::testing::TestWithParam<ZeroLoadCase> {};

double hop_average(const Topology& topo) {
  double sum = 0.0;
  const int n = topo.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s != d) sum += topo.unicast_route(s, d).hops();
    }
  }
  return sum / (static_cast<double>(n) * (n - 1));
}

TEST_P(ZeroLoadProperties, ModelUnicastEqualsHopAverage) {
  const auto& param = GetParam();
  const auto topo = param.make();
  Workload w;
  w.message_rate = 1e-10;
  w.message_length = param.msg_len;
  const auto result = PerformanceModel(*topo, w).evaluate();
  ASSERT_EQ(result.status, SolveStatus::Converged);
  EXPECT_NEAR(result.avg_unicast_latency, param.msg_len + hop_average(*topo) + 1.0, 1e-4);
}

TEST_P(ZeroLoadProperties, SimulatorUnicastWithinDiameterBounds) {
  const auto& param = GetParam();
  const auto topo = param.make();
  sim::SimConfig c;
  c.workload.message_rate = 3e-5;
  c.workload.message_length = param.msg_len;
  c.warmup_cycles = 1000;
  c.measure_cycles = 250000;
  c.seed = 13;
  const auto r = sim::Simulator(*topo, c).run();
  ASSERT_TRUE(r.completed);
  ASSERT_GT(r.unicast_latency.count, 30);
  EXPECT_GE(r.unicast_latency.min, param.msg_len + 1.0 + 1.0);
  // The occasional two-message collision can add up to roughly one message
  // service of queueing even at this rate; everything else is zero-load.
  EXPECT_LE(r.unicast_latency.max, 2.0 * param.msg_len + topo->diameter() + 2.0);
  EXPECT_GE(r.unicast_latency.mean, param.msg_len + 2.0);
  EXPECT_LE(r.unicast_latency.mean, param.msg_len + topo->diameter() + 1.5);
}

TEST_P(ZeroLoadProperties, ModelAndSimBroadcastExactWhenSupported) {
  const auto& param = GetParam();
  const auto topo = param.make();
  if (!topo->supports_multicast()) return;

  // Broadcast stream length: max hops over the source's streams.
  std::vector<NodeId> all;
  for (NodeId d = 1; d < topo->num_nodes(); ++d) all.push_back(d);
  int max_hops = 0;
  for (const auto& st : topo->multicast_streams(0, all)) {
    max_hops = std::max(max_hops, st.hops());
  }
  if (param.msg_len <= topo->diameter()) return;  // paper assumption gate

  std::vector<std::vector<NodeId>> dests(static_cast<std::size_t>(topo->num_nodes()));
  for (NodeId s = 0; s < topo->num_nodes(); ++s) {
    for (NodeId d = 0; d < topo->num_nodes(); ++d) {
      if (d != s) dests[static_cast<std::size_t>(s)].push_back(d);
    }
  }
  auto pattern = std::make_shared<ExplicitPattern>(dests, "broadcast");

  Workload w;
  w.message_rate = 1e-10;
  w.multicast_fraction = 1.0;
  w.message_length = param.msg_len;
  w.pattern = pattern;
  const auto model = PerformanceModel(*topo, w).evaluate();
  ASSERT_EQ(model.status, SolveStatus::Converged);
  // Vertex-symmetric rings share max_hops across sources; grids may not,
  // and one-port schemes add stream-serialisation offsets — so bound
  // loosely here and rely on the simulator comparison below for tightness.
  EXPECT_GE(model.avg_multicast_latency, param.msg_len + 1.0);
  EXPECT_LE(model.avg_multicast_latency,
            4.0 * (param.msg_len + topo->num_nodes() + 2.0));

  sim::SimConfig c;
  c.workload = w;
  c.workload.message_rate = 1e-5;
  c.warmup_cycles = 1000;
  c.measure_cycles = 400000;
  c.seed = 14;
  const auto r = sim::Simulator(*topo, c).run();
  ASSERT_TRUE(r.completed);
  ASSERT_GT(r.multicast_latency.count, 5);
  // One-port schemes serialize streams; the model's injection service time
  // (header-to-absorption, Eq. 6) overestimates the true channel release
  // (tail leaving the injection link), so the offsets carry a documented
  // bias. All-port schemes must match tightly.
  const double tolerance = topo->num_ports() == 1 ? 0.30 : 0.02;
  EXPECT_NEAR(r.multicast_latency.mean, model.avg_multicast_latency,
              tolerance * model.avg_multicast_latency);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ZeroLoadProperties,
    ::testing::Values(
        ZeroLoadCase{"quarc16_m16", [] { return std::make_unique<QuarcTopology>(16); }, 16},
        ZeroLoadCase{"quarc16_m64", [] { return std::make_unique<QuarcTopology>(16); }, 64},
        ZeroLoadCase{"quarc32_m32", [] { return std::make_unique<QuarcTopology>(32); }, 32},
        ZeroLoadCase{"quarc16_oneport_m16",
                     [] { return std::make_unique<QuarcTopology>(16, PortScheme::OnePort); }, 16},
        ZeroLoadCase{"spidergon16_m16", [] { return std::make_unique<SpidergonTopology>(16); },
                     16},
        ZeroLoadCase{"spidergon32_m48", [] { return std::make_unique<SpidergonTopology>(32); },
                     48},
        ZeroLoadCase{"mesh4x4_xy_m16",
                     [] { return std::make_unique<MeshTopology>(4, 4, MeshRouting::XY); }, 16},
        ZeroLoadCase{"mesh4x4_ham_m16",
                     [] {
                       return std::make_unique<MeshTopology>(4, 4, MeshRouting::Hamiltonian);
                     },
                     16},
        ZeroLoadCase{"torus4x4_m16", [] { return std::make_unique<TorusTopology>(4, 4); }, 16},
        ZeroLoadCase{"torus5x5_m32", [] { return std::make_unique<TorusTopology>(5, 5); }, 32},
        ZeroLoadCase{"hypercube4_m16", [] { return std::make_unique<HypercubeTopology>(4); }, 16},
        ZeroLoadCase{"hypercube6_m32", [] { return std::make_unique<HypercubeTopology>(6); }, 32}),
    [](const ::testing::TestParamInfo<ZeroLoadCase>& tpi) { return tpi.param.name; });

}  // namespace
}  // namespace quarc
