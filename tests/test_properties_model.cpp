// Parameterized model properties across topologies and workload families:
// monotonicity in every workload knob, symmetry, saturation bracketing and
// internal consistency of the returned diagnostics.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "quarc/model/performance_model.hpp"
#include "quarc/sweep/sweep.hpp"
#include "quarc/topo/hypercube.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/topo/spidergon.hpp"
#include "quarc/topo/torus.hpp"
#include "quarc/traffic/pattern.hpp"

namespace quarc {
namespace {

struct ModelCase {
  std::string name;
  std::function<std::unique_ptr<Topology>()> make;
  double alpha;
  int msg;
  /// Builds the multicast pattern (num_nodes known only after make()).
  std::function<std::shared_ptr<const MulticastPattern>(int)> pattern;
};

class ModelProperties : public ::testing::TestWithParam<ModelCase> {
 protected:
  Workload workload(double rate) const {
    const auto& p = GetParam();
    Workload w;
    w.message_rate = rate;
    w.multicast_fraction = p.alpha;
    w.message_length = p.msg;
    return w;
  }
};

TEST_P(ModelProperties, LatencyMonotoneInRate) {
  const auto& param = GetParam();
  const auto topo = param.make();
  Workload w = workload(0.0);
  if (param.alpha > 0) w.pattern = param.pattern(topo->num_nodes());
  const double sat = model_saturation_rate(*topo, w);
  double prev_uni = 0.0, prev_mc = 0.0;
  for (double f : {0.1, 0.3, 0.5, 0.7}) {
    w.message_rate = f * sat;
    const auto r = PerformanceModel(*topo, w).evaluate();
    ASSERT_EQ(r.status, SolveStatus::Converged) << f;
    EXPECT_GT(r.avg_unicast_latency, prev_uni) << f;
    prev_uni = r.avg_unicast_latency;
    if (param.alpha > 0) {
      EXPECT_GT(r.avg_multicast_latency, prev_mc) << f;
      prev_mc = r.avg_multicast_latency;
    }
  }
}

TEST_P(ModelProperties, SaturationBracketsStatus) {
  const auto& param = GetParam();
  const auto topo = param.make();
  Workload w = workload(0.0);
  if (param.alpha > 0) w.pattern = param.pattern(topo->num_nodes());
  const double sat = model_saturation_rate(*topo, w);
  ASSERT_GT(sat, 0.0);
  w.message_rate = 0.9 * sat;
  EXPECT_EQ(PerformanceModel(*topo, w).evaluate().status, SolveStatus::Converged);
  w.message_rate = 1.2 * sat;
  EXPECT_NE(PerformanceModel(*topo, w).evaluate().status, SolveStatus::Converged);
}

TEST_P(ModelProperties, UtilizationScalesLinearlyAtLowLoad) {
  // Channel arrival rates are linear in the offered rate; at low load the
  // service times barely move, so the bottleneck utilisation must be
  // close to proportional.
  const auto& param = GetParam();
  const auto topo = param.make();
  Workload w = workload(0.0);
  if (param.alpha > 0) w.pattern = param.pattern(topo->num_nodes());
  const double sat = model_saturation_rate(*topo, w);
  w.message_rate = 0.05 * sat;
  const auto lo = PerformanceModel(*topo, w).evaluate();
  w.message_rate = 0.10 * sat;
  const auto hi = PerformanceModel(*topo, w).evaluate();
  ASSERT_EQ(lo.status, SolveStatus::Converged);
  ASSERT_EQ(hi.status, SolveStatus::Converged);
  EXPECT_NEAR(hi.max_utilization / lo.max_utilization, 2.0, 0.1);
}

TEST_P(ModelProperties, MulticastDominatesUnicastForSpanningPatterns) {
  const auto& param = GetParam();
  if (param.alpha == 0.0) return;
  const auto topo = param.make();
  Workload w = workload(0.0);
  w.pattern = param.pattern(topo->num_nodes());
  const double sat = model_saturation_rate(*topo, w);
  w.message_rate = 0.5 * sat;
  const auto r = PerformanceModel(*topo, w).evaluate();
  ASSERT_EQ(r.status, SolveStatus::Converged);
  // A multicast finishes with its *last* destination; with broadcast-like
  // patterns this dominates the average unicast.
  EXPECT_GT(r.avg_multicast_latency, r.avg_unicast_latency);
}

TEST_P(ModelProperties, DiagnosticsConsistent) {
  const auto& param = GetParam();
  const auto topo = param.make();
  Workload w = workload(0.0);
  if (param.alpha > 0) w.pattern = param.pattern(topo->num_nodes());
  w.message_rate = 0.4 * model_saturation_rate(*topo, w);
  const auto r = PerformanceModel(*topo, w).evaluate();
  ASSERT_EQ(r.status, SolveStatus::Converged);
  ASSERT_EQ(r.channels.size(), static_cast<std::size_t>(topo->num_channels()));
  double max_util = 0.0;
  for (const auto& c : r.channels) {
    EXPECT_GE(c.lambda, 0.0);
    EXPECT_GE(c.waiting_time, 0.0);
    if (c.lambda > 0) {
      EXPECT_GE(c.service_time, param.msg);
    }
    max_util = std::max(max_util, c.utilization);
  }
  EXPECT_DOUBLE_EQ(max_util, r.max_utilization);
  EXPECT_LT(r.max_utilization, 1.0);
  EXPECT_EQ(r.channels[static_cast<std::size_t>(r.bottleneck)].utilization, r.max_utilization);
}

ModelCase quarc_case(const std::string& name, int n, double alpha, int msg, bool broadcast) {
  return ModelCase{
      name, [n] { return std::make_unique<QuarcTopology>(n); }, alpha, msg,
      [broadcast](int nodes) -> std::shared_ptr<const MulticastPattern> {
        if (broadcast) return RingRelativePattern::broadcast(nodes);
        Rng rng(99);
        return RingRelativePattern::random(nodes, std::max(2, nodes / 8), rng);
      }};
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModelProperties,
    ::testing::Values(
        quarc_case("quarc16_unicast", 16, 0.0, 16, false),
        quarc_case("quarc16_broadcast10", 16, 0.1, 16, true),
        quarc_case("quarc32_random5", 32, 0.05, 32, false),
        quarc_case("quarc64_broadcast3", 64, 0.03, 32, true),
        ModelCase{"spidergon16_unicast", [] { return std::make_unique<SpidergonTopology>(16); },
                  0.0, 16, {}},
        ModelCase{"spidergon16_swmc",
                  [] { return std::make_unique<SpidergonTopology>(16); }, 0.05, 16,
                  [](int n) -> std::shared_ptr<const MulticastPattern> {
                    Rng rng(7);
                    return RingRelativePattern::random(n, 4, rng);
                  }},
        ModelCase{"torus4x4_unicast", [] { return std::make_unique<TorusTopology>(4, 4); }, 0.0,
                  16, {}},
        ModelCase{"hypercube4_unicast", [] { return std::make_unique<HypercubeTopology>(4); },
                  0.0, 16, {}},
        ModelCase{"quarc16_oneport",
                  [] { return std::make_unique<QuarcTopology>(16, PortScheme::OnePort); }, 0.05,
                  16,
                  [](int n) -> std::shared_ptr<const MulticastPattern> {
                    return RingRelativePattern::broadcast(n);
                  }}),
    [](const ::testing::TestParamInfo<ModelCase>& tpi) { return tpi.param.name; });

}  // namespace
}  // namespace quarc
