#include "quarc/sweep/sweep_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "quarc/api/scenario.hpp"
#include "quarc/util/error.hpp"

namespace quarc {
namespace {

std::string to_json_text(const api::ResultSet& rs) {
  std::ostringstream os;
  rs.write_json(os);
  return os.str();
}

/// A small but real scenario: model + simulator per point, short windows.
api::Scenario test_scenario() {
  api::Scenario s;
  s.topology("quarc:16")
      .pattern("random:4")
      .alpha(0.05)
      .message_length(16)
      .seed(42)
      .warmup(500)
      .measure(4000);
  return s;
}

const std::vector<double> kGrid = {0.001, 0.002, 0.003, 0.004};

/// Fresh per-test directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "quarc_sweep_cache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SweepCache, ColdRunPopulatesWarmRunHitsEveryPoint) {
  auto cache = std::make_shared<SweepCache>();
  api::Scenario s = test_scenario();
  s.cache(cache);

  const api::ResultSet cold = s.run_sweep(kGrid);
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_EQ(cold.cache_misses, 4);
  EXPECT_EQ(cache->stats().stores, 4);
  EXPECT_EQ(cache->size(), 4u);

  const api::ResultSet warm = s.run_sweep(kGrid);
  EXPECT_EQ(warm.cache_hits, 4);
  // Zero solves on the warm run: every point came from the cache.
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(cache->stats().stores, 4);  // nothing new was solved or stored

  // Bit-identical rows: the serialised documents match byte for byte.
  EXPECT_EQ(to_json_text(warm), to_json_text(cold));
}

TEST(SweepCache, CachedRunMatchesUncachedRunExactly) {
  api::Scenario uncached = test_scenario();
  const std::string reference = to_json_text(uncached.run_sweep(kGrid));

  api::Scenario cached = test_scenario();
  cached.cache(std::make_shared<SweepCache>());
  EXPECT_EQ(to_json_text(cached.run_sweep(kGrid)), reference);  // cold
  EXPECT_EQ(to_json_text(cached.run_sweep(kGrid)), reference);  // warm
}

TEST(SweepCache, PointsAreReusedAcrossDifferentGrids) {
  // Per-point seeds are rate-keyed, not grid-position-keyed, so a point
  // solved in one grid is bit-identical in any other grid containing the
  // same rate — and may legally be served from cache there.
  auto cache = std::make_shared<SweepCache>();
  api::Scenario s = test_scenario();
  s.cache(cache);
  s.run_sweep(std::vector<double>{0.001, 0.002});

  const api::ResultSet overlap = s.run_sweep(std::vector<double>{0.002, 0.003});
  EXPECT_EQ(overlap.cache_hits, 1);
  EXPECT_EQ(overlap.cache_misses, 1);

  api::Scenario fresh = test_scenario();
  const api::ResultSet reference = fresh.run_sweep(std::vector<double>{0.002, 0.003});
  EXPECT_EQ(to_json_text(overlap), to_json_text(reference));
}

TEST(SweepCache, DifferentScenariosNeverShareEntries) {
  auto cache = std::make_shared<SweepCache>();
  api::Scenario a = test_scenario();
  a.cache(cache);
  a.run_sweep(kGrid);

  api::Scenario b = test_scenario();
  b.seed(43);  // different experiment -> different fingerprint
  b.cache(cache);
  const api::ResultSet rs = b.run_sweep(kGrid);
  EXPECT_EQ(rs.cache_hits, 0);
  EXPECT_EQ(rs.cache_misses, 4);
}

TEST(SweepCache, DiskCacheSurvivesProcessBoundary) {
  const std::string dir = fresh_dir("persist");
  const std::string cold_json = [&] {
    api::Scenario s = test_scenario();
    s.cache_dir(dir);
    return to_json_text(s.run_sweep(kGrid));
  }();  // cache object destroyed here — only the files remain

  api::Scenario s = test_scenario();
  s.cache(std::make_shared<SweepCache>(dir));
  const api::ResultSet warm = s.run_sweep(kGrid);
  EXPECT_EQ(warm.cache_hits, 4);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(s.sweep_cache()->stats().loaded_entries, 4);
  EXPECT_EQ(to_json_text(warm), cold_json);
}

TEST(SweepCache, ModelOnlySweepsAreCachedToo) {
  auto cache = std::make_shared<SweepCache>();
  api::Scenario s = test_scenario();
  s.with_sim(false).cache(cache);
  const std::string cold = to_json_text(s.run_sweep(kGrid));
  const api::ResultSet warm = s.run_sweep(kGrid);
  EXPECT_EQ(warm.cache_hits, 4);
  EXPECT_EQ(to_json_text(warm), cold);
}

// ------------------------------------------------------------ corruption
//
// An on-disk entry that cannot be parsed, carries the wrong schema, or
// names a different fingerprint must be detected, counted, and re-solved
// — never served.

class SweepCacheCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fresh_dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
    api::Scenario s = test_scenario();
    s.cache_dir(dir_);
    cold_json_ = to_json_text(s.run_sweep(kGrid));
    file_ = dir_ + "/" + test_scenario().fingerprint().hex() + ".jsonl";
    ASSERT_TRUE(std::filesystem::exists(file_));
  }

  std::vector<std::string> read_lines() const {
    std::ifstream in(file_);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  void write_lines(const std::vector<std::string>& lines) const {
    std::ofstream out(file_, std::ios::trunc);
    for (const std::string& l : lines) out << l << "\n";
  }

  /// Warm run against the (possibly doctored) directory.
  api::ResultSet warm_run(std::shared_ptr<SweepCache>* cache_out = nullptr) const {
    api::Scenario s = test_scenario();
    auto cache = std::make_shared<SweepCache>(dir_);
    s.cache(cache);
    if (cache_out != nullptr) *cache_out = cache;
    return s.run_sweep(kGrid);
  }

  std::string dir_;
  std::string file_;
  std::string cold_json_;
};

TEST_F(SweepCacheCorruption, GarbageLinesAreSkippedAndCounted) {
  auto lines = read_lines();
  ASSERT_EQ(lines.size(), 4u);
  lines.insert(lines.begin(), "this is not json");
  lines.push_back("{\"also\":\"not a cache entry\"}");
  write_lines(lines);

  std::shared_ptr<SweepCache> cache;
  const api::ResultSet warm = warm_run(&cache);
  EXPECT_EQ(warm.cache_hits, 4);  // the four valid entries still serve
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(cache->stats().corrupt_entries, 2);
  EXPECT_EQ(to_json_text(warm), cold_json_);
}

TEST_F(SweepCacheCorruption, TruncatedTailLineIsReSolved) {
  auto lines = read_lines();
  ASSERT_EQ(lines.size(), 4u);
  lines.back() = lines.back().substr(0, lines.back().size() / 2);  // crash mid-append
  write_lines(lines);

  std::shared_ptr<SweepCache> cache;
  const api::ResultSet warm = warm_run(&cache);
  EXPECT_EQ(warm.cache_hits, 3);
  EXPECT_EQ(warm.cache_misses, 1);
  EXPECT_EQ(cache->stats().corrupt_entries, 1);
  EXPECT_EQ(to_json_text(warm), cold_json_);  // re-solved bit-identically
}

TEST_F(SweepCacheCorruption, WrongSchemaFingerprintOrCanonicalIsNeverServed) {
  auto lines = read_lines();
  ASSERT_EQ(lines.size(), 4u);
  // Entry 0: schema from the future. Entry 1: right shape, wrong scenario.
  lines[0].replace(lines[0].find("\"schema\":1"), 10, "\"schema\":9");
  const std::string fp = test_scenario().fingerprint().hex();
  lines[1].replace(lines[1].find(fp), fp.size(), std::string(fp.size(), '0'));
  // Entry 2: right hash, different canonical text — what a true 64-bit
  // fingerprint hash collision would look like. Identity is the canonical
  // text, so this entry must be rejected despite the matching file/hex.
  const auto alpha = lines[2].find("alpha=0.05");
  ASSERT_NE(alpha, std::string::npos);
  lines[2].replace(alpha, 10, "alpha=0.06");
  write_lines(lines);

  std::shared_ptr<SweepCache> cache;
  const api::ResultSet warm = warm_run(&cache);
  EXPECT_EQ(warm.cache_hits, 1);
  EXPECT_EQ(warm.cache_misses, 3);
  EXPECT_EQ(cache->stats().corrupt_entries, 3);
  EXPECT_EQ(to_json_text(warm), cold_json_);
}

TEST_F(SweepCacheCorruption, FullyGarbledFileFallsBackToColdRun) {
  write_lines({"garbage", "{\"truncated\":", "[1,2,3]"});
  std::shared_ptr<SweepCache> cache;
  const api::ResultSet warm = warm_run(&cache);
  EXPECT_EQ(warm.cache_hits, 0);
  EXPECT_EQ(warm.cache_misses, 4);
  EXPECT_EQ(to_json_text(warm), cold_json_);
  // And the re-solve re-populated the file: a second warm run hits fully.
  const api::ResultSet again = warm_run();
  EXPECT_EQ(again.cache_hits, 4);
  EXPECT_EQ(to_json_text(again), cold_json_);
}

TEST(SweepCache, RejectsUncreatableDirectory) {
  EXPECT_THROW(SweepCache(""), InvalidArgument);
  const std::string dir = fresh_dir("not_a_dir");
  std::ofstream(dir).put('x');  // occupy the path with a regular file
  EXPECT_THROW(SweepCache(dir + "/sub"), InvalidArgument);
}

}  // namespace
}  // namespace quarc
