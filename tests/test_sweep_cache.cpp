#include "quarc/sweep/sweep_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "quarc/api/scenario.hpp"
#include "quarc/util/error.hpp"

namespace quarc {
namespace {

std::string to_json_text(const api::ResultSet& rs) {
  std::ostringstream os;
  rs.write_json(os);
  return os.str();
}

/// A small but real scenario: model + simulator per point, short windows.
api::Scenario test_scenario() {
  api::Scenario s;
  s.topology("quarc:16")
      .pattern("random:4")
      .alpha(0.05)
      .message_length(16)
      .seed(42)
      .warmup(500)
      .measure(4000);
  return s;
}

const std::vector<double> kGrid = {0.001, 0.002, 0.003, 0.004};

/// Fresh per-test directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "quarc_sweep_cache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SweepCache, ColdRunPopulatesWarmRunHitsEveryPoint) {
  auto cache = std::make_shared<SweepCache>();
  api::Scenario s = test_scenario();
  s.cache(cache);

  const api::ResultSet cold = s.run_sweep(kGrid);
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_EQ(cold.cache_misses, 4);
  EXPECT_EQ(cache->stats().stores, 4);
  EXPECT_EQ(cache->size(), 4u);

  const api::ResultSet warm = s.run_sweep(kGrid);
  EXPECT_EQ(warm.cache_hits, 4);
  // Zero solves on the warm run: every point came from the cache.
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(cache->stats().stores, 4);  // nothing new was solved or stored

  // Bit-identical rows: the serialised documents match byte for byte.
  EXPECT_EQ(to_json_text(warm), to_json_text(cold));
}

TEST(SweepCache, CachedRunMatchesUncachedRunExactly) {
  api::Scenario uncached = test_scenario();
  const std::string reference = to_json_text(uncached.run_sweep(kGrid));

  api::Scenario cached = test_scenario();
  cached.cache(std::make_shared<SweepCache>());
  EXPECT_EQ(to_json_text(cached.run_sweep(kGrid)), reference);  // cold
  EXPECT_EQ(to_json_text(cached.run_sweep(kGrid)), reference);  // warm
}

TEST(SweepCache, PointsAreReusedAcrossDifferentGrids) {
  // Per-point seeds are rate-keyed, not grid-position-keyed, so a point
  // solved in one grid is bit-identical in any other grid containing the
  // same rate — and may legally be served from cache there.
  auto cache = std::make_shared<SweepCache>();
  api::Scenario s = test_scenario();
  s.cache(cache);
  s.run_sweep(std::vector<double>{0.001, 0.002});

  const api::ResultSet overlap = s.run_sweep(std::vector<double>{0.002, 0.003});
  EXPECT_EQ(overlap.cache_hits, 1);
  EXPECT_EQ(overlap.cache_misses, 1);

  api::Scenario fresh = test_scenario();
  const api::ResultSet reference = fresh.run_sweep(std::vector<double>{0.002, 0.003});
  EXPECT_EQ(to_json_text(overlap), to_json_text(reference));
}

TEST(SweepCache, DifferentScenariosNeverShareEntries) {
  auto cache = std::make_shared<SweepCache>();
  api::Scenario a = test_scenario();
  a.cache(cache);
  a.run_sweep(kGrid);

  api::Scenario b = test_scenario();
  b.seed(43);  // different experiment -> different fingerprint
  b.cache(cache);
  const api::ResultSet rs = b.run_sweep(kGrid);
  EXPECT_EQ(rs.cache_hits, 0);
  EXPECT_EQ(rs.cache_misses, 4);
}

TEST(SweepCache, DiskCacheSurvivesProcessBoundary) {
  const std::string dir = fresh_dir("persist");
  const std::string cold_json = [&] {
    api::Scenario s = test_scenario();
    s.cache_dir(dir);
    return to_json_text(s.run_sweep(kGrid));
  }();  // cache object destroyed here — only the files remain

  api::Scenario s = test_scenario();
  s.cache(std::make_shared<SweepCache>(dir));
  const api::ResultSet warm = s.run_sweep(kGrid);
  EXPECT_EQ(warm.cache_hits, 4);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(s.sweep_cache()->stats().loaded_entries, 4);
  EXPECT_EQ(to_json_text(warm), cold_json);
}

TEST(SweepCache, ModelOnlySweepsAreCachedToo) {
  auto cache = std::make_shared<SweepCache>();
  api::Scenario s = test_scenario();
  s.with_sim(false).cache(cache);
  const std::string cold = to_json_text(s.run_sweep(kGrid));
  const api::ResultSet warm = s.run_sweep(kGrid);
  EXPECT_EQ(warm.cache_hits, 4);
  EXPECT_EQ(to_json_text(warm), cold);
}

// ------------------------------------------------------------ corruption
//
// An on-disk entry that cannot be parsed, carries the wrong schema, or
// names a different fingerprint must be detected, counted, and re-solved
// — never served.

class SweepCacheCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fresh_dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
    api::Scenario s = test_scenario();
    s.cache_dir(dir_);
    cold_json_ = to_json_text(s.run_sweep(kGrid));
    file_ = dir_ + "/" + test_scenario().fingerprint().hex() + ".jsonl";
    ASSERT_TRUE(std::filesystem::exists(file_));
  }

  std::vector<std::string> read_lines() const {
    std::ifstream in(file_);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  void write_lines(const std::vector<std::string>& lines) const {
    std::ofstream out(file_, std::ios::trunc);
    for (const std::string& l : lines) out << l << "\n";
  }

  /// Warm run against the (possibly doctored) directory.
  api::ResultSet warm_run(std::shared_ptr<SweepCache>* cache_out = nullptr) const {
    api::Scenario s = test_scenario();
    auto cache = std::make_shared<SweepCache>(dir_);
    s.cache(cache);
    if (cache_out != nullptr) *cache_out = cache;
    return s.run_sweep(kGrid);
  }

  std::string dir_;
  std::string file_;
  std::string cold_json_;
};

TEST_F(SweepCacheCorruption, GarbageLinesAreSkippedAndCounted) {
  auto lines = read_lines();
  ASSERT_EQ(lines.size(), 4u);
  lines.insert(lines.begin(), "this is not json");
  lines.push_back("{\"also\":\"not a cache entry\"}");
  write_lines(lines);

  std::shared_ptr<SweepCache> cache;
  const api::ResultSet warm = warm_run(&cache);
  EXPECT_EQ(warm.cache_hits, 4);  // the four valid entries still serve
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(cache->stats().corrupt_entries, 2);
  EXPECT_EQ(to_json_text(warm), cold_json_);
}

TEST_F(SweepCacheCorruption, TruncatedTailLineIsReSolved) {
  auto lines = read_lines();
  ASSERT_EQ(lines.size(), 4u);
  lines.back() = lines.back().substr(0, lines.back().size() / 2);  // crash mid-append
  write_lines(lines);

  std::shared_ptr<SweepCache> cache;
  const api::ResultSet warm = warm_run(&cache);
  EXPECT_EQ(warm.cache_hits, 3);
  EXPECT_EQ(warm.cache_misses, 1);
  EXPECT_EQ(cache->stats().corrupt_entries, 1);
  EXPECT_EQ(to_json_text(warm), cold_json_);  // re-solved bit-identically
}

TEST_F(SweepCacheCorruption, WrongSchemaFingerprintOrCanonicalIsNeverServed) {
  auto lines = read_lines();
  ASSERT_EQ(lines.size(), 4u);
  // Entry 0: schema from the future. Entry 1: right shape, wrong scenario.
  lines[0].replace(lines[0].find("\"schema\":1"), 10, "\"schema\":9");
  const std::string fp = test_scenario().fingerprint().hex();
  lines[1].replace(lines[1].find(fp), fp.size(), std::string(fp.size(), '0'));
  // Entry 2: right hash, different canonical text — what a true 64-bit
  // fingerprint hash collision would look like. Identity is the canonical
  // text, so this entry must be rejected despite the matching file/hex.
  const auto alpha = lines[2].find("alpha=0.05");
  ASSERT_NE(alpha, std::string::npos);
  lines[2].replace(alpha, 10, "alpha=0.06");
  write_lines(lines);

  std::shared_ptr<SweepCache> cache;
  const api::ResultSet warm = warm_run(&cache);
  EXPECT_EQ(warm.cache_hits, 1);
  EXPECT_EQ(warm.cache_misses, 3);
  EXPECT_EQ(cache->stats().corrupt_entries, 3);
  EXPECT_EQ(to_json_text(warm), cold_json_);
}

TEST_F(SweepCacheCorruption, FullyGarbledFileFallsBackToColdRun) {
  write_lines({"garbage", "{\"truncated\":", "[1,2,3]"});
  std::shared_ptr<SweepCache> cache;
  const api::ResultSet warm = warm_run(&cache);
  EXPECT_EQ(warm.cache_hits, 0);
  EXPECT_EQ(warm.cache_misses, 4);
  EXPECT_EQ(to_json_text(warm), cold_json_);
  // And the re-solve re-populated the file: a second warm run hits fully.
  const api::ResultSet again = warm_run();
  EXPECT_EQ(again.cache_hits, 4);
  EXPECT_EQ(to_json_text(again), cold_json_);
}

// ---------------------------------------------------- concurrent writers
//
// Each SweepCache instance opens/flocks/appends/closes per store, so
// separate instances over one directory model separate processes sharing
// a --cache-dir (the batch/serve fleet deployment). Every line must land
// whole: a fresh reload sees every row and zero corrupt entries.

/// A synthetic model-only row; the cache never interprets the values.
api::ResultRow synthetic_row(double rate) {
  api::ResultRow r;
  r.rate = rate;
  r.model_run = true;
  r.model_status = "converged";
  r.model_unicast_latency = 20.0 + rate;
  r.model_max_utilization = rate;
  r.solver_iterations = 5;
  return r;
}

TEST(SweepCache, ConcurrentWritersNeverInterleaveLines) {
  const std::string dir = fresh_dir("multi_writer");
  const ScenarioFingerprint fp = test_scenario().fingerprint();
  constexpr int kWriters = 8;
  constexpr int kRowsPerWriter = 25;

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Own instance per writer: no shared mutex, only the file lock —
      // all contention is on the one .jsonl file.
      SweepCache cache(dir);
      for (int i = 0; i < kRowsPerWriter; ++i) {
        const double rate = 0.001 * (w * kRowsPerWriter + i + 1);
        cache.store(fp, synthetic_row(rate), /*has_multicast=*/false);
      }
    });
  }
  for (std::thread& t : writers) t.join();

  SweepCache reload(dir);
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kRowsPerWriter; ++i) {
      const double rate = 0.001 * (w * kRowsPerWriter + i + 1);
      const std::optional<api::ResultRow> row = reload.lookup(fp, rate);
      ASSERT_TRUE(row.has_value()) << "rate " << rate << " lost";
      EXPECT_EQ(row->model_unicast_latency, 20.0 + rate);
    }
  }
  EXPECT_EQ(reload.stats().loaded_entries, kWriters * kRowsPerWriter);
  EXPECT_EQ(reload.stats().corrupt_entries, 0);
}

// ------------------------------------------------------- memory bounding
//
// set_memory_limit_rows caps the in-memory tier; LRU fingerprint shards
// are evicted, never the one being touched, and disk-backed evictions
// reload on demand — the bound costs re-reads, never answers.

ScenarioFingerprint fingerprint_with_seed(std::uint64_t seed) {
  api::Scenario s = test_scenario();
  s.seed(seed);
  return s.fingerprint();
}

TEST(SweepCache, DiskBackedEvictionReloadsOnDemand) {
  const std::string dir = fresh_dir("lru_disk");
  const ScenarioFingerprint a = fingerprint_with_seed(1);
  const ScenarioFingerprint b = fingerprint_with_seed(2);

  SweepCache cache(dir);
  cache.set_memory_limit_rows(3);
  for (const double rate : {0.001, 0.002, 0.003}) {
    cache.store(a, synthetic_row(rate), false);
  }
  EXPECT_EQ(cache.size(), 3u);  // exactly at the bound: nothing evicted

  cache.store(b, synthetic_row(0.004), false);  // overflow: a is the LRU shard
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().evicted_rows, 3);
  EXPECT_EQ(cache.size(), 1u);

  // The evicted shard reloads from its file; the answer survives the
  // eviction, and the reload in turn evicts b to hold the bound.
  const std::optional<api::ResultRow> row = cache.lookup(a, 0.002);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->model_unicast_latency, 20.002);
  EXPECT_EQ(cache.stats().loaded_entries, 3);
  EXPECT_EQ(cache.stats().evictions, 2);
  EXPECT_EQ(cache.stats().evicted_rows, 4);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(SweepCache, InMemoryEvictionReSolves) {
  // Without a backing directory an evicted row is simply gone — the bound
  // trades recompute for memory, and lookups degrade to misses.
  SweepCache cache;
  cache.set_memory_limit_rows(2);
  const ScenarioFingerprint a = fingerprint_with_seed(1);
  const ScenarioFingerprint b = fingerprint_with_seed(2);
  cache.store(a, synthetic_row(0.001), false);
  cache.store(a, synthetic_row(0.002), false);
  cache.store(b, synthetic_row(0.003), false);
  EXPECT_EQ(cache.stats().evicted_rows, 2);
  EXPECT_FALSE(cache.lookup(a, 0.001).has_value());
  EXPECT_TRUE(cache.lookup(b, 0.003).has_value());
}

TEST(SweepCache, CurrentShardIsNeverEvicted) {
  // One shard larger than the whole bound: the shard being written must
  // stay resident (callers hold references into it mid-operation).
  SweepCache cache;
  cache.set_memory_limit_rows(2);
  const ScenarioFingerprint a = fingerprint_with_seed(1);
  for (const double rate : {0.001, 0.002, 0.003, 0.004}) {
    cache.store(a, synthetic_row(rate), false);
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(SweepCache, LoweringTheLimitEvictsRetroactively) {
  SweepCache cache;
  const ScenarioFingerprint a = fingerprint_with_seed(1);
  const ScenarioFingerprint b = fingerprint_with_seed(2);
  cache.store(a, synthetic_row(0.001), false);
  cache.store(a, synthetic_row(0.002), false);
  cache.store(b, synthetic_row(0.003), false);
  cache.store(b, synthetic_row(0.004), false);
  EXPECT_EQ(cache.size(), 4u);

  cache.set_memory_limit_rows(2);  // a is least recently touched
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().evicted_rows, 2);
  EXPECT_TRUE(cache.lookup(b, 0.004).has_value());
}

TEST(SweepCache, RejectsUncreatableDirectory) {
  EXPECT_THROW(SweepCache(""), InvalidArgument);
  const std::string dir = fresh_dir("not_a_dir");
  std::ofstream(dir).put('x');  // occupy the path with a regular file
  EXPECT_THROW(SweepCache(dir + "/sub"), InvalidArgument);
}

}  // namespace
}  // namespace quarc
