#include "quarc/topo/spidergon.hpp"

#include <gtest/gtest.h>

#include "quarc/util/error.hpp"

namespace quarc {
namespace {

TEST(SpidergonTopology, RejectsInvalidSizes) {
  EXPECT_THROW(SpidergonTopology(6), InvalidArgument);
  EXPECT_THROW(SpidergonTopology(4), InvalidArgument);
  EXPECT_NO_THROW(SpidergonTopology(8));
}

TEST(SpidergonTopology, ChannelInventory) {
  // Per node: 1 injection + 3 external (CW, CCW, cross) + 1 ejection.
  SpidergonTopology t(16);
  EXPECT_EQ(t.num_channels(), 16 * 5);
  EXPECT_EQ(t.num_ports(), 1);
}

TEST(SpidergonTopology, NoHardwareMulticast) {
  SpidergonTopology t(16);
  EXPECT_FALSE(t.supports_multicast());
  EXPECT_THROW(t.multicast_streams(0, {1, 2}), InvalidArgument);
}

TEST(SpidergonTopology, AcrossFirstHopCounts) {
  SpidergonTopology t(16);
  EXPECT_EQ(t.hops_for_distance(1), 1);
  EXPECT_EQ(t.hops_for_distance(4), 4);   // rim edge
  EXPECT_EQ(t.hops_for_distance(5), 4);   // cross + 3 CCW
  EXPECT_EQ(t.hops_for_distance(7), 2);   // cross + 1 CCW
  EXPECT_EQ(t.hops_for_distance(8), 1);   // cross
  EXPECT_EQ(t.hops_for_distance(9), 2);   // cross + 1 CW
  EXPECT_EQ(t.hops_for_distance(11), 4);  // cross + 3 CW
  EXPECT_EQ(t.hops_for_distance(12), 4);  // CCW rim
  EXPECT_EQ(t.hops_for_distance(15), 1);
}

TEST(SpidergonTopology, DiameterClosedForm) {
  // Across-first routing peaks at the rim-quarter edge (k = N/4, N/4 hops)
  // and at k = N/4+1 (cross plus N/4-1 rim hops): diameter N/4.
  for (int n : {8, 16, 32, 64}) {
    SpidergonTopology t(n);
    EXPECT_EQ(t.diameter(), n / 4) << "N=" << n;
    if (n <= 32) {
      EXPECT_EQ(t.Topology::diameter(), n / 4);
    }
  }
}

TEST(SpidergonTopology, StructuralValidation) {
  for (int n : {8, 16, 32}) EXPECT_NO_THROW(validate_topology(SpidergonTopology(n)));
}

TEST(SpidergonTopology, RoutesAreShortestAmongRimAndCross) {
  SpidergonTopology t(32);
  for (NodeId s = 0; s < 32; ++s) {
    for (NodeId d = 0; d < 32; ++d) {
      if (s == d) continue;
      const int k = t.cw_distance(s, d);
      const int best = std::min({k, 32 - k, 1 + std::abs(16 - k)});
      EXPECT_EQ(t.unicast_route(s, d).hops(), best) << s << "->" << d;
    }
  }
}

TEST(SpidergonTopology, SinglePortSharedByAllRoutes) {
  SpidergonTopology t(16);
  for (NodeId d = 1; d < 16; ++d) {
    const auto r = t.unicast_route(0, d);
    EXPECT_EQ(r.port, 0);
    EXPECT_EQ(r.injection, t.injection_channel(0));
    EXPECT_EQ(r.ejection, t.ejection_channel(d));
  }
}

TEST(SpidergonTopology, CrossRouteUsesCrossChannelFirst) {
  SpidergonTopology t(16);
  const auto r = t.unicast_route(2, 8);  // distance 6: cross to 10, CCW 9, 8
  ASSERT_EQ(r.links.size(), 3u);
  EXPECT_EQ(r.links[0], t.cross_channel(2));
  EXPECT_EQ(r.links[1], t.ccw_channel(10));
  EXPECT_EQ(r.links[2], t.ccw_channel(9));
}

TEST(SpidergonTopology, DatelineVcOnRimWrap) {
  SpidergonTopology t(16);
  const auto r = t.unicast_route(14, 1);  // CW distance 3 across the wrap
  ASSERT_EQ(r.links.size(), 3u);
  EXPECT_EQ(r.link_vcs[0], 0);  // CW[14]
  EXPECT_EQ(r.link_vcs[1], 0);  // CW[15]
  EXPECT_EQ(r.link_vcs[2], 1);  // CW[0], wrapped
}

}  // namespace
}  // namespace quarc
