// Byte-identity of the SoA multi-point curve solver against the scalar
// solve — the contract that lets sweeps batch K rate points per sweep
// while every serialised artifact stays byte-for-byte unchanged:
// lane l of solve_batch must reproduce solve(rates[l]) exactly — same
// doubles, same status, same iteration count — across every registered
// topology family, seeded and unseeded, converged and saturated alike.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <sstream>
#include <vector>

#include "quarc/api/registry.hpp"
#include "quarc/api/scenario.hpp"
#include "quarc/model/performance_model.hpp"
#include "quarc/model/solver.hpp"
#include "quarc/sweep/sweep.hpp"
#include "quarc/util/rng.hpp"

namespace quarc {
namespace {

struct Cell {
  std::shared_ptr<const Topology> topo;
  Workload load;
  std::unique_ptr<RoutePlan> plan;
  std::unique_ptr<FlowGraph> flows;
};

Cell make_cell(const std::string& topo_spec, double alpha, int msg = 32) {
  Cell cell;
  cell.topo = api::make_topology(topo_spec);
  Rng rng(11);
  cell.load.message_rate = 0.001;  // shape only; solves pass explicit rates
  cell.load.multicast_fraction = alpha;
  cell.load.message_length = msg;
  if (alpha > 0.0) cell.load.pattern = api::make_pattern("random:3", cell.topo->num_nodes(), rng);
  cell.plan = std::make_unique<RoutePlan>(*cell.topo,
                                          alpha > 0.0 ? cell.load.pattern.get() : nullptr);
  cell.flows = std::make_unique<FlowGraph>(*cell.plan, cell.load);
  return cell;
}

/// Expects lane `lane` of `cw` to be byte-identical to the scalar solve
/// recorded in (`status`, `iters`, `sol`). NaN/inf compare by bit pattern
/// via ==, which is what we want: saturated lanes legitimately hold inf.
void expect_lane_equals_scalar(const CurveWorkspace& cw, std::size_t lane, SolveStatus status,
                               int iters, const std::vector<ChannelSolution>& sol) {
  ASSERT_EQ(cw.results[lane].status, status);
  EXPECT_EQ(cw.results[lane].iterations, iters);
  ASSERT_EQ(cw.channels, sol.size());
  for (std::size_t c = 0; c < sol.size(); ++c) {
    const std::size_t at = c * cw.lanes + lane;
    EXPECT_EQ(cw.lambda[at], sol[c].lambda) << "lambda ch " << c;
    EXPECT_EQ(cw.service_time[at], sol[c].service_time) << "x ch " << c;
    // Waits can be non-finite on saturated lanes; require the same bits.
    const bool w_same = cw.waiting_time[at] == sol[c].waiting_time ||
                        (std::isnan(cw.waiting_time[at]) && std::isnan(sol[c].waiting_time));
    EXPECT_TRUE(w_same) << "W ch " << c << ": " << cw.waiting_time[at] << " vs "
                        << sol[c].waiting_time;
    EXPECT_EQ(cw.utilization[at], sol[c].utilization) << "rho ch " << c;
  }
}

/// Solves each rate scalar-side and batch-side with identical options and
/// expects lane-for-lane byte identity. `x0` is empty or lane-major.
void expect_batch_matches_scalar(const FlowGraph& flows, int msg,
                                 const std::vector<double>& rates, SolverOptions opts = {},
                                 std::span<const double> x0 = {}) {
  CurveWorkspace cw;
  ServiceTimeSolver batch_solver(flows, msg, opts);
  const auto lanes = batch_solver.solve_batch(rates, cw, x0);
  ASSERT_EQ(lanes.size(), rates.size());

  const std::size_t nch = flows.num_channels();
  SolverWorkspace ws;
  for (std::size_t l = 0; l < rates.size(); ++l) {
    SCOPED_TRACE("lane " + std::to_string(l) + " rate " + std::to_string(rates[l]));
    ServiceTimeSolver scalar(flows, msg, opts);
    const SolveStatus status =
        x0.empty() ? scalar.solve(rates[l], ws)
                   : scalar.solve(rates[l], ws, x0.subspan(l * nch, nch));
    expect_lane_equals_scalar(cw, l, status, scalar.iterations_used(), ws.solution);
  }
}

TEST(CurveSolver, SingleLaneMatchesScalarAcrossAllRegisteredTopologies) {
  // K = 1 is the degenerate batch: every masked loop runs with one lane,
  // so any divergence here is a plain transcription bug, caught on every
  // registered family (hardware streams, software multicast, unicast).
  for (const api::RegistryEntry& e : api::TopologyRegistry::instance().entries()) {
    for (double alpha : {0.0, 0.05}) {
      SCOPED_TRACE(e.example + " alpha=" + std::to_string(alpha));
      Cell cell = make_cell(e.example, alpha);
      expect_batch_matches_scalar(*cell.flows, cell.load.message_length, {0.0005});
      expect_batch_matches_scalar(*cell.flows, cell.load.message_length, {0.003});
    }
  }
}

TEST(CurveSolver, FullLaneGroupMatchesScalarOnSaturationGrid) {
  // The production shape: an 8-lane group over a fig6-style grid climbing
  // to 90% of saturation, where Anderson restarts, adaptive windows and
  // per-lane convergence at different sweeps all fire.
  Cell cell = make_cell("quarc:16", 0.05);
  const std::vector<double> grid =
      rate_grid_to_saturation(*cell.flows, cell.load, 8, 0.9);
  ASSERT_EQ(grid.size(), 8u);
  expect_batch_matches_scalar(*cell.flows, cell.load.message_length, grid);
}

TEST(CurveSolver, RaggedTailMatchesScalar) {
  // Lane counts that are not a SIMD multiple (5, 3, 1) must work — sweep
  // chunking produces ragged tails whenever K does not divide the grid.
  Cell cell = make_cell("spidergon:16", 0.0);
  const std::vector<double> grid =
      rate_grid_to_saturation(*cell.flows, cell.load, 5, 0.85);
  expect_batch_matches_scalar(*cell.flows, cell.load.message_length, grid);
  expect_batch_matches_scalar(*cell.flows, cell.load.message_length,
                              {grid[0], grid[2], grid[4]});
}

TEST(CurveSolver, MixedStatusesInOneBatch) {
  // One batch carrying all three outcomes: a comfortably converged lane, a
  // saturated lane (1.5x the certified rate), and — with the iteration
  // budget strangled — a MaxIterationsReached lane. Retired lanes must not
  // perturb the lanes still iterating.
  Cell cell = make_cell("quarc:16", 0.05);
  const double sat = model_saturation_rate(*cell.flows, cell.load);
  ASSERT_GT(sat, 0.0);

  SolverOptions opts;
  opts.max_iterations = 6;  // enough for low load, not for near-saturation
  const std::vector<double> rates = {0.3 * sat, 0.97 * sat, 1.5 * sat};
  expect_batch_matches_scalar(*cell.flows, cell.load.message_length, rates, opts);

  // And confirm the batch really does carry three distinct statuses.
  CurveWorkspace cw;
  ServiceTimeSolver solver(*cell.flows, cell.load.message_length, opts);
  const auto lanes = solver.solve_batch(rates, cw);
  EXPECT_EQ(lanes[0].status, SolveStatus::Converged);
  EXPECT_EQ(lanes[1].status, SolveStatus::MaxIterationsReached);
  EXPECT_EQ(lanes[2].status, SolveStatus::Saturated);
}

TEST(CurveSolver, SeededBatchMatchesSeededScalar) {
  // The continuation-spine hot path: every lane gets the spine's
  // interpolated x0, clamped and (on failure) cold-restarted exactly as
  // the scalar seeded solve does.
  Cell cell = make_cell("quarc:16", 0.05);
  const auto spine = build_spine(*cell.flows, cell.load, ModelOptions{}, 4);
  ASSERT_NE(spine, nullptr);

  const std::vector<double> grid =
      rate_grid_to_saturation(*cell.flows, cell.load, 6, 0.9);
  const std::size_t nch = cell.flows->num_channels();
  std::vector<double> x0(grid.size() * nch);
  std::vector<double> one;
  for (std::size_t l = 0; l < grid.size(); ++l) {
    spine->seed(grid[l], one);
    std::copy(one.begin(), one.end(), x0.begin() + static_cast<std::ptrdiff_t>(l * nch));
  }
  expect_batch_matches_scalar(*cell.flows, cell.load.message_length, grid, SolverOptions{}, x0);
}

TEST(CurveSolver, SeededFallbackLaneMatchesScalar) {
  // A hopeless hint (drain-time floor everywhere, near saturation) forces
  // the seeded solve through its zero-load fallback; the batched fallback
  // sub-solve must accumulate iterations exactly like the scalar one.
  Cell cell = make_cell("quarc:16", 0.0);
  const double sat = model_saturation_rate(*cell.flows, cell.load);
  SolverOptions opts;
  opts.max_iterations = 25;
  const std::vector<double> rates = {0.2 * sat, 0.95 * sat};
  const std::size_t nch = cell.flows->num_channels();
  std::vector<double> x0(rates.size() * nch,
                         static_cast<double>(cell.load.message_length));
  expect_batch_matches_scalar(*cell.flows, cell.load.message_length, rates, opts, x0);
}

TEST(CurveSolver, GaussSeidelOracleMatchesScalar) {
  // Under the historical iteration each lane runs the scalar oracle
  // directly — identity is trivially required and pins the dispatch.
  Cell cell = make_cell("mesh:4x4", 0.0);
  SolverOptions opts;
  opts.iteration = SolverIteration::GaussSeidel;
  const std::vector<double> grid =
      rate_grid_to_saturation(*cell.flows, cell.load, 3, 0.8, ModelOptions{});
  expect_batch_matches_scalar(*cell.flows, cell.load.message_length, grid, opts);
}

TEST(CurveSolver, WorkspaceReuseIsByteIdentical) {
  // A warm CurveWorkspace (previous batch of different width and rates)
  // must yield the same bytes as a cold one — reuse is an allocation
  // saving, never a state leak.
  Cell cell = make_cell("quarc:16", 0.05);
  ServiceTimeSolver solver(*cell.flows, cell.load.message_length);
  const std::vector<double> first = {0.001, 0.002, 0.003, 0.004, 0.005};
  const std::vector<double> second = {0.0045, 0.0015};

  CurveWorkspace warm;
  solver.solve_batch(first, warm);
  solver.solve_batch(second, warm);

  CurveWorkspace cold;
  solver.solve_batch(second, cold);

  ASSERT_EQ(warm.lanes, cold.lanes);
  ASSERT_EQ(warm.channels, cold.channels);
  for (std::size_t i = 0; i < warm.lanes * warm.channels; ++i) {
    EXPECT_EQ(warm.service_time[i], cold.service_time[i]);
    EXPECT_EQ(warm.utilization[i], cold.utilization[i]);
  }
  for (std::size_t l = 0; l < warm.lanes; ++l) {
    EXPECT_EQ(warm.results[l].status, cold.results[l].status);
    EXPECT_EQ(warm.results[l].iterations, cold.results[l].iterations);
  }
}

TEST(CurveSolver, RejectsNonPositiveRates) {
  Cell cell = make_cell("quarc:16", 0.0);
  ServiceTimeSolver solver(*cell.flows, cell.load.message_length);
  CurveWorkspace cw;
  EXPECT_THROW(solver.solve_batch(std::vector<double>{0.001, 0.0}, cw), InvalidArgument);
  EXPECT_THROW(solver.solve_batch(std::vector<double>{}, cw), InvalidArgument);
}

// ---------------------------------------------------------------------------
// evaluate_batch: the full model path (solve + Eq. 7-16 assembly).
// ---------------------------------------------------------------------------

void expect_model_results_equal(const ModelResult& a, const ModelResult& b) {
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.solver_iterations, b.solver_iterations);
  EXPECT_EQ(a.avg_unicast_latency, b.avg_unicast_latency);
  EXPECT_EQ(a.has_multicast, b.has_multicast);
  EXPECT_EQ(a.avg_multicast_latency, b.avg_multicast_latency);
  EXPECT_EQ(a.max_utilization, b.max_utilization);
  EXPECT_EQ(a.bottleneck, b.bottleneck);
  ASSERT_EQ(a.per_node_multicast_latency.size(), b.per_node_multicast_latency.size());
  for (std::size_t s = 0; s < a.per_node_multicast_latency.size(); ++s) {
    const double x = a.per_node_multicast_latency[s];
    const double y = b.per_node_multicast_latency[s];
    EXPECT_TRUE(x == y || (std::isnan(x) && std::isnan(y))) << "node " << s;
  }
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (std::size_t c = 0; c < a.channels.size(); ++c) {
    EXPECT_EQ(a.channels[c].service_time, b.channels[c].service_time) << "ch " << c;
  }
}

void expect_evaluate_batch_matches_evaluate(const std::string& topo_spec, double alpha,
                                            LatencyAssembly assembly) {
  SCOPED_TRACE(topo_spec + " alpha=" + std::to_string(alpha) + " " +
               (assembly == LatencyAssembly::Stencil ? "stencil" : "direct"));
  Cell cell = make_cell(topo_spec, alpha);
  ModelOptions mo;
  mo.assembly = assembly;
  std::vector<double> grid = rate_grid_to_saturation(*cell.flows, cell.load, 5, 0.9, mo);
  grid.push_back(grid.back() * 2.0);  // one saturated lane in the group

  PerformanceModel batch_model(*cell.flows, cell.load, mo);
  CurveWorkspace cw;
  const std::vector<ModelResult> got = batch_model.evaluate_batch(grid, cw);
  ASSERT_EQ(got.size(), grid.size());

  SolverWorkspace ws;
  for (std::size_t l = 0; l < grid.size(); ++l) {
    SCOPED_TRACE("lane " + std::to_string(l));
    Workload w = cell.load;
    w.message_rate = grid[l];
    const ModelResult want = PerformanceModel(*cell.flows, w, mo).evaluate(ws);
    expect_model_results_equal(got[l], want);
  }
}

TEST(CurveSolver, EvaluateBatchMatchesEvaluateStencil) {
  expect_evaluate_batch_matches_evaluate("quarc:16", 0.05, LatencyAssembly::Stencil);
  expect_evaluate_batch_matches_evaluate("quarc:16", 0.0, LatencyAssembly::Stencil);
  expect_evaluate_batch_matches_evaluate("spidergon:16", 0.05, LatencyAssembly::Stencil);
  expect_evaluate_batch_matches_evaluate("mesh-ham:4x4", 1.0, LatencyAssembly::Stencil);
}

TEST(CurveSolver, EvaluateBatchMatchesEvaluateDirectWalk) {
  // The lane-strided stencil sum is bypassed; assemble_latencies computes
  // Eq. 7 from the extracted AoS channels — same answer either way.
  expect_evaluate_batch_matches_evaluate("quarc:16", 0.05, LatencyAssembly::DirectWalk);
  expect_evaluate_batch_matches_evaluate("torus:4x4", 0.05, LatencyAssembly::DirectWalk);
}

TEST(CurveSolver, EvaluateBatchSeededMatchesSeededEvaluate) {
  Cell cell = make_cell("quarc:16", 0.05);
  const auto spine = build_spine(*cell.flows, cell.load, ModelOptions{}, 4);
  ASSERT_NE(spine, nullptr);
  const std::vector<double> grid =
      rate_grid_to_saturation(*cell.flows, cell.load, 4, 0.9);
  const std::size_t nch = cell.flows->num_channels();
  std::vector<double> x0(grid.size() * nch);
  std::vector<double> one;
  for (std::size_t l = 0; l < grid.size(); ++l) {
    spine->seed(grid[l], one);
    std::copy(one.begin(), one.end(), x0.begin() + static_cast<std::ptrdiff_t>(l * nch));
  }

  PerformanceModel batch_model(*cell.flows, cell.load);
  CurveWorkspace cw;
  const std::vector<ModelResult> got = batch_model.evaluate_batch(grid, cw, x0);

  SolverWorkspace ws;
  for (std::size_t l = 0; l < grid.size(); ++l) {
    SCOPED_TRACE("lane " + std::to_string(l));
    Workload w = cell.load;
    w.message_rate = grid[l];
    const ModelResult want = PerformanceModel(*cell.flows, w)
                                 .evaluate(ws, std::span<const double>(x0).subspan(l * nch, nch));
    expect_model_results_equal(got[l], want);
  }
}

}  // namespace
}  // namespace quarc
