#include "quarc/cli/cli.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "quarc/util/error.hpp"

namespace quarc::cli {
namespace {

Options parse_list(std::initializer_list<const char*> list) {
  std::vector<std::string> args;
  for (const char* a : list) args.emplace_back(a);
  return parse(args);
}

TEST(Cli, DefaultsAreSane) {
  const Options o = parse_list({});
  EXPECT_EQ(o.topology, "quarc");
  EXPECT_EQ(o.nodes, 16);
  EXPECT_FALSE(o.run_sim);
  EXPECT_FALSE(o.json);
  EXPECT_FALSE(o.help);
}

TEST(Cli, ParsesFullCommandLine) {
  const Options o = parse_list({"--topology", "mesh-ham", "--width", "6", "--height", "5",
                                "--rate", "0.002", "--alpha", "0.1", "--msg", "48", "--pattern",
                                "random:5", "--seed", "9", "--sim", "--warmup", "100",
                                "--measure", "2000", "--sweep", "7", "--fill", "0.5", "--csv",
                                "--json"});
  EXPECT_EQ(o.topology, "mesh-ham");
  EXPECT_EQ(o.width, 6);
  EXPECT_EQ(o.height, 5);
  EXPECT_DOUBLE_EQ(o.rate, 0.002);
  EXPECT_DOUBLE_EQ(o.alpha, 0.1);
  EXPECT_EQ(o.msg, 48);
  EXPECT_EQ(o.pattern, "random:5");
  EXPECT_EQ(o.seed, 9u);
  EXPECT_TRUE(o.run_sim);
  EXPECT_EQ(o.warmup, 100);
  EXPECT_EQ(o.measure, 2000);
  EXPECT_EQ(o.sweep_points, 7);
  EXPECT_DOUBLE_EQ(o.fill, 0.5);
  EXPECT_TRUE(o.csv);
  EXPECT_TRUE(o.json);
}

TEST(Cli, RejectsUnknownOption) { EXPECT_THROW(parse_list({"--bogus"}), InvalidArgument); }

TEST(Cli, ParsesSimEngine) {
  EXPECT_EQ(parse_list({}).sim_engine, "");  // defer to SimConfig's default
  EXPECT_EQ(parse_list({"--sim-engine", "reference"}).sim_engine, "reference");
  EXPECT_EQ(parse_list({"--sim-engine", "active"}).sim_engine, "active");
  EXPECT_THROW(parse_list({"--sim-engine", "turbo"}), InvalidArgument);
  const Options o = parse_list({"--sim-engine", "reference"});
  api::Scenario s = make_scenario(o);
  EXPECT_EQ(s.sim_config().engine, sim::SimEngine::Reference);
}

TEST(Cli, RejectsMissingValue) { EXPECT_THROW(parse_list({"--nodes"}), InvalidArgument); }

TEST(Cli, RejectsMalformedNumbers) {
  EXPECT_THROW(parse_list({"--nodes", "abc"}), InvalidArgument);
  EXPECT_THROW(parse_list({"--rate", "0.x"}), InvalidArgument);
}

TEST(Cli, BareTopologyNamesFoldDimensionFlags) {
  Options o;
  o.topology = "mesh";
  o.width = 8;
  o.height = 6;
  EXPECT_EQ(topology_spec(o), "mesh:8x6");
  o.topology = "quarc";
  o.nodes = 32;
  EXPECT_EQ(topology_spec(o), "quarc:32");
  o.topology = "hypercube";
  o.dims = 5;
  EXPECT_EQ(topology_spec(o), "hypercube:5");
}

TEST(Cli, FullSpecWinsOverDimensionFlags) {
  Options o;
  o.topology = "mesh:3x7";
  o.width = 8;
  EXPECT_EQ(topology_spec(o), "mesh:3x7");
  const auto topo = make_topology(o);
  EXPECT_EQ(topo->num_nodes(), 21);
}

TEST(Cli, MakeTopologyCoversEveryName) {
  for (const char* name : {"quarc", "quarc1p", "spidergon", "hypercube"}) {
    Options o;
    o.topology = name;
    EXPECT_NE(make_topology(o), nullptr) << name;
  }
  for (const char* name : {"mesh", "mesh-ham", "torus"}) {
    Options o;
    o.topology = name;
    o.width = 4;
    o.height = 4;
    EXPECT_NE(make_topology(o), nullptr) << name;
  }
  Options bad;
  bad.topology = "moebius";
  EXPECT_THROW(make_topology(bad), InvalidArgument);
}

TEST(Cli, MakeScenarioBuildsPatterns) {
  Options o;
  o.alpha = 0.1;
  for (const char* pattern : {"broadcast", "random:4", "localized:1:4:3", "uniform:3"}) {
    o.pattern = pattern;
    const Workload w = make_scenario(o).build_workload();
    EXPECT_NE(w.pattern, nullptr) << pattern;
    EXPECT_EQ(w.multicast_fraction, 0.1);
  }
  o.pattern = "random";  // missing :K
  EXPECT_THROW(make_scenario(o).build_workload(), InvalidArgument);
  o.pattern = "weird:1";
  EXPECT_THROW(make_scenario(o).build_workload(), InvalidArgument);
}

TEST(Cli, PatternSeedIsDeterministic) {
  Options o;
  o.alpha = 0.1;
  o.pattern = "random:4";
  o.seed = 42;
  const Workload a = make_scenario(o).build_workload();
  const Workload b = make_scenario(o).build_workload();
  EXPECT_EQ(a.pattern->destinations(3), b.pattern->destinations(3));
}

TEST(Cli, HelpPrintsUsage) {
  Options o;
  o.help = true;
  std::ostringstream out;
  EXPECT_EQ(run(o, out), 0);
  EXPECT_NE(out.str().find("--topology"), std::string::npos);
  // The registry listings are embedded in the help text.
  EXPECT_NE(out.str().find("mesh-ham"), std::string::npos);
  EXPECT_NE(out.str().find("localized:LO:HI:K"), std::string::npos);
}

TEST(Cli, ModelOnlyRunProducesTable) {
  Options o;
  o.rate = 0.002;
  std::ostringstream out;
  EXPECT_EQ(run(o, out), 0);
  EXPECT_NE(out.str().find("model unicast"), std::string::npos);
  EXPECT_NE(out.str().find("quarc-16"), std::string::npos);
}

TEST(Cli, SimRunIncludesSimColumns) {
  Options o;
  o.rate = 0.002;
  o.alpha = 0.05;
  o.run_sim = true;
  o.warmup = 500;
  o.measure = 5000;
  std::ostringstream out;
  EXPECT_EQ(run(o, out), 0);
  EXPECT_NE(out.str().find("sim unicast"), std::string::npos);
  EXPECT_NE(out.str().find("sim multicast"), std::string::npos);
}

TEST(Cli, CsvModeEmitsResultSetColumns) {
  Options o;
  o.rate = 0.002;
  o.csv = true;
  std::ostringstream out;
  EXPECT_EQ(run(o, out), 0);
  EXPECT_NE(out.str().find("rate,model_status,model_unicast_latency"), std::string::npos);
}

TEST(Cli, JsonModeEmitsSchemaVersionedDocument) {
  Options o;
  o.rate = 0.002;
  o.json = true;
  std::ostringstream out;
  EXPECT_EQ(run(o, out), 0);
  EXPECT_NE(out.str().find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(out.str().find("\"topology\": \"quarc:16\""), std::string::npos);
}

TEST(Cli, SweepProducesRequestedPointCount) {
  Options o;
  o.sweep_points = 5;
  o.csv = true;
  std::ostringstream out;
  EXPECT_EQ(run(o, out), 0);
  // '#' metadata comment, header, then 5 data lines.
  int data_lines = 0;
  std::istringstream is(out.str());
  std::string line;
  bool in_table = false;
  while (std::getline(is, line)) {
    if (line.rfind("rate,", 0) == 0) {
      in_table = true;
      continue;
    }
    if (in_table && !line.empty()) ++data_lines;
  }
  EXPECT_EQ(data_lines, 5);
}

// ------------------------------------------------------- fleet subcommands

TEST(Cli, ParsesBatchSubcommand) {
  const Options o = parse_list({"batch", "--file", "fleet.jsonl", "--dry-run", "--threads", "3",
                                "--cache-dir", "/tmp/c"});
  EXPECT_EQ(o.command, "batch");
  EXPECT_EQ(o.batch_file, "fleet.jsonl");
  EXPECT_TRUE(o.dry_run);
  EXPECT_EQ(o.threads, 3);
  EXPECT_EQ(o.cache_dir, "/tmp/c");
}

TEST(Cli, ParsesServeSubcommand) {
  const Options o = parse_list({"serve", "--memory-limit", "500", "--cache-dir", "/tmp/c"});
  EXPECT_EQ(o.command, "serve");
  EXPECT_EQ(o.memory_limit, 500u);
  EXPECT_EQ(o.batch_file, "-");
}

TEST(Cli, FleetFlagsRequireTheirSubcommand) {
  // Subcommands are positional: "batch" after flags is not a subcommand,
  // and fleet flags outside their subcommand are rejected, not ignored.
  EXPECT_THROW(parse_list({"--file", "fleet.jsonl"}), InvalidArgument);
  EXPECT_THROW(parse_list({"--dry-run"}), InvalidArgument);
  EXPECT_THROW(parse_list({"--memory-limit", "10"}), InvalidArgument);
  EXPECT_THROW(parse_list({"batch", "--memory-limit", "10"}), InvalidArgument);
  EXPECT_THROW(parse_list({"serve", "--dry-run"}), InvalidArgument);
  EXPECT_THROW(parse_list({"--json", "batch"}), InvalidArgument);
  EXPECT_THROW(parse_list({"batch", "--threads", "0"}), InvalidArgument);
  EXPECT_THROW(parse_list({"serve", "--memory-limit", "-1"}), InvalidArgument);
}

TEST(Cli, ThreadsAppliesToSingleScenarioMode) {
  const Options o = parse_list({"--threads", "2", "--sweep", "3"});
  EXPECT_EQ(o.command, "");
  EXPECT_EQ(o.threads, 2);
  std::ostringstream out;
  EXPECT_EQ(run(o, out), 0);  // sweeps fine with the capped pool
}

TEST(Cli, BatchRunsAFleetFromTheInputStream) {
  Options o;
  o.command = "batch";  // batch_file "-" reads the in stream
  std::istringstream in(
      "{\"topology\":\"quarc:16\",\"pattern\":\"random:3\",\"alpha\":0.05,"
      "\"rates\":[0.002],\"msg\":16,\"seed\":42}\n"
      "{\"topology\":\"quarc:16\",\"pattern\":\"random:3\",\"alpha\":0.1,"
      "\"rates\":[0.002],\"msg\":16,\"seed\":42}\n");
  std::ostringstream out, err;
  EXPECT_EQ(run(o, in, out, err), 0);
  // Two point lines on stdout, progress confined to stderr.
  int lines = 0;
  std::istringstream is(out.str());
  std::string line;
  while (std::getline(is, line)) {
    EXPECT_EQ(line.rfind("{\"schema\":1,\"scenario\":", 0), 0u) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  EXPECT_NE(err.str().find("batch: 2 scenarios"), std::string::npos) << err.str();
}

TEST(Cli, BatchDryRunSolvesNothing) {
  Options o;
  o.command = "batch";
  o.dry_run = true;
  std::istringstream in(
      "{\"grid\":{\"alpha\":[0.05,0.1]},\"topology\":\"quarc:16\","
      "\"pattern\":\"random:3\",\"rates\":[0.002,0.004],\"seed\":42}\n");
  std::ostringstream out, err;
  EXPECT_EQ(run(o, in, out, err), 0);
  EXPECT_NE(out.str().find("\"route_plans\":1"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("\"flow_graphs\":2"), std::string::npos) << out.str();
}

TEST(Cli, BatchRejectsEmptyAndUnreadableSpecs) {
  Options o;
  o.command = "batch";
  std::ostringstream out, err;
  std::istringstream empty("# only comments\n");
  EXPECT_THROW(run(o, empty, out, err), InvalidArgument);
  o.batch_file = "/nonexistent/fleet.jsonl";
  std::istringstream unused;
  EXPECT_THROW(run(o, unused, out, err), InvalidArgument);
}

TEST(Cli, ServeAnswersOverTheStreams) {
  Options o;
  o.command = "serve";
  std::istringstream in(
      "{\"topology\":\"quarc:16\",\"pattern\":\"random:3\",\"alpha\":0.05,"
      "\"rate\":0.002,\"msg\":16,\"seed\":42,\"id\":1}\n"
      "{\"cmd\":\"shutdown\"}\n");
  std::ostringstream out, err;
  EXPECT_EQ(run(o, in, out, err), 0);
  EXPECT_EQ(out.str().rfind("{\"schema\":1,\"id\":1,", 0), 0u) << out.str();
  EXPECT_NE(out.str().find("\"cmd\":\"shutdown\""), std::string::npos) << out.str();
  EXPECT_NE(err.str().find("serve: ready"), std::string::npos) << err.str();
}

}  // namespace
}  // namespace quarc::cli
