#include "quarc/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "quarc/util/error.hpp"
#include "quarc/util/rng.hpp"

namespace quarc {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample (unbiased) variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8);
}

TEST(RunningStats, MergeEqualsPooled) {
  Rng rng(3);
  RunningStats a, b, pooled;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
  EXPECT_EQ(a.min(), pooled.min());
  EXPECT_EQ(a.max(), pooled.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 1);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(RunningStats, NumericallyStableForLargeOffset) {
  RunningStats s;
  const double offset = 1e12;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), offset, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0 + 1.0 / 999.0, 1e-3);
}

TEST(BatchMeans, RequiresTwoBatches) { EXPECT_THROW(BatchMeans(1), InvalidArgument); }

TEST(BatchMeans, InfiniteCiWithFewSamples) {
  BatchMeans b(10);
  for (int i = 0; i < 15; ++i) b.add(1.0);
  EXPECT_TRUE(std::isinf(b.ci_halfwidth()));
}

TEST(BatchMeans, ZeroWidthForConstantData) {
  BatchMeans b(10);
  for (int i = 0; i < 1000; ++i) b.add(3.5);
  EXPECT_DOUBLE_EQ(b.mean(), 3.5);
  EXPECT_NEAR(b.ci_halfwidth(), 0.0, 1e-12);
}

TEST(BatchMeans, CoversTrueMeanOfIidNoise) {
  Rng rng(17);
  BatchMeans b(16);
  for (int i = 0; i < 20000; ++i) b.add(rng.uniform());
  EXPECT_NEAR(b.mean(), 0.5, b.ci_halfwidth() * 3);
  EXPECT_LT(b.ci_halfwidth(), 0.02);
}

TEST(Histogram, BinningAndTails) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(9.999);
  h.add(10.0);
  h.add(5.5);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(9), 1);
  EXPECT_EQ(h.bin_count(5), 1);
  EXPECT_EQ(h.total(), 5);
  EXPECT_DOUBLE_EQ(h.bin_low(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_high(5), 6.0);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(23);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(StatSummary, ToStringContainsMeanAndCount) {
  StatSummary s;
  s.count = 10;
  s.mean = 4.25;
  s.ci95 = 0.5;
  const std::string str = s.to_string();
  EXPECT_NE(str.find("4.25"), std::string::npos);
  EXPECT_NE(str.find("n=10"), std::string::npos);
}

}  // namespace
}  // namespace quarc
