#include "quarc/model/solver.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "quarc/sweep/sweep.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/traffic/pattern.hpp"

namespace quarc {
namespace {

Workload make_load(double rate, double alpha, int msg, int n) {
  Workload w;
  w.message_rate = rate;
  w.multicast_fraction = alpha;
  w.message_length = msg;
  if (alpha > 0.0) w.pattern = RingRelativePattern::broadcast(n);
  return w;
}

TEST(Solver, ConvergesAtLowLoad) {
  QuarcTopology topo(16);
  const Workload w = make_load(0.001, 0.0, 16, 16);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, w.message_length);
  EXPECT_EQ(solver.solve(), SolveStatus::Converged);
  EXPECT_GT(solver.iterations_used(), 0);
  EXPECT_LT(solver.max_utilization(), 0.2);
}

TEST(Solver, EjectionServiceIsMessageLength) {
  QuarcTopology topo(16);
  const Workload w = make_load(0.002, 0.0, 24, 16);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 24);
  ASSERT_EQ(solver.solve(), SolveStatus::Converged);
  for (const ChannelInfo& ch : topo.channels()) {
    if (ch.kind == ChannelKind::Ejection && g.lambda(ch.id) > 0) {
      EXPECT_DOUBLE_EQ(solver.channel(ch.id).service_time, 24.0);
    }
  }
}

TEST(Solver, ServiceTimesExceedDrainTime) {
  // Any channel's mean service time is at least the pure drain time M, and
  // strictly larger upstream (downstream waits and hops accumulate).
  QuarcTopology topo(16);
  const Workload w = make_load(0.004, 0.0, 16, 16);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 16);
  ASSERT_EQ(solver.solve(), SolveStatus::Converged);
  for (const ChannelInfo& ch : topo.channels()) {
    if (g.lambda(ch.id) <= 0) continue;
    EXPECT_GE(solver.channel(ch.id).service_time, 16.0) << ch.label;
    if (ch.kind == ChannelKind::Injection) {
      // Injection channels sit furthest upstream: strictly above M + 1.
      EXPECT_GT(solver.channel(ch.id).service_time, 17.0) << ch.label;
    }
  }
}

TEST(Solver, VertexSymmetryGivesUniformChannelClasses) {
  QuarcTopology topo(32);
  const Workload w = make_load(0.0012, 0.1, 32, 32);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 32);
  ASSERT_EQ(solver.solve(), SolveStatus::Converged);
  const double cw0 = solver.channel(topo.cw_channel(0)).service_time;
  const double xl0 = solver.channel(topo.xl_channel(0)).service_time;
  for (NodeId i = 1; i < 32; ++i) {
    EXPECT_NEAR(solver.channel(topo.cw_channel(i)).service_time, cw0, 1e-6);
    EXPECT_NEAR(solver.channel(topo.xl_channel(i)).service_time, xl0, 1e-6);
  }
}

TEST(Solver, WaitsIncreaseWithRate) {
  QuarcTopology topo(16);
  double prev = -1.0;
  for (double rate : {0.001, 0.002, 0.004, 0.008}) {
    const Workload w = make_load(rate, 0.0, 16, 16);
    ChannelGraph g(topo, w);
    ServiceTimeSolver solver(topo, g, 16);
    ASSERT_EQ(solver.solve(), SolveStatus::Converged) << rate;
    const double wait = solver.channel(topo.cw_channel(0)).waiting_time;
    EXPECT_GT(wait, prev);
    prev = wait;
  }
}

TEST(Solver, DetectsSaturation) {
  QuarcTopology topo(16);
  const Workload w = make_load(0.5, 0.0, 16, 16);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 16);
  EXPECT_EQ(solver.solve(), SolveStatus::Saturated);
}

TEST(Solver, ZeroLoadTrivially) {
  QuarcTopology topo(16);
  const Workload w = make_load(0.0, 0.0, 16, 16);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 16);
  EXPECT_EQ(solver.solve(), SolveStatus::Converged);
  for (const ChannelInfo& ch : topo.channels()) {
    EXPECT_EQ(solver.channel(ch.id).waiting_time, 0.0);
    EXPECT_EQ(solver.channel(ch.id).utilization, 0.0);
  }
}

TEST(Solver, DampingVariantsAgree) {
  QuarcTopology topo(16);
  const Workload w = make_load(0.006, 0.05, 16, 16);
  ChannelGraph g(topo, w);
  SolverOptions a, b;
  a.damping = 1.0;
  b.damping = 0.3;
  ServiceTimeSolver sa(topo, g, 16, a), sb(topo, g, 16, b);
  ASSERT_EQ(sa.solve(), SolveStatus::Converged);
  ASSERT_EQ(sb.solve(), SolveStatus::Converged);
  for (const ChannelInfo& ch : topo.channels()) {
    EXPECT_NEAR(sa.channel(ch.id).service_time, sb.channel(ch.id).service_time, 1e-5)
        << ch.label;
  }
}

TEST(Solver, AccessorsBeforeAnySolveThrow) {
  // max_utilization()/channels() dereference the workspace of the most
  // recent solve; before any solve there is none — this used to read an
  // empty internal workspace and silently report 0.0.
  QuarcTopology topo(16);
  const Workload w = make_load(0.002, 0.0, 16, 16);
  const FlowGraph flows(topo, w);
  ServiceTimeSolver solver(flows, w.message_length);
  EXPECT_THROW(solver.max_utilization(), InvalidArgument);
  EXPECT_THROW(solver.channels(), InvalidArgument);
  EXPECT_THROW(solver.channel(ChannelId{0}), InvalidArgument);
  SolverWorkspace ws;
  ASSERT_EQ(solver.solve(w.message_rate, ws), SolveStatus::Converged);
  EXPECT_GT(solver.max_utilization(), 0.0);  // valid after the first solve
}

SolverOptions iteration_options(SolverIteration it) {
  SolverOptions o;
  o.iteration = it;
  return o;
}

TEST(Solver, AndersonConvergesToTheGaussSeidelFixedPoint) {
  // Same structure, same tolerance: the accelerated iteration must land on
  // the same fixed point as the historical damped sweep (they stop at
  // different iterates within tolerance; the fixed point is unique).
  QuarcTopology topo(16);
  const Workload base = make_load(0.0, 0.05, 16, 16);
  const FlowGraph flows(topo, base, FlowGating::RateInvariant);
  ServiceTimeSolver anderson(flows, 16, iteration_options(SolverIteration::Anderson));
  ServiceTimeSolver gauss(flows, 16, iteration_options(SolverIteration::GaussSeidel));
  SolverWorkspace wa, wg;
  ModelOptions gs_options;
  gs_options.solver = iteration_options(SolverIteration::GaussSeidel);
  const double sat = model_saturation_rate(flows, base, gs_options);
  for (double rate : {0.1 * sat, 0.4 * sat, 0.7 * sat, 0.85 * sat, 0.95 * sat}) {
    SCOPED_TRACE(rate);
    ASSERT_EQ(anderson.solve(rate, wa), SolveStatus::Converged);
    ASSERT_EQ(gauss.solve(rate, wg), SolveStatus::Converged);
    ASSERT_EQ(wa.solution.size(), wg.solution.size());
    for (std::size_t c = 0; c < wa.solution.size(); ++c) {
      EXPECT_NEAR(wa.solution[c].service_time, wg.solution[c].service_time, 1e-6) << c;
      EXPECT_NEAR(wa.solution[c].waiting_time, wg.solution[c].waiting_time, 1e-6) << c;
    }
  }
}

TEST(Solver, AndersonCutsIterationsNearSaturation) {
  // The point of the acceleration: the damped sweep's contraction rate
  // approaches 1 near saturation, Anderson's window extrapolation does
  // not. The ISSUE's target is >= 3x fewer iterations there.
  QuarcTopology topo(16);
  const Workload base = make_load(0.0, 0.05, 16, 16);
  const FlowGraph flows(topo, base, FlowGating::RateInvariant);
  ServiceTimeSolver anderson(flows, 16, iteration_options(SolverIteration::Anderson));
  ServiceTimeSolver gauss(flows, 16, iteration_options(SolverIteration::GaussSeidel));
  SolverWorkspace wa, wg;
  ModelOptions gs_options;
  gs_options.solver = iteration_options(SolverIteration::GaussSeidel);
  const double rate = 0.95 * model_saturation_rate(flows, base, gs_options);
  ASSERT_EQ(anderson.solve(rate, wa), SolveStatus::Converged);
  ASSERT_EQ(gauss.solve(rate, wg), SolveStatus::Converged);
  EXPECT_LE(anderson.iterations_used() * 3, gauss.iterations_used())
      << "anderson " << anderson.iterations_used() << " vs gauss-seidel "
      << gauss.iterations_used();
}

TEST(Solver, AndersonIsDeterministicAcrossWorkspaceReuse) {
  // The history ring lives in the workspace; a reused (dirty) workspace
  // must produce bytes identical to a fresh one.
  QuarcTopology topo(16);
  const Workload base = make_load(0.0, 0.05, 16, 16);
  const FlowGraph flows(topo, base, FlowGating::RateInvariant);
  ServiceTimeSolver solver(flows, 16, iteration_options(SolverIteration::Anderson));
  SolverWorkspace reused;
  ASSERT_EQ(solver.solve(0.007, reused), SolveStatus::Converged);  // dirty the buffers
  ASSERT_EQ(solver.solve(0.003, reused), SolveStatus::Converged);
  SolverWorkspace fresh;
  ASSERT_EQ(solver.solve(0.003, fresh), SolveStatus::Converged);
  ASSERT_EQ(reused.solution.size(), fresh.solution.size());
  for (std::size_t c = 0; c < fresh.solution.size(); ++c) {
    EXPECT_EQ(reused.solution[c].service_time, fresh.solution[c].service_time) << c;
    EXPECT_EQ(reused.solution[c].waiting_time, fresh.solution[c].waiting_time) << c;
    EXPECT_EQ(reused.solution[c].utilization, fresh.solution[c].utilization) << c;
  }
}

TEST(Solver, AndersonDetectsSaturation) {
  QuarcTopology topo(16);
  const Workload w = make_load(0.5, 0.0, 16, 16);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 16, iteration_options(SolverIteration::Anderson));
  EXPECT_EQ(solver.solve(), SolveStatus::Saturated);
}

TEST(Solver, GaussSeidelOptionReproducesTheHistoricalIterationExactly) {
  // The oracle option: byte-identical solution vectors and the same
  // iteration count as the pre-acceleration solver (whose loop the
  // GaussSeidel path preserves op for op). Anderson must beat it or at
  // least match it, and both must agree on the status.
  QuarcTopology topo(16);
  const Workload w = make_load(0.004, 0.0, 16, 16);
  ChannelGraph g(topo, w);
  ServiceTimeSolver a(topo, g, 16, iteration_options(SolverIteration::GaussSeidel));
  ServiceTimeSolver b(topo, g, 16, iteration_options(SolverIteration::GaussSeidel));
  ASSERT_EQ(a.solve(), SolveStatus::Converged);
  ASSERT_EQ(b.solve(), SolveStatus::Converged);
  EXPECT_EQ(a.iterations_used(), b.iterations_used());
  for (const ChannelInfo& ch : topo.channels()) {
    EXPECT_EQ(a.channel(ch.id).service_time, b.channel(ch.id).service_time) << ch.label;
  }
}

// Seeding with exactly the closed-form zero-load start must reproduce the
// unseeded solve byte for byte: the seeded overload differs only in where
// the iteration starts, and this start is the same.
TEST(Solver, SeededSolveFromZeroLoadFloorIsByteIdenticalToUnseeded) {
  QuarcTopology topo(16);
  const Workload base = make_load(0.0, 0.05, 16, 16);
  const FlowGraph flows(topo, base, FlowGating::RateInvariant);
  ServiceTimeSolver solver(flows, 16);
  std::vector<double> floor(flows.num_channels());
  for (std::size_t c = 0; c < floor.size(); ++c) {
    floor[c] = flows.zero_load_service(static_cast<ChannelId>(c), 16);
  }
  SolverWorkspace wa, wb;
  ASSERT_EQ(solver.solve(0.005, wa), SolveStatus::Converged);
  const int unseeded_iters = solver.iterations_used();
  ASSERT_EQ(solver.solve(0.005, wb, floor), SolveStatus::Converged);
  EXPECT_EQ(solver.iterations_used(), unseeded_iters);
  ASSERT_EQ(wa.solution.size(), wb.solution.size());
  for (std::size_t c = 0; c < wa.solution.size(); ++c) {
    EXPECT_EQ(wa.solution[c].service_time, wb.solution[c].service_time) << c;
    EXPECT_EQ(wa.solution[c].waiting_time, wb.solution[c].waiting_time) << c;
    EXPECT_EQ(wa.solution[c].utilization, wb.solution[c].utilization) << c;
  }
}

// Hostile hints — NaN, below the drain-time floor, far past the guard —
// are clamped into the feasible band, so a seeded solve can neither
// diagnose saturation from its seed nor converge to a different fixed
// point than the unseeded oracle.
TEST(Solver, SeededSolveClampsHostileHints) {
  QuarcTopology topo(16);
  const Workload base = make_load(0.0, 0.05, 16, 16);
  const FlowGraph flows(topo, base, FlowGating::RateInvariant);
  ServiceTimeSolver solver(flows, 16);
  const double rate = 0.005;
  SolverWorkspace reference;
  ASSERT_EQ(solver.solve(rate, reference), SolveStatus::Converged);
  const std::vector<ChannelSolution> expected = reference.solution;

  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (const double hint : {kNaN, -5.0, 0.0, 1e300}) {
    SCOPED_TRACE(hint);
    const std::vector<double> x0(flows.num_channels(), hint);
    SolverWorkspace ws;
    ASSERT_EQ(solver.solve(rate, ws, x0), SolveStatus::Converged);
    ASSERT_EQ(ws.solution.size(), expected.size());
    for (std::size_t c = 0; c < expected.size(); ++c) {
      EXPECT_NEAR(ws.solution[c].service_time, expected[c].service_time, 1e-6) << c;
      EXPECT_NEAR(ws.solution[c].waiting_time, expected[c].waiting_time, 1e-6) << c;
    }
  }
}

// The continuation case the seeded overload exists for: restarting from a
// converged neighbour's solution lands on the same fixed point in no more
// iterations than the cold start.
TEST(Solver, SeededSolveFromNeighbourSolutionIsNoWorseThanCold) {
  QuarcTopology topo(16);
  const Workload base = make_load(0.0, 0.05, 16, 16);
  const FlowGraph flows(topo, base, FlowGating::RateInvariant);
  ServiceTimeSolver solver(flows, 16);
  SolverWorkspace ws;
  ASSERT_EQ(solver.solve(0.006, ws), SolveStatus::Converged);
  std::vector<double> hint(flows.num_channels());
  for (std::size_t c = 0; c < hint.size(); ++c) hint[c] = ws.solution[c].service_time;

  SolverWorkspace cold, warm;
  ASSERT_EQ(solver.solve(0.0065, cold), SolveStatus::Converged);
  const int cold_iters = solver.iterations_used();
  ASSERT_EQ(solver.solve(0.0065, warm, hint), SolveStatus::Converged);
  EXPECT_LE(solver.iterations_used(), cold_iters);
  for (std::size_t c = 0; c < cold.solution.size(); ++c) {
    EXPECT_NEAR(warm.solution[c].service_time, cold.solution[c].service_time, 1e-6) << c;
  }
}

// The adaptive Anderson window is a pure function of the residual history,
// so it keeps the fixed point (vs the fixed-window iteration) and stays
// deterministic across workspace reuse; turning it off recovers the
// fixed-window behaviour exactly.
TEST(Solver, AutoWindowKeepsTheFixedPointAndIsDeterministic) {
  QuarcTopology topo(16);
  const Workload base = make_load(0.0, 0.05, 16, 16);
  const FlowGraph flows(topo, base, FlowGating::RateInvariant);
  SolverOptions fixed = iteration_options(SolverIteration::Anderson);
  fixed.anderson_auto_window = false;
  ServiceTimeSolver adaptive(flows, 16, iteration_options(SolverIteration::Anderson));
  ServiceTimeSolver pinned(flows, 16, fixed);
  SolverWorkspace wa, wp;
  for (const double rate : {0.002, 0.005, 0.0068}) {
    SCOPED_TRACE(rate);
    ASSERT_EQ(adaptive.solve(rate, wa), SolveStatus::Converged);
    ASSERT_EQ(pinned.solve(rate, wp), SolveStatus::Converged);
    for (std::size_t c = 0; c < wa.solution.size(); ++c) {
      EXPECT_NEAR(wa.solution[c].service_time, wp.solution[c].service_time, 1e-6) << c;
    }
    // Reused (dirty) vs fresh workspace under the adaptive window: the
    // window trajectory restarts from 1 either way — byte identity.
    SolverWorkspace fresh;
    ASSERT_EQ(adaptive.solve(rate, fresh), SolveStatus::Converged);
    for (std::size_t c = 0; c < wa.solution.size(); ++c) {
      EXPECT_EQ(wa.solution[c].service_time, fresh.solution[c].service_time) << c;
      EXPECT_EQ(wa.solution[c].waiting_time, fresh.solution[c].waiting_time) << c;
    }
  }
}

TEST(Solver, BottleneckIsRimAtUniformUnicast) {
  // The q^2 rim load dominates all other channel classes.
  QuarcTopology topo(32);
  const Workload w = make_load(0.002, 0.0, 32, 32);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 32);
  ASSERT_EQ(solver.solve(), SolveStatus::Converged);
  ChannelId bottleneck = kInvalidChannel;
  solver.max_utilization(&bottleneck);
  ASSERT_NE(bottleneck, kInvalidChannel);
  const auto& label = topo.channel(bottleneck).label;
  EXPECT_TRUE(label.rfind("CW", 0) == 0 || label.rfind("CCW", 0) == 0) << label;
}

}  // namespace
}  // namespace quarc
