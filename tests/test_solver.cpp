#include "quarc/model/solver.hpp"

#include <gtest/gtest.h>

#include "quarc/topo/quarc.hpp"
#include "quarc/traffic/pattern.hpp"

namespace quarc {
namespace {

Workload make_load(double rate, double alpha, int msg, int n) {
  Workload w;
  w.message_rate = rate;
  w.multicast_fraction = alpha;
  w.message_length = msg;
  if (alpha > 0.0) w.pattern = RingRelativePattern::broadcast(n);
  return w;
}

TEST(Solver, ConvergesAtLowLoad) {
  QuarcTopology topo(16);
  const Workload w = make_load(0.001, 0.0, 16, 16);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, w.message_length);
  EXPECT_EQ(solver.solve(), SolveStatus::Converged);
  EXPECT_GT(solver.iterations_used(), 0);
  EXPECT_LT(solver.max_utilization(), 0.2);
}

TEST(Solver, EjectionServiceIsMessageLength) {
  QuarcTopology topo(16);
  const Workload w = make_load(0.002, 0.0, 24, 16);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 24);
  ASSERT_EQ(solver.solve(), SolveStatus::Converged);
  for (const ChannelInfo& ch : topo.channels()) {
    if (ch.kind == ChannelKind::Ejection && g.lambda(ch.id) > 0) {
      EXPECT_DOUBLE_EQ(solver.channel(ch.id).service_time, 24.0);
    }
  }
}

TEST(Solver, ServiceTimesExceedDrainTime) {
  // Any channel's mean service time is at least the pure drain time M, and
  // strictly larger upstream (downstream waits and hops accumulate).
  QuarcTopology topo(16);
  const Workload w = make_load(0.004, 0.0, 16, 16);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 16);
  ASSERT_EQ(solver.solve(), SolveStatus::Converged);
  for (const ChannelInfo& ch : topo.channels()) {
    if (g.lambda(ch.id) <= 0) continue;
    EXPECT_GE(solver.channel(ch.id).service_time, 16.0) << ch.label;
    if (ch.kind == ChannelKind::Injection) {
      // Injection channels sit furthest upstream: strictly above M + 1.
      EXPECT_GT(solver.channel(ch.id).service_time, 17.0) << ch.label;
    }
  }
}

TEST(Solver, VertexSymmetryGivesUniformChannelClasses) {
  QuarcTopology topo(32);
  const Workload w = make_load(0.0012, 0.1, 32, 32);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 32);
  ASSERT_EQ(solver.solve(), SolveStatus::Converged);
  const double cw0 = solver.channel(topo.cw_channel(0)).service_time;
  const double xl0 = solver.channel(topo.xl_channel(0)).service_time;
  for (NodeId i = 1; i < 32; ++i) {
    EXPECT_NEAR(solver.channel(topo.cw_channel(i)).service_time, cw0, 1e-6);
    EXPECT_NEAR(solver.channel(topo.xl_channel(i)).service_time, xl0, 1e-6);
  }
}

TEST(Solver, WaitsIncreaseWithRate) {
  QuarcTopology topo(16);
  double prev = -1.0;
  for (double rate : {0.001, 0.002, 0.004, 0.008}) {
    const Workload w = make_load(rate, 0.0, 16, 16);
    ChannelGraph g(topo, w);
    ServiceTimeSolver solver(topo, g, 16);
    ASSERT_EQ(solver.solve(), SolveStatus::Converged) << rate;
    const double wait = solver.channel(topo.cw_channel(0)).waiting_time;
    EXPECT_GT(wait, prev);
    prev = wait;
  }
}

TEST(Solver, DetectsSaturation) {
  QuarcTopology topo(16);
  const Workload w = make_load(0.5, 0.0, 16, 16);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 16);
  EXPECT_EQ(solver.solve(), SolveStatus::Saturated);
}

TEST(Solver, ZeroLoadTrivially) {
  QuarcTopology topo(16);
  const Workload w = make_load(0.0, 0.0, 16, 16);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 16);
  EXPECT_EQ(solver.solve(), SolveStatus::Converged);
  for (const ChannelInfo& ch : topo.channels()) {
    EXPECT_EQ(solver.channel(ch.id).waiting_time, 0.0);
    EXPECT_EQ(solver.channel(ch.id).utilization, 0.0);
  }
}

TEST(Solver, DampingVariantsAgree) {
  QuarcTopology topo(16);
  const Workload w = make_load(0.006, 0.05, 16, 16);
  ChannelGraph g(topo, w);
  SolverOptions a, b;
  a.damping = 1.0;
  b.damping = 0.3;
  ServiceTimeSolver sa(topo, g, 16, a), sb(topo, g, 16, b);
  ASSERT_EQ(sa.solve(), SolveStatus::Converged);
  ASSERT_EQ(sb.solve(), SolveStatus::Converged);
  for (const ChannelInfo& ch : topo.channels()) {
    EXPECT_NEAR(sa.channel(ch.id).service_time, sb.channel(ch.id).service_time, 1e-5)
        << ch.label;
  }
}

TEST(Solver, BottleneckIsRimAtUniformUnicast) {
  // The q^2 rim load dominates all other channel classes.
  QuarcTopology topo(32);
  const Workload w = make_load(0.002, 0.0, 32, 32);
  ChannelGraph g(topo, w);
  ServiceTimeSolver solver(topo, g, 32);
  ASSERT_EQ(solver.solve(), SolveStatus::Converged);
  ChannelId bottleneck = kInvalidChannel;
  solver.max_utilization(&bottleneck);
  ASSERT_NE(bottleneck, kInvalidChannel);
  const auto& label = topo.channel(bottleneck).label;
  EXPECT_TRUE(label.rfind("CW", 0) == 0 || label.rfind("CCW", 0) == 0) << label;
}

}  // namespace
}  // namespace quarc
