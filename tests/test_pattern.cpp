#include "quarc/traffic/pattern.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "quarc/topo/quarc.hpp"
#include "quarc/traffic/workload.hpp"
#include "quarc/util/error.hpp"

namespace quarc {
namespace {

TEST(RingRelativePattern, OffsetsApplyModuloN) {
  RingRelativePattern p(16, {1, 8, 15});
  EXPECT_EQ(p.destinations(0), (std::vector<NodeId>{1, 8, 15}));
  EXPECT_EQ(p.destinations(10), (std::vector<NodeId>{11, 2, 9}));
  EXPECT_EQ(p.fanout(3), 3u);
}

TEST(RingRelativePattern, RejectsBadOffsets) {
  EXPECT_THROW(RingRelativePattern(16, {0}), InvalidArgument);
  EXPECT_THROW(RingRelativePattern(16, {16}), InvalidArgument);
  EXPECT_THROW(RingRelativePattern(16, {3, 3}), InvalidArgument);
  EXPECT_THROW(RingRelativePattern(16, {}), InvalidArgument);
}

TEST(RingRelativePattern, BroadcastCoversAllOthers) {
  auto p = RingRelativePattern::broadcast(16);
  for (NodeId s : {NodeId{0}, NodeId{7}, NodeId{15}}) {
    const auto& d = p->destinations(s);
    EXPECT_EQ(d.size(), 15u);
    EXPECT_EQ(std::set<NodeId>(d.begin(), d.end()).count(s), 0u);
  }
}

TEST(RingRelativePattern, RandomDrawsDistinctOffsetsDeterministically) {
  Rng r1(5), r2(5);
  auto a = RingRelativePattern::random(64, 10, r1);
  auto b = RingRelativePattern::random(64, 10, r2);
  EXPECT_EQ(a->offsets(), b->offsets());
  EXPECT_EQ(a->offsets().size(), 10u);
  std::set<int> uniq(a->offsets().begin(), a->offsets().end());
  EXPECT_EQ(uniq.size(), 10u);
  for (int k : a->offsets()) {
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 63);
  }
}

TEST(RingRelativePattern, LocalizedStaysInRange) {
  Rng rng(9);
  // The left-rim quadrant of a 32-node Quarc is offsets [1, 8].
  auto p = RingRelativePattern::localized(32, 1, 8, 5, rng);
  for (int k : p->offsets()) {
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 8);
  }
  EXPECT_EQ(p->offsets().size(), 5u);
}

TEST(RingRelativePattern, LocalizedSetMapsToSingleQuarcStream) {
  Rng rng(11);
  QuarcTopology topo(32);
  auto p = RingRelativePattern::localized(32, 1, 8, 4, rng);
  for (NodeId s : {NodeId{0}, NodeId{17}}) {
    const auto streams = topo.multicast_streams(s, p->destinations(s));
    EXPECT_EQ(streams.size(), 1u) << "same-rim destinations must use one port";
  }
}

TEST(UniformRandomPattern, PerSourceSetsVaryButAreFixed) {
  Rng rng(3);
  UniformRandomPattern p(32, 6, rng);
  bool any_difference = false;
  for (NodeId s = 1; s < 32; ++s) {
    EXPECT_EQ(p.destinations(s).size(), 6u);
    // Normalize to offsets for comparison across sources.
    std::set<int> off_s, off_0;
    for (NodeId d : p.destinations(s)) off_s.insert(((d - s) % 32 + 32) % 32);
    for (NodeId d : p.destinations(0)) off_0.insert(d);
    if (off_s != off_0) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
  // Repeated queries return the identical set (fixed at construction).
  EXPECT_EQ(p.destinations(5), p.destinations(5));
}

TEST(ExplicitPattern, ValidatesEntries) {
  EXPECT_THROW(ExplicitPattern({{0}}, "self"), InvalidArgument);          // dest == source
  EXPECT_THROW(ExplicitPattern({{5}, {}}, "range"), InvalidArgument);     // out of range
  EXPECT_THROW(ExplicitPattern({{1, 1}, {}}, "dup"), InvalidArgument);    // duplicate
  EXPECT_NO_THROW(ExplicitPattern({{1}, {0}}, "ok"));
}

TEST(Workload, ValidatesAgainstTopology) {
  QuarcTopology topo(16);
  Workload w;
  w.message_rate = 0.01;
  w.message_length = 16;
  EXPECT_NO_THROW(w.validate(topo));

  w.message_length = 3;  // below the diameter: violates a paper assumption
  EXPECT_THROW(w.validate(topo), InvalidArgument);

  w.message_length = 32;
  w.multicast_fraction = 0.1;  // pattern missing
  EXPECT_THROW(w.validate(topo), InvalidArgument);

  w.pattern = RingRelativePattern::broadcast(16);
  EXPECT_NO_THROW(w.validate(topo));

  w.pattern = RingRelativePattern::broadcast(32);  // wrong network size
  EXPECT_THROW(w.validate(topo), InvalidArgument);

  w.multicast_fraction = 1.5;
  EXPECT_THROW(w.validate(topo), InvalidArgument);
}

TEST(Workload, RateSplit) {
  Workload w;
  w.message_rate = 0.02;
  w.multicast_fraction = 0.25;
  EXPECT_DOUBLE_EQ(w.unicast_rate(), 0.015);
  EXPECT_DOUBLE_EQ(w.multicast_rate(), 0.005);
}

TEST(NeighborhoodPattern, DestinationsStayInsideTheManhattanBall) {
  Rng rng(7);
  NeighborhoodPattern p(6, 6, 2, 4, /*wrap=*/false, rng);
  for (NodeId s = 0; s < 36; ++s) {
    const int sx = s % 6, sy = s / 6;
    std::set<NodeId> seen;
    ASSERT_EQ(p.destinations(s).size(), 4u);
    for (NodeId d : p.destinations(s)) {
      EXPECT_NE(d, s);
      EXPECT_TRUE(seen.insert(d).second) << "duplicate destination";
      const int dist = std::abs(d % 6 - sx) + std::abs(d / 6 - sy);
      EXPECT_LE(dist, 2) << "node " << d << " outside the ball of " << s;
    }
  }
}

TEST(NeighborhoodPattern, WrapMetricReachesAcrossGridEdges) {
  // With the torus metric, the corner's radius-1 ball holds its wrapped
  // neighbours, so a full radius-1 broadcast (k=4) is satisfiable from
  // every node; the clipped mesh metric has only 2 corner neighbours.
  Rng rng(7);
  NeighborhoodPattern wrapped(4, 4, 1, 4, /*wrap=*/true, rng);
  const std::set<NodeId> corner(wrapped.destinations(0).begin(), wrapped.destinations(0).end());
  EXPECT_EQ(corner, (std::set<NodeId>{1, 3, 4, 12}));  // e/w/s/n with wrap

  Rng rng2(7);
  EXPECT_THROW(NeighborhoodPattern(4, 4, 1, 4, /*wrap=*/false, rng2), InvalidArgument);
}

TEST(NeighborhoodPattern, ValidatesItsParameters) {
  Rng rng(1);
  EXPECT_THROW(NeighborhoodPattern(1, 1, 1, 1, false, rng), InvalidArgument);   // < 2 nodes
  EXPECT_THROW(NeighborhoodPattern(4, 4, 0, 1, false, rng), InvalidArgument);   // radius < 1
  EXPECT_THROW(NeighborhoodPattern(4, 4, 1, 0, false, rng), InvalidArgument);   // fanout < 1
  EXPECT_THROW(NeighborhoodPattern(4, 4, 1, 3, false, rng), InvalidArgument);   // corner ball: 2
}

TEST(NeighborhoodPattern, DescribeNamesMetricRadiusAndGrid) {
  Rng rng(1);
  NeighborhoodPattern mesh_p(4, 4, 2, 3, false, rng);
  EXPECT_NE(mesh_p.describe().find("mesh-neighborhood"), std::string::npos);
  EXPECT_NE(mesh_p.describe().find("r=2"), std::string::npos);
  EXPECT_NE(mesh_p.describe().find("4x4"), std::string::npos);
  Rng rng2(1);
  NeighborhoodPattern torus_p(4, 4, 2, 3, true, rng2);
  EXPECT_NE(torus_p.describe().find("torus-neighborhood"), std::string::npos);
}

TEST(Workload, DescribeMentionsKeyParameters) {
  Workload w;
  w.message_rate = 0.01;
  w.multicast_fraction = 0.05;
  w.message_length = 48;
  w.pattern = RingRelativePattern::broadcast(16);
  const auto s = w.describe();
  EXPECT_NE(s.find("0.01"), std::string::npos);
  EXPECT_NE(s.find("48"), std::string::npos);
  EXPECT_NE(s.find("ring-relative"), std::string::npos);
}

}  // namespace
}  // namespace quarc
