#include "quarc/api/registry.hpp"

#include <gtest/gtest.h>

#include "quarc/util/error.hpp"

namespace quarc::api {
namespace {

TEST(SpecArgs, SplitsNameAndArguments) {
  const SpecArgs a("localized:1:8:3");
  EXPECT_EQ(a.name(), "localized");
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.int_at(0), 1);
  EXPECT_EQ(a.int_at(2), 3);
}

TEST(SpecArgs, BareNameHasNoArguments) {
  const SpecArgs a("broadcast");
  EXPECT_EQ(a.name(), "broadcast");
  EXPECT_EQ(a.size(), 0u);
}

TEST(SpecArgs, PairAcceptsBothForms) {
  EXPECT_EQ(SpecArgs("mesh:8x6").pair_at(0, {4, 4}), (std::pair<int, int>{8, 6}));
  EXPECT_EQ(SpecArgs("mesh:8:6").pair_at(0, {4, 4}), (std::pair<int, int>{8, 6}));
  EXPECT_EQ(SpecArgs("mesh").pair_at(0, {4, 4}), (std::pair<int, int>{4, 4}));
}

TEST(SpecArgs, FractionalOffsetsScaleWithNodeCount) {
  EXPECT_EQ(SpecArgs("l:0.25").offset_at(0, 64), 16);
  EXPECT_EQ(SpecArgs("l:0.5").offset_at(0, 16), 8);
  // Integers pass through untouched.
  EXPECT_EQ(SpecArgs("l:5").offset_at(0, 64), 5);
  // Fractions clamp into [1, N-1].
  EXPECT_EQ(SpecArgs("l:0.0").offset_at(0, 16), 1);
  EXPECT_EQ(SpecArgs("l:1.0").offset_at(0, 16), 15);
  EXPECT_THROW(SpecArgs("l:1.5").offset_at(0, 16), InvalidArgument);
}

TEST(SpecArgs, MalformedArgumentsThrow) {
  EXPECT_THROW(SpecArgs(""), InvalidArgument);
  EXPECT_THROW(SpecArgs("t:x").int_at(0), InvalidArgument);
  EXPECT_THROW(SpecArgs("t").int_at(0), InvalidArgument);
  EXPECT_THROW(SpecArgs("t:1").require_count(2, 2, "t:A:B"), InvalidArgument);
}

TEST(TopologyRegistry, EveryRegisteredExampleConstructsAndValidates) {
  const auto entries = TopologyRegistry::instance().entries();
  ASSERT_GE(entries.size(), 7u);
  for (const RegistryEntry& e : entries) {
    SCOPED_TRACE(e.name);
    const auto topo = make_topology(e.example);
    ASSERT_NE(topo, nullptr);
    EXPECT_GE(topo->num_nodes(), 2);
    // Structural soundness of every route/stream (also cross-checks the
    // closed-form port_of overrides against unicast_route().port).
    EXPECT_NO_THROW(validate_topology(*topo));
  }
}

TEST(TopologyRegistry, SpecArgumentsReachTheFactories) {
  EXPECT_EQ(make_topology("quarc:32")->num_nodes(), 32);
  EXPECT_EQ(make_topology("quarc")->num_nodes(), 16);  // default
  EXPECT_EQ(make_topology("mesh:8x6")->num_nodes(), 48);
  EXPECT_EQ(make_topology("mesh:8:6")->num_nodes(), 48);
  EXPECT_EQ(make_topology("hypercube:6")->num_nodes(), 64);
  EXPECT_EQ(make_topology("quarc1p:16")->num_ports(), 1);
  EXPECT_EQ(make_topology("quarc:16")->num_ports(), 4);
}

TEST(TopologyRegistry, UnknownNameListsAlternatives) {
  try {
    make_topology("moebius:9");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("quarc"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("moebius"), std::string::npos);
  }
}

TEST(TopologyRegistry, MalformedSpecsThrow) {
  EXPECT_THROW(make_topology("quarc:8:8"), InvalidArgument);
  EXPECT_THROW(make_topology("mesh:axb"), InvalidArgument);
  EXPECT_THROW(make_topology("hypercube:1"), InvalidArgument);  // factory precondition
}

TEST(PatternRegistry, EveryRegisteredExampleBuildsAValidPattern) {
  const int n = 16;
  for (const RegistryEntry& e : PatternRegistry::instance().entries()) {
    SCOPED_TRACE(e.name);
    Rng rng(7);
    const auto pattern = make_pattern(e.example, n, rng);
    if (e.name == "none") {
      EXPECT_EQ(pattern, nullptr);
      continue;
    }
    ASSERT_NE(pattern, nullptr);
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId d : pattern->destinations(s)) {
        EXPECT_GE(d, 0);
        EXPECT_LT(d, n);
        EXPECT_NE(d, s);
      }
    }
  }
}

TEST(PatternRegistry, BroadcastCoversAllOtherNodes) {
  Rng rng(1);
  const auto p = make_pattern("broadcast", 16, rng);
  EXPECT_EQ(p->fanout(0), 15u);
}

TEST(PatternRegistry, PatternsAreDeterministicInTheRng) {
  Rng a(5), b(5), c(6);
  const auto pa = make_pattern("random:4", 32, a);
  const auto pb = make_pattern("random:4", 32, b);
  const auto pc = make_pattern("random:4", 32, c);
  EXPECT_EQ(pa->destinations(3), pb->destinations(3));
  EXPECT_NE(pa->destinations(3), pc->destinations(3));
}

TEST(PatternRegistry, FractionalLocalizedSpecScales) {
  Rng rng(9);
  // [0.2, 0.8] of a 64-ring = offsets in [13, 51].
  const auto p = make_pattern("localized:0.2:0.8:6", 64, rng);
  ASSERT_NE(p, nullptr);
  for (NodeId d : p->destinations(0)) {
    EXPECT_GE(d, 13);
    EXPECT_LE(d, 51);
  }
}

TEST(PatternRegistry, UnknownOrMalformedSpecsThrow) {
  Rng rng(1);
  EXPECT_THROW(make_pattern("weird:1", 16, rng), InvalidArgument);
  EXPECT_THROW(make_pattern("random", 16, rng), InvalidArgument);
  EXPECT_THROW(make_pattern("broadcast:3", 16, rng), InvalidArgument);
  EXPECT_THROW(make_pattern("localized:1:4", 16, rng), InvalidArgument);
}

TEST(PatternRegistry, NeighborhoodSpecsBuildAndScale) {
  Rng rng(1);
  // Square grid inferred from the node count; explicit WxH for rectangles.
  const auto p = make_pattern("neighborhood:2:3", 16, rng);
  ASSERT_NE(p, nullptr);
  EXPECT_NE(p->describe().find("mesh-neighborhood"), std::string::npos);
  EXPECT_EQ(p->fanout(5), 3u);
  // H=2 wraps y-neighbours onto one node: the radius-1 ball holds 3 nodes.
  const auto rect = make_pattern("neighborhood-wrap:1:3:8x2", 16, rng);
  ASSERT_NE(rect, nullptr);
  EXPECT_NE(rect->describe().find("8x2"), std::string::npos);
}

TEST(PatternRegistry, NeighborhoodSpecParseErrorsNameTheProblem) {
  Rng rng(1);
  // Arity and type errors come from the spec layer...
  EXPECT_THROW(make_pattern("neighborhood:2", 16, rng), InvalidArgument);
  EXPECT_THROW(make_pattern("neighborhood:2:3:4x4:9", 16, rng), InvalidArgument);
  EXPECT_THROW(make_pattern("neighborhood:two:3", 16, rng), InvalidArgument);
  // ...grid mismatches from the neighborhood factory...
  EXPECT_THROW(make_pattern("neighborhood:2:3:5x5", 16, rng), InvalidArgument);   // 25 != 16
  EXPECT_THROW(make_pattern("neighborhood:2:3", 12, rng), InvalidArgument);       // not square
  // ...and parameter violations from the pattern itself.
  EXPECT_THROW(make_pattern("neighborhood:0:3", 16, rng), InvalidArgument);       // radius < 1
  EXPECT_THROW(make_pattern("neighborhood:1:4", 16, rng), InvalidArgument);       // ball too small
  try {
    make_pattern("neighborhood:2:3:5x5", 16, rng);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("neighborhood:2:3:5x5"), std::string::npos)
        << "error must quote the offending spec";
  }
}

TEST(Registries, SelfRegistrationIsOpenForExtension) {
  // A new factory registered at runtime resolves immediately — the same
  // mechanism the built-ins use at static-init time.
  static bool registered = false;
  if (!registered) {
    TopologyRegistry::instance().add(
        {"test-ring", "test-ring[:N]", "registration test double", "test-ring:16"},
        [](const SpecArgs& a) { return make_topology("quarc:" + std::to_string(a.int_at(0, 16))); });
    registered = true;
  }
  EXPECT_TRUE(TopologyRegistry::instance().contains("test-ring"));
  EXPECT_EQ(make_topology("test-ring:32")->num_nodes(), 32);
  EXPECT_THROW(TopologyRegistry::instance().add({"test-ring", "", "", ""}, nullptr),
               InvalidArgument);
}

}  // namespace
}  // namespace quarc::api
