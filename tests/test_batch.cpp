// Batch determinism suite: one fleet pool must be invisible in the bytes.
//
// The batch engine reschedules every member's points onto one shared pool
// behind shared compiled artifacts and a shared result store. Each test
// pins one way that rescheduling could leak into results: member-vs-solo
// documents, thread counts, warm-vs-cold caches, and the streamed JSONL
// order.
#include "quarc/batch/batch_runner.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "quarc/batch/scenario_set.hpp"
#include "quarc/sweep/sweep_cache.hpp"
#include "quarc/util/json.hpp"

namespace quarc::batch {
namespace {

std::string to_json_text(const api::ResultSet& rs) {
  std::ostringstream os;
  rs.write_json(os);
  return os.str();
}

/// Four members, three sharing quarc:16 (two alphas + one unicast), one
/// simulating — small enough for CI, wide enough to cross every sharing
/// boundary (plan reuse, flow reuse, pattern-less members, sim seeds).
constexpr const char* kFleet =
    "{\"topology\":\"quarc:16\",\"pattern\":\"random:3\",\"alpha\":0.05,"
    "\"rates\":[0.002,0.004],\"msg\":16,\"seed\":42}\n"
    "{\"topology\":\"quarc:16\",\"pattern\":\"random:3\",\"alpha\":0.1,"
    "\"rates\":[0.002,0.004],\"msg\":16,\"seed\":42}\n"
    "{\"topology\":\"quarc:16\",\"alpha\":0,\"rates\":[0.003],\"msg\":16,\"seed\":42}\n"
    "{\"topology\":\"spidergon:16\",\"pattern\":\"random:3\",\"alpha\":0.05,"
    "\"rates\":[0.002],\"msg\":16,\"seed\":42,\"sim\":true,"
    "\"warmup\":500,\"measure\":4000}\n";

struct BatchOutput {
  std::vector<std::string> docs;  ///< one serialised ResultSet per member
  std::string stream;             ///< the JSONL point stream
  BatchStats stats;
};

BatchOutput run_fleet(int threads, std::shared_ptr<SweepCache> cache) {
  BatchOptions options;
  options.threads = threads;
  options.cache = std::move(cache);
  BatchRunner runner(ScenarioSet::parse_text(kFleet), options);
  std::ostringstream stream;
  BatchOutput out;
  for (api::ResultSet& rs : runner.run(&stream, nullptr)) out.docs.push_back(to_json_text(rs));
  out.stream = stream.str();
  out.stats = runner.stats();
  return out;
}

TEST(Batch, MatchesIndividualRunsByteForByte) {
  const BatchOutput batch = run_fleet(/*threads=*/4, nullptr);
  const ScenarioSet set = ScenarioSet::parse_text(kFleet);
  ASSERT_EQ(batch.docs.size(), set.size());
  for (std::size_t m = 0; m < set.size(); ++m) {
    api::Scenario solo = set[m].make_scenario();  // no shared artifacts, own pool
    EXPECT_EQ(batch.docs[m], to_json_text(solo.run_sweep(set[m].rates))) << "member " << m;
  }
}

TEST(Batch, ThreadCountNeverChangesAByte) {
  const BatchOutput serial = run_fleet(1, nullptr);
  const BatchOutput pooled = run_fleet(4, nullptr);
  EXPECT_EQ(serial.docs, pooled.docs);
  EXPECT_EQ(serial.stream, pooled.stream);
}

TEST(Batch, WarmCacheReplaysTheColdBytes) {
  auto cache = std::make_shared<SweepCache>();
  const BatchOutput cold = run_fleet(4, cache);
  EXPECT_EQ(cold.stats.cache_hits, 0);
  EXPECT_EQ(cold.stats.cache_misses, 6);

  const BatchOutput warm = run_fleet(4, cache);
  EXPECT_EQ(warm.stats.cache_hits, 6);
  EXPECT_EQ(warm.stats.cache_misses, 0);
  EXPECT_EQ(warm.stats.solved_iterations, 0);  // zero solver work on replay
  EXPECT_EQ(warm.docs, cold.docs);
  EXPECT_EQ(warm.stream, cold.stream);  // reorder buffer: same canonical order

  // And against a different thread count while warm.
  EXPECT_EQ(run_fleet(1, cache).stream, cold.stream);
}

TEST(Batch, AggregateStatsAreTruthful) {
  const BatchOutput out = run_fleet(4, std::make_shared<SweepCache>());
  EXPECT_EQ(out.stats.scenarios, 4);
  EXPECT_EQ(out.stats.points, 6);
  EXPECT_EQ(out.stats.cache_hits + out.stats.cache_misses, out.stats.points);
  // Three members share the quarc:16 multicast plan key; the unicast and
  // spidergon members compile their own. Every member's alpha is a
  // distinct flow key within its plan.
  EXPECT_EQ(out.stats.artifacts.plans_compiled, 3);
  EXPECT_EQ(out.stats.artifacts.plans_reused, 1);
  EXPECT_EQ(out.stats.artifacts.flows_compiled, 4);
  EXPECT_EQ(out.stats.artifacts.flows_reused, 0);
  EXPECT_GT(out.stats.solved_iterations, 0);
  EXPECT_GE(out.stats.elapsed_seconds, 0.0);
}

TEST(Batch, StreamIsOnePointPerLineInCanonicalOrder) {
  const BatchOutput out = run_fleet(4, nullptr);
  std::istringstream stream(out.stream);
  std::string line;
  std::vector<int> scenario_of_line;
  while (std::getline(stream, line)) {
    const json::Value v = json::Value::parse(line);
    EXPECT_EQ(v.at("schema").as_int(), kBatchStreamSchemaVersion);
    EXPECT_FALSE(v.at("fp").as_string().empty());
    EXPECT_GT(v.at("row").at("rate").as_double(), 0.0);
    scenario_of_line.push_back(static_cast<int>(v.at("scenario").as_int()));
  }
  EXPECT_EQ(scenario_of_line, (std::vector<int>{0, 0, 1, 1, 2, 3}));
}

TEST(Batch, DryRunReportsTheFleetWithoutSolving) {
  BatchRunner runner(ScenarioSet::parse_text(kFleet), {});
  std::ostringstream out;
  runner.dry_run(out);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<json::Value> docs;
  while (std::getline(lines, line)) docs.push_back(json::Value::parse(line));
  ASSERT_EQ(docs.size(), 5u);  // 4 members + the report
  EXPECT_EQ(docs[0].at("topology").as_string(), "quarc:16");
  EXPECT_EQ(docs[0].at("points").as_int(), 2);
  EXPECT_EQ(docs[2].at("pattern").as_string(), "none");  // alpha=0 normalised

  const json::Value& report = docs.back();
  EXPECT_EQ(report.at("scenarios").as_int(), 4);
  EXPECT_EQ(report.at("points").as_int(), 6);
  EXPECT_EQ(report.at("route_plans").as_int(), 3);
  EXPECT_EQ(report.at("flow_graphs").as_int(), 4);
  EXPECT_EQ(runner.stats().cache_misses, 0);  // nothing solved

  // The fingerprints a dry run prints are the ones the real run uses.
  const ScenarioSet set = ScenarioSet::parse_text(kFleet);
  api::Scenario first = set[0].make_scenario();
  EXPECT_EQ(docs[0].at("fp").as_string(), first.fingerprint().hex());
}

}  // namespace
}  // namespace quarc::batch
