#include "quarc/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "quarc/util/error.hpp"

namespace quarc {
namespace {

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"rate", "model", "sim"});
  t.add_row({std::string("0.01"), 123.456, std::int64_t{42}});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("rate"), std::string::npos);
  EXPECT_NE(out.find("123.456"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, PrecisionApplied) {
  Table t({"x"}, 1);
  t.add_row({3.14159});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.1"), std::string::npos);
  EXPECT_EQ(os.str().find("3.14"), std::string::npos);
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), InvalidArgument);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.add_row({std::string("has,comma"), std::string("has\"quote")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvRoundTripStructure) {
  Table t({"a", "b"});
  t.add_row({std::int64_t{1}, std::int64_t{2}});
  t.add_row({std::int64_t{3}, std::int64_t{4}});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({1.0, 2.0, 3.0});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table(std::vector<std::string>{}), InvalidArgument);
}

}  // namespace
}  // namespace quarc
