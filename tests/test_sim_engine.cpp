// Byte-identity of the active (event-driven) engine against the reference
// every-channel-every-cycle oracle — the property that lets
// SimConfig::engine stay out of the scenario fingerprint: the two engines
// must agree not merely statistically but bit-for-bit on every SimResult
// field, across every registered topology family, every traffic class
// (unicast-only, mixed, multicast-only; hardware streams and software
// batched-unicast fallback), and every termination regime (stable,
// unstable abort, drain-cap abort). debug_serialize prints doubles as
// hexfloats, so string equality below IS bit equality.
#include "quarc/sim/engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "quarc/api/registry.hpp"
#include "quarc/api/scenario.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/topo/topology.hpp"
#include "quarc/util/error.hpp"
#include "quarc/util/rng.hpp"

namespace quarc {
namespace {

using sim::SimConfig;
using sim::SimEngine;
using sim::Simulator;
using sim::SimResult;

/// A short but non-trivial run: long enough for grants, blocking, stream
/// interleaving and (at alpha > 0) clone-tap absorption to all occur.
SimConfig config_for(const Topology& topo, double rate, double alpha, int msg) {
  SimConfig c;
  c.workload.message_rate = rate;
  c.workload.multicast_fraction = alpha;
  c.workload.message_length = msg;
  if (alpha > 0.0) {
    Rng rng(11);
    c.workload.pattern = api::make_pattern("random:3", topo.num_nodes(), rng);
  }
  c.warmup_cycles = 300;
  c.measure_cycles = 2500;
  c.seed = 7;
  return c;
}

std::string serialized_run(const Topology& topo, SimConfig c, SimEngine engine) {
  c.engine = engine;
  return sim::debug_serialize(Simulator(topo, c).run());
}

/// Runs one (topology, config) cell under both engines and expects the
/// serialized results to match byte for byte.
void expect_engines_identical(const Topology& topo, const SimConfig& c) {
  const std::string ref = serialized_run(topo, c, SimEngine::Reference);
  const std::string act = serialized_run(topo, c, SimEngine::Active);
  EXPECT_EQ(ref, act);
}

TEST(SimEngine, IdenticalAcrossAllRegisteredTopologies) {
  // Every registered family via its own example spec: Quarc all-port and
  // one-port (hardware streams), mesh-ham (hardware), Spidergon, mesh,
  // torus, hypercube (software batched-unicast fallback). Unicast-only,
  // mixed, and multicast-only traffic per family.
  for (const api::RegistryEntry& e : api::TopologyRegistry::instance().entries()) {
    SCOPED_TRACE(e.example);
    const auto topo = api::make_topology(e.example);
    expect_engines_identical(*topo, config_for(*topo, 0.004, 0.0, 16));
    expect_engines_identical(*topo, config_for(*topo, 0.003, 0.05, 16));
    expect_engines_identical(*topo, config_for(*topo, 0.0015, 1.0, 16));
  }
}

TEST(SimEngine, IdenticalWhenUnstable) {
  // Offered load far above capacity with a small queue bound: both engines
  // must detect the blow-up at the same checkpoint cycle and abort with
  // the same truncated counters.
  for (const api::RegistryEntry& e : api::TopologyRegistry::instance().entries()) {
    SCOPED_TRACE(e.example);
    const auto topo = api::make_topology(e.example);
    SimConfig c = config_for(*topo, 0.5, 0.05, 16);
    c.measure_cycles = 4000;
    c.max_queue_length = 64;
    c.engine = SimEngine::Reference;
    const SimResult r = Simulator(*topo, c).run();
    ASSERT_FALSE(r.stable);
    expect_engines_identical(*topo, c);
  }
}

TEST(SimEngine, IdenticalWhenDrainCapped) {
  // A drain cap too small for in-flight messages to finish: both engines
  // must give up after the same cycle with completed == false.
  for (const api::RegistryEntry& e : api::TopologyRegistry::instance().entries()) {
    SCOPED_TRACE(e.example);
    const auto topo = api::make_topology(e.example);
    SimConfig c = config_for(*topo, 0.01, 0.05, 16);
    c.drain_cap_cycles = 5;
    c.engine = SimEngine::Reference;
    const SimResult r = Simulator(*topo, c).run();
    ASSERT_FALSE(r.completed);
    expect_engines_identical(*topo, c);
  }
}

TEST(SimEngine, IdenticalWithStreamSamplesAndInvariantChecks) {
  // Sample capture ordering and the invariant-scan cadence must not
  // differ between engines (the scan itself is pure, but it pins that
  // both engines hold a valid state on the same cycles).
  const auto topo = api::make_topology("quarc:16");
  SimConfig c = config_for(*topo, 0.003, 0.3, 16);
  c.collect_stream_samples = true;
  c.check_invariants = true;
  expect_engines_identical(*topo, c);
}

TEST(SimEngine, IdenticalUnderIdleFastForward) {
  // A near-idle workload: the active engine skips most cycles outright
  // (profile().cycles_skipped below proves the fast path engaged), yet
  // every time-averaged statistic still matches the reference, which
  // stepped each skipped cycle one by one.
  const auto topo = api::make_topology("quarc:16");
  SimConfig c = config_for(*topo, 0.0002, 0.1, 16);
  c.measure_cycles = 20000;

  c.engine = SimEngine::Active;
  Simulator active(*topo, c);
  const SimResult act = active.run();
  EXPECT_GT(active.profile().cycles_skipped, 0);
  EXPECT_LT(active.profile().cycles_executed, act.cycles_run);

  c.engine = SimEngine::Reference;
  Simulator reference(*topo, c);
  const SimResult ref = reference.run();
  EXPECT_EQ(reference.profile().cycles_skipped, 0);
  EXPECT_EQ(sim::debug_serialize(ref), sim::debug_serialize(act));
}

TEST(SimEngine, SweepJsonIsByteIdenticalAcrossEngines) {
  // End to end through Scenario/ResultSet: the serialised sweep document
  // (what artifact caches, baselines and quarc-diff consume) must not
  // change by a byte when the engine switches. This is the invariant that
  // justifies excluding the engine knob from the fingerprint.
  auto run_with = [](SimEngine engine) {
    api::Scenario s;
    s.topology("quarc:16").pattern("random:4").alpha(0.05).message_length(16).seed(5);
    s.warmup(200).measure(1500).with_sim(true);
    s.sim_config().engine = engine;
    std::ostringstream os;
    s.run_sweep(std::vector<double>{0.001, 0.003}).write_json(os);
    return os.str();
  };
  EXPECT_EQ(run_with(SimEngine::Active), run_with(SimEngine::Reference));
}

TEST(SimEngine, FingerprintExcludesEngine) {
  api::Scenario a;
  a.topology("quarc:16").pattern("random:4").alpha(0.05);
  api::Scenario b;
  b.topology("quarc:16").pattern("random:4").alpha(0.05);
  a.sim_config().engine = SimEngine::Active;
  b.sim_config().engine = SimEngine::Reference;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(SimEngine, ParseAndFormat) {
  EXPECT_EQ(sim::parse_sim_engine("active"), SimEngine::Active);
  EXPECT_EQ(sim::parse_sim_engine("reference"), SimEngine::Reference);
  EXPECT_STREQ(sim::to_string(SimEngine::Active), "active");
  EXPECT_STREQ(sim::to_string(SimEngine::Reference), "reference");
  EXPECT_THROW(sim::parse_sim_engine("fast"), InvalidArgument);
  EXPECT_THROW(sim::parse_sim_engine(""), InvalidArgument);
}

TEST(SimEngine, DefaultEngineFollowsEnvironment) {
  // The env knob is what CI's reference escape-hatch lane uses to run the
  // whole sim suite against the oracle without touching any test code.
  const char* saved = std::getenv("QUARC_SIM_ENGINE");
  const std::string restore = saved ? saved : "";

  ::unsetenv("QUARC_SIM_ENGINE");
  EXPECT_EQ(sim::default_sim_engine(), SimEngine::Active);
  ::setenv("QUARC_SIM_ENGINE", "reference", 1);
  EXPECT_EQ(sim::default_sim_engine(), SimEngine::Reference);
  ::setenv("QUARC_SIM_ENGINE", "active", 1);
  EXPECT_EQ(sim::default_sim_engine(), SimEngine::Active);
  ::setenv("QUARC_SIM_ENGINE", "turbo", 1);
  EXPECT_THROW(sim::default_sim_engine(), InvalidArgument);

  if (saved) {
    ::setenv("QUARC_SIM_ENGINE", restore.c_str(), 1);
  } else {
    ::unsetenv("QUARC_SIM_ENGINE");
  }
}

}  // namespace
}  // namespace quarc
