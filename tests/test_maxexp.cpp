// Tests of the Eq. 10-13 order-statistics kernel, including the
// equivalence of the paper's recursion and the inclusion-exclusion closed
// form, and classical identities (harmonic sums for iid rates).
#include "quarc/model/maxexp.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "quarc/util/error.hpp"
#include "quarc/util/rng.hpp"

namespace quarc {
namespace {

TEST(MaxExp, EmptyIsZero) {
  EXPECT_EQ(expected_max_exponential({}), 0.0);
  EXPECT_EQ(expected_max_exponential_recursive({}), 0.0);
}

TEST(MaxExp, SingleVariableIsMean) {
  const std::array<double, 1> mu = {4.0};
  EXPECT_DOUBLE_EQ(expected_max_exponential(mu), 0.25);
  EXPECT_DOUBLE_EQ(expected_max_exponential_recursive(mu), 0.25);
}

TEST(MaxExp, TwoVariablesMatchesEq11) {
  // Eq. 11: E[max] = 1/(mu1+mu2) + mu1/(mu1+mu2)*1/mu2 + mu2/(mu1+mu2)*1/mu1.
  const double mu1 = 0.7, mu2 = 2.3;
  const double expected =
      1.0 / (mu1 + mu2) + (mu1 / (mu1 + mu2)) / mu2 + (mu2 / (mu1 + mu2)) / mu1;
  const std::array<double, 2> mu = {mu1, mu2};
  EXPECT_NEAR(expected_max_exponential(mu), expected, 1e-12);
  EXPECT_NEAR(expected_max_exponential_recursive(mu), expected, 1e-12);
}

TEST(MaxExp, IidHarmonicIdentity) {
  // E[max of m iid Exp(mu)] = H_m / mu.
  for (int m = 1; m <= 8; ++m) {
    std::vector<double> mu(static_cast<std::size_t>(m), 3.0);
    double harmonic = 0.0;
    for (int k = 1; k <= m; ++k) harmonic += 1.0 / k;
    EXPECT_NEAR(expected_max_exponential(mu), harmonic / 3.0, 1e-12) << "m=" << m;
  }
}

TEST(MaxExp, RecursionEqualsInclusionExclusionRandomized) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = 1 + static_cast<int>(rng.uniform_below(6));
    std::vector<double> mu;
    for (int i = 0; i < m; ++i) mu.push_back(0.01 + 10.0 * rng.uniform());
    const double a = expected_max_exponential(mu);
    const double b = expected_max_exponential_recursive(mu);
    EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, a));
  }
}

TEST(MaxExp, MaxAtLeastEachMeanAndAtMostSum) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> mu;
    const int m = 2 + static_cast<int>(rng.uniform_below(3));
    double sum_means = 0.0, max_mean = 0.0;
    for (int i = 0; i < m; ++i) {
      mu.push_back(0.1 + rng.uniform());
      sum_means += 1.0 / mu.back();
      max_mean = std::max(max_mean, 1.0 / mu.back());
    }
    const double v = expected_max_exponential(mu);
    EXPECT_GE(v, max_mean - 1e-12);
    EXPECT_LE(v, sum_means + 1e-12);
  }
}

TEST(MaxExp, MonotoneInEachRate) {
  // Increasing any rate (making that stream faster) cannot increase E[max].
  const std::array<double, 3> base = {1.0, 2.0, 3.0};
  const double v0 = expected_max_exponential(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    auto faster = base;
    faster[i] *= 1.5;
    EXPECT_LT(expected_max_exponential(faster), v0 + 1e-12);
  }
}

TEST(MaxExp, AgreesWithMonteCarlo) {
  const std::array<double, 4> mu = {0.5, 1.0, 2.0, 4.0};
  Rng rng(99);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    double worst = 0.0;
    for (double m : mu) worst = std::max(worst, rng.exponential(m));
    sum += worst;
  }
  EXPECT_NEAR(sum / n, expected_max_exponential(mu), 0.01);
}

TEST(MaxExp, FromMeansDropsDegenerateStreams) {
  // A stream with zero waiting fires instantly and cannot be the maximum.
  const std::array<double, 3> means = {0.0, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(expected_max_from_means(means), 2.0);
  const std::array<double, 2> all_zero = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(expected_max_from_means(all_zero), 0.0);
}

TEST(MaxExp, FromMeansMatchesDirect) {
  const std::array<double, 3> means = {1.0, 2.0, 4.0};
  const std::array<double, 3> mu = {1.0, 0.5, 0.25};
  EXPECT_NEAR(expected_max_from_means(means), expected_max_exponential(mu), 1e-12);
}

TEST(MaxExp, RejectsNonPositiveRates) {
  const std::array<double, 2> bad = {1.0, 0.0};
  EXPECT_THROW(expected_max_exponential(bad), InvalidArgument);
  const std::array<double, 2> neg = {1.0, -2.0};
  EXPECT_THROW(expected_max_exponential_recursive(neg), InvalidArgument);
}

}  // namespace
}  // namespace quarc
