// Tests of the Eq. 10-13 order-statistics kernel, including the
// equivalence of the paper's recursion and the inclusion-exclusion closed
// form, and classical identities (harmonic sums for iid rates).
#include "quarc/model/maxexp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "quarc/util/error.hpp"
#include "quarc/util/rng.hpp"

namespace quarc {
namespace {

TEST(MaxExp, EmptyIsZero) {
  EXPECT_EQ(expected_max_exponential({}), 0.0);
  EXPECT_EQ(expected_max_exponential_recursive({}), 0.0);
}

TEST(MaxExp, SingleVariableIsMean) {
  const std::array<double, 1> mu = {4.0};
  EXPECT_DOUBLE_EQ(expected_max_exponential(mu), 0.25);
  EXPECT_DOUBLE_EQ(expected_max_exponential_recursive(mu), 0.25);
}

TEST(MaxExp, TwoVariablesMatchesEq11) {
  // Eq. 11: E[max] = 1/(mu1+mu2) + mu1/(mu1+mu2)*1/mu2 + mu2/(mu1+mu2)*1/mu1.
  const double mu1 = 0.7, mu2 = 2.3;
  const double expected =
      1.0 / (mu1 + mu2) + (mu1 / (mu1 + mu2)) / mu2 + (mu2 / (mu1 + mu2)) / mu1;
  const std::array<double, 2> mu = {mu1, mu2};
  EXPECT_NEAR(expected_max_exponential(mu), expected, 1e-12);
  EXPECT_NEAR(expected_max_exponential_recursive(mu), expected, 1e-12);
}

TEST(MaxExp, IidHarmonicIdentity) {
  // E[max of m iid Exp(mu)] = H_m / mu.
  for (int m = 1; m <= 8; ++m) {
    std::vector<double> mu(static_cast<std::size_t>(m), 3.0);
    double harmonic = 0.0;
    for (int k = 1; k <= m; ++k) harmonic += 1.0 / k;
    EXPECT_NEAR(expected_max_exponential(mu), harmonic / 3.0, 1e-12) << "m=" << m;
  }
}

TEST(MaxExp, RecursionEqualsInclusionExclusionRandomized) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = 1 + static_cast<int>(rng.uniform_below(6));
    std::vector<double> mu;
    for (int i = 0; i < m; ++i) mu.push_back(0.01 + 10.0 * rng.uniform());
    const double a = expected_max_exponential(mu);
    const double b = expected_max_exponential_recursive(mu);
    EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, a));
  }
}

TEST(MaxExp, MaxAtLeastEachMeanAndAtMostSum) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> mu;
    const int m = 2 + static_cast<int>(rng.uniform_below(3));
    double sum_means = 0.0, max_mean = 0.0;
    for (int i = 0; i < m; ++i) {
      mu.push_back(0.1 + rng.uniform());
      sum_means += 1.0 / mu.back();
      max_mean = std::max(max_mean, 1.0 / mu.back());
    }
    const double v = expected_max_exponential(mu);
    EXPECT_GE(v, max_mean - 1e-12);
    EXPECT_LE(v, sum_means + 1e-12);
  }
}

TEST(MaxExp, MonotoneInEachRate) {
  // Increasing any rate (making that stream faster) cannot increase E[max].
  const std::array<double, 3> base = {1.0, 2.0, 3.0};
  const double v0 = expected_max_exponential(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    auto faster = base;
    faster[i] *= 1.5;
    EXPECT_LT(expected_max_exponential(faster), v0 + 1e-12);
  }
}

TEST(MaxExp, AgreesWithMonteCarlo) {
  const std::array<double, 4> mu = {0.5, 1.0, 2.0, 4.0};
  Rng rng(99);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    double worst = 0.0;
    for (double m : mu) worst = std::max(worst, rng.exponential(m));
    sum += worst;
  }
  EXPECT_NEAR(sum / n, expected_max_exponential(mu), 0.01);
}

TEST(MaxExp, FromMeansDropsDegenerateStreams) {
  // A stream with zero waiting fires instantly and cannot be the maximum.
  const std::array<double, 3> means = {0.0, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(expected_max_from_means(means), 2.0);
  const std::array<double, 2> all_zero = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(expected_max_from_means(all_zero), 0.0);
}

TEST(MaxExp, FromMeansMatchesDirect) {
  const std::array<double, 3> means = {1.0, 2.0, 4.0};
  const std::array<double, 3> mu = {1.0, 0.5, 0.25};
  EXPECT_NEAR(expected_max_from_means(means), expected_max_exponential(mu), 1e-12);
}

TEST(MaxExp, RejectsNonPositiveRates) {
  const std::array<double, 2> bad = {1.0, 0.0};
  EXPECT_THROW(expected_max_exponential(bad), InvalidArgument);
  const std::array<double, 2> neg = {1.0, -2.0};
  EXPECT_THROW(expected_max_exponential_recursive(neg), InvalidArgument);
  EXPECT_THROW(expected_max_exponential_stable(neg), InvalidArgument);
  EXPECT_THROW(expected_max_exponential_integrated(bad), InvalidArgument);
}

// ---- the stable (production) form and the large-m paths ----

TEST(MaxExp, StableCrossPinsBothSubsetFormsUpTo20) {
  // The ISSUE's cross-pin: for every m the 2^m forms can handle, the
  // stable evaluation must agree with the recursion (its exact
  // reformulation) and with the inclusion-exclusion closed form to the
  // latter's cancellation-limited accuracy.
  Rng rng(321);
  for (int trial = 0; trial < 120; ++trial) {
    const int m = 1 + static_cast<int>(rng.uniform_below(20));
    std::vector<double> mu;
    for (int i = 0; i < m; ++i) mu.push_back(0.05 + 5.0 * rng.uniform());
    const double stable = expected_max_exponential_stable(mu);
    const double recursive = expected_max_exponential_recursive(mu);
    EXPECT_NEAR(stable, recursive, 1e-9 * std::max(1.0, recursive)) << "m=" << m;
    if (m <= 12) {  // inclusion-exclusion is still trustworthy here
      const double closed = expected_max_exponential(mu);
      EXPECT_NEAR(stable, closed, 1e-7 * std::max(1.0, closed)) << "m=" << m;
    }
  }
}

TEST(MaxExp, IntegratedCrossPinsTheRecursion) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const int m = 1 + static_cast<int>(rng.uniform_below(10));
    std::vector<double> mu;
    for (int i = 0; i < m; ++i) mu.push_back(0.05 + 5.0 * rng.uniform());
    const double exact = expected_max_exponential_recursive(mu);
    const double integrated = expected_max_exponential_integrated(mu);
    EXPECT_NEAR(integrated, exact, 1e-8 * std::max(1.0, exact)) << "m=" << m;
  }
}

TEST(MaxExp, WideIidBroadcastMatchesHarmonicIdentity) {
  // 64 identical streams — a realistic wide broadcast. The 2^m forms
  // abort here; the multiset collapse makes it exact and O(m).
  for (int m : {21, 40, 64, 128}) {
    std::vector<double> mu(static_cast<std::size_t>(m), 2.5);
    double harmonic = 0.0;
    for (int k = 1; k <= m; ++k) harmonic += 1.0 / k;
    EXPECT_NEAR(expected_max_exponential_stable(mu), harmonic / 2.5, 1e-10) << "m=" << m;
  }
}

TEST(MaxExp, WideFewDistinctRatesStayExact) {
  // 48 streams over 3 distinct rates: collapsed DP (17 * 17 * 17 states),
  // cross-pinned against quadrature.
  std::vector<double> mu;
  for (int i = 0; i < 16; ++i) {
    mu.push_back(0.5);
    mu.push_back(1.25);
    mu.push_back(3.0);
  }
  const double dp = expected_max_exponential_stable(mu);
  const double integrated = expected_max_exponential_integrated(mu);
  EXPECT_NEAR(dp, integrated, 1e-8 * dp);
  // Sanity bounds: at least the slowest stream's mean, at most sum of means.
  EXPECT_GT(dp, 2.0);
  EXPECT_LT(dp, 16.0 * (1.0 / 0.5 + 1.0 / 1.25 + 1.0 / 3.0));
}

TEST(MaxExp, WideFullyHeterogeneousFallsBackToQuadrature) {
  // 40 distinct rates: the collapsed DP would need 2^40 states, so the
  // stable form must route to quadrature — and still satisfy the exact
  // order-statistics bounds and monotonicity.
  std::vector<double> mu;
  for (int i = 0; i < 40; ++i) mu.push_back(0.2 + 0.13 * i);
  const double v = expected_max_exponential_stable(mu);
  double max_mean = 0.0, sum_means = 0.0;
  for (double r : mu) {
    max_mean = std::max(max_mean, 1.0 / r);
    sum_means += 1.0 / r;
  }
  EXPECT_GE(v, max_mean);
  EXPECT_LE(v, sum_means);
  // Supersets dominate: adding a stream cannot lower the maximum.
  std::vector<double> more = mu;
  more.push_back(0.21);
  EXPECT_GE(expected_max_exponential_stable(more), v - 1e-9);
}

TEST(MaxExp, FromMeansNoLongerAbortsOnWideStreamSets) {
  // The satellite bug: >20 streams used to QUARC_REQUIRE-abort. A wide
  // one-port broadcast (equal means) now evaluates via the collapse.
  std::vector<double> means(64, 3.0);
  double harmonic = 0.0;
  for (int k = 1; k <= 64; ++k) harmonic += 1.0 / k;
  EXPECT_NEAR(expected_max_from_means(means), 3.0 * harmonic, 1e-9);
  // Mixed degenerate + live streams keep the eps-drop semantics.
  means.push_back(0.0);
  EXPECT_NEAR(expected_max_from_means(means), 3.0 * harmonic, 1e-9);
}

TEST(MaxExp, StableAgreesWithMonteCarloOnAWideSet) {
  std::vector<double> mu;
  for (int i = 0; i < 24; ++i) mu.push_back(0.4 + 0.35 * (i % 6));
  const double expected = expected_max_exponential_stable(mu);
  Rng rng(2024);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double worst = 0.0;
    for (double m : mu) worst = std::max(worst, rng.exponential(m));
    sum += worst;
  }
  EXPECT_NEAR(sum / n, expected, 0.02 * expected);
}

}  // namespace
}  // namespace quarc
