// ChannelGraph rate accumulation against closed-form Quarc expressions.
//
// For uniform unicast at per-node rate u on a Quarc of N nodes (q = N/4),
// vertex symmetry gives, with r = u/(N-1):
//   lambda_CW  = r * q^2            (L-rim walks plus the CR far-half walks)
//   lambda_CCW = r * q^2
//   lambda_XL  = r * q              (CL quadrant: q destinations per source)
//   lambda_XR  = r * (q-1)          (CR quadrant: q-1 destinations)
//   inj ports: L,CL,R carry r*q; CR carries r*(q-1)
//   ejections: fromCW and fromCCW carry r*(2q-1); fromXL r; fromXR 0.
// Broadcast multicast at per-node rate m adds m*(2q-1) to each rim link,
// m to each cross link, and N-1 ejection loads per node.
#include "quarc/model/channel_graph.hpp"

#include <gtest/gtest.h>

#include "quarc/topo/quarc.hpp"
#include "quarc/topo/hypercube.hpp"
#include "quarc/topo/spidergon.hpp"
#include "quarc/traffic/pattern.hpp"

namespace quarc {
namespace {

constexpr double kTol = 1e-12;

Workload unicast_only(double rate, int msg = 16) {
  Workload w;
  w.message_rate = rate;
  w.message_length = msg;
  return w;
}

TEST(ChannelGraph, QuarcUniformUnicastClosedForms) {
  const int n = 16, q = 4;
  QuarcTopology topo(n);
  const double u = 0.012;
  const double r = u / (n - 1);
  ChannelGraph g(topo, unicast_only(u));

  for (NodeId i = 0; i < n; ++i) {
    EXPECT_NEAR(g.lambda(topo.cw_channel(i)), r * q * q, kTol);
    EXPECT_NEAR(g.lambda(topo.ccw_channel(i)), r * q * q, kTol);
    EXPECT_NEAR(g.lambda(topo.xl_channel(i)), r * q, kTol);
    EXPECT_NEAR(g.lambda(topo.xr_channel(i)), r * (q - 1), kTol);
    EXPECT_NEAR(g.lambda(topo.injection_channel(i, QuarcTopology::kL)), r * q, kTol);
    EXPECT_NEAR(g.lambda(topo.injection_channel(i, QuarcTopology::kCL)), r * q, kTol);
    EXPECT_NEAR(g.lambda(topo.injection_channel(i, QuarcTopology::kCR)), r * (q - 1), kTol);
    EXPECT_NEAR(g.lambda(topo.injection_channel(i, QuarcTopology::kR)), r * q, kTol);
    EXPECT_NEAR(g.lambda(topo.ejection_channel(i, QuarcTopology::kFromCW)), r * (2 * q - 1), kTol);
    EXPECT_NEAR(g.lambda(topo.ejection_channel(i, QuarcTopology::kFromCCW)), r * (2 * q - 1), kTol);
    EXPECT_NEAR(g.lambda(topo.ejection_channel(i, QuarcTopology::kFromXL)), r, kTol);
    EXPECT_NEAR(g.lambda(topo.ejection_channel(i, QuarcTopology::kFromXR)), 0.0, kTol);
  }
}

TEST(ChannelGraph, FlowConservationAtEveryChannel) {
  // Everything that enters a non-ejection channel leaves it: the outgoing
  // transition rates sum to the channel's arrival rate.
  QuarcTopology topo(32);
  Workload w = unicast_only(0.008, 32);
  w.multicast_fraction = 0.1;
  w.pattern = RingRelativePattern::broadcast(32);
  ChannelGraph g(topo, w);
  for (const ChannelInfo& ch : topo.channels()) {
    double out = 0.0;
    for (const auto& [next, rate] : g.outgoing(ch.id)) out += rate;
    if (ch.kind == ChannelKind::Ejection) {
      EXPECT_EQ(g.outgoing(ch.id).size(), 0u);
    } else {
      EXPECT_NEAR(out, g.lambda(ch.id), 1e-12) << ch.label;
    }
  }
}

TEST(ChannelGraph, QuarcBroadcastMulticastClosedForms) {
  const int n = 16, q = 4;
  QuarcTopology topo(n);
  Workload w = unicast_only(0.01, 16);
  w.multicast_fraction = 1.0;  // pure multicast isolates the stream loads
  w.pattern = RingRelativePattern::broadcast(n);
  const double m = w.multicast_rate();
  ChannelGraph g(topo, w);

  for (NodeId i = 0; i < n; ++i) {
    EXPECT_NEAR(g.lambda(topo.cw_channel(i)), m * (2 * q - 1), kTol);
    EXPECT_NEAR(g.lambda(topo.ccw_channel(i)), m * (2 * q - 1), kTol);
    EXPECT_NEAR(g.lambda(topo.xl_channel(i)), m, kTol);
    EXPECT_NEAR(g.lambda(topo.xr_channel(i)), m, kTol);
    // Every broadcast stream loads its injection port once.
    for (PortId p = 0; p < 4; ++p) {
      EXPECT_NEAR(g.lambda(topo.injection_channel(i, p)), m, kTol);
    }
    // Each node absorbs every other node's broadcast exactly once.
    double ej = 0.0;
    ej += g.lambda(topo.ejection_channel(i, QuarcTopology::kFromCW));
    ej += g.lambda(topo.ejection_channel(i, QuarcTopology::kFromCCW));
    ej += g.lambda(topo.ejection_channel(i, QuarcTopology::kFromXL));
    ej += g.lambda(topo.ejection_channel(i, QuarcTopology::kFromXR));
    EXPECT_NEAR(ej, m * (n - 1), kTol);
  }
}

TEST(ChannelGraph, EjectionFedBySingleLinkHasFullSelfShare) {
  // The fromXL ejection channel is fed only by unicasts to the antipode,
  // all arriving over the XL link: the transition rate into it equals its
  // own lambda (so the Eq. 6 discount zeroes its waiting contribution).
  const int n = 16;
  QuarcTopology topo(n);
  ChannelGraph g(topo, unicast_only(0.01));
  for (NodeId d = 0; d < n; ++d) {
    const NodeId s = static_cast<NodeId>((d + n / 2) % n);
    const ChannelId ej = topo.ejection_channel(d, QuarcTopology::kFromXL);
    EXPECT_NEAR(g.transition_rate(topo.xl_channel(s), ej), g.lambda(ej), kTol);
  }
}

TEST(ChannelGraph, SoftwareMulticastExpandsToUnicasts) {
  // On Spidergon (no hardware multicast) a broadcast loads the single
  // injection channel with N-1 unicasts per multicast message.
  const int n = 16;
  SpidergonTopology topo(n);
  Workload w = unicast_only(0.004, 16);
  w.multicast_fraction = 0.5;
  w.pattern = RingRelativePattern::broadcast(n);
  ChannelGraph g(topo, w);
  const double expected_inj = w.unicast_rate() + w.multicast_rate() * (n - 1);
  for (NodeId i = 0; i < n; ++i) {
    EXPECT_NEAR(g.lambda(topo.injection_channel(i)), expected_inj, kTol);
  }
}

TEST(ChannelGraph, TotalInjectionRateAccounting) {
  const int n = 16;
  QuarcTopology topo(n);
  // Pure unicast: every message crosses exactly one injection channel.
  ChannelGraph g(topo, unicast_only(0.01));
  EXPECT_NEAR(g.total_injection_rate(), 0.01 * n, 1e-12);

  // Broadcast multicast: one stream per port -> four injection loads.
  Workload w = unicast_only(0.01, 16);
  w.multicast_fraction = 1.0;
  w.pattern = RingRelativePattern::broadcast(n);
  ChannelGraph g2(topo, w);
  EXPECT_NEAR(g2.total_injection_rate(), 0.01 * n * 4, 1e-12);
}

TEST(ChannelGraph, ZeroRateGraphIsEmpty) {
  QuarcTopology topo(16);
  ChannelGraph g(topo, unicast_only(0.0));
  for (const ChannelInfo& ch : topo.channels()) {
    EXPECT_EQ(g.lambda(ch.id), 0.0);
    EXPECT_TRUE(g.outgoing(ch.id).empty());
  }
}

TEST(ChannelGraph, HypercubeLinksUniformlyLoaded) {
  // e-cube on a d-cube: a fixed link (v, i) is crossed by pairs whose
  // source matches v on bits >= i (2^i free low bits in s) and whose
  // destination matches v on bits < i, flips bit i, and is free above
  // (2^(d-1-i) choices): 2^(d-1) pairs for every link. Hence every link
  // carries lambda_u * 2^(d-1) / (N-1).
  const int dims = 4;
  HypercubeTopology topo(dims);
  const double u = 0.01;
  ChannelGraph g(topo, unicast_only(u, 8));
  const double expected = u * 8.0 / 15.0;  // 2^(d-1) = 8, N-1 = 15
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    for (int i = 0; i < dims; ++i) {
      EXPECT_NEAR(g.lambda(topo.link(v, i)), expected, kTol);
    }
  }
}

TEST(ChannelGraph, HypercubeInjectionLoadsHalveByPort) {
  // Port i serves destinations with lowest differing bit i: 2^(d-1-i) of
  // the N-1 destinations.
  const int dims = 4;
  HypercubeTopology topo(dims);
  const double u = 0.01;
  ChannelGraph g(topo, unicast_only(u, 8));
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    for (int i = 0; i < dims; ++i) {
      const double expected = u * static_cast<double>(1 << (dims - 1 - i)) / 15.0;
      EXPECT_NEAR(g.lambda(topo.injection_channel(v, i)), expected, kTol);
    }
  }
}

TEST(ChannelGraph, TransitionProbabilitiesAlongRim) {
  // From CW[c], continuing traffic goes to CW[c+1] and terminating traffic
  // to the fromCW ejection at c+1; together they carry the whole lambda.
  const int n = 16;
  QuarcTopology topo(n);
  ChannelGraph g(topo, unicast_only(0.01));
  const ChannelId cw0 = topo.cw_channel(0);
  const ChannelId cw1 = topo.cw_channel(1);
  const ChannelId ej1 = topo.ejection_channel(1, QuarcTopology::kFromCW);
  EXPECT_NEAR(g.transition_rate(cw0, cw1) + g.transition_rate(cw0, ej1), g.lambda(cw0), kTol);
  EXPECT_GT(g.transition_rate(cw0, cw1), 0.0);
  EXPECT_GT(g.transition_rate(cw0, ej1), 0.0);
}

}  // namespace
}  // namespace quarc
