// Tests of the Pollaczek-Khinchine kernel (paper Eq. 3-5, with the
// dimensional typo corrected; see mg1.hpp).
#include "quarc/model/mg1.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace quarc {
namespace {

TEST(Mg1, IdleChannelHasNoWait) {
  EXPECT_EQ(mg1_waiting_time(0.0, 10.0, 0.0), 0.0);
  EXPECT_EQ(mg1_waiting_time(-1.0, 10.0, 0.0), 0.0);
}

TEST(Mg1, MatchesMD1ForDeterministicService) {
  // sigma = 0 reduces P-K to the M/D/1 wait: rho*x / (2(1-rho)).
  const double lambda = 0.02, x = 10.0;
  const double rho = lambda * x;
  EXPECT_NEAR(mg1_waiting_time(lambda, x, 0.0), rho * x / (2.0 * (1.0 - rho)), 1e-12);
}

TEST(Mg1, MatchesMM1ForExponentialService) {
  // sigma = x gives the M/M/1 wait rho*x/(1-rho).
  const double lambda = 0.03, x = 8.0;
  const double rho = lambda * x;
  EXPECT_NEAR(mg1_waiting_time(lambda, x, x), rho * x / (1.0 - rho), 1e-12);
}

TEST(Mg1, SaturationYieldsInfinity) {
  EXPECT_TRUE(std::isinf(mg1_waiting_time(0.1, 10.0, 0.0)));
  EXPECT_TRUE(std::isinf(mg1_waiting_time(0.2, 10.0, 0.0)));
}

TEST(Mg1, WaitGrowsWithLoad) {
  double prev = 0.0;
  for (double lambda : {0.01, 0.02, 0.04, 0.08}) {
    const double w = mg1_waiting_time(lambda, 10.0, 3.0);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(Mg1, WaitGrowsWithVariance) {
  const double low = mg1_waiting_time(0.05, 10.0, 0.0);
  const double high = mg1_waiting_time(0.05, 10.0, 5.0);
  EXPECT_GT(high, low);
}

TEST(Mg1, UtilizationIsLambdaTimesService) {
  EXPECT_DOUBLE_EQ(mg1_utilization(0.02, 25.0), 0.5);
  EXPECT_DOUBLE_EQ(mg1_utilization(0.0, 25.0), 0.0);
}

TEST(Mg1, SigmaApproximationFloorsAtZero) {
  // Eq. 5: sigma = x - msg, but service can never be faster than the drain.
  EXPECT_DOUBLE_EQ(service_sigma(48.0, 32), 16.0);
  EXPECT_DOUBLE_EQ(service_sigma(32.0, 32), 0.0);
  EXPECT_DOUBLE_EQ(service_sigma(31.0, 32), 0.0);
}

TEST(Mg1, DimensionalSanity) {
  // Doubling both the time unit (x, sigma) and halving lambda must scale W
  // by the time unit: W(lambda/2, 2x, 2sigma) = 2 W(lambda, x, sigma).
  const double w1 = mg1_waiting_time(0.02, 10.0, 4.0);
  const double w2 = mg1_waiting_time(0.01, 20.0, 8.0);
  EXPECT_NEAR(w2, 2.0 * w1, 1e-12);
}

}  // namespace
}  // namespace quarc
