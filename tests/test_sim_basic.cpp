// Simulator fundamentals: determinism, the zero-load timing anchor
// (latency == M + D + 1 exactly), flit accounting, and stability flags.
#include "quarc/sim/simulator.hpp"

#include <gtest/gtest.h>

#include "quarc/topo/quarc.hpp"
#include "quarc/topo/spidergon.hpp"
#include "quarc/traffic/pattern.hpp"
#include "quarc/util/error.hpp"

namespace quarc {
namespace {

using sim::SimConfig;
using sim::Simulator;
using sim::SimResult;

SimConfig base_config(double rate, double alpha, int msg, int n,
                      std::shared_ptr<const MulticastPattern> pattern = nullptr) {
  SimConfig c;
  c.workload.message_rate = rate;
  c.workload.multicast_fraction = alpha;
  c.workload.message_length = msg;
  c.workload.pattern = std::move(pattern);
  c.warmup_cycles = 2000;
  c.measure_cycles = 30000;
  c.seed = 7;
  (void)n;
  return c;
}

TEST(Simulator, DeterministicAcrossRuns) {
  QuarcTopology topo(16);
  const SimConfig c = base_config(0.005, 0.0, 16, 16);
  const SimResult a = Simulator(topo, c).run();
  const SimResult b = Simulator(topo, c).run();
  EXPECT_EQ(a.unicast_latency.count, b.unicast_latency.count);
  EXPECT_DOUBLE_EQ(a.unicast_latency.mean, b.unicast_latency.mean);
  EXPECT_EQ(a.flits_injected, b.flits_injected);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
}

TEST(Simulator, SeedChangesTheSamplePath) {
  QuarcTopology topo(16);
  SimConfig c = base_config(0.005, 0.0, 16, 16);
  const SimResult a = Simulator(topo, c).run();
  c.seed = 8;
  const SimResult b = Simulator(topo, c).run();
  EXPECT_NE(a.flits_injected, b.flits_injected);
}

TEST(Simulator, ZeroLoadUnicastLatencyBounds) {
  // At a vanishing rate every message sees an empty network, so each
  // latency equals M + D + 1 for its pair: min = M + 2 (adjacent), and no
  // sample may exceed M + diameter + 1.
  QuarcTopology topo(16);
  SimConfig c = base_config(2e-5, 0.0, 16, 16);
  c.measure_cycles = 400000;
  const SimResult r = Simulator(topo, c).run();
  ASSERT_TRUE(r.completed);
  ASSERT_GT(r.unicast_latency.count, 50);
  EXPECT_EQ(r.unicast_latency.min, 16.0 + 1.0 + 1.0);
  EXPECT_LE(r.unicast_latency.max, 16.0 + 4.0 + 1.0);
  EXPECT_GE(r.unicast_latency.mean, 16.0 + 1.0 + 1.0);
}

TEST(Simulator, ZeroLoadLatencyExactForAllMessageLengths) {
  // Spidergon with one node pair exercised via a degenerate 'multicast'
  // pattern of one destination: every group is a single unicast to the
  // antipode (D = 1 via the cross link), so latency == M + 2 exactly.
  for (int msg : {8, 16, 33}) {
    SpidergonTopology topo(8);
    auto pattern = std::make_shared<RingRelativePattern>(8, std::vector<int>{4});
    SimConfig c = base_config(1e-5, 1.0, msg, 8, pattern);
    c.measure_cycles = 600000;
    const SimResult r = Simulator(topo, c).run();
    ASSERT_TRUE(r.completed) << msg;
    ASSERT_GT(r.multicast_latency.count, 10) << msg;
    EXPECT_EQ(r.multicast_latency.min, msg + 2.0) << msg;
    EXPECT_EQ(r.multicast_latency.max, msg + 2.0) << msg;
  }
}

TEST(Simulator, FlitAccountingConsistent) {
  QuarcTopology topo(16);
  const SimResult r = Simulator(topo, base_config(0.004, 0.0, 16, 16)).run();
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.flits_injected, 0);
  // Absorbed can lag injected only by the in-flight remainder at stop.
  EXPECT_LE(r.flits_absorbed, r.flits_injected);
  EXPECT_GT(r.flits_absorbed, r.flits_injected * 9 / 10);
}

TEST(Simulator, UtilizationScalesWithRate) {
  QuarcTopology topo(16);
  const SimResult lo = Simulator(topo, base_config(0.002, 0.0, 16, 16)).run();
  const SimResult hi = Simulator(topo, base_config(0.006, 0.0, 16, 16)).run();
  EXPECT_GT(hi.max_channel_utilization, 2.0 * lo.max_channel_utilization);
}

TEST(Simulator, LatencyGrowsWithLoad) {
  QuarcTopology topo(16);
  const SimResult lo = Simulator(topo, base_config(0.001, 0.0, 32, 16)).run();
  const SimResult hi = Simulator(topo, base_config(0.008, 0.0, 32, 16)).run();
  ASSERT_TRUE(lo.completed);
  ASSERT_TRUE(hi.completed);
  EXPECT_GT(hi.unicast_latency.mean, lo.unicast_latency.mean);
}

TEST(Simulator, OverloadIsFlaggedUnstable) {
  QuarcTopology topo(16);
  SimConfig c = base_config(0.2, 0.0, 32, 16);  // far beyond capacity
  c.max_queue_length = 500;
  c.measure_cycles = 200000;
  const SimResult r = Simulator(topo, c).run();
  EXPECT_FALSE(r.stable);
  EXPECT_FALSE(r.completed);
}

TEST(Simulator, NoTrafficCompletesImmediately) {
  QuarcTopology topo(16);
  SimConfig c = base_config(0.0, 0.0, 16, 16);
  const SimResult r = Simulator(topo, c).run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.unicast_latency.count, 0);
  EXPECT_EQ(r.messages_generated, 0);
}

TEST(Simulator, MeanMatchesZeroLoadAverageAtTinyRate) {
  // With uniform destinations the empirical mean approaches the analytic
  // zero-load average of M + D(s,d) + 1 over pairs.
  QuarcTopology topo(16);
  double expected = 0.0;
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s != d) expected += 16.0 + topo.unicast_route(s, d).hops() + 1.0;
    }
  }
  expected /= 16.0 * 15.0;
  SimConfig c = base_config(5e-5, 0.0, 16, 16);
  c.measure_cycles = 500000;
  const SimResult r = Simulator(topo, c).run();
  ASSERT_TRUE(r.completed);
  ASSERT_GT(r.unicast_latency.count, 200);
  EXPECT_NEAR(r.unicast_latency.mean, expected, 0.25);
}

TEST(Simulator, RejectsInvalidConfig) {
  QuarcTopology topo(16);
  SimConfig c = base_config(0.01, 0.0, 16, 16);
  c.buffer_depth = 0;
  EXPECT_THROW(Simulator(topo, c), InvalidArgument);
  c = base_config(0.01, 0.5, 16, 16);  // alpha without pattern
  EXPECT_THROW(Simulator(topo, c), InvalidArgument);
}

}  // namespace
}  // namespace quarc
