#include "quarc/topo/hypercube.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "quarc/util/error.hpp"

namespace quarc {
namespace {

TEST(HypercubeTopology, RejectsBadDimensions) {
  EXPECT_THROW(HypercubeTopology(1), InvalidArgument);
  EXPECT_THROW(HypercubeTopology(11), InvalidArgument);
  EXPECT_NO_THROW(HypercubeTopology(2));
}

TEST(HypercubeTopology, ChannelInventory) {
  HypercubeTopology t(4);
  EXPECT_EQ(t.num_nodes(), 16);
  EXPECT_EQ(t.num_ports(), 4);
  // Per node: d injection + d external + d ejection.
  EXPECT_EQ(t.num_channels(), 16 * 12);
  EXPECT_EQ(t.diameter(), 4);
}

TEST(HypercubeTopology, HopsArePopcount) {
  HypercubeTopology t(5);
  for (NodeId s = 0; s < t.num_nodes(); s += 3) {
    for (NodeId d = 0; d < t.num_nodes(); ++d) {
      if (s == d) continue;
      const int expected = std::popcount(static_cast<unsigned>(s) ^ static_cast<unsigned>(d));
      EXPECT_EQ(t.unicast_route(s, d).hops(), expected);
    }
  }
}

TEST(HypercubeTopology, EcubeFlipsDimensionsAscending) {
  HypercubeTopology t(4);
  const auto r = t.unicast_route(0b0000, 0b1011);
  ASSERT_EQ(r.links.size(), 3u);
  // Dimensions 0, 1, 3 in ascending order: 0000 -> 0001 -> 0011 -> 1011.
  EXPECT_EQ(t.channel(r.links[0]).dst, 0b0001);
  EXPECT_EQ(t.channel(r.links[1]).dst, 0b0011);
  EXPECT_EQ(t.channel(r.links[2]).dst, 0b1011);
  EXPECT_EQ(r.port, 0);  // first flipped dimension
  EXPECT_EQ(r.ejection, t.ejection_channel(0b1011, 3));  // last flipped dimension
}

TEST(HypercubeTopology, StructuralValidation) {
  EXPECT_NO_THROW(validate_topology(HypercubeTopology(2)));
  EXPECT_NO_THROW(validate_topology(HypercubeTopology(3)));
  EXPECT_NO_THROW(validate_topology(HypercubeTopology(4)));
}

TEST(HypercubeTopology, NoHardwareMulticast) {
  HypercubeTopology t(3);
  EXPECT_FALSE(t.supports_multicast());
  EXPECT_THROW(t.multicast_streams(0, {1}), InvalidArgument);
}

TEST(HypercubeTopology, NeighborIsInvolution) {
  HypercubeTopology t(4);
  for (NodeId v = 0; v < t.num_nodes(); ++v) {
    for (int i = 0; i < t.dimensions(); ++i) {
      EXPECT_EQ(t.neighbor(t.neighbor(v, i), i), v);
    }
  }
}

TEST(HypercubeTopology, EjectionsAreDedicated) {
  HypercubeTopology t(3);
  for (const ChannelInfo& ch : t.channels()) {
    if (ch.kind == ChannelKind::Ejection) {
      EXPECT_TRUE(ch.dedicated);
    }
  }
}

TEST(HypercubeTopology, PortPartitionsDestinations) {
  // Port i serves exactly the destinations whose lowest differing bit is i:
  // 2^(d-i-1) of them from any source.
  HypercubeTopology t(4);
  for (NodeId s : {NodeId{0}, NodeId{9}}) {
    std::vector<int> count(4, 0);
    for (NodeId d = 0; d < t.num_nodes(); ++d) {
      if (d == s) continue;
      ++count[static_cast<std::size_t>(t.unicast_route(s, d).port)];
    }
    EXPECT_EQ(count[0], 8);
    EXPECT_EQ(count[1], 4);
    EXPECT_EQ(count[2], 2);
    EXPECT_EQ(count[3], 1);
  }
}

}  // namespace
}  // namespace quarc
