// Integration: the analytical model against the flit-level simulator —
// the paper's own validation methodology (Section 4) as executable tests.
// At low-to-moderate load the model must track the simulator within tight
// relative bounds for both unicast and multicast latency.
#include <gtest/gtest.h>

#include <cmath>

#include "quarc/model/performance_model.hpp"
#include "quarc/sim/simulator.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/traffic/pattern.hpp"

namespace quarc {
namespace {

struct Comparison {
  double model_unicast = 0.0;
  double sim_unicast = 0.0;
  double model_multicast = 0.0;
  double sim_multicast = 0.0;
};

Comparison compare(const Topology& topo, double rate, double alpha, int msg,
                   std::shared_ptr<const MulticastPattern> pattern, Cycle measure = 60000) {
  Workload w;
  w.message_rate = rate;
  w.multicast_fraction = alpha;
  w.message_length = msg;
  w.pattern = std::move(pattern);

  const auto model = PerformanceModel(topo, w).evaluate();
  EXPECT_EQ(model.status, SolveStatus::Converged);

  sim::SimConfig c;
  c.workload = w;
  c.warmup_cycles = 4000;
  c.measure_cycles = measure;
  c.seed = 17;
  const auto sim = sim::Simulator(topo, c).run();
  EXPECT_TRUE(sim.completed);

  Comparison out;
  out.model_unicast = model.avg_unicast_latency;
  out.sim_unicast = sim.unicast_latency.mean;
  out.model_multicast = model.avg_multicast_latency;
  out.sim_multicast = sim.multicast_latency.mean;
  return out;
}

double rel(double a, double b) { return std::abs(a - b) / b; }

TEST(ModelVsSim, UnicastLowLoad) {
  QuarcTopology topo(16);
  const auto c = compare(topo, 0.002, 0.0, 16, nullptr);
  EXPECT_LT(rel(c.model_unicast, c.sim_unicast), 0.05)
      << "model " << c.model_unicast << " sim " << c.sim_unicast;
}

TEST(ModelVsSim, UnicastModerateLoad) {
  QuarcTopology topo(16);
  const auto c = compare(topo, 0.008, 0.0, 16, nullptr);
  EXPECT_LT(rel(c.model_unicast, c.sim_unicast), 0.10)
      << "model " << c.model_unicast << " sim " << c.sim_unicast;
}

TEST(ModelVsSim, MulticastRandomDestinationsLowLoad) {
  QuarcTopology topo(16);
  Rng rng(23);
  auto pattern = RingRelativePattern::random(16, 5, rng);
  const auto c = compare(topo, 0.003, 0.05, 16, pattern);
  EXPECT_LT(rel(c.model_multicast, c.sim_multicast), 0.08)
      << "model " << c.model_multicast << " sim " << c.sim_multicast;
  EXPECT_LT(rel(c.model_unicast, c.sim_unicast), 0.08);
}

TEST(ModelVsSim, MulticastLocalizedDestinations) {
  QuarcTopology topo(16);
  Rng rng(29);
  auto pattern = RingRelativePattern::localized(16, 1, 4, 3, rng);
  const auto c = compare(topo, 0.004, 0.05, 16, pattern);
  EXPECT_LT(rel(c.model_multicast, c.sim_multicast), 0.08)
      << "model " << c.model_multicast << " sim " << c.sim_multicast;
}

TEST(ModelVsSim, BroadcastHeavyAlpha) {
  QuarcTopology topo(16);
  const auto c = compare(topo, 0.002, 0.10, 16, RingRelativePattern::broadcast(16));
  EXPECT_LT(rel(c.model_multicast, c.sim_multicast), 0.10)
      << "model " << c.model_multicast << " sim " << c.sim_multicast;
}

TEST(ModelVsSim, LargerNetwork) {
  QuarcTopology topo(32);
  Rng rng(31);
  auto pattern = RingRelativePattern::random(32, 6, rng);
  const auto c = compare(topo, 0.002, 0.05, 32, pattern, 40000);
  EXPECT_LT(rel(c.model_multicast, c.sim_multicast), 0.10)
      << "model " << c.model_multicast << " sim " << c.sim_multicast;
  EXPECT_LT(rel(c.model_unicast, c.sim_unicast), 0.10);
}

TEST(ModelVsSim, LongMessages) {
  // Long messages amplify the virtual-channel multiplexing the model
  // ignores (see DESIGN.md), so the bound is looser here.
  QuarcTopology topo(16);
  Rng rng(37);
  auto pattern = RingRelativePattern::random(16, 4, rng);
  const auto c = compare(topo, 0.001, 0.05, 64, pattern);
  EXPECT_LT(rel(c.model_multicast, c.sim_multicast), 0.15)
      << "model " << c.model_multicast << " sim " << c.sim_multicast;
}

TEST(ModelVsSim, ModelTracksSimAcrossRates) {
  // The curves must move together: correlation of model and sim latency
  // over an increasing rate grid, plus pointwise error bounds.
  QuarcTopology topo(16);
  auto pattern = RingRelativePattern::broadcast(16);
  double prev_sim = 0.0;
  for (double rate : {0.001, 0.003, 0.005}) {
    const auto c = compare(topo, rate, 0.05, 16, pattern);
    EXPECT_GT(c.sim_multicast, prev_sim);  // sim latency rises with rate
    EXPECT_LT(rel(c.model_multicast, c.sim_multicast), 0.12) << "rate " << rate;
    prev_sim = c.sim_multicast;
  }
}

}  // namespace
}  // namespace quarc
