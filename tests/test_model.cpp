// End-to-end tests of the analytical model (Eq. 7-16), anchored on the
// exactly-known zero-load latencies.
#include "quarc/model/performance_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "quarc/topo/mesh.hpp"
#include "quarc/topo/quarc.hpp"
#include "quarc/topo/spidergon.hpp"
#include "quarc/traffic/pattern.hpp"

namespace quarc {
namespace {

Workload make_load(double rate, double alpha, int msg,
                   std::shared_ptr<const MulticastPattern> pattern = nullptr) {
  Workload w;
  w.message_rate = rate;
  w.multicast_fraction = alpha;
  w.message_length = msg;
  w.pattern = std::move(pattern);
  return w;
}

double zero_load_unicast_average(const Topology& topo, int msg) {
  double sum = 0.0;
  const int n = topo.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s != d) sum += msg + topo.unicast_route(s, d).hops() + 1;
    }
  }
  return sum / (static_cast<double>(n) * (n - 1));
}

TEST(PerformanceModel, ZeroLoadUnicastMatchesHopAverage) {
  for (int n : {16, 32}) {
    QuarcTopology topo(n);
    const auto result = PerformanceModel(topo, make_load(1e-9, 0.0, 32)).evaluate();
    ASSERT_EQ(result.status, SolveStatus::Converged);
    EXPECT_NEAR(result.avg_unicast_latency, zero_load_unicast_average(topo, 32), 1e-4) << n;
  }
}

TEST(PerformanceModel, ZeroLoadBroadcastIsMsgPlusQuarterRingPlusOne) {
  for (int n : {16, 64}) {
    QuarcTopology topo(n);
    const auto result =
        PerformanceModel(topo, make_load(1e-9, 1.0, 32, RingRelativePattern::broadcast(n)))
            .evaluate();
    ASSERT_EQ(result.status, SolveStatus::Converged);
    EXPECT_TRUE(result.has_multicast);
    EXPECT_NEAR(result.avg_multicast_latency, 32.0 + n / 4.0 + 1.0, 1e-3) << n;
  }
}

TEST(PerformanceModel, NoMulticastWithoutAlpha) {
  QuarcTopology topo(16);
  const auto result = PerformanceModel(topo, make_load(0.005, 0.0, 16)).evaluate();
  EXPECT_FALSE(result.has_multicast);
  EXPECT_TRUE(result.per_node_multicast_latency.empty());
}

TEST(PerformanceModel, VertexSymmetricPatternGivesEqualPerNodeLatency) {
  QuarcTopology topo(16);
  const auto result =
      PerformanceModel(topo, make_load(0.004, 0.1, 16, RingRelativePattern::broadcast(16)))
          .evaluate();
  ASSERT_EQ(result.status, SolveStatus::Converged);
  ASSERT_EQ(result.per_node_multicast_latency.size(), 16u);
  for (double l : result.per_node_multicast_latency) {
    EXPECT_NEAR(l, result.avg_multicast_latency, 1e-6);
  }
}

TEST(PerformanceModel, LatencyIncreasesWithRate) {
  QuarcTopology topo(16);
  auto pattern = RingRelativePattern::broadcast(16);
  double prev_uni = 0.0, prev_mc = 0.0;
  for (double rate : {0.001, 0.002, 0.004}) {
    const auto result = PerformanceModel(topo, make_load(rate, 0.05, 16, pattern)).evaluate();
    ASSERT_EQ(result.status, SolveStatus::Converged);
    EXPECT_GT(result.avg_unicast_latency, prev_uni);
    EXPECT_GT(result.avg_multicast_latency, prev_mc);
    prev_uni = result.avg_unicast_latency;
    prev_mc = result.avg_multicast_latency;
  }
}

TEST(PerformanceModel, LatencyIncreasesWithMessageLength) {
  QuarcTopology topo(16);
  auto pattern = RingRelativePattern::broadcast(16);
  double prev = 0.0;
  for (int msg : {16, 32, 48, 64}) {
    const auto result = PerformanceModel(topo, make_load(0.002, 0.05, msg, pattern)).evaluate();
    ASSERT_EQ(result.status, SolveStatus::Converged);
    // Longer messages cost at least the extra drain time over the previous
    // point (the queueing terms also grow, but we only bound from below).
    EXPECT_GT(result.avg_multicast_latency, prev + 8.0);
    prev = result.avg_multicast_latency;
  }
}

TEST(PerformanceModel, SaturationReportsInfiniteLatency) {
  QuarcTopology topo(16);
  const auto result = PerformanceModel(topo, make_load(0.5, 0.0, 16)).evaluate();
  EXPECT_EQ(result.status, SolveStatus::Saturated);
  EXPECT_TRUE(std::isinf(result.avg_unicast_latency));
}

TEST(PerformanceModel, MulticastLatencyExceedsWorstStreamZeroLoadBound) {
  // E[max] over streams is at least each stream's wait; latency is at least
  // the zero-load floor of the longest stream.
  QuarcTopology topo(32);
  auto pattern = RingRelativePattern::broadcast(32);
  const auto result = PerformanceModel(topo, make_load(0.001, 0.1, 32, pattern)).evaluate();
  ASSERT_EQ(result.status, SolveStatus::Converged);
  EXPECT_GT(result.avg_multicast_latency, 32.0 + 8.0 + 1.0);
}

TEST(PerformanceModel, LocalizedPatternReducesToSingleStream) {
  // All destinations on the left rim: m = 1, so the multicast wait is the
  // plain stream wait (no order-statistics inflation), and the latency is
  // bounded by the unicast latency to the farthest target plus queueing
  // differences. We check zero-load exactness: M + k_max + 1.
  QuarcTopology topo(16);
  auto pattern = std::make_shared<RingRelativePattern>(16, std::vector<int>{1, 3, 4});
  const auto result = PerformanceModel(topo, make_load(1e-9, 1.0, 16, pattern)).evaluate();
  ASSERT_EQ(result.status, SolveStatus::Converged);
  EXPECT_NEAR(result.avg_multicast_latency, 16.0 + 4.0 + 1.0, 1e-4);
}

TEST(PerformanceModel, AllPortBeatsOnePortForMulticast) {
  // The paper's motivation for multi-port routers (Section 1, [8]): at the
  // same load, the one-port Quarc serialises the four streams through one
  // injection channel and must show higher multicast latency.
  auto pattern = RingRelativePattern::broadcast(16);
  QuarcTopology all_port(16, PortScheme::AllPort);
  QuarcTopology one_port(16, PortScheme::OnePort);
  const Workload w = make_load(0.002, 0.2, 16, pattern);
  const auto all = PerformanceModel(all_port, w).evaluate();
  const auto one = PerformanceModel(one_port, w).evaluate();
  ASSERT_EQ(all.status, SolveStatus::Converged);
  ASSERT_EQ(one.status, SolveStatus::Converged);
  EXPECT_GT(one.avg_multicast_latency, all.avg_multicast_latency);
}

TEST(PerformanceModel, SpidergonSoftwareMulticastCostsMore) {
  // Broadcast-by-unicast on Spidergon vs true broadcast on Quarc at the
  // same (low) load: the Quarc collective must be dramatically cheaper
  // (paper Section 3.2).
  auto pattern = RingRelativePattern::broadcast(16);
  QuarcTopology quarc(16);
  SpidergonTopology spidergon(16);
  const Workload w = make_load(0.0005, 0.1, 16, pattern);
  const auto q = PerformanceModel(quarc, w).evaluate();
  const auto s = PerformanceModel(spidergon, w).evaluate();
  ASSERT_EQ(q.status, SolveStatus::Converged);
  ASSERT_EQ(s.status, SolveStatus::Converged);
  EXPECT_GT(s.avg_multicast_latency, 2.0 * q.avg_multicast_latency);
}

TEST(PerformanceModel, MeshHamiltonianZeroLoadMulticast) {
  MeshTopology mesh(4, 4, MeshRouting::Hamiltonian);
  // Explicit pattern: every node multicasts to snake-neighbours +-2 labels.
  std::vector<std::vector<NodeId>> dests(16);
  const auto& lab = mesh.labeling();
  for (NodeId s = 0; s < 16; ++s) {
    const int l = lab.label_of(s);
    std::vector<NodeId> v;
    if (l + 2 < 16) v.push_back(lab.node_at(l + 2));
    if (l - 2 >= 0) v.push_back(lab.node_at(l - 2));
    dests[static_cast<std::size_t>(s)] = v;
  }
  auto pattern = std::make_shared<ExplicitPattern>(dests, "snake+-2");
  const auto result = PerformanceModel(mesh, make_load(1e-9, 1.0, 32, pattern)).evaluate();
  ASSERT_EQ(result.status, SolveStatus::Converged);
  // Every stream is exactly 2 hops at zero load: latency = M + 2 + 1.
  EXPECT_NEAR(result.avg_multicast_latency, 32.0 + 2.0 + 1.0, 1e-4);
}

TEST(PerformanceModel, ChannelSolutionExposedToCallers) {
  QuarcTopology topo(16);
  const auto result = PerformanceModel(topo, make_load(0.004, 0.0, 16)).evaluate();
  ASSERT_EQ(result.status, SolveStatus::Converged);
  ASSERT_EQ(result.channels.size(), static_cast<std::size_t>(topo.num_channels()));
  EXPECT_GT(result.max_utilization, 0.0);
  EXPECT_NE(result.bottleneck, kInvalidChannel);
  EXPECT_GT(result.solver_iterations, 0);
}

}  // namespace
}  // namespace quarc
